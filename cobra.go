package cobra

import (
	"context"
	"fmt"
	"io"
	"time"

	"cobra/internal/area"
	"cobra/internal/commercial"
	"cobra/internal/compose"
	"cobra/internal/faults"
	"cobra/internal/isa"
	"cobra/internal/obs"
	"cobra/internal/pred"
	"cobra/internal/program"
	"cobra/internal/stats"
	"cobra/internal/trace"
	"cobra/internal/uarch"
	"cobra/internal/workloads"
)

// Re-exported building blocks of the public API.
type (
	// Pipeline is a composed predictor pipeline (§IV).
	Pipeline = compose.Pipeline
	// PipelineOptions configures the generated management structures.
	PipelineOptions = compose.Options
	// GHRPolicy selects the speculative-history repair policy (§VI-B).
	GHRPolicy = compose.GHRPolicy
	// Topology is a parsed predictor topology.
	Topology = compose.Topology
	// CoreConfig describes the host core (Table II).
	CoreConfig = uarch.Config
	// Core is the assembled BOOM-like machine.
	Core = uarch.Core
	// Result carries the performance counters of a run.
	Result = stats.Sim
	// Breakdown is an area report (Fig. 8 / Fig. 9).
	Breakdown = area.Breakdown
	// FetchConfig is the fetch-packet geometry shared by predictor and core.
	FetchConfig = pred.Config
	// Program is a synthetic workload image.
	Program = program.Program
	// TraceResult summarizes a trace-driven evaluation (§II-B comparison).
	TraceResult = trace.SimResult
	// CommercialSystem is a Table III commercial-core proxy.
	CommercialSystem = commercial.System
	// InvariantError is a paranoid-mode invariant violation report.
	InvariantError = compose.InvariantError
	// FaultPlan describes a deterministic fault-injection campaign; wire it
	// into a pipeline via PipelineOptions.Wrap (see internal/faults).
	FaultPlan = faults.Plan
	// FaultKind is a bitmask of injectable fault classes.
	FaultKind = faults.Kind
	// FaultRecord describes one injected fault.
	FaultRecord = faults.Record
	// Event is one observability record (predict/fire/mispredict/repair/
	// update/redirect/squash); see internal/obs.
	Event = obs.Event
	// EventKind discriminates Event records.
	EventKind = obs.Kind
	// Observer receives Events; wire one in via PipelineOptions.Observer or
	// RunConfig.Observer.
	Observer = obs.Observer
	// Tracer is the ring-buffered Observer behind -events.
	Tracer = obs.Tracer
	// BranchProfile accumulates per-PC misprediction attribution (H2P).
	BranchProfile = obs.BranchProfile
	// BranchStat is one PC's row in a BranchProfile.
	BranchStat = obs.BranchStat
	// Metrics is the live telemetry sink behind -metrics-addr.
	Metrics = obs.Metrics
)

// Event kinds: the five §III-E interface events plus the frontend records.
const (
	EventPredict    = obs.KPredict
	EventFire       = obs.KFire
	EventMispredict = obs.KMispredict
	EventRepair     = obs.KRepair
	EventUpdate     = obs.KUpdate
	EventRedirect   = obs.KRedirect
	EventSquash     = obs.KSquash
)

// ParseEventKind parses an event-kind name ("predict", "fire", ...).
func ParseEventKind(s string) (EventKind, bool) { return obs.ParseKind(s) }

// Observability constructors and exporters, re-exported from internal/obs.
var (
	// NewTracer returns a ring-buffered event tracer (capacity 0 = default).
	NewTracer = obs.NewTracer
	// NewBranchProfile returns an empty per-PC misprediction profile.
	NewBranchProfile = obs.NewBranchProfile
	// NewMetrics returns a live telemetry sink.
	NewMetrics = obs.NewMetrics
	// WriteChromeTrace writes events as Chrome trace_event JSON
	// (chrome://tracing / Perfetto).
	WriteChromeTrace = obs.WriteChrome
	// WriteBinaryEvents writes events in the compact binary format read by
	// cobra-events and ReadBinaryEvents.
	WriteBinaryEvents = obs.WriteBinary
	// ReadBinaryEvents reads a compact binary event stream.
	ReadBinaryEvents = obs.ReadBinary
	// ServeMetrics exposes a Metrics sink at addr (Prometheus text format).
	ServeMetrics = obs.ServeMetrics
	// ServePprof exposes net/http/pprof (profiles + runtime trace) at addr.
	ServePprof = obs.ServePprof
)

// Injectable fault classes (see internal/faults for semantics).
const (
	FaultCorruptMeta   = faults.CorruptMeta
	FaultDropUpdate    = faults.DropUpdate
	FaultDupUpdate     = faults.DupUpdate
	FaultDelayFire     = faults.DelayFire
	FaultDelayRepair   = faults.DelayRepair
	FaultFlipDirection = faults.FlipDirection
	FaultFlipTarget    = faults.FlipTarget
	AllFaultKinds      = faults.AllKinds
)

// ParseFaultKinds parses a comma/pipe-separated fault-kind list ("all",
// "corrupt-meta,drop-update") into a FaultKind mask.
func ParseFaultKinds(s string) (FaultKind, error) { return faults.ParseKinds(s) }

// GHR repair policies (§VI-B).
const (
	GHRRepair       = compose.GHRRepair
	GHRRepairReplay = compose.GHRRepairReplay
	GHRNoRepair     = compose.GHRNoRepair
)

// Design names a predictor design point: a topology plus management
// options.  The three constructors below reproduce Table I.
type Design struct {
	Name     string
	Topology string
	Opt      PipelineOptions
}

// TAGEL is the paper's "TAGE-L" design (Table I): a 7-table TAGE with a
// loop corrector over a BTB + bimodal base and a single-cycle micro-BTB;
// 64-bit global history.
func TAGEL() Design {
	return Design{
		Name:     "tage-l",
		Topology: "LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1",
		Opt:      PipelineOptions{GHistBits: 64},
	}
}

// B2 is the original-BOOM-like design (Table I): one partially tagged
// global table over a BTB + bimodal base; 16-bit global history.
func B2() Design {
	return Design{
		Name:     "b2",
		Topology: "GTAG3 > BTB2 > BIM2",
		Opt:      PipelineOptions{GHistBits: 16},
	}
}

// Tourney is the Alpha-21264-like design (Table I): a global-history
// selector choosing between global- and local-history counter tables, with
// a BTB on the global side; 32-bit global and 256 x 32-bit local histories.
func Tourney() Design {
	return Design{
		Name:     "tourney",
		Topology: "TOURNEY3 > [GBIM2 > BTB2, LBIM2]",
		Opt: PipelineOptions{
			GHistBits:     32,
			LocalEntries:  256,
			LocalHistBits: 32,
		},
	}
}

// Designs returns the three evaluated designs in Table I order
// (Tourney, B2, TAGE-L).
func Designs() []Design { return []Design{Tourney(), B2(), TAGEL()} }

// NewPipeline composes a predictor pipeline from a topology string using
// the default 16-byte/4-wide fetch geometry.
func NewPipeline(topology string, opt PipelineOptions) (*Pipeline, error) {
	topo, err := compose.ParseTopology(topology)
	if err != nil {
		return nil, err
	}
	return compose.New(pred.DefaultConfig(), topo, opt)
}

// Build composes a Design into a pipeline.
func (d Design) Build() (*Pipeline, error) { return NewPipeline(d.Topology, d.Opt) }

// StorageKB returns the design's total predictor storage (Table I's
// "Storage" column) in kilobytes: sub-components only, management excluded,
// matching the paper's accounting.
func (d Design) StorageKB() (float64, error) {
	p, err := d.Build()
	if err != nil {
		return 0, err
	}
	bits := 0
	for _, b := range p.ComponentBudgets() {
		bits += b.TotalBits()
	}
	return float64(bits) / 8 / 1024, nil
}

// DefaultCoreConfig returns the Table II BOOM configuration.
func DefaultCoreConfig() CoreConfig { return uarch.DefaultConfig() }

// InOrderCoreConfig returns a scalar in-order (Rocket-class) host — the
// second host-processor integration demonstrating that a composed pipeline
// drops into any frontend (§IV-C).
func InOrderCoreConfig() CoreConfig { return uarch.InOrderConfig() }

// Workloads lists the SPECint17 proxy names in Fig. 10 order.
func Workloads() []string { return workloads.Names() }

// Workload builds a fresh instance of the named workload ("perlbench"...
// "xz", "dhrystone", "coremark", or the interpreted-ISA kernels "sort",
// "fib", "dispatch").  Programs are single-use: build one per simulation.
func Workload(name string) (*Program, error) { return workloads.Get(name) }

// CompileASM assembles a workload from RISC-style assembly text (see
// internal/isa for the instruction set).  Branch outcomes in the resulting
// program come from real register/memory semantics; like all programs, the
// result is single-use.
func CompileASM(name, src string) (*Program, error) {
	p, _, err := isa.Compile(name, src)
	return p, err
}

// RunConfig configures a full-core simulation.
type RunConfig struct {
	Design   Design
	Workload string
	MaxInsts uint64
	Seed     uint64
	// Core overrides the Table II core when non-nil.
	Core *CoreConfig
	// Paranoid arms the pipeline invariant checker; any recorded violation
	// makes Run return an error (the checker itself never alters results).
	Paranoid bool
	// Timeout, when > 0, aborts the simulation cooperatively once the
	// wall-clock budget is spent, and Run returns the context error.
	Timeout time.Duration
	// Observer, when non-nil, receives the cycle-level event stream
	// (predict/fire/mispredict/repair/update plus frontend redirects and
	// squashes).  Nil costs a single pointer check per emit site.
	Observer Observer
	// Profile, when non-nil, accumulates per-PC misprediction attribution
	// (the H2P report behind -top-branches).
	Profile *BranchProfile
	// Metrics, when non-nil, receives live cycle/instruction telemetry.
	Metrics *Metrics
}

// Run composes the design, attaches it to the core, runs the workload for
// MaxInsts architectural instructions, and returns the counters.
func Run(rc RunConfig) (*Result, error) {
	if rc.MaxInsts == 0 {
		rc.MaxInsts = 1_000_000
	}
	if rc.Seed == 0 {
		rc.Seed = 42
	}
	rc.Design.Opt.Paranoid = rc.Design.Opt.Paranoid || rc.Paranoid
	if rc.Observer != nil {
		rc.Design.Opt.Observer = rc.Observer
	}
	bp, err := rc.Design.Build()
	if err != nil {
		return nil, fmt.Errorf("cobra: composing %s: %w", rc.Design.Name, err)
	}
	prog, err := workloads.Get(rc.Workload)
	if err != nil {
		return nil, err
	}
	cfg := uarch.DefaultConfig()
	if rc.Core != nil {
		cfg = *rc.Core
	}
	core := uarch.NewCore(cfg, bp, prog, rc.Seed)
	if rc.Profile != nil {
		core.SetBranchProfile(rc.Profile)
	}
	if rc.Metrics != nil {
		core.SetMetrics(rc.Metrics)
	}
	var ctx context.Context
	if rc.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(context.Background(), rc.Timeout)
		defer cancel()
		core.SetContext(ctx)
	}
	res := core.Run(rc.MaxInsts)
	if ctx != nil && ctx.Err() != nil {
		return nil, fmt.Errorf("cobra: %s on %s: %w (after %d committed instructions)",
			rc.Design.Name, rc.Workload, ctx.Err(), res.Instructions)
	}
	if n := bp.ViolationCount(); n > 0 {
		return nil, fmt.Errorf("cobra: %d invariant violations; first: %w", n, bp.Violations()[0])
	}
	return res, nil
}

// NewCore assembles a core around an already-composed pipeline and program
// (the low-level path used by the experiment harness).
func NewCore(cfg CoreConfig, bp *Pipeline, prog *Program, seed uint64) *Core {
	return uarch.NewCore(cfg, bp, prog, seed)
}

// PredictorArea reports the Fig. 8 per-sub-component area breakdown.
func PredictorArea(d Design) (Breakdown, error) {
	p, err := d.Build()
	if err != nil {
		return Breakdown{}, err
	}
	return area.Predictor(p), nil
}

// CoreArea reports the Fig. 9 whole-core area breakdown.
func CoreArea(d Design, cfg CoreConfig) (Breakdown, error) {
	p, err := d.Build()
	if err != nil {
		return Breakdown{}, err
	}
	return area.Core(p, cfg), nil
}

// PipelineDiagram renders the Fig. 4/7-style ASCII pipeline diagram.
func PipelineDiagram(d Design) (string, error) {
	p, err := d.Build()
	if err != nil {
		return "", err
	}
	return compose.Diagram(p), nil
}

// InterfaceDiagram renders the Fig. 2 interface timing diagram.
func InterfaceDiagram() string { return compose.InterfaceDiagram(3) }

// CaptureTrace writes a branch trace of the workload's first n instructions.
func CaptureTrace(w io.Writer, workload string, seed, n uint64) (uint64, error) {
	prog, err := workloads.Get(workload)
	if err != nil {
		return 0, err
	}
	return trace.Capture(w, prog, seed, n)
}

// TraceSim evaluates a design under idealized trace-driven conditions
// (the ChampSim-style harness of §II-B).
func TraceSim(d Design, r io.Reader) (TraceResult, error) {
	p, err := d.Build()
	if err != nil {
		return TraceResult{}, err
	}
	tr, err := trace.NewReader(r)
	if err != nil {
		return TraceResult{}, err
	}
	res, err := trace.Simulate(p, tr)
	if err == nil && p.ViolationCount() > 0 {
		return res, fmt.Errorf("cobra: %d invariant violations; first: %w",
			p.ViolationCount(), p.Violations()[0])
	}
	return res, err
}

// CommercialSystems returns the Skylake/Graviton proxies of Table III.
func CommercialSystems() []CommercialSystem { return commercial.Systems() }

// RunCommercial runs a workload on a commercial proxy.
func RunCommercial(sys CommercialSystem, workload string, maxInsts, seed uint64) (*Result, error) {
	return Run(RunConfig{
		Design:   Design{Name: sys.Name, Topology: sys.Topology, Opt: sys.Opt},
		Workload: workload,
		MaxInsts: maxInsts,
		Seed:     seed,
		Core:     &sys.Core,
	})
}

// HarmonicMean re-exports the Fig. 10 HARMEAN summarizer.
func HarmonicMean(xs []float64) (float64, bool) { return stats.HarmonicMean(xs) }

// Table is the plain-text table renderer used by the harness and tools.
type Table = stats.Table
