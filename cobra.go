package cobra

import (
	"fmt"
	"io"
	"time"

	"cobra/internal/area"
	"cobra/internal/backend"
	"cobra/internal/client"
	"cobra/internal/commercial"
	"cobra/internal/compose"
	"cobra/internal/faults"
	"cobra/internal/isa"
	"cobra/internal/obs"
	"cobra/internal/pred"
	"cobra/internal/program"
	"cobra/internal/spec"
	"cobra/internal/stats"
	"cobra/internal/trace"
	"cobra/internal/uarch"
	"cobra/internal/workloads"
)

// Re-exported building blocks of the public API.
type (
	// Pipeline is a composed predictor pipeline (§IV).
	Pipeline = compose.Pipeline
	// PipelineOptions configures the generated management structures.
	PipelineOptions = compose.Options
	// GHRPolicy selects the speculative-history repair policy (§VI-B).
	GHRPolicy = compose.GHRPolicy
	// Topology is a parsed predictor topology.
	Topology = compose.Topology
	// CoreConfig describes the host core (Table II).
	CoreConfig = uarch.Config
	// Core is the assembled BOOM-like machine.
	Core = uarch.Core
	// Result carries the performance counters of a run.
	Result = stats.Sim
	// Breakdown is an area report (Fig. 8 / Fig. 9).
	Breakdown = area.Breakdown
	// FetchConfig is the fetch-packet geometry shared by predictor and core.
	FetchConfig = pred.Config
	// Program is a synthetic workload image.
	Program = program.Program
	// TraceResult summarizes a trace-driven evaluation (§II-B comparison).
	TraceResult = trace.SimResult
	// CommercialSystem is a Table III commercial-core proxy.
	CommercialSystem = commercial.System
	// InvariantError is a paranoid-mode invariant violation report.
	InvariantError = compose.InvariantError
	// FaultPlan describes a deterministic fault-injection campaign; wire it
	// into a pipeline via PipelineOptions.Wrap (see internal/faults).
	FaultPlan = faults.Plan
	// FaultKind is a bitmask of injectable fault classes.
	FaultKind = faults.Kind
	// FaultRecord describes one injected fault.
	FaultRecord = faults.Record
	// Event is one observability record (predict/fire/mispredict/repair/
	// update/redirect/squash); see internal/obs.
	Event = obs.Event
	// EventKind discriminates Event records.
	EventKind = obs.Kind
	// Observer receives Events; wire one in via PipelineOptions.Observer or
	// RunConfig.Observer.
	Observer = obs.Observer
	// Tracer is the ring-buffered Observer behind -events.
	Tracer = obs.Tracer
	// BranchProfile accumulates per-PC misprediction attribution (H2P).
	BranchProfile = obs.BranchProfile
	// BranchStat is one PC's row in a BranchProfile.
	BranchStat = obs.BranchStat
	// Metrics is the live telemetry sink behind -metrics-addr.
	Metrics = obs.Metrics
)

// Event kinds: the five §III-E interface events plus the frontend records.
const (
	EventPredict    = obs.KPredict
	EventFire       = obs.KFire
	EventMispredict = obs.KMispredict
	EventRepair     = obs.KRepair
	EventUpdate     = obs.KUpdate
	EventRedirect   = obs.KRedirect
	EventSquash     = obs.KSquash
)

// ParseEventKind parses an event-kind name ("predict", "fire", ...).
func ParseEventKind(s string) (EventKind, bool) { return obs.ParseKind(s) }

// NewTracer returns a ring-buffered event tracer; capacity 0 means the
// default (65536 events).  When the ring overflows, the oldest events are
// dropped and Dropped()/Total() account for the loss.
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// NewBranchProfile returns an empty per-PC misprediction profile; wire it in
// via RunConfig.Profile (or Observe.Attribution in a Spec) and render the
// hardest branches with its Table method.
func NewBranchProfile() *BranchProfile { return obs.NewBranchProfile() }

// NewMetrics returns a live telemetry sink with the uptime clock started;
// all of its methods are safe for concurrent use.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// WriteChromeTrace writes events as Chrome trace_event JSON, loadable in
// chrome://tracing or ui.perfetto.dev.
func WriteChromeTrace(w io.Writer, events []Event) error { return obs.WriteChrome(w, events) }

// WriteBinaryEvents writes events in the compact binary format read by
// cobra-events and ReadBinaryEvents.
func WriteBinaryEvents(w io.Writer, events []Event) error { return obs.WriteBinary(w, events) }

// ReadBinaryEvents reads a compact binary event stream produced by
// WriteBinaryEvents, validating its header and record framing.
func ReadBinaryEvents(r io.Reader) ([]Event, error) { return obs.ReadBinary(r) }

// ServeMetrics starts an HTTP listener on addr serving m's Prometheus text
// exposition at / and /metrics.  It returns the bound address (useful with
// ":0") and a closer that releases the port.
func ServeMetrics(addr string, m *Metrics) (string, func() error, error) {
	return obs.ServeMetrics(addr, m)
}

// ServePprof starts an HTTP listener on addr exposing net/http/pprof (CPU
// and heap profiles, goroutine dumps, and the runtime execution tracer).  It
// returns the bound address and a closer that releases the port.
func ServePprof(addr string) (string, func() error, error) { return obs.ServePprof(addr) }

// FlightRecorder is the process-wide bounded ring of recent structured
// records (log lines, span completions, errors); see internal/obs.
type FlightRecorder = obs.FlightRecorder

// EnableFlightRecorder arms the always-on flight recorder with a ring of
// capacity records (0 = default 1024) and returns it.  Idempotent: once
// armed, later calls return the existing ring.  The cobra tools arm it
// automatically through their shared logger; embedders call this to get
// crash context from DumpFlightOnPanic or /debug/flight.
func EnableFlightRecorder(capacity int) *FlightRecorder { return obs.EnableFlight(capacity) }

// Injectable fault classes (see internal/faults for semantics).
const (
	FaultCorruptMeta   = faults.CorruptMeta
	FaultDropUpdate    = faults.DropUpdate
	FaultDupUpdate     = faults.DupUpdate
	FaultDelayFire     = faults.DelayFire
	FaultDelayRepair   = faults.DelayRepair
	FaultFlipDirection = faults.FlipDirection
	FaultFlipTarget    = faults.FlipTarget
	AllFaultKinds      = faults.AllKinds
)

// ParseFaultKinds parses a comma/pipe-separated fault-kind list ("all",
// "corrupt-meta,drop-update") into a FaultKind mask.
func ParseFaultKinds(s string) (FaultKind, error) { return faults.ParseKinds(s) }

// GHR repair policies (§VI-B).
const (
	GHRRepair       = compose.GHRRepair
	GHRRepairReplay = compose.GHRRepairReplay
	GHRNoRepair     = compose.GHRNoRepair
)

// Design names a predictor design point: a topology plus management
// options.  The three constructors below reproduce Table I.
type Design struct {
	Name     string
	Topology string
	Opt      PipelineOptions
}

// preset materializes a spec.Preset design point as a Design; the preset
// table is the single source of truth for Table I.
func preset(name string) Design {
	s, err := spec.Preset(name)
	if err != nil {
		panic(err) // built-in preset names never miss
	}
	opt, err := s.Pipeline.Options()
	if err != nil {
		panic(err)
	}
	return Design{Name: s.Design, Topology: s.Topology, Opt: opt}
}

// TAGEL is the paper's "TAGE-L" design (Table I): a 7-table TAGE with a
// loop corrector over a BTB + bimodal base and a single-cycle micro-BTB;
// 64-bit global history.
func TAGEL() Design { return preset("tage-l") }

// B2 is the original-BOOM-like design (Table I): one partially tagged
// global table over a BTB + bimodal base; 16-bit global history.
func B2() Design { return preset("b2") }

// Tourney is the Alpha-21264-like design (Table I): a global-history
// selector choosing between global- and local-history counter tables, with
// a BTB on the global side; 32-bit global and 256 x 32-bit local histories.
func Tourney() Design { return preset("tourney") }

// Designs returns the three evaluated designs in Table I order
// (Tourney, B2, TAGE-L).
func Designs() []Design { return []Design{Tourney(), B2(), TAGEL()} }

// NewPipeline composes a predictor pipeline from a topology string using
// the default 16-byte/4-wide fetch geometry.
func NewPipeline(topology string, opt PipelineOptions) (*Pipeline, error) {
	topo, err := compose.ParseTopology(topology)
	if err != nil {
		return nil, err
	}
	return compose.New(pred.DefaultConfig(), topo, opt)
}

// Build composes a Design into a pipeline.
func (d Design) Build() (*Pipeline, error) { return NewPipeline(d.Topology, d.Opt) }

// StorageKB returns the design's total predictor storage (Table I's
// "Storage" column) in kilobytes: sub-components only, management excluded,
// matching the paper's accounting.
func (d Design) StorageKB() (float64, error) {
	p, err := d.Build()
	if err != nil {
		return 0, err
	}
	bits := 0
	for _, b := range p.ComponentBudgets() {
		bits += b.TotalBits()
	}
	return float64(bits) / 8 / 1024, nil
}

// DefaultCoreConfig returns the Table II BOOM configuration.
func DefaultCoreConfig() CoreConfig { return uarch.DefaultConfig() }

// InOrderCoreConfig returns a scalar in-order (Rocket-class) host — the
// second host-processor integration demonstrating that a composed pipeline
// drops into any frontend (§IV-C).
func InOrderCoreConfig() CoreConfig { return uarch.InOrderConfig() }

// Workloads lists the SPECint17 proxy names in Fig. 10 order.
func Workloads() []string { return workloads.Names() }

// Workload builds a fresh instance of the named workload ("perlbench"...
// "xz", "dhrystone", "coremark", or the interpreted-ISA kernels "sort",
// "fib", "dispatch").  Programs are single-use: build one per simulation.
func Workload(name string) (*Program, error) { return workloads.Get(name) }

// CompileASM assembles a workload from RISC-style assembly text (see
// internal/isa for the instruction set).  Branch outcomes in the resulting
// program come from real register/memory semantics; like all programs, the
// result is single-use.
func CompileASM(name, src string) (*Program, error) {
	p, _, err := isa.Compile(name, src)
	return p, err
}

// Spec is the canonical, versioned, JSON-serializable description of one
// full-core simulation (see internal/spec): the single run-request type the
// library, the CLI tools, the parallel runner, and the cobra-serve daemon
// all construct and consume.  Its Canonicalize, Validate, and Digest methods
// normalize a spec and derive the content address that keys result caches.
type Spec = spec.RunSpec

// SpecOutcome is everything one Spec execution produced: counters, captured
// events, and the attribution profile.
type SpecOutcome = spec.Outcome

// SpecVersion is the RunSpec schema version this build speaks.
const SpecVersion = spec.Version

// ParseSpec decodes a Spec from JSON, rejecting unknown fields.
func ParseSpec(data []byte) (*Spec, error) { return spec.Parse(data) }

// Spec returns the design point's canonical run spec for a workload, ready
// to adjust (seed, budget, observers) and Run, serialize, or POST to a
// cobra-serve daemon.
func (d Design) Spec(workload string) *Spec {
	return &Spec{
		Design:   d.Name,
		Topology: d.Topology,
		Pipeline: spec.FromOptions(d.Opt),
		Workload: workload,
		Paranoid: d.Opt.Paranoid,
	}
}

// RunSpec executes the simulation a spec describes and returns the full
// outcome.  The spec is not mutated; callers that want the canonical form
// that actually ran (for digests or provenance) should Canonicalize first.
func RunSpec(s *Spec) (*SpecOutcome, error) { return spec.Exec(s, spec.Attach{}) }

// SpecSet is a named, canonicalizable grid over Spec fields — one base spec
// plus axes that vary it.  Sets expand deterministically (row-major cross
// product), digest like specs do, and are the shared sweep data model of
// cobra-sweep and cobra-compose.
type SpecSet = spec.Set

// SpecAxis varies one Spec field over a list of values inside a SpecSet.
type SpecAxis = spec.Axis

// ParseSpecSet decodes a SpecSet from JSON, rejecting unknown fields.
func ParseSpecSet(data []byte) (*SpecSet, error) { return spec.ParseSet(data) }

// Backend is the unified execution seam: something that runs canonical
// Specs and returns their outcomes, either in-process or on a cobra-serve
// daemon.  Every grid-shaped consumer (cobra-experiments, cobra-compose,
// library callers) takes a Backend instead of choosing locations itself,
// and the spec digest guarantees both implementations return byte-identical
// outcomes for the same spec.
type Backend = backend.Backend

// LocalBackend returns a Backend that executes specs in this process
// through the parallel runner's containment boundary (panics become errors,
// telemetry lands on m when non-nil).
func LocalBackend(m *Metrics) Backend { return &backend.Local{Metrics: m} }

// RemoteBackend returns a Backend that executes specs on the cobra-serve
// daemon at url through the retrying client (idempotent resubmission by
// digest; restarts, backpressure, and drains are ridden out).
func RemoteBackend(url string) (Backend, error) {
	return backend.NewRemote(client.Config{BaseURL: url})
}

// RunConfig configures a full-core simulation.
type RunConfig struct {
	Design   Design
	Workload string
	MaxInsts uint64
	Seed     uint64
	// Core overrides the Table II core when non-nil.
	Core *CoreConfig
	// Paranoid arms the pipeline invariant checker; any recorded violation
	// makes Run return an error (the checker itself never alters results).
	Paranoid bool
	// Timeout, when > 0, aborts the simulation cooperatively once the
	// wall-clock budget is spent, and Run returns the context error.
	// Sub-millisecond values round down to no timeout (Spec.TimeoutMS is
	// millisecond-grained).
	Timeout time.Duration
	// Observer, when non-nil, receives the cycle-level event stream
	// (predict/fire/mispredict/repair/update plus frontend redirects and
	// squashes).  Nil costs a single pointer check per emit site.
	Observer Observer
	// Profile, when non-nil, accumulates per-PC misprediction attribution
	// (the H2P report behind -top-branches).
	Profile *BranchProfile
	// Metrics, when non-nil, receives live cycle/instruction telemetry.
	Metrics *Metrics
}

// Spec extracts the serializable description of the run: everything that
// determines the simulated result.  The process-local attachments (Observer,
// Profile, Metrics) stay behind — they describe how this process watches the
// run, not what the run is — as do the Design's non-serializable Wrap and
// Observer hooks.
func (rc RunConfig) Spec() *Spec {
	s := &Spec{
		Design:    rc.Design.Name,
		Topology:  rc.Design.Topology,
		Pipeline:  spec.FromOptions(rc.Design.Opt),
		Workload:  rc.Workload,
		Seed:      rc.Seed,
		Insts:     rc.MaxInsts,
		Paranoid:  rc.Paranoid || rc.Design.Opt.Paranoid,
		TimeoutMS: rc.Timeout.Milliseconds(),
	}
	if rc.Core != nil {
		core := *rc.Core
		s.Core = &core
	}
	return s
}

// Run composes the design, attaches it to the core, runs the workload for
// MaxInsts architectural instructions, and returns the counters.  It is a
// thin veneer over the canonical spec path: RunConfig splits into a Spec
// (the serializable what-to-run) plus the process-local attachments, and
// spec.Exec does the rest.
func Run(rc RunConfig) (*Result, error) {
	observer := rc.Observer
	if observer == nil {
		observer = rc.Design.Opt.Observer
	}
	out, err := spec.Exec(rc.Spec(), spec.Attach{
		Observer: observer,
		Profile:  rc.Profile,
		Metrics:  rc.Metrics,
		Wrap:     rc.Design.Opt.Wrap,
	})
	if err != nil {
		return nil, err
	}
	return out.Stats, nil
}

// NewCore assembles a core around an already-composed pipeline and program
// (the low-level path used by the experiment harness).
func NewCore(cfg CoreConfig, bp *Pipeline, prog *Program, seed uint64) *Core {
	return uarch.NewCore(cfg, bp, prog, seed)
}

// PredictorArea reports the Fig. 8 per-sub-component area breakdown.
func PredictorArea(d Design) (Breakdown, error) {
	p, err := d.Build()
	if err != nil {
		return Breakdown{}, err
	}
	return area.Predictor(p), nil
}

// CoreArea reports the Fig. 9 whole-core area breakdown.
func CoreArea(d Design, cfg CoreConfig) (Breakdown, error) {
	p, err := d.Build()
	if err != nil {
		return Breakdown{}, err
	}
	return area.Core(p, cfg), nil
}

// PipelineDiagram renders the Fig. 4/7-style ASCII pipeline diagram.
func PipelineDiagram(d Design) (string, error) {
	p, err := d.Build()
	if err != nil {
		return "", err
	}
	return compose.Diagram(p), nil
}

// InterfaceDiagram renders the Fig. 2 interface timing diagram.
func InterfaceDiagram() string { return compose.InterfaceDiagram(3) }

// CaptureTrace writes a branch trace of the workload's first n instructions.
func CaptureTrace(w io.Writer, workload string, seed, n uint64) (uint64, error) {
	prog, err := workloads.Get(workload)
	if err != nil {
		return 0, err
	}
	return trace.Capture(w, prog, seed, n)
}

// TraceSim evaluates a design under idealized trace-driven conditions
// (the ChampSim-style harness of §II-B).
func TraceSim(d Design, r io.Reader) (TraceResult, error) {
	p, err := d.Build()
	if err != nil {
		return TraceResult{}, err
	}
	tr, err := trace.NewReader(r)
	if err != nil {
		return TraceResult{}, err
	}
	res, err := trace.Simulate(p, tr)
	if err == nil && p.ViolationCount() > 0 {
		return res, fmt.Errorf("cobra: %d invariant violations; first: %w",
			p.ViolationCount(), p.Violations()[0])
	}
	return res, err
}

// CommercialSystems returns the Skylake/Graviton proxies of Table III.
func CommercialSystems() []CommercialSystem { return commercial.Systems() }

// RunCommercial runs a workload on a commercial proxy.
func RunCommercial(sys CommercialSystem, workload string, maxInsts, seed uint64) (*Result, error) {
	return Run(RunConfig{
		Design:   Design{Name: sys.Name, Topology: sys.Topology, Opt: sys.Opt},
		Workload: workload,
		MaxInsts: maxInsts,
		Seed:     seed,
		Core:     &sys.Core,
	})
}

// HarmonicMean re-exports the Fig. 10 HARMEAN summarizer.
func HarmonicMean(xs []float64) (float64, bool) { return stats.HarmonicMean(xs) }

// Table is the plain-text table renderer used by the harness and tools.
type Table = stats.Table
