package cobra

import (
	"bytes"
	"strings"
	"testing"
)

func TestDesignsBuild(t *testing.T) {
	for _, d := range Designs() {
		p, err := d.Build()
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if p.Depth() != 3 {
			t.Errorf("%s: depth = %d, want 3", d.Name, p.Depth())
		}
	}
}

func TestTableIStorageOrdering(t *testing.T) {
	kb := map[string]float64{}
	for _, d := range Designs() {
		v, err := d.StorageKB()
		if err != nil {
			t.Fatal(err)
		}
		kb[d.Name] = v
		if v <= 0 {
			t.Errorf("%s: zero storage", d.Name)
		}
	}
	// Table I: TAGE-L (28 KB) is by far the largest; B2 (6.5) and Tourney
	// (6.8) are comparable to each other.  Our absolute numbers for B2 and
	// Tourney run higher because this implementation counts BTB tag+target
	// storage, which the paper's storage column appears to exclude; the
	// TAGE-L figure lands at the paper's 28 KB (see EXPERIMENTS.md).
	if !(kb["tage-l"] > 1.5*kb["b2"] && kb["tage-l"] > 1.5*kb["tourney"]) {
		t.Errorf("storage ordering off: %v", kb)
	}
	if kb["tage-l"] < 20 || kb["tage-l"] > 40 {
		t.Errorf("TAGE-L storage %.1f KB far from the paper's 28 KB", kb["tage-l"])
	}
}

func TestRunQuick(t *testing.T) {
	res, err := Run(RunConfig{Design: B2(), Workload: "dhrystone", MaxInsts: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions < 50000 || res.IPC() <= 0 {
		t.Errorf("bad result: %v", res)
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if _, err := Run(RunConfig{Design: B2(), Workload: "nope"}); err == nil {
		t.Error("unknown workload must error")
	}
}

func TestRunBadTopology(t *testing.T) {
	d := Design{Name: "bad", Topology: "NOSUCH9 >"}
	if _, err := Run(RunConfig{Design: d, Workload: "dhrystone", MaxInsts: 1}); err == nil {
		t.Error("bad topology must error")
	}
}

func TestAreaAPIs(t *testing.T) {
	bd, err := PredictorArea(TAGEL())
	if err != nil {
		t.Fatal(err)
	}
	if bd.Total() <= 0 {
		t.Error("empty predictor breakdown")
	}
	cd, err := CoreArea(TAGEL(), DefaultCoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cd.Total() <= bd.Total() {
		t.Error("core must dwarf its predictor")
	}
}

func TestDiagrams(t *testing.T) {
	s, err := PipelineDiagram(Tourney())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "TOURNEY3") {
		t.Errorf("diagram missing root:\n%s", s)
	}
	if !strings.Contains(InterfaceDiagram(), "Fetch-0") {
		t.Error("interface diagram malformed")
	}
}

func TestTraceRoundTripThroughFacade(t *testing.T) {
	var buf bytes.Buffer
	n, err := CaptureTrace(&buf, "dhrystone", 1, 20000)
	if err != nil || n == 0 {
		t.Fatalf("capture: n=%d err=%v", n, err)
	}
	res, err := TraceSim(B2(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Branches == 0 {
		t.Error("no branches in trace sim")
	}
}

func TestCommercialSystems(t *testing.T) {
	sys := CommercialSystems()
	if len(sys) != 2 || sys[0].Name != "skylake" || sys[1].Name != "graviton" {
		t.Fatalf("systems = %+v", sys)
	}
	res, err := RunCommercial(sys[1], "dhrystone", 30000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC() <= 0 {
		t.Error("commercial proxy did not run")
	}
}

func TestWorkloadsList(t *testing.T) {
	ws := Workloads()
	if len(ws) != 10 {
		t.Errorf("SPECint proxy count = %d, want 10", len(ws))
	}
	if ws[0] != "perlbench" || ws[9] != "xz" {
		t.Errorf("unexpected order: %v", ws)
	}
}

func TestInOrderHostThroughFacade(t *testing.T) {
	core := InOrderCoreConfig()
	res, err := Run(RunConfig{Design: B2(), Workload: "dhrystone", MaxInsts: 40000, Core: &core})
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC() <= 0 || res.IPC() > 1.01 {
		t.Errorf("in-order IPC = %.3f", res.IPC())
	}
}

func TestCompileASMThroughFacade(t *testing.T) {
	p, err := CompileASM("tiny", `
start:
    li r1, 0
loop:
    addi r1, r1, 1
    li r2, 10
    blt r1, r2, loop
    j start
`)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := B2().Build()
	if err != nil {
		t.Fatal(err)
	}
	res := NewCore(DefaultCoreConfig(), bp, p, 1).Run(20000)
	if res.Accuracy() < 0.85 {
		t.Errorf("trivial counted loop accuracy = %.3f", res.Accuracy())
	}
	if _, err := CompileASM("bad", "nop"); err == nil {
		t.Error("open-ended program must be rejected")
	}
}
