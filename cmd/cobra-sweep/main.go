// Command cobra-sweep runs design-space sweeps and emits CSV — the
// productivity story of the paper's Fig. 1 flow ("design feedback") made
// scriptable.  It crosses a set of topologies with a set of workloads and,
// optionally, host configurations, reporting accuracy, IPC, storage, area,
// and energy per point.
//
// Usage:
//
//	cobra-sweep -workloads gcc,mcf,leela \
//	    -topologies "BIM2;GTAG3 > BTB2 > BIM2;LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1"
//	cobra-sweep -designs -workloads all -insts 500000 -host inorder
//	cobra-sweep -tagesizes 512,1024,2048,4096 -workloads gcc -j 8
//	cobra-sweep -designs -workloads all -keep-going -timeout 2m
//
// Every cell of the (design × workload) grid is a canonical RunSpec — the
// same object cobra-sim -spec runs and cobra-serve caches — fanned out
// across -j worker goroutines (default GOMAXPROCS); rows are emitted in grid
// order and are bit-identical for every -j.  With -keep-going, a failing
// cell (panic, timeout, bad config) is reported on stderr while every
// healthy cell still emits its row; without it the first failure aborts the
// sweep.
package main

import (
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"cobra"
	"cobra/internal/area"
	"cobra/internal/cli"
	"cobra/internal/runner"
	"cobra/internal/spec"
)

func main() { cli.Main("cobra-sweep", run) }

func run() error {
	f := cli.AddRunFlags(flag.CommandLine,
		cli.GWorkload|cli.GBudget|cli.GHost|cli.GGuard|cli.GTelemetry|cli.GProgress)
	cli.SetDefault(flag.CommandLine, "insts", "300000")
	var (
		topologies = flag.String("topologies", "", "semicolon-separated topology strings")
		designsF   = flag.Bool("designs", false, "sweep the three Table I designs")
		tageSizes  = flag.String("tagesizes", "", "comma-separated TAGE row counts to sweep inside the TAGE-L topology")
		workloadsF = flag.String("workloads", "", "comma-separated workloads, or 'all' for the SPECint proxies (overrides -workload)")
		ghist      = flag.Uint("ghist", 64, "global history bits for -topologies points")
		jobsN      = flag.Int("j", runtime.GOMAXPROCS(0), "parallel simulations (1 = serial; output identical for any value)")
		keepGoing  = flag.Bool("keep-going", false, "report failed cells on stderr and keep sweeping instead of aborting")
	)
	flag.Parse()
	if exit, err := f.Handle("cobra-sweep"); err != nil || exit {
		return err
	}

	met, progress, closeTel, err := f.Telemetry("cobra-sweep")
	if err != nil {
		return err
	}
	defer closeTel()

	type designPoint struct {
		name     string
		topology string
		pl       spec.Pipeline
	}
	var points []designPoint
	presets := func() ([]designPoint, error) {
		var ps []designPoint
		for _, name := range spec.PresetNames() {
			p, err := spec.Preset(name)
			if err != nil {
				return nil, err
			}
			ps = append(ps, designPoint{p.Design, p.Topology, p.Pipeline})
		}
		return ps, nil
	}
	switch {
	case *designsF:
		if points, err = presets(); err != nil {
			return err
		}
	case *tageSizes != "":
		for _, s := range strings.Split(*tageSizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				return fmt.Errorf("bad -tagesizes entry %q", s)
			}
			points = append(points, designPoint{
				name:     fmt.Sprintf("tage-l-%d", n),
				topology: fmt.Sprintf("LOOP3 > TAGE3(%d) > BTB2 > BIM2 > UBTB1", n),
				pl:       spec.Pipeline{GHistBits: 64},
			})
		}
	case *topologies != "":
		for i, topo := range strings.Split(*topologies, ";") {
			points = append(points, designPoint{
				name:     fmt.Sprintf("t%d", i),
				topology: strings.TrimSpace(topo),
				pl:       spec.Pipeline{GHistBits: *ghist},
			})
		}
	default:
		if points, err = presets(); err != nil {
			return err
		}
	}

	var ws []string
	switch {
	case *workloadsF == "all":
		ws = cobra.Workloads()
	case *workloadsF != "":
		ws = strings.Split(*workloadsF, ",")
	default:
		ws = []string{*f.Workload}
	}

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	w.Write([]string{"design", "topology", "workload", "host",
		"instructions", "cycles", "ipc", "mpki", "accuracy",
		"bubble_frac", "storage_kb", "area_ku", "energy_eu_per_kinst"})

	// Per-design static metrics (storage, area) are computed once; the
	// (design × workload) simulation grid fans out across the runner.
	type static struct {
		kb   float64
		arKU float64
	}
	// A design that fails here (bad topology, bad geometry) aborts the sweep
	// unless -keep-going, which reports it once on stderr and drops its row
	// of cells while the rest of the grid still runs.
	statics := make([]static, len(points))
	okDesign := make([]bool, len(points))
	skippedCells := 0
	for i, p := range points {
		opt, err := p.pl.Options()
		if err == nil {
			d := cobra.Design{Name: p.name, Topology: p.topology, Opt: opt}
			var kb float64
			if kb, err = d.StorageKB(); err == nil {
				var bd cobra.Breakdown
				if bd, err = cobra.PredictorArea(d); err == nil {
					statics[i] = static{kb, bd.Total() / 1000}
					okDesign[i] = true
					continue
				}
			}
		}
		if !*keepGoing {
			return err
		}
		fmt.Fprintln(os.Stderr, "cobra-sweep:", err)
		skippedCells += len(ws)
	}

	type point struct {
		design   int
		workload string
	}
	var grid []point
	var specs []*spec.RunSpec
	for di, p := range points {
		if !okDesign[di] {
			continue
		}
		for _, wl := range ws {
			wl = strings.TrimSpace(wl)
			grid = append(grid, point{di, wl})
			specs = append(specs, &spec.RunSpec{
				Design:          p.name,
				Topology:        p.topology,
				Pipeline:        p.pl,
				Workload:        wl,
				Seed:            *f.Seed,
				Insts:           *f.Insts,
				Warmup:          *f.Warmup,
				Host:            *f.Host,
				SerializedFetch: *f.Serialized,
				SFB:             *f.SFB,
				Paranoid:        *f.Paranoid,
			})
		}
	}
	policy := runner.FailFast
	if *keepGoing {
		policy = runner.CollectAll
	}
	ropt := runner.Options{
		Workers: *jobsN, Policy: policy, Timeout: *f.Timeout, Metrics: met,
	}
	if progress > 0 {
		ropt.Progress = os.Stderr
		ropt.ProgressEvery = progress
	}
	full, err := runner.RunSpecs(specs, ropt)
	var batch *runner.BatchError
	if err != nil && !(errors.As(err, &batch) && *keepGoing) {
		return err
	}
	failed := map[int]bool{}
	if batch != nil {
		for _, je := range batch.Errs {
			failed[je.Index] = true
			fmt.Fprintln(os.Stderr, "cobra-sweep:", je)
		}
	}
	for i, r := range full {
		if failed[i] {
			continue
		}
		p, res := points[grid[i].design], r.Outcome.Stats
		energy := area.Energy(r.Outcome.Pipeline)
		w.Write([]string{
			p.name, p.topology, grid[i].workload, *f.Host,
			fmt.Sprint(res.Instructions), fmt.Sprint(res.Cycles),
			fmt.Sprintf("%.4f", res.IPC()),
			fmt.Sprintf("%.3f", res.MPKI()),
			fmt.Sprintf("%.5f", res.Accuracy()),
			fmt.Sprintf("%.4f", res.BubbleFrac()),
			fmt.Sprintf("%.1f", statics[grid[i].design].kb),
			fmt.Sprintf("%.1f", statics[grid[i].design].arKU),
			fmt.Sprintf("%.0f", energy.PerKiloInst(res.Instructions)),
		})
	}
	if n := len(failed) + skippedCells; n > 0 {
		w.Flush()
		return fmt.Errorf("%d of %d points failed (successful rows emitted above)",
			n, len(specs)+skippedCells)
	}
	return nil
}
