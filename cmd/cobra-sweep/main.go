// Command cobra-sweep runs design-space sweeps and emits CSV — the
// productivity story of the paper's Fig. 1 flow ("design feedback") made
// scriptable.  It crosses a set of topologies with a set of workloads and,
// optionally, host configurations, reporting accuracy, IPC, storage, area,
// and energy per point.
//
// Usage:
//
//	cobra-sweep -workloads gcc,mcf,leela \
//	    -topologies "BIM2;GTAG3 > BTB2 > BIM2;LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1"
//	cobra-sweep -designs -workloads all -insts 500000 -host inorder
//	cobra-sweep -tagesizes 512,1024,2048,4096 -workloads gcc -j 8
//
// The (design × workload) grid fans out across -j worker goroutines
// (default GOMAXPROCS); rows are emitted in grid order and are bit-identical
// for every -j.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"cobra"
	"cobra/internal/area"
	"cobra/internal/runner"
)

func main() {
	var (
		topologies = flag.String("topologies", "", "semicolon-separated topology strings")
		designsF   = flag.Bool("designs", false, "sweep the three Table I designs")
		tageSizes  = flag.String("tagesizes", "", "comma-separated TAGE row counts to sweep inside the TAGE-L topology")
		workloadsF = flag.String("workloads", "dhrystone", "comma-separated workloads, or 'all' for the SPECint proxies")
		insts      = flag.Uint64("insts", 300_000, "instructions per point")
		seed       = flag.Uint64("seed", 42, "workload seed")
		ghist      = flag.Uint("ghist", 64, "global history bits for -topologies points")
		host       = flag.String("host", "boom", "host core: boom (Table II) or inorder (scalar)")
		jobsN      = flag.Int("j", runtime.GOMAXPROCS(0), "parallel simulations (1 = serial; output identical for any value)")
	)
	flag.Parse()

	var points []cobra.Design
	switch {
	case *designsF:
		points = cobra.Designs()
	case *tageSizes != "":
		for _, s := range strings.Split(*tageSizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				fatal(fmt.Errorf("bad -tagesizes entry %q", s))
			}
			points = append(points, cobra.Design{
				Name:     fmt.Sprintf("tage-l-%d", n),
				Topology: fmt.Sprintf("LOOP3 > TAGE3(%d) > BTB2 > BIM2 > UBTB1", n),
				Opt:      cobra.PipelineOptions{GHistBits: 64},
			})
		}
	case *topologies != "":
		for i, topo := range strings.Split(*topologies, ";") {
			points = append(points, cobra.Design{
				Name:     fmt.Sprintf("t%d", i),
				Topology: strings.TrimSpace(topo),
				Opt:      cobra.PipelineOptions{GHistBits: *ghist},
			})
		}
	default:
		points = cobra.Designs()
	}

	var ws []string
	if *workloadsF == "all" {
		ws = cobra.Workloads()
	} else {
		ws = strings.Split(*workloadsF, ",")
	}

	core := cobra.DefaultCoreConfig()
	if *host == "inorder" {
		core = cobra.InOrderCoreConfig()
	} else if *host != "boom" {
		fatal(fmt.Errorf("unknown -host %q", *host))
	}

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	w.Write([]string{"design", "topology", "workload", "host",
		"instructions", "cycles", "ipc", "mpki", "accuracy",
		"bubble_frac", "storage_kb", "area_ku", "energy_eu_per_kinst"})

	// Per-design static metrics (storage, area) are computed once; the
	// (design × workload) simulation grid fans out across the runner.
	type static struct {
		kb   float64
		arKU float64
	}
	statics := make([]static, len(points))
	for i, d := range points {
		kb, err := d.StorageKB()
		if err != nil {
			fatal(err)
		}
		bd, err := cobra.PredictorArea(d)
		if err != nil {
			fatal(err)
		}
		statics[i] = static{kb, bd.Total() / 1000}
	}

	type point struct {
		design   int
		workload string
	}
	var grid []point
	var jobs []runner.Sim
	for di, d := range points {
		for _, wl := range ws {
			grid = append(grid, point{di, strings.TrimSpace(wl)})
			jobs = append(jobs, runner.Sim{
				Topology: d.Topology, Opt: d.Opt,
				Workload: strings.TrimSpace(wl),
				Core:     core, Insts: *insts,
			})
		}
	}
	full, err := runner.RunFull(jobs, runner.Options{Workers: *jobsN, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	for i, r := range full {
		d, res := points[grid[i].design], r.Sim
		energy := area.Energy(r.Pipeline)
		w.Write([]string{
			d.Name, d.Topology, grid[i].workload, *host,
			fmt.Sprint(res.Instructions), fmt.Sprint(res.Cycles),
			fmt.Sprintf("%.4f", res.IPC()),
			fmt.Sprintf("%.3f", res.MPKI()),
			fmt.Sprintf("%.5f", res.Accuracy()),
			fmt.Sprintf("%.4f", res.BubbleFrac()),
			fmt.Sprintf("%.1f", statics[grid[i].design].kb),
			fmt.Sprintf("%.1f", statics[grid[i].design].arKU),
			fmt.Sprintf("%.0f", energy.PerKiloInst(res.Instructions)),
		})
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cobra-sweep:", err)
	os.Exit(1)
}
