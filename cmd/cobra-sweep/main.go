// Command cobra-sweep runs design-space sweeps and emits CSV — the
// productivity story of the paper's Fig. 1 flow ("design feedback") made
// scriptable.  It crosses a set of topologies with a set of workloads and,
// optionally, host configurations, reporting accuracy, IPC, storage, area,
// and energy per point.
//
// Usage:
//
//	cobra-sweep -workloads gcc,mcf,leela \
//	    -topologies "BIM2;GTAG3 > BTB2 > BIM2;LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1"
//	cobra-sweep -designs -workloads all -insts 500000 -host inorder
//	cobra-sweep -tagesizes 512,1024,2048,4096 -workloads gcc -j 8
//	cobra-sweep -designs -workloads all -keep-going -timeout 2m
//
// The (design × workload) grid fans out across -j worker goroutines
// (default GOMAXPROCS); rows are emitted in grid order and are bit-identical
// for every -j.  With -keep-going, a failing cell (panic, timeout, bad
// config) is reported on stderr while every healthy cell still emits its
// row; without it the first failure aborts the sweep.
package main

import (
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"cobra"
	"cobra/internal/area"
	"cobra/internal/runner"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cobra-sweep:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		topologies = flag.String("topologies", "", "semicolon-separated topology strings")
		designsF   = flag.Bool("designs", false, "sweep the three Table I designs")
		tageSizes  = flag.String("tagesizes", "", "comma-separated TAGE row counts to sweep inside the TAGE-L topology")
		workloadsF = flag.String("workloads", "dhrystone", "comma-separated workloads, or 'all' for the SPECint proxies")
		insts      = flag.Uint64("insts", 300_000, "instructions per point")
		seed       = flag.Uint64("seed", 42, "workload seed")
		ghist      = flag.Uint("ghist", 64, "global history bits for -topologies points")
		host       = flag.String("host", "boom", "host core: boom (Table II) or inorder (scalar)")
		jobsN      = flag.Int("j", runtime.GOMAXPROCS(0), "parallel simulations (1 = serial; output identical for any value)")
		paranoid   = flag.Bool("paranoid", false, "arm the pipeline invariant checker on every point")
		timeout    = flag.Duration("timeout", 0, "per-point wall-clock budget (0 = none)")
		keepGoing  = flag.Bool("keep-going", false, "report failed cells on stderr and keep sweeping instead of aborting")

		progress  = flag.Duration("progress", 0, "print a runner status line to stderr at this period (0 = off)")
		metricsF  = flag.String("metrics-addr", "", "serve live Prometheus-style metrics on this address")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof (profiles + runtime trace) on this address")
	)
	flag.Parse()

	var met *cobra.Metrics
	if *metricsF != "" || *progress > 0 {
		met = cobra.NewMetrics()
	}
	if *metricsF != "" {
		addr, closeMetrics, err := cobra.ServeMetrics(*metricsF, met)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer closeMetrics() //nolint:errcheck
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", addr)
	}
	if *pprofAddr != "" {
		addr, closePprof, err := cobra.ServePprof(*pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		defer closePprof() //nolint:errcheck
		fmt.Fprintf(os.Stderr, "pprof on http://%s/debug/pprof/\n", addr)
	}

	var points []cobra.Design
	switch {
	case *designsF:
		points = cobra.Designs()
	case *tageSizes != "":
		for _, s := range strings.Split(*tageSizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				return fmt.Errorf("bad -tagesizes entry %q", s)
			}
			points = append(points, cobra.Design{
				Name:     fmt.Sprintf("tage-l-%d", n),
				Topology: fmt.Sprintf("LOOP3 > TAGE3(%d) > BTB2 > BIM2 > UBTB1", n),
				Opt:      cobra.PipelineOptions{GHistBits: 64},
			})
		}
	case *topologies != "":
		for i, topo := range strings.Split(*topologies, ";") {
			points = append(points, cobra.Design{
				Name:     fmt.Sprintf("t%d", i),
				Topology: strings.TrimSpace(topo),
				Opt:      cobra.PipelineOptions{GHistBits: *ghist},
			})
		}
	default:
		points = cobra.Designs()
	}

	var ws []string
	if *workloadsF == "all" {
		ws = cobra.Workloads()
	} else {
		ws = strings.Split(*workloadsF, ",")
	}

	core := cobra.DefaultCoreConfig()
	if *host == "inorder" {
		core = cobra.InOrderCoreConfig()
	} else if *host != "boom" {
		return fmt.Errorf("unknown -host %q", *host)
	}

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	w.Write([]string{"design", "topology", "workload", "host",
		"instructions", "cycles", "ipc", "mpki", "accuracy",
		"bubble_frac", "storage_kb", "area_ku", "energy_eu_per_kinst"})

	// Per-design static metrics (storage, area) are computed once; the
	// (design × workload) simulation grid fans out across the runner.
	type static struct {
		kb   float64
		arKU float64
	}
	// A design that fails here (bad topology, bad geometry) aborts the sweep
	// unless -keep-going, which reports it once on stderr and drops its row
	// of cells while the rest of the grid still runs.
	statics := make([]static, len(points))
	okDesign := make([]bool, len(points))
	skippedCells := 0
	for i, d := range points {
		kb, err := d.StorageKB()
		if err == nil {
			var bd cobra.Breakdown
			if bd, err = cobra.PredictorArea(d); err == nil {
				statics[i] = static{kb, bd.Total() / 1000}
				okDesign[i] = true
				continue
			}
		}
		if !*keepGoing {
			return err
		}
		fmt.Fprintln(os.Stderr, "cobra-sweep:", err)
		skippedCells += len(ws)
	}

	type point struct {
		design   int
		workload string
	}
	var grid []point
	var jobs []runner.Sim
	for di, d := range points {
		if !okDesign[di] {
			continue
		}
		opt := d.Opt
		opt.Paranoid = opt.Paranoid || *paranoid
		for _, wl := range ws {
			grid = append(grid, point{di, strings.TrimSpace(wl)})
			jobs = append(jobs, runner.Sim{
				Topology: d.Topology, Opt: opt,
				Workload: strings.TrimSpace(wl),
				Core:     core, Insts: *insts,
			})
		}
	}
	policy := runner.FailFast
	if *keepGoing {
		policy = runner.CollectAll
	}
	ropt := runner.Options{
		Workers: *jobsN, Seed: *seed, Policy: policy, Timeout: *timeout, Metrics: met,
	}
	if *progress > 0 {
		ropt.Progress = os.Stderr
		ropt.ProgressEvery = *progress
	}
	full, err := runner.RunFull(jobs, ropt)
	var batch *runner.BatchError
	if err != nil && !(errors.As(err, &batch) && *keepGoing) {
		return err
	}
	failed := map[int]bool{}
	if batch != nil {
		for _, je := range batch.Errs {
			failed[je.Index] = true
			fmt.Fprintln(os.Stderr, "cobra-sweep:", je)
		}
	}
	for i, r := range full {
		if failed[i] {
			continue
		}
		d, res := points[grid[i].design], r.Sim
		if n := r.Pipeline.ViolationCount(); n > 0 {
			msg := fmt.Sprintf("%d invariant violations (%q on %s); first: %v",
				n, d.Topology, grid[i].workload, r.Pipeline.Violations()[0])
			if !*keepGoing {
				return errors.New(msg)
			}
			fmt.Fprintln(os.Stderr, "cobra-sweep:", msg)
			failed[i] = true
			continue
		}
		energy := area.Energy(r.Pipeline)
		w.Write([]string{
			d.Name, d.Topology, grid[i].workload, *host,
			fmt.Sprint(res.Instructions), fmt.Sprint(res.Cycles),
			fmt.Sprintf("%.4f", res.IPC()),
			fmt.Sprintf("%.3f", res.MPKI()),
			fmt.Sprintf("%.5f", res.Accuracy()),
			fmt.Sprintf("%.4f", res.BubbleFrac()),
			fmt.Sprintf("%.1f", statics[grid[i].design].kb),
			fmt.Sprintf("%.1f", statics[grid[i].design].arKU),
			fmt.Sprintf("%.0f", energy.PerKiloInst(res.Instructions)),
		})
	}
	if n := len(failed) + skippedCells; n > 0 {
		w.Flush()
		return fmt.Errorf("%d of %d points failed (successful rows emitted above)",
			n, len(jobs)+skippedCells)
	}
	return nil
}
