// Command cobra-sweep runs design-space sweeps and emits CSV — the
// productivity story of the paper's Fig. 1 flow ("design feedback") made
// scriptable.  It crosses a set of topologies with a set of workloads and,
// optionally, host configurations, reporting accuracy, IPC, storage, area,
// and energy per point.
//
// Usage:
//
//	cobra-sweep -workloads gcc,mcf,leela \
//	    -topologies "BIM2;GTAG3 > BTB2 > BIM2;LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1"
//	cobra-sweep -designs -workloads all -insts 500000 -host inorder
//	cobra-sweep -tagesizes 512,1024,2048,4096 -workloads gcc -j 8
//	cobra-sweep -designs -workloads all -keep-going -timeout 2m
//	cobra-sweep -designs -workloads gcc,mcf -print-set > sweep.json
//	cobra-sweep -set sweep.json
//
// The grid is a spec.Set — design axis crossed with workload axis over one
// base spec — the same data model cobra-compose's sweep services run, with
// its own content digest.  Every cell expands to a canonical RunSpec (what
// cobra-sim -spec runs and cobra-serve caches), fanned out across -j worker
// goroutines (default GOMAXPROCS); rows are emitted in grid order and are
// bit-identical for every -j.  With -keep-going, a failing cell (panic,
// timeout, bad config) is reported on stderr while every healthy cell still
// emits its row; without it the first failure aborts the sweep.
package main

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"cobra"
	"cobra/internal/area"
	"cobra/internal/cli"
	"cobra/internal/runner"
	"cobra/internal/spec"
)

func main() { cli.Main("cobra-sweep", run) }

func run() error {
	f := cli.AddRunFlags(flag.CommandLine,
		cli.GWorkload|cli.GBudget|cli.GHost|cli.GGuard|cli.GTelemetry|cli.GProgress|cli.GDigest)
	cli.SetDefault(flag.CommandLine, "insts", "300000")
	var (
		topologies = flag.String("topologies", "", "semicolon-separated topology strings")
		designsF   = flag.Bool("designs", false, "sweep the three Table I designs")
		tageSizes  = flag.String("tagesizes", "", "comma-separated TAGE row counts to sweep inside the TAGE-L topology")
		workloadsF = flag.String("workloads", "", "comma-separated workloads, or 'all' for the SPECint proxies (overrides -workload)")
		ghist      = flag.Uint("ghist", 64, "global history bits for -topologies points")
		jobsN      = flag.Int("j", runtime.GOMAXPROCS(0), "parallel simulations (1 = serial; output identical for any value)")
		keepGoing  = flag.Bool("keep-going", false, "report failed cells on stderr and keep sweeping instead of aborting")
		setPath    = flag.String("set", "", "run the spec.Set JSON file at this path instead of building a grid from flags")
		printSet   = flag.Bool("print-set", false, "print the grid's canonical spec.Set JSON to stdout and its digest to stderr, then exit without running")
	)
	flag.Parse()
	if exit, err := f.Handle("cobra-sweep"); err != nil || exit {
		return err
	}

	var (
		set *spec.Set
		err error
	)
	if *setPath != "" {
		set, err = loadSet(*setPath)
	} else {
		set, err = buildSet(f, *designsF, *tageSizes, *topologies, *ghist, *workloadsF)
	}
	if err != nil {
		return err
	}
	if err := set.Canonicalize(); err != nil {
		return err
	}
	if *printSet {
		data, err := json.MarshalIndent(set, "", "  ")
		if err != nil {
			return err
		}
		digest, err := set.Digest()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		fmt.Fprintln(os.Stderr, "digest:", digest)
		return nil
	}
	specs, err := set.Expand()
	if err != nil {
		return err
	}
	if dw := f.DigestWriter(); dw != nil {
		for _, s := range specs {
			d, err := s.Digest()
			if err != nil {
				return err
			}
			cli.EmitDigest(dw, d)
		}
	}

	met, progress, closeTel, err := f.Telemetry("cobra-sweep")
	if err != nil {
		return err
	}
	defer closeTel()

	// The workload axis is the innermost (fastest) index, so cells group into
	// per-design rows of rowLen cells each.  Static metrics (storage, area)
	// depend only on the design and are computed once per row, from its first
	// cell.  A design whose statics fail (bad geometry) aborts the sweep
	// unless -keep-going, which reports it once on stderr and drops its row
	// while the rest of the grid still runs.
	rowLen := 1
	if n := len(set.Axes); n > 0 {
		rowLen = len(set.Axes[n-1].Values)
	}
	type static struct {
		kb   float64
		arKU float64
	}
	nDesigns := len(specs) / rowLen
	statics := make([]static, nDesigns)
	okDesign := make([]bool, nDesigns)
	skippedCells := 0
	for di := 0; di < nDesigns; di++ {
		p := specs[di*rowLen]
		opt, err := p.Pipeline.Options()
		if err == nil {
			d := cobra.Design{Name: p.Design, Topology: p.Topology, Opt: opt}
			var kb float64
			if kb, err = d.StorageKB(); err == nil {
				var bd cobra.Breakdown
				if bd, err = cobra.PredictorArea(d); err == nil {
					statics[di] = static{kb, bd.Total() / 1000}
					okDesign[di] = true
					continue
				}
			}
		}
		if !*keepGoing {
			return err
		}
		fmt.Fprintln(os.Stderr, "cobra-sweep:", err)
		skippedCells += rowLen
	}
	var (
		run     []*spec.RunSpec
		designI []int // run index -> design row
	)
	for i, s := range specs {
		if okDesign[i/rowLen] {
			run = append(run, s)
			designI = append(designI, i/rowLen)
		}
	}

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	w.Write([]string{"design", "topology", "workload", "host",
		"instructions", "cycles", "ipc", "mpki", "accuracy",
		"bubble_frac", "storage_kb", "area_ku", "energy_eu_per_kinst"})

	policy := runner.FailFast
	if *keepGoing {
		policy = runner.CollectAll
	}
	ropt := runner.Options{
		Workers: *jobsN, Policy: policy, Timeout: *f.Timeout, Metrics: met,
	}
	if progress > 0 {
		ropt.Progress = os.Stderr
		ropt.ProgressEvery = progress
	}
	full, err := runner.RunSpecs(run, ropt)
	var batch *runner.BatchError
	if err != nil && !(errors.As(err, &batch) && *keepGoing) {
		return err
	}
	failed := map[int]bool{}
	if batch != nil {
		for _, je := range batch.Errs {
			failed[je.Index] = true
			fmt.Fprintln(os.Stderr, "cobra-sweep:", je)
		}
	}
	for i, r := range full {
		if failed[i] {
			continue
		}
		s, res := run[i], r.Outcome.Stats
		energy := area.Energy(r.Outcome.Pipeline)
		w.Write([]string{
			s.Design, s.Topology, s.Workload, s.Host,
			fmt.Sprint(res.Instructions), fmt.Sprint(res.Cycles),
			fmt.Sprintf("%.4f", res.IPC()),
			fmt.Sprintf("%.3f", res.MPKI()),
			fmt.Sprintf("%.5f", res.Accuracy()),
			fmt.Sprintf("%.4f", res.BubbleFrac()),
			fmt.Sprintf("%.1f", statics[designI[i]].kb),
			fmt.Sprintf("%.1f", statics[designI[i]].arKU),
			fmt.Sprintf("%.0f", energy.PerKiloInst(res.Instructions)),
		})
	}
	if n := len(failed) + skippedCells; n > 0 {
		w.Flush()
		return fmt.Errorf("%d of %d points failed (successful rows emitted above)",
			n, len(specs))
	}
	return nil
}

// buildSet assembles the flag-described grid as a spec.Set: one design axis
// (presets, TAGE sizes, or explicit topologies) crossed with one workload
// axis over a base spec carrying the budget and host flags.
func buildSet(f *cli.RunFlags, designsF bool, tageSizes, topologies string, ghist uint, workloadsF string) (*spec.Set, error) {
	base := spec.RunSpec{
		Seed:            *f.Seed,
		Insts:           *f.Insts,
		Warmup:          *f.Warmup,
		Host:            *f.Host,
		SerializedFetch: *f.Serialized,
		SFB:             *f.SFB,
		Paranoid:        *f.Paranoid,
	}
	var designs spec.Axis
	switch {
	case designsF:
		designs = spec.Axis{Field: "design", Values: spec.PresetNames()}
	case tageSizes != "":
		designs.Field = "topology"
		base.Pipeline.GHistBits = 64
		for _, s := range strings.Split(tageSizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("bad -tagesizes entry %q", s)
			}
			designs.Values = append(designs.Values,
				fmt.Sprintf("LOOP3 > TAGE3(%d) > BTB2 > BIM2 > UBTB1", n))
			designs.Names = append(designs.Names, fmt.Sprintf("tage-l-%d", n))
		}
	case topologies != "":
		designs.Field = "topology"
		base.Pipeline.GHistBits = ghist
		for i, topo := range strings.Split(topologies, ";") {
			designs.Values = append(designs.Values, strings.TrimSpace(topo))
			designs.Names = append(designs.Names, fmt.Sprintf("t%d", i))
		}
	default:
		designs = spec.Axis{Field: "design", Values: spec.PresetNames()}
	}

	var ws []string
	switch {
	case workloadsF == "all":
		ws = cobra.Workloads()
	case workloadsF != "":
		ws = strings.Split(workloadsF, ",")
	default:
		ws = []string{*f.Workload}
	}

	return &spec.Set{
		Name: "cobra-sweep",
		Base: base,
		Axes: []spec.Axis{designs, {Field: "workload", Values: ws}},
	}, nil
}

// loadSet reads and parses a spec.Set JSON file.
func loadSet(path string) (*spec.Set, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return spec.ParseSet(data)
}
