// Command cobra-diagram renders the paper's pipeline diagrams as text:
// Fig. 2 (the sub-component interface timing), Fig. 4 (the two example
// topologies of §IV-A), and Fig. 7 (the three evaluated designs); or any
// custom topology.
//
// Usage:
//
//	cobra-diagram -fig 2
//	cobra-diagram -fig 4
//	cobra-diagram -fig 7
//	cobra-diagram -topology "TOURNEY3 > [GBIM2 > BTB2, LBIM2]"
package main

import (
	"flag"
	"fmt"

	"cobra"
	"cobra/internal/cli"
)

func main() { cli.Main("cobra-diagram", run) }

var paranoid *bool

func run() error {
	f := cli.AddRunFlags(flag.CommandLine, cli.GGuard)
	var (
		fig  = flag.Int("fig", 7, "paper figure to render: 2, 4, or 7")
		topo = flag.String("topology", "", "render a custom topology instead")
	)
	paranoid = f.Paranoid
	flag.Parse()
	if exit, err := f.Handle("cobra-diagram"); err != nil || exit {
		return err
	}
	cli.ExitAfter("cobra-diagram", *f.Timeout)

	if *topo != "" {
		return render(cobra.Design{Name: "custom", Topology: *topo})
	}
	switch *fig {
	case 2:
		fmt.Print(cobra.InterfaceDiagram())
	case 4:
		fmt.Println("Fig. 4 — the two §IV-A topologies of {uBTB1, PHT2, LOOP2}:")
		fmt.Println()
		if err := render(cobra.Design{Name: "topology-1", Topology: "LOOP2 > PHT2 > UBTB1"}); err != nil {
			return err
		}
		if err := render(cobra.Design{Name: "topology-2", Topology: "UBTB1 > PHT2 > LOOP2"}); err != nil {
			return err
		}
	case 7:
		fmt.Println("Fig. 7 — pipeline diagrams of the COBRA-generated predictors:")
		fmt.Println()
		for _, d := range cobra.Designs() {
			if err := render(d); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("no figure %d (have 2, 4, 7)", *fig)
	}
	return nil
}

func render(d cobra.Design) error {
	if paranoid != nil && *paranoid {
		d.Opt.Paranoid = true
	}
	s, err := cobra.PipelineDiagram(d)
	if err != nil {
		return err
	}
	fmt.Print(s)
	fmt.Println()
	return nil
}
