// Command cobra-area prints the Fig. 8 / Fig. 9 area breakdowns: predictor
// sub-component areas (including the generated management structures,
// "meta") and whole-core areas for each of the paper's three designs.
//
// Usage:
//
//	cobra-area            # Fig. 8 for all three designs
//	cobra-area -core      # Fig. 9 (whole core)
//	cobra-area -design b2 # one design only
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cobra"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cobra-area:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		core     = flag.Bool("core", false, "whole-core breakdown (Fig. 9) instead of predictor-only (Fig. 8)")
		design   = flag.String("design", "", "restrict to one design: tage-l, b2, tourney")
		paranoid = flag.Bool("paranoid", false, "arm the pipeline invariant checker on every composed design")
		timeout  = flag.Duration("timeout", 0, "abort after this wall-clock budget (0 = none)")
	)
	flag.Parse()
	if *timeout > 0 {
		time.AfterFunc(*timeout, func() {
			fmt.Fprintf(os.Stderr, "cobra-area: timeout after %v\n", *timeout)
			os.Exit(1)
		})
	}

	designs := cobra.Designs()
	if *design != "" {
		designs = nil
		for _, d := range cobra.Designs() {
			if d.Name == *design {
				designs = []cobra.Design{d}
			}
		}
		if designs == nil {
			return fmt.Errorf("unknown design %q", *design)
		}
	}
	for _, d := range designs {
		d.Opt.Paranoid = d.Opt.Paranoid || *paranoid
		var (
			bd  cobra.Breakdown
			err error
		)
		if *core {
			bd, err = cobra.CoreArea(d, cobra.DefaultCoreConfig())
		} else {
			bd, err = cobra.PredictorArea(d)
		}
		if err != nil {
			return err
		}
		fmt.Print(bd.Render())
		if kb, err := d.StorageKB(); err == nil && !*core {
			fmt.Printf("  predictor storage: %.1f KB (Table I)\n", kb)
		}
		fmt.Println()
	}
	return nil
}
