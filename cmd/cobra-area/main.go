// Command cobra-area prints the Fig. 8 / Fig. 9 area breakdowns: predictor
// sub-component areas (including the generated management structures,
// "meta") and whole-core areas for each of the paper's three designs.
//
// Usage:
//
//	cobra-area            # Fig. 8 for all three designs
//	cobra-area -core      # Fig. 9 (whole core)
//	cobra-area -design b2 # one design only
package main

import (
	"flag"
	"fmt"

	"cobra"
	"cobra/internal/cli"
)

func main() { cli.Main("cobra-area", run) }

func run() error {
	f := cli.AddRunFlags(flag.CommandLine, cli.GGuard)
	var (
		core   = flag.Bool("core", false, "whole-core breakdown (Fig. 9) instead of predictor-only (Fig. 8)")
		design = flag.String("design", "", "restrict to one design: tage-l, b2, tourney")
	)
	flag.Parse()
	if exit, err := f.Handle("cobra-area"); err != nil || exit {
		return err
	}
	cli.ExitAfter("cobra-area", *f.Timeout)

	designs := cobra.Designs()
	if *design != "" {
		designs = nil
		for _, d := range cobra.Designs() {
			if d.Name == *design {
				designs = []cobra.Design{d}
			}
		}
		if designs == nil {
			return fmt.Errorf("unknown design %q", *design)
		}
	}
	for _, d := range designs {
		d.Opt.Paranoid = d.Opt.Paranoid || *f.Paranoid
		var (
			bd  cobra.Breakdown
			err error
		)
		if *core {
			bd, err = cobra.CoreArea(d, cobra.DefaultCoreConfig())
		} else {
			bd, err = cobra.PredictorArea(d)
		}
		if err != nil {
			return err
		}
		fmt.Print(bd.Render())
		if kb, err := d.StorageKB(); err == nil && !*core {
			fmt.Printf("  predictor storage: %.1f KB (Table I)\n", kb)
		}
		fmt.Println()
	}
	return nil
}
