// Command cobra-sim composes a predictor topology, attaches it to the
// BOOM-like core, runs a workload, and prints the performance counters.
//
// Usage:
//
//	cobra-sim -design tage-l -workload gcc -insts 2000000
//	cobra-sim -topology "GTAG3 > BTB2 > BIM2" -ghist 16 -workload mcf
//	cobra-sim -design tourney -workload dhrystone -policy replay -sfb
//	cobra-sim -design tage-l -workload gcc -paranoid -timeout 60s
//	cobra-sim -design tage-l -workload gcc -events trace.json -top-branches 10
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cobra"
	"cobra/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cobra-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		design   = flag.String("design", "tage-l", "paper design: tage-l, b2, tourney (ignored with -topology)")
		topology = flag.String("topology", "", "explicit topology string, e.g. \"GTAG3 > BTB2 > BIM2\"")
		ghist    = flag.Uint("ghist", 64, "global history bits (with -topology)")
		workload = flag.String("workload", "dhrystone", "workload name (SPECint proxy, dhrystone, coremark)")
		insts    = flag.Uint64("insts", 1_000_000, "architectural instructions to simulate")
		seed     = flag.Uint64("seed", 42, "workload seed")
		policy   = flag.String("policy", "repair", "GHR policy: repair, replay, none (§VI-B)")
		serial   = flag.Bool("serialized", false, "serialize fetch behind branches (§II-A)")
		sfb      = flag.Bool("sfb", false, "enable short-forwards-branch predication (§VI-C)")
		paranoid = flag.Bool("paranoid", false, "arm the pipeline invariant checker; violations fail the run")
		timeout  = flag.Duration("timeout", 0, "abort the simulation after this wall-clock budget (0 = none)")
		verbose  = flag.Bool("v", false, "print extended counters")

		events    = flag.String("events", "", "capture the cycle-level event trace to this file (.json = Chrome trace_event for Perfetto, otherwise compact binary for cobra-events)")
		eventsBuf = flag.Int("events-buf", 0, "event ring-buffer capacity (0 = default 65536; older events are dropped)")
		topN      = flag.Int("top-branches", 0, "print the H2P table of the N hardest-to-predict branches")
		metrics   = flag.String("metrics-addr", "", "serve live Prometheus-style metrics on this address (e.g. 127.0.0.1:9090)")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof (profiles + runtime trace) on this address")
	)
	flag.Parse()

	d, err := pickDesign(*design, *topology, *ghist, *policy)
	if err != nil {
		return err
	}
	core := cobra.DefaultCoreConfig()
	core.SerializedFetch = *serial
	core.SFB = *sfb

	if *pprofAddr != "" {
		addr, closePprof, err := cobra.ServePprof(*pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		defer closePprof() //nolint:errcheck
		fmt.Fprintf(os.Stderr, "pprof on http://%s/debug/pprof/\n", addr)
	}

	rc := cobra.RunConfig{
		Design: d, Workload: *workload, MaxInsts: *insts, Seed: *seed, Core: &core,
		Paranoid: *paranoid, Timeout: *timeout,
	}
	var tracer *cobra.Tracer
	if *events != "" {
		tracer = cobra.NewTracer(*eventsBuf)
		rc.Observer = tracer
	}
	var prof *cobra.BranchProfile
	if *topN > 0 {
		prof = cobra.NewBranchProfile()
		rc.Profile = prof
	}
	if *metrics != "" {
		m := cobra.NewMetrics()
		rc.Metrics = m
		m.AddJobs(1)
		m.JobStarted()
		addr, closeMetrics, err := cobra.ServeMetrics(*metrics, m)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer closeMetrics() //nolint:errcheck
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", addr)
	}

	res, err := cobra.Run(rc)
	if rc.Metrics != nil {
		rc.Metrics.JobDone(err != nil)
	}
	if err != nil {
		return err
	}
	fmt.Printf("design=%s topology=%q workload=%s\n", d.Name, d.Topology, *workload)
	fmt.Println(res)
	if *verbose {
		printVerbose(res)
		printProviders(res)
	}
	if prof != nil {
		fmt.Print(prof.Table(*topN))
	}
	if tracer != nil {
		if err := writeEvents(*events, tracer); err != nil {
			return err
		}
	}
	return nil
}

// writeEvents exports the tracer's ring to path: Chrome trace_event JSON for
// .json files (load in chrome://tracing or ui.perfetto.dev), the compact
// binary format otherwise (dump/filter with cobra-events).
func writeEvents(path string, tr *cobra.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	evs := tr.Events()
	if strings.HasSuffix(path, ".json") {
		err = cobra.WriteChromeTrace(f, evs)
	} else {
		err = cobra.WriteBinaryEvents(f, evs)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	if dropped := tr.Dropped(); dropped > 0 {
		fmt.Fprintf(os.Stderr, "events: ring overflowed; kept newest %d of %d (raise -events-buf)\n",
			len(evs), tr.Total())
	}
	fmt.Fprintf(os.Stderr, "events: wrote %d records to %s\n", len(evs), path)
	return nil
}

// printProviders reports which sub-component supplied the final direction
// for committed branches (the provider hierarchy of §IV-A in action).
func printProviders(res *cobra.Result) {
	if len(res.ProviderHits) == 0 {
		return
	}
	t := &stats.Table{Title: "direction providers (committed branches)",
		Headers: []string{"component", "branches", "share"}}
	var total uint64
	for _, k := range stats.SortedKeys(res.ProviderHits) {
		total += res.ProviderHits[k]
	}
	for _, k := range stats.SortedKeys(res.ProviderHits) {
		n := res.ProviderHits[k]
		t.AddRow(k, fmt.Sprintf("%d", n), fmt.Sprintf("%.1f%%", float64(n)/float64(total)*100))
	}
	fmt.Print(t)
}

func pickDesign(name, topology string, ghist uint, policy string) (cobra.Design, error) {
	var pol cobra.GHRPolicy
	switch policy {
	case "repair":
		pol = cobra.GHRRepair
	case "replay":
		pol = cobra.GHRRepairReplay
	case "none":
		pol = cobra.GHRNoRepair
	default:
		return cobra.Design{}, fmt.Errorf("unknown -policy %q (repair, replay, none)", policy)
	}
	if topology != "" {
		return cobra.Design{
			Name:     "custom",
			Topology: topology,
			Opt:      cobra.PipelineOptions{GHistBits: ghist, GHRPolicy: pol},
		}, nil
	}
	var d cobra.Design
	switch name {
	case "tage-l":
		d = cobra.TAGEL()
	case "b2":
		d = cobra.B2()
	case "tourney":
		d = cobra.Tourney()
	default:
		return cobra.Design{}, fmt.Errorf("unknown -design %q (tage-l, b2, tourney)", name)
	}
	d.Opt.GHRPolicy = pol
	return d, nil
}

func printVerbose(res *cobra.Result) {
	t := &stats.Table{Headers: []string{"counter", "value"}}
	t.AddRowf("cycles", res.Cycles)
	t.AddRowf("instructions", res.Instructions)
	t.AddRowf("branches", res.Branches)
	t.AddRowf("jumps", res.Jumps)
	t.AddRowf("indirect/returns", res.IndirectJumps)
	t.AddRowf("mispredicts", res.Mispredicts)
	t.AddRowf("  direction", res.DirMispredicts)
	t.AddRowf("  target", res.TgtMispredicts)
	t.AddRowf("fetch bubbles", res.FetchBubbles)
	t.AddRowf("redirect flushes", res.RedirectFlushes)
	t.AddRowf("history repairs", res.HistoryRepairs)
	t.AddRowf("fetch replays", res.FetchReplays)
	fmt.Print(t)
}
