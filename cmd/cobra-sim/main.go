// Command cobra-sim composes a predictor topology, attaches it to the
// BOOM-like core, runs a workload, and prints the performance counters.
//
// Usage:
//
//	cobra-sim -design tage-l -workload gcc -insts 2000000
//	cobra-sim -topology "GTAG3 > BTB2 > BIM2" -ghist 16 -workload mcf
//	cobra-sim -design tourney -workload dhrystone -policy replay -sfb
//	cobra-sim -design tage-l -workload gcc -paranoid -timeout 60s
//	cobra-sim -design tage-l -workload gcc -events trace.json -top-branches 10
//	cobra-sim -design b2 -workload gcc -print-spec > run.json
//	cobra-sim -spec run.json
//	cobra-sim -design b2 -workload gcc -server http://localhost:8080
//
// Where the run executes is one flag: without -server the spec runs
// in-process, with it the same canonical spec runs on a cobra-serve daemon
// through the unified backend — byte-identical results either way, because
// the spec digest pins the simulation.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"cobra/internal/cli"
	"cobra/internal/client"
	"cobra/internal/interval"
	"cobra/internal/obs"
	"cobra/internal/spec"
	"cobra/internal/stats"
)

func main() { cli.Main("cobra-sim", run) }

func run() error {
	f := cli.AddRunFlags(flag.CommandLine,
		cli.GDesign|cli.GWorkload|cli.GBudget|cli.GHost|cli.GGuard|cli.GFaults|cli.GEvents|cli.GTelemetry|cli.GServer|cli.GDigest|cli.GIntervals)
	specPath := flag.String("spec", "", "run the RunSpec JSON file at this path (run-shaping flags are ignored; -events/-top-branches still apply)")
	printSpec := flag.Bool("print-spec", false, "print the canonical RunSpec JSON to stdout and its digest to stderr, then exit without running")
	verbose := flag.Bool("v", false, "print extended counters")
	flag.Parse()
	if exit, err := f.Handle("cobra-sim"); err != nil || exit {
		return err
	}

	var (
		s   *spec.RunSpec
		err error
	)
	if *specPath != "" {
		s, err = cli.LoadSpec(*specPath)
	} else {
		s, err = f.Spec()
	}
	if err != nil {
		return err
	}
	// Output-shaping flags apply even to a spec loaded from a file.
	if *f.Events != "" {
		s.Observe.Events = true
		if *f.EventsBuf != 0 {
			s.Observe.EventsBuf = *f.EventsBuf
		}
	}
	if *f.TopBranches > 0 {
		s.Observe.Attribution = true
	}
	f.ApplyIntervals(s)
	if err := s.Canonicalize(); err != nil {
		return err
	}
	if *printSpec {
		data, err := json.MarshalIndent(s, "", "  ")
		if err != nil {
			return err
		}
		digest, err := s.Digest()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		fmt.Fprintln(os.Stderr, "digest:", digest)
		return nil
	}
	if w := f.DigestWriter(); w != nil {
		digest, err := s.Digest()
		if err != nil {
			return err
		}
		cli.EmitDigest(w, digest)
	}

	met, _, closeTel, err := f.Telemetry("cobra-sim")
	if err != nil {
		return err
	}
	defer closeTel()

	// The one local/remote fork left: remote runs get a live progress line,
	// and remote results cannot carry the in-process attribution profile.
	var pl *progressLine
	var onProgress func(client.Progress)
	if f.ServerURL() != "" {
		if *f.TopBranches > 0 {
			return fmt.Errorf("-top-branches needs the in-process attribution profile; run without -server")
		}
		pl = newProgressLine(os.Stderr)
		onProgress = pl.update
	}
	be, remote, err := f.ResolveBackend("cobra-sim", met, onProgress)
	if err != nil {
		return err
	}

	ctx := context.Background()
	if remote && f.Timeout != nil && *f.Timeout > 0 {
		// In-process runs enforce the spec's own TimeoutMS inside Exec; a
		// remote conversation needs a client-side bound on the whole
		// submit/poll exchange too.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *f.Timeout)
		defer cancel()
	}
	out, err := be.Run(ctx, s)
	if pl != nil {
		pl.finish()
	}
	if err != nil {
		return err
	}

	res := out.Stats
	where := ""
	if remote {
		where = " server=" + be.Name()
	}
	fmt.Printf("design=%s topology=%q workload=%s%s\n", s.Design, s.Topology, s.Workload, where)
	fmt.Println(res)
	if *verbose {
		printVerbose(res)
		printProviders(res)
	}
	if out.Profile != nil && *f.TopBranches > 0 {
		fmt.Print(out.Profile.Table(*f.TopBranches))
	}
	if *f.Events != "" {
		if err := writeEvents(*f.Events, out.Events, out.EventsTotal); err != nil {
			return err
		}
	}
	if path := f.IntervalsPath(); path != "" {
		if out.Intervals == nil {
			return fmt.Errorf("-intervals: run produced no interval telemetry")
		}
		if err := interval.WriteFile(path, out.Intervals); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "intervals: wrote %d windows to %s (%s)\n",
			len(out.Intervals.Windows), path, out.Intervals.Hash)
	}
	if f.WantSparkline() {
		if out.Intervals == nil {
			return fmt.Errorf("-sparkline: run produced no interval telemetry")
		}
		fmt.Print(sparklines(out.Intervals))
	}
	return nil
}

// sparklines renders the per-window IPC and MPKI trajectories as one-line
// unicode sparklines with min/max annotations — the ten-second "did anything
// interesting happen over time" view of a run.
func sparklines(set *interval.Set) string {
	if len(set.Windows) == 0 {
		return "intervals: no complete windows (run shorter than one interval)\n"
	}
	ipc := make([]float64, len(set.Windows))
	mpki := make([]float64, len(set.Windows))
	for i := range set.Windows {
		ipc[i] = set.Windows[i].IPC()
		mpki[i] = set.Windows[i].MPKI()
	}
	lo := func(vs []float64) float64 {
		m := vs[0]
		for _, v := range vs[1:] {
			m = min(m, v)
		}
		return m
	}
	hi := func(vs []float64) float64 {
		m := vs[0]
		for _, v := range vs[1:] {
			m = max(m, v)
		}
		return m
	}
	const width = 60
	var b strings.Builder
	fmt.Fprintf(&b, "ipc  %s  [%.3f … %.3f] over %d windows of %d insts\n",
		interval.Spark(ipc, width), lo(ipc), hi(ipc), len(set.Windows), set.IntervalInsts)
	fmt.Fprintf(&b, "mpki %s  [%.3f … %.3f]\n",
		interval.Spark(mpki, width), lo(mpki), hi(mpki))
	return b.String()
}

// progressLine renders the daemon's progress stream as a single live status
// line.  On a terminal it overwrites itself with \r; piped into a log it
// degrades to one line per phase transition so CI output stays readable.
type progressLine struct {
	w         *os.File
	tty       bool
	lastPhase string
	wrote     bool
}

func newProgressLine(w *os.File) *progressLine {
	st, err := w.Stat()
	return &progressLine{w: w, tty: err == nil && st.Mode()&os.ModeCharDevice != 0}
}

func (p *progressLine) update(ev client.Progress) {
	if ev.Done {
		return // the result line that follows says it all
	}
	line := fmt.Sprintf("%s: phase=%s", ev.Status, ev.Phase)
	if ev.QueuePos > 0 {
		line += fmt.Sprintf(" queue_pos=%d", ev.QueuePos)
	}
	if ev.Cycles > 0 {
		line += fmt.Sprintf(" cycles=%d insts=%d", ev.Cycles, ev.Insts)
		if ev.TargetInsts > 0 {
			line += fmt.Sprintf("/%d", ev.TargetInsts)
		}
		if ev.InstsPerSec > 0 {
			line += fmt.Sprintf(" (%.2gM insts/s)", ev.InstsPerSec/1e6)
		}
	}
	if w := ev.Window; w != nil {
		line += fmt.Sprintf(" window=%d ipc=%.3f mpki=%.2f", w.Index, w.IPC(), w.MPKI())
	}
	if p.tty {
		fmt.Fprintf(p.w, "\r\033[K%s", line)
		p.wrote = true
		return
	}
	if ev.Phase != p.lastPhase { // non-interactive: one line per phase
		fmt.Fprintln(p.w, line)
		p.lastPhase = ev.Phase
	}
}

// finish clears the live line so the result renders on a clean row.
func (p *progressLine) finish() {
	if p.tty && p.wrote {
		fmt.Fprint(p.w, "\r\033[K")
	}
}

// writeEvents exports the captured event trace to path: Chrome trace_event
// JSON for .json files (load in chrome://tracing or ui.perfetto.dev), the
// compact binary format otherwise (dump/filter with cobra-events).
func writeEvents(path string, evs []obs.Event, total uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = obs.WriteChrome(f, evs)
	} else {
		err = obs.WriteBinary(f, evs)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	if total > uint64(len(evs)) {
		fmt.Fprintf(os.Stderr, "events: ring overflowed; kept newest %d of %d (raise -events-buf)\n",
			len(evs), total)
	}
	fmt.Fprintf(os.Stderr, "events: wrote %d records to %s\n", len(evs), path)
	return nil
}

// printProviders reports which sub-component supplied the final direction
// for committed branches (the provider hierarchy of §IV-A in action).
func printProviders(res *stats.Sim) {
	if len(res.ProviderHits) == 0 {
		return
	}
	t := &stats.Table{Title: "direction providers (committed branches)",
		Headers: []string{"component", "branches", "share"}}
	var total uint64
	for _, k := range stats.SortedKeys(res.ProviderHits) {
		total += res.ProviderHits[k]
	}
	for _, k := range stats.SortedKeys(res.ProviderHits) {
		n := res.ProviderHits[k]
		t.AddRow(k, fmt.Sprintf("%d", n), fmt.Sprintf("%.1f%%", float64(n)/float64(total)*100))
	}
	fmt.Print(t)
}

func printVerbose(res *stats.Sim) {
	t := &stats.Table{Headers: []string{"counter", "value"}}
	t.AddRowf("cycles", res.Cycles)
	t.AddRowf("instructions", res.Instructions)
	t.AddRowf("branches", res.Branches)
	t.AddRowf("jumps", res.Jumps)
	t.AddRowf("indirect/returns", res.IndirectJumps)
	t.AddRowf("mispredicts", res.Mispredicts)
	t.AddRowf("  direction", res.DirMispredicts)
	t.AddRowf("  target", res.TgtMispredicts)
	t.AddRowf("fetch bubbles", res.FetchBubbles)
	t.AddRowf("redirect flushes", res.RedirectFlushes)
	t.AddRowf("history repairs", res.HistoryRepairs)
	t.AddRowf("fetch replays", res.FetchReplays)
	fmt.Print(t)
}
