// Command cobra-sim composes a predictor topology, attaches it to the
// BOOM-like core, runs a workload, and prints the performance counters.
//
// Usage:
//
//	cobra-sim -design tage-l -workload gcc -insts 2000000
//	cobra-sim -topology "GTAG3 > BTB2 > BIM2" -ghist 16 -workload mcf
//	cobra-sim -design tourney -workload dhrystone -policy replay -sfb
//	cobra-sim -design tage-l -workload gcc -paranoid -timeout 60s
package main

import (
	"flag"
	"fmt"
	"os"

	"cobra"
	"cobra/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cobra-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		design   = flag.String("design", "tage-l", "paper design: tage-l, b2, tourney (ignored with -topology)")
		topology = flag.String("topology", "", "explicit topology string, e.g. \"GTAG3 > BTB2 > BIM2\"")
		ghist    = flag.Uint("ghist", 64, "global history bits (with -topology)")
		workload = flag.String("workload", "dhrystone", "workload name (SPECint proxy, dhrystone, coremark)")
		insts    = flag.Uint64("insts", 1_000_000, "architectural instructions to simulate")
		seed     = flag.Uint64("seed", 42, "workload seed")
		policy   = flag.String("policy", "repair", "GHR policy: repair, replay, none (§VI-B)")
		serial   = flag.Bool("serialized", false, "serialize fetch behind branches (§II-A)")
		sfb      = flag.Bool("sfb", false, "enable short-forwards-branch predication (§VI-C)")
		paranoid = flag.Bool("paranoid", false, "arm the pipeline invariant checker; violations fail the run")
		timeout  = flag.Duration("timeout", 0, "abort the simulation after this wall-clock budget (0 = none)")
		verbose  = flag.Bool("v", false, "print extended counters")
	)
	flag.Parse()

	d, err := pickDesign(*design, *topology, *ghist, *policy)
	if err != nil {
		return err
	}
	core := cobra.DefaultCoreConfig()
	core.SerializedFetch = *serial
	core.SFB = *sfb

	res, err := cobra.Run(cobra.RunConfig{
		Design: d, Workload: *workload, MaxInsts: *insts, Seed: *seed, Core: &core,
		Paranoid: *paranoid, Timeout: *timeout,
	})
	if err != nil {
		return err
	}
	fmt.Printf("design=%s topology=%q workload=%s\n", d.Name, d.Topology, *workload)
	fmt.Println(res)
	if *verbose {
		printVerbose(res)
		printProviders(res)
	}
	return nil
}

// printProviders reports which sub-component supplied the final direction
// for committed branches (the provider hierarchy of §IV-A in action).
func printProviders(res *cobra.Result) {
	if len(res.ProviderHits) == 0 {
		return
	}
	t := &stats.Table{Title: "direction providers (committed branches)",
		Headers: []string{"component", "branches", "share"}}
	var total uint64
	for _, k := range stats.SortedKeys(res.ProviderHits) {
		total += res.ProviderHits[k]
	}
	for _, k := range stats.SortedKeys(res.ProviderHits) {
		n := res.ProviderHits[k]
		t.AddRow(k, fmt.Sprintf("%d", n), fmt.Sprintf("%.1f%%", float64(n)/float64(total)*100))
	}
	fmt.Print(t)
}

func pickDesign(name, topology string, ghist uint, policy string) (cobra.Design, error) {
	var pol cobra.GHRPolicy
	switch policy {
	case "repair":
		pol = cobra.GHRRepair
	case "replay":
		pol = cobra.GHRRepairReplay
	case "none":
		pol = cobra.GHRNoRepair
	default:
		return cobra.Design{}, fmt.Errorf("unknown -policy %q (repair, replay, none)", policy)
	}
	if topology != "" {
		return cobra.Design{
			Name:     "custom",
			Topology: topology,
			Opt:      cobra.PipelineOptions{GHistBits: ghist, GHRPolicy: pol},
		}, nil
	}
	var d cobra.Design
	switch name {
	case "tage-l":
		d = cobra.TAGEL()
	case "b2":
		d = cobra.B2()
	case "tourney":
		d = cobra.Tourney()
	default:
		return cobra.Design{}, fmt.Errorf("unknown -design %q (tage-l, b2, tourney)", name)
	}
	d.Opt.GHRPolicy = pol
	return d, nil
}

func printVerbose(res *cobra.Result) {
	t := &stats.Table{Headers: []string{"counter", "value"}}
	t.AddRowf("cycles", res.Cycles)
	t.AddRowf("instructions", res.Instructions)
	t.AddRowf("branches", res.Branches)
	t.AddRowf("jumps", res.Jumps)
	t.AddRowf("indirect/returns", res.IndirectJumps)
	t.AddRowf("mispredicts", res.Mispredicts)
	t.AddRowf("  direction", res.DirMispredicts)
	t.AddRowf("  target", res.TgtMispredicts)
	t.AddRowf("fetch bubbles", res.FetchBubbles)
	t.AddRowf("redirect flushes", res.RedirectFlushes)
	t.AddRowf("history repairs", res.HistoryRepairs)
	t.AddRowf("fetch replays", res.FetchReplays)
	fmt.Print(t)
}
