// Command cobra-events dumps, filters, and converts the compact binary event
// traces written by cobra-sim -events.
//
// Usage:
//
//	cobra-events -i trace.bin                     # text dump
//	cobra-events -i trace.bin -stats              # per-kind / per-component counts
//	cobra-events -i trace.bin -kind mispredict -n 20
//	cobra-events -i trace.bin -comp TAGE3 -since 1000 -until 2000
//	cobra-events -i trace.bin -pc 0x10014
//	cobra-events -i trace.bin -chrome trace.json  # convert for Perfetto
//	cobra-events -i trace.bin -paranoid           # validate stream invariants
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"

	"cobra"
	"cobra/internal/cli"
	"cobra/internal/interval"
	"cobra/internal/stats"
)

func main() { cli.Main("cobra-events", run) }

func run() error {
	f := cli.AddRunFlags(flag.CommandLine, cli.GGuard)
	var (
		input    = flag.String("i", "", "binary event trace to read (required; written by cobra-sim -events)")
		kind     = flag.String("kind", "", "keep only events of this kind (predict, fire, mispredict, repair, update, redirect, squash)")
		comp     = flag.String("comp", "", "keep only events from this sub-component instance (e.g. TAGE3)")
		pcFilter = flag.String("pc", "", "keep only events whose fetch PC matches (hex or decimal)")
		since    = flag.Uint64("since", 0, "keep only events at or after this cycle")
		until    = flag.Uint64("until", math.MaxUint64, "keep only events at or before this cycle")
		limit    = flag.Int("n", 0, "print at most N events (0 = all)")
		doStats  = flag.Bool("stats", false, "print per-kind and per-component counts instead of records")
		byWindow = flag.Uint64("by-window", 0, "with -stats: bucket the counts into windows of N cycles (time-resolved view of the trace)")
		chrome   = flag.String("chrome", "", "convert the (filtered) events to Chrome trace_event JSON at this path")
	)
	paranoid := f.Paranoid
	flag.Parse()
	if exit, err := f.Handle("cobra-events"); err != nil || exit {
		return err
	}
	if *input == "" {
		flag.Usage()
		return fmt.Errorf("-i is required")
	}
	cli.ExitAfter("cobra-events", *f.Timeout)

	in, err := os.Open(*input)
	if err != nil {
		return err
	}
	defer in.Close()
	events, err := cobra.ReadBinaryEvents(in)
	if err != nil {
		return fmt.Errorf("reading %s: %w", *input, err)
	}

	if *paranoid {
		if err := validate(events); err != nil {
			return fmt.Errorf("%s: %w", *input, err)
		}
	}

	keep, err := buildFilter(*kind, *comp, *pcFilter, *since, *until)
	if err != nil {
		return err
	}
	filtered := events[:0:0]
	for i := range events {
		if keep(&events[i]) {
			filtered = append(filtered, events[i])
		}
	}

	if *chrome != "" {
		out, err := os.Create(*chrome)
		if err != nil {
			return err
		}
		err = cobra.WriteChromeTrace(out, filtered)
		if cerr := out.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing %s: %w", *chrome, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d events to %s\n", len(filtered), *chrome)
		return nil
	}
	if *doStats {
		if *byWindow > 0 {
			return printWindowed(filtered, *byWindow)
		}
		printStats(filtered)
		return nil
	}
	if *byWindow > 0 {
		return fmt.Errorf("-by-window needs -stats")
	}
	n := len(filtered)
	if *limit > 0 && *limit < n {
		n = *limit
	}
	for i := 0; i < n; i++ {
		printEvent(&filtered[i])
	}
	if n < len(filtered) {
		fmt.Printf("... %d more (raise -n)\n", len(filtered)-n)
	}
	return nil
}

// validate checks the stream invariants a well-formed single-run trace obeys:
// cycles never decrease, every kind is known, and component-scoped kinds
// carry a component name while frontend kinds do not.
func validate(events []cobra.Event) error {
	var prev uint64
	for i := range events {
		ev := &events[i]
		if ev.Kind.String() == "invalid" {
			return fmt.Errorf("event %d: unknown kind %d", i, ev.Kind)
		}
		if ev.Cycle < prev {
			return fmt.Errorf("event %d: cycle %d precedes cycle %d (stream not monotone)", i, ev.Cycle, prev)
		}
		prev = ev.Cycle
		frontend := ev.Kind == cobra.EventRedirect || ev.Kind == cobra.EventSquash
		if frontend && ev.Comp != "" {
			return fmt.Errorf("event %d: frontend record %s carries component %q", i, ev.Kind, ev.Comp)
		}
		if !frontend && ev.Comp == "" {
			return fmt.Errorf("event %d: component record %s has no component", i, ev.Kind)
		}
	}
	return nil
}

func buildFilter(kind, comp, pc string, since, until uint64) (func(*cobra.Event) bool, error) {
	wantKind := -1
	if kind != "" {
		k, ok := cobra.ParseEventKind(kind)
		if !ok {
			return nil, fmt.Errorf("unknown -kind %q", kind)
		}
		wantKind = int(k)
	}
	var wantPC uint64
	havePC := false
	if pc != "" {
		v, err := strconv.ParseUint(pc, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -pc %q: %v", pc, err)
		}
		wantPC, havePC = v, true
	}
	return func(ev *cobra.Event) bool {
		if wantKind >= 0 && int(ev.Kind) != wantKind {
			return false
		}
		if comp != "" && ev.Comp != comp {
			return false
		}
		if havePC && ev.PC != wantPC {
			return false
		}
		return ev.Cycle >= since && ev.Cycle <= until
	}, nil
}

func printEvent(ev *cobra.Event) {
	comp := ev.Comp
	if comp == "" {
		comp = "(frontend)"
	}
	slot := "-"
	if ev.Slot >= 0 {
		slot = strconv.Itoa(int(ev.Slot))
	}
	fmt.Printf("cycle %-10d %-10s %-12s pc=%#-12x seq=%-8d slot=%-2s", ev.Cycle, ev.Kind, comp, ev.PC, ev.Seq, slot)
	if ev.Dur > 0 {
		fmt.Printf(" dur=%d", ev.Dur)
	}
	if ev.MetaSum != 0 {
		fmt.Printf(" metasum=%#x", ev.MetaSum)
	}
	fmt.Println()
}

// printWindowed buckets the (filtered) trace into fixed cycle windows through
// the interval subsystem and prints one row per window — the time-resolved
// companion to the flat -stats view.
func printWindowed(events []cobra.Event, every uint64) error {
	set, err := interval.FromEvents(events, every)
	if err != nil {
		return err
	}
	fmt.Printf("%d events in %d windows of %d cycles\n", len(events), len(set.Windows), every)
	t := &stats.Table{Title: "events by window",
		Headers: []string{"window", "cycles", "predicts", "mispredicts", "squashes", "redirects", "repairs"}}
	for i := range set.Windows {
		w := &set.Windows[i]
		var predicts uint64
		for _, p := range w.Providers {
			predicts += p.Branches
		}
		t.AddRow(fmt.Sprintf("%d", w.Index),
			fmt.Sprintf("%d..%d", w.StartCycle, w.EndCycle),
			fmt.Sprintf("%d", predicts),
			fmt.Sprintf("%d", w.Mispredicts),
			fmt.Sprintf("%d", w.Squashes),
			fmt.Sprintf("%d", w.Redirects),
			fmt.Sprintf("%d", w.HistoryRepairs))
	}
	fmt.Print(t)
	return nil
}

func printStats(events []cobra.Event) {
	byKind := map[string]uint64{}
	byComp := map[string]uint64{}
	var first, last uint64
	for i := range events {
		ev := &events[i]
		byKind[ev.Kind.String()]++
		comp := ev.Comp
		if comp == "" {
			comp = "(frontend)"
		}
		byComp[comp]++
		if i == 0 || ev.Cycle < first {
			first = ev.Cycle
		}
		if ev.Cycle > last {
			last = ev.Cycle
		}
	}
	fmt.Printf("%d events, cycles %d..%d\n", len(events), first, last)
	t := &stats.Table{Title: "by kind", Headers: []string{"kind", "events"}}
	for _, k := range stats.SortedKeys(byKind) {
		t.AddRowf(k, byKind[k])
	}
	fmt.Print(t)
	t = &stats.Table{Title: "by component", Headers: []string{"component", "events"}}
	for _, k := range stats.SortedKeys(byComp) {
		t.AddRowf(k, byComp[k])
	}
	fmt.Print(t)
}
