// cobra-bench runs the deterministic benchmark harness and maintains the
// repo's committed performance trajectory (BENCH_*.json).
//
// Usage:
//
//	cobra-bench -o BENCH_6.json             # full run, write report
//	cobra-bench -quick                      # ~10× smaller budgets (CI smoke)
//	cobra-bench -compare BENCH_6.json       # re-run in the old report's mode
//	                                        # and exit 1 on regression
//
// Simulated counters (instructions, cycles, mispredicts) are deterministic
// per spec digest, so -compare gates them exactly across machines.
// Allocation rates get fractional headroom (-tol) for toolchain drift, and
// wall-clock throughput is gated only when -timing-tol is set explicitly —
// shared hosts are too noisy for timing gates by default.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cobra/internal/bench"
)

func main() {
	var (
		quick     = flag.Bool("quick", false, "shrink instruction budgets ~10x (CI smoke mode; reports are not comparable with full runs)")
		out       = flag.String("o", "", "write the JSON report to this path")
		compare   = flag.String("compare", "", "load an old report, re-run in its mode, and exit non-zero on regression")
		tol       = flag.Float64("tol", 0.10, "fractional headroom for allocation-rate gates in -compare")
		timingTol = flag.Float64("timing-tol", 0, "fractional headroom for insts/sec gates in -compare (0 = timing not gated)")
		workers   = flag.Int("j", 0, "runner workers (0 = GOMAXPROCS)")
		reps      = flag.Int("reps", 0, "measured repetitions per scenario (0 = 3, or 1 in quick mode)")
		quiet     = flag.Bool("q", false, "suppress progress lines")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "cobra-bench: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}

	cfg := bench.Config{Quick: *quick, Workers: *workers, Reps: *reps}
	if !*quiet {
		cfg.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "cobra-bench: "+format+"\n", args...)
		}
	}

	var old *bench.Report
	if *compare != "" {
		var err error
		old, err = bench.ReadFile(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cobra-bench: %v\n", err)
			os.Exit(2)
		}
		if old.Quick != cfg.Quick {
			// Match the committed report's mode so the runs are comparable.
			if !*quiet {
				mode := "full"
				if old.Quick {
					mode = "quick"
				}
				fmt.Fprintf(os.Stderr, "cobra-bench: switching to %s mode to match %s\n", mode, *compare)
			}
			cfg.Quick = old.Quick
		}
	}

	r, err := bench.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cobra-bench: %v\n", err)
		os.Exit(1)
	}

	if *out != "" {
		if err := bench.WriteFile(*out, r); err != nil {
			fmt.Fprintf(os.Stderr, "cobra-bench: %v\n", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "cobra-bench: wrote %s\n", *out)
		}
	} else if *compare == "" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fmt.Fprintf(os.Stderr, "cobra-bench: %v\n", err)
			os.Exit(1)
		}
	}

	if old != nil {
		regs := bench.Compare(old, r, bench.CompareOptions{AllocTol: *tol, TimingTol: *timingTol})
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "cobra-bench: %d regression(s) vs %s:\n", len(regs), *compare)
			for _, s := range regs {
				fmt.Fprintf(os.Stderr, "  - %s\n", s)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cobra-bench: no regressions vs %s\n", *compare)
	}
}
