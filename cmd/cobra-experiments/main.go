// Command cobra-experiments regenerates every table and figure of the paper
// plus the §VI discussion experiments and the ablations in DESIGN.md.
//
// Usage:
//
//	cobra-experiments -exp all -insts 2000000
//	cobra-experiments -exp fig10 -j 8
//	cobra-experiments -exp table1,table2,d3
//	cobra-experiments -exp fig10 -paranoid -timeout 5m
//
// Experiment ids: table1 table2 table3 fig8 fig9 fig10 d1 d2 d3 d4
// tracegap ablation-loop ablation-ubtb ablation-meta h2p all
//
// Each experiment's independent simulations fan out across -j worker
// goroutines (default GOMAXPROCS); results are bit-identical for every -j,
// with -j 1 forcing the serial path.  Long runs can be watched live with
// -progress (periodic stderr status), -metrics-addr (Prometheus text
// endpoint), and -pprof-addr (net/http/pprof + runtime trace).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"cobra/internal/experiments"
	"cobra/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cobra-experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment ids")
		insts    = flag.Uint64("insts", 1_000_000, "instructions per simulation run")
		warmup   = flag.Uint64("warmup", 0, "instructions discarded before measurement")
		seed     = flag.Uint64("seed", 42, "workload seed")
		jobs     = flag.Int("j", runtime.GOMAXPROCS(0), "parallel simulations (1 = serial; output identical for any value)")
		paranoid = flag.Bool("paranoid", false, "arm the pipeline invariant checker on every simulated design")
		timeout  = flag.Duration("timeout", 0, "per-simulation wall-clock budget (0 = none)")

		progress  = flag.Duration("progress", 0, "print a runner status line to stderr at this period (0 = off)")
		metrics   = flag.String("metrics-addr", "", "serve live Prometheus-style metrics on this address")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof (profiles + runtime trace) on this address")
	)
	flag.Parse()
	cfg := experiments.Config{Insts: *insts, Warmup: *warmup, Seed: *seed,
		Parallelism: *jobs, Paranoid: *paranoid, Timeout: *timeout}
	if close, err := serveTelemetry(&cfg, *progress, *metrics, *pprofAddr); err != nil {
		return err
	} else if close != nil {
		defer close()
	}

	all := []string{"table1", "table2", "table3", "fig8", "fig9", "fig10",
		"d1", "d2", "d3", "d4", "tracegap", "energy", "h2p",
		"shootout", "ablation-loop", "ablation-ubtb", "ablation-meta", "ablation-width"}
	want := strings.Split(*exp, ",")
	if *exp == "all" {
		want = all
	}
	for _, id := range want {
		switch strings.TrimSpace(id) {
		case "table1":
			fmt.Println(experiments.TableI())
		case "table2":
			fmt.Println(experiments.TableII())
		case "table3":
			fmt.Println(experiments.TableIII())
		case "fig8":
			fmt.Println(experiments.Fig8())
		case "fig9":
			fmt.Println(experiments.Fig9())
		case "fig10":
			_, t := experiments.Fig10(cfg)
			fmt.Println(t)
		case "d1":
			fmt.Println(experiments.SerializedFetch(cfg))
		case "d2":
			fmt.Println(experiments.TageLatency(cfg))
		case "d3":
			fmt.Println(experiments.HistoryRepair(cfg))
		case "d4":
			fmt.Println(experiments.SFB(cfg))
		case "tracegap":
			fmt.Println(experiments.TraceGap(cfg))
		case "energy":
			fmt.Println(experiments.Energy(cfg))
		case "ablation-loop":
			fmt.Println(experiments.AblationLoop(cfg))
		case "ablation-ubtb":
			fmt.Println(experiments.AblationUBTB(cfg))
		case "ablation-meta":
			fmt.Println(experiments.AblationMetadata())
		case "ablation-width":
			fmt.Println(experiments.AblationWidth(cfg))
		case "shootout":
			fmt.Println(experiments.Shootout(cfg))
		case "h2p":
			fmt.Println(experiments.H2P(cfg))
		default:
			return fmt.Errorf("unknown experiment %q (have %s)", id, strings.Join(all, " "))
		}
	}
	return nil
}

// serveTelemetry wires the shared observability flags into an experiment
// config: a metrics sink (created when -progress or -metrics-addr asks for
// one), the Prometheus endpoint, and the pprof listener.  The returned closer
// (possibly nil) releases the listeners.
func serveTelemetry(cfg *experiments.Config, progress time.Duration, metricsAddr, pprofAddr string) (func(), error) {
	var closers []func() error
	if progress > 0 {
		cfg.Progress = os.Stderr
		cfg.ProgressEvery = progress
	}
	if metricsAddr != "" || progress > 0 {
		cfg.Metrics = obs.NewMetrics()
	}
	if metricsAddr != "" {
		addr, close, err := obs.ServeMetrics(metricsAddr, cfg.Metrics)
		if err != nil {
			return nil, fmt.Errorf("metrics listener: %w", err)
		}
		closers = append(closers, close)
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", addr)
	}
	if pprofAddr != "" {
		addr, close, err := obs.ServePprof(pprofAddr)
		if err != nil {
			return nil, fmt.Errorf("pprof listener: %w", err)
		}
		closers = append(closers, close)
		fmt.Fprintf(os.Stderr, "pprof on http://%s/debug/pprof/\n", addr)
	}
	if len(closers) == 0 {
		return nil, nil
	}
	return func() {
		for _, c := range closers {
			c() //nolint:errcheck
		}
	}, nil
}
