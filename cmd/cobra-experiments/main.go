// Command cobra-experiments regenerates every table and figure of the paper
// plus the §VI discussion experiments and the ablations in DESIGN.md.
//
// Usage:
//
//	cobra-experiments -exp all -insts 2000000
//	cobra-experiments -exp fig10 -j 8
//	cobra-experiments -exp table1,table2,d3
//	cobra-experiments -exp fig10 -paranoid -timeout 5m
//	cobra-experiments -exp fig10 -server http://localhost:8080
//
// Experiment ids: table1 table2 table3 fig8 fig9 fig10 d1 d2 d3 d4
// tracegap ablation-loop ablation-ubtb ablation-meta h2p all
//
// Each experiment's independent simulations fan out across -j worker
// goroutines (default GOMAXPROCS); results are bit-identical for every -j,
// with -j 1 forcing the serial path.  With -server the same grids execute
// on a cobra-serve daemon through the unified backend — tables identical to
// local, because every grid point is a canonical RunSpec carrying its
// derived seed.  Long runs can be watched live with -progress (periodic
// stderr status), -metrics-addr (Prometheus text endpoint), and -pprof-addr
// (net/http/pprof + runtime trace).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"

	"cobra/internal/cli"
	"cobra/internal/client"
	"cobra/internal/experiments"
)

func main() { cli.Main("cobra-experiments", run) }

func run() error {
	f := cli.AddRunFlags(flag.CommandLine,
		cli.GBudget|cli.GGuard|cli.GTelemetry|cli.GProgress|cli.GServer|cli.GDigest)
	var (
		exp  = flag.String("exp", "all", "comma-separated experiment ids")
		jobs = flag.Int("j", runtime.GOMAXPROCS(0), "parallel simulations (1 = serial; output identical for any value)")
	)
	flag.Parse()
	if exit, err := f.Handle("cobra-experiments"); err != nil || exit {
		return err
	}
	cfg := experiments.Config{Insts: *f.Insts, Warmup: *f.Warmup, Seed: *f.Seed,
		Parallelism: *jobs, Paranoid: *f.Paranoid, Timeout: *f.Timeout,
		Digests: f.DigestWriter()}

	var onProgress func(client.Progress)
	if f.ServerURL() != "" && f.Progress != nil && *f.Progress > 0 {
		// Grid points run concurrently, so a single rewritable line would
		// interleave; report phase transitions per run instead, tagged
		// with a short digest prefix.
		var (
			mu   sync.Mutex
			seen = map[string]string{}
		)
		onProgress = func(ev client.Progress) {
			mu.Lock()
			defer mu.Unlock()
			if seen[ev.Digest] == ev.Phase || ev.Done {
				return
			}
			seen[ev.Digest] = ev.Phase
			id := strings.TrimPrefix(ev.Digest, "sha256:")
			if len(id) > 12 {
				id = id[:12]
			}
			fmt.Fprintf(os.Stderr, "run %s: phase=%s cycles=%d\n", id, ev.Phase, ev.Cycles)
		}
	}
	met, progress, closeTel, err := f.Telemetry("cobra-experiments")
	if err != nil {
		return err
	}
	defer closeTel()
	cfg.Metrics = met
	if progress > 0 {
		cfg.Progress = os.Stderr
		cfg.ProgressEvery = progress
	}
	// One flag decides where grids run; the grids themselves don't care.
	cfg.Backend, _, err = f.ResolveBackend("cobra-experiments", met, onProgress)
	if err != nil {
		return err
	}

	want := strings.Split(*exp, ",")
	if *exp == "all" {
		want = experiments.Ids()
	}
	for _, id := range want {
		out, err := experiments.Render(strings.TrimSpace(id), cfg)
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	return nil
}
