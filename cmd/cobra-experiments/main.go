// Command cobra-experiments regenerates every table and figure of the paper
// plus the §VI discussion experiments and the ablations in DESIGN.md.
//
// Usage:
//
//	cobra-experiments -exp all -insts 2000000
//	cobra-experiments -exp fig10 -j 8
//	cobra-experiments -exp table1,table2,d3
//	cobra-experiments -exp fig10 -paranoid -timeout 5m
//
// Experiment ids: table1 table2 table3 fig8 fig9 fig10 d1 d2 d3 d4
// tracegap ablation-loop ablation-ubtb ablation-meta h2p all
//
// Each experiment's independent simulations fan out across -j worker
// goroutines (default GOMAXPROCS); results are bit-identical for every -j,
// with -j 1 forcing the serial path.  Long runs can be watched live with
// -progress (periodic stderr status), -metrics-addr (Prometheus text
// endpoint), and -pprof-addr (net/http/pprof + runtime trace).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"

	"cobra/internal/cli"
	"cobra/internal/client"
	"cobra/internal/experiments"
)

func main() { cli.Main("cobra-experiments", run) }

func run() error {
	f := cli.AddRunFlags(flag.CommandLine,
		cli.GBudget|cli.GGuard|cli.GTelemetry|cli.GProgress)
	var (
		exp    = flag.String("exp", "all", "comma-separated experiment ids")
		jobs   = flag.Int("j", runtime.GOMAXPROCS(0), "parallel simulations (1 = serial; output identical for any value)")
		server = flag.String("server", "", "execute simulation grids on the cobra-serve daemon at this URL (tables identical to local; in-process-only experiments still run locally)")
	)
	flag.Parse()
	if exit, err := f.Handle("cobra-experiments"); err != nil || exit {
		return err
	}
	cfg := experiments.Config{Insts: *f.Insts, Warmup: *f.Warmup, Seed: *f.Seed,
		Parallelism: *jobs, Paranoid: *f.Paranoid, Timeout: *f.Timeout}
	if *server != "" {
		logger, err := f.Logger("cobra-experiments")
		if err != nil {
			return err
		}
		ccfg := client.Config{BaseURL: *server, Log: logger}
		if f.Progress != nil && *f.Progress > 0 {
			// Grid points run concurrently, so a single rewritable line would
			// interleave; report phase transitions per run instead, tagged
			// with a short digest prefix.
			var (
				mu   sync.Mutex
				seen = map[string]string{}
			)
			ccfg.OnProgress = func(ev client.Progress) {
				mu.Lock()
				defer mu.Unlock()
				if seen[ev.Digest] == ev.Phase || ev.Done {
					return
				}
				seen[ev.Digest] = ev.Phase
				id := strings.TrimPrefix(ev.Digest, "sha256:")
				if len(id) > 12 {
					id = id[:12]
				}
				fmt.Fprintf(os.Stderr, "run %s: phase=%s cycles=%d\n", id, ev.Phase, ev.Cycles)
			}
		}
		cfg.Remote, err = client.New(ccfg)
		if err != nil {
			return err
		}
	}
	met, progress, closeTel, err := f.Telemetry("cobra-experiments")
	if err != nil {
		return err
	}
	defer closeTel()
	cfg.Metrics = met
	if progress > 0 {
		cfg.Progress = os.Stderr
		cfg.ProgressEvery = progress
	}

	all := []string{"table1", "table2", "table3", "fig8", "fig9", "fig10",
		"d1", "d2", "d3", "d4", "tracegap", "energy", "h2p",
		"shootout", "ablation-loop", "ablation-ubtb", "ablation-meta", "ablation-width"}
	want := strings.Split(*exp, ",")
	if *exp == "all" {
		want = all
	}
	for _, id := range want {
		switch strings.TrimSpace(id) {
		case "table1":
			fmt.Println(experiments.TableI())
		case "table2":
			fmt.Println(experiments.TableII())
		case "table3":
			fmt.Println(experiments.TableIII())
		case "fig8":
			fmt.Println(experiments.Fig8())
		case "fig9":
			fmt.Println(experiments.Fig9())
		case "fig10":
			_, t := experiments.Fig10(cfg)
			fmt.Println(t)
		case "d1":
			fmt.Println(experiments.SerializedFetch(cfg))
		case "d2":
			fmt.Println(experiments.TageLatency(cfg))
		case "d3":
			fmt.Println(experiments.HistoryRepair(cfg))
		case "d4":
			fmt.Println(experiments.SFB(cfg))
		case "tracegap":
			fmt.Println(experiments.TraceGap(cfg))
		case "energy":
			fmt.Println(experiments.Energy(cfg))
		case "ablation-loop":
			fmt.Println(experiments.AblationLoop(cfg))
		case "ablation-ubtb":
			fmt.Println(experiments.AblationUBTB(cfg))
		case "ablation-meta":
			fmt.Println(experiments.AblationMetadata())
		case "ablation-width":
			fmt.Println(experiments.AblationWidth(cfg))
		case "shootout":
			fmt.Println(experiments.Shootout(cfg))
		case "h2p":
			fmt.Println(experiments.H2P(cfg))
		default:
			return fmt.Errorf("unknown experiment %q (have %s)", id, strings.Join(all, " "))
		}
	}
	return nil
}
