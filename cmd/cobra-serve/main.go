// Command cobra-serve runs the simulation service: a long-lived daemon that
// accepts RunSpecs over HTTP, executes them on a bounded worker pool, and
// memoizes results in a content-addressed cache keyed by the spec digest.
//
// Usage:
//
//	cobra-serve -addr :8080
//	cobra-serve -addr 127.0.0.1:0 -workers 8 -queue 128 -cache-dir /var/cache/cobra
//	cobra-serve -log-format json            # structured logs for collectors
//	cobra-serve -version                    # build identity, then exit
//	cobra-sim -design b2 -workload fib -insts 50000 -print-spec > run.json
//	curl -s -H 'traceparent: 00-<32hex>-<16hex>-01' -d @run.json http://localhost:8080/v1/runs
//	curl -s http://localhost:8080/v1/runs/sha256:<digest>
//	curl -s http://localhost:8080/v1/runs/sha256:<digest>/trace > trace.json
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting, /healthz/ready
// flips to 503, queued jobs run to completion (up to -drain-timeout), and the
// process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cobra/internal/cli"
	"cobra/internal/obs"
	"cobra/internal/serve"
)

func main() { cli.Main("cobra-serve", run) }

func run() error {
	base := cli.AddBaseFlags(flag.CommandLine)
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		workers      = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		queueLen     = flag.Int("queue", 64, "pending-job bound; a full queue answers 429")
		cacheN       = flag.Int("cache", 256, "in-memory result cache entries")
		cacheDir     = flag.String("cache-dir", "", "persist results in this directory (must exist; empty = memory only)")
		journalPath  = flag.String("journal", "", "durable run-journal path (default <cache-dir>/journal.wal; accepted runs survive crashes and are re-executed on restart)")
		jobRetries   = flag.Int("job-retries", 2, "automatic retries (with backoff) before a failed run lands in the failure FIFO (-1 = none)")
		traceN       = flag.Int("traces", 256, "per-run request traces kept live for /v1/runs/{id}/trace")
		jobTimeout   = flag.Duration("job-timeout", 0, "per-job wall-clock cap on top of each spec's own timeout (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 60*time.Second, "how long shutdown waits for queued jobs before abandoning them")
		quiet        = flag.Bool("quiet", false, "suppress the per-job log lines")
	)
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof (profiles + runtime trace) on this address")
	flightDump := flag.String("flight-dump", "", "write the flight-recorder JSON dump to this path on panic or SIGQUIT (default <cache-dir>/flight.json when -cache-dir is set)")
	flag.Parse()
	if exit, err := base.Handle("cobra-serve"); err != nil || exit {
		return err
	}
	logger, err := base.Logger("cobra-serve")
	if err != nil {
		return err
	}

	// The flight recorder is armed by the logger above; wire its crash-dump
	// destinations.  SIGQUIT dumps the ring (plus all goroutine stacks) and
	// exits — the on-demand "what was the daemon just doing" lever.
	if *flightDump == "" && *cacheDir != "" {
		*flightDump = *cacheDir + "/flight.json"
	}
	if *flightDump != "" {
		obs.SetFlightDumpPath(*flightDump)
	}
	uninstall := obs.InstallFlightSIGQUIT()
	defer uninstall()

	if *cacheDir != "" {
		if st, err := os.Stat(*cacheDir); err != nil || !st.IsDir() {
			return fmt.Errorf("-cache-dir %q is not a directory", *cacheDir)
		}
	}
	jobLog := logger
	if *quiet {
		jobLog = cli.DiscardLogger()
	}
	retries := *jobRetries
	if retries == 0 {
		retries = -1 // flag 0 means "no retries"; Config 0 means "default"
	}
	srv, err := serve.New(serve.Config{
		Workers:      *workers,
		QueueLen:     *queueLen,
		CacheEntries: *cacheN,
		CacheDir:     *cacheDir,
		JournalPath:  *journalPath,
		JobRetries:   retries,
		TraceEntries: *traceN,
		JobTimeout:   *jobTimeout,
		Log:          jobLog,
	})
	if err != nil {
		return err
	}
	srv.Start()

	if *pprofAddr != "" {
		bound, closePprof, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		defer closePprof() //nolint:errcheck
		logger.Info("serving pprof", "url", fmt.Sprintf("http://%s/debug/pprof/", bound))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	logger.Info("listening", "url", fmt.Sprintf("http://%s", ln.Addr()),
		"build", obs.BuildInfo().String())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	logger.Info("draining", "timeout", drainTimeout.String())
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := srv.Shutdown(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	logger.Info("drained cleanly")
	return nil
}
