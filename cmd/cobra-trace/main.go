// Command cobra-trace captures branch traces from workloads and runs the
// trace-driven (ChampSim-style) evaluator over them — the §II-B software-
// simulator methodology, provided so the modelling gap against the in-core
// numbers is reproducible from the shell.
//
// Usage:
//
//	cobra-trace -capture -workload gcc -insts 2000000 -o gcc.cbrt
//	cobra-trace -sim -design tage-l -i gcc.cbrt
//	cobra-trace -capture -workload leela | cobra-trace -sim -design b2
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cobra"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cobra-trace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		capture  = flag.Bool("capture", false, "capture a branch trace")
		sim      = flag.Bool("sim", false, "run the trace-driven evaluator")
		workload = flag.String("workload", "gcc", "workload to capture")
		insts    = flag.Uint64("insts", 1_000_000, "instructions to capture")
		seed     = flag.Uint64("seed", 42, "workload seed")
		design   = flag.String("design", "tage-l", "design for -sim: tage-l, b2, tourney")
		outPath  = flag.String("o", "", "output trace file (default stdout)")
		inPath   = flag.String("i", "", "input trace file (default stdin)")
		paranoid = flag.Bool("paranoid", false, "arm the pipeline invariant checker during -sim; violations fail the run")
		timeout  = flag.Duration("timeout", 0, "abort after this wall-clock budget (0 = none)")
	)
	flag.Parse()
	if *timeout > 0 {
		time.AfterFunc(*timeout, func() {
			fmt.Fprintf(os.Stderr, "cobra-trace: timeout after %v\n", *timeout)
			os.Exit(1)
		})
	}
	switch {
	case *capture:
		out := os.Stdout
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		n, err := cobra.CaptureTrace(out, *workload, *seed, *insts)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cobra-trace: captured %d control-flow records from %s\n", n, *workload)
	case *sim:
		in := os.Stdin
		if *inPath != "" {
			f, err := os.Open(*inPath)
			if err != nil {
				return err
			}
			defer f.Close()
			in = f
		}
		var d cobra.Design
		switch *design {
		case "tage-l":
			d = cobra.TAGEL()
		case "b2":
			d = cobra.B2()
		case "tourney":
			d = cobra.Tourney()
		default:
			return fmt.Errorf("unknown design %q", *design)
		}
		d.Opt.Paranoid = d.Opt.Paranoid || *paranoid
		res, err := cobra.TraceSim(d, in)
		if err != nil {
			return err
		}
		fmt.Printf("design=%s cfis=%d branches=%d mispredicts=%d accuracy=%.2f%% (idealized trace conditions)\n",
			d.Name, res.CFIs, res.Branches, res.Mispredicts, res.Accuracy()*100)
	default:
		return fmt.Errorf("need -capture or -sim")
	}
	return nil
}
