// Command cobra-trace captures branch traces from workloads and runs the
// trace-driven (ChampSim-style) evaluator over them — the §II-B software-
// simulator methodology, provided so the modelling gap against the in-core
// numbers is reproducible from the shell.
//
// Usage:
//
//	cobra-trace -capture -workload gcc -insts 2000000 -o gcc.cbrt
//	cobra-trace -sim -design tage-l -i gcc.cbrt
//	cobra-trace -sim -topology "GTAG3 > BTB2 > BIM2" -ghist 16 -i gcc.cbrt
//	cobra-trace -capture -workload leela | cobra-trace -sim -design b2
package main

import (
	"flag"
	"fmt"
	"os"

	"cobra"
	"cobra/internal/cli"
)

func main() { cli.Main("cobra-trace", run) }

func run() error {
	f := cli.AddRunFlags(flag.CommandLine,
		cli.GDesign|cli.GWorkload|cli.GBudget|cli.GGuard)
	cli.SetDefault(flag.CommandLine, "workload", "gcc")
	var (
		capture = flag.Bool("capture", false, "capture a branch trace")
		sim     = flag.Bool("sim", false, "run the trace-driven evaluator")
		outPath = flag.String("o", "", "output trace file (default stdout)")
		inPath  = flag.String("i", "", "input trace file (default stdin)")
	)
	flag.Parse()
	if exit, err := f.Handle("cobra-trace"); err != nil || exit {
		return err
	}
	cli.ExitAfter("cobra-trace", *f.Timeout)
	switch {
	case *capture:
		out := os.Stdout
		if *outPath != "" {
			fl, err := os.Create(*outPath)
			if err != nil {
				return err
			}
			defer fl.Close()
			out = fl
		}
		n, err := cobra.CaptureTrace(out, *f.Workload, *f.Seed, *f.Insts)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cobra-trace: captured %d control-flow records from %s\n", n, *f.Workload)
	case *sim:
		in := os.Stdin
		if *inPath != "" {
			fl, err := os.Open(*inPath)
			if err != nil {
				return err
			}
			defer fl.Close()
			in = fl
		}
		s, err := f.Spec()
		if err != nil {
			return err
		}
		opt, err := s.Pipeline.Options()
		if err != nil {
			return err
		}
		opt.Paranoid = opt.Paranoid || *f.Paranoid
		d := cobra.Design{Name: s.Design, Topology: s.Topology, Opt: opt}
		res, err := cobra.TraceSim(d, in)
		if err != nil {
			return err
		}
		fmt.Printf("design=%s cfis=%d branches=%d mispredicts=%d accuracy=%.2f%% (idealized trace conditions)\n",
			d.Name, res.CFIs, res.Branches, res.Mispredicts, res.Accuracy()*100)
	default:
		return fmt.Errorf("need -capture or -sim")
	}
	return nil
}
