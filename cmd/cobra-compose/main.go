// Command cobra-compose runs a fleet file: a compose-style YAML (or JSON)
// spec whose services are single runs, sweep grids, paper experiments, or
// bundles of other services, wired into a DAG with depends_on edges.  The
// executor runs the DAG in dependency stages, fans services and simulation
// cells out across workers, and skips every service whose content digest
// already has a cached result — so the first invocation reproduces the
// paper and the second is free, while editing one service re-runs exactly
// its downstream cone.
//
// Usage:
//
//	cobra-compose -f fleets/paper.yaml
//	cobra-compose -f fleets/paper.yaml -only fig10 -j 8
//	cobra-compose -f fleets/paper.yaml -out results/
//	cobra-compose -f fleets/paper-small.yaml -summary-json
//	cobra-compose -f fleets/paper.yaml -server http://localhost:8080
//	cobra-compose -f fleets/paper.yaml -list
//
// With -server every run and sweep cell executes on a cobra-serve daemon
// through the unified backend; outputs are byte-identical to a local run,
// because every cell is a canonical RunSpec and the daemon runs the same
// spec.Exec this process would.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cobra/internal/cli"
	"cobra/internal/fleet"
)

func main() { cli.Main("cobra-compose", run) }

func run() error {
	f := cli.AddRunFlags(flag.CommandLine, cli.GTelemetry|cli.GServer|cli.GDigest)
	var (
		file     = flag.String("f", "fleet.yaml", "fleet file to run (YAML or JSON)")
		only     = flag.String("only", "", "comma-separated services to run (with their dependency cones); empty = the whole fleet")
		jobs     = flag.Int("j", 0, "parallel services per stage and cells per service (0 = GOMAXPROCS; outputs identical for any value)")
		cacheDir = flag.String("cache-dir", ".cobra-compose", "result cache directory ('' disables caching)")
		force    = flag.Bool("force", false, "execute every service even on a cache hit, rewriting the cache")
		outDir   = flag.String("out", "", "write every service's output to <dir>/<service>.txt")
		summary  = flag.Bool("summary-json", false, "print the execution summary as JSON to stdout instead of service outputs")
		list     = flag.Bool("list", false, "print the fleet's stages and service digests without running, then exit")
		quiet    = flag.Bool("q", false, "suppress the per-service progress lines on stderr")
	)
	flag.Parse()
	if exit, err := f.Handle("cobra-compose"); err != nil || exit {
		return err
	}

	fl, err := fleet.Load(*file)
	if err != nil {
		return err
	}
	if *only != "" {
		if fl, err = fl.Restrict(strings.Split(*only, ",")); err != nil {
			return err
		}
	}

	if *list {
		stages, err := fl.Stages()
		if err != nil {
			return err
		}
		digests, err := fl.Digests()
		if err != nil {
			return err
		}
		for i, stage := range stages {
			for _, name := range stage {
				fmt.Printf("stage=%d service=%s digest=%s\n", i, name, digests[name])
			}
		}
		return nil
	}

	met, _, closeTel, err := f.Telemetry("cobra-compose")
	if err != nil {
		return err
	}
	defer closeTel()
	be, _, err := f.ResolveBackend("cobra-compose", met, nil)
	if err != nil {
		return err
	}

	opt := fleet.Options{
		Backend:     be,
		CacheDir:    *cacheDir,
		Parallelism: *jobs,
		Force:       *force,
		Digests:     f.DigestWriter(),
	}
	if !*quiet {
		opt.Log = os.Stderr
	}
	res, err := fl.Run(context.Background(), opt)
	if err != nil {
		return err
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		for _, sr := range res.Ordered {
			path := filepath.Join(*outDir, sr.Name+".txt")
			if err := os.WriteFile(path, []byte(sr.Output), 0o644); err != nil {
				return err
			}
		}
	}

	switch {
	case *summary:
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	case *outDir == "":
		// Default: print the fleet's sinks — its final artifacts.
		for _, name := range fl.Sinks() {
			sr := res.Services[name]
			fmt.Printf("=== %s ===\n%s\n", name, strings.TrimRight(sr.Output, "\n"))
		}
		fmt.Fprintf(os.Stderr, "cobra-compose: %d executed, %d skipped\n", res.Executed, res.Skipped)
	default:
		fmt.Fprintf(os.Stderr, "cobra-compose: %d executed, %d skipped, outputs in %s\n",
			res.Executed, res.Skipped, *outDir)
	}
	return nil
}
