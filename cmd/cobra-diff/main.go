// Command cobra-diff aligns the interval telemetry of two runs, reports the
// first window where they diverge, and — when it can replay both sides —
// bisects to the exact first divergent cycle and the component event behind
// it.  It is the "why do these two runs disagree" tool: point it at two spec
// files differing in one knob (a fault plan, a policy, a topology edit) and
// it answers with a window number, the metrics that moved, and the first
// cycle-level event the two executions emitted differently.
//
// Each side is, in order of recognition:
//
//   - a sha256:<hex> digest — fetched from the -server daemon's
//     GET /v1/runs/{id}/intervals endpoint;
//   - a CBRAIVL1 .ivl file written by cobra-sim -intervals;
//   - a RunSpec JSON file — executed (in-process, or on -server) with
//     interval sampling forced on.
//
// Cycle-level bisection needs both sides to be spec files (digests and .ivl
// files cannot be replayed); it replays locally either way, because replay
// determinism is the point.
//
// Usage:
//
//	cobra-diff a.ivl b.ivl
//	cobra-diff base.json faulty.json
//	cobra-diff -server http://localhost:8080 sha256:aaa... sha256:bbb...
//	cobra-diff -no-bisect base.json faulty.json
//
// Exit status: 0 when the runs are identical, 2 when they diverge, 1 on
// error.  Output is byte-stable across invocations for the same inputs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"cobra/internal/cli"
	"cobra/internal/client"
	"cobra/internal/interval"
	"cobra/internal/obs"
	"cobra/internal/spec"
	"cobra/internal/stats"
)

func main() { cli.Main("cobra-diff", run) }

// side is one resolved comparand: its interval set, plus the replayable spec
// when the operand was a spec file.
type side struct {
	label string
	set   *interval.Set
	spec  *spec.RunSpec // nil unless the operand was a spec file
}

func run() error {
	f := cli.AddRunFlags(flag.CommandLine, cli.GGuard|cli.GServer|cli.GDigest)
	var (
		intervalInsts = flag.Uint64("interval-insts", 0,
			fmt.Sprintf("window size forced onto spec operands (0 = keep the spec's own setting, defaulting to %d)", interval.DefaultInsts))
		noBisect  = flag.Bool("no-bisect", false, "stop at the window report; skip the cycle-level event bisection")
		bisectBuf = flag.Int("bisect-buf", 1<<20, "events captured per bisection probe (larger = fewer replays)")
	)
	flag.Parse()
	if exit, err := f.Handle("cobra-diff"); err != nil || exit {
		return err
	}
	if flag.NArg() != 2 {
		flag.Usage()
		return fmt.Errorf("need exactly two operands (.ivl files, spec files, or sha256: digests); got %d", flag.NArg())
	}
	cli.ExitAfter("cobra-diff", *f.Timeout)

	a, err := resolve(f, flag.Arg(0), *intervalInsts)
	if err != nil {
		return err
	}
	b, err := resolve(f, flag.Arg(1), *intervalInsts)
	if err != nil {
		return err
	}

	fmt.Printf("a: %s (%d windows, every %d insts, %s)\n", a.label, len(a.set.Windows), a.set.IntervalInsts, a.set.Hash)
	fmt.Printf("b: %s (%d windows, every %d insts, %s)\n", b.label, len(b.set.Windows), b.set.IntervalInsts, b.set.Hash)

	d, err := interval.Compare(a.set, b.set)
	if err != nil {
		return err
	}
	if d.Same() {
		fmt.Printf("no divergence: %d windows identical\n", d.LenA)
		return nil
	}

	if d.FirstWindow < 0 {
		fmt.Printf("windows identical over the common prefix; a has %d windows, b has %d\n", d.LenA, d.LenB)
	} else {
		fmt.Printf("first divergent window: %d (starts at cycle %d, inst %d)\n",
			d.FirstWindow, d.FirstCycle, d.FirstInst)
		fmt.Printf("divergent windows: %d of %d compared (a: %d windows, b: %d windows)\n",
			d.Diverged, min(d.LenA, d.LenB), d.LenA, d.LenB)
		t := &stats.Table{Title: "window metric deltas", Headers: []string{"metric", "a", "b", "delta"}}
		for _, m := range d.Deltas {
			t.AddRow(m.Name, fmt.Sprintf("%d", m.A), fmt.Sprintf("%d", m.B), fmt.Sprintf("%+d", m.Delta()))
		}
		fmt.Print(t)
	}

	if !*noBisect {
		if a.spec == nil || b.spec == nil {
			fmt.Println("bisect: skipped (needs two spec files; .ivl files and digests cannot be replayed)")
		} else if err := bisect(a.spec, b.spec, *bisectBuf); err != nil {
			return err
		}
	}
	os.Exit(2) // divergence found and reported
	return nil
}

// resolve turns one operand into a side.  Spec operands are executed through
// the selected backend with interval sampling forced on.
func resolve(f *cli.RunFlags, arg string, every uint64) (*side, error) {
	if strings.HasPrefix(arg, "sha256:") {
		if f.ServerURL() == "" {
			return nil, fmt.Errorf("%s: digest operands need -server to fetch intervals from", arg)
		}
		logger, err := f.Logger("cobra-diff")
		if err != nil {
			return nil, err
		}
		cl, err := client.New(client.Config{BaseURL: f.ServerURL(), Log: logger})
		if err != nil {
			return nil, err
		}
		set, err := cl.Intervals(context.Background(), arg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", arg, err)
		}
		return &side{label: arg, set: set}, nil
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return nil, err
	}
	if len(data) >= 8 && string(data[:8]) == "CBRAIVL1" {
		set, err := interval.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", arg, err)
		}
		return &side{label: arg, set: set}, nil
	}
	s, err := spec.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: not a CBRAIVL1 file and not a run spec: %w", arg, err)
	}
	if every > 0 {
		s.Observe.IntervalInsts = every
	} else if s.Observe.IntervalInsts == 0 {
		s.Observe.IntervalInsts = interval.DefaultInsts
	}
	if err := s.Canonicalize(); err != nil {
		return nil, fmt.Errorf("%s: %w", arg, err)
	}
	if w := f.DigestWriter(); w != nil {
		digest, err := s.Digest()
		if err != nil {
			return nil, err
		}
		cli.EmitDigest(w, digest)
	}
	be, _, err := f.ResolveBackend("cobra-diff", nil, nil)
	if err != nil {
		return nil, err
	}
	out, err := be.Run(context.Background(), s)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", arg, err)
	}
	if out.Intervals == nil {
		return nil, fmt.Errorf("%s: run produced no interval telemetry (server too old?)", arg)
	}
	return &side{label: arg, set: out.Intervals, spec: s}, nil
}

// rangeCapture keeps the first cap events at or after cycle lo and counts the
// rest — a prefix-intact probe, so a mismatch inside the stored prefix is
// found directly and an identical overflowed prefix tells the bisection
// exactly where to move its window.
type rangeCapture struct {
	lo    uint64
	limit int
	evs   []obs.Event
	total uint64
}

func (r *rangeCapture) Event(ev *obs.Event) {
	if ev.Cycle < r.lo {
		return
	}
	r.total++
	if len(r.evs) < r.limit {
		r.evs = append(r.evs, *ev)
	}
}

// replay executes one spec locally with a prefix-capture observer attached.
func replay(s *spec.RunSpec, lo uint64, limit int) (*rangeCapture, error) {
	rc := &rangeCapture{lo: lo, limit: limit, evs: make([]obs.Event, 0, limit)}
	if _, err := spec.Exec(s, spec.Attach{Observer: rc}); err != nil {
		return nil, err
	}
	return rc, nil
}

// bisect replays both specs with progressively advanced event capture until
// it isolates the first event the two executions emitted differently, then
// prints the structured explanation (component, PC, sequence number, cycle).
// Replay cycles are absolute — they include warmup, unlike the
// measurement-relative window bounds above.
func bisect(sa, sb *spec.RunSpec, limit int) error {
	fmt.Printf("bisect: replaying both specs with event capture (%d events per probe)\n", limit)
	var lo uint64
	for probe := 1; ; probe++ {
		ra, err := replay(sa, lo, limit)
		if err != nil {
			return fmt.Errorf("bisect: replaying a: %w", err)
		}
		rb, err := replay(sb, lo, limit)
		if err != nil {
			return fmt.Errorf("bisect: replaying b: %w", err)
		}
		n := min(len(ra.evs), len(rb.evs))
		for i := 0; i < n; i++ {
			if ra.evs[i] != rb.evs[i] {
				fmt.Printf("bisect: first divergent event at replay cycle %d (probe %d, capture from cycle %d)\n",
					min(ra.evs[i].Cycle, rb.evs[i].Cycle), probe, lo)
				fmt.Printf("  a: %s\n", formatEvent(&ra.evs[i]))
				fmt.Printf("  b: %s\n", formatEvent(&rb.evs[i]))
				explain(&ra.evs[i], &rb.evs[i])
				return nil
			}
		}
		if len(ra.evs) != len(rb.evs) {
			// Identical up to the shorter stream's end; the longer stream's
			// next event exists only on one side — that is the divergence.
			longer, name := ra, "a"
			if len(rb.evs) > len(ra.evs) {
				longer, name = rb, "b"
			}
			ev := &longer.evs[n]
			fmt.Printf("bisect: first divergent event at replay cycle %d: present only in %s\n", ev.Cycle, name)
			fmt.Printf("  %s: %s\n", name, formatEvent(ev))
			fmt.Printf("bisect: component=%s pc=%#x seq=%d cycle=%d\n", compName(ev), ev.PC, ev.Seq, ev.Cycle)
			return nil
		}
		if ra.total <= uint64(limit) && rb.total <= uint64(limit) {
			fmt.Println("bisect: event streams identical — divergence is not visible at event granularity")
			return nil
		}
		// Both prefixes full and identical: advance the capture window past
		// the common prefix and probe again.
		next := ra.evs[len(ra.evs)-1].Cycle
		if next == lo {
			return fmt.Errorf("bisect: more than %d identical events in cycle %d; raise -bisect-buf", limit, lo)
		}
		lo = next
	}
}

// formatEvent renders one event the way cobra-events prints records.
func formatEvent(ev *obs.Event) string {
	s := fmt.Sprintf("cycle %d %s %s pc=%#x seq=%d", ev.Cycle, ev.Kind, compName(ev), ev.PC, ev.Seq)
	if ev.Slot >= 0 {
		s += fmt.Sprintf(" slot=%d", ev.Slot)
	}
	if ev.MetaSum != 0 {
		s += fmt.Sprintf(" metasum=%#x", ev.MetaSum)
	}
	return s
}

func compName(ev *obs.Event) string {
	if ev.Comp == "" {
		return "(frontend)"
	}
	return ev.Comp
}

// explain prints the structured one-line root-cause summary for a pair of
// events that occupy the same stream position but differ.
func explain(a, b *obs.Event) {
	comp := compName(a)
	if bc := compName(b); bc != comp {
		comp = comp + "|" + bc
	}
	pc := fmt.Sprintf("%#x", a.PC)
	if b.PC != a.PC {
		pc += fmt.Sprintf("|%#x", b.PC)
	}
	fmt.Printf("bisect: component=%s pc=%s seq=%d cycle=%d\n", comp, pc, a.Seq, min(a.Cycle, b.Cycle))
}
