// Package cobra is a framework for evaluating compositions of hardware
// branch predictors, reproducing "COBRA: A Framework for Evaluating
// Compositions of Hardware Branch Predictors" (ISPASS 2021).
//
// The package offers the paper's three layers:
//
//   - a common sub-component interface (predict / fire / mispredict /
//     repair / update events, pipelined latencies, superscalar prediction
//     vectors, and an opaque metadata round-trip) with a component library —
//     counter tables, BTBs, a micro-BTB, a tagged global table, TAGE, a
//     tournament selector, a loop predictor, plus the §II-A lineage (GEHL,
//     YAGS, gskew, perceptron), a statistical corrector, and ITTAGE-style
//     indirect-target tables;
//
//   - a composer that turns a topological description such as
//
//     LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1
//     TOURNEY3 > [GBIM2 > BTB2, LBIM2]
//
//     into a complete prediction pipeline with generated management
//     structures: a history file, a forwards-walk repair state machine, and
//     speculative global/local/path history providers;
//
//   - a host core: a cycle-level 4-wide out-of-order machine (Table II)
//     whose fetch unit is driven by the composed pipeline, running
//     synthetic SPECint17-proxy workloads against an architectural oracle,
//     plus an analytic area model standing in for the synthesis flow and a
//     trace-driven evaluator standing in for ChampSim-style simulators.
//
// Quick start:
//
//	res, err := cobra.Run(cobra.RunConfig{
//	    Design:   cobra.TAGEL(),
//	    Workload: "dhrystone",
//	    MaxInsts: 1_000_000,
//	})
//	fmt.Printf("IPC=%.2f MPKI=%.2f\n", res.IPC(), res.MPKI())
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package cobra
