// Composer walk-through: the Fig. 5 exercise.  The paper shows how a user
// drives the composer to elaborate LOOP3 > TOURNEY3 > [GHT2, LHT2], and
// §IV-A.1 lists three reasonable placements for the loop predictor.  This
// example builds all three topologies, prints their pipeline diagrams, and
// runs them head-to-head on a loop-heavy workload — the design-space
// exploration COBRA exists to make cheap.
package main

import (
	"fmt"
	"log"

	"cobra"
)

func main() {
	// The three §IV-A.1 loop-predictor placements over a tournament core.
	topologies := []string{
		"TOURNEY3 > [(LOOP2 > GBIM2), LBIM2]",
		"TOURNEY3 > [GBIM2, (LOOP2 > LBIM2)]",
		"LOOP3 > TOURNEY3 > [GBIM2, LBIM2]",
	}
	opt := cobra.PipelineOptions{GHistBits: 32, LocalEntries: 256, LocalHistBits: 32}

	for i, topo := range topologies {
		d := cobra.Design{Name: fmt.Sprintf("variant-%d", i+1), Topology: topo, Opt: opt}
		diagram, err := cobra.PipelineDiagram(d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(diagram)

		res, err := cobra.Run(cobra.RunConfig{
			Design:   d,
			Workload: "x264", // long predictable inner loops
			MaxInsts: 500_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  -> %s on x264 proxy: IPC=%.3f MPKI=%.2f acc=%.2f%%\n\n",
			d.Name, res.IPC(), res.MPKI(), res.Accuracy()*100)
	}

	fmt.Println("Note how moving one sub-component re-wires the pipeline without")
	fmt.Println("touching any other component — the composer synthesizes the staging,")
	fmt.Println("history file, and repair machinery for every variant (§IV-B).")
}
