// Interpreted-ISA kernels: workloads with *computed* branch behaviour.
//
// The proxy workloads shape branch statistics; the ISA path goes further —
// you write assembly, the architectural oracle interprets it, and branch
// outcomes fall out of real register/memory contents.  This example runs
// the three bundled kernels across the paper's designs and then assembles
// a custom kernel through the public API.
package main

import (
	"fmt"
	"log"

	"cobra"
	"cobra/internal/stats"
)

// A branchy custom kernel: count set bits of xorshift values; the inner
// loop trip count depends on the data.
const popcountSrc = `
.data seedw 99991

start:
main:
    la r5, seedw
    ld r6, 0(r5)
    li r11, 13
    sll r12, r6, r11
    xor r6, r6, r12
    li r11, 7
    srl r12, r6, r11
    xor r6, r6, r12
    li r11, 17
    sll r12, r6, r11
    xor r6, r6, r12
    st r6, 0(r5)
    # popcount of the low 16 bits
    li r7, 65535
    and r8, r6, r7
    li r9, 0
pc_loop:
    beq r8, zero, pc_done
    li r11, 1
    and r12, r8, r11
    add r9, r9, r12
    srl r8, r8, r11
    j pc_loop
pc_done:
    j main
`

func main() {
	table := &stats.Table{
		Title:   "Interpreted-ISA kernels across the Table I designs",
		Headers: []string{"kernel", "design", "IPC", "MPKI", "accuracy"},
	}
	for _, kernel := range []string{"sort", "fib", "dispatch"} {
		for _, d := range cobra.Designs() {
			res, err := cobra.Run(cobra.RunConfig{Design: d, Workload: kernel, MaxInsts: 300_000})
			if err != nil {
				log.Fatal(err)
			}
			table.AddRow(kernel, d.Name,
				fmt.Sprintf("%.3f", res.IPC()),
				fmt.Sprintf("%.2f", res.MPKI()),
				fmt.Sprintf("%.2f%%", res.Accuracy()*100))
		}
	}
	fmt.Println(table)

	// Custom assembly through the public API.
	prog, err := cobra.CompileASM("popcount", popcountSrc)
	if err != nil {
		log.Fatal(err)
	}
	bp, err := cobra.TAGEL().Build()
	if err != nil {
		log.Fatal(err)
	}
	res := cobra.NewCore(cobra.DefaultCoreConfig(), bp, prog, 1).Run(300_000)
	fmt.Printf("custom popcount kernel on tage-l: IPC=%.3f MPKI=%.2f acc=%.2f%%\n",
		res.IPC(), res.MPKI(), res.Accuracy()*100)
	fmt.Println("\nThe popcount exit branch depends on how many bits the xorshift set —")
	fmt.Println("data-dependent control flow no statistical proxy can fake.")
}
