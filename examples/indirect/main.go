// Extending the library: indirect-target prediction.
//
// The starter library's BTB remembers one target per site; a dispatch loop
// that cycles through handlers defeats it — every indirect execution jumps
// somewhere other than last time.  The ITGT component (an ITTAGE-style
// history-tagged target table) slots into any topology as a target-only
// partial prediction (§III-F) and recovers those targets from branch
// context.
//
// This example builds a virtual-machine-style dispatch loop (an indirect
// jump cycling over four handler blocks, each with its own branch noise),
// then races TAGE-L with and without ITGT.
package main

import (
	"fmt"
	"log"

	"cobra"
	"cobra/internal/program"
	"cobra/internal/stats"
	"cobra/internal/uarch"
)

// dispatchLoop builds the interpreter-style workload.
func dispatchLoop() *program.Program {
	b := program.NewBuilder("dispatch", 0x10000, 4, 31)
	skip := b.ForwardJump()
	handlers := make([]uint64, 0, 4)
	exits := make([]*program.Fixup, 0, 4)
	for i := 0; i < 4; i++ {
		handlers = append(handlers, b.PC())
		b.Ops(3, 0.2, 0.1, 0, func() program.MemBehavior {
			return &program.StrideMem{Base: 0x100000 + uint64(i)*0x1000, Stride: 8, Span: 512}
		})
		// Each handler leaves a distinct branch-history footprint (a
		// different number of near-constant branches), the way real
		// interpreter handlers have different internal control flow — that
		// footprint is what lets history-tagged target tables identify the
		// dispatch position.
		for k := 0; k <= i; k++ {
			fx := b.ForwardBranch(&program.BiasedDir{P: 0.995})
			b.Ops(1, 0, 0, 0, nil)
			fx.Bind()
		}
		fx := b.ForwardBranch(&program.BiasedDir{P: 0.1})
		b.Ops(1, 0, 0, 0, nil)
		fx.Bind()
		exits = append(exits, b.ForwardJump())
	}
	skip.Bind()
	head := b.PC()
	b.Ops(2, 0, 0, 0, nil)
	b.Indirect(&program.CycleTgt{Targets: handlers})
	for _, fx := range exits {
		fx.BindTo(head)
	}
	b.Ops(1, 0, 0, 0, nil)
	return b.MustSeal()
}

func run(topology string) *cobra.Result {
	bp, err := cobra.NewPipeline(topology, cobra.PipelineOptions{GHistBits: 64})
	if err != nil {
		log.Fatal(err)
	}
	core := cobra.NewCore(uarch.DefaultConfig(), bp, dispatchLoop(), 7)
	return core.Run(500_000)
}

func main() {
	table := &stats.Table{
		Title:   "Interpreter dispatch loop: BTB-only vs history-tagged targets",
		Headers: []string{"design", "IPC", "target misses", "indirects"},
	}
	for _, tc := range []struct{ name, topo string }{
		{"tage-l (BTB targets)", "LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1"},
		{"tage-l + ITGT", "ITGT3 > LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1"},
	} {
		res := run(tc.topo)
		table.AddRow(tc.name,
			fmt.Sprintf("%.3f", res.IPC()),
			fmt.Sprintf("%d", res.TgtMispredicts),
			fmt.Sprintf("%d", res.IndirectJumps))
	}
	fmt.Println(table)
	fmt.Println("The BTB can only replay the previous target; the ITTAGE-style tables")
	fmt.Println("key targets on global branch history and learn the dispatch cycle.")
}
