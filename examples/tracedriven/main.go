// Trace-driven vs hardware-guided evaluation: the §II-B argument, live.
//
// The same composed predictor is evaluated twice on the same branch stream:
// once under idealized trace-simulator conditions (perfect history,
// immediate update, no speculation — the ChampSim/CBP methodology), and once
// inside the speculating superscalar core.  The accuracy gap is the
// modelling error the paper argues software simulators hide.
package main

import (
	"bytes"
	"fmt"
	"log"

	"cobra"
	"cobra/internal/stats"
)

func main() {
	const insts = 500_000
	table := &stats.Table{
		Title:   "Same predictor, two methodologies",
		Headers: []string{"design", "workload", "trace-sim acc", "in-core acc", "gap (pp)"},
	}
	for _, d := range cobra.Designs() {
		for _, w := range []string{"gcc", "leela"} {
			// Capture the architectural branch stream.
			var buf bytes.Buffer
			if _, err := cobra.CaptureTrace(&buf, w, 42, insts); err != nil {
				log.Fatal(err)
			}
			tres, err := cobra.TraceSim(d, &buf)
			if err != nil {
				log.Fatal(err)
			}
			cres, err := cobra.Run(cobra.RunConfig{Design: d, Workload: w, MaxInsts: insts})
			if err != nil {
				log.Fatal(err)
			}
			table.AddRow(d.Name, w,
				fmt.Sprintf("%.2f%%", tres.Accuracy()*100),
				fmt.Sprintf("%.2f%%", cres.Accuracy()*100),
				fmt.Sprintf("%+.2f", (tres.Accuracy()-cres.Accuracy())*100))
		}
	}
	fmt.Println(table)
	fmt.Println("The trace harness systematically overstates accuracy: it never sees")
	fmt.Println("wrong-path history pollution, update delay, or packet effects.")
}
