// Quickstart: compose the paper's TAGE-L predictor, attach it to the 4-wide
// BOOM-like core (Table II), run the Dhrystone proxy, and print the
// performance counters.
package main

import (
	"fmt"
	"log"

	"cobra"
)

func main() {
	design := cobra.TAGEL()
	fmt.Printf("design:   %s\n", design.Name)
	fmt.Printf("topology: %s\n\n", design.Topology)

	res, err := cobra.Run(cobra.RunConfig{
		Design:   design,
		Workload: "dhrystone",
		MaxInsts: 1_000_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("instructions: %d\n", res.Instructions)
	fmt.Printf("cycles:       %d\n", res.Cycles)
	fmt.Printf("IPC:          %.3f\n", res.IPC())
	fmt.Printf("MPKI:         %.2f\n", res.MPKI())
	fmt.Printf("accuracy:     %.2f%%\n", res.Accuracy()*100)
	fmt.Printf("bubbles:      %.1f%% of cycles\n", res.BubbleFrac()*100)

	if kb, err := design.StorageKB(); err == nil {
		fmt.Printf("storage:      %.1f KB (Table I: 28 KB)\n", kb)
	}
}
