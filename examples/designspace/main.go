// Design-space exploration: sweep predictor capacity and latency, the
// trade-offs §VI-A discusses.  For each TAGE size the example reports
// accuracy, IPC, and modelled area, and then sweeps the TAGE response
// latency to show the latency/accuracy trade-off the hardware-guided
// methodology exposes (a software functional model would show no IPC
// difference at all).
package main

import (
	"fmt"
	"log"

	"cobra"
	"cobra/internal/stats"
)

func main() {
	const workload = "gcc"
	const insts = 500_000

	fmt.Printf("== capacity sweep (%s proxy, %d insts) ==\n\n", workload, insts)
	capTable := &stats.Table{Headers: []string{"TAGE rows", "storage KB", "area kU", "MPKI", "IPC"}}
	for _, rows := range []int{512, 1024, 2048, 4096, 8192} {
		d := cobra.Design{
			Name:     fmt.Sprintf("tage-%d", rows),
			Topology: fmt.Sprintf("LOOP3 > TAGE3(%d) > BTB2 > BIM2 > UBTB1", rows),
			Opt:      cobra.PipelineOptions{GHistBits: 64},
		}
		res, err := cobra.Run(cobra.RunConfig{Design: d, Workload: workload, MaxInsts: insts})
		if err != nil {
			log.Fatal(err)
		}
		kb, _ := d.StorageKB()
		bd, _ := cobra.PredictorArea(d)
		capTable.AddRow(fmt.Sprint(rows), fmt.Sprintf("%.1f", kb),
			fmt.Sprintf("%.0f", bd.Total()/1000),
			fmt.Sprintf("%.2f", res.MPKI()), fmt.Sprintf("%.3f", res.IPC()))
	}
	fmt.Println(capTable)

	fmt.Printf("== latency sweep (§VI-A: the 2-vs-3-cycle TAGE experiment) ==\n\n")
	latTable := &stats.Table{Headers: []string{"TAGE latency", "MPKI", "IPC", "accuracy"}}
	for _, lat := range []int{2, 3, 4} {
		d := cobra.Design{
			Name:     fmt.Sprintf("tage-lat%d", lat),
			Topology: fmt.Sprintf("LOOP3 > TAGE%d > BTB2 > BIM2 > UBTB1", lat),
			Opt:      cobra.PipelineOptions{GHistBits: 64},
		}
		res, err := cobra.Run(cobra.RunConfig{Design: d, Workload: workload, MaxInsts: insts})
		if err != nil {
			log.Fatal(err)
		}
		latTable.AddRow(fmt.Sprint(lat), fmt.Sprintf("%.2f", res.MPKI()),
			fmt.Sprintf("%.3f", res.IPC()), fmt.Sprintf("%.2f%%", res.Accuracy()*100))
	}
	fmt.Println(latTable)
	fmt.Println("Deeper response latency leaves accuracy untouched but costs IPC via")
	fmt.Println("extra override bubbles — the effect §VI-A measured at ~1%.")
}
