package cobra

// Determinism pin for the interval-telemetry subsystem: the windowed series
// is derived purely from the deterministic simulation, so its content hash
// must be byte-identical however the run is scheduled — one worker or many,
// in-process or through a cobra-serve daemon.  A hash drift here means
// nondeterminism leaked into the sampling path (map iteration order, ring
// state bleeding between runs, wall-clock-dependent window closes), which
// would make cobra-diff's divergence reports meaningless.

import (
	"context"
	"net/http/httptest"
	"reflect"
	"runtime"
	"testing"
	"time"

	"cobra/internal/backend"
	"cobra/internal/client"
	"cobra/internal/interval"
	"cobra/internal/runner"
	"cobra/internal/serve"
	"cobra/internal/spec"
)

// intervalSpecs returns the Table I design points with interval sampling on:
// short budgets, a window size that yields several windows, and a warmup
// slice so the Rebase path is exercised too.
func intervalSpecs(t *testing.T) []*spec.RunSpec {
	t.Helper()
	var out []*spec.RunSpec
	for _, d := range []string{"tage-l", "b2", "tourney"} {
		s, err := spec.Preset(d)
		if err != nil {
			t.Fatal(err)
		}
		s.Workload = "dhrystone"
		s.Insts = 100_000
		s.Warmup = 10_000
		s.Observe.IntervalInsts = 20_000
		out = append(out, s)
	}
	return out
}

func intervalHashes(t *testing.T, workers int) []string {
	t.Helper()
	specs := intervalSpecs(t)
	res, err := runner.RunSpecs(specs, runner.Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	hashes := make([]string, len(res))
	for i, r := range res {
		set := r.Outcome.Intervals
		if set == nil || len(set.Windows) == 0 {
			t.Fatalf("spec %d recorded no intervals", i)
		}
		if set.Hash == "" {
			t.Fatalf("spec %d interval set has no hash", i)
		}
		hashes[i] = set.Hash
	}
	return hashes
}

func TestIntervalHashParallelismInvariant(t *testing.T) {
	serial := intervalHashes(t, 1)
	parallel := intervalHashes(t, runtime.GOMAXPROCS(0))
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("spec %d: -j 1 hash %s != -j %d hash %s",
				i, serial[i], runtime.GOMAXPROCS(0), parallel[i])
		}
	}
}

func TestIntervalHashBackendInvariant(t *testing.T) {
	srv, err := serve.New(serve.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	}()
	remote, err := backend.NewRemote(client.Config{BaseURL: ts.URL, Poll: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	local := intervalHashes(t, 1)
	specs := intervalSpecs(t)
	for i, s := range specs {
		out, err := remote.Run(context.Background(), s)
		if err != nil {
			t.Fatalf("spec %d remote: %v", i, err)
		}
		if out.Intervals == nil {
			t.Fatalf("spec %d: remote outcome has no intervals", i)
		}
		if out.Intervals.Hash != local[i] {
			t.Errorf("spec %d: remote hash %s != local hash %s", i, out.Intervals.Hash, local[i])
		}
		// The wire carried the windows, not just the hash — and the hash is
		// honest: recomputing it from the windows gives the same value.
		if got := out.Intervals.ContentHash(); got != out.Intervals.Hash {
			t.Errorf("spec %d: remote set hash %s does not match its content %s", i, out.Intervals.Hash, got)
		}
	}
}

// TestIntervalSamplingDoesNotPerturbResults: the golden-table guarantee —
// turning interval telemetry on changes what is *observed*, never what is
// *simulated*.  Counters must be bit-identical with sampling on and off.
func TestIntervalSamplingDoesNotPerturbResults(t *testing.T) {
	for _, d := range []string{"tage-l", "b2"} {
		base, err := spec.Preset(d)
		if err != nil {
			t.Fatal(err)
		}
		base.Workload = "dhrystone"
		base.Insts = 60_000
		bare, err := spec.Exec(base, spec.Attach{})
		if err != nil {
			t.Fatal(err)
		}
		sampled := base.Clone()
		sampled.Observe.IntervalInsts = 10_000
		got, err := spec.Exec(sampled, spec.Attach{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(bare.Stats, got.Stats) {
			t.Fatalf("%s: counters changed with intervals enabled:\nbare:    %+v\nsampled: %+v",
				d, bare.Stats, got.Stats)
		}
		if got.Intervals == nil || len(got.Intervals.Windows) != 6 {
			t.Fatalf("%s: want 6 windows over 60k insts, got %+v", d, got.Intervals)
		}
		if got.Intervals.IntervalInsts != 10_000 {
			t.Fatalf("%s: IntervalInsts = %d", d, got.Intervals.IntervalInsts)
		}
	}
}

// TestIntervalDefaultWindow: a zero IntervalInsts in the recorder selects the
// documented default.
func TestIntervalDefaultWindow(t *testing.T) {
	if got := interval.NewRecorder(0).IntervalInsts(); got != interval.DefaultInsts {
		t.Fatalf("default window = %d, want %d", got, interval.DefaultInsts)
	}
}
