package isa

// Sample programs for the interpreted-ISA workloads.  Each loops forever
// (the oracle's convention) and re-randomizes its data with an in-assembly
// xorshift so branch behaviour does not settle into a fixed trace.
//
// Register conventions (informal): r2 = data stack pointer, r5-r9 common
// scratch, r10 argument/return for fib.

// SortSource is an insertion sort over an array refilled with xorshift
// pseudo-random values each outer iteration — the compare and shift
// branches are genuinely data-dependent.
const SortSource = `
.data arr   0 0 0 0 0 0 0 0 0 0 0 0
.data seedw 88172645463325252
.data nelem 12

start:
main:
    jal refill
    jal isort
    jal check
    j main

# --- refill arr with xorshift values (bounded to 0..255) ---
refill:
    la r5, seedw
    ld r6, 0(r5)
    la r7, arr
    li r8, 0
    la r9, nelem
    ld r9, 0(r9)
rf_loop:
    li r11, 13
    sll r12, r6, r11
    xor r6, r6, r12
    li r11, 7
    srl r12, r6, r11
    xor r6, r6, r12
    li r11, 17
    sll r12, r6, r11
    xor r6, r6, r12
    li r11, 255
    and r12, r6, r11
    li r11, 3
    sll r13, r8, r11
    add r13, r13, r7
    st r12, 0(r13)
    addi r8, r8, 1
    blt r8, r9, rf_loop
    st r6, 0(r5)
    ret

# --- insertion sort ---
isort:
    la r7, arr
    li r8, 1
    la r9, nelem
    ld r9, 0(r9)
is_outer:
    bge r8, r9, is_done
    li r11, 3
    sll r12, r8, r11
    add r12, r12, r7
    ld r13, 0(r12)
    mv r14, r8
is_inner:
    addi r15, r14, -1
    blt r15, zero, is_place
    li r11, 3
    sll r16, r15, r11
    add r16, r16, r7
    ld r17, 0(r16)
    bge r13, r17, is_place
    li r11, 3
    sll r18, r14, r11
    add r18, r18, r7
    st r17, 0(r18)
    mv r14, r15
    j is_inner
is_place:
    li r11, 3
    sll r18, r14, r11
    add r18, r18, r7
    st r13, 0(r18)
    addi r8, r8, 1
    j is_outer
is_done:
    ret

# --- verify sortedness (r20 = 1 if sorted) ---
check:
    la r7, arr
    li r8, 1
    la r9, nelem
    ld r9, 0(r9)
    li r20, 1
ck_loop:
    bge r8, r9, ck_done
    li r11, 3
    sll r12, r8, r11
    add r12, r12, r7
    ld r13, 0(r12)
    addi r14, r12, -8
    ld r15, 0(r14)
    bge r13, r15, ck_next
    li r20, 0
ck_next:
    addi r8, r8, 1
    j ck_loop
ck_done:
    ret
`

// FibSource computes fib(12) recursively with an explicit data stack —
// a deep, regular call tree stressing the return-address stack.
const FibSource = `
.space stk 256
.data  acc 0

start:
    la r2, stk
main:
    li r10, 12
    jal fib
    la r5, acc
    ld r6, 0(r5)
    add r6, r6, r10
    st r6, 0(r5)
    j main

# fib(n): argument and result in r10; r2 is the stack pointer
fib:
    li r11, 2
    blt r10, r11, fib_base
    st r10, 0(r2)
    addi r2, r2, 8
    addi r10, r10, -1
    jal fib
    addi r2, r2, -8
    ld r11, 0(r2)
    st r10, 0(r2)
    addi r2, r2, 8
    addi r10, r11, -2
    jal fib
    addi r2, r2, -8
    ld r11, 0(r2)
    add r10, r10, r11
    ret
fib_base:
    ret
`

// DispatchSource builds a jump table at run time (la of code labels) and
// dispatches through jr on xorshift-selected cases — the polymorphic
// indirect-branch workload, with real computed targets.
const DispatchSource = `
.data seedw 2463534242
.space jt   4
.data acc   0

start:
    # build the jump table
    la r5, jt
    la r6, case0
    st r6, 0(r5)
    la r6, case1
    st r6, 8(r5)
    la r6, case2
    st r6, 16(r5)
    la r6, case3
    st r6, 24(r5)
main:
    # advance the seed
    la r5, seedw
    ld r6, 0(r5)
    li r11, 13
    sll r12, r6, r11
    xor r6, r6, r12
    li r11, 7
    srl r12, r6, r11
    xor r6, r6, r12
    li r11, 17
    sll r12, r6, r11
    xor r6, r6, r12
    st r6, 0(r5)
    # select a case
    li r11, 3
    and r12, r6, r11
    sll r12, r12, r11
    la r13, jt
    add r13, r13, r12
    ld r14, 0(r13)
    jr r14

case0:
    la r5, acc
    ld r6, 0(r5)
    addi r6, r6, 1
    st r6, 0(r5)
    j main
case1:
    la r5, acc
    ld r6, 0(r5)
    addi r6, r6, 3
    st r6, 0(r5)
    li r7, 2
    mul r6, r6, r7
    j main
case2:
    la r5, acc
    ld r6, 0(r5)
    li r7, 1
    srl r6, r6, r7
    st r6, 0(r5)
    j main
case3:
    nop
    nop
    j main
`
