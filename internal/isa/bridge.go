package isa

import (
	"fmt"

	"cobra/internal/program"
)

// codeBase is where assembled instructions are placed.
const codeBase = 0x1000

// bridgeSem executes one ALU instruction's semantics.
type bridgeSem struct {
	m  *Machine
	in *inst
}

// Exec implements program.SemBehavior.
func (b *bridgeSem) Exec(*program.State) { b.m.exec(b.in) }

// bridgeDir evaluates a conditional branch against live machine state.
type bridgeDir struct {
	m  *Machine
	in *inst
}

// Next implements program.DirBehavior.
func (b *bridgeDir) Next(*program.State) bool { return b.m.branchTaken(b.in) }

// bridgeTgt reads an indirect target from a register.
type bridgeTgt struct {
	m  *Machine
	rs uint8
}

// NextTarget implements program.TgtBehavior.
func (b *bridgeTgt) NextTarget(*program.State) uint64 { return uint64(b.m.reg(b.rs)) }

// bridgeMem computes a memory address and performs the access (loads write
// the destination register; stores write memory).
type bridgeMem struct {
	m      *Machine
	in     *inst
	isLoad bool
}

// NextAddr implements program.MemBehavior.
func (b *bridgeMem) NextAddr(*program.State) uint64 {
	addr := uint64(b.m.reg(b.in.rs1) + b.in.imm)
	if b.isLoad {
		b.m.setReg(b.in.rd, b.m.Load(addr))
	} else {
		b.m.Store(addr, b.m.reg(b.in.rs2))
	}
	return addr
}

// Compile assembles source text into an executable program image plus the
// machine it interprets.  The returned Program is single-use, like every
// program: its behaviours mutate the machine in committed order.
func Compile(name, src string) (*program.Program, *Machine, error) {
	u, err := parse(src)
	if err != nil {
		return nil, nil, err
	}
	m := NewMachine()
	for _, w := range u.words {
		m.Store(w.addr, w.val)
	}
	p := program.New(name, codeBase, 4)
	pcOf := func(idx int) uint64 { return codeBase + uint64(idx)*4 }

	for idx := range u.insts {
		in := &u.insts[idx]
		pi := &program.Inst{PC: pcOf(idx), Kind: program.KindOp, Class: program.ClassALU}
		switch in.op {
		case opAdd, opSub, opAnd, opOr, opXor, opSlt, opSll, opSrl:
			pi.Sem = &bridgeSem{m, in}
			pi.Dst, pi.Src1, pi.Src2 = in.rd, in.rs1, in.rs2
		case opMul:
			pi.Sem = &bridgeSem{m, in}
			pi.Class = program.ClassMul
			pi.Dst, pi.Src1, pi.Src2 = in.rd, in.rs1, in.rs2
		case opAddi, opSlti:
			pi.Sem = &bridgeSem{m, in}
			pi.Dst, pi.Src1 = in.rd, in.rs1
		case opLaCode:
			// Resolved here: the label's code address.
			resolved := *in
			resolved.op = opAddi
			resolved.rs1 = 0
			resolved.imm = int64(pcOf(int(in.imm)))
			u.insts[idx] = resolved
			pi.Sem = &bridgeSem{m, &u.insts[idx]}
			pi.Dst = in.rd
		case opLd:
			pi.Class = program.ClassLoad
			pi.Mem = &bridgeMem{m, in, true}
			pi.Dst, pi.Src1 = in.rd, in.rs1
		case opSt:
			pi.Class = program.ClassStore
			pi.Mem = &bridgeMem{m, in, false}
			pi.Src1, pi.Src2 = in.rs1, in.rs2
		case opBeq, opBne, opBlt, opBge:
			pi.Kind = program.KindBranch
			pi.Dir = &bridgeDir{m, in}
			pi.Target = pcOf(u.labels[in.target])
			pi.Src1, pi.Src2 = in.rs1, in.rs2
		case opJ:
			pi.Kind = program.KindJump
			pi.Target = pcOf(u.labels[in.target])
		case opJal:
			pi.Kind = program.KindCall
			pi.Target = pcOf(u.labels[in.target])
		case opRet:
			pi.Kind = program.KindRet
		case opJr:
			pi.Kind = program.KindIndirect
			pi.Tgt = &bridgeTgt{m, in.rs1}
			pi.Src1 = in.rs1
		case opNop:
		default:
			return nil, nil, fmt.Errorf("isa: line %d: unhandled opcode %d", in.line, in.op)
		}
		p.Add(pi)
	}
	if err := p.Validate(); err != nil {
		return nil, nil, fmt.Errorf("isa: %s: %w (programs must loop forever and never fall off the image)", name, err)
	}
	// Bridge behaviours mutate the shared Machine, so the image cannot be
	// shared or cached like the slot-based synthetic programs.
	p.SingleUse = true
	return p, m, nil
}

// MustCompile is Compile for known-good sources.
func MustCompile(name, src string) *program.Program {
	p, _, err := Compile(name, src)
	if err != nil {
		panic(err)
	}
	return p
}
