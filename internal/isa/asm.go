package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// asmUnit is the parsed assembly: instructions with label references plus
// data segments.
type asmUnit struct {
	insts  []inst
	labels map[string]int // label -> instruction index
	data   map[string]uint64
	words  []dataWord
}

type dataWord struct {
	addr uint64
	val  int64
}

// dataBase is where .data labels are allocated.
const dataBase = 0x10_0000

// parse assembles the source text.
func parse(src string) (*asmUnit, error) {
	u := &asmUnit{labels: map[string]int{}, data: map[string]uint64{}}
	dataCursor := uint64(dataBase)
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		lineNo := ln + 1

		if strings.HasPrefix(line, ".data") {
			fields := strings.Fields(line)
			if len(fields) < 2 {
				return nil, fmt.Errorf("isa: line %d: .data needs a label", lineNo)
			}
			label := fields[1]
			if _, dup := u.data[label]; dup {
				return nil, fmt.Errorf("isa: line %d: duplicate data label %q", lineNo, label)
			}
			u.data[label] = dataCursor
			for _, f := range fields[2:] {
				v, err := strconv.ParseInt(f, 0, 64)
				if err != nil {
					return nil, fmt.Errorf("isa: line %d: bad data value %q", lineNo, f)
				}
				u.words = append(u.words, dataWord{addr: dataCursor, val: v})
				dataCursor += 8
			}
			if len(fields) == 2 {
				dataCursor += 8 // reserve one word for bare labels
			}
			continue
		}

		if strings.HasPrefix(line, ".space") {
			fields := strings.Fields(line)
			if len(fields) != 3 {
				return nil, fmt.Errorf("isa: line %d: .space needs a label and a word count", lineNo)
			}
			label := fields[1]
			if _, dup := u.data[label]; dup {
				return nil, fmt.Errorf("isa: line %d: duplicate data label %q", lineNo, label)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("isa: line %d: bad .space count %q", lineNo, fields[2])
			}
			u.data[label] = dataCursor
			dataCursor += uint64(n) * 8
			continue
		}

		// Code labels (possibly followed by an instruction on the same line).
		for {
			if i := strings.IndexByte(line, ':'); i >= 0 && !strings.ContainsAny(line[:i], " \t(") {
				label := line[:i]
				if _, dup := u.labels[label]; dup {
					return nil, fmt.Errorf("isa: line %d: duplicate label %q", lineNo, label)
				}
				u.labels[label] = len(u.insts)
				line = strings.TrimSpace(line[i+1:])
				continue
			}
			break
		}
		if line == "" {
			continue
		}
		in, err := parseInst(line, lineNo, u)
		if err != nil {
			return nil, err
		}
		u.insts = append(u.insts, in...)
	}
	// Resolve label references.
	for i := range u.insts {
		in := &u.insts[i]
		if in.target == "" {
			continue
		}
		if in.op == opLa {
			if addr, ok := u.data[in.target]; ok {
				in.imm = int64(addr)
				in.op = opAddi
				in.rs1 = 0
				in.target = ""
				continue
			}
			if idx, ok := u.labels[in.target]; ok {
				// Code-label address: resolved against the code base by the
				// bridge (jump tables for jr).
				in.imm = int64(idx)
				in.op = opLaCode
				in.target = ""
				continue
			}
			return nil, fmt.Errorf("isa: line %d: unknown label %q", in.line, in.target)
		}
		if _, ok := u.labels[in.target]; !ok {
			return nil, fmt.Errorf("isa: line %d: unknown label %q", in.line, in.target)
		}
	}
	if len(u.insts) == 0 {
		return nil, fmt.Errorf("isa: empty program")
	}
	return u, nil
}

// opLa is the internal pseudo-op for `la` before label resolution; opLaCode
// marks a code-label address materialization resolved by the bridge.
const (
	opLa     = opcode(200)
	opLaCode = opcode(201)
)

func parseInst(line string, lineNo int, u *asmUnit) ([]inst, error) {
	fields := strings.FieldsFunc(line, func(r rune) bool {
		return r == ' ' || r == '\t' || r == ','
	})
	if len(fields) == 0 {
		return nil, fmt.Errorf("isa: line %d: no instruction in %q", lineNo, line)
	}
	mn := strings.ToLower(fields[0])
	args := fields[1:]
	bad := func(msg string) ([]inst, error) {
		return nil, fmt.Errorf("isa: line %d: %s in %q", lineNo, msg, line)
	}
	reg := func(s string) (uint8, bool) {
		s = strings.ToLower(s)
		if s == "zero" {
			return 0, true
		}
		if !strings.HasPrefix(s, "r") {
			return 0, false
		}
		n, err := strconv.Atoi(s[1:])
		if err != nil || n < 0 || n > 31 {
			return 0, false
		}
		return uint8(n), true
	}
	imm := func(s string) (int64, bool) {
		v, err := strconv.ParseInt(s, 0, 64)
		return v, err == nil
	}

	switch mn {
	case "add", "sub", "mul", "and", "or", "xor", "slt", "sll", "srl":
		if len(args) != 3 {
			return bad("need rd, rs1, rs2")
		}
		rd, ok1 := reg(args[0])
		r1, ok2 := reg(args[1])
		r2, ok3 := reg(args[2])
		if !ok1 || !ok2 || !ok3 {
			return bad("bad register")
		}
		return []inst{{op: opNames[mn], rd: rd, rs1: r1, rs2: r2, line: lineNo}}, nil
	case "addi", "slti":
		if len(args) != 3 {
			return bad("need rd, rs1, imm")
		}
		rd, ok1 := reg(args[0])
		r1, ok2 := reg(args[1])
		v, ok3 := imm(args[2])
		if !ok1 || !ok2 || !ok3 {
			return bad("bad operand")
		}
		return []inst{{op: opNames[mn], rd: rd, rs1: r1, imm: v, line: lineNo}}, nil
	case "li":
		if len(args) != 2 {
			return bad("need rd, imm")
		}
		rd, ok1 := reg(args[0])
		v, ok2 := imm(args[1])
		if !ok1 || !ok2 {
			return bad("bad operand")
		}
		return []inst{{op: opAddi, rd: rd, rs1: 0, imm: v, line: lineNo}}, nil
	case "mv":
		if len(args) != 2 {
			return bad("need rd, rs")
		}
		rd, ok1 := reg(args[0])
		r1, ok2 := reg(args[1])
		if !ok1 || !ok2 {
			return bad("bad register")
		}
		return []inst{{op: opAddi, rd: rd, rs1: r1, line: lineNo}}, nil
	case "la":
		if len(args) != 2 {
			return bad("need rd, label")
		}
		rd, ok := reg(args[0])
		if !ok {
			return bad("bad register")
		}
		return []inst{{op: opLa, rd: rd, target: args[1], line: lineNo}}, nil
	case "ld", "st":
		if len(args) != 2 {
			return bad("need reg, off(base)")
		}
		r, ok := reg(args[0])
		if !ok {
			return bad("bad register")
		}
		mem := args[1]
		op := strings.IndexByte(mem, '(')
		cl := strings.IndexByte(mem, ')')
		if op < 0 || cl < op {
			return bad("bad memory operand")
		}
		off := int64(0)
		if op > 0 {
			v, ok := imm(mem[:op])
			if !ok {
				return bad("bad offset")
			}
			off = v
		}
		base, ok := reg(mem[op+1 : cl])
		if !ok {
			return bad("bad base register")
		}
		if mn == "ld" {
			return []inst{{op: opLd, rd: r, rs1: base, imm: off, line: lineNo}}, nil
		}
		return []inst{{op: opSt, rs2: r, rs1: base, imm: off, line: lineNo}}, nil
	case "beq", "bne", "blt", "bge":
		if len(args) != 3 {
			return bad("need rs1, rs2, label")
		}
		r1, ok1 := reg(args[0])
		r2, ok2 := reg(args[1])
		if !ok1 || !ok2 {
			return bad("bad register")
		}
		return []inst{{op: opNames[mn], rs1: r1, rs2: r2, target: args[2], line: lineNo}}, nil
	case "j", "jal":
		if len(args) != 1 {
			return bad("need label")
		}
		return []inst{{op: opNames[mn], target: args[0], line: lineNo}}, nil
	case "ret":
		if len(args) != 0 {
			return bad("ret takes no operands")
		}
		return []inst{{op: opRet, line: lineNo}}, nil
	case "jr":
		if len(args) != 1 {
			return bad("need rs")
		}
		r, ok := reg(args[0])
		if !ok {
			return bad("bad register")
		}
		return []inst{{op: opJr, rs1: r, line: lineNo}}, nil
	case "nop":
		return []inst{{op: opNop, line: lineNo}}, nil
	}
	return bad("unknown mnemonic " + mn)
}
