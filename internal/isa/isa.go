// Package isa provides a small RISC-style instruction set with an
// assembler and interpreter, bridged onto the program substrate.
//
// The behaviour-closure workloads (internal/workloads) shape branch
// *statistics*; this package goes further and executes real semantics:
// register dataflow, memory contents, and control flow are computed, so
// branch outcomes are genuinely data-dependent — a quicksort's compare
// branches mispredict because of the data, a recursive call tree exercises
// the RAS because the code actually recurses.  The bridge emits
// program.Program instructions whose behaviours interpret the machine in
// committed order, which is exactly when the architectural oracle asks.
//
// The ISA (4-byte instructions, matching the default fetch geometry):
//
//	add/sub/mul/and/or/xor/slt/sll/srl rd, rs1, rs2
//	addi/slti rd, rs1, imm
//	li rd, imm          (pseudo: addi rd, zero, imm)
//	mv rd, rs           (pseudo: addi rd, rs, 0)
//	la rd, label        (load a data label's address)
//	ld rd, off(rs1)     (64-bit load)
//	st rs2, off(rs1)    (64-bit store)
//	beq/bne/blt/bge rs1, rs2, label
//	j label             (unconditional jump)
//	jal label           (call; return address implicit)
//	ret                 (return)
//	jr rs               (indirect jump through a register)
//	nop
//
// Registers r0..r31; r0 ("zero") reads as 0.  Data is declared with
//
//	.data label  v0 v1 v2 ...
//
// Programs run forever (the oracle's convention): the assembler requires
// the text to end in control flow that stays inside the image.
package isa

import "fmt"

// Machine is the architectural state interpreted by the bridged program.
type Machine struct {
	Regs [32]int64
	mem  map[uint64]int64
}

// NewMachine returns an empty machine.
func NewMachine() *Machine {
	return &Machine{mem: make(map[uint64]int64)}
}

// Load reads a 64-bit word (unaligned addresses are truncated to 8 bytes).
func (m *Machine) Load(addr uint64) int64 { return m.mem[addr&^7] }

// Store writes a 64-bit word.
func (m *Machine) Store(addr uint64, v int64) { m.mem[addr&^7] = v }

// reg reads a register (r0 is hardwired to zero).
func (m *Machine) reg(i uint8) int64 {
	if i == 0 {
		return 0
	}
	return m.Regs[i&31]
}

func (m *Machine) setReg(i uint8, v int64) {
	if i != 0 {
		m.Regs[i&31] = v
	}
}

// opcode is the ALU/branch operation selector.
type opcode uint8

// Opcodes.
const (
	opAdd opcode = iota
	opSub
	opMul
	opAnd
	opOr
	opXor
	opSlt
	opSll
	opSrl
	opAddi
	opSlti
	opLd
	opSt
	opBeq
	opBne
	opBlt
	opBge
	opJ
	opJal
	opRet
	opJr
	opNop
)

var opNames = map[string]opcode{
	"add": opAdd, "sub": opSub, "mul": opMul, "and": opAnd, "or": opOr,
	"xor": opXor, "slt": opSlt, "sll": opSll, "srl": opSrl,
	"addi": opAddi, "slti": opSlti,
	"ld": opLd, "st": opSt,
	"beq": opBeq, "bne": opBne, "blt": opBlt, "bge": opBge,
	"j": opJ, "jal": opJal, "ret": opRet, "jr": opJr, "nop": opNop,
}

// inst is one decoded instruction.
type inst struct {
	op       opcode
	rd       uint8
	rs1, rs2 uint8
	imm      int64
	target   string // label for branches/jumps
	line     int
}

// exec runs one non-control instruction's semantics.
func (m *Machine) exec(i *inst) {
	switch i.op {
	case opAdd:
		m.setReg(i.rd, m.reg(i.rs1)+m.reg(i.rs2))
	case opSub:
		m.setReg(i.rd, m.reg(i.rs1)-m.reg(i.rs2))
	case opMul:
		m.setReg(i.rd, m.reg(i.rs1)*m.reg(i.rs2))
	case opAnd:
		m.setReg(i.rd, m.reg(i.rs1)&m.reg(i.rs2))
	case opOr:
		m.setReg(i.rd, m.reg(i.rs1)|m.reg(i.rs2))
	case opXor:
		m.setReg(i.rd, m.reg(i.rs1)^m.reg(i.rs2))
	case opSlt:
		if m.reg(i.rs1) < m.reg(i.rs2) {
			m.setReg(i.rd, 1)
		} else {
			m.setReg(i.rd, 0)
		}
	case opSll:
		m.setReg(i.rd, m.reg(i.rs1)<<(uint64(m.reg(i.rs2))&63))
	case opSrl:
		m.setReg(i.rd, int64(uint64(m.reg(i.rs1))>>(uint64(m.reg(i.rs2))&63)))
	case opAddi:
		m.setReg(i.rd, m.reg(i.rs1)+i.imm)
	case opSlti:
		if m.reg(i.rs1) < i.imm {
			m.setReg(i.rd, 1)
		} else {
			m.setReg(i.rd, 0)
		}
	case opNop:
	default:
		panic(fmt.Sprintf("isa: exec of control op %d", i.op))
	}
}

// branchTaken evaluates a conditional branch.
func (m *Machine) branchTaken(i *inst) bool {
	a, b := m.reg(i.rs1), m.reg(i.rs2)
	switch i.op {
	case opBeq:
		return a == b
	case opBne:
		return a != b
	case opBlt:
		return a < b
	case opBge:
		return a >= b
	}
	panic("isa: branchTaken on non-branch")
}
