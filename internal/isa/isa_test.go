package isa

import (
	"strings"
	"testing"

	"cobra/internal/program"
)

func TestMachineALU(t *testing.T) {
	m := NewMachine()
	m.setReg(1, 7)
	m.setReg(2, 3)
	cases := []struct {
		op   opcode
		want int64
	}{
		{opAdd, 10}, {opSub, 4}, {opMul, 21}, {opAnd, 3}, {opOr, 7},
		{opXor, 4}, {opSlt, 0}, {opSll, 56}, {opSrl, 0},
	}
	for _, c := range cases {
		m.exec(&inst{op: c.op, rd: 3, rs1: 1, rs2: 2})
		if got := m.reg(3); got != c.want {
			t.Errorf("op %d: got %d, want %d", c.op, got, c.want)
		}
	}
	m.exec(&inst{op: opAddi, rd: 4, rs1: 1, imm: -2})
	if m.reg(4) != 5 {
		t.Errorf("addi = %d", m.reg(4))
	}
	m.exec(&inst{op: opSlti, rd: 4, rs1: 1, imm: 8})
	if m.reg(4) != 1 {
		t.Errorf("slti = %d", m.reg(4))
	}
}

func TestZeroRegisterHardwired(t *testing.T) {
	m := NewMachine()
	m.setReg(0, 99)
	if m.reg(0) != 0 {
		t.Error("r0 must read as zero")
	}
}

func TestBranchConditions(t *testing.T) {
	m := NewMachine()
	m.setReg(1, 5)
	m.setReg(2, 5)
	m.setReg(3, -1)
	for _, c := range []struct {
		op       opcode
		rs1, rs2 uint8
		want     bool
	}{
		{opBeq, 1, 2, true}, {opBne, 1, 2, false},
		{opBlt, 3, 1, true}, {opBge, 1, 3, true}, {opBlt, 1, 3, false},
	} {
		if got := m.branchTaken(&inst{op: c.op, rs1: c.rs1, rs2: c.rs2}); got != c.want {
			t.Errorf("branch %d(%d,%d) = %v", c.op, c.rs1, c.rs2, got)
		}
	}
}

func TestMemoryWordAligned(t *testing.T) {
	m := NewMachine()
	m.Store(0x1003, 42) // truncates to 0x1000
	if m.Load(0x1000) != 42 || m.Load(0x1007) != 42 {
		t.Error("word alignment broken")
	}
}

func TestAssemblerErrors(t *testing.T) {
	for _, src := range []string{
		"",                  // empty
		"frobnicate r1, r2", // unknown mnemonic
		"add r1, r2",        // missing operand
		"add r1, r2, r99",   // bad register
		"beq r1, r2, nowhere\nj start\nstart: nop\nj start", // unknown label
		"la r1, missing\nj la0\nla0: j la0",                 // unknown la label
		"x: nop\nx: j x",                                    // duplicate label
		".data d 1\n.data d 2\nj m\nm: j m",                 // duplicate data label
		"ld r1, 0[r2]\nj m\nm: j m",                         // bad memory operand
		".space s x\nj m\nm: j m",                           // bad space count
		"nop",                                               // falls off the image
	} {
		if _, _, err := Compile("bad", src); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestCompileBasicLoop(t *testing.T) {
	p, m, err := Compile("loop", `
.data counter 0
start:
    la r5, counter
    ld r6, 0(r5)
    addi r6, r6, 1
    st r6, 0(r5)
    li r7, 100
    blt r6, r7, start
    j start
`)
	if err != nil {
		t.Fatal(err)
	}
	o := program.NewOracle(p, 1)
	for i := 0; i < 1000; i++ {
		o.Next()
	}
	if got := m.Load(dataBase); got < 100 {
		t.Errorf("counter = %d after 1000 steps", got)
	}
}

func TestSortProgramActuallySorts(t *testing.T) {
	p, m, err := Compile("sort", SortSource)
	if err != nil {
		t.Fatal(err)
	}
	o := program.NewOracle(p, 1)
	// Run enough committed instructions for several main-loop iterations.
	rets := 0
	for rets < 9 { // 3 per iteration (refill, isort, check)
		s := o.Next()
		if s.Inst.Kind == program.KindRet {
			rets++
		}
	}
	// After each check, r20 == 1 means the array verified sorted.
	if m.reg(20) != 1 {
		t.Fatal("check routine did not verify sortedness")
	}
	// Inspect the array directly.
	arr := make([]int64, 12)
	for i := range arr {
		arr[i] = m.Load(dataBase + uint64(i)*8)
	}
	for i := 1; i < len(arr); i++ {
		if arr[i] < arr[i-1] {
			t.Fatalf("array not sorted: %v", arr)
		}
	}
}

func TestFibProgramComputesFib(t *testing.T) {
	p, m, err := Compile("fib", FibSource)
	if err != nil {
		t.Fatal(err)
	}
	o := program.NewOracle(p, 1)
	// acc is the second data symbol: stk (256 words) then acc.
	accAddr := uint64(dataBase + 256*8)
	for i := 0; i < 200000 && m.Load(accAddr) < 2*144; i++ {
		o.Next()
	}
	acc := m.Load(accAddr)
	if acc%144 != 0 || acc == 0 {
		t.Errorf("accumulated fib(12) values = %d, want a multiple of 144", acc)
	}
}

func TestDispatchProgramUsesIndirects(t *testing.T) {
	p, _, err := Compile("dispatch", DispatchSource)
	if err != nil {
		t.Fatal(err)
	}
	o := program.NewOracle(p, 1)
	indirects := 0
	targets := map[uint64]bool{}
	for i := 0; i < 30000; i++ {
		s := o.Next()
		if s.Inst.Kind == program.KindIndirect {
			indirects++
			targets[s.Target] = true
		}
	}
	if indirects == 0 {
		t.Fatal("no indirect jumps executed")
	}
	if len(targets) != 4 {
		t.Errorf("dispatch visited %d distinct targets, want 4", len(targets))
	}
}

func TestCompileDeterministic(t *testing.T) {
	sig := func() uint64 {
		p := MustCompile("sort", SortSource)
		o := program.NewOracle(p, 1)
		var s uint64
		for i := 0; i < 20000; i++ {
			st := o.Next()
			s = s*31 + st.PC
			if st.Taken {
				s++
			}
		}
		return s
	}
	if sig() != sig() {
		t.Error("ISA execution not deterministic")
	}
}

func TestLabelOnSameLine(t *testing.T) {
	p, _, err := Compile("inline", "start: nop\nj start")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Errorf("len = %d", p.Len())
	}
}

func TestCommentsAndCase(t *testing.T) {
	_, _, err := Compile("c", `
# full line comment
start:
    NOP        # trailing comment
    ADDI r1, ZERO, 5
    j start
`)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile should panic on bad source")
		}
	}()
	MustCompile("bad", "nop")
}

func TestAsmErrorMessagesNameLines(t *testing.T) {
	_, _, err := Compile("x", "nop\nbogus r1\nj q\nq: j q")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error should name line 2: %v", err)
	}
}
