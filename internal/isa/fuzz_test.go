package isa

import "testing"

// FuzzCompile asserts the assembler never panics: any input either compiles
// to a validated program or returns an error.
func FuzzCompile(f *testing.F) {
	f.Add(SortSource)
	f.Add(FibSource)
	f.Add(DispatchSource)
	f.Add("start: nop\nj start")
	f.Add(".data x 1 2 3\n.space y 4\nla r1, x\nj m\nm: j m")
	f.Add("beq r1, r2, q\nq: j q")
	f.Add("ld r1, -8(r2)\nj m\nm: j m")
	f.Add("add r1 r2 r3")
	f.Add(": : :")
	f.Add(".data\n.space\n(")
	f.Fuzz(func(t *testing.T, src string) {
		p, _, err := Compile("fuzz", src)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Compile accepted a program that fails validation: %v", err)
		}
	})
}
