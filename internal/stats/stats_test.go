package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestDerivedMetrics(t *testing.T) {
	s := &Sim{
		Cycles:         1000,
		Instructions:   2500,
		Branches:       500,
		Mispredicts:    25,
		DirMispredicts: 20,
		FetchBubbles:   100,
	}
	if got := s.IPC(); got != 2.5 {
		t.Errorf("IPC = %v, want 2.5", got)
	}
	if got := s.MPKI(); got != 10 {
		t.Errorf("MPKI = %v, want 10", got)
	}
	if got := s.Accuracy(); math.Abs(got-0.96) > 1e-12 {
		t.Errorf("Accuracy = %v, want 0.96", got)
	}
	if got := s.BubbleFrac(); got != 0.1 {
		t.Errorf("BubbleFrac = %v, want 0.1", got)
	}
}

func TestZeroDenominators(t *testing.T) {
	s := &Sim{}
	if s.IPC() != 0 || s.MPKI() != 0 || s.BubbleFrac() != 0 {
		t.Error("zero-cycle run must report zero rates")
	}
	if s.Accuracy() != 1 {
		t.Error("no branches -> accuracy 1")
	}
}

func TestProviderHits(t *testing.T) {
	s := &Sim{}
	s.AddProviderHit("tage")
	s.AddProviderHit("tage")
	s.AddProviderHit("bim")
	if s.ProviderHits["tage"] != 2 || s.ProviderHits["bim"] != 1 {
		t.Errorf("provider hits wrong: %v", s.ProviderHits)
	}
	keys := SortedKeys(s.ProviderHits)
	if len(keys) != 2 || keys[0] != "bim" || keys[1] != "tage" {
		t.Errorf("SortedKeys = %v", keys)
	}
}

func TestHarmonicMean(t *testing.T) {
	hm, ok := HarmonicMean([]float64{1, 2, 4})
	if !ok || math.Abs(hm-12.0/7.0) > 1e-12 {
		t.Errorf("HarmonicMean = %v ok=%v", hm, ok)
	}
	if _, ok := HarmonicMean(nil); ok {
		t.Error("empty input must not be ok")
	}
	if _, ok := HarmonicMean([]float64{1, 0}); ok {
		t.Error("zero input must not be ok")
	}
}

func TestHarmonicMeanBounds(t *testing.T) {
	// Harmonic mean lies between min and max of positive inputs.
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		hm, ok := HarmonicMean(xs)
		if !ok {
			return false
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		return hm >= lo-1e-9 && hm <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeoMean(t *testing.T) {
	gm, ok := GeoMean([]float64{1, 4})
	if !ok || math.Abs(gm-2) > 1e-12 {
		t.Errorf("GeoMean = %v ok=%v", gm, ok)
	}
	if _, ok := GeoMean([]float64{}); ok {
		t.Error("empty GeoMean must fail")
	}
}

func TestHarmonicLEGeoMean(t *testing.T) {
	// HM <= GM for positive inputs (AM-GM-HM inequality).
	f := func(a, b uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 2}
		hm, _ := HarmonicMean(xs)
		gm, _ := GeoMean(xs)
		return hm <= gm+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "Demo", Headers: []string{"name", "ipc"}}
	tb.AddRow("tage-l", "1.20")
	tb.AddRowf("tourney", 0.95)
	out := tb.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "tage-l") {
		t.Errorf("table output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("table has %d lines, want 5:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "0.950") {
		t.Errorf("AddRowf float formatting missing:\n%s", out)
	}
}

func TestSimString(t *testing.T) {
	s := &Sim{Cycles: 10, Instructions: 20}
	if !strings.Contains(s.String(), "IPC=2.000") {
		t.Errorf("String() = %q", s.String())
	}
}
