// Package stats collects the performance counters the evaluation reports:
// instructions, cycles, branch outcomes, mispredictions, fetch bubbles —
// and derives the quantities of Fig. 10 (MPKI, IPC, accuracy, harmonic
// means).  It also provides the plain-text table renderer used by the
// cmd tools and benchmark harness so every table/figure prints in one
// consistent format.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sim aggregates the counters of one simulation run.
type Sim struct {
	Cycles       uint64
	Instructions uint64

	// Branch accounting (committed, i.e. correct-path, events only).
	Branches        uint64 // committed conditional branches
	Jumps           uint64 // committed unconditional direct jumps
	IndirectJumps   uint64 // committed indirect jumps (incl. returns)
	Mispredicts     uint64 // committed branches whose prediction was wrong
	DirMispredicts  uint64 // subset: wrong direction on a conditional branch
	TgtMispredicts  uint64 // subset: right direction / wrong target
	BTBMisses       uint64 // taken control flow with no predicted target
	RASEvents       uint64 // return-address-stack pushes and pops
	FetchBubbles    uint64 // frontend cycles with no packet delivered
	RedirectFlushes uint64 // frontend redirects from later pipeline stages
	HistoryRepairs  uint64 // GHR repair events
	FetchReplays    uint64 // fetch replays forced by history repair

	// Per-event counters keyed by sub-component (provider attribution).
	// ProviderHits counts committed conditional branches whose final
	// direction the component provided; ProviderMisses the mispredicted
	// subset — together they give per-provider accuracy, whole-run or
	// windowed.
	ProviderHits   map[string]uint64
	ProviderMisses map[string]uint64
}

// NewSim returns a Sim with the attribution map pre-allocated.  Every
// long-lived counter set (uarch.Core, the runner's per-job results) starts
// from this constructor so AddProviderHit never has to lazily allocate on a
// path an observer may be watching concurrently; the zero value remains
// valid for throwaway aggregation.
func NewSim() Sim {
	return Sim{
		ProviderHits:   make(map[string]uint64),
		ProviderMisses: make(map[string]uint64),
	}
}

// AddProviderHit attributes a final prediction to the named sub-component.
// Prefer constructing the Sim with NewSim; the lazy allocation here only
// backstops zero-value Sims.
func (s *Sim) AddProviderHit(name string) {
	if s.ProviderHits == nil {
		s.ProviderHits = make(map[string]uint64)
	}
	s.ProviderHits[name]++
}

// AddProviderMiss attributes a direction misprediction to the named
// sub-component (the one whose final prediction was wrong).
func (s *Sim) AddProviderMiss(name string) {
	if s.ProviderMisses == nil {
		s.ProviderMisses = make(map[string]uint64)
	}
	s.ProviderMisses[name]++
}

// IPC returns instructions per cycle.
func (s *Sim) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// MPKI returns branch mispredictions per thousand committed instructions.
func (s *Sim) MPKI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Instructions) * 1000
}

// Accuracy returns the fraction of committed conditional branches whose
// direction was predicted correctly.
func (s *Sim) Accuracy() float64 {
	if s.Branches == 0 {
		return 1
	}
	return 1 - float64(s.DirMispredicts)/float64(s.Branches)
}

// BubbleFrac returns the fraction of cycles the frontend delivered nothing.
func (s *Sim) BubbleFrac() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.FetchBubbles) / float64(s.Cycles)
}

func (s *Sim) String() string {
	return fmt.Sprintf("cycles=%d insts=%d IPC=%.3f MPKI=%.2f acc=%.2f%% bubbles=%.1f%%",
		s.Cycles, s.Instructions, s.IPC(), s.MPKI(), s.Accuracy()*100, s.BubbleFrac()*100)
}

// HarmonicMean returns the harmonic mean of xs; the paper's Fig. 10 uses it
// (HARMEAN) to summarize per-benchmark IPC and MPKI. Zero or negative inputs
// are rejected with ok=false, matching the convention that a harmonic mean
// is undefined there.
func HarmonicMean(xs []float64) (hm float64, ok bool) {
	if len(xs) == 0 {
		return 0, false
	}
	var inv float64
	for _, x := range xs {
		if x <= 0 {
			return 0, false
		}
		inv += 1 / x
	}
	return float64(len(xs)) / inv, true
}

// GeoMean returns the geometric mean (used by some ablation summaries).
func GeoMean(xs []float64) (gm float64, ok bool) {
	if len(xs) == 0 {
		return 0, false
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0, false
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs))), true
}

// Table renders an aligned plain-text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row, formatting each value with %v and floats as %.3g.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// SortedKeys returns map keys in sorted order, for deterministic reports.
func SortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
