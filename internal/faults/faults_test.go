package faults_test

import (
	"reflect"
	"strings"
	"testing"

	"cobra/internal/compose"
	"cobra/internal/faults"
	"cobra/internal/pred"
	"cobra/internal/program"
	"cobra/internal/uarch"
)

// faultProg is a mispredict-heavy synthetic workload: a loop of data-dependent
// hammocks drives fire, mispredict, repair, and update traffic through every
// wrapped component.
func faultProg(t testing.TB) *program.Program {
	t.Helper()
	b := program.NewBuilder("faulty", 0x1000, 4, 5)
	b.Loop(40, func() {
		b.Ops(2, 0, 0, 0, nil)
		b.Hammock(0.5, 2, program.ClassALU)
	})
	return b.MustSeal()
}

// runWithPlan builds the B2 design with the plan's injectors wired in via
// Options.Wrap and runs it on the real core.
func runWithPlan(t testing.TB, plan *faults.Plan, paranoid bool) *compose.Pipeline {
	t.Helper()
	opt := compose.Options{GHistBits: 16, Paranoid: paranoid, Wrap: plan.Wrap}
	p, err := compose.New(pred.DefaultConfig(), compose.MustParse("GTAG3 > BTB2 > BIM2"), opt)
	if err != nil {
		t.Fatal(err)
	}
	core := uarch.NewCore(uarch.DefaultConfig(), p, faultProg(t), 7)
	core.Run(15_000)
	return p
}

// TestDeterministicSchedule is the injector's reproducibility contract: the
// same plan over the same run yields a bit-identical fault record stream, and
// a different seed yields a different one.
func TestDeterministicSchedule(t *testing.T) {
	capture := func(seed uint64) []faults.Record {
		var recs []faults.Record
		plan := &faults.Plan{Seed: seed, Period: 64, Kinds: faults.AllKinds,
			OnFault: func(r faults.Record) { recs = append(recs, r) }}
		runWithPlan(t, plan, false)
		if plan.TotalInjected() == 0 {
			t.Fatal("plan injected nothing; schedule untestable")
		}
		if got := uint64(len(recs)); got != plan.TotalInjected() {
			t.Fatalf("OnFault saw %d records, counters say %d", got, plan.TotalInjected())
		}
		return recs
	}
	a, b := capture(11), capture(11)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different fault schedules (%d vs %d records)", len(a), len(b))
	}
	if c := capture(12); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

// TestDistinctKindsFire demonstrates that a full-core run under AllKinds
// injects at least four distinct deterministic fault kinds.
func TestDistinctKindsFire(t *testing.T) {
	plan := &faults.Plan{Seed: 3, Period: 32, Kinds: faults.AllKinds}
	runWithPlan(t, plan, false)
	inj := plan.Injected()
	if len(inj) < 4 {
		t.Fatalf("only %d distinct fault kinds fired (%v); want >= 4", len(inj), inj)
	}
	t.Logf("injected %d faults across %d kinds: %v", plan.TotalInjected(), len(inj), inj)
}

// TestParanoidCatchesCorruptMeta: a corrupted metadata blob violates the
// §III-D round-trip contract, and paranoid mode must attribute the violation
// to the wrapped component.
func TestParanoidCatchesCorruptMeta(t *testing.T) {
	plan := &faults.Plan{Seed: 1, Period: 64, Kinds: faults.CorruptMeta}
	p := runWithPlan(t, plan, true)
	if plan.TotalInjected() == 0 {
		t.Fatal("no corrupt-meta faults injected")
	}
	if p.ViolationCount() == 0 {
		t.Fatal("paranoid mode missed injected metadata corruption")
	}
	v := p.Violations()[0]
	if v.Component == "" {
		t.Errorf("violation not attributed to a component: %v", v)
	}
	if !strings.Contains(v.Error(), "metadata") {
		t.Errorf("violation %v does not describe a metadata round-trip failure", v)
	}
}

// TestScopedWrap: components outside Plan.Components pass through unwrapped,
// and a disabled plan wraps nothing.
func TestScopedWrap(t *testing.T) {
	scoped := &faults.Plan{Seed: 1, Period: 8, Kinds: faults.AllKinds, Components: []string{"btb2"}}
	runWithPlan(t, scoped, false)
	if n := len(scoped.Injectors()); n != 1 {
		t.Fatalf("component-scoped plan wrapped %d components, want 1", n)
	}
	if name := scoped.Injectors()[0].Inner().Name(); name != "BTB2" {
		t.Fatalf("wrapped %q, want BTB2 (case-insensitive match)", name)
	}
	off := &faults.Plan{Seed: 1, Period: 0, Kinds: faults.AllKinds}
	runWithPlan(t, off, true)
	if n := len(off.Injectors()); n != 0 {
		t.Fatalf("period-0 plan wrapped %d components, want 0", n)
	}
}

func TestParseKinds(t *testing.T) {
	k, err := faults.ParseKinds("corrupt-meta,drop-update")
	if err != nil || k != faults.CorruptMeta|faults.DropUpdate {
		t.Fatalf("ParseKinds = %v, %v", k, err)
	}
	if k, err := faults.ParseKinds("all"); err != nil || k != faults.AllKinds {
		t.Fatalf(`ParseKinds("all") = %v, %v`, k, err)
	}
	if _, err := faults.ParseKinds("bit-rot"); err == nil {
		t.Fatal("unknown kind must error")
	}
	// String/ParseKinds round-trip over every single kind and the full mask.
	for _, k := range []faults.Kind{faults.CorruptMeta, faults.DropUpdate,
		faults.DupUpdate, faults.DelayFire, faults.DelayRepair,
		faults.FlipDirection, faults.FlipTarget, faults.AllKinds} {
		back, err := faults.ParseKinds(k.String())
		if err != nil || back != k {
			t.Errorf("round-trip of %q = %v, %v", k, back, err)
		}
	}
	if faults.Kind(0).String() != "none" {
		t.Errorf("zero mask renders %q", faults.Kind(0).String())
	}
}
