// Package faults is the fault-injection layer of the robustness subsystem:
// a decorator implementing pred.Subcomponent that wraps any real library
// component and injects seeded, deterministic faults into the five interface
// signals — corrupted metadata blobs, dropped or duplicated update events,
// delayed (reordered) fire/repair events, and bit-flips in packet targets and
// directions.
//
// The injector exists to stress the composer's management structures (the
// circular history file, the forwards-walk repair state machine, the
// snapshot-repaired history providers) beyond well-behaved workloads: a
// framework that claims to recover correct state after misprediction should
// fail loudly — via the compose paranoid-mode invariant checker — rather than
// silently drift or panic when a component misbehaves.
//
// Determinism contract: every injection decision is drawn from a splitmix64
// stream seeded by Plan.Seed mixed with the wrapped component's name, and
// advanced only by that component's own predict/event traffic.  Given the
// same Plan and the same (single-goroutine) pipeline event sequence, the
// fault schedule — which events are hit, which kind fires, which bit flips —
// is bit-for-bit reproducible, independent of wall clock, worker count, or
// host.  Reset rewinds the stream to its initial state so a reset pipeline
// replays the identical schedule.
package faults

import (
	"fmt"
	"strings"
	"sync"

	"cobra/internal/pred"
	"cobra/internal/sram"
)

// Kind is a bitmask of injectable fault classes.
type Kind uint32

// The fault kinds the injector can produce.
const (
	// CorruptMeta flips one bit of the metadata blob handed back with an
	// event — modelling a corrupted history-file entry.  The flip is done in
	// place, so later events for the same prediction see the corrupted blob
	// too; paranoid mode catches this as a metadata round-trip violation.
	CorruptMeta Kind = 1 << iota
	// DropUpdate swallows a commit-time update event (lost learning).
	DropUpdate
	// DupUpdate delivers a commit-time update event twice (double training).
	DupUpdate
	// DelayFire holds a speculative fire event back and delivers it after
	// the component's next event — reordering fire against mispredict,
	// repair, or update.
	DelayFire
	// DelayRepair holds a repair event back and delivers it after the
	// component's next event — the dangerous reorder: state is restored
	// late, after younger activity already observed it.
	DelayRepair
	// FlipDirection inverts the predicted direction of one direction-valid
	// slot in the component's overlay.
	FlipDirection
	// FlipTarget flips one low-order bit of the predicted target of one
	// target-valid slot in the component's overlay.
	FlipTarget
)

// AllKinds enables every fault class.
const AllKinds = CorruptMeta | DropUpdate | DupUpdate | DelayFire |
	DelayRepair | FlipDirection | FlipTarget

var kindNames = []struct {
	k    Kind
	name string
}{
	{CorruptMeta, "corrupt-meta"},
	{DropUpdate, "drop-update"},
	{DupUpdate, "dup-update"},
	{DelayFire, "delay-fire"},
	{DelayRepair, "delay-repair"},
	{FlipDirection, "flip-direction"},
	{FlipTarget, "flip-target"},
}

func (k Kind) String() string {
	var parts []string
	for _, kn := range kindNames {
		if k&kn.k != 0 {
			parts = append(parts, kn.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

// ParseKinds parses a comma- or pipe-separated list of fault-kind names
// ("corrupt-meta,drop-update", or "all") into a Kind mask.
func ParseKinds(s string) (Kind, error) {
	var out Kind
	for _, f := range strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == '|' }) {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		if f == "all" {
			out |= AllKinds
			continue
		}
		found := false
		for _, kn := range kindNames {
			if f == kn.name {
				out |= kn.k
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("faults: unknown fault kind %q", f)
		}
	}
	return out, nil
}

// Record describes one injected fault, for test assertions and logging.
type Record struct {
	Component string
	Kind      Kind
	Cycle     uint64
	PC        uint64
}

// Plan describes a deterministic fault-injection campaign.  Wrap it into a
// pipeline via compose.Options.Wrap:
//
//	plan := &faults.Plan{Seed: 1, Period: 64, Kinds: faults.CorruptMeta}
//	opt := compose.Options{Wrap: plan.Wrap}
//
// A Plan may be shared across concurrently built pipelines: Wrap only reads
// the configuration and appends the new injector under a mutex.
type Plan struct {
	// Seed roots the per-component splitmix64 decision streams.
	Seed uint64
	// Period is the mean injection interval in opportunities: each predict
	// and each event is one opportunity, and roughly one in Period draws a
	// fault.  0 disables injection entirely.
	Period uint64
	// Kinds is the mask of fault classes to inject.
	Kinds Kind
	// Components, when non-empty, restricts injection to the named node
	// instances (case-insensitive, e.g. "TAGE3"); other components pass
	// through unwrapped.
	Components []string
	// OnFault, when non-nil, observes every injected fault.  Called from the
	// pipeline's goroutine; must not block.
	OnFault func(Record)

	mu        sync.Mutex
	injectors []*Injector
}

func (pl *Plan) wants(name string) bool {
	if len(pl.Components) == 0 {
		return true
	}
	for _, c := range pl.Components {
		if strings.EqualFold(c, name) {
			return true
		}
	}
	return false
}

// Wrap decorates a component with a fault injector per the plan.  Components
// outside the plan's scope (or with injection disabled) are returned as-is.
// The signature matches compose.Options.Wrap.
func (pl *Plan) Wrap(c pred.Subcomponent) pred.Subcomponent {
	if pl == nil || pl.Period == 0 || pl.Kinds == 0 || !pl.wants(c.Name()) {
		return c
	}
	in := &Injector{
		inner:  c,
		kinds:  pl.Kinds,
		period: pl.Period,
		seed:   splitmix(pl.Seed ^ nameHash(c.Name())),
		on:     pl.OnFault,
	}
	in.rng = in.seed
	pl.mu.Lock()
	pl.injectors = append(pl.injectors, in)
	pl.mu.Unlock()
	return in
}

// Injectors returns every injector the plan has wrapped so far.
func (pl *Plan) Injectors() []*Injector {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return append([]*Injector(nil), pl.injectors...)
}

// Injected aggregates per-kind injection counts across all injectors.
func (pl *Plan) Injected() map[Kind]uint64 {
	out := map[Kind]uint64{}
	for _, in := range pl.Injectors() {
		for _, kn := range kindNames {
			if n := in.Injected(kn.k); n > 0 {
				out[kn.k] += n
			}
		}
	}
	return out
}

// TotalInjected is the total number of injected faults across all injectors.
func (pl *Plan) TotalInjected() uint64 {
	var n uint64
	for _, v := range pl.Injected() {
		n += v
	}
	return n
}

func nameHash(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Injector wraps one component instance and injects the plan's faults into
// its signal traffic.  It implements pred.Subcomponent and forwards the
// optional interfaces the composer and area model probe for
// (UsesLocalHistory, Mems).
type Injector struct {
	inner  pred.Subcomponent
	kinds  Kind
	period uint64
	seed   uint64 // initial stream state (for Reset)
	rng    uint64
	on     func(Record)

	counts  map[Kind]uint64
	delayed []delayedEvent // held-back fire/repair events, FIFO
}

type delayedEvent struct {
	fire bool // true = fire, false = repair
	ev   pred.Event
}

// Inner returns the wrapped component.
func (in *Injector) Inner() pred.Subcomponent { return in.inner }

// Injected returns how many faults of the given kind have fired.
func (in *Injector) Injected(k Kind) uint64 { return in.counts[k] }

func (in *Injector) draw() uint64 {
	in.rng = splitmix(in.rng)
	return in.rng
}

// inject decides whether a fault of kind k fires at this opportunity.  Every
// call advances the decision stream exactly once, keeping the schedule a pure
// function of (seed, component, traffic sequence).
func (in *Injector) inject(k Kind, cycle, pc uint64) bool {
	if in.kinds&k == 0 {
		return false
	}
	if in.draw()%in.period != 0 {
		return false
	}
	if in.counts == nil {
		in.counts = map[Kind]uint64{}
	}
	in.counts[k]++
	if in.on != nil {
		in.on(Record{Component: in.inner.Name(), Kind: k, Cycle: cycle, PC: pc})
	}
	return true
}

// Name implements pred.Subcomponent.
func (in *Injector) Name() string { return in.inner.Name() }

// Latency implements pred.Subcomponent.
func (in *Injector) Latency() int { return in.inner.Latency() }

// MetaWords implements pred.Subcomponent.
func (in *Injector) MetaWords() int { return in.inner.MetaWords() }

// NumInputs implements pred.Subcomponent.
func (in *Injector) NumInputs() int { return in.inner.NumInputs() }

// Budget implements pred.Subcomponent.
func (in *Injector) Budget() sram.Budget { return in.inner.Budget() }

// Tick implements pred.Subcomponent.
func (in *Injector) Tick(cycle uint64) { in.inner.Tick(cycle) }

// UsesLocalHistory forwards the composer's local-history probe.
func (in *Injector) UsesLocalHistory() bool {
	if lu, ok := in.inner.(interface{ UsesLocalHistory() bool }); ok {
		return lu.UsesLocalHistory()
	}
	return false
}

// Mems forwards the energy model's access-counter probe.
func (in *Injector) Mems() []*sram.Mem {
	if mp, ok := in.inner.(interface{ Mems() []*sram.Mem }); ok {
		return mp.Mems()
	}
	return nil
}

// Reset implements pred.Subcomponent: the wrapped component returns to
// power-on state and the decision stream rewinds so the fault schedule
// replays identically.
func (in *Injector) Reset() {
	in.inner.Reset()
	in.rng = in.seed
	in.delayed = in.delayed[:0]
	in.counts = nil
}

// Predict implements pred.Subcomponent, optionally flipping a predicted
// direction or target bit in the component's overlay.
func (in *Injector) Predict(q *pred.Query) pred.Response {
	resp := in.inner.Predict(q)
	if in.inject(FlipDirection, q.Cycle, q.PC) {
		if i := in.pickSlot(resp.Overlay, func(p pred.Pred) bool { return p.DirValid }); i >= 0 {
			resp.Overlay[i].Taken = !resp.Overlay[i].Taken
		}
	}
	if in.inject(FlipTarget, q.Cycle, q.PC) {
		if i := in.pickSlot(resp.Overlay, func(p pred.Pred) bool { return p.TgtValid }); i >= 0 {
			resp.Overlay[i].Target ^= 1 << (in.draw() % 16)
		}
	}
	return resp
}

// pickSlot deterministically chooses an overlay slot satisfying ok, or -1.
func (in *Injector) pickSlot(pk pred.Packet, ok func(pred.Pred) bool) int {
	var cand []int
	for i := range pk {
		if ok(pk[i]) {
			cand = append(cand, i)
		}
	}
	if len(cand) == 0 {
		return -1
	}
	return cand[in.draw()%uint64(len(cand))]
}

// corruptMeta flips one bit of the event's metadata blob in place.
func (in *Injector) corruptMeta(e *pred.Event) {
	if len(e.Meta) == 0 {
		return
	}
	bit := in.draw() % uint64(64*len(e.Meta))
	e.Meta[bit/64] ^= 1 << (bit % 64)
}

// copyEvent snapshots an event for delayed delivery: the pipeline reuses the
// entry's Slots and Meta storage, so a held-back event must own its slices.
func copyEvent(e *pred.Event) pred.Event {
	cp := *e
	cp.Slots = append([]pred.SlotInfo(nil), e.Slots...)
	cp.Meta = append([]uint64(nil), e.Meta...)
	cp.GRaw = append([]uint64(nil), e.GRaw...)
	return cp
}

// flush delivers any held-back fire/repair events, oldest first.
func (in *Injector) flush() {
	for len(in.delayed) > 0 {
		d := in.delayed[0]
		in.delayed = in.delayed[1:]
		if d.fire {
			in.inner.Fire(&d.ev)
		} else {
			in.inner.Repair(&d.ev)
		}
	}
}

// Fire implements pred.Subcomponent.
func (in *Injector) Fire(e *pred.Event) {
	if in.inject(CorruptMeta, e.Cycle, e.PC) {
		in.corruptMeta(e)
	}
	if in.inject(DelayFire, e.Cycle, e.PC) {
		in.delayed = append(in.delayed, delayedEvent{fire: true, ev: copyEvent(e)})
		return
	}
	in.inner.Fire(e)
	in.flush()
}

// Mispredict implements pred.Subcomponent.
func (in *Injector) Mispredict(e *pred.Event) {
	if in.inject(CorruptMeta, e.Cycle, e.PC) {
		in.corruptMeta(e)
	}
	in.inner.Mispredict(e)
	in.flush()
}

// Repair implements pred.Subcomponent.
func (in *Injector) Repair(e *pred.Event) {
	if in.inject(CorruptMeta, e.Cycle, e.PC) {
		in.corruptMeta(e)
	}
	if in.inject(DelayRepair, e.Cycle, e.PC) {
		in.delayed = append(in.delayed, delayedEvent{fire: false, ev: copyEvent(e)})
		return
	}
	in.inner.Repair(e)
	in.flush()
}

// Update implements pred.Subcomponent.
func (in *Injector) Update(e *pred.Event) {
	if in.inject(CorruptMeta, e.Cycle, e.PC) {
		in.corruptMeta(e)
	}
	if in.inject(DropUpdate, e.Cycle, e.PC) {
		in.flush()
		return
	}
	in.inner.Update(e)
	if in.inject(DupUpdate, e.Cycle, e.PC) {
		in.inner.Update(e)
	}
	in.flush()
}
