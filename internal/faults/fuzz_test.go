package faults_test

import (
	"testing"

	"cobra/internal/components"
	"cobra/internal/faults"
	"cobra/internal/history"
	"cobra/internal/pred"
)

// FuzzInjector hammers one injector-wrapped component with arbitrary
// predict/fire/mispredict/repair/update traffic under an arbitrary plan and
// checks the injector's own contracts: it never panics, its per-kind counters
// agree with the OnFault stream, and Reset rewinds the decision stream so the
// identical traffic replays the identical fault schedule.
func FuzzInjector(f *testing.F) {
	f.Add(uint64(1), uint64(4), uint32(faults.AllKinds), uint16(300), uint64(99))
	f.Add(uint64(7), uint64(1), uint32(faults.CorruptMeta|faults.DelayRepair), uint16(64), uint64(5))
	f.Add(uint64(0), uint64(13), uint32(faults.DropUpdate|faults.DupUpdate), uint16(500), uint64(1))
	f.Fuzz(func(t *testing.T, seed, period uint64, kinds uint32, steps uint16, tseed uint64) {
		period = period%64 + 1
		k := faults.Kind(kinds) & faults.AllKinds
		if k == 0 {
			k = faults.AllKinds
		}
		n := int(steps%600) + 16

		var faultsSeen int
		plan := &faults.Plan{Seed: seed, Period: period, Kinds: k,
			OnFault: func(faults.Record) { faultsSeen++ }}
		cfg := pred.DefaultConfig()
		comp, err := components.Build(components.Env{Cfg: cfg, Global: history.NewGlobal(64)}, "GTAG3")
		if err != nil {
			t.Fatal(err)
		}
		in, ok := plan.Wrap(comp).(*faults.Injector)
		if !ok {
			t.Fatalf("Wrap did not inject (plan %+v)", plan)
		}

		drive := func() map[faults.Kind]uint64 {
			rng := tseed
			draw := func() uint64 {
				rng += 0x9E3779B97F4A7C15
				x := rng
				x ^= x >> 30
				x *= 0xBF58476D1CE4E5B9
				x ^= x >> 27
				x *= 0x94D049BB133111EB
				return x ^ x>>31
			}
			var meta []uint64
			var pc uint64
			for i := 0; i < n; i++ {
				cycle := uint64(i)
				in.Tick(cycle)
				if meta == nil || draw()%3 == 0 {
					pc = 0x1000 + draw()%64*16
					g := draw()
					inputs := make([]pred.Packet, in.NumInputs())
					for j := range inputs {
						inputs[j] = make(pred.Packet, cfg.FetchWidth)
						inputs[j][0] = pred.Pred{DirValid: true, Taken: draw()%2 == 0, DirProvider: "up"}
					}
					q := pred.Query{Cycle: cycle, PC: pc, GHist: g,
						GRaw: []uint64{g, 0}, Path: draw(), In: inputs}
					resp := in.Predict(&q)
					meta = append([]uint64(nil), resp.Meta...)
					continue
				}
				slot := int(draw() % uint64(cfg.FetchWidth))
				slots := make([]pred.SlotInfo, cfg.FetchWidth)
				slots[slot] = pred.SlotInfo{Valid: true, IsBranch: true,
					Taken: draw()%2 == 0, PC: cfg.SlotPC(pc, slot)}
				g := draw()
				ev := pred.Event{Cycle: cycle, PC: pc, GHist: g, GRaw: []uint64{g, 0},
					Meta: append([]uint64(nil), meta...), Slots: slots}
				switch draw() % 4 {
				case 0:
					in.Fire(&ev)
				case 1:
					slots[slot].Mispredicted = true
					in.Mispredict(&ev)
				case 2:
					in.Repair(&ev)
				default:
					in.Update(&ev)
				}
			}
			counts := map[faults.Kind]uint64{}
			for _, kind := range []faults.Kind{faults.CorruptMeta, faults.DropUpdate,
				faults.DupUpdate, faults.DelayFire, faults.DelayRepair,
				faults.FlipDirection, faults.FlipTarget} {
				if c := in.Injected(kind); c > 0 {
					counts[kind] = c
				}
			}
			return counts
		}

		first := drive()
		var total uint64
		for _, c := range first {
			total += c
		}
		if uint64(faultsSeen) != total {
			t.Fatalf("OnFault saw %d faults, counters say %d (%v)", faultsSeen, total, first)
		}
		in.Reset()
		if in.Injected(faults.CorruptMeta) != 0 {
			t.Fatal("Reset did not clear injection counters")
		}
		second := drive()
		if len(first) != len(second) {
			t.Fatalf("replay after Reset diverged: %v vs %v", first, second)
		}
		for kind, c := range first {
			if second[kind] != c {
				t.Fatalf("replay after Reset diverged on %v: %d vs %d", kind, c, second[kind])
			}
		}
	})
}
