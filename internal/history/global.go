// Package history implements the history providers the COBRA composer
// generates (§IV-B.3): a speculatively updated global history register with
// snapshot-based repair, a PC-indexed local history table repaired by the
// forwards-walk mechanism, and a path history register (the extension the
// paper names as a candidate new provider).
//
// The global history register is the structure §VI-B identifies as the most
// dangerous to misspeculation: wrong-path fetch shifts bogus bits in, which
// corrupts every prediction until repair.  Following the paper's initial
// implementation, repair restores a full snapshot stored in the history
// file; the (optional) fetch-replay policy layered on top lives in the
// frontend model.
package history

import (
	"cobra/internal/bitutil"
	"cobra/internal/sram"
)

// Global is a speculative global branch-history register of Len bits, with
// any number of attached folded-history registers kept incrementally in sync
// (the hardware-realistic way TAGE-class components consume long histories).
type Global struct {
	length uint
	hist   []uint64 // bit 0 of word 0 = most recent outcome
	folds  []*bitutil.FoldedHistory

	// SpecShifts counts speculative shifts since reset (for reports).
	SpecShifts uint64
	// Restores counts snapshot restores (repair events).
	Restores uint64
}

// NewGlobal returns a global history register of length bits.
func NewGlobal(length uint) *Global {
	if length == 0 {
		panic("history: global history length must be > 0")
	}
	words := (length + 63) / 64
	return &Global{length: length, hist: make([]uint64, words)}
}

// Len returns the history length in bits.
func (g *Global) Len() uint { return g.length }

// NewFold attaches a folded view covering histLen bits compressed to width
// bits and returns its handle.  histLen must not exceed the register length.
func (g *Global) NewFold(histLen, width uint) *bitutil.FoldedHistory {
	if histLen > g.length {
		panic("history: fold longer than global history register")
	}
	f := bitutil.NewFoldedHistory(histLen, width)
	g.folds = append(g.folds, f)
	return f
}

// Shift speculatively inserts one branch outcome (most-recent position).
func (g *Global) Shift(taken bool) {
	for _, f := range g.folds {
		old := bitutil.HistBit(g.hist, f.HistLen()-1)
		f.Update(taken, old)
	}
	carry := uint64(0)
	if taken {
		carry = 1
	}
	for i := range g.hist {
		next := g.hist[i] >> 63
		g.hist[i] = g.hist[i]<<1 | carry
		carry = next
	}
	// Clear bits beyond the architected length so snapshots compare equal
	// regardless of shift count.
	if rem := g.length % 64; rem != 0 {
		g.hist[len(g.hist)-1] &= bitutil.Mask(rem)
	}
	g.SpecShifts++
}

// Bits returns the most recent n bits of history (n <= 64).
func (g *Global) Bits(n uint) uint64 {
	if n > 64 {
		panic("history: Bits supports up to 64 bits; use Raw for longer")
	}
	if n > g.length {
		n = g.length
	}
	return g.hist[0] & bitutil.Mask(n)
}

// Raw returns the underlying history words (read-only view).
func (g *Global) Raw() []uint64 { return g.hist }

// Snapshot captures the register and all folds for later restore.  The
// paper's simple implementation stores exactly such snapshots in the history
// file; a more efficient pointer-into-circular-buffer GHR is noted as future
// work there and modelled only in the area report.
type Snapshot struct {
	hist  []uint64
	folds []uint64
}

// Hist returns the snapshotted history words (read-only view; bit 0 of word
// 0 is the most recent outcome).  Events hand this back to sub-components as
// "the same histories provided at predict time" (§III-E).
func (s Snapshot) Hist() []uint64 { return s.hist }

// Snapshot captures the current state.
func (g *Global) Snapshot() Snapshot {
	var s Snapshot
	g.SnapshotInto(&s)
	return s
}

// SnapshotInto captures the current state into s, reusing s's backing
// arrays when they are large enough — the zero-allocation capture path the
// history file uses for its per-entry snapshots (each entry owns its
// snapshot buffers, so a recycled entry's capture allocates nothing).
func (g *Global) SnapshotInto(s *Snapshot) {
	s.hist = append(s.hist[:0], g.hist...)
	if cap(s.folds) < len(g.folds) {
		s.folds = make([]uint64, len(g.folds))
	}
	s.folds = s.folds[:len(g.folds)]
	for i, f := range g.folds {
		s.folds[i] = f.Fold()
	}
}

// Restore rewinds the register and folds to a snapshot.
func (g *Global) Restore(s Snapshot) {
	copy(g.hist, s.hist)
	for i, f := range g.folds {
		f.SetRaw(s.folds[i])
	}
	g.Restores++
}

// CheckFolds verifies every attached folded register against a reference
// fold recomputed from the live history words (the paranoid-mode sync
// invariant).  It returns the index of the first desynced fold and false, or
// (0, true) when all folds match.
func (g *Global) CheckFolds() (int, bool) {
	for i, f := range g.folds {
		if f.Fold() != bitutil.FoldBits(g.hist, f.HistLen(), f.Width()) {
			return i, false
		}
	}
	return 0, true
}

// Reset clears the history and folds.
func (g *Global) Reset() {
	for i := range g.hist {
		g.hist[i] = 0
	}
	for _, f := range g.folds {
		f.SetRaw(0)
	}
	g.SpecShifts, g.Restores = 0, 0
}

// Budget reports the flop cost of the register plus folds (history registers
// are flop-based, not SRAM).
func (g *Global) Budget() sram.Budget {
	bits := int(g.length)
	for _, f := range g.folds {
		bits += int(f.Width())
	}
	return sram.Budget{FlopBits: bits}
}
