package history

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCircularMatchesShiftRegister(t *testing.T) {
	// Equivalence property: CircularGlobal behaves exactly like the
	// snapshot-based Global under interleaved shifts and restores.
	g := NewGlobal(48)
	c := NewCircularGlobal(48)
	gf := g.NewFold(30, 9)
	cf := c.NewFold(30, 9)
	rng := rand.New(rand.NewSource(11))

	type pair struct {
		gs Snapshot
		cs CircularSnapshot
	}
	var cps []pair
	for step := 0; step < 5000; step++ {
		switch rng.Intn(10) {
		case 0: // checkpoint
			cps = append(cps, pair{g.Snapshot(), c.Snapshot()})
		case 1: // restore a recent checkpoint (bounded speculation depth)
			if len(cps) > 0 {
				p := cps[len(cps)-1]
				cps = cps[:len(cps)-1]
				g.Restore(p.gs)
				c.Restore(p.cs)
			}
		default:
			b := rng.Intn(2) == 1
			g.Shift(b)
			c.Shift(b)
			// Checkpoints expire as speculation advances; cap the stack.
			if len(cps) > 8 {
				cps = cps[1:]
			}
		}
		if g.Bits(48) != c.Bits(48) {
			t.Fatalf("step %d: bits diverge: %#x vs %#x", step, g.Bits(48), c.Bits(48))
		}
		if gf.Fold() != cf.Fold() {
			t.Fatalf("step %d: folds diverge", step)
		}
	}
}

func TestCircularBitAges(t *testing.T) {
	c := NewCircularGlobal(8)
	c.Shift(true)
	c.Shift(false)
	c.Shift(true)
	if !c.Bit(0) || c.Bit(1) || !c.Bit(2) {
		t.Errorf("bit ages wrong: %v %v %v", c.Bit(0), c.Bit(1), c.Bit(2))
	}
	if c.Bit(100) {
		t.Error("beyond-length bit must be false")
	}
}

func TestCircularSnapshotIsCheap(t *testing.T) {
	g := NewGlobal(128)
	c := NewCircularGlobal(128)
	c.NewFold(64, 12)
	g.NewFold(64, 12)
	// Snapshot cost: pointer+folds vs full register+folds.
	if c.SnapshotBits() >= int(g.Len())+12 {
		t.Errorf("circular snapshot (%d bits) should beat full snapshot (%d bits)",
			c.SnapshotBits(), g.Len()+12)
	}
}

func TestCircularRestoreExpiry(t *testing.T) {
	c := NewCircularGlobal(8) // capacity 16 bits
	s := c.Snapshot()
	for i := 0; i < 9; i++ { // > capLen - length = 8 inserts
		c.Shift(true)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected expiry panic for too-deep restore")
		}
	}()
	c.Restore(s)
}

func TestCircularWrapAround(t *testing.T) {
	// Property: after any long shift sequence the low bits match the last
	// shifts regardless of wrap count.
	f := func(seed int64, n uint8) bool {
		c := NewCircularGlobal(16)
		rng := rand.New(rand.NewSource(seed))
		var last uint64
		total := int(n) + 100
		for i := 0; i < total; i++ {
			b := rng.Intn(2) == 1
			c.Shift(b)
			last <<= 1
			if b {
				last |= 1
			}
		}
		return c.Bits(16) == last&0xFFFF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCircularReset(t *testing.T) {
	c := NewCircularGlobal(8)
	fd := c.NewFold(8, 4)
	c.Shift(true)
	c.Reset()
	if c.Bits(8) != 0 || fd.Fold() != 0 {
		t.Error("reset incomplete")
	}
}

func TestCircularBudget(t *testing.T) {
	c := NewCircularGlobal(64)
	if c.Budget().TotalBits() == 0 {
		t.Error("zero budget")
	}
	defer func() {
		if recover() == nil {
			t.Error("zero-length must panic")
		}
	}()
	NewCircularGlobal(0)
}
