package history

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cobra/internal/bitutil"
)

func TestGlobalShiftOrder(t *testing.T) {
	g := NewGlobal(8)
	g.Shift(true)
	g.Shift(false)
	g.Shift(true)
	// Most recent first: 1,0,1 -> 0b101.
	if got := g.Bits(3); got != 0b101 {
		t.Errorf("Bits(3) = %#b, want 0b101", got)
	}
	if got := g.Bits(8); got != 0b101 {
		t.Errorf("Bits(8) = %#b, want 0b101", got)
	}
}

func TestGlobalLengthMasking(t *testing.T) {
	g := NewGlobal(4)
	for i := 0; i < 10; i++ {
		g.Shift(true)
	}
	if got := g.Bits(4); got != 0b1111 {
		t.Errorf("Bits(4) = %#b", got)
	}
	if g.Raw()[0] != 0b1111 {
		t.Errorf("history must be masked to length: %#b", g.Raw()[0])
	}
}

func TestGlobalSnapshotRestore(t *testing.T) {
	g := NewGlobal(128)
	f := g.NewFold(100, 11)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		g.Shift(rng.Intn(2) == 1)
	}
	snap := g.Snapshot()
	wantBits := g.Bits(64)
	wantFold := f.Fold()
	for i := 0; i < 50; i++ {
		g.Shift(rng.Intn(2) == 1) // wrong-path pollution
	}
	g.Restore(snap)
	if g.Bits(64) != wantBits {
		t.Errorf("restore: Bits = %#x, want %#x", g.Bits(64), wantBits)
	}
	if f.Fold() != wantFold {
		t.Errorf("restore: fold = %#x, want %#x", f.Fold(), wantFold)
	}
	if g.Restores != 1 {
		t.Errorf("Restores = %d, want 1", g.Restores)
	}
}

func TestGlobalSnapshotIsDeepCopy(t *testing.T) {
	g := NewGlobal(64)
	g.Shift(true)
	snap := g.Snapshot()
	g.Shift(true)
	g.Shift(true)
	g.Restore(snap)
	if g.Bits(2) != 0b01 {
		t.Errorf("snapshot aliased live state: Bits(2)=%#b", g.Bits(2))
	}
}

func TestGlobalFoldTracksReference(t *testing.T) {
	g := NewGlobal(640)
	folds := []*bitutil.FoldedHistory{
		g.NewFold(13, 10), g.NewFold(64, 12), g.NewFold(640, 13),
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 3000; i++ {
		g.Shift(rng.Intn(2) == 1)
		for _, f := range folds {
			want := bitutil.FoldBits(g.Raw(), f.HistLen(), f.Width())
			if f.Fold() != want {
				t.Fatalf("step %d: fold(%d,%d) = %#x, want %#x",
					i, f.HistLen(), f.Width(), f.Fold(), want)
			}
		}
	}
}

func TestGlobalRestoreProperty(t *testing.T) {
	// Property: for any prefix and any pollution, restore is exact.
	f := func(prefix, pollution []bool) bool {
		g := NewGlobal(96)
		fh := g.NewFold(70, 9)
		for _, b := range prefix {
			g.Shift(b)
		}
		snap := g.Snapshot()
		before := append([]uint64(nil), g.Raw()...)
		fold := fh.Fold()
		for _, b := range pollution {
			g.Shift(b)
		}
		g.Restore(snap)
		after := g.Raw()
		for i := range before {
			if before[i] != after[i] {
				return false
			}
		}
		return fh.Fold() == fold
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGlobalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero-length global history")
		}
	}()
	NewGlobal(0)
}

func TestGlobalFoldTooLongPanics(t *testing.T) {
	g := NewGlobal(16)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for fold longer than register")
		}
	}()
	g.NewFold(17, 8)
}

func TestLocalSpecUpdateAndRestore(t *testing.T) {
	l := NewLocal(256, 32, 1)
	pc := uint64(0x8000_1234)
	l.Tick(1)
	if got := l.Read(pc); got != 0 {
		t.Fatalf("fresh local history = %#x", got)
	}
	old1 := l.SpecUpdate(pc, true)
	l.Tick(2)
	old2 := l.SpecUpdate(pc, true)
	l.Tick(3)
	old3 := l.SpecUpdate(pc, false)
	l.Tick(4)
	if got := l.Read(pc); got != 0b110 {
		t.Fatalf("after T,T,N history = %#b, want 0b110", got)
	}
	if old1 != 0 || old2 != 0b1 || old3 != 0b11 {
		t.Fatalf("pre-update values wrong: %b %b %b", old1, old2, old3)
	}
	// Forwards-walk repair restores the oldest squashed pre-update value.
	l.Restore(pc, old2)
	l.Tick(5)
	if got := l.Read(pc); got != 0b1 {
		t.Fatalf("restored history = %#b, want 0b1", got)
	}
}

func TestLocalDistinctPCs(t *testing.T) {
	l := NewLocal(256, 16, 1)
	a, b := uint64(0x1000), uint64(0x1002) // different indices
	l.Tick(1)
	l.SpecUpdate(a, true)
	l.Tick(2)
	if l.Read(b) != 0 {
		t.Error("update to one PC leaked into another")
	}
}

func TestLocalAliasing(t *testing.T) {
	// PCs congruent modulo the table size alias — the pathology the
	// tournament design exhibits in Fig. 10.
	l := NewLocal(16, 8, 1)
	a := uint64(0x100)
	b := a + uint64(16)<<1 // same index after MixPC folding? ensure same idx
	if l.index(a) != l.index(b) {
		// Construct an aliasing pair directly via index equality search.
		b = 0
		for pc := uint64(2); pc < 1<<16; pc += 2 {
			if pc != a && l.index(pc) == l.index(a) {
				b = pc
				break
			}
		}
		if b == 0 {
			t.Skip("no aliasing pair found")
		}
	}
	l.Tick(1)
	l.SpecUpdate(a, true)
	l.Tick(2)
	if l.Read(b) == 0 {
		t.Error("aliasing pair should share an entry")
	}
}

func TestLocalHistBitsMask(t *testing.T) {
	l := NewLocal(8, 4, 1)
	pc := uint64(0x40)
	for i := 0; i < 10; i++ {
		l.Tick(uint64(i))
		l.SpecUpdate(pc, true)
	}
	l.Tick(100)
	if got := l.Read(pc); got != 0b1111 {
		t.Errorf("history must mask to 4 bits, got %#b", got)
	}
}

func TestLocalPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewLocal(3, 8, 1) },
		func() { NewLocal(8, 0, 1) },
		func() { NewLocal(8, 64, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected constructor panic")
				}
			}()
			fn()
		}()
	}
}

func TestPathHistory(t *testing.T) {
	p := NewPath(8)
	p.Shift(0x2, 1) // bit 1 of 0x2 = 1
	p.Shift(0x4, 1) // bit 1 of 0x4 = 0
	if p.Bits() != 0b10 {
		t.Errorf("path bits = %#b, want 0b10", p.Bits())
	}
	s := p.Snapshot()
	p.Shift(0x2, 1)
	p.Restore(s)
	if p.Bits() != 0b10 {
		t.Errorf("path restore failed: %#b", p.Bits())
	}
	p.Reset()
	if p.Bits() != 0 {
		t.Error("path reset failed")
	}
}

func TestBudgets(t *testing.T) {
	g := NewGlobal(64)
	g.NewFold(64, 12)
	if got := g.Budget().TotalBits(); got != 76 {
		t.Errorf("global budget = %d bits, want 76", got)
	}
	l := NewLocal(256, 32, 1)
	if got := l.Budget().TotalBits(); got != 256*32 {
		t.Errorf("local budget = %d bits, want %d", got, 256*32)
	}
	p := NewPath(16)
	if p.Budget().TotalBits() != 16 {
		t.Error("path budget wrong")
	}
}

func TestGlobalReset(t *testing.T) {
	g := NewGlobal(32)
	f := g.NewFold(20, 7)
	g.Shift(true)
	g.Reset()
	if g.Bits(32) != 0 || f.Fold() != 0 || g.SpecShifts != 0 {
		t.Error("reset incomplete")
	}
}
