package history

import (
	"cobra/internal/bitutil"
	"cobra/internal/sram"
)

// Local is the PC-indexed local history table (§IV-B.3).  It is updated
// speculatively by predicted directions of in-flight branches and repaired
// by the forwards-walk mechanism: the history file stores each entry's
// pre-update value, and on mispredict the walk writes the oldest squashed
// value back (see compose.HistoryFile).
type Local struct {
	mem      *sram.Mem
	histBits uint
	idxBits  uint
	instOff  uint
}

// NewLocal builds a local history table with entries rows of histBits-bit
// histories. entries must be a power of two.
func NewLocal(entries int, histBits, instOff uint) *Local {
	if !bitutil.IsPow2(entries) {
		panic("history: local history entries must be a power of two")
	}
	if histBits == 0 || histBits > 63 {
		panic("history: local history bits must be in [1,63]")
	}
	return &Local{
		mem: sram.New(sram.Spec{
			Name:    "lhist",
			Entries: entries,
			Width:   int(histBits),
			// 1 read (predict) + 1 write (speculative update) per cycle; the
			// repair walk uses the flop-restore path (Poke).
			ReadPorts:  1,
			WritePorts: 1,
		}),
		histBits: histBits,
		idxBits:  bitutil.Clog2(entries),
		instOff:  instOff,
	}
}

// HistBits returns the per-entry history length.
func (l *Local) HistBits() uint { return l.histBits }

func (l *Local) index(pc uint64) int {
	return int(bitutil.MixPC(pc, l.instOff, l.idxBits))
}

// Read returns the local history for pc (consumes a read port).
func (l *Local) Read(pc uint64) uint64 {
	return l.mem.Read(l.index(pc))
}

// SpecUpdate speculatively shifts taken into pc's history and returns the
// pre-update value, which the caller must stash in the history file for the
// repair walk.
func (l *Local) SpecUpdate(pc uint64, taken bool) (old uint64) {
	idx := l.index(pc)
	old = l.mem.Peek(idx)
	next := old << 1
	if taken {
		next |= 1
	}
	l.mem.Write(idx, next) // Write masks to histBits.
	return old
}

// Restore writes a previously captured history value back (repair path,
// modelled as flop restore: no port consumed).
func (l *Local) Restore(pc uint64, val uint64) {
	l.mem.Poke(l.index(pc), val)
}

// Tick advances the backing memory's port accounting.
func (l *Local) Tick(cycle uint64) { l.mem.Tick(cycle) }

// Reset clears the table.
func (l *Local) Reset() { l.mem.Reset() }

// Budget reports the table's storage.
func (l *Local) Budget() sram.Budget {
	return sram.Budget{Mems: []sram.Spec{l.mem.Spec()}}
}

// Path is a path-history register: it shifts in low bits of the targets of
// taken control flow, the variant of history information the paper cites
// ([33]) as implementable as a new history provider.
type Path struct {
	length uint
	reg    uint64
}

// NewPath returns a path history of length bits (<= 64).
func NewPath(length uint) *Path {
	if length == 0 || length > 64 {
		panic("history: path history length must be in [1,64]")
	}
	return &Path{length: length}
}

// Shift inserts the low bit group of a taken-branch target.
func (p *Path) Shift(target uint64, instOff uint) {
	p.reg = (p.reg << 1) | ((target >> instOff) & 1)
	p.reg &= bitutil.Mask(p.length)
}

// Bits returns the register value.
func (p *Path) Bits() uint64 { return p.reg }

// Snapshot returns the register for history-file storage.
func (p *Path) Snapshot() uint64 { return p.reg }

// Restore rewinds the register.
func (p *Path) Restore(v uint64) { p.reg = v & bitutil.Mask(p.length) }

// Reset clears the register.
func (p *Path) Reset() { p.reg = 0 }

// Budget reports the flop cost.
func (p *Path) Budget() sram.Budget { return sram.Budget{FlopBits: int(p.length)} }
