package history

import (
	"cobra/internal/bitutil"
	"cobra/internal/sram"
)

// CircularGlobal is the pointer-into-circular-buffer global history register
// the paper names as the efficient alternative to snapshot-based repair
// (§IV-B.3: "A more efficient global-history register could be implemented
// using pointers into a circular buffer").
//
// Instead of copying the whole register into every history-file entry, the
// register is a circular buffer of outcome bits written at a head pointer;
// a snapshot is just the head position (plus the folded-history values,
// which still need copying — the reason real designs pair this with
// rebuildable folds).  Restore rewinds the pointer; the bits beyond the
// head are naturally overwritten by re-execution.
//
// The type mirrors Global's API so the two implementations can be compared
// (see the equivalence property test); the composer uses Global for
// simplicity, and the area model quotes both costs.
type CircularGlobal struct {
	length uint
	buf    []uint64 // circular bit buffer, capacity >= 2*length bits
	capLen uint     // capacity in bits (power of two)
	head   uint     // absolute bit position of the next write
	folds  []*bitutil.FoldedHistory
}

// NewCircularGlobal builds a circular-buffer history of `length` bits.
func NewCircularGlobal(length uint) *CircularGlobal {
	if length == 0 {
		panic("history: circular global history length must be > 0")
	}
	capLen := uint(1)
	for capLen < 2*length {
		capLen <<= 1
	}
	return &CircularGlobal{
		length: length,
		buf:    make([]uint64, capLen/64+1),
		capLen: capLen,
	}
}

// Len returns the architected history length in bits.
func (g *CircularGlobal) Len() uint { return g.length }

// NewFold attaches a folded view (same contract as Global.NewFold).
func (g *CircularGlobal) NewFold(histLen, width uint) *bitutil.FoldedHistory {
	if histLen > g.length {
		panic("history: fold longer than circular history register")
	}
	f := bitutil.NewFoldedHistory(histLen, width)
	g.folds = append(g.folds, f)
	return f
}

func (g *CircularGlobal) bitAt(pos uint) bool {
	p := pos & (g.capLen - 1)
	return g.buf[p/64]>>(p%64)&1 == 1
}

func (g *CircularGlobal) setBit(pos uint, v bool) {
	p := pos & (g.capLen - 1)
	if v {
		g.buf[p/64] |= 1 << (p % 64)
	} else {
		g.buf[p/64] &^= 1 << (p % 64)
	}
}

// Shift speculatively inserts one branch outcome.
func (g *CircularGlobal) Shift(taken bool) {
	for _, f := range g.folds {
		old := false
		if f.HistLen() > 0 {
			old = g.Bit(f.HistLen() - 1)
		}
		f.Update(taken, old)
	}
	g.setBit(g.head, taken)
	g.head++
}

// Bit returns the outcome `age` branches ago (0 = most recent).
func (g *CircularGlobal) Bit(age uint) bool {
	if age >= g.length {
		return false
	}
	return g.bitAt(g.head - 1 - age + g.capLen)
}

// Bits returns the most recent n bits (n <= 64), most recent in bit 0.
func (g *CircularGlobal) Bits(n uint) uint64 {
	if n > 64 {
		panic("history: Bits supports up to 64 bits")
	}
	if n > g.length {
		n = g.length
	}
	var out uint64
	for i := uint(0); i < n; i++ {
		if g.Bit(i) {
			out |= 1 << i
		}
	}
	return out
}

// CircularSnapshot is the cheap checkpoint: the head pointer plus fold
// values — no history bits are copied.
type CircularSnapshot struct {
	head  uint
	folds []uint64
}

// Snapshot captures the pointer and folds.
func (g *CircularGlobal) Snapshot() CircularSnapshot {
	s := CircularSnapshot{head: g.head, folds: make([]uint64, len(g.folds))}
	for i, f := range g.folds {
		s.folds[i] = f.Fold()
	}
	return s
}

// Restore rewinds the pointer and folds.  Valid as long as no more than
// capLen-length bits were inserted since the snapshot (the history file
// bounds speculation depth well below that).
func (g *CircularGlobal) Restore(s CircularSnapshot) {
	if g.head-s.head > g.capLen-g.length {
		panic("history: circular history snapshot expired (speculation too deep)")
	}
	g.head = s.head
	for i, f := range g.folds {
		f.SetRaw(s.folds[i])
	}
}

// Reset clears the register.
func (g *CircularGlobal) Reset() {
	for i := range g.buf {
		g.buf[i] = 0
	}
	g.head = 0
	for _, f := range g.folds {
		f.SetRaw(0)
	}
}

// Budget reports storage: the buffer bits plus one pointer, versus
// Global.Budget's full-register cost; per-history-file-entry cost drops
// from `length` bits to log2(capLen) bits (quoted by SnapshotBits).
func (g *CircularGlobal) Budget() sram.Budget {
	bits := int(g.capLen) + int(bitutil.Clog2(int(g.capLen)))
	for _, f := range g.folds {
		bits += int(f.Width())
	}
	return sram.Budget{FlopBits: bits}
}

// SnapshotBits returns the per-checkpoint storage in bits (pointer +
// folds), the quantity that shrinks the history file versus full snapshots.
func (g *CircularGlobal) SnapshotBits() int {
	bits := int(bitutil.Clog2(int(g.capLen)))
	for _, f := range g.folds {
		bits += int(f.Width())
	}
	return bits
}
