package uarch

import (
	"testing"

	"cobra/internal/compose"
	"cobra/internal/program"
)

// loopAt builds a long-running loop whose back-edge sits at a chosen
// alignment, with enough body ops to keep the exit rare.
func backEdgeLoop(bodyOps int) *program.Program {
	b := program.NewBuilder("be", 0x1000, 4, 1)
	b.Loop(1_000_000, func() {
		b.Ops(bodyOps, 0, 0, 0, nil)
	})
	return b.MustSeal()
}

// cyclesFor runs a topology on a program for n instructions and returns
// cycles.
func cyclesFor(t *testing.T, topo string, p *program.Program, n uint64) uint64 {
	t.Helper()
	bp := mkPipeline(t, topo, compose.Options{GHistBits: 64})
	core := NewCore(DefaultConfig(), bp, p, 7)
	return core.Run(n).Cycles
}

// TestOverrideBubbleHierarchy checks the Alpha-style cost ladder (§IV-B):
// a taken back-edge predicted by the 1-cycle uBTB is cheaper than one
// predicted first at stage 2 (BTB), which is cheaper than one the predictor
// never sees coming (pre-decode redirect every iteration).
//
// This is the regression test for the fetch/advance ordering bug where
// stage-2 overrides were free and the uBTB was worthless.
func TestOverrideBubbleHierarchy(t *testing.T) {
	// All three pipelines are depth 3 (GTAG3 pins the depth), isolating the
	// stage at which the taken back-edge redirects fetch: Fetch-1 (uBTB),
	// Fetch-2 (BTB), or pre-decode (no target provider).
	const n = 60000
	withUBTB := cyclesFor(t, "GTAG3 > BTB2 > BIM2 > UBTB1", backEdgeLoop(6), n)
	btbOnly := cyclesFor(t, "GTAG3 > BTB2 > BIM2", backEdgeLoop(6), n)
	predecodeOnly := cyclesFor(t, "GTAG3 > BIM2", backEdgeLoop(6), n)
	if !(withUBTB < btbOnly) {
		t.Errorf("uBTB (%d cyc) must beat stage-2 BTB redirects (%d cyc)", withUBTB, btbOnly)
	}
	if !(btbOnly < predecodeOnly) {
		t.Errorf("stage-2 BTB redirects (%d cyc) must beat predecode-only redirects (%d cyc)",
			btbOnly, predecodeOnly)
	}
}

// TestDeliveryStaysInOrder is the regression test for the out-of-order
// delivery bug: with a tiny fetch buffer, large older packets must not be
// bypassed by smaller younger ones (the symptom was a commit-order panic).
func TestDeliveryStaysInOrder(t *testing.T) {
	b := program.NewBuilder("mix", 0x1000, 4, 3)
	// Alternate full packets (4 ops) with 1-op packets ended by taken jumps.
	head := b.PC()
	b.Ops(7, 0.3, 0.1, 0, func() program.MemBehavior {
		return &program.RandMem{Base: 0x100000, Size: 1 << 22}
	})
	fx := b.ForwardBranch(&program.BiasedDir{P: 0.5})
	b.Ops(1, 0, 0, 0, nil)
	fx.Bind()
	b.Jump(head)
	p, err := b.Seal()
	if err != nil {
		t.Fatal(err)
	}
	bp := mkPipeline(t, "GTAG3 > BTB2 > BIM2", compose.Options{GHistBits: 16})
	cfg := DefaultConfig()
	cfg.FetchBufferCap = 5 // tight: forces delivery stalls
	core := NewCore(cfg, bp, p, 7)
	res := core.Run(50000) // panics on ordering violations
	if res.Instructions < 50000 {
		t.Error("did not complete")
	}
}

// TestRASRepairAcrossMispredicts: wrong-path call/ret traffic must not
// corrupt return prediction once the mispredict resolves.
func TestRASRepairAcrossMispredicts(t *testing.T) {
	b := program.NewBuilder("rascorrupt", 0x1000, 4, 5)
	skip := b.ForwardJump()
	leaf := b.Func(func() { b.Ops(2, 0, 0, 0, nil) })
	// A function whose body calls leaf behind a hard-to-predict branch.
	mid := b.Func(func() {
		fx := b.ForwardBranch(&program.BiasedDir{P: 0.5})
		b.Call(leaf)
		b.Ops(1, 0, 0, 0, nil)
		fx.Bind()
		b.Ops(1, 0, 0, 0, nil)
	})
	skip.Bind()
	b.Loop(100000, func() {
		b.Call(mid)
		b.Ops(2, 0, 0, 0, nil)
	})
	p := b.MustSeal()
	bp := mkPipeline(t, "GTAG3 > BTB2 > BIM2", compose.Options{GHistBits: 16})
	res := NewCore(DefaultConfig(), bp, p, 7).Run(80000)
	// The 50/50 branch mispredicts constantly; the wrong paths contain
	// calls/returns.  With checkpointed RAS repair, committed returns must
	// still be predicted nearly perfectly.
	if res.IndirectJumps == 0 {
		t.Fatal("no returns committed")
	}
	missRate := float64(res.TgtMispredicts) / float64(res.IndirectJumps)
	if missRate > 0.05 {
		t.Errorf("return target miss rate %.3f; RAS repair is leaking corruption", missRate)
	}
}

// TestSFBShadowAcrossPacketBoundary: a predicated branch whose shadow spans
// into the next fetch packet must still commit the correct architectural
// stream.
func TestSFBShadowAcrossPacketBoundary(t *testing.T) {
	b := program.NewBuilder("sfbspan", 0x1000, 4, 7)
	b.Loop(100000, func() {
		b.Ops(2, 0, 0, 0, nil) // misalign: hammock branch lands mid-packet
		fx := b.ForwardBranch(&program.BiasedDir{P: 0.5})
		b.Ops(6, 0, 0, 0, nil) // 6-op shadow: crosses a packet boundary
		fx.Bind()
		b.Ops(1, 0, 0, 0, nil)
	})
	p := b.MustSeal()
	bp := mkPipeline(t, "GTAG3 > BTB2 > BIM2", compose.Options{GHistBits: 16})
	cfg := DefaultConfig()
	cfg.SFB = true
	cfg.SFBMaxDist = 8
	res := NewCore(cfg, bp, p, 7).Run(60000)
	if res.Instructions < 60000 {
		t.Fatal("did not complete")
	}
	// The hammock is predicated: essentially no branch mispredicts remain
	// (the loop back-edge exits once).
	if res.DirMispredicts > 20 {
		t.Errorf("predicated hammock still mispredicting: %d", res.DirMispredicts)
	}
}

// TestSerializedFetchTruncatesPackets: under SerializedFetch each delivered
// packet ends at its first CFI, so multi-branch packets never commit two
// branches from one fetch.
func TestSerializedFetchTruncatesPackets(t *testing.T) {
	b := program.NewBuilder("ser", 0x1000, 4, 9)
	b.Loop(100000, func() {
		// Two not-taken branches back to back in one packet.
		fx1 := b.ForwardBranch(&program.BiasedDir{P: 0.01})
		fx2 := b.ForwardBranch(&program.BiasedDir{P: 0.01})
		b.Ops(2, 0, 0, 0, nil)
		fx1.Bind()
		fx2.Bind()
		b.Ops(1, 0, 0, 0, nil)
	})
	p := b.MustSeal()
	mk := func(serial bool) *Core {
		bp := mkPipeline(t, "BIM2", compose.Options{})
		cfg := DefaultConfig()
		cfg.SerializedFetch = serial
		return NewCore(cfg, bp, p, 7)
	}
	cs := mk(true)
	rs := cs.Run(40000)
	cw := mk(false)
	rw := cw.Run(40000)
	if rs.Cycles <= rw.Cycles {
		t.Errorf("serialized (%d cyc) must be slower than superscalar (%d cyc)", rs.Cycles, rw.Cycles)
	}
	if rs.Branches != rw.Branches && rs.Instructions == rw.Instructions {
		t.Errorf("architectural branch counts must match: %d vs %d", rs.Branches, rw.Branches)
	}
}

// TestWatchdogFires: an impossible configuration must abort via the
// watchdog rather than spin forever.
func TestWatchdogFires(t *testing.T) {
	p := backEdgeLoop(3)
	bp := mkPipeline(t, "BIM2", compose.Options{})
	cfg := DefaultConfig()
	cfg.WatchdogCycles = 100
	cfg.FetchBufferCap = 0 // nothing can ever be delivered
	core := NewCore(cfg, bp, p, 7)
	defer func() {
		if recover() == nil {
			t.Error("watchdog did not fire")
		}
	}()
	core.Run(1000)
}

// TestStepBuffer exercises the oracle window directly.
func TestStepBuffer(t *testing.T) {
	p := backEdgeLoop(3)
	sb := newStepBuffer(program.NewOracle(p, 1))
	first := *sb.peek()
	i0 := sb.consume()
	sb.peek()
	i1 := sb.consume()
	if i1 != i0+1 {
		t.Errorf("indices not sequential: %d %d", i0, i1)
	}
	sb.rewind(i0)
	if got := *sb.peek(); got != first {
		t.Errorf("rewind did not restore the stream: %+v vs %+v", got, first)
	}
	sb.consume()
	sb.consume()
	sb.prune(i1)
	defer func() {
		if recover() == nil {
			t.Error("rewinding past pruned steps must panic")
		}
	}()
	sb.rewind(i0)
}

// TestMemAddrWrongPathStability: wrong-path memory ops use deterministic
// pseudo-addresses (cache pollution without touching oracle state).
func TestMemAddrWrongPathStability(t *testing.T) {
	p := backEdgeLoop(3)
	bp := mkPipeline(t, "BIM2", compose.Options{})
	c := NewCore(DefaultConfig(), bp, p, 7)
	r := &robE{fb: fbInst{pc: 0x1234, inst: &program.Inst{Class: program.ClassLoad}}}
	a1, a2 := c.memAddr(r), c.memAddr(r)
	if a1 != a2 {
		t.Error("wrong-path address must be deterministic")
	}
	r2 := &robE{fb: fbInst{pc: 0x1238, inst: &program.Inst{Class: program.ClassLoad}}}
	if c.memAddr(r2) == a1 {
		t.Error("distinct PCs should map to distinct pseudo-addresses")
	}
}
