package uarch

import (
	"testing"

	"cobra/internal/compose"
	"cobra/internal/pred"
	"cobra/internal/program"
	"cobra/internal/stats"
)

func mkPipeline(t *testing.T, topo string, opt compose.Options) *compose.Pipeline {
	t.Helper()
	p, err := compose.New(pred.DefaultConfig(), compose.MustParse(topo), opt)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// tightLoop builds a tiny hot loop: trip iterations of a few ALU ops.
func tightLoop(trip, body int) *program.Program {
	b := program.NewBuilder("tight", 0x1000, 4, 1)
	b.Loop(trip, func() {
		b.Ops(body, 0, 0, 0, nil)
	})
	return b.MustSeal()
}

func run(t *testing.T, topo string, p *program.Program, n uint64) *stats.Sim {
	t.Helper()
	bp := mkPipeline(t, topo, compose.Options{})
	core := NewCore(DefaultConfig(), bp, p, 7)
	return core.Run(n)
}

func TestTightLoopCommits(t *testing.T) {
	s := run(t, "GTAG3 > BTB2 > BIM2", tightLoop(100, 6), 50000)
	if s.Instructions < 50000 {
		t.Fatalf("instructions = %d", s.Instructions)
	}
	if s.IPC() <= 0.3 {
		t.Errorf("IPC = %.3f; a predictable tight loop should flow", s.IPC())
	}
	if s.Accuracy() < 0.95 {
		t.Errorf("accuracy = %.3f; the loop back-edge is trivially biased", s.Accuracy())
	}
}

func TestBranchAccountingConsistent(t *testing.T) {
	b := program.NewBuilder("acct", 0x1000, 4, 3)
	b.Loop(10, func() {
		b.Ops(3, 0, 0, 0, nil)
		b.Hammock(0.5, 2, program.ClassALU)
	})
	s := run(t, "GTAG3 > BTB2 > BIM2", b.MustSeal(), 30000)
	if s.Mispredicts > s.Branches+s.Jumps+s.IndirectJumps {
		t.Errorf("mispredicts (%d) exceed control-flow commits (%d)",
			s.Mispredicts, s.Branches+s.Jumps+s.IndirectJumps)
	}
	if s.DirMispredicts+s.TgtMispredicts != s.Mispredicts {
		t.Errorf("mispredict breakdown inconsistent: %d + %d != %d",
			s.DirMispredicts, s.TgtMispredicts, s.Mispredicts)
	}
	if s.Branches == 0 {
		t.Error("no branches committed")
	}
}

func TestDeterministicRuns(t *testing.T) {
	mk := func() *stats.Sim {
		b := program.NewBuilder("det", 0x1000, 4, 11)
		fns := make([]uint64, 0, 2)
		skip := b.ForwardJump()
		for i := 0; i < 2; i++ {
			fns = append(fns, b.Func(func() {
				b.Ops(4, 0.2, 0.1, 0, func() program.MemBehavior {
					return &program.RandMem{Base: 0x100000, Size: 1 << 18}
				})
			}))
		}
		skip.Bind()
		b.Loop(25, func() {
			b.Hammock(0.4, 2, program.ClassALU)
			b.Call(fns[0])
			b.Call(fns[1])
			b.Ops(2, 0, 0, 0.3, nil)
		})
		return run(t, "LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1", b.MustSeal(), 40000)
	}
	a, b := mk(), mk()
	if a.Cycles != b.Cycles || a.Mispredicts != b.Mispredicts || a.Instructions != b.Instructions {
		t.Errorf("nondeterministic: %v vs %v", a, b)
	}
}

func TestCallsAndReturnsPredictedByRAS(t *testing.T) {
	b := program.NewBuilder("calls", 0x1000, 4, 5)
	skip := b.ForwardJump()
	fn := b.Func(func() { b.Ops(3, 0, 0, 0, nil) })
	skip.Bind()
	b.Loop(50, func() {
		b.Call(fn)
		b.Ops(2, 0, 0, 0, nil)
	})
	s := run(t, "GTAG3 > BTB2 > BIM2", b.MustSeal(), 30000)
	if s.IndirectJumps == 0 {
		t.Fatal("no returns committed")
	}
	// Returns should be near-perfectly predicted by the RAS after warmup.
	if float64(s.TgtMispredicts) > 0.05*float64(s.IndirectJumps+s.Jumps) {
		t.Errorf("too many target mispredicts with a RAS: %d of %d returns/jumps",
			s.TgtMispredicts, s.IndirectJumps+s.Jumps)
	}
}

func TestIndirectJumpsResolve(t *testing.T) {
	b := program.NewBuilder("switch", 0x1000, 4, 9)
	skip := b.ForwardJump()
	caseEnds := []*program.Fixup{}
	targets := []uint64{}
	for i := 0; i < 3; i++ {
		targets = append(targets, b.PC())
		b.Ops(2, 0, 0, 0, nil)
		caseEnds = append(caseEnds, b.ForwardJump())
	}
	skip.Bind()
	head := b.PC()
	b.Ops(1, 0, 0, 0, nil)
	b.Indirect(&program.CycleTgt{Targets: targets})
	for _, f := range caseEnds {
		_ = f
	}
	// All cases jump back to the loop head.
	for _, f := range caseEnds {
		f.BindTo(head)
	}
	p, err := b.Seal()
	if err != nil {
		t.Fatal(err)
	}
	s := run(t, "GTAG3 > BTB2 > BIM2", p, 20000)
	if s.IndirectJumps == 0 {
		t.Fatal("no indirect jumps committed")
	}
	if s.IPC() <= 0.1 {
		t.Errorf("IPC = %.3f", s.IPC())
	}
}

func TestPredictorQualityOrdering(t *testing.T) {
	// A history-patterned branch: TAGE-L should beat a bare bimodal.
	b := program.NewBuilder("pattern", 0x1000, 4, 13)
	b.Loop(1000, func() {
		b.Ops(2, 0, 0, 0, nil)
		fx := b.ForwardBranch(&program.PatternDir{Bits: []bool{true, true, false, true, false, false}})
		b.Ops(2, 0, 0, 0, nil)
		fx.Bind()
		b.Ops(1, 0, 0, 0, nil)
	})
	p := b.MustSeal()
	tage := run(t, "LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1", p, 60000)
	bim := run(t, "BIM2", p, 60000)
	if tage.MPKI() >= bim.MPKI() {
		t.Errorf("TAGE-L MPKI (%.2f) should beat bare bimodal (%.2f)", tage.MPKI(), bim.MPKI())
	}
	if tage.IPC() <= bim.IPC() {
		t.Errorf("TAGE-L IPC (%.3f) should beat bare bimodal (%.3f)", tage.IPC(), bim.IPC())
	}
}

func TestSerializedFetchHurtsIPC(t *testing.T) {
	// Branch-dense code: serializing fetch behind branches must cost IPC
	// (§II-A measures -15% on Dhrystone).
	b := program.NewBuilder("dense", 0x1000, 4, 17)
	b.Loop(200, func() {
		for i := 0; i < 4; i++ {
			b.Ops(1, 0, 0, 0, nil)
			fx := b.ForwardBranch(&program.BiasedDir{P: 0.1})
			b.Ops(1, 0, 0, 0, nil)
			fx.Bind()
			b.Ops(1, 0, 0, 0, nil)
		}
	})
	p := b.MustSeal()
	mk := func(serial bool) *stats.Sim {
		bp := mkPipeline(t, "GTAG3 > BTB2 > BIM2", compose.Options{})
		cfg := DefaultConfig()
		cfg.SerializedFetch = serial
		return NewCore(cfg, bp, p, 7).Run(40000)
	}
	wide, serial := mk(false), mk(true)
	if serial.IPC() >= wide.IPC() {
		t.Errorf("serialized fetch IPC (%.3f) should trail superscalar (%.3f)",
			serial.IPC(), wide.IPC())
	}
}

func TestSFBRemovesHammockMispredicts(t *testing.T) {
	// A 50/50 hammock branch is unpredictable; SFB predication removes it
	// from the prediction problem entirely (§VI-C).
	b := program.NewBuilder("hammock", 0x1000, 4, 23)
	b.Loop(500, func() {
		b.Ops(2, 0, 0, 0, nil)
		b.Hammock(0.5, 3, program.ClassALU)
		b.Ops(2, 0, 0, 0, nil)
	})
	p := b.MustSeal()
	mk := func(sfb bool) *stats.Sim {
		bp := mkPipeline(t, "LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1", compose.Options{})
		cfg := DefaultConfig()
		cfg.SFB = sfb
		return NewCore(cfg, bp, p, 7).Run(40000)
	}
	off, on := mk(false), mk(true)
	if on.Accuracy() <= off.Accuracy() {
		t.Errorf("SFB accuracy (%.4f) should beat baseline (%.4f)", on.Accuracy(), off.Accuracy())
	}
	if on.MPKI() >= off.MPKI() {
		t.Errorf("SFB MPKI (%.2f) should beat baseline (%.2f)", on.MPKI(), off.MPKI())
	}
}

func TestGHRReplayPolicyTradeoff(t *testing.T) {
	// History-correlated branches: repair+replay should reduce mispredicts
	// relative to repair-without-replay (§VI-B).
	b := program.NewBuilder("corr", 0x1000, 4, 29)
	b.Loop(300, func() {
		b.Ops(1, 0, 0, 0, nil)
		f1 := b.ForwardBranch(&program.BiasedDir{P: 0.5})
		b.Ops(1, 0, 0, 0, nil)
		f1.Bind()
		b.Ops(1, 0, 0, 0, nil)
		f2 := b.ForwardBranch(&program.CorrDir{Depth: 1})
		b.Ops(1, 0, 0, 0, nil)
		f2.Bind()
		b.Ops(1, 0, 0, 0, nil)
	})
	p := b.MustSeal()
	mk := func(pol compose.GHRPolicy) *stats.Sim {
		bp := mkPipeline(t, "GTAG3 > BTB2 > BIM2", compose.Options{GHRPolicy: pol})
		return NewCore(DefaultConfig(), bp, p, 7).Run(60000)
	}
	repair := mk(compose.GHRRepair)
	replay := mk(compose.GHRRepairReplay)
	norep := mk(compose.GHRNoRepair)
	// The robust §VI-B effect: repairing speculative history beats leaving
	// stale bits (the full-scale D3 experiment shows ~-34% mispredicts).
	// Replay-vs-repair is within noise at this workload size; the harness
	// records it per-benchmark.
	if repair.Mispredicts >= norep.Mispredicts {
		t.Errorf("repair mispredicts (%d) should beat no-repair (%d)",
			repair.Mispredicts, norep.Mispredicts)
	}
	if replay.BubbleFrac() <= repair.BubbleFrac() {
		t.Errorf("replay must cost fetch bubbles: %.3f vs %.3f",
			replay.BubbleFrac(), repair.BubbleFrac())
	}
	t.Logf("norep=%v", norep)
	t.Logf("repair=%v", repair)
	t.Logf("replay=%v", replay)
}

func TestMemorySystemBackpressure(t *testing.T) {
	// A pointer-chasing loop with a huge working set should show lower IPC
	// than a cache-resident one.
	mkProg := func(ws uint64) *program.Program {
		b := program.NewBuilder("mem", 0x1000, 4, 31)
		b.Loop(100, func() {
			b.Ops(6, 0.5, 0, 0, func() program.MemBehavior {
				return &program.RandMem{Base: 0x100000, Size: ws}
			})
		})
		return b.MustSeal()
	}
	small := run(t, "GTAG3 > BTB2 > BIM2", mkProg(1<<12), 30000)
	big := run(t, "GTAG3 > BTB2 > BIM2", mkProg(1<<26), 30000)
	if big.IPC() >= small.IPC() {
		t.Errorf("cache-hostile IPC (%.3f) should trail cache-resident (%.3f)",
			big.IPC(), small.IPC())
	}
}

func TestWatchdogConfigured(t *testing.T) {
	if DefaultConfig().WatchdogCycles == 0 {
		t.Error("watchdog must be enabled by default")
	}
}

func TestMidPacketEntry(t *testing.T) {
	// A branch targeting the middle of a fetch packet must not deliver the
	// slots before the target.
	b := program.NewBuilder("midpkt", 0x1000, 4, 37)
	b.Loop(20, func() {
		b.Ops(5, 0, 0, 0, nil) // misaligns subsequent blocks
	})
	s := run(t, "GTAG3 > BTB2 > BIM2", b.MustSeal(), 20000)
	if s.Instructions < 20000 {
		t.Fatal("did not finish")
	}
	// Architectural instruction count must match oracle commits exactly;
	// mid-packet slips would diverge or wedge the oracle alignment.
}

func TestCacheModel(t *testing.T) {
	c := newCache(4, 2, 64)
	if c.access(0x0) {
		t.Error("cold miss expected")
	}
	if !c.access(0x4) {
		t.Error("same-line hit expected")
	}
	// Fill the set (addresses mapping to set 0: line multiples of 4*64).
	c.access(0x400)
	c.access(0x800) // evicts LRU (0x0)
	if !c.access(0x800) || !c.access(0x400) {
		t.Error("MRU lines must survive in a 2-way set")
	}
	if c.access(0x0) {
		t.Error("LRU line should have been evicted")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	cfg := DefaultConfig()
	h := newHierarchy(cfg)
	if got := h.loadLatency(0x1000); got != cfg.MemLat {
		t.Errorf("cold load latency = %d, want %d", got, cfg.MemLat)
	}
	if got := h.loadLatency(0x1000); got != cfg.L1Lat {
		t.Errorf("warm load latency = %d, want %d", got, cfg.L1Lat)
	}
}

func TestInOrderCoreRuns(t *testing.T) {
	// §IV-C: the same composed pipeline drops into a very different host —
	// a scalar in-order core.
	b := program.NewBuilder("io", 0x1000, 4, 5)
	b.Loop(50, func() {
		b.Ops(4, 0.2, 0.1, 0, func() program.MemBehavior {
			return &program.StrideMem{Base: 0x10000, Stride: 8, Span: 1024}
		})
		b.Hammock(0.2, 2, program.ClassALU)
	})
	p := b.MustSeal()
	bp := mkPipeline(t, "GTAG3 > BTB2 > BIM2", compose.Options{GHistBits: 16})
	inorder := NewCore(InOrderConfig(), bp, p, 7).Run(60000)
	if inorder.IPC() <= 0 || inorder.IPC() > 1.01 {
		t.Errorf("in-order scalar IPC = %.3f; must be in (0, 1]", inorder.IPC())
	}
	p2 := program.NewBuilder("io2", 0x1000, 4, 5)
	p2.Loop(50, func() {
		p2.Ops(4, 0.2, 0.1, 0, func() program.MemBehavior {
			return &program.StrideMem{Base: 0x10000, Stride: 8, Span: 1024}
		})
		p2.Hammock(0.2, 2, program.ClassALU)
	})
	bp2 := mkPipeline(t, "GTAG3 > BTB2 > BIM2", compose.Options{GHistBits: 16})
	ooo := NewCore(DefaultConfig(), bp2, p2.MustSeal(), 7).Run(60000)
	if ooo.IPC() <= inorder.IPC() {
		t.Errorf("out-of-order IPC (%.3f) should beat in-order (%.3f)", ooo.IPC(), inorder.IPC())
	}
	// Branch accuracy is a frontend property: both hosts should agree
	// closely for the same predictor and workload.
	if d := inorder.Accuracy() - ooo.Accuracy(); d > 0.05 || d < -0.05 {
		t.Errorf("accuracy diverges across hosts: inorder %.3f vs ooo %.3f",
			inorder.Accuracy(), ooo.Accuracy())
	}
}

func TestInOrderPredictorQualityStillMatters(t *testing.T) {
	mk := func(topo string) *stats.Sim {
		b := program.NewBuilder("ioq", 0x1000, 4, 9)
		b.Loop(500, func() {
			b.Ops(2, 0, 0, 0, nil)
			fx := b.ForwardBranch(&program.PatternDir{Bits: []bool{true, true, false}})
			b.Ops(2, 0, 0, 0, nil)
			fx.Bind()
			b.Ops(1, 0, 0, 0, nil)
		})
		bp := mkPipeline(t, topo, compose.Options{GHistBits: 64})
		return NewCore(InOrderConfig(), bp, b.MustSeal(), 7).Run(50000)
	}
	good := mk("LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1")
	bad := mk("BIM2")
	if good.MPKI() >= bad.MPKI() {
		t.Errorf("TAGE-L MPKI (%.2f) should beat bimodal (%.2f) in-order too",
			good.MPKI(), bad.MPKI())
	}
	if good.IPC() <= bad.IPC() {
		t.Errorf("better prediction should lift in-order IPC: %.3f vs %.3f",
			good.IPC(), bad.IPC())
	}
}

func TestWideFetchGeometry(t *testing.T) {
	// The paper's BOOM fetches 16-byte packets of up to eight 2-byte RVC
	// instructions; every component and the frontend are parameterized over
	// the geometry, so the whole stack must run at FetchWidth=8.
	fetch := pred.Config{FetchWidth: 8, InstBytes: 2}
	b := program.NewBuilder("wide", 0x1000, 2, 11)
	b.Loop(500, func() {
		b.Ops(5, 0.2, 0.1, 0, func() program.MemBehavior {
			return &program.StrideMem{Base: 0x20000, Stride: 8, Span: 2048}
		})
		fx := b.ForwardBranch(&program.PatternDir{Bits: []bool{true, false, true}})
		b.Ops(2, 0, 0, 0, nil)
		fx.Bind()
		b.Ops(1, 0, 0, 0, nil)
	})
	p := b.MustSeal()
	bp, err := compose.New(fetch, compose.MustParse("LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1"),
		compose.Options{GHistBits: 64})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Fetch = fetch
	res := NewCore(cfg, bp, p, 7).Run(60000)
	if res.Instructions < 60000 {
		t.Fatal("wide-fetch run did not complete")
	}
	if res.IPC() <= 0.5 {
		t.Errorf("wide-fetch IPC = %.3f", res.IPC())
	}
	if res.Accuracy() < 0.9 {
		t.Errorf("wide-fetch accuracy = %.3f", res.Accuracy())
	}
}

func TestResetStatsWarmup(t *testing.T) {
	p := tightLoop(100, 6)
	bp := mkPipeline(t, "GTAG3 > BTB2 > BIM2", compose.Options{GHistBits: 16})
	c := NewCore(DefaultConfig(), bp, p, 7)
	warm := c.Run(20000)
	warmIPC := warm.IPC()
	c.ResetStats()
	meas := c.Run(20000)
	if meas.Instructions < 20000 {
		t.Fatal("measurement slice incomplete")
	}
	// The warmed measurement should not be slower than the cold slice
	// (predictors trained, caches warm).
	if meas.IPC() < warmIPC*0.95 {
		t.Errorf("warmed IPC %.3f dropped vs cold %.3f", meas.IPC(), warmIPC)
	}
	if meas.Cycles >= warm.Cycles+warm.Cycles/2 {
		t.Errorf("cycle accounting not reset: %d vs %d", meas.Cycles, warm.Cycles)
	}
}
