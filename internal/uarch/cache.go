package uarch

import "cobra/internal/bitutil"

// cache is a set-associative LRU data cache model (tags only; the simulator
// never needs data values).
type cache struct {
	sets      int
	ways      int
	lineShift uint
	tags      []uint64 // sets*ways
	valid     []bool
	stamp     []uint64
	clock     uint64

	Accesses uint64
	Misses   uint64
}

func newCache(sets, ways, lineBytes int) *cache {
	if !bitutil.IsPow2(sets) || ways <= 0 || !bitutil.IsPow2(lineBytes) {
		panic("uarch: cache geometry must be powers of two")
	}
	n := sets * ways
	return &cache{
		sets:      sets,
		ways:      ways,
		lineShift: bitutil.Clog2(lineBytes),
		tags:      make([]uint64, n),
		valid:     make([]bool, n),
		stamp:     make([]uint64, n),
	}
}

// access touches addr, allocating on miss; reports whether it hit.
func (c *cache) access(addr uint64) bool {
	c.clock++
	c.Accesses++
	line := addr >> c.lineShift
	set := int(line) & (c.sets - 1)
	tag := line >> bitutil.Clog2(c.sets)
	base := set * c.ways
	victim, oldest := base, c.stamp[base]
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.stamp[i] = c.clock
			return true
		}
		if !c.valid[i] {
			victim, oldest = i, 0
		} else if c.stamp[i] < oldest {
			victim, oldest = i, c.stamp[i]
		}
	}
	c.Misses++
	c.valid[victim] = true
	c.tags[victim] = tag
	c.stamp[victim] = c.clock
	return false
}

// hierarchy bundles L1D + L2 with a flat memory behind them.
type hierarchy struct {
	l1, l2               *cache
	l1Lat, l2Lat, memLat int
}

func newHierarchy(cfg Config) *hierarchy {
	return &hierarchy{
		l1:     newCache(cfg.L1Sets, cfg.L1Ways, cfg.LineBytes),
		l2:     newCache(cfg.L2Sets, cfg.L2Ways, cfg.LineBytes),
		l1Lat:  cfg.L1Lat,
		l2Lat:  cfg.L2Lat,
		memLat: cfg.MemLat,
	}
}

// loadLatency returns the latency of a load to addr and updates the caches.
func (h *hierarchy) loadLatency(addr uint64) int {
	if h.l1.access(addr) {
		return h.l1Lat
	}
	if h.l2.access(addr) {
		return h.l2Lat
	}
	return h.memLat
}

// store updates the caches (write-allocate); store latency is hidden by the
// store queue, so no latency is returned.
func (h *hierarchy) store(addr uint64) {
	if !h.l1.access(addr) {
		h.l2.access(addr)
	}
}
