package uarch

import (
	"cobra/internal/components"
	"cobra/internal/compose"
	"cobra/internal/pred"
	"cobra/internal/program"
)

// pkt is one in-flight fetch packet travelling down the fetch pipeline.
type pkt struct {
	e      *compose.Entry
	stages []pred.Packet
	base   uint64
	start  int // first valid slot (branch targets can land mid-packet)

	view   pred.Packet // currently accepted view
	slots  []pred.SlotInfo
	cfiIdx int
	nextPC uint64

	age        int
	born       uint64 // fetch cycle (aging starts the following cycle)
	predecoded bool
	// predecode results (cached so fetch-buffer backpressure retries do not
	// redo RAS operations)
	endSlot  int
	predMask uint32
}

// fbInst is a delivered instruction waiting in the fetch buffer / ROB.
type fbInst struct {
	seq      uint64
	pc       uint64
	inst     *program.Inst // nil = off-image wrong-path garbage (nop)
	entry    *compose.Entry
	entrySeq uint64
	slot     int

	correct bool // on the committed (oracle) path
	hasStep bool
	stepIdx uint64
	step    program.Step

	predicated bool // SFB branch decoded to set-flag (not a predicted CFI)
	predOff    bool // SFB shadow instruction, architecturally skipped
}

// stepBuffer windows the oracle's committed stream so fetch can rewind after
// a mispredict (flushed correct-path instructions are refetched and must be
// served the same architectural steps).
type stepBuffer struct {
	oracle *program.Oracle
	steps  []program.Step
	base   uint64 // index of steps[0]
	cursor uint64 // next step to deliver
}

func newStepBuffer(o *program.Oracle) *stepBuffer {
	return &stepBuffer{oracle: o}
}

func (s *stepBuffer) peek() *program.Step {
	for s.cursor >= s.base+uint64(len(s.steps)) {
		s.steps = append(s.steps, s.oracle.Next())
	}
	return &s.steps[s.cursor-s.base]
}

func (s *stepBuffer) consume() uint64 {
	idx := s.cursor
	s.cursor++
	return idx
}

func (s *stepBuffer) rewind(to uint64) {
	if to < s.base {
		panic("uarch: rewinding past pruned steps")
	}
	s.cursor = to
}

// prune drops steps older than idx (they have committed).
func (s *stepBuffer) prune(idx uint64) {
	if idx <= s.base {
		return
	}
	n := idx - s.base
	if n > uint64(len(s.steps)) {
		n = uint64(len(s.steps))
	}
	s.steps = append(s.steps[:0], s.steps[n:]...)
	s.base += n
}

type rasCp struct {
	entrySeq uint64
	opSlot   int // packet slot of the call/ret this checkpoint precedes
	cp       components.RASCheckpoint
}

// scratchSlots returns the shared viewDecode destination buffer, allocating
// it on first use.  Never referenced by an in-flight packet: installing a
// scratch-built view into a packet swaps the two buffers.
func (c *Core) scratchSlots() []pred.SlotInfo {
	if c.vdScratch == nil {
		c.vdScratch = make([]pred.SlotInfo, c.cfg.Fetch.FetchWidth)
	}
	return c.vdScratch
}

// newSlots returns a zeroed fetch-width slot vector, recycling freed ones.
func (c *Core) newSlots() []pred.SlotInfo {
	if k := len(c.slotsFree); k > 0 {
		s := c.slotsFree[k-1]
		c.slotsFree = c.slotsFree[:k-1]
		for i := range s {
			s[i] = pred.SlotInfo{}
		}
		return s
	}
	return make([]pred.SlotInfo, c.cfg.Fetch.FetchWidth)
}

// newPkt returns a reset packet from the freelist (or a fresh one).
func (c *Core) newPkt() *pkt {
	if k := len(c.pktFree); k > 0 {
		pk := c.pktFree[k-1]
		c.pktFree = c.pktFree[:k-1]
		*pk = pkt{}
		return pk
	}
	return &pkt{}
}

// freePkt recycles a packet that left the in-flight window, reclaiming its
// slot vector.  The compose entry and stage buffers it referenced are owned
// by the history file, not the packet.
func (c *Core) freePkt(pk *pkt) {
	if pk.slots != nil {
		c.slotsFree = append(c.slotsFree, pk.slots)
	}
	*pk = pkt{}
	c.pktFree = append(c.pktFree, pk)
}

// viewDecode extracts the frontend's working view from a prediction packet
// into the caller-provided slot vector (zeroed here): per-slot speculation
// records for branch slots the predictor knows about, the packet-ending CFI,
// and the next fetch PC.  A taken prediction without a target cannot
// redirect (the redirect waits for pre-decode).
func (c *Core) viewDecode(base uint64, start int, v pred.Packet, slots []pred.SlotInfo) (cfi int, next uint64) {
	w := c.cfg.Fetch.FetchWidth
	ib := uint64(c.cfg.Fetch.InstBytes)
	for i := range slots {
		slots[i] = pred.SlotInfo{}
	}
	cfi = -1
	next = base + uint64(c.cfg.Fetch.PktBytes())
	for i := start; i < w; i++ {
		p := v[i]
		spc := base + uint64(i)*ib
		switch p.Kind {
		case pred.KindBranch:
			slots[i] = pred.SlotInfo{Valid: true, IsBranch: true, PC: spc,
				Taken: p.DirValid && p.Taken}
		case pred.KindJump:
			slots[i] = pred.SlotInfo{Valid: true, IsJump: true, PC: spc, Taken: true}
		case pred.KindCall:
			slots[i] = pred.SlotInfo{Valid: true, IsCall: true, PC: spc, Taken: true}
		case pred.KindRet:
			slots[i] = pred.SlotInfo{Valid: true, IsRet: true, PC: spc, Taken: true}
		case pred.KindIndirect:
			slots[i] = pred.SlotInfo{Valid: true, IsIndir: true, PC: spc, Taken: true}
		default:
			continue
		}
		if slots[i].Taken && p.TgtValid {
			cfi = i
			next = p.Target
			for j := i + 1; j < w; j++ {
				slots[j] = pred.SlotInfo{}
			}
			return cfi, next
		}
	}
	return cfi, next
}

// isSFB reports whether a branch qualifies for short-forwards-branch
// predication (§VI-C): a forward conditional branch spanning at most
// SFBMaxDist instructions, whose shadow exists entirely in the image and
// contains no control flow.
func (c *Core) isSFB(inst *program.Inst) bool {
	if inst.Kind != program.KindBranch || inst.Target <= inst.PC {
		return false
	}
	ib := uint64(c.cfg.Fetch.InstBytes)
	dist := (inst.Target - inst.PC) / ib
	if dist == 0 || dist > uint64(c.cfg.SFBMaxDist) {
		return false
	}
	for pc := inst.PC + ib; pc < inst.Target; pc += ib {
		sh := c.prog.At(pc)
		if sh == nil || sh.Kind != program.KindOp {
			return false
		}
	}
	return c.prog.At(inst.Target) != nil
}

// predecode inspects the fetched bytes (static program image) for the
// packet: CFI kinds and direct targets become known, short forward branches
// are predicated, returns consult the RAS, and the packet's final view is
// fixed.  Runs once per packet.
func (c *Core) predecode(pk *pkt) {
	w := c.cfg.Fetch.FetchWidth
	ib := uint64(c.cfg.Fetch.InstBytes)
	view := pk.stages[len(pk.stages)-1]
	slots := c.scratchSlots()
	for i := range slots {
		slots[i] = pred.SlotInfo{}
	}
	cfi := -1
	next := pk.base + uint64(c.cfg.Fetch.PktBytes())
	end := w - 1
	var predMask uint32
	rasPush, rasRet := uint64(0), false

scan:
	for i := pk.start; i < w; i++ {
		spc := pk.base + uint64(i)*ib
		inst := c.prog.At(spc)
		if inst == nil || inst.Kind == program.KindOp {
			continue
		}
		if c.cfg.SFB && c.isSFB(inst) {
			predMask |= 1 << uint(i)
			continue
		}
		switch inst.Kind {
		case program.KindBranch:
			dir := view[i].DirValid && view[i].Taken
			slots[i] = pred.SlotInfo{Valid: true, IsBranch: true, PC: spc, Taken: dir}
			if dir {
				cfi, end, next = i, i, inst.Target // decode fixes direct targets
				break scan
			}
			if c.cfg.SerializedFetch {
				cfi, end, next = i, i, spc+ib
				break scan
			}
		case program.KindJump:
			slots[i] = pred.SlotInfo{Valid: true, IsJump: true, PC: spc, Taken: true}
			cfi, end, next = i, i, inst.Target
			break scan
		case program.KindCall:
			slots[i] = pred.SlotInfo{Valid: true, IsCall: true, PC: spc, Taken: true}
			cfi, end, next = i, i, inst.Target
			rasPush = spc + ib
			break scan
		case program.KindRet:
			slots[i] = pred.SlotInfo{Valid: true, IsRet: true, PC: spc, Taken: true}
			cfi, end = i, i
			rasRet = true
			next = spc + ib // placeholder; fixed below from the RAS
			break scan
		case program.KindIndirect:
			slots[i] = pred.SlotInfo{Valid: true, IsIndir: true, PC: spc, Taken: true}
			cfi, end = i, i
			if view[i].TgtValid {
				next = view[i].Target
			} else {
				next = spc + ib // no idea; the resolve will redirect
				c.S.BTBMisses++
			}
			break scan
		}
	}

	// RAS operations happen once, checkpointed into the repair log first.
	// The checkpoint records which slot performs the operation so a
	// mispredict at an older slot of the same packet can undo it.
	if c.rasHead > 0 && len(c.rasCps) == cap(c.rasCps) {
		n := copy(c.rasCps, c.rasCps[c.rasHead:])
		c.rasCps, c.rasHead = c.rasCps[:n], 0
	}
	c.rasCps = append(c.rasCps, rasCp{entrySeq: pk.e.Seq(), opSlot: cfi, cp: c.ras.Checkpoint()})
	if rasRet {
		c.S.RASEvents++
		if tgt, ok := c.ras.Pop(); ok {
			next = tgt
		} else if view[cfi].TgtValid {
			next = view[cfi].Target
		}
	}
	if rasPush != 0 {
		c.S.RASEvents++
		c.ras.Push(rasPush)
	}

	// Install the final view: redirect if the next PC changed; otherwise
	// refine the history contribution per the pipeline's GHR policy.
	replay := c.bp.Opt.GHRPolicy == compose.GHRRepairReplay
	if next != pk.nextPC {
		c.bp.ReAccept(c.cycle, pk.e, view, slots, cfi, next, true)
		c.dropYoungerPkts(pk)
		c.fetchPC = next
		c.S.RedirectFlushes++
		c.emitRedirect(pk.e.Seq(), next)
	} else if !slotsEqual(slots, pk.slots) || cfi != pk.cfiIdx {
		c.bp.ReAccept(c.cycle, pk.e, view, slots, cfi, next, replay)
		if replay {
			c.dropYoungerPkts(pk)
			c.fetchPC = next
			c.S.FetchReplays++
			c.emitRedirect(pk.e.Seq(), next)
		} else {
			c.S.HistoryRepairs++
		}
	}
	pk.view = view
	// Exchange the scratch vector with the packet's: the invariant that no
	// in-flight packet references vdScratch is preserved by the swap.
	c.vdScratch = pk.slots
	pk.slots = slots
	pk.cfiIdx = cfi
	pk.nextPC = next
	pk.endSlot = end
	pk.predMask = predMask
	pk.predecoded = true
	// Even when nothing changed (no ReAccept), record the deepest-stage
	// view so provider attribution reflects the component that actually
	// backed the final prediction, not just the Fetch-1 view.
	pk.e.Used = view
}

func slotsEqual(a, b []pred.SlotInfo) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Valid != y.Valid {
			return false
		}
		if !x.Valid {
			continue
		}
		if x.IsBranch != y.IsBranch || x.IsJump != y.IsJump || x.IsCall != y.IsCall ||
			x.IsRet != y.IsRet || x.IsIndir != y.IsIndir || x.Taken != y.Taken || x.PC != y.PC {
			return false
		}
	}
	return true
}

// dropYoungerPkts removes in-flight packets younger than pk (their compose
// entries were already squashed by ReAccept/Resolve).
func (c *Core) dropYoungerPkts(pk *pkt) {
	for i, q := range c.inflight {
		if q == pk {
			for _, y := range c.inflight[i+1:] {
				c.freePkt(y)
			}
			c.inflight = c.inflight[:i+1]
			return
		}
	}
}

// deliver pushes the packet's instructions into the fetch buffer, tagging
// each against the oracle stream.  Returns false (retry next cycle) when the
// buffer lacks space.
func (c *Core) deliver(pk *pkt) bool {
	need := pk.endSlot - pk.start + 1
	if c.fbLen()+need > c.cfg.FetchBufferCap {
		return false // packet waits for fetch-buffer space
	}
	ib := uint64(c.cfg.Fetch.InstBytes)
	for i := pk.start; i <= pk.endSlot; i++ {
		spc := pk.base + uint64(i)*ib
		inst := c.prog.At(spc)
		c.instSeq++
		f := fbInst{
			seq: c.instSeq, pc: spc, inst: inst,
			entry: pk.e, entrySeq: pk.e.Seq(), slot: i,
			predicated: pk.predMask&(1<<uint(i)) != 0,
		}
		if c.onCorrect {
			if c.predOffActive {
				if spc < c.predOffUntil {
					f.predOff = true
					c.pushFB(f)
					continue
				}
				c.predOffActive = false
			}
			st := c.steps.peek()
			if st.PC == spc {
				f.correct = true
				f.hasStep = true
				f.step = *st
				f.stepIdx = c.steps.consume()
				if f.predicated && f.step.Taken {
					c.predOffActive = true
					c.predOffUntil = f.step.Target
				}
				if inst != nil && inst.Kind.IsCFI() && !f.predicated {
					predNext := spc + ib
					if i == pk.cfiIdx {
						predNext = pk.nextPC
					}
					if f.step.NextPC != predNext {
						// Divergence: everything fetched after this CFI is
						// wrong-path until its resolution redirects.
						c.onCorrect = false
					}
				}
			} else {
				c.onCorrect = false
			}
		}
		c.pushFB(f)
	}
	c.pend(pk.e, need)
	return true
}

func (c *Core) pushFB(f fbInst) {
	if c.fbHead > 0 && len(c.fb) == cap(c.fb) {
		// Reclaim dequeued headroom instead of growing: copy the live tail
		// down so the buffer's allocation is reused for the whole run.
		n := copy(c.fb, c.fb[c.fbHead:])
		c.fb, c.fbHead = c.fb[:n], 0
	}
	c.fb = append(c.fb, f)
}

// frontendAdvance ages in-flight packets: applies deeper-stage overrides
// (the composer's redirect logic, §IV-B), pre-decodes, and delivers.
func (c *Core) frontendAdvance() {
	i := 0
	blocked := false // an older packet failed delivery: younger must wait
	for i < len(c.inflight) {
		pk := c.inflight[i]
		if pk.born == c.cycle {
			// Fetched this cycle; its stage-1 decision already steered the
			// next fetch. Deeper stages respond starting next cycle.
			i++
			continue
		}
		prev := pk.age
		pk.age++
		// Deeper-stage override checks (redirect on next-PC change).
		redirected := false
		for d := prev + 1; d <= pk.age && d <= len(pk.stages); d++ {
			if d < 2 {
				continue
			}
			v := pk.stages[d-1]
			slots := c.scratchSlots()
			cfi, next := c.viewDecode(pk.base, pk.start, v, slots)
			if next != pk.nextPC {
				c.bp.ReAccept(c.cycle, pk.e, v, slots, cfi, next, true)
				c.vdScratch = pk.slots // swap scratch with the packet's vector
				pk.view, pk.slots, pk.cfiIdx, pk.nextPC = v, slots, cfi, next
				c.dropYoungerPkts(pk)
				c.fetchPC = next
				c.S.RedirectFlushes++
				c.emitRedirect(pk.e.Seq(), next)
				redirected = true
			}
		}
		_ = redirected
		if pk.age >= len(pk.stages) {
			if !pk.predecoded {
				c.predecode(pk)
			}
			// Delivery must stay in program order: once an older packet is
			// stalled on fetch-buffer space, younger packets wait behind it.
			if !blocked && c.deliver(pk) {
				// Delivered: remove from the in-flight window.
				c.inflight = append(c.inflight[:i], c.inflight[i+1:]...)
				c.freePkt(pk)
				continue
			}
			blocked = true
		}
		i++
	}
}

// fetch issues one packet query per cycle when the frontend is unblocked.
func (c *Core) fetch() {
	if c.cycle < c.stallUntil {
		return
	}
	if len(c.inflight) >= c.bp.Opt.HFEntries/2 || c.bp.Full() {
		return
	}
	if c.fbLen() >= c.cfg.FetchBufferCap {
		return
	}
	e, stages := c.bp.Predict(c.cycle, c.fetchPC)
	if e == nil {
		return
	}
	base := c.cfg.Fetch.PacketBase(c.fetchPC)
	start := c.cfg.Fetch.SlotOf(c.fetchPC)
	slots := c.newSlots()
	cfi, next := c.viewDecode(base, start, stages[0], slots)
	c.bp.Accept(c.cycle, e, stages[0], slots, cfi, next)
	pk := c.newPkt()
	*pk = pkt{
		e: e, stages: stages, base: base, start: start,
		view: stages[0], slots: slots, cfiIdx: cfi, nextPC: next,
		age: 1, born: c.cycle,
	}
	c.inflight = append(c.inflight, pk)
	c.fetchPC = next
}
