package uarch

import (
	"context"
	"fmt"

	"cobra/internal/components"
	"cobra/internal/compose"
	"cobra/internal/interval"
	"cobra/internal/obs"
	"cobra/internal/pred"
	"cobra/internal/program"
	"cobra/internal/stats"
)

// issue-queue classes (Table II: INT, MEM, FP).
const (
	iqInt = iota
	iqMem
	iqFP
	numIQ
)

// robE is one reorder-buffer entry.
type robE struct {
	valid  bool
	fb     fbInst
	state  uint8 // 0 waiting, 1 issued, 2 done
	doneAt uint64
	iq     uint8
	src    [2]prodRef

	misp, dirMisp, tgtMisp bool
}

// prodRef names a producing ROB slot (idx < 0 means operand ready).
type prodRef struct {
	idx int
	seq uint64
}

type renameEntry struct {
	idx   int
	seq   uint64
	valid bool
}

type pendingEntry struct {
	entry *compose.Entry
	count int
}

// Core is the assembled BOOM-like machine: a COBRA predictor pipeline
// driving the fetch unit of an out-of-order backend, executing a synthetic
// program measured against its architectural oracle.
type Core struct {
	cfg    Config
	bp     *compose.Pipeline
	prog   *program.Program
	oracle *program.Oracle
	ras    *components.RAS
	mem    *hierarchy
	steps  *stepBuffer

	S stats.Sim

	// OnCommitBranch, when set, is called for every committed conditional
	// branch with its PC, resolved direction, whether it mispredicted, and
	// the sub-component that provided the direction — a diagnostics hook for
	// per-branch and per-provider accuracy studies.
	OnCommitBranch func(pc uint64, taken, misp bool, provider string)

	cycle     uint64
	cycleBase uint64 // subtracted from cycle counts (warmup discard)
	instSeq   uint64

	// frontend
	fetchPC       uint64
	stallUntil    uint64
	inflight      []*pkt
	fb            []fbInst
	fbHead        int // index of the oldest live fetch-buffer entry
	onCorrect     bool
	predOffActive bool
	predOffUntil  uint64
	rasCps        []rasCp
	rasHead       int // index of the oldest live RAS checkpoint

	// freelists: steady-state fetch recycles packets, per-packet slot
	// vectors, and pending-entry records instead of allocating (the
	// fetch/decode loop is the simulator's hottest path).
	pktFree   []*pkt
	slotsFree [][]pred.SlotInfo
	pendFree  []*pendingEntry
	vdScratch []pred.SlotInfo // reusable viewDecode destination

	// backend
	rob      []robE
	robHead  int
	robCount int
	rename   [32]renameEntry
	iqUsed   [numIQ]int
	ldqUsed  int
	stqUsed  int
	pending  map[uint64]*pendingEntry

	lastCommitCycle uint64
	histRepairBase  uint64

	ctx context.Context // optional cooperative-cancellation handle

	// observability (all nil/zero-cost when disabled; see internal/obs)
	obsv       obs.Observer       // mirrors bp.Observer(): frontend redirect records
	prof       *obs.BranchProfile // per-PC misprediction attribution (H2P)
	opsScratch []obs.Opinion      // reused opinion buffer for prof records
	met        *obs.Metrics       // live telemetry sink (flushed periodically)
	metCycles  uint64             // cycles already flushed to met
	metInsts   uint64             // instructions already flushed to met
	rprog      *obs.RunProgress   // per-run live-progress sink (same cadence)
	ivl        *interval.Recorder // windowed telemetry sampler (same cadence)
}

// NewCore wires a predictor pipeline to a program.
func NewCore(cfg Config, bp *compose.Pipeline, prog *program.Program, seed uint64) *Core {
	if cfg.Fetch != bp.Cfg {
		panic("uarch: core and pipeline disagree on fetch geometry")
	}
	oracle := program.NewOracle(prog, seed)
	return &Core{
		cfg:       cfg,
		bp:        bp,
		prog:      prog,
		oracle:    oracle,
		ras:       components.NewRAS(cfg.RASEntries),
		mem:       newHierarchy(cfg),
		steps:     newStepBuffer(oracle),
		fetchPC:   prog.Entry,
		onCorrect: true,
		rob:       make([]robE, cfg.ROBEntries),
		pending:   make(map[uint64]*pendingEntry),
		obsv:      bp.Observer(),
		S:         stats.NewSim(),
	}
}

// SetBranchProfile attaches a per-PC misprediction attribution profile: the
// commit stage records every committed control-flow instruction into it,
// and the pipeline starts tracking per-component direction opinions so the
// profile can name overridden-but-right components.  Nil detaches.
func (c *Core) SetBranchProfile(p *obs.BranchProfile) {
	c.prof = p
	if p != nil {
		c.bp.EnableOpinionTracking()
	}
}

// SetMetrics attaches a live telemetry sink: Run flushes cycle/instruction
// deltas into it periodically (every few thousand simulated cycles), so a
// metrics endpoint or progress reporter sees a long simulation advance
// instead of one lump at the end.
func (c *Core) SetMetrics(m *obs.Metrics) { c.met = m }

// SetProgress attaches a per-run live-progress sink, published on the same
// 8192-cycle cadence as the metrics flush.  Where Metrics aggregates across a
// whole batch, RunProgress carries this one run's absolute totals — the feed
// behind GET /v1/runs/{id}/progress.
func (c *Core) SetProgress(p *obs.RunProgress) { c.rprog = p }

// SetIntervals attaches a windowed-telemetry recorder, sampled on the same
// 8192-cycle cadence as the metrics flush: the recorder closes one window
// per spec.Observe.IntervalInsts committed instructions, quantized to that
// cadence so interval sampling adds no new branch to the simulation loop.
func (c *Core) SetIntervals(r *interval.Recorder) { c.ivl = r }

// flushMetrics pushes the not-yet-reported cycle/instruction deltas and
// publishes the run's absolute totals to the progress sink.
func (c *Core) flushMetrics() {
	if c.met != nil {
		c.met.AddCycles(c.cycle - c.metCycles)
		c.metCycles = c.cycle
		if c.S.Instructions >= c.metInsts {
			c.met.AddInsts(c.S.Instructions - c.metInsts)
		}
		c.metInsts = c.S.Instructions
	}
	c.rprog.Set(c.cycle, c.S.Instructions)
	if c.ivl != nil {
		c.ivl.Tick(c.cycle, &c.S, c.bp.C.ReAccepts, c.bp.C.Squashed, c.bp.C.HistRepairs)
	}
}

// emitRedirect records a frontend redirect on the observability stream.
func (c *Core) emitRedirect(seq, target uint64) {
	if c.obsv == nil {
		return
	}
	ev := obs.Event{Cycle: c.cycle, PC: target, Seq: seq, Kind: obs.KRedirect, Slot: -1}
	c.obsv.Event(&ev)
}

// SetContext attaches a cancellation context: Run polls it periodically and
// returns early (with whatever has been measured so far) once it is done.
// The caller distinguishes a completed run from an aborted one by checking
// ctx.Err().
func (c *Core) SetContext(ctx context.Context) { c.ctx = ctx }

// Pipeline exposes the attached predictor pipeline (for reports).
func (c *Core) Pipeline() *compose.Pipeline { return c.bp }

// Cycle returns the current simulated cycle.
func (c *Core) Cycle() uint64 { return c.cycle }

func (c *Core) robAt(i int) *robE {
	j := c.robHead + i
	if j >= len(c.rob) {
		j -= len(c.rob)
	}
	return &c.rob[j]
}

func (c *Core) pend(e *compose.Entry, n int) {
	p := c.pending[e.Seq()]
	if p == nil {
		if k := len(c.pendFree); k > 0 {
			p = c.pendFree[k-1]
			c.pendFree = c.pendFree[:k-1]
			*p = pendingEntry{entry: e}
		} else {
			p = &pendingEntry{entry: e}
		}
		c.pending[e.Seq()] = p
	}
	p.count += n
}

// unpend decrements an entry's outstanding instruction count; at zero the
// packet has fully committed (commit=true) or fully vanished, and the
// history-file entry retires or is dropped.
func (c *Core) unpend(seq uint64, commit bool) {
	p := c.pending[seq]
	if p == nil {
		return
	}
	p.count--
	if p.count > 0 {
		return
	}
	delete(c.pending, seq)
	if commit && p.entry.Valid() {
		c.bp.Commit(c.cycle, p.entry)
	}
	p.entry = nil
	c.pendFree = append(c.pendFree, p)
}

// tgtProvider names the sub-component whose target opinion the frontend
// accepted for f's slot, for H2P attribution of jumps and indirects.
func (c *Core) tgtProvider(f *fbInst) string {
	if f.entry != nil && f.slot < len(f.entry.Used) {
		if p := f.entry.Used[f.slot].TgtProvider; p != "" {
			return p
		}
	}
	return "(none)"
}

func classIQ(f *fbInst) uint8 {
	if f.inst == nil {
		return iqInt
	}
	switch f.inst.Class {
	case program.ClassLoad, program.ClassStore:
		return iqMem
	case program.ClassFP:
		return iqFP
	default:
		return iqInt
	}
}

// fbLen returns the fetch-buffer occupancy (the buffer drains via a head
// index so dequeues never shift or reallocate the backing array).
func (c *Core) fbLen() int { return len(c.fb) - c.fbHead }

// dispatch renames and inserts fetch-buffer instructions into the ROB and
// issue queues, up to the decode width, subject to structural limits.
func (c *Core) dispatch() {
	if c.fbLen() == 0 {
		c.S.FetchBubbles++
		return
	}
	for n := 0; n < c.cfg.DecodeWidth && c.fbLen() > 0; n++ {
		if c.robCount == len(c.rob) {
			return
		}
		f := &c.fb[c.fbHead]
		iq := classIQ(f)
		if c.iqUsed[iq] >= c.cfg.IQEntries {
			return
		}
		isLoad := f.inst != nil && f.inst.Class == program.ClassLoad
		isStore := f.inst != nil && f.inst.Class == program.ClassStore
		if isLoad && c.ldqUsed >= c.cfg.LDQEntries {
			return
		}
		if isStore && c.stqUsed >= c.cfg.STQEntries {
			return
		}
		idx := (c.robHead + c.robCount) % len(c.rob)
		r := &c.rob[idx]
		*r = robE{valid: true, fb: *f, iq: iq}
		if f.inst != nil {
			r.src[0] = c.lookupProducer(f.inst.Src1)
			r.src[1] = c.lookupProducer(f.inst.Src2)
			if f.inst.Dst != 0 {
				c.rename[f.inst.Dst%32] = renameEntry{idx: idx, seq: f.seq, valid: true}
			}
		} else {
			r.src[0].idx, r.src[1].idx = -1, -1
		}
		c.robCount++
		c.iqUsed[iq]++
		if isLoad {
			c.ldqUsed++
		}
		if isStore {
			c.stqUsed++
		}
		c.fbHead++
	}
}

func (c *Core) lookupProducer(reg uint8) prodRef {
	if reg == 0 {
		return prodRef{idx: -1}
	}
	re := c.rename[reg%32]
	if !re.valid {
		return prodRef{idx: -1}
	}
	return prodRef{idx: re.idx, seq: re.seq}
}

// ready reports whether an instruction's operands have been produced.
func (c *Core) ready(r *robE) bool {
	for _, s := range r.src {
		if s.idx < 0 {
			continue
		}
		p := &c.rob[s.idx]
		if p.valid && p.fb.seq == s.seq && p.state != 2 {
			return false
		}
	}
	return true
}

// execLatency returns the instruction's execution latency, touching the
// cache model for memory operations.
func (c *Core) execLatency(r *robE) int {
	if r.fb.inst == nil {
		return c.cfg.ALULat
	}
	switch r.fb.inst.Class {
	case program.ClassMul:
		return c.cfg.MulLat
	case program.ClassFP:
		return c.cfg.FPLat
	case program.ClassLoad:
		return c.mem.loadLatency(c.memAddr(r))
	case program.ClassStore:
		c.mem.store(c.memAddr(r))
		return c.cfg.ALULat
	default:
		return c.cfg.ALULat
	}
}

// memAddr produces the access address: the architectural address for
// correct-path instructions, a PC-derived pseudo-address for wrong-path ones
// (which realistically pollute the cache without touching oracle state).
func (c *Core) memAddr(r *robE) uint64 {
	if r.fb.hasStep && r.fb.step.Addr != 0 {
		return r.fb.step.Addr
	}
	return 0x4000_0000 + (r.fb.pc*0x9E3779B9)&0xF_FFF8
}

// issue selects ready instructions per issue queue, oldest first, up to each
// queue's issue width.
func (c *Core) issue() {
	budget := [numIQ]int{c.cfg.NumALU, c.cfg.NumMem, c.cfg.NumFP}
	left := c.iqUsed[iqInt] + c.iqUsed[iqMem] + c.iqUsed[iqFP]
	for i := 0; i < c.robCount && left > 0; i++ {
		r := c.robAt(i)
		if r.state != 0 {
			continue
		}
		left--
		if budget[r.iq] == 0 || !c.ready(r) {
			if c.cfg.InOrderIssue {
				return // in-order pipelines stall behind the oldest hazard
			}
			continue
		}
		budget[r.iq]--
		c.iqUsed[r.iq]--
		r.state = 1
		r.doneAt = c.cycle + uint64(c.execLatency(r))
	}
}

// writeback completes issued instructions and resolves correct-path control
// flow; a misprediction triggers the full flush-and-redirect sequence.
func (c *Core) writeback() {
	for i := 0; i < c.robCount; i++ {
		r := c.robAt(i)
		if r.state != 1 || r.doneAt > c.cycle {
			continue
		}
		r.state = 2
		f := &r.fb
		if !f.correct || f.predicated || f.inst == nil || !f.inst.Kind.IsCFI() {
			continue
		}
		res := c.bp.Resolve(c.cycle, f.entry, f.slot, f.step.Taken, f.step.Target)
		if !res.Mispredict {
			continue
		}
		r.misp, r.dirMisp, r.tgtMisp = true, res.DirMisp, res.TgtMisp
		c.flushAfter(r, res.Redirect)
	}
}

// flushAfter squashes everything younger than the resolving instruction:
// ROB tail, fetch buffer, in-flight fetch packets, rename mappings, RAS
// state, and the oracle window cursor; then redirects fetch.
func (c *Core) flushAfter(r *robE, redirect uint64) {
	branchSeq := r.fb.seq
	// ROB tail flush.
	for c.robCount > 0 {
		tail := c.robAt(c.robCount - 1)
		if tail.fb.seq <= branchSeq {
			break
		}
		if tail.state == 0 {
			c.iqUsed[tail.iq]--
		}
		if tail.fb.inst != nil {
			switch tail.fb.inst.Class {
			case program.ClassLoad:
				c.ldqUsed--
			case program.ClassStore:
				c.stqUsed--
			}
		}
		c.unpend(tail.fb.entrySeq, false)
		tail.valid = false
		c.robCount--
	}
	// Fetch buffer and in-flight packets are all younger than a resolving
	// branch (in-order frontend).
	for i := c.fbHead; i < len(c.fb); i++ {
		c.unpend(c.fb[i].entrySeq, false)
	}
	c.fb, c.fbHead = c.fb[:0], 0
	for _, pk := range c.inflight {
		c.freePkt(pk)
	}
	c.inflight = c.inflight[:0]
	// Rename table: drop mappings to flushed producers.
	for reg := range c.rename {
		if c.rename[reg].valid && c.rename[reg].seq > branchSeq {
			c.rename[reg] = renameEntry{}
		}
	}
	// RAS repair: restore the checkpoint of the oldest squashed RAS
	// operation.  An operation is squashed when its packet is younger than
	// the resolving branch, or when it sits in the *same* packet at a
	// younger slot (a wrong-path call/ret fetched right after the branch).
	eSeq := r.fb.entrySeq
	for i := c.rasHead; i < len(c.rasCps); i++ {
		cp := c.rasCps[i]
		if cp.entrySeq > eSeq || (cp.entrySeq == eSeq && cp.opSlot > r.fb.slot) {
			c.ras.Restore(cp.cp)
			c.rasCps = c.rasCps[:i]
			break
		}
	}
	// Oracle window: refetch re-serves the same steps.
	if r.fb.hasStep {
		c.steps.rewind(r.fb.stepIdx + 1)
	}
	c.onCorrect = true
	c.predOffActive = false
	c.fetchPC = redirect
	c.stallUntil = c.cycle + uint64(c.cfg.RedirectLatency)
	c.emitRedirect(eSeq, redirect)
}

// commit retires completed instructions in order.
func (c *Core) commit() {
	for n := 0; n < c.cfg.CommitWidth && c.robCount > 0; n++ {
		r := c.robAt(0)
		if r.state != 2 {
			return
		}
		f := &r.fb
		if f.correct {
			c.S.Instructions++
			c.lastCommitCycle = c.cycle
			if f.inst != nil && !f.predicated {
				switch f.inst.Kind {
				case program.KindBranch:
					c.S.Branches++
					prov := ""
					if f.entry != nil && f.slot < len(f.entry.Used) {
						prov = f.entry.Used[f.slot].DirProvider
					}
					if prov == "" {
						prov = "(default-nt)"
					}
					c.S.AddProviderHit(prov)
					if c.OnCommitBranch != nil {
						c.OnCommitBranch(f.pc, f.step.Taken, r.misp, prov)
					}
					if r.misp {
						c.S.Mispredicts++
						if r.dirMisp {
							c.S.DirMispredicts++
						} else {
							c.S.TgtMispredicts++
						}
						c.S.AddProviderMiss(prov)
						if c.ivl != nil {
							c.ivl.Mispredict(f.pc)
						}
					}
					if c.prof != nil {
						var ops []obs.Opinion
						if r.misp && f.entry != nil {
							c.opsScratch = c.bp.SlotOpinions(f.entry, f.slot, c.opsScratch)
							ops = c.opsScratch
						}
						c.prof.Record(f.pc, "branch", f.step.Taken, r.misp, prov, ops)
					}
				case program.KindJump, program.KindCall:
					c.S.Jumps++
					if r.misp {
						c.S.Mispredicts++
						c.S.TgtMispredicts++
					}
					if c.prof != nil {
						c.prof.Record(f.pc, "jump", true, r.misp, c.tgtProvider(f), nil)
					}
				case program.KindRet, program.KindIndirect:
					c.S.IndirectJumps++
					if r.misp {
						c.S.Mispredicts++
						c.S.TgtMispredicts++
					}
					if c.prof != nil {
						c.prof.Record(f.pc, "indirect", true, r.misp, c.tgtProvider(f), nil)
					}
				}
			}
			c.steps.prune(f.stepIdx)
		}
		if f.inst != nil {
			switch f.inst.Class {
			case program.ClassLoad:
				c.ldqUsed--
			case program.ClassStore:
				c.stqUsed--
			}
		}
		// Retire rename mapping if this instruction still owns it.
		if f.inst != nil && f.inst.Dst != 0 {
			re := &c.rename[f.inst.Dst%32]
			if re.valid && re.seq == f.seq {
				*re = renameEntry{}
			}
		}
		c.unpend(f.entrySeq, true)
		// Prune committed RAS checkpoints.
		for c.rasHead < len(c.rasCps) && c.rasCps[c.rasHead].entrySeq < f.entrySeq {
			c.rasHead++
		}
		r.valid = false
		c.robHead = (c.robHead + 1) % len(c.rob)
		c.robCount--
	}
}

// step advances the machine one cycle.
//
// fetch runs before frontendAdvance so that a deeper-stage override
// discovered this cycle redirects *next* cycle's fetch: the sequential
// fetch launched this cycle with the stale PC and gets squashed — the
// 1-bubble-per-override-level cost of the Alpha-style scheme (§IV-B).
// Only stage-1 predictions (computed combinationally within fetch) steer
// the immediately following fetch for free, which is the single-cycle
// uBTB's entire reason to exist.
func (c *Core) step() {
	c.cycle++
	c.bp.Tick(c.cycle)
	c.commit()
	c.writeback()
	c.issue()
	c.dispatch()
	c.fetch()
	c.frontendAdvance()
}

// ResetStats zeroes the performance counters without disturbing
// microarchitectural state — the standard warm-up methodology: run a
// warm-up slice, reset, then measure.
func (c *Core) ResetStats() {
	if c.met != nil || c.rprog != nil {
		c.flushMetrics()
	}
	c.S = stats.NewSim()
	c.metInsts = 0
	c.cycleBase = c.cycle
	c.histRepairBase = c.bp.C.HistRepairs
	if c.ivl != nil {
		// Discard warmup windows and restart numbering at the measurement
		// boundary, so window cycle/instruction bounds line up with S.
		c.ivl.Rebase(c.cycle, c.bp.C.ReAccepts, c.bp.C.Squashed, c.bp.C.HistRepairs)
	}
}

// Run simulates until maxInsts architectural instructions commit (counted
// since the last ResetStats) and returns the statistics.  It also enforces
// the deadlock watchdog.
func (c *Core) Run(maxInsts uint64) *stats.Sim {
	c.lastCommitCycle = c.cycle
	for c.S.Instructions < maxInsts {
		// Poll the cancellation context every 256 cycles: goroutines cannot
		// be killed, so a stuck or over-budget job exits cooperatively here.
		if c.ctx != nil && c.cycle&0xFF == 0 && c.ctx.Err() != nil {
			break
		}
		// Telemetry flush every 8K cycles keeps a live metrics endpoint,
		// progress line, or SSE progress stream moving through a long run at
		// negligible cost.
		if (c.met != nil || c.rprog != nil || c.ivl != nil) && c.cycle&0x1FFF == 0 {
			c.flushMetrics()
		}
		c.step()
		if c.cycle-c.lastCommitCycle > c.cfg.WatchdogCycles {
			panic(fmt.Sprintf("uarch: no commit for %d cycles at cycle %d (pc=%#x, rob=%d, fb=%d, inflight=%d)",
				c.cfg.WatchdogCycles, c.cycle, c.fetchPC, c.robCount, c.fbLen(), len(c.inflight)))
		}
	}
	c.S.Cycles = c.cycle - c.cycleBase
	c.S.HistoryRepairs = c.bp.C.HistRepairs - c.histRepairBase
	if c.met != nil || c.rprog != nil || c.ivl != nil {
		c.flushMetrics()
	}
	if c.ivl != nil {
		c.ivl.Finish(c.cycle, &c.S, c.bp.C.ReAccepts, c.bp.C.Squashed, c.bp.C.HistRepairs)
	}
	return &c.S
}
