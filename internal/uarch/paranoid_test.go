package uarch

import (
	"testing"

	"cobra/internal/compose"
	"cobra/internal/program"
)

// TestParanoidCleanOnRealRuns drives every Table I seed design through a
// mispredict-heavy workload with the invariant checker armed: a healthy
// pipeline must produce zero violations under every GHR policy.
func TestParanoidCleanOnRealRuns(t *testing.T) {
	b := program.NewBuilder("paranoid", 0x1000, 4, 5)
	b.Loop(50, func() {
		b.Ops(2, 0, 0, 0, nil)
		b.Hammock(0.5, 2, program.ClassALU)
	})
	prog := b.MustSeal()

	designs := []struct {
		name string
		topo string
		opt  compose.Options
	}{
		{"b2", "GTAG3 > BTB2 > BIM2", compose.Options{GHistBits: 16}},
		{"tourney", "TOURNEY3 > [GBIM2 > BTB2, LBIM2]",
			compose.Options{GHistBits: 32, LocalEntries: 256, LocalHistBits: 32}},
		{"tage-l", "LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1", compose.Options{GHistBits: 64}},
	}
	policies := []compose.GHRPolicy{compose.GHRRepair, compose.GHRRepairReplay, compose.GHRNoRepair}

	for _, d := range designs {
		for _, pol := range policies {
			t.Run(d.name+"/"+pol.String(), func(t *testing.T) {
				opt := d.opt
				opt.Paranoid = true
				opt.GHRPolicy = pol
				bp := mkPipeline(t, d.topo, opt)
				core := NewCore(DefaultConfig(), bp, prog, 7)
				s := core.Run(20000)
				if s.Mispredicts == 0 {
					t.Fatal("workload produced no mispredicts; repair paths untested")
				}
				if n := bp.ViolationCount(); n != 0 {
					for _, v := range bp.Violations()[:min(3, len(bp.Violations()))] {
						t.Errorf("violation: %v", v)
					}
					t.Fatalf("%d invariant violations on a healthy pipeline", n)
				}
			})
		}
	}
}
