// Package uarch is the host-core model: a cycle-level superscalar
// out-of-order core in the image of the 4-wide BOOM configuration of
// Table II, with its fetch unit driven by a COBRA-composed predictor
// pipeline (§IV-C, Fig. 6).
//
// The frontend fetches along the *predicted* path from the static program
// image — including wrong paths, which speculatively update the history
// providers exactly as in hardware — while architectural truth comes from
// the program oracle.  The backend models decode/dispatch width, a ROB,
// per-class issue queues and function units, load/store queues, and a
// two-level data-cache hierarchy; branches resolve at execute, triggering
// the composed pipeline's repair machinery.
//
// Substitutions versus the paper's FPGA-simulated BOOM (documented in
// DESIGN.md): instruction supply is modelled with a perfect I-cache (the
// paper's frontend includes a next-line prefetcher; branch-predictor
// comparisons are insensitive to this), and wrong-path branches do not
// themselves redirect fetch (they train and pollute, but their resolution
// is unknowable without wrong-path semantics).
package uarch

import "cobra/internal/pred"

// Config describes the core (defaults reproduce Table II).
type Config struct {
	Fetch pred.Config

	DecodeWidth int
	CommitWidth int
	ROBEntries  int
	IQEntries   int // per issue queue (INT, MEM, FP)
	NumALU      int // INT issue width
	NumMem      int // MEM issue width
	NumFP       int // FP issue width
	LDQEntries  int
	STQEntries  int

	FetchBufferCap int // instructions buffered between fetch and decode
	RASEntries     int

	// RedirectLatency is the extra delay between a backend branch
	// resolution and the first corrected fetch.
	RedirectLatency int

	// Execution latencies.
	ALULat, MulLat, FPLat int
	L1Lat, L2Lat, MemLat  int

	// Data cache geometry.
	LineBytes      int
	L1Sets, L1Ways int
	L2Sets, L2Ways int

	// SerializedFetch ends every fetch packet at its first control-flow
	// instruction, disabling superscalar prediction (§II-A: -15% IPC on
	// Dhrystone in a 4-wide BOOM).
	SerializedFetch bool

	// SFB enables the short-forwards-branch predication of §VI-C: forward
	// conditional branches spanning at most SFBMaxDist instructions with no
	// intervening CFI are decoded into set-flag/conditional-execute ops and
	// removed from the prediction problem.
	SFB        bool
	SFBMaxDist int

	// InOrderIssue restricts issue to program order (stall at the first
	// not-ready instruction), turning the backend into an in-order
	// pipeline.  Together with width-1 parameters this models a simple
	// scalar core — the second host-processor integration demonstrating
	// §IV-C's claim that a composed pipeline drops into any frontend.
	InOrderIssue bool

	// WatchdogCycles aborts the simulation if no instruction commits for
	// this many cycles (model-bug guard).
	WatchdogCycles uint64
}

// DefaultConfig reproduces the evaluated BOOM configuration (Table II):
// 16-byte fetch, 4-wide decode/commit, 128-entry ROB, 3x32-entry issue
// queues, 8 pipelines (4 ALU, 2 MEM, 2 FP), 32-entry LDQ/STQ, 32 KB 8-way
// L1D, 512 KB 8-way L2, and a flat main-memory latency standing in for the
// FASED LLC+DRAM model.
// InOrderConfig models a simple scalar in-order core (Rocket-class): 1-wide
// decode/commit, in-order single issue, small buffers — a second, very
// different host for the same composed predictor pipelines (§IV-C).
func InOrderConfig() Config {
	c := DefaultConfig()
	c.DecodeWidth = 1
	c.CommitWidth = 1
	c.ROBEntries = 8 // a short completion buffer, not a real ROB
	c.IQEntries = 4
	c.NumALU = 1
	c.NumMem = 1
	c.NumFP = 1
	c.LDQEntries = 4
	c.STQEntries = 4
	c.FetchBufferCap = 8
	c.InOrderIssue = true
	return c
}

func DefaultConfig() Config {
	return Config{
		Fetch:           pred.DefaultConfig(),
		DecodeWidth:     4,
		CommitWidth:     4,
		ROBEntries:      128,
		IQEntries:       32,
		NumALU:          4,
		NumMem:          2,
		NumFP:           2,
		LDQEntries:      32,
		STQEntries:      32,
		FetchBufferCap:  16,
		RASEntries:      32,
		RedirectLatency: 2,
		ALULat:          1,
		MulLat:          3,
		FPLat:           4,
		L1Lat:           3,
		L2Lat:           14,
		MemLat:          80,
		LineBytes:       64,
		L1Sets:          64, // 64 sets * 8 ways * 64 B = 32 KB
		L1Ways:          8,
		L2Sets:          1024, // 1024 * 8 * 64 B = 512 KB
		L2Ways:          8,
		SFBMaxDist:      8,
		WatchdogCycles:  200000,
	}
}
