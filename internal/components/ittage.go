package components

import (
	"fmt"

	"cobra/internal/bitutil"
	"cobra/internal/history"
	"cobra/internal/pred"
	"cobra/internal/sram"
)

// ITTAGE is an indirect-target predictor in the style of Seznec's ITTAGE:
// tagged tables indexed by geometrically longer global histories whose
// entries store *targets* rather than direction counters.  It demonstrates
// the interface's support for target-only partial predictions (§III-F): on
// a hit it overrides only the target field of the slot the entry was
// trained for, leaving directions to the rest of the pipeline — the same
// decoupling Fig. 3 shows for the BTB.
//
// A plain BTB remembers one target per (PC, way); polymorphic call sites
// and dense switch statements change targets with context, which is
// exactly what history-tagged target tables capture.
type ITTAGE struct {
	pred.NopEvents
	name    string
	latency int
	cfg     pred.Config
	tables  []*itTable
}

type itTable struct {
	idxBits uint
	tagBits uint
	histLen uint
	idxFold *bitutil.FoldedHistory
	tagFold *bitutil.FoldedHistory
	// Row: tag | valid | conf(2) | slot(2..) | target(btbTargetBits, packet-
	// relative like the BTB).
	mem *sram.Mem
}

// ITTAGEParams configures an ITTAGE instance.
type ITTAGEParams struct {
	Name         string
	Latency      int
	TableEntries []int
	HistLens     []uint
	TagBits      []uint
}

// DefaultITTAGEParams is a compact 3-table configuration.
func DefaultITTAGEParams(name string) ITTAGEParams {
	return ITTAGEParams{
		Name:         name,
		Latency:      3,
		TableEntries: []int{256, 256, 256},
		HistLens:     []uint{4, 12, 32},
		TagBits:      []uint{9, 10, 11},
	}
}

// NewITTAGE builds the predictor, registering folds with the global history
// provider.
func NewITTAGE(cfg pred.Config, g *history.Global, p ITTAGEParams) *ITTAGE {
	if len(p.TableEntries) == 0 || len(p.TableEntries) != len(p.HistLens) ||
		len(p.TableEntries) != len(p.TagBits) {
		panic("components: ITTAGE parameter slices must match and be non-empty")
	}
	if p.Latency < 1 {
		p.Latency = 3
	}
	t := &ITTAGE{name: p.Name, latency: p.Latency, cfg: cfg}
	slotBits := bitutil.Clog2(cfg.FetchWidth)
	if slotBits == 0 {
		slotBits = 1
	}
	for i := range p.TableEntries {
		if !bitutil.IsPow2(p.TableEntries[i]) {
			panic("components: ITTAGE table entries must be powers of two")
		}
		idxBits := bitutil.Clog2(p.TableEntries[i])
		t.tables = append(t.tables, &itTable{
			idxBits: idxBits,
			tagBits: p.TagBits[i],
			histLen: p.HistLens[i],
			idxFold: g.NewFold(p.HistLens[i], idxBits),
			tagFold: g.NewFold(p.HistLens[i], p.TagBits[i]),
			mem: sram.New(sram.Spec{
				Name:       p.Name + "_t",
				Entries:    p.TableEntries[i],
				Width:      int(p.TagBits[i]) + 1 + 2 + int(slotBits) + btbTargetBits,
				ReadPorts:  1,
				WritePorts: 1,
			}),
		})
	}
	return t
}

// Name implements pred.Subcomponent.
func (t *ITTAGE) Name() string { return t.name }

// Latency implements pred.Subcomponent.
func (t *ITTAGE) Latency() int { return t.latency }

// MetaWords implements pred.Subcomponent: provider index plus per-table
// index|tag words.
func (t *ITTAGE) MetaWords() int { return 1 + len(t.tables) }

// NumInputs implements pred.Subcomponent.
func (t *ITTAGE) NumInputs() int { return 1 }

func (tb *itTable) index(cfg pred.Config, pc uint64) uint64 {
	return (bitutil.MixPC(pc, cfg.PktOff(), tb.idxBits) ^ tb.idxFold.Fold()) & bitutil.Mask(tb.idxBits)
}

func (tb *itTable) tag(cfg pred.Config, pc uint64) uint64 {
	tg := (bitutil.MixPC(pc>>3, cfg.PktOff(), tb.tagBits) ^ tb.tagFold.Fold()) & bitutil.Mask(tb.tagBits)
	if tg == 0 {
		tg = 1
	}
	return tg
}

func (tb *itTable) unpack(cfg pred.Config, base, row uint64) (tag uint64, conf uint8, slot int, target uint64) {
	tag = row & bitutil.Mask(tb.tagBits)
	rest := row >> tb.tagBits
	valid := rest & 1
	conf = uint8(rest >> 1 & 3)
	slotBits := bitutil.Clog2(cfg.FetchWidth)
	if slotBits == 0 {
		slotBits = 1
	}
	slot = int(rest >> 3 & bitutil.Mask(slotBits))
	off := int64(rest>>(3+slotBits)) << (64 - btbTargetBits) >> (64 - btbTargetBits)
	target = uint64(int64(cfg.PacketBase(base)) + off<<cfg.InstOff())
	if valid == 0 {
		tag = 0
	}
	return tag, conf, slot, target
}

func (tb *itTable) pack(cfg pred.Config, base uint64, tag uint64, conf uint8, slot int, target uint64) uint64 {
	slotBits := bitutil.Clog2(cfg.FetchWidth)
	if slotBits == 0 {
		slotBits = 1
	}
	off := (int64(target) - int64(cfg.PacketBase(base))) >> cfg.InstOff()
	row := tag
	row |= 1 << tb.tagBits // valid
	row |= uint64(conf&3) << (tb.tagBits + 1)
	row |= (uint64(slot) & bitutil.Mask(slotBits)) << (tb.tagBits + 3)
	row |= (uint64(off) & bitutil.Mask(btbTargetBits)) << (tb.tagBits + 3 + slotBits)
	return row
}

// Predict implements pred.Subcomponent: the longest-history hit provides a
// target-only override for its trained slot.
func (t *ITTAGE) Predict(q *pred.Query) pred.Response {
	meta := make([]uint64, t.MetaWords())
	overlay := make(pred.Packet, t.cfg.FetchWidth)
	provider := -1
	var pSlot int
	var pTarget uint64
	var pConf uint8
	for i, tb := range t.tables {
		idx := tb.index(t.cfg, q.PC)
		tg := tb.tag(t.cfg, q.PC)
		row := tb.mem.Read(int(idx))
		meta[1+i] = idx | tg<<32
		rTag, conf, slot, target := tb.unpack(t.cfg, q.PC, row)
		if rTag == tg {
			provider, pSlot, pTarget, pConf = i, slot, target, conf
		}
	}
	if provider >= 0 && pConf >= 1 && pSlot < t.cfg.FetchWidth {
		overlay[pSlot] = pred.Pred{
			TgtValid:    true,
			Target:      pTarget,
			TgtProvider: t.name,
			IsCFI:       true,
			Kind:        pred.KindIndirect,
		}
	}
	meta[0] = uint64(uint8(provider + 1))
	return pred.Response{Overlay: overlay, Meta: meta}
}

// Update implements pred.Subcomponent: train on committed indirect control
// flow (returns are the RAS's job and are excluded).
func (t *ITTAGE) Update(e *pred.Event) {
	slot, s := -1, pred.SlotInfo{}
	for i := range e.Slots {
		if e.Slots[i].Valid && e.Slots[i].IsIndir && e.Slots[i].Taken {
			slot, s = i, e.Slots[i]
			break
		}
	}
	if slot < 0 {
		return
	}
	provider := int(uint8(e.Meta[0])) - 1
	if provider >= 0 {
		tb := t.tables[provider]
		idx := int(e.Meta[1+provider] & bitutil.Mask(32))
		tg := e.Meta[1+provider] >> 32
		row := tb.mem.Peek(idx)
		rTag, conf, pSlot, target := tb.unpack(t.cfg, e.PC, row)
		if rTag == tg {
			if pSlot == slot && target == s.Target {
				if conf < 3 {
					conf++
				}
				tb.mem.Write(idx, tb.pack(t.cfg, e.PC, tg, conf, slot, s.Target))
				return
			}
			if conf > 0 {
				tb.mem.Write(idx, tb.pack(t.cfg, e.PC, tg, conf-1, pSlot, target))
			} else {
				tb.mem.Write(idx, tb.pack(t.cfg, e.PC, tg, 1, slot, s.Target))
			}
			// Also try to allocate a longer-history entry below.
		} else {
			provider = -1
		}
	}
	if s.Mispredicted {
		// Allocate in the next-longer table (or the longest).
		start := provider + 1
		if start >= len(t.tables) {
			return
		}
		tb := t.tables[start]
		idx := int(e.Meta[1+start] & bitutil.Mask(32))
		tg := e.Meta[1+start] >> 32
		row := tb.mem.Peek(idx)
		_, conf, _, _ := tb.unpack(t.cfg, e.PC, row)
		if conf == 0 {
			tb.mem.Write(idx, tb.pack(t.cfg, e.PC, tg, 1, slot, s.Target))
		} else {
			tb.mem.Write(idx, row&^(uint64(3)<<(tb.tagBits+1))|
				uint64(conf-1)<<(tb.tagBits+1)) // decay
		}
	}
}

// Mispredict gives a fast training path on indirect target misses.
func (t *ITTAGE) Mispredict(e *pred.Event) { t.Update(e) }

// Reset implements pred.Subcomponent.
func (t *ITTAGE) Reset() {
	for _, tb := range t.tables {
		tb.mem.Reset()
	}
}

// Tick implements pred.Subcomponent.
func (t *ITTAGE) Tick(cycle uint64) {
	for _, tb := range t.tables {
		tb.mem.Tick(cycle)
	}
}

// Mems exposes the backing memories for the energy model.
func (t *ITTAGE) Mems() []*sram.Mem {
	out := make([]*sram.Mem, len(t.tables))
	for i, tb := range t.tables {
		out[i] = tb.mem
	}
	return out
}

// Budget implements pred.Subcomponent.
func (t *ITTAGE) Budget() sram.Budget {
	var bg sram.Budget
	for _, tb := range t.tables {
		bg.Mems = append(bg.Mems, tb.mem.Spec())
		bg.FlopBits += int(tb.idxFold.Width() + tb.tagFold.Width())
	}
	return bg
}

var _ pred.Subcomponent = (*ITTAGE)(nil)

func init() {
	Register("ITGT", func(env Env, name string, latency, size int) (pred.Subcomponent, error) {
		p := DefaultITTAGEParams(name)
		if latency > 0 {
			p.Latency = latency
		}
		for _, hl := range p.HistLens {
			if hl > env.Global.Len() {
				return nil, fmt.Errorf("components: %s needs %d history bits but the global history register has %d",
					name, hl, env.Global.Len())
			}
		}
		if size > 0 {
			for i := range p.TableEntries {
				v := 64
				for v*2 <= size/len(p.TableEntries) {
					v *= 2
				}
				p.TableEntries[i] = v
			}
		}
		return NewITTAGE(env.Cfg, env.Global, p), nil
	})
}
