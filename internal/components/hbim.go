// Package components is the COBRA sub-component starter library (§III-G):
// history-indexed bimodal counter tables, BTBs, a micro-BTB, a partially
// tagged global table, a TAGE predictor, a tournament selector, and a loop
// predictor — plus the extensions the paper names as implementable under the
// same interface (perceptron, statistical corrector) and a return-address
// stack kept outside the composed pipeline, as in the paper.
//
// Every component implements pred.Subcomponent.  Components are superscalar
// where the hardware would be (counter tables and BTBs read one row holding
// one entry per fetch-packet slot), and single-prediction where the paper
// says that is natural (loop, perceptron).  All tables are sram.Mem backed
// so storage and port pressure roll up into the area model.
package components

import (
	"cobra/internal/bitutil"
	"cobra/internal/pred"
	"cobra/internal/sram"
)

// IndexSource selects what an HBIM counter table hashes into its row index
// (the "parameterized indexing option" of §III-G.1).
type IndexSource int

const (
	// IndexPC indexes purely by fetch PC (classic bimodal).
	IndexPC IndexSource = iota
	// IndexGlobal indexes by global history XOR PC (gshare style).
	IndexGlobal
	// IndexLocal indexes by the per-PC local history XOR PC.
	IndexLocal
	// IndexGSelect concatenates PC and global history bits.
	IndexGSelect
	// IndexPath indexes by path history XOR PC.
	IndexPath
)

func (s IndexSource) String() string {
	switch s {
	case IndexPC:
		return "pc"
	case IndexGlobal:
		return "global"
	case IndexLocal:
		return "local"
	case IndexGSelect:
		return "gselect"
	case IndexPath:
		return "path"
	}
	return "unknown"
}

// HBIM is the history-indexed bimodal counter table.  One row holds
// FetchWidth 2-bit counters so adjacent branches in a packet do not alias
// onto a single counter (§III-C).  The metadata field stores the counters
// read at predict time so update needs no second read port (§III-D).
type HBIM struct {
	pred.NopEvents
	name    string
	latency int
	cfg     pred.Config
	source  IndexSource
	ctrBits uint
	idxBits uint
	histLen uint // history bits consumed (Global/Local/GSelect/Path sources)
	mem     *sram.Mem

	scratch pred.Packet // reused overlay buffer (fully rewritten per predict)
	metaBuf [1]uint64
}

// HBIMParams configures an HBIM instance.
type HBIMParams struct {
	Name    string
	Latency int
	Entries int // rows; each row holds FetchWidth counters
	Source  IndexSource
	HistLen uint // history bits folded into the index (ignored for IndexPC)
	CtrBits uint // counter width, default 2
}

// NewHBIM builds a counter table.
func NewHBIM(cfg pred.Config, p HBIMParams) *HBIM {
	if !bitutil.IsPow2(p.Entries) {
		panic("components: HBIM entries must be a power of two")
	}
	if p.CtrBits == 0 {
		p.CtrBits = 2
	}
	if p.Latency < 1 {
		p.Latency = 2
	}
	idxBits := bitutil.Clog2(p.Entries)
	if p.Source != IndexPC && p.HistLen == 0 {
		p.HistLen = idxBits
	}
	return &HBIM{
		name:    p.Name,
		latency: p.Latency,
		cfg:     cfg,
		source:  p.Source,
		ctrBits: p.CtrBits,
		idxBits: idxBits,
		histLen: p.HistLen,
		mem: sram.New(sram.Spec{
			Name:       p.Name,
			Entries:    p.Entries,
			Width:      cfg.FetchWidth * int(p.CtrBits),
			ReadPorts:  1,
			WritePorts: 1,
		}),
		scratch: make(pred.Packet, cfg.FetchWidth),
	}
}

// Name implements pred.Subcomponent.
func (h *HBIM) Name() string { return h.name }

// Latency implements pred.Subcomponent.
func (h *HBIM) Latency() int { return h.latency }

// MetaWords implements pred.Subcomponent: one word packs the row counters.
func (h *HBIM) MetaWords() int { return 1 }

// NumInputs implements pred.Subcomponent.
func (h *HBIM) NumInputs() int { return 1 }

// Source returns the configured index source.
func (h *HBIM) Source() IndexSource { return h.source }

// UsesLocalHistory tells the composer whether it must generate a local
// history provider for this component (§IV-B.3).
func (h *HBIM) UsesLocalHistory() bool { return h.source == IndexLocal }

func (h *HBIM) index(pc, ghist, lhist, path uint64) int {
	pcPart := bitutil.MixPC(pc, h.cfg.PktOff(), h.idxBits)
	var idx uint64
	switch h.source {
	case IndexPC:
		idx = pcPart
	case IndexGlobal:
		idx = pcPart ^ bitutil.XorFold(ghist&bitutil.Mask(h.histLen), h.idxBits)
	case IndexLocal:
		idx = pcPart ^ bitutil.XorFold(lhist&bitutil.Mask(h.histLen), h.idxBits)
	case IndexGSelect:
		// Concatenate: low half PC, high half history.
		half := h.idxBits / 2
		idx = (pcPart & bitutil.Mask(half)) |
			((ghist & bitutil.Mask(h.idxBits-half)) << half)
	case IndexPath:
		idx = pcPart ^ bitutil.XorFold(path&bitutil.Mask(h.histLen), h.idxBits)
	}
	return int(idx & bitutil.Mask(h.idxBits))
}

func (h *HBIM) ctrAt(row uint64, slot int) uint8 {
	return uint8(bitutil.Bits(row, uint(slot)*h.ctrBits, h.ctrBits))
}

func (h *HBIM) setCtr(row uint64, slot int, c uint8) uint64 {
	sh := uint(slot) * h.ctrBits
	row &^= bitutil.Mask(h.ctrBits) << sh
	return row | (uint64(c)&bitutil.Mask(h.ctrBits))<<sh
}

// Predict implements pred.Subcomponent: an untagged table provides a base
// direction for every slot of the packet (§III-F).
func (h *HBIM) Predict(q *pred.Query) pred.Response {
	idx := h.index(q.PC, q.GHist, q.LHist, q.Path)
	row := h.mem.Read(idx)
	overlay := h.scratch
	for i := 0; i < h.cfg.FetchWidth; i++ {
		overlay[i] = pred.Pred{
			DirValid:    true,
			Taken:       bitutil.CtrTaken(h.ctrAt(row, i), h.ctrBits),
			DirProvider: h.name,
		}
	}
	h.metaBuf[0] = row
	return pred.Response{Overlay: overlay, Meta: h.metaBuf[:]}
}

// Mispredict implements pred.Subcomponent: the "fast" immediate update of
// §III-E.  Counter tables tolerate delayed updates but benefit from fast
// correction on tight loops, where commit-time-only training lags several
// in-flight iterations behind.
func (h *HBIM) Mispredict(e *pred.Event) { h.Update(e) }

// Update implements pred.Subcomponent: commit-time training.  The row
// contents come back via metadata, so the update is a pure read-modify-write
// of predict-time data with a single write port (§III-D).
func (h *HBIM) Update(e *pred.Event) {
	idx := h.index(e.PC, e.GHist, e.LHist, e.Path)
	row := e.Meta[0]
	dirty := false
	for i, s := range e.Slots {
		if !s.Valid || !s.IsBranch || i >= h.cfg.FetchWidth {
			continue
		}
		c := bitutil.CtrUpdate(h.ctrAt(row, i), s.Taken, h.ctrBits)
		row = h.setCtr(row, i, c)
		dirty = true
	}
	if dirty {
		h.mem.Write(idx, row)
	}
}

// Reset implements pred.Subcomponent.
func (h *HBIM) Reset() { h.mem.Reset() }

// Tick implements pred.Subcomponent.
func (h *HBIM) Tick(cycle uint64) { h.mem.Tick(cycle) }

// Budget implements pred.Subcomponent.
func (h *HBIM) Budget() sram.Budget {
	return sram.Budget{Mems: []sram.Spec{h.mem.Spec()}}
}

// Mems exposes the backing memories for the energy model.
func (h *HBIM) Mems() []*sram.Mem { return []*sram.Mem{h.mem} }

var _ pred.Subcomponent = (*HBIM)(nil)
