package components

import (
	"cobra/internal/bitutil"
	"cobra/internal/pred"
	"cobra/internal/sram"
)

// StatCorrector is a small statistical corrector in the spirit of
// TAGE-SC-L's SC stage — the component the paper's TAGE-L design explicitly
// omits ("only with no statistical corrector") and which we provide as the
// natural extension experiment.  It watches the direction arriving on
// predict_in (normally TAGE's output) and learns, per (PC, history) context,
// whether that prediction is statistically wrong; when its signed counter is
// confident and disagrees, it inverts the incoming direction.
type StatCorrector struct {
	pred.NopEvents
	name    string
	latency int
	cfg     pred.Config
	idxBits uint
	histLen uint
	thresh  int8
	mem     *sram.Mem // signed 6-bit counters, offset-binary storage

	scratch pred.Packet
	metaBuf [2]uint64
}

// StatCorrectorParams configures a statistical corrector.
type StatCorrectorParams struct {
	Name    string
	Latency int
	Entries int
	HistLen uint
}

// NewStatCorrector builds the corrector table.
func NewStatCorrector(cfg pred.Config, p StatCorrectorParams) *StatCorrector {
	if !bitutil.IsPow2(p.Entries) {
		panic("components: StatCorrector entries must be a power of two")
	}
	if p.HistLen == 0 {
		p.HistLen = 12
	}
	if p.Latency < 1 {
		p.Latency = 3
	}
	return &StatCorrector{
		name:    p.Name,
		latency: p.Latency,
		cfg:     cfg,
		idxBits: bitutil.Clog2(p.Entries),
		histLen: p.HistLen,
		thresh:  10,
		mem: sram.New(sram.Spec{
			Name:       p.Name,
			Entries:    p.Entries,
			Width:      6 * cfg.FetchWidth,
			ReadPorts:  1,
			WritePorts: 1,
		}),
		scratch: make(pred.Packet, cfg.FetchWidth),
	}
}

// Name implements pred.Subcomponent.
func (c *StatCorrector) Name() string { return c.name }

// Latency implements pred.Subcomponent.
func (c *StatCorrector) Latency() int { return c.latency }

// MetaWords implements pred.Subcomponent: row + index + incoming directions.
func (c *StatCorrector) MetaWords() int { return 2 }

// NumInputs implements pred.Subcomponent.
func (c *StatCorrector) NumInputs() int { return 1 }

func (c *StatCorrector) index(pc, ghist uint64) int {
	pcPart := bitutil.MixPC(pc, c.cfg.PktOff(), c.idxBits)
	h := bitutil.XorFold(ghist&bitutil.Mask(c.histLen), c.idxBits)
	return int((pcPart ^ h) & bitutil.Mask(c.idxBits))
}

// Counters are 6-bit two's complement so a freshly zeroed row decodes to
// the neutral state (no inversion), not to strong disagreement.
func scGet(row uint64, slot int) int8 {
	raw := uint8(bitutil.Bits(row, uint(slot)*6, 6))
	return int8(raw<<2) >> 2 // sign-extend 6 bits
}

func scSet(row uint64, slot int, v int8) uint64 {
	sh := uint(slot) * 6
	row &^= bitutil.Mask(6) << sh
	return row | uint64(uint8(v)&0x3f)<<sh
}

// Predict implements pred.Subcomponent: invert incoming directions the
// corrector strongly distrusts.
func (c *StatCorrector) Predict(q *pred.Query) pred.Response {
	idx := c.index(q.PC, q.GHist)
	row := c.mem.Read(idx)
	overlay := c.scratch
	for i := range overlay {
		overlay[i] = pred.Pred{}
	}
	var in pred.Packet
	if len(q.In) > 0 {
		in = q.In[0]
	}
	var inDirs uint64
	for i := 0; i < c.cfg.FetchWidth; i++ {
		var p pred.Pred
		if i < len(in) {
			p = in[i]
		}
		if !p.DirValid {
			continue
		}
		inDirs |= 1 << uint(2*i)
		if p.Taken {
			inDirs |= 2 << uint(2*i)
		}
		ctr := scGet(row, i)
		// The counter tracks agreement with the incoming prediction: deeply
		// negative means "incoming direction is usually wrong here".
		if ctr <= -c.thresh {
			overlay[i] = pred.Pred{
				DirValid:    true,
				Taken:       !p.Taken,
				DirProvider: c.name,
			}
		}
	}
	c.metaBuf[0] = row
	c.metaBuf[1] = uint64(idx) | inDirs<<32
	return pred.Response{Overlay: overlay, Meta: c.metaBuf[:]}
}

// Update implements pred.Subcomponent: per-slot agreement training.
func (c *StatCorrector) Update(e *pred.Event) {
	row := e.Meta[0]
	idx := int(e.Meta[1] & bitutil.Mask(32))
	inDirs := e.Meta[1] >> 32
	dirty := false
	for i, s := range e.Slots {
		if !s.Valid || !s.IsBranch || i >= c.cfg.FetchWidth {
			continue
		}
		if inDirs>>(2*i)&1 != 1 {
			continue // no incoming direction at predict time
		}
		inTaken := inDirs>>(2*i)&2 == 2
		ctr := scGet(row, i)
		if inTaken == s.Taken {
			ctr = satAddBound(ctr, 1, 31)
		} else {
			ctr = satAddBound(ctr, -1, 31)
		}
		row = scSet(row, i, ctr)
		dirty = true
	}
	if dirty {
		c.mem.Write(idx, row)
	}
}

func satAddBound(a, d, bound int8) int8 {
	s := int16(a) + int16(d)
	if s > int16(bound) {
		return bound
	}
	if s < int16(-bound-1) {
		return -bound - 1
	}
	return int8(s)
}

// Reset implements pred.Subcomponent.
func (c *StatCorrector) Reset() { c.mem.Reset() }

// Tick implements pred.Subcomponent.
func (c *StatCorrector) Tick(cycle uint64) { c.mem.Tick(cycle) }

// Mems exposes the backing memories for the energy model.
func (c *StatCorrector) Mems() []*sram.Mem { return []*sram.Mem{c.mem} }

// Budget implements pred.Subcomponent.
func (c *StatCorrector) Budget() sram.Budget {
	return sram.Budget{Mems: []sram.Spec{c.mem.Spec()}}
}

var _ pred.Subcomponent = (*StatCorrector)(nil)
