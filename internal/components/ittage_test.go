package components

import (
	"testing"

	"cobra/internal/history"
	"cobra/internal/pred"
)

// itHarness drives an ITTAGE with a live global history, simulating a
// context-dependent indirect jump.
type itHarness struct {
	g   *history.Global
	it  *ITTAGE
	cfg pred.Config
}

func newITHarness() *itHarness {
	g := history.NewGlobal(64)
	return &itHarness{
		g:   g,
		it:  NewITTAGE(pred.DefaultConfig(), g, DefaultITTAGEParams("itgt")),
		cfg: pred.DefaultConfig(),
	}
}

// step predicts the indirect at (pc, slot), commits the actual target, and
// shifts hist (the surrounding branch context) into the GHR.
func (h *itHarness) step(pc uint64, slot int, target uint64, ctx bool) (predicted uint64, hit bool) {
	q := &pred.Query{PC: pc, GHist: h.g.Bits(64), GRaw: h.g.Raw()}
	r := h.it.Predict(q)
	p := r.Overlay[slot]
	predicted, hit = p.Target, p.TgtValid
	slots := make([]pred.SlotInfo, h.cfg.FetchWidth)
	slots[slot] = pred.SlotInfo{
		Valid: true, IsIndir: true, Taken: true, Target: target,
		PC:           h.cfg.SlotPC(pc, slot),
		Mispredicted: !hit || predicted != target,
	}
	meta := append([]uint64(nil), r.Meta...)
	h.it.Update(&pred.Event{PC: pc, Meta: meta, Slots: slots})
	h.g.Shift(ctx)
	return predicted, hit
}

func TestITTAGELearnsContextDependentTargets(t *testing.T) {
	h := newITHarness()
	pc := uint64(0x1000)
	// Target depends on the most recent branch outcome: ctx=true -> 0x4000,
	// ctx=false -> 0x5000.  A plain BTB cannot track this; history-tagged
	// target tables can.
	correct, total := 0, 0
	ctx := false
	for i := 0; i < 4000; i++ {
		target := uint64(0x5000)
		if ctx { // context shifted last iteration decides this target
			target = 0x4000
		}
		predicted, hit := h.step(pc, 1, target, i%2 == 0)
		if i >= 2000 {
			total++
			if hit && predicted == target {
				correct++
			}
		}
		ctx = i%2 == 0
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Errorf("ITTAGE context-target accuracy = %.3f, want >= 0.9", acc)
	}
}

func TestITTAGESilentWithoutTraining(t *testing.T) {
	h := newITHarness()
	r := h.it.Predict(&pred.Query{PC: 0x2000})
	for i, p := range r.Overlay {
		if p.TgtValid || p.DirValid {
			t.Errorf("slot %d: fresh ITTAGE must stay silent", i)
		}
	}
}

func TestITTAGETargetOnlyOverride(t *testing.T) {
	h := newITHarness()
	pc := uint64(0x3000)
	for i := 0; i < 50; i++ {
		h.step(pc, 2, 0x7000, true)
	}
	r := h.it.Predict(&pred.Query{PC: pc, GHist: h.g.Bits(64)})
	p := r.Overlay[2]
	if !p.TgtValid {
		t.Fatal("expected a target hit after training")
	}
	if p.DirValid {
		t.Error("ITTAGE must not assert directions (§III-F partial prediction)")
	}
	if p.Kind != pred.KindIndirect {
		t.Errorf("kind = %v", p.Kind)
	}
}

func TestITTAGERegistryAndConformance(t *testing.T) {
	c, err := Build(env(), "ITGT3")
	if err != nil {
		t.Fatal(err)
	}
	if err := pred.Validate(c); err != nil {
		t.Fatal(err)
	}
	if c.Latency() != 3 || c.Budget().TotalBits() <= 0 {
		t.Error("registry-built ITTAGE misconfigured")
	}
	if _, err := Build(Env{Cfg: cfg(), Global: history.NewGlobal(8)}, "ITGT3"); err == nil {
		t.Error("short GHR must be rejected")
	}
	small, err := Build(env(), "ITGT3(192)")
	if err != nil {
		t.Fatal(err)
	}
	if small.Budget().TotalBits() >= c.Budget().TotalBits() {
		t.Error("scaled-down ITTAGE should be smaller")
	}
}

func TestITTAGEPackRoundTrip(t *testing.T) {
	g := history.NewGlobal(64)
	it := NewITTAGE(pred.DefaultConfig(), g, DefaultITTAGEParams("itgt"))
	tb := it.tables[0]
	cfgv := pred.DefaultConfig()
	base := uint64(0x1230)
	row := tb.pack(cfgv, base, 0x55, 2, 3, 0x4564)
	tag, conf, slot, target := tb.unpack(cfgv, base, row)
	if tag != 0x55 || conf != 2 || slot != 3 || target != 0x4564 {
		t.Errorf("round trip: tag=%#x conf=%d slot=%d target=%#x", tag, conf, slot, target)
	}
}
