package components

import (
	"cobra/internal/bitutil"
	"cobra/internal/pred"
	"cobra/internal/sram"
)

// Tourney is the tournament selector of §III-G.3: a 2-bit counter table,
// indexed by global history, that picks the winning sub-predictor between
// its two predict_in edges (input 0 wins when the counter is low, input 1
// when high — the Alpha 21264 arrangement with input 0 = global side,
// input 1 = local side).
//
// Per the paper, "the selector uses the metadata field to track the
// predictions made by the sub-predictors to determine an update for the
// counter table": at update time the two inputs' per-slot directions come
// back via metadata so the selector can train toward whichever side was
// right, without re-querying the sub-predictors.
type Tourney struct {
	pred.NopEvents
	name    string
	latency int
	cfg     pred.Config
	idxBits uint
	histLen uint
	mem     *sram.Mem

	scratch pred.Packet
	metaBuf [2]uint64
}

// TourneyParams configures a tournament selector.
type TourneyParams struct {
	Name    string
	Latency int
	Entries int  // selector counters (one per row; selection is per packet)
	HistLen uint // global history bits in the index
}

// NewTourney builds the selector.
func NewTourney(cfg pred.Config, p TourneyParams) *Tourney {
	if !bitutil.IsPow2(p.Entries) {
		panic("components: Tourney entries must be a power of two")
	}
	if p.Latency < 1 {
		p.Latency = 3
	}
	idxBits := bitutil.Clog2(p.Entries)
	if p.HistLen == 0 {
		p.HistLen = idxBits
	}
	return &Tourney{
		name:    p.Name,
		latency: p.Latency,
		cfg:     cfg,
		idxBits: idxBits,
		histLen: p.HistLen,
		mem: sram.New(sram.Spec{
			Name:       p.Name,
			Entries:    p.Entries,
			Width:      2,
			ReadPorts:  1,
			WritePorts: 1,
		}),
		scratch: make(pred.Packet, cfg.FetchWidth),
	}
}

// Name implements pred.Subcomponent.
func (t *Tourney) Name() string { return t.name }

// Latency implements pred.Subcomponent.
func (t *Tourney) Latency() int { return t.latency }

// MetaWords implements pred.Subcomponent: word 0 packs the selector counter
// and index; word 1 packs per-slot input directions/valids.
func (t *Tourney) MetaWords() int { return 2 }

// NumInputs implements pred.Subcomponent: an arbitration scheme (§III-F).
func (t *Tourney) NumInputs() int { return 2 }

func (t *Tourney) index(pc, ghist uint64) int {
	pcPart := bitutil.MixPC(pc, t.cfg.PktOff(), t.idxBits)
	h := bitutil.XorFold(ghist&bitutil.Mask(t.histLen), t.idxBits)
	return int((pcPart ^ h) & bitutil.Mask(t.idxBits))
}

// Predict implements pred.Subcomponent: choose per slot between the two
// inputs' directions.  Slots where only one input has an opinion use that
// opinion; slots where neither does pass through.
func (t *Tourney) Predict(q *pred.Query) pred.Response {
	idx := t.index(q.PC, q.GHist)
	ctr := uint8(t.mem.Read(idx))
	useOne := bitutil.CtrTaken(ctr, 2)
	overlay := t.scratch
	for i := range overlay {
		overlay[i] = pred.Pred{}
	}

	var in0, in1 pred.Packet
	if len(q.In) > 0 {
		in0 = q.In[0]
	}
	if len(q.In) > 1 {
		in1 = q.In[1]
	}
	var slotMeta uint64
	for i := 0; i < t.cfg.FetchWidth; i++ {
		var p0, p1 pred.Pred
		if i < len(in0) {
			p0 = in0[i]
		}
		if i < len(in1) {
			p1 = in1[i]
		}
		// Pack: [v0 d0 v1 d1] per slot for the update.
		var m uint64
		if p0.DirValid {
			m |= 1
			if p0.Taken {
				m |= 2
			}
		}
		if p1.DirValid {
			m |= 4
			if p1.Taken {
				m |= 8
			}
		}
		slotMeta |= m << uint(4*i)

		chosen := p0
		if (useOne && p1.DirValid) || !p0.DirValid {
			chosen = p1
		}
		if chosen.DirValid {
			overlay[i] = pred.Pred{
				DirValid:    true,
				Taken:       chosen.Taken,
				DirProvider: t.name,
				IsCFI:       chosen.IsCFI,
				Kind:        chosen.Kind,
			}
		}
		// Targets (and CFI kind knowledge) pass through from input 0's
		// chain — the selector only arbitrates directions.
		if p0.TgtValid {
			overlay[i].TgtValid = true
			overlay[i].Target = p0.Target
			overlay[i].TgtProvider = p0.TgtProvider
		}
		if p0.IsCFI {
			overlay[i].IsCFI = true
			overlay[i].Kind = p0.Kind
		}
	}
	t.metaBuf[0] = uint64(ctr) | uint64(idx)<<8
	t.metaBuf[1] = slotMeta
	return pred.Response{Overlay: overlay, Meta: t.metaBuf[:]}
}

// Update implements pred.Subcomponent: train the selector toward whichever
// sub-predictor was correct, only when they disagreed (McFarling's rule).
func (t *Tourney) Update(e *pred.Event) {
	ctr := uint8(e.Meta[0] & 0xff)
	idx := int(e.Meta[0] >> 8)
	slotMeta := e.Meta[1]
	dirty := false
	for i, s := range e.Slots {
		if !s.Valid || !s.IsBranch || i >= t.cfg.FetchWidth {
			continue
		}
		m := slotMeta >> uint(4*i)
		v0, d0 := m&1 == 1, m&2 == 2
		v1, d1 := m&4 == 4, m&8 == 8
		if !v0 || !v1 || d0 == d1 {
			continue
		}
		// They disagreed: move toward the correct side.
		ctr = bitutil.CtrUpdate(ctr, d1 == s.Taken, 2)
		dirty = true
	}
	if dirty {
		t.mem.Write(idx, uint64(ctr))
	}
}

// Reset implements pred.Subcomponent.
func (t *Tourney) Reset() { t.mem.Reset() }

// Tick implements pred.Subcomponent.
func (t *Tourney) Tick(cycle uint64) { t.mem.Tick(cycle) }

// Mems exposes the backing memories for the energy model.
func (t *Tourney) Mems() []*sram.Mem { return []*sram.Mem{t.mem} }

// Budget implements pred.Subcomponent.
func (t *Tourney) Budget() sram.Budget {
	return sram.Budget{Mems: []sram.Spec{t.mem.Spec()}}
}

var _ pred.Subcomponent = (*Tourney)(nil)
