package components

import (
	"cobra/internal/bitutil"
	"cobra/internal/history"
	"cobra/internal/pred"
	"cobra/internal/sram"
)

// GTAG is a single partially tagged table of global-history-indexed
// counters — the backing predictor of the original BOOM core, which the
// paper's "B2" topology reproduces (GTAG3 > BTB2 > BIM2).  A row covers one
// fetch packet: a partial tag plus FetchWidth 2-bit counters.  On a tag hit
// the row's counters provide directions for the whole packet; on a miss the
// component passes predict_in through.
//
// Like TAGE, GTAG learns global-history correlations and is "tolerant to
// delayed commit-time updates" (§III-E), so it uses only the update signal.
// The metadata stores the read row so update needs no second read port.
type GTAG struct {
	pred.NopEvents
	name    string
	latency int
	cfg     pred.Config
	idxBits uint
	tagBits uint
	ctrBits uint
	histLen uint

	idxFold *bitutil.FoldedHistory
	tagFold *bitutil.FoldedHistory
	mem     *sram.Mem // per row: tag | valid | counters

	scratch pred.Packet
	metaBuf [2]uint64
}

// GTAGParams configures a GTAG instance.
type GTAGParams struct {
	Name    string
	Latency int
	Entries int  // rows (each covering one fetch packet)
	TagBits uint // partial tag width (default 8)
	HistLen uint // global history length folded into index/tag (default 16)
}

// NewGTAG builds the partially tagged table.  The component registers its
// folded-history registers with the supplied global history provider, which
// keeps them in sync through speculation and repair.
func NewGTAG(cfg pred.Config, g *history.Global, p GTAGParams) *GTAG {
	if !bitutil.IsPow2(p.Entries) {
		panic("components: GTAG entries must be a power of two")
	}
	if p.TagBits == 0 {
		p.TagBits = 8
	}
	if p.HistLen == 0 {
		p.HistLen = 16
	}
	if p.Latency < 1 {
		p.Latency = 3
	}
	idxBits := bitutil.Clog2(p.Entries)
	ctrBits := uint(2)
	return &GTAG{
		name:    p.Name,
		latency: p.Latency,
		cfg:     cfg,
		idxBits: idxBits,
		tagBits: p.TagBits,
		ctrBits: ctrBits,
		histLen: p.HistLen,
		idxFold: g.NewFold(p.HistLen, idxBits),
		tagFold: g.NewFold(p.HistLen, p.TagBits),
		mem: sram.New(sram.Spec{
			Name:       p.Name,
			Entries:    p.Entries,
			Width:      int(p.TagBits) + 1 + cfg.FetchWidth*int(ctrBits),
			ReadPorts:  1,
			WritePorts: 1,
		}),
		scratch: make(pred.Packet, cfg.FetchWidth),
	}
}

// Name implements pred.Subcomponent.
func (g *GTAG) Name() string { return g.name }

// Latency implements pred.Subcomponent.
func (g *GTAG) Latency() int { return g.latency }

// MetaWords implements pred.Subcomponent: word 0 = row | hit<<63; word 1 =
// index | tag<<32 (regenerating them at commit time would need the
// predict-time folds, which have moved on).
func (g *GTAG) MetaWords() int { return 2 }

// NumInputs implements pred.Subcomponent.
func (g *GTAG) NumInputs() int { return 1 }

func (g *GTAG) index(pc uint64) uint64 {
	return (bitutil.MixPC(pc, g.cfg.PktOff(), g.idxBits) ^ g.idxFold.Fold()) & bitutil.Mask(g.idxBits)
}

func (g *GTAG) tag(pc uint64) uint64 {
	return (bitutil.MixPC(pc>>g.idxBits, g.cfg.PktOff(), g.tagBits) ^ g.tagFold.Fold()) & bitutil.Mask(g.tagBits)
}

func (g *GTAG) rowTag(row uint64) uint64 { return row & bitutil.Mask(g.tagBits) }
func (g *GTAG) rowValid(row uint64) bool { return row>>g.tagBits&1 == 1 }
func (g *GTAG) ctrShift(slot int) uint   { return g.tagBits + 1 + uint(slot)*g.ctrBits }
func (g *GTAG) rowCtr(row uint64, slot int) uint8 {
	return uint8(bitutil.Bits(row, g.ctrShift(slot), g.ctrBits))
}

func (g *GTAG) setRowCtr(row uint64, slot int, c uint8) uint64 {
	sh := g.ctrShift(slot)
	row &^= bitutil.Mask(g.ctrBits) << sh
	return row | (uint64(c)&bitutil.Mask(g.ctrBits))<<sh
}

// Predict implements pred.Subcomponent.
func (g *GTAG) Predict(q *pred.Query) pred.Response {
	idx, tag := g.index(q.PC), g.tag(q.PC)
	row := g.mem.Read(int(idx))
	hit := g.rowValid(row) && g.rowTag(row) == tag
	overlay := g.scratch
	for i := range overlay {
		overlay[i] = pred.Pred{}
	}
	if hit {
		for i := 0; i < g.cfg.FetchWidth; i++ {
			overlay[i] = pred.Pred{
				DirValid:    true,
				Taken:       bitutil.CtrTaken(g.rowCtr(row, i), g.ctrBits),
				DirProvider: g.name,
			}
		}
	}
	meta0 := row
	if hit {
		meta0 |= 1 << 63
	}
	g.metaBuf[0] = meta0
	g.metaBuf[1] = idx | tag<<32
	return pred.Response{Overlay: overlay, Meta: g.metaBuf[:]}
}

// Mispredict implements pred.Subcomponent: fast allocation/training at
// resolve time (§III-E), halving the training lag on mispredicted branches.
func (g *GTAG) Mispredict(e *pred.Event) { g.Update(e) }

// Update implements pred.Subcomponent.  On a predict-time hit the counters
// train toward the outcomes; on a miss where the final prediction was wrong,
// the row is allocated with weak counters biased to the outcomes.
func (g *GTAG) Update(e *pred.Event) {
	row := e.Meta[0] &^ (1 << 63)
	hit := e.Meta[0]>>63 == 1
	idx := int(e.Meta[1] & bitutil.Mask(32))
	tag := e.Meta[1] >> 32

	anyBranch, anyMispred := false, false
	for _, s := range e.Slots {
		if s.Valid && s.IsBranch {
			anyBranch = true
			if s.Mispredicted {
				anyMispred = true
			}
		}
	}
	if !anyBranch {
		return
	}
	if hit {
		for i, s := range e.Slots {
			if !s.Valid || !s.IsBranch || i >= g.cfg.FetchWidth {
				continue
			}
			c := bitutil.CtrUpdate(g.rowCtr(row, i), s.Taken, g.ctrBits)
			row = g.setRowCtr(row, i, c)
		}
		g.mem.Write(idx, row)
		return
	}
	if !anyMispred {
		return // the rest of the pipeline got it right; do not thrash tags
	}
	// Allocate: fresh row with weak counters matching the outcomes.
	fresh := tag | 1<<g.tagBits
	weak := uint8((bitutil.Mask(g.ctrBits) + 1) / 2) // weakly taken
	for i, s := range e.Slots {
		if i >= g.cfg.FetchWidth {
			break
		}
		c := weak - 1 // weakly not-taken default
		if s.Valid && s.IsBranch && s.Taken {
			c = weak
		}
		fresh = g.setRowCtr(fresh, i, c)
	}
	g.mem.Write(idx, fresh)
}

// Reset implements pred.Subcomponent.
func (g *GTAG) Reset() { g.mem.Reset() }

// Tick implements pred.Subcomponent.
func (g *GTAG) Tick(cycle uint64) { g.mem.Tick(cycle) }

// Mems exposes the backing memories for the energy model.
func (g *GTAG) Mems() []*sram.Mem { return []*sram.Mem{g.mem} }

// Budget implements pred.Subcomponent.
func (g *GTAG) Budget() sram.Budget {
	return sram.Budget{
		Mems:     []sram.Spec{g.mem.Spec()},
		FlopBits: int(g.idxFold.Width() + g.tagFold.Width()),
	}
}

var _ pred.Subcomponent = (*GTAG)(nil)
