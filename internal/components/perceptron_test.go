package components

import (
	"testing"

	"cobra/internal/pred"
)

// percHarness drives a perceptron with an explicit history register.
type percHarness struct {
	p     *Perceptron
	ghist uint64
	cfg   pred.Config
}

func newPercHarness(histLen uint) *percHarness {
	return &percHarness{
		p: NewPerceptron(pred.DefaultConfig(), PerceptronParams{
			Name: "perc", Entries: 64, HistLen: histLen,
		}),
		cfg: pred.DefaultConfig(),
	}
}

func (h *percHarness) step(pc uint64, outcome bool) bool {
	r := h.p.Predict(&pred.Query{PC: pc, GHist: h.ghist})
	predTaken := r.Overlay[0].Taken
	slots := make([]pred.SlotInfo, h.cfg.FetchWidth)
	slots[0] = pred.SlotInfo{Valid: true, IsBranch: true, Taken: outcome, PC: pc}
	meta := append([]uint64(nil), r.Meta...)
	h.p.Update(&pred.Event{PC: pc, GHist: h.ghist, Meta: meta, Slots: slots})
	h.ghist <<= 1
	if outcome {
		h.ghist |= 1
	}
	return predTaken == outcome
}

func TestPerceptronLearnsLinearlySeparable(t *testing.T) {
	// Outcome = history bit 2 (a single weight suffices).
	h := newPercHarness(16)
	correct, total := 0, 0
	for i := 0; i < 2000; i++ {
		outcome := h.ghist>>2&1 == 1
		ok := h.step(0x1000, outcome)
		if i >= 1000 {
			total++
			if ok {
				correct++
			}
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.97 {
		t.Errorf("perceptron accuracy on single-bit correlation = %.3f", acc)
	}
}

func TestPerceptronLearnsMajorityVote(t *testing.T) {
	// Outcome = majority of last 3 outcomes — linearly separable.
	h := newPercHarness(16)
	correct, total := 0, 0
	for i := 0; i < 3000; i++ {
		cnt := int(h.ghist&1) + int(h.ghist>>1&1) + int(h.ghist>>2&1)
		outcome := cnt >= 2
		ok := h.step(0x2000, outcome)
		if i >= 1500 {
			total++
			if ok {
				correct++
			}
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.95 {
		t.Errorf("perceptron accuracy on majority function = %.3f", acc)
	}
}

func TestPerceptronCannotLearnXOR(t *testing.T) {
	// Outcome = XOR of two *independent* random bits shifted in by other
	// branches — famously not linearly separable, the perceptron's
	// documented blind spot (Jiménez & Lin).  (XOR of a branch's *own*
	// history is a period-3 sequence and thus trivially linear, so the
	// noise bits must come from an independent source.)
	h := newPercHarness(16)
	rng := uint64(0x12345)
	next := func() bool {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng&1 == 1
	}
	correct, total := 0, 0
	for i := 0; i < 4000; i++ {
		r1, r2 := next(), next()
		// Two unrelated branches shift their outcomes into the history.
		h.ghist = h.ghist << 1
		if r1 {
			h.ghist |= 1
		}
		h.ghist = h.ghist << 1
		if r2 {
			h.ghist |= 1
		}
		ok := h.step(0x3000, r1 != r2)
		if i >= 2000 {
			total++
			if ok {
				correct++
			}
		}
	}
	acc := float64(correct) / float64(total)
	if acc > 0.75 {
		t.Errorf("perceptron should NOT learn XOR, got accuracy %.3f", acc)
	}
}

func TestPerceptronSinglePredictionForWholePacket(t *testing.T) {
	// §III-C: single-prediction components may provide one prediction for
	// the entire vector.
	h := newPercHarness(16)
	r := h.p.Predict(&pred.Query{PC: 0x4000})
	first := r.Overlay[0].Taken
	for i, p := range r.Overlay {
		if !p.DirValid || p.Taken != first {
			t.Errorf("slot %d differs; perceptron provides one prediction for the packet", i)
		}
	}
}

func TestPerceptronThresholdStopsTraining(t *testing.T) {
	// Once confident and correct, weights freeze (Jiménez's theta rule).
	h := newPercHarness(8)
	for i := 0; i < 500; i++ {
		h.step(0x5000, true)
	}
	w0 := h.p.weights[h.p.index(0x5000)][0]
	for i := 0; i < 200; i++ {
		h.step(0x5000, true)
	}
	if h.p.weights[h.p.index(0x5000)][0] != w0 {
		t.Error("bias weight kept growing past the confidence threshold")
	}
	if w0 == 63 {
		t.Error("weight saturated; threshold should stop training earlier")
	}
}

func TestPerceptronPanics(t *testing.T) {
	for _, fn := range []func(){
		func() {
			NewPerceptron(pred.DefaultConfig(), PerceptronParams{Name: "p", Entries: 3, HistLen: 8})
		},
		func() {
			NewPerceptron(pred.DefaultConfig(), PerceptronParams{Name: "p", Entries: 8, HistLen: 0})
		},
		func() {
			NewPerceptron(pred.DefaultConfig(), PerceptronParams{Name: "p", Entries: 8, HistLen: 64})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected constructor panic")
				}
			}()
			fn()
		}()
	}
}
