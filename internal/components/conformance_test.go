package components

import (
	"reflect"
	"testing"

	"cobra/internal/history"
	"cobra/internal/pred"
)

// conformance drives one registered component through the COBRA interface
// contract (§III).  Every component in the library — and any future
// third-party component — must pass:
//
//  1. static validation (latency >= 1, sane declarations);
//  2. determinism: identical queries yield identical responses;
//  3. §III-B: latency-1 components ignore history inputs;
//  4. overlay geometry: FetchWidth slots, providers named correctly;
//  5. metadata length matches MetaWords();
//  6. the five events accept the component's own metadata without panics,
//     in arbitrary interleavings;
//  7. Reset returns to a state equivalent to power-on for prediction.
func conformance(t *testing.T, name string) {
	t.Helper()
	e := Env{Cfg: pred.DefaultConfig(), Global: history.NewGlobal(128)}
	c, err := Build(e, name)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := pred.Validate(c); err != nil {
		t.Fatalf("validate: %v", err)
	}

	mkQuery := func(pc, ghist uint64) *pred.Query {
		in := make([]pred.Packet, c.NumInputs())
		for i := range in {
			in[i] = make(pred.Packet, e.Cfg.FetchWidth)
			in[i][0] = pred.Pred{DirValid: true, Taken: true, DirProvider: "up"}
		}
		return &pred.Query{PC: pc, GHist: ghist, GRaw: []uint64{ghist, 0}, In: in}
	}

	// 2. Determinism.
	r1 := c.Predict(mkQuery(0x1000, 0xAA))
	meta1 := append([]uint64(nil), r1.Meta...)
	ov1 := r1.Overlay.Clone()
	r2 := c.Predict(mkQuery(0x1000, 0xAA))
	if !reflect.DeepEqual(ov1, r2.Overlay.Clone()) {
		t.Errorf("nondeterministic overlay for identical queries")
	}
	if !reflect.DeepEqual(meta1, append([]uint64(nil), r2.Meta...)) {
		t.Errorf("nondeterministic metadata for identical queries")
	}

	// 3. Latency-1 components must be insensitive to history.
	if c.Latency() == 1 {
		a := c.Predict(mkQuery(0x2000, 0)).Overlay.Clone()
		b := c.Predict(mkQuery(0x2000, ^uint64(0))).Overlay.Clone()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("latency-1 component reads history (§III-B violation)")
		}
	}

	// 4. Geometry and attribution.
	if len(r1.Overlay) != e.Cfg.FetchWidth {
		t.Errorf("overlay has %d slots, want %d", len(r1.Overlay), e.Cfg.FetchWidth)
	}
	for i, p := range r1.Overlay {
		if p.DirValid && p.DirProvider != c.Name() && p.DirProvider != "up" {
			t.Errorf("slot %d: direction provider %q is neither the component nor pass-through", i, p.DirProvider)
		}
	}

	// 5. Metadata contract.
	if len(r1.Meta) != c.MetaWords() {
		t.Errorf("meta length %d != MetaWords() %d", len(r1.Meta), c.MetaWords())
	}

	// 6. Event storm with round-tripped metadata: no panics, arbitrary
	// subsets and orders (§III-E: components may use or ignore any subset).
	slots := make([]pred.SlotInfo, e.Cfg.FetchWidth)
	slots[0] = pred.SlotInfo{Valid: true, IsBranch: true, Taken: true, PC: 0x1000,
		PredTaken: true}
	slots[2] = pred.SlotInfo{Valid: true, IsJump: true, Taken: true, PC: 0x1008, Target: 0x4000}
	ev := func() *pred.Event {
		return &pred.Event{PC: 0x1000, GHist: 0xAA, GRaw: []uint64{0xAA, 0},
			Meta: meta1, Slots: slots}
	}
	for step := 0; step < 50; step++ {
		switch step % 5 {
		case 0:
			c.Fire(ev())
		case 1:
			c.Repair(ev())
		case 2:
			misp := ev()
			misp.Slots[0].Mispredicted = true
			c.Mispredict(misp)
			misp.Slots[0].Mispredicted = false
		case 3:
			c.Update(ev())
		case 4:
			c.Tick(uint64(step))
			c.Predict(mkQuery(0x1000+uint64(step)*16, uint64(step)))
		}
	}

	// 7. Reset restores power-on prediction behaviour.
	c.Reset()
	fresh, err := Build(Env{Cfg: e.Cfg, Global: history.NewGlobal(128)}, name)
	if err != nil {
		t.Fatal(err)
	}
	got := c.Predict(mkQuery(0x3000, 0)).Overlay.Clone()
	want := fresh.Predict(mkQuery(0x3000, 0)).Overlay.Clone()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Reset state differs from power-on:\n got %+v\nwant %+v", got, want)
	}

	if c.Budget().TotalBits() <= 0 {
		t.Error("component reports no storage")
	}
}

// TestConformanceAllRegistered runs the contract suite over every library
// component (skipping the test-only fakes other packages may register).
func TestConformanceAllRegistered(t *testing.T) {
	for _, name := range []string{
		"UBTB1", "BIM2", "GBIM2", "LBIM2", "GSEL2", "PBIM2",
		"BTB2", "GTAG3", "PHT3", "TAGE3", "LOOP3", "PERC3", "SCOR3", "ITGT3",
		"GEHL3", "YAGS3", "GSKEW3",
	} {
		t.Run(name, func(t *testing.T) { conformance(t, name) })
	}
	// The tournament needs two inputs; it is covered with correct arity.
	t.Run("TOURNEY3", func(t *testing.T) { conformance(t, "TOURNEY3") })
}
