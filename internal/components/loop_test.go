package components

import (
	"testing"

	"cobra/internal/pred"
)

// loopHarness drives the loop predictor through the full §III-E event
// sequence for one branch: predict -> fire (speculative) -> update at
// commit, with optional mispredict/repair injection.
type loopHarness struct {
	l   *Loop
	cfg pred.Config
}

func newLoopHarness(entries int) *loopHarness {
	return &loopHarness{l: NewLoop(pred.DefaultConfig(), LoopParams{
		Name: "loop", Entries: entries, Latency: 3,
	}), cfg: pred.DefaultConfig()}
}

func (h *loopHarness) slots(slot int, taken, misp bool) []pred.SlotInfo {
	s := make([]pred.SlotInfo, h.cfg.FetchWidth)
	s[slot] = pred.SlotInfo{
		Valid: true, IsBranch: true, Taken: taken,
		PC: h.cfg.SlotPC(0x1000, slot), Mispredicted: misp,
	}
	return s
}

// iterate runs one committed branch execution: predict, fire with the
// predicted (== actual here, unless forced) direction, then commit-update.
// Returns the loop predictor's direction opinion, if any.
func (h *loopHarness) iterate(pc uint64, slot int, outcome bool) (dirValid, taken bool) {
	r := h.l.Predict(&pred.Query{PC: pc})
	p := r.Overlay[slot]
	predTaken := outcome // assume base predictor right unless loop overrides
	if p.DirValid {
		predTaken = p.Taken
	}
	h.l.Fire(&pred.Event{PC: pc, Meta: r.Meta, Slots: h.slots(slot, predTaken, false)})
	misp := p.DirValid && p.Taken != outcome
	if misp {
		h.l.Mispredict(&pred.Event{PC: pc, Meta: r.Meta, Slots: h.slots(slot, outcome, true)})
	} else {
		h.l.Update(&pred.Event{PC: pc, Meta: r.Meta, Slots: h.slots(slot, outcome, false)})
	}
	return p.DirValid, p.Taken
}

// mispredictedIteration simulates the base predictor getting it wrong (the
// trigger that allocates loop entries).
func (h *loopHarness) allocate(pc uint64, slot int, outcome bool) {
	r := h.l.Predict(&pred.Query{PC: pc})
	h.l.Fire(&pred.Event{PC: pc, Meta: r.Meta, Slots: h.slots(slot, !outcome, false)})
	h.l.Mispredict(&pred.Event{PC: pc, Meta: r.Meta, Slots: h.slots(slot, outcome, true)})
}

func TestLoopLearnsFixedTripCount(t *testing.T) {
	h := newLoopHarness(16)
	pc := uint64(0x1000)
	const trip = 5 // taken 4x then not-taken, repeating

	// The base predictor would mispredict the exit: allocate via a
	// mispredicted exit, then train over several loop executions.
	iter := 0
	exits := 0
	correctedExits := 0
	sawOverride := false
	for step := 0; step < 400; step++ {
		outcome := (iter+1)%trip != 0
		if step == 0 {
			h.allocate(pc, 0, outcome)
			iter = (iter + 1) % trip
			continue
		}
		dv, tk := h.iterate(pc, 0, outcome)
		if dv {
			sawOverride = true
		}
		if !outcome { // exit iteration
			exits++
			if dv && tk == outcome && exits > 20 {
				correctedExits++
			}
		}
		iter = (iter + 1) % trip
	}
	if !sawOverride {
		t.Fatal("loop predictor never asserted a prediction")
	}
	if correctedExits < 20 {
		t.Errorf("loop predictor corrected only %d late exits", correctedExits)
	}
}

func TestLoopStaysSilentOnIrregularBranch(t *testing.T) {
	h := newLoopHarness(16)
	pc := uint64(0x2000)
	// Irregular pattern: trip counts 3, 7, 2, 5 ... confidence must not
	// saturate, so the predictor must not override (or at most briefly).
	pattern := []int{3, 7, 2, 5, 4, 6}
	h.allocate(pc, 0, true)
	overrides := 0
	steps := 0
	for _, trip := range append(pattern, pattern...) {
		for i := 0; i < trip; i++ {
			outcome := i != trip-1
			dv, _ := h.iterate(pc, 0, outcome)
			if dv {
				overrides++
			}
			steps++
		}
	}
	if overrides > steps/10 {
		t.Errorf("loop predictor overrode %d/%d times on an irregular branch", overrides, steps)
	}
}

func TestLoopRepairRestoresSpeculativeCount(t *testing.T) {
	h := newLoopHarness(16)
	pc := uint64(0x3000)
	// Install a confident entry by hand via the public training path.
	h.allocate(pc, 0, true)
	const trip = 4
	for step, iter := 0, 1; step < 200; step++ {
		outcome := (iter+1)%trip != 0
		h.iterate(pc, 0, outcome)
		iter = (iter + 1) % trip
	}
	// Take a prediction + fire (speculative advance), snapshot via meta.
	r := h.l.Predict(&pred.Query{PC: pc})
	if r.Meta[0]>>60&1 != 1 {
		t.Fatal("expected a loop hit")
	}
	before := h.l.entries[h.l.index(pc)].specCnt
	h.l.Fire(&pred.Event{PC: pc, Meta: r.Meta, Slots: h.slots(0, true, false)})
	after := h.l.entries[h.l.index(pc)].specCnt
	if after == before {
		t.Fatal("fire did not advance the speculative counter")
	}
	// The fetch was misspeculated: the forwards-walk issues repair with the
	// same metadata; the counter must return to its pre-fire value.
	h.l.Repair(&pred.Event{PC: pc, Meta: r.Meta, Slots: h.slots(0, true, false)})
	if got := h.l.entries[h.l.index(pc)].specCnt; got != before {
		t.Errorf("repair restored specCnt=%d, want %d", got, before)
	}
}

func TestLoopRepairIgnoresReallocatedEntry(t *testing.T) {
	h := newLoopHarness(16)
	pc := uint64(0x3000)
	h.allocate(pc, 0, true)
	r := h.l.Predict(&pred.Query{PC: pc})
	// Entry gets re-allocated to an aliasing PC before the repair arrives.
	idx := h.l.index(pc)
	h.l.entries[idx].tag++
	pre := h.l.entries[idx]
	h.l.Repair(&pred.Event{PC: pc, Meta: r.Meta, Slots: h.slots(0, true, false)})
	if h.l.entries[idx] != pre {
		t.Error("repair touched a re-allocated entry")
	}
}

func TestLoopSlotGranularity(t *testing.T) {
	// Two branches in the same packet: the loop predictor tracks them as
	// separate entries (slot-PC indexed).
	h := newLoopHarness(64)
	pc := uint64(0x4000)
	h.allocate(pc, 0, true)
	h.allocate(pc, 2, true)
	r := h.l.Predict(&pred.Query{PC: pc})
	if r.Meta[0]>>60&1 != 1 {
		t.Fatal("no hit after double allocation")
	}
	// findSlot returns the first hitting slot.
	if slot := int(r.Meta[0] >> 56 & 0xf); slot != 0 {
		t.Errorf("first hitting slot = %d, want 0", slot)
	}
}

func TestLoopEntryPackRoundTrip(t *testing.T) {
	e := loopEntry{
		tag: 0x2a, trip: 513, specCnt: 7, archCnt: 512,
		conf: 5, dir: true, valid: true,
	}
	got := unpackEntry(packEntry(e), 0x2a)
	if got != e {
		t.Errorf("pack/unpack mismatch:\n got %+v\nwant %+v", got, e)
	}
}

func TestLoopMetaSnapshotMatchesEntry(t *testing.T) {
	h := newLoopHarness(16)
	pc := uint64(0x5000)
	h.allocate(pc, 1, true)
	for i := 0; i < 10; i++ {
		h.iterate(pc, 1, true)
	}
	r := h.l.Predict(&pred.Query{PC: pc})
	idx := h.l.index(h.cfg.SlotPC(pc, 1))
	want := h.l.entries[idx]
	got := unpackEntry(r.Meta[0], want.tag)
	if got.specCnt != want.specCnt || got.trip != want.trip || got.conf != want.conf {
		t.Errorf("meta snapshot %+v != entry %+v", got, want)
	}
}
