package components

import (
	"cobra/internal/bitutil"
	"cobra/internal/history"
	"cobra/internal/pred"
	"cobra/internal/sram"
)

// TAGE implements the TAgged GEometric-history-length predictor of §III-G.4
// following Seznec's algorithm ("A new case for the TAGE branch predictor"):
// a set of tagged tables indexed by hashes of geometrically increasing
// global-history lengths.  The longest-history hitting table provides the
// prediction; the next hit (or predict_in, which in the paper's TAGE-L
// topology is the BIM/BTB chain underneath) is the alternate.
//
// Superscalar organization: a row holds one partial tag, one usefulness
// counter, and FetchWidth 3-bit signed counters, so every branch in the
// fetch packet gets a direction (§III-C).
//
// Per §III-E TAGE is a commit-time-update predictor: speculation cannot
// corrupt it, so it implements only the update signal.  The metadata field
// carries the provider/alternate table numbers, the predict-time indices and
// tags of every table, and the provider row — the exact bookkeeping the
// paper says the metadata field exists for.
type TAGE struct {
	pred.NopEvents
	name    string
	latency int
	cfg     pred.Config

	tables []*tageTable
	// Allocation randomness: a deterministic LFSR, as hardware would use.
	lfsr uint32
	// Usefulness decay: counts allocation failures; on overflow all u bits
	// decay (the low-cost variant of Seznec's periodic reset).
	uDecayCtr  int
	uDecayMax  int
	useAltCtr  int8 // "use alt on newly allocated" counter, [-8, 7]
	numUpdates uint64

	scratch pred.Packet
	metaBuf []uint64
}

type tageTable struct {
	idxBits  uint
	tagBits  uint
	histLen  uint
	idxFold  *bitutil.FoldedHistory
	tagFold  *bitutil.FoldedHistory
	tag2Fold *bitutil.FoldedHistory // second fold defeats tag aliasing
	mem      *sram.Mem
}

const (
	tageCtrBits = 3 // per-slot signed counter, stored offset-binary
	tageUBits   = 2
)

// TAGEParams configures a TAGE instance.
type TAGEParams struct {
	Name    string
	Latency int
	// TableEntries and HistLens configure the tagged tables (parallel
	// slices).  TagBits may be scalar-per-table too.
	TableEntries []int
	HistLens     []uint
	TagBits      []uint
}

// DefaultTAGEParams returns the 7-table configuration used by the paper's
// TAGE-L design (64-bit maximum global history, Table I).
func DefaultTAGEParams(name string) TAGEParams {
	return TAGEParams{
		Name:         name,
		Latency:      3,
		TableEntries: []int{1024, 1024, 1024, 1024, 512, 512, 512},
		HistLens:     []uint{4, 6, 10, 16, 25, 40, 64},
		TagBits:      []uint{7, 7, 8, 8, 9, 10, 12},
	}
}

// NewTAGE builds a TAGE predictor whose folded histories are registered with
// the supplied global history provider.
func NewTAGE(cfg pred.Config, g *history.Global, p TAGEParams) *TAGE {
	if len(p.TableEntries) == 0 || len(p.TableEntries) != len(p.HistLens) || len(p.TableEntries) != len(p.TagBits) {
		panic("components: TAGE table parameter slices must be equal length and non-empty")
	}
	if p.Latency < 1 {
		p.Latency = 3
	}
	t := &TAGE{
		name:      p.Name,
		latency:   p.Latency,
		cfg:       cfg,
		lfsr:      0xACE1,
		uDecayMax: 1 << 18,
	}
	for i := range p.TableEntries {
		entries, hl, tb := p.TableEntries[i], p.HistLens[i], p.TagBits[i]
		if !bitutil.IsPow2(entries) {
			panic("components: TAGE table entries must be powers of two")
		}
		idxBits := bitutil.Clog2(entries)
		rowBits := int(tb) + tageUBits + cfg.FetchWidth*tageCtrBits
		tbl := &tageTable{
			idxBits:  idxBits,
			tagBits:  tb,
			histLen:  hl,
			idxFold:  g.NewFold(hl, idxBits),
			tagFold:  g.NewFold(hl, tb),
			tag2Fold: g.NewFold(hl, tb-1),
			mem: sram.New(sram.Spec{
				Name:       p.Name + "_t",
				Entries:    entries,
				Width:      rowBits,
				ReadPorts:  1,
				WritePorts: 1,
			}),
		}
		t.tables = append(t.tables, tbl)
	}
	t.scratch = make(pred.Packet, cfg.FetchWidth)
	t.metaBuf = make([]uint64, t.MetaWords())
	return t
}

// Name implements pred.Subcomponent.
func (t *TAGE) Name() string { return t.name }

// Latency implements pred.Subcomponent.
func (t *TAGE) Latency() int { return t.latency }

// MetaWords implements pred.Subcomponent: [provider|alt|flags, provider row,
// alt row, then one word per table packing index|tag].
func (t *TAGE) MetaWords() int { return 3 + len(t.tables) }

// NumInputs implements pred.Subcomponent.
func (t *TAGE) NumInputs() int { return 1 }

// NumTables returns the number of tagged tables (for reports).
func (t *TAGE) NumTables() int { return len(t.tables) }

func (tb *tageTable) index(cfg pred.Config, pc uint64) uint64 {
	pcPart := bitutil.MixPC(pc, cfg.PktOff(), tb.idxBits)
	return (pcPart ^ tb.idxFold.Fold()) & bitutil.Mask(tb.idxBits)
}

func (tb *tageTable) tag(cfg pred.Config, pc uint64) uint64 {
	pcPart := bitutil.MixPC(pc>>2, cfg.PktOff(), tb.tagBits)
	return (pcPart ^ tb.tagFold.Fold() ^ (tb.tag2Fold.Fold() << 1)) & bitutil.Mask(tb.tagBits)
}

// Row layout: [tag][u][ctr0..ctrW-1], counters offset-binary (0..7, taken
// when >= 4).
func (tb *tageTable) rowTag(row uint64) uint64 { return row & bitutil.Mask(tb.tagBits) }
func (tb *tageTable) rowU(row uint64) uint8 {
	return uint8(bitutil.Bits(row, tb.tagBits, tageUBits))
}
func (tb *tageTable) setRowU(row uint64, u uint8) uint64 {
	row &^= bitutil.Mask(tageUBits) << tb.tagBits
	return row | uint64(u&3)<<tb.tagBits
}
func (tb *tageTable) ctrShift(slot int) uint {
	return tb.tagBits + tageUBits + uint(slot)*tageCtrBits
}
func (tb *tageTable) rowCtr(row uint64, slot int) uint8 {
	return uint8(bitutil.Bits(row, tb.ctrShift(slot), tageCtrBits))
}
func (tb *tageTable) setRowCtr(row uint64, slot int, c uint8) uint64 {
	sh := tb.ctrShift(slot)
	row &^= bitutil.Mask(tageCtrBits) << sh
	return row | uint64(c&7)<<sh
}

// tageWeak reports a weak (just-allocated strength) counter.
func tageWeak(c uint8) bool { return c == 3 || c == 4 }

// A valid entry is indicated by a nonzero tag; tag 0 is reserved empty.
// The tag hash is remapped so real tag 0 becomes 1.
func (tb *tageTable) liveTag(cfg pred.Config, pc uint64) uint64 {
	tg := tb.tag(cfg, pc)
	if tg == 0 {
		tg = 1
	}
	return tg
}

// Predict implements pred.Subcomponent.
func (t *TAGE) Predict(q *pred.Query) pred.Response {
	meta := t.metaBuf
	for i := range meta {
		meta[i] = 0
	}
	provider, alt := -1, -1
	var provRow, altRow uint64
	for i, tb := range t.tables {
		idx := tb.index(t.cfg, q.PC)
		tg := tb.liveTag(t.cfg, q.PC)
		row := tb.mem.Read(int(idx))
		meta[3+i] = idx | tg<<32
		if tb.rowTag(row) == tg {
			alt, altRow = provider, provRow
			provider, provRow = i, row
		}
	}
	overlay := t.scratch
	for i := range overlay {
		overlay[i] = pred.Pred{}
	}
	flags := uint64(0)
	if provider >= 0 {
		tb := t.tables[provider]
		// "Use alternate on newly allocated": if the provider entry is weak
		// and not yet proven useful, prefer the alternate prediction (here:
		// pass through, letting the alt table's overlay or predict_in win).
		newlyAlloc := tb.rowU(provRow) == 0
		for i := 0; i < t.cfg.FetchWidth; i++ {
			c := tb.rowCtr(provRow, i)
			if newlyAlloc && tageWeak(c) && t.useAltCtr >= 0 {
				if alt >= 0 {
					atb := t.tables[alt]
					overlay[i] = pred.Pred{
						DirValid:    true,
						Taken:       bitutil.CtrTaken(atb.rowCtr(altRow, i), tageCtrBits),
						DirProvider: t.name,
					}
				}
				// else: pass through to predict_in (the base predictor).
				continue
			}
			overlay[i] = pred.Pred{
				DirValid:    true,
				Taken:       bitutil.CtrTaken(c, tageCtrBits),
				DirProvider: t.name,
			}
		}
		flags = 1
	}
	meta[0] = flags | uint64(uint8(provider+1))<<8 | uint64(uint8(alt+1))<<16
	meta[1] = provRow
	meta[2] = altRow
	// Record which slots we actually asserted (bit i set = asserted).
	var asserted uint64
	for i := range overlay {
		if overlay[i].DirValid {
			asserted |= 1 << uint(24+i)
		}
	}
	meta[0] |= asserted
	return pred.Response{Overlay: overlay, Meta: meta}
}

// Update implements pred.Subcomponent: Seznec's commit-time TAGE update
// driven entirely by metadata (no extra read ports).
func (t *TAGE) Update(e *pred.Event) {
	provider := int(uint8(e.Meta[0]>>8)) - 1
	alt := int(uint8(e.Meta[0]>>16)) - 1
	provRow, altRow := e.Meta[1], e.Meta[2]
	t.numUpdates++

	for slot, s := range e.Slots {
		if !s.Valid || !s.IsBranch || slot >= t.cfg.FetchWidth {
			continue
		}
		t.updateSlot(e, slot, s, provider, alt, &provRow, altRow)
	}
	if provider >= 0 {
		tb := t.tables[provider]
		idx := int(e.Meta[3+provider] & bitutil.Mask(32))
		tb.mem.Write(idx, provRow)
	}
}

func (t *TAGE) updateSlot(e *pred.Event, slot int, s pred.SlotInfo, provider, alt int, provRow *uint64, altRow uint64) {
	outcome := s.Taken
	if provider >= 0 {
		tb := t.tables[provider]
		c := tb.rowCtr(*provRow, slot)
		provPred := bitutil.CtrTaken(c, tageCtrBits)
		altPred := provPred
		if alt >= 0 {
			altPred = bitutil.CtrTaken(t.tables[alt].rowCtr(altRow, slot), tageCtrBits)
		} else {
			// The alternate was predict_in; treat the final pipeline
			// prediction as its stand-in for u-counter training.
			altPred = s.PredTaken
		}
		// Train the provider counter.
		*provRow = tb.setRowCtr(*provRow, slot, bitutil.CtrUpdate(c, outcome, tageCtrBits))
		// Usefulness: provider differs from alternate and was right/wrong.
		if provPred != altPred {
			u := tb.rowU(*provRow)
			if provPred == outcome {
				u = bitutil.SatInc(u, tageUBits)
			} else {
				u = bitutil.SatDec(u, tageUBits)
			}
			*provRow = tb.setRowU(*provRow, u)
			// Track whether "use alt on newly allocated" would have helped.
			if tb.rowU(*provRow) == 0 && tageWeak(c) {
				if altPred == outcome {
					t.useAltCtr = bitutil.SatIncS(t.useAltCtr, 7)
				} else {
					t.useAltCtr = bitutil.SatDecS(t.useAltCtr, 7)
				}
			}
		}
		// Allocate on a provider miss only.
		if provPred == outcome {
			return
		}
	} else if !s.Mispredicted {
		// No table hit and the pipeline (base predictor) was right.
		return
	}
	t.allocate(e, slot, outcome, provider)
}

// allocate tries to claim an entry in a table with longer history than the
// provider, preferring u==0 entries and randomizing the start table.
func (t *TAGE) allocate(e *pred.Event, slot int, outcome bool, provider int) {
	start := provider + 1
	if start >= len(t.tables) {
		t.decayTick()
		return
	}
	// Randomize among the next few tables (Seznec's anti-ping-pong trick).
	t.lfsr = t.lfsr>>1 ^ (uint32(-(int32(t.lfsr & 1))) & 0xB400)
	if span := len(t.tables) - start; span > 1 && t.lfsr&3 == 0 {
		start += int(t.lfsr>>2) % 2
		if start >= len(t.tables) {
			start = len(t.tables) - 1
		}
	}
	for i := start; i < len(t.tables); i++ {
		tb := t.tables[i]
		idx := int(e.Meta[3+i] & bitutil.Mask(32))
		tg := e.Meta[3+i] >> 32
		row := tb.mem.Peek(idx)
		if tb.rowU(row) != 0 {
			continue
		}
		fresh := tg // tag, u=0
		for sl := 0; sl < t.cfg.FetchWidth; sl++ {
			c := uint8(3) // weak not-taken
			if sl == slot && outcome {
				c = 4 // weak taken
			} else if sl == slot {
				c = 3
			}
			fresh = tb.setRowCtr(fresh, sl, c)
		}
		tb.mem.Write(idx, fresh)
		return
	}
	// All candidates useful: decay pressure.
	t.decayTick()
}

// decayTick ages usefulness counters when allocation keeps failing.
func (t *TAGE) decayTick() {
	t.uDecayCtr++
	if t.uDecayCtr < t.uDecayMax {
		return
	}
	t.uDecayCtr = 0
	for _, tb := range t.tables {
		for i := 0; i < tb.mem.Spec().Entries; i++ {
			row := tb.mem.Peek(i)
			u := tb.rowU(row)
			if u > 0 {
				tb.mem.Poke(i, tb.setRowU(row, u>>1))
			}
		}
	}
}

// Reset implements pred.Subcomponent.
func (t *TAGE) Reset() {
	for _, tb := range t.tables {
		tb.mem.Reset()
	}
	t.lfsr = 0xACE1
	t.uDecayCtr = 0
	t.useAltCtr = 0
	t.numUpdates = 0
}

// Tick implements pred.Subcomponent.
func (t *TAGE) Tick(cycle uint64) {
	for _, tb := range t.tables {
		tb.mem.Tick(cycle)
	}
}

// Mems exposes the backing memories for the energy model.
func (t *TAGE) Mems() []*sram.Mem {
	out := make([]*sram.Mem, len(t.tables))
	for i, tb := range t.tables {
		out[i] = tb.mem
	}
	return out
}

// Budget implements pred.Subcomponent.
func (t *TAGE) Budget() sram.Budget {
	var bg sram.Budget
	for _, tb := range t.tables {
		bg.Mems = append(bg.Mems, tb.mem.Spec())
		bg.FlopBits += int(tb.idxFold.Width() + tb.tagFold.Width() + tb.tag2Fold.Width())
	}
	bg.FlopBits += 32 + 8 // lfsr + useAlt
	return bg
}

var _ pred.Subcomponent = (*TAGE)(nil)
