package components

import (
	"cobra/internal/bitutil"
	"cobra/internal/pred"
	"cobra/internal/sram"
)

// Perceptron is the perceptron predictor of Jiménez & Lin, one of the
// component types §III-G says "may be implemented similarly" to the starter
// library.  It illustrates the interface's support for single-prediction
// components (§III-C): the perceptron computes one dot product per cycle and
// provides that single prediction for the entire fetch packet vector.
//
// Weights are trained at commit time only (global-history predictor), and
// the metadata field carries the predict-time weight vector address and the
// computed sum so the update can retrain without recomputing the dot
// product's inputs.
type Perceptron struct {
	pred.NopEvents
	name    string
	latency int
	cfg     pred.Config
	idxBits uint
	histLen uint
	theta   int32
	weights [][]int8 // [row][histLen+1], weights[_][0] = bias

	scratch pred.Packet
	metaBuf [1]uint64
}

// PerceptronParams configures a perceptron predictor.
type PerceptronParams struct {
	Name    string
	Latency int
	Entries int
	HistLen uint
}

// NewPerceptron builds a perceptron table.
func NewPerceptron(cfg pred.Config, p PerceptronParams) *Perceptron {
	if !bitutil.IsPow2(p.Entries) {
		panic("components: Perceptron entries must be a power of two")
	}
	if p.HistLen == 0 || p.HistLen > 63 {
		panic("components: Perceptron history length must be in [1,63]")
	}
	if p.Latency < 1 {
		p.Latency = 3
	}
	w := make([][]int8, p.Entries)
	for i := range w {
		w[i] = make([]int8, p.HistLen+1)
	}
	return &Perceptron{
		name:    p.Name,
		latency: p.Latency,
		cfg:     cfg,
		idxBits: bitutil.Clog2(p.Entries),
		histLen: p.HistLen,
		theta:   int32(1.93*float64(p.HistLen) + 14), // Jiménez's threshold
		weights: w,
		scratch: make(pred.Packet, cfg.FetchWidth),
	}
}

// Name implements pred.Subcomponent.
func (p *Perceptron) Name() string { return p.name }

// Latency implements pred.Subcomponent.
func (p *Perceptron) Latency() int { return p.latency }

// MetaWords implements pred.Subcomponent: word 0 = index | |sum|<<24 |
// signs/flags.
func (p *Perceptron) MetaWords() int { return 1 }

// NumInputs implements pred.Subcomponent.
func (p *Perceptron) NumInputs() int { return 1 }

func (p *Perceptron) index(pc uint64) int {
	return int(bitutil.MixPC(pc, p.cfg.PktOff(), p.idxBits))
}

func (p *Perceptron) dot(idx int, ghist uint64) int32 {
	w := p.weights[idx]
	sum := int32(w[0])
	for i := uint(0); i < p.histLen; i++ {
		if ghist>>i&1 == 1 {
			sum += int32(w[i+1])
		} else {
			sum -= int32(w[i+1])
		}
	}
	return sum
}

// Predict implements pred.Subcomponent.
func (p *Perceptron) Predict(q *pred.Query) pred.Response {
	idx := p.index(q.PC)
	sum := p.dot(idx, q.GHist)
	taken := sum >= 0
	overlay := p.scratch
	for i := range overlay {
		overlay[i] = pred.Pred{DirValid: true, Taken: taken, DirProvider: p.name}
	}
	mag := sum
	if mag < 0 {
		mag = -mag
	}
	meta := uint64(idx) | uint64(uint32(mag))<<24
	if taken {
		meta |= 1 << 62
	}
	p.metaBuf[0] = meta
	return pred.Response{Overlay: overlay, Meta: p.metaBuf[:]}
}

// Update implements pred.Subcomponent: perceptron learning rule at commit.
func (p *Perceptron) Update(e *pred.Event) {
	idx := int(e.Meta[0] & bitutil.Mask(24))
	mag := int32(uint32(e.Meta[0] >> 24 & bitutil.Mask(32)))
	predTaken := e.Meta[0]>>62&1 == 1
	for _, s := range e.Slots {
		if !s.Valid || !s.IsBranch {
			continue
		}
		if predTaken == s.Taken && mag > p.theta {
			continue // confident and correct: no training
		}
		w := p.weights[idx]
		t := int8(-1)
		if s.Taken {
			t = 1
		}
		w[0] = satAdd8(w[0], t)
		for i := uint(0); i < p.histLen; i++ {
			x := int8(-1)
			if e.GHist>>i&1 == 1 {
				x = 1
			}
			w[i+1] = satAdd8(w[i+1], t*x)
		}
	}
}

func satAdd8(a, d int8) int8 {
	s := int16(a) + int16(d)
	if s > 63 {
		return 63
	}
	if s < -64 {
		return -64
	}
	return int8(s)
}

// Reset implements pred.Subcomponent.
func (p *Perceptron) Reset() {
	for i := range p.weights {
		for j := range p.weights[i] {
			p.weights[i][j] = 0
		}
	}
}

// Tick implements pred.Subcomponent.
func (p *Perceptron) Tick(uint64) {}

// Budget implements pred.Subcomponent: 7-bit weights.
func (p *Perceptron) Budget() sram.Budget {
	return sram.Budget{Mems: []sram.Spec{{
		Name:       p.name,
		Entries:    len(p.weights),
		Width:      int(p.histLen+1) * 7,
		ReadPorts:  1,
		WritePorts: 1,
	}}}
}

var _ pred.Subcomponent = (*Perceptron)(nil)
