package components

import (
	"testing"

	"cobra/internal/history"
	"cobra/internal/pred"
)

// dirHarness drives any direction component with a live global history.
type dirHarness struct {
	c     pred.Subcomponent
	g     *history.Global
	cfg   pred.Config
	ghist uint64
}

func newDirHarness(t *testing.T, name string) *dirHarness {
	t.Helper()
	g := history.NewGlobal(64)
	c, err := Build(Env{Cfg: pred.DefaultConfig(), Global: g}, name)
	if err != nil {
		t.Fatal(err)
	}
	return &dirHarness{c: c, g: g, cfg: pred.DefaultConfig()}
}

// step predicts slot 0 at pc, commits outcome, and shifts histories.
func (h *dirHarness) step(pc uint64, outcome bool) (correct bool) {
	q := &pred.Query{PC: pc, GHist: h.g.Bits(64), GRaw: h.g.Raw()}
	r := h.c.Predict(q)
	predTaken := r.Overlay[0].DirValid && r.Overlay[0].Taken
	slots := make([]pred.SlotInfo, h.cfg.FetchWidth)
	slots[0] = pred.SlotInfo{Valid: true, IsBranch: true, Taken: outcome,
		PC: pc, PredTaken: predTaken, Mispredicted: predTaken != outcome}
	meta := append([]uint64(nil), r.Meta...)
	h.c.Update(&pred.Event{PC: pc, GHist: h.g.Bits(64), GRaw: h.g.Raw(),
		Meta: meta, Slots: slots})
	h.g.Shift(outcome)
	return predTaken == outcome
}

// measure runs a pattern for n steps and returns post-warmup accuracy.
func (h *dirHarness) measure(n int, next func(i int, hist uint64) bool) float64 {
	correct, total := 0, 0
	for i := 0; i < n; i++ {
		outcome := next(i, h.g.Bits(64))
		ok := h.step(0x1000, outcome)
		if i > n/2 {
			total++
			if ok {
				correct++
			}
		}
	}
	return float64(correct) / float64(total)
}

func TestGEHLLearnsGeometricHistories(t *testing.T) {
	h := newDirHarness(t, "GEHL3")
	// Period-7 pattern: covered by the 10-bit table.
	pattern := []bool{true, true, false, true, false, false, true}
	if acc := h.measure(4000, func(i int, _ uint64) bool { return pattern[i%7] }); acc < 0.95 {
		t.Errorf("GEHL period-7 accuracy = %.3f", acc)
	}
}

func TestGEHLLearnsDeepCorrelation(t *testing.T) {
	h := newDirHarness(t, "GEHL3")
	// Outcome = history bit 20: needs the 24/48-bit tables.
	if acc := h.measure(8000, func(_ int, hist uint64) bool { return hist>>20&1 == 1 }); acc < 0.9 {
		t.Errorf("GEHL depth-20 correlation accuracy = %.3f", acc)
	}
}

func TestGEHLBiasTableHandlesStaticBranches(t *testing.T) {
	h := newDirHarness(t, "GEHL3")
	if acc := h.measure(1000, func(int, uint64) bool { return true }); acc < 0.99 {
		t.Errorf("GEHL constant-branch accuracy = %.3f", acc)
	}
}

func TestYAGSExceptionCaching(t *testing.T) {
	h := newDirHarness(t, "YAGS3")
	// A branch that is taken except under one specific recent-history
	// context: the bias learns taken; the nt-cache learns the exception.
	acc := h.measure(6000, func(_ int, hist uint64) bool {
		return hist&0b11 != 0b11 // not-taken only after two taken in a row...
	})
	if acc < 0.9 {
		t.Errorf("YAGS contextual-exception accuracy = %.3f", acc)
	}
}

func TestYAGSBeatsBimodalOnExceptions(t *testing.T) {
	pattern := func(_ int, hist uint64) bool { return hist&0b111 != 0b111 }
	y := newDirHarness(t, "YAGS3")
	b := newDirHarness(t, "BIM2")
	ya := y.measure(6000, pattern)
	ba := b.measure(6000, pattern)
	if ya <= ba {
		t.Errorf("YAGS (%.3f) should beat bimodal (%.3f) on history exceptions", ya, ba)
	}
}

func TestGSkewMajorityLearns(t *testing.T) {
	h := newDirHarness(t, "GSKEW3")
	pattern := []bool{true, false, true, true, false}
	if acc := h.measure(5000, func(i int, _ uint64) bool { return pattern[i%5] }); acc < 0.95 {
		t.Errorf("GSkew period-5 accuracy = %.3f", acc)
	}
}

func TestGSkewOutvotesSingleBankAlias(t *testing.T) {
	// Constructing a guaranteed collision across all three hash functions
	// is fiddly; instead, measure under heavy PC pressure — many branches,
	// tiny banks — where majority voting should hold up at least as well as
	// a same-capacity gshare.
	h := newDirHarness(t, "GSKEW3(64)")
	b := newDirHarness(t, "GBIM2(64)")
	next := func(pc uint64) func(int, uint64) bool {
		bias := pc%3 == 0
		return func(int, uint64) bool { return bias }
	}
	accOf := func(hh *dirHarness) float64 {
		correct, total := 0, 0
		for i := 0; i < 6000; i++ {
			pc := uint64(0x1000 + (i%97)*16)
			outcome := next(pc)(i, 0)
			q := &pred.Query{PC: pc, GHist: hh.g.Bits(64), GRaw: hh.g.Raw()}
			r := hh.c.Predict(q)
			predTaken := r.Overlay[0].DirValid && r.Overlay[0].Taken
			slots := make([]pred.SlotInfo, 4)
			slots[0] = pred.SlotInfo{Valid: true, IsBranch: true, Taken: outcome, PC: pc}
			meta := append([]uint64(nil), r.Meta...)
			hh.c.Update(&pred.Event{PC: pc, GHist: hh.g.Bits(64), Meta: meta, Slots: slots})
			hh.g.Shift(outcome)
			if i > 3000 {
				total++
				if predTaken == outcome {
					correct++
				}
			}
		}
		return float64(correct) / float64(total)
	}
	ga := accOf(h)
	ba := accOf(b)
	if ga <= ba-0.02 {
		t.Errorf("GSkew (%.3f) should not trail gshare (%.3f) under alias pressure", ga, ba)
	}
}
