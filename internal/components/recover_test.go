package components

import (
	"strings"
	"testing"

	"cobra/internal/history"
	"cobra/internal/pred"
)

// TestBuildRecoversConstructorPanics: parameter validation deep inside a
// component panics; Build must surface it as an error naming the node and its
// parameters, never crash the process (and compose.New inherits the same
// guarantee).
func TestBuildRecoversConstructorPanics(t *testing.T) {
	env := Env{Cfg: pred.DefaultConfig(), Global: history.NewGlobal(64)}
	cases := []struct {
		node string
		want string // fragment of the original panic message
	}{
		{"BIM2(1000)", "power of two"},   // HBIM entries
		{"BTB2(1000)", "power of two"},   // 1000/4 ways -> 250 sets
		{"TOURNEY3(99)", "power of two"}, // tournament counters
		{"LOOP3(100)", "power of two"},   // loop predictor entries
		{"PERC3(77)", "power of two"},    // perceptron rows
	}
	for _, tc := range cases {
		c, err := Build(env, tc.node)
		if err == nil {
			t.Errorf("%s: bad geometry built successfully (%v)", tc.node, c)
			continue
		}
		if c != nil {
			t.Errorf("%s: error return carries a non-nil component", tc.node)
		}
		msg := err.Error()
		if !strings.Contains(msg, tc.node) {
			t.Errorf("%s: error %q does not name the node", tc.node, msg)
		}
		if !strings.Contains(msg, tc.want) {
			t.Errorf("%s: error %q lost the panic message %q", tc.node, msg, tc.want)
		}
	}
}
