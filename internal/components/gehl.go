package components

import (
	"cobra/internal/bitutil"
	"cobra/internal/history"
	"cobra/internal/pred"
	"cobra/internal/sram"
)

// GEHL is Seznec's GEometric History Length predictor ([38] in the paper):
// several tables of signed counters indexed by hashes of geometrically
// increasing history lengths; the prediction is the sign of the sum.
// Unlike TAGE there are no tags — every table always contributes — and
// training is perceptron-style with a dynamic threshold.
//
// Like the perceptron, GEHL is a single-prediction component (§III-C): one
// adder tree per cycle, one direction for the whole packet.  The metadata
// carries the per-table indices and counters so commit-time training needs
// no second read (§III-D).
type GEHL struct {
	pred.NopEvents
	name    string
	latency int
	cfg     pred.Config

	tables []*gehlTable
	theta  int32
	tc     int8 // threshold-adaptation counter
}

type gehlTable struct {
	idxBits uint
	histLen uint
	fold    *bitutil.FoldedHistory
	mem     *sram.Mem // 4-bit signed counters, two's complement in 4 bits
}

const gehlCtrBits = 4

// GEHLParams configures a GEHL instance.
type GEHLParams struct {
	Name         string
	Latency      int
	TableEntries []int
	HistLens     []uint
}

// DefaultGEHLParams is a compact 5-table O-GEHL-style configuration.
func DefaultGEHLParams(name string) GEHLParams {
	return GEHLParams{
		Name:         name,
		Latency:      3,
		TableEntries: []int{1024, 1024, 1024, 512, 512},
		HistLens:     []uint{0, 4, 10, 24, 48}, // table 0 is bias (PC only)
	}
}

// NewGEHL builds the predictor, registering its folds with the global
// history provider.
func NewGEHL(cfg pred.Config, g *history.Global, p GEHLParams) *GEHL {
	if len(p.TableEntries) == 0 || len(p.TableEntries) != len(p.HistLens) {
		panic("components: GEHL parameter slices must match and be non-empty")
	}
	if p.Latency < 1 {
		p.Latency = 3
	}
	t := &GEHL{name: p.Name, latency: p.Latency, cfg: cfg,
		theta: int32(2*len(p.TableEntries) + 1)}
	for i := range p.TableEntries {
		if !bitutil.IsPow2(p.TableEntries[i]) {
			panic("components: GEHL table entries must be powers of two")
		}
		idxBits := bitutil.Clog2(p.TableEntries[i])
		tb := &gehlTable{idxBits: idxBits, histLen: p.HistLens[i]}
		if tb.histLen > 0 {
			tb.fold = g.NewFold(tb.histLen, idxBits)
		}
		tb.mem = sram.New(sram.Spec{
			Name:       p.Name + "_t",
			Entries:    p.TableEntries[i],
			Width:      gehlCtrBits,
			ReadPorts:  1,
			WritePorts: 1,
		})
		t.tables = append(t.tables, tb)
	}
	return t
}

// Name implements pred.Subcomponent.
func (t *GEHL) Name() string { return t.name }

// Latency implements pred.Subcomponent.
func (t *GEHL) Latency() int { return t.latency }

// MetaWords implements pred.Subcomponent: word 0 packs sum sign+magnitude;
// then one word per table packing index|counter.
func (t *GEHL) MetaWords() int { return 1 + len(t.tables) }

// NumInputs implements pred.Subcomponent.
func (t *GEHL) NumInputs() int { return 1 }

func (tb *gehlTable) index(cfg pred.Config, pc uint64) uint64 {
	pcPart := bitutil.MixPC(pc, cfg.PktOff(), tb.idxBits)
	if tb.fold == nil {
		return pcPart & bitutil.Mask(tb.idxBits)
	}
	return (pcPart ^ tb.fold.Fold()) & bitutil.Mask(tb.idxBits)
}

func gehlGet(raw uint64) int8 { return int8(uint8(raw)<<4) >> 4 } // sign-extend 4 bits
func gehlPut(v int8) uint64   { return uint64(uint8(v)) & 0xF }
func gehlSat(v int8, d int8) int8 {
	s := v + d
	if s > 7 {
		return 7
	}
	if s < -8 {
		return -8
	}
	return s
}

// Predict implements pred.Subcomponent: sign of the counter sum, one
// direction for the whole packet.
func (t *GEHL) Predict(q *pred.Query) pred.Response {
	meta := make([]uint64, t.MetaWords())
	var sum int32
	for i, tb := range t.tables {
		idx := tb.index(t.cfg, q.PC)
		raw := tb.mem.Read(int(idx))
		c := gehlGet(raw)
		sum += 2*int32(c) + 1 // the standard GEHL centering
		meta[1+i] = idx | uint64(uint8(c))<<32
	}
	taken := sum >= 0
	mag := sum
	if mag < 0 {
		mag = -mag
	}
	meta[0] = uint64(uint32(mag))
	if taken {
		meta[0] |= 1 << 62
	}
	overlay := make(pred.Packet, t.cfg.FetchWidth)
	for i := range overlay {
		overlay[i] = pred.Pred{DirValid: true, Taken: taken, DirProvider: t.name}
	}
	return pred.Response{Overlay: overlay, Meta: meta}
}

// Update implements pred.Subcomponent: perceptron-style training on the
// first committed branch, with O-GEHL's adaptive threshold.
func (t *GEHL) Update(e *pred.Event) {
	slot := -1
	for i := range e.Slots {
		if e.Slots[i].Valid && e.Slots[i].IsBranch {
			slot = i
			break
		}
	}
	if slot < 0 {
		return
	}
	outcome := e.Slots[slot].Taken
	predTaken := e.Meta[0]>>62&1 == 1
	mag := int32(uint32(e.Meta[0] & bitutil.Mask(32)))
	correct := predTaken == outcome
	if correct && mag > t.theta {
		return
	}
	d := int8(-1)
	if outcome {
		d = 1
	}
	for i, tb := range t.tables {
		idx := int(e.Meta[1+i] & bitutil.Mask(32))
		c := gehlGet(e.Meta[1+i] >> 32)
		tb.mem.Write(idx, gehlPut(gehlSat(c, d)))
	}
	// Adaptive threshold (O-GEHL): mispredicts push theta up, low-margin
	// correct predictions push it down.
	if !correct {
		if t.tc < 63 {
			t.tc++
		}
		if t.tc == 63 {
			t.theta++
			t.tc = 0
		}
	} else if mag <= t.theta {
		if t.tc > -64 {
			t.tc--
		}
		if t.tc == -64 {
			if t.theta > 1 {
				t.theta--
			}
			t.tc = 0
		}
	}
}

// Mispredict trains immediately on resolved mispredicts (§III-E fast path).
func (t *GEHL) Mispredict(e *pred.Event) { t.Update(e) }

// Reset implements pred.Subcomponent.
func (t *GEHL) Reset() {
	for _, tb := range t.tables {
		tb.mem.Reset()
	}
	t.theta = int32(2*len(t.tables) + 1)
	t.tc = 0
}

// Tick implements pred.Subcomponent.
func (t *GEHL) Tick(cycle uint64) {
	for _, tb := range t.tables {
		tb.mem.Tick(cycle)
	}
}

// Mems exposes the backing memories for the energy model.
func (t *GEHL) Mems() []*sram.Mem {
	out := make([]*sram.Mem, len(t.tables))
	for i, tb := range t.tables {
		out[i] = tb.mem
	}
	return out
}

// Budget implements pred.Subcomponent.
func (t *GEHL) Budget() sram.Budget {
	var bg sram.Budget
	for _, tb := range t.tables {
		bg.Mems = append(bg.Mems, tb.mem.Spec())
		if tb.fold != nil {
			bg.FlopBits += int(tb.fold.Width())
		}
	}
	bg.FlopBits += 32 + 8 // theta + tc
	return bg
}

var _ pred.Subcomponent = (*GEHL)(nil)
