package components

import (
	"cobra/internal/bitutil"
	"cobra/internal/pred"
	"cobra/internal/sram"
)

// Loop is the loop predictor of §III-G.5, a simplified version of the one in
// TAGE-SC-L: it learns branches with a regular trip count (taken N-1 times,
// then not-taken once, or the inverse) and overrides the base prediction at
// the loop exit once confident.
//
// Unlike the global-history components, the loop predictor keeps *local*
// speculative state (the in-flight iteration counter), so it exercises the
// full event set of §III-E:
//
//   - fire: speculatively advance the iteration counter at predict time;
//   - repair: restore the counter from metadata when the walk squashes a
//     misspeculated prediction;
//   - mispredict: immediate retraining of confidence/trip count;
//   - update: commit-time training.
//
// The metadata stores the entry's pre-fire contents so repair can restore
// them exactly — "track the contents of its counter entries such that it can
// restore those entries during the repair phase" (§III-G.5).
type Loop struct {
	name    string
	latency int
	cfg     pred.Config
	idxBits uint
	tagBits uint
	entries []loopEntry

	scratch pred.Packet
	metaBuf [1]uint64
}

type loopEntry struct {
	tag     uint64
	trip    uint16 // learned trip count (#iterations between exits)
	specCnt uint16 // speculative in-flight iteration counter
	archCnt uint16 // committed iteration counter
	conf    uint8  // 3-bit confidence
	dir     bool   // the loop's repeating direction (almost always taken)
	valid   bool
}

const (
	loopCntBits  = 10
	loopConfMax  = 7
	loopConfBits = 3
)

// LoopParams configures a loop predictor.
type LoopParams struct {
	Name    string
	Latency int
	Entries int
	TagBits uint
}

// NewLoop builds the loop predictor.
func NewLoop(cfg pred.Config, p LoopParams) *Loop {
	if !bitutil.IsPow2(p.Entries) {
		panic("components: Loop entries must be a power of two")
	}
	if p.TagBits == 0 {
		p.TagBits = 10
	}
	if p.Latency < 1 {
		p.Latency = 3
	}
	return &Loop{
		name:    p.Name,
		latency: p.Latency,
		cfg:     cfg,
		idxBits: bitutil.Clog2(p.Entries),
		tagBits: p.TagBits,
		entries: make([]loopEntry, p.Entries),
		scratch: make(pred.Packet, cfg.FetchWidth),
	}
}

// Name implements pred.Subcomponent.
func (l *Loop) Name() string { return l.name }

// Latency implements pred.Subcomponent.
func (l *Loop) Latency() int { return l.latency }

// MetaWords implements pred.Subcomponent: word 0 = packed pre-fire entry
// snapshot + slot + hit.
func (l *Loop) MetaWords() int { return 1 }

// NumInputs implements pred.Subcomponent.
func (l *Loop) NumInputs() int { return 1 }

// index hashes the *branch* PC (slot-granular, not packet-granular: a loop
// predictor tracks an individual branch).
func (l *Loop) index(brPC uint64) int {
	return int(bitutil.MixPC(brPC, l.cfg.InstOff(), l.idxBits))
}

func (l *Loop) tagOf(brPC uint64) uint64 {
	return (brPC >> (l.cfg.InstOff() + l.idxBits)) & bitutil.Mask(l.tagBits)
}

// packEntry packs an entry snapshot into a metadata word.
func packEntry(e loopEntry) uint64 {
	v := uint64(e.trip) | uint64(e.specCnt)<<16 | uint64(e.archCnt)<<32
	v |= uint64(e.conf) << 48
	if e.dir {
		v |= 1 << 52
	}
	if e.valid {
		v |= 1 << 53
	}
	return v
}

func unpackEntry(v uint64, tag uint64) loopEntry {
	return loopEntry{
		tag:     tag,
		trip:    uint16(v),
		specCnt: uint16(v >> 16),
		archCnt: uint16(v >> 32),
		conf:    uint8(v>>48) & 7,
		dir:     v>>52&1 == 1,
		valid:   v>>53&1 == 1,
	}
}

// findSlot locates the packet slot the loop predictor will speak for: the
// first slot whose entry hits.  §III-C: single-prediction components "learn
// the index into the fetch-packet at which to provide the prediction" — here
// the index is recovered by probing each slot PC's entry.
func (l *Loop) findSlot(pc uint64) (slot, idx int, hit bool) {
	for s := 0; s < l.cfg.FetchWidth; s++ {
		spc := l.cfg.SlotPC(pc, s)
		i := l.index(spc)
		if l.entries[i].valid && l.entries[i].tag == l.tagOf(spc) {
			return s, i, true
		}
	}
	return 0, 0, false
}

// Predict implements pred.Subcomponent.
func (l *Loop) Predict(q *pred.Query) pred.Response {
	slot, idx, hit := l.findSlot(q.PC)
	meta := uint64(0)
	overlay := l.scratch
	for i := range overlay {
		overlay[i] = pred.Pred{}
	}
	if hit {
		e := l.entries[idx]
		meta = packEntry(e) | uint64(slot)<<56 | 1<<60
		if e.conf == loopConfMax && e.trip > 0 {
			exit := e.specCnt+1 >= e.trip
			taken := e.dir
			if exit {
				taken = !e.dir
			}
			overlay[slot] = pred.Pred{
				DirValid:    true,
				Taken:       taken,
				DirProvider: l.name,
			}
		}
	}
	l.metaBuf[0] = meta
	return pred.Response{Overlay: overlay, Meta: l.metaBuf[:]}
}

// Fire implements pred.Subcomponent: the loop predictor "is updated at query
// time" (§III-G.5) — advance the speculative iteration counter for the
// predicted direction.
func (l *Loop) Fire(e *pred.Event) {
	hit := e.Meta[0]>>60&1 == 1
	if !hit {
		return
	}
	slot := int(e.Meta[0] >> 56 & 0xf)
	if slot >= len(e.Slots) || !e.Slots[slot].Valid || !e.Slots[slot].IsBranch {
		return
	}
	spc := l.cfg.SlotPC(e.PC, slot)
	idx := l.index(spc)
	ent := &l.entries[idx]
	if !ent.valid || ent.tag != l.tagOf(spc) {
		return
	}
	predTaken := e.Slots[slot].Taken // predicted direction at fire time
	if predTaken == ent.dir {
		if uint64(ent.specCnt) < bitutil.Mask(loopCntBits) {
			ent.specCnt++
		}
	} else {
		ent.specCnt = 0 // predicted exit: next iteration restarts
	}
}

// Repair implements pred.Subcomponent: restore the entry's speculative
// counter from the metadata snapshot taken before fire.
func (l *Loop) Repair(e *pred.Event) {
	hit := e.Meta[0]>>60&1 == 1
	if !hit {
		return
	}
	slot := int(e.Meta[0] >> 56 & 0xf)
	spc := l.cfg.SlotPC(e.PC, slot)
	idx := l.index(spc)
	snap := unpackEntry(e.Meta[0], l.tagOf(spc))
	ent := &l.entries[idx]
	if !ent.valid || ent.tag != snap.tag {
		return // entry was since re-allocated; nothing to repair
	}
	ent.specCnt = snap.specCnt
}

// Mispredict implements pred.Subcomponent: fast retrain on a mispredicted
// branch the loop predictor spoke for (or should have).
func (l *Loop) Mispredict(e *pred.Event) {
	l.train(e, true)
}

// Update implements pred.Subcomponent: commit-time training.
func (l *Loop) Update(e *pred.Event) {
	l.train(e, false)
}

func (l *Loop) train(e *pred.Event, misp bool) {
	for slot, s := range e.Slots {
		if !s.Valid || !s.IsBranch || slot >= l.cfg.FetchWidth {
			continue
		}
		spc := l.cfg.SlotPC(e.PC, slot)
		idx := l.index(spc)
		ent := &l.entries[idx]
		tag := l.tagOf(spc)
		if !ent.valid || ent.tag != tag {
			// Allocate only on a mispredicted branch — loops are learned
			// from the mistakes of the base predictor (§III-G.5: "attempts
			// to correct periodic mispredictions made by a base predictor").
			if misp && s.Mispredicted {
				*ent = loopEntry{
					tag: tag, valid: true, dir: s.Taken,
					trip: 0, specCnt: 0, archCnt: 0, conf: 0,
				}
			}
			continue
		}
		if misp && !s.Mispredicted {
			continue
		}
		if s.Taken == ent.dir {
			// Another iteration of the body.
			if uint64(ent.archCnt) < bitutil.Mask(loopCntBits) {
				ent.archCnt++
			} else {
				// Too long to track: invalidate.
				ent.valid = false
			}
			continue
		}
		// Exit observed: does the trip count repeat?
		observed := ent.archCnt + 1
		if ent.trip == observed && ent.trip > 0 {
			if ent.conf < loopConfMax {
				ent.conf++
			}
		} else {
			if ent.conf > 0 {
				ent.conf = 0
			}
			ent.trip = observed
		}
		ent.archCnt = 0
		// Commit-time resync of the speculative counter: in steady state
		// spec leads arch; after an exit both restart together unless
		// speculation is further ahead (left to fire/repair).
		if misp {
			ent.specCnt = 0
		}
	}
}

// Reset implements pred.Subcomponent.
func (l *Loop) Reset() {
	for i := range l.entries {
		l.entries[i] = loopEntry{}
	}
}

// Tick implements pred.Subcomponent (flop-based).
func (l *Loop) Tick(uint64) {}

// Budget implements pred.Subcomponent.
func (l *Loop) Budget() sram.Budget {
	per := int(l.tagBits) + 3*loopCntBits + loopConfBits + 1 + 1
	return sram.Budget{Mems: []sram.Spec{{
		Name:       l.name,
		Entries:    len(l.entries),
		Width:      per,
		ReadPorts:  1,
		WritePorts: 1,
	}}}
}

var _ pred.Subcomponent = (*Loop)(nil)
