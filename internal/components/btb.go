package components

import (
	"cobra/internal/bitutil"
	"cobra/internal/pred"
	"cobra/internal/sram"
)

// BTB is the large set-associative branch target buffer (§III-G.2).  Each
// set covers a whole fetch packet: per slot it stores a CFI kind and a
// target, banked one SRAM per slot so the packet reads out in one cycle
// (the superscalar organization of §III-C).  The hit way is recovered at
// update time from the metadata field — exactly the use case the paper
// calls out for enabling set-associativity without extra read ports.
//
// A BTB provides targets (and, for unconditional jumps, a taken direction);
// for conditional branches it augments whatever direction arrives on
// predict_in, passing the direction through untouched (Fig. 3).
type BTB struct {
	pred.NopEvents
	name    string
	latency int
	cfg     pred.Config
	sets    int
	ways    int
	idxBits uint
	tagBits uint

	tags  []*sram.Mem // one per way: valid + tag
	banks []*sram.Mem // [way*FetchWidth + slot]: kind(3) + target(btbTargetBits)
	repl  []uint8     // round-robin allocation pointer per set

	scratch pred.Packet
	metaBuf [1]uint64
}

// CFI kinds stored in BTB entries.
const (
	btbKindNone = iota
	btbKindBranch
	btbKindJump
	btbKindCall
	btbKindRet
	btbKindIndirect
)

// btbTargetBits is the stored target width.  Like the BOOM BTB, entries
// store a sign-extended instruction-granular offset relative to the fetch
// packet base rather than a full virtual address — targets beyond the
// offset range alias and self-correct through mispredicts, a real partial-
// target artifact.
const btbTargetBits = 21

// BTBParams configures a BTB instance.
type BTBParams struct {
	Name    string
	Latency int
	Entries int // total packet entries (sets * ways)
	Ways    int
	TagBits uint
}

// NewBTB builds a set-associative BTB.
func NewBTB(cfg pred.Config, p BTBParams) *BTB {
	if p.Ways <= 0 {
		p.Ways = 4
	}
	if p.Entries%p.Ways != 0 {
		panic("components: BTB entries must divide evenly into ways")
	}
	sets := p.Entries / p.Ways
	if !bitutil.IsPow2(sets) {
		panic("components: BTB sets must be a power of two")
	}
	if p.TagBits == 0 {
		p.TagBits = 20
	}
	if p.Latency < 1 {
		p.Latency = 2
	}
	b := &BTB{
		name:    p.Name,
		latency: p.Latency,
		cfg:     cfg,
		sets:    sets,
		ways:    p.Ways,
		idxBits: bitutil.Clog2(sets),
		tagBits: p.TagBits,
		repl:    make([]uint8, sets),
		scratch: make(pred.Packet, cfg.FetchWidth),
	}
	for w := 0; w < p.Ways; w++ {
		b.tags = append(b.tags, sram.New(sram.Spec{
			Name:       p.Name + "_tag",
			Entries:    sets,
			Width:      int(p.TagBits) + 1, // +valid
			ReadPorts:  1,
			WritePorts: 1,
		}))
		for s := 0; s < cfg.FetchWidth; s++ {
			b.banks = append(b.banks, sram.New(sram.Spec{
				Name:       p.Name + "_tgt",
				Entries:    sets,
				Width:      3 + btbTargetBits,
				ReadPorts:  1,
				WritePorts: 1,
			}))
		}
	}
	return b
}

// Name implements pred.Subcomponent.
func (b *BTB) Name() string { return b.name }

// Latency implements pred.Subcomponent.
func (b *BTB) Latency() int { return b.latency }

// MetaWords implements pred.Subcomponent: word 0 = hit flag + way.
func (b *BTB) MetaWords() int { return 1 }

// NumInputs implements pred.Subcomponent.
func (b *BTB) NumInputs() int { return 1 }

func (b *BTB) index(pc uint64) int {
	return int(bitutil.MixPC(pc, b.cfg.PktOff(), b.idxBits))
}

func (b *BTB) tag(pc uint64) uint64 {
	return (pc >> (b.cfg.PktOff() + b.idxBits)) & bitutil.Mask(b.tagBits)
}

func (b *BTB) bank(way, slot int) *sram.Mem {
	return b.banks[way*b.cfg.FetchWidth+slot]
}

// unpack reconstructs a target from the stored offset and the fetch packet
// base the entry is being read for.
func (b *BTB) unpack(base uint64, field uint64) (kind int, target uint64) {
	kind = int(field & 7)
	off := int64(field>>3) << (64 - btbTargetBits) >> (64 - btbTargetBits) // sign-extend
	target = uint64(int64(b.cfg.PacketBase(base)) + off<<b.cfg.InstOff())
	return kind, target
}

func (b *BTB) pack(base uint64, kind int, target uint64) uint64 {
	off := (int64(target) - int64(b.cfg.PacketBase(base))) >> b.cfg.InstOff()
	return uint64(kind)&7 | (uint64(off)&bitutil.Mask(btbTargetBits))<<3
}

func btbKindToPred(kind int) pred.CFIKind {
	switch kind {
	case btbKindBranch:
		return pred.KindBranch
	case btbKindJump:
		return pred.KindJump
	case btbKindCall:
		return pred.KindCall
	case btbKindRet:
		return pred.KindRet
	case btbKindIndirect:
		return pred.KindIndirect
	}
	return pred.KindNone
}

// lookup probes all ways; returns hit way or -1.
func (b *BTB) lookup(pc uint64) int {
	idx, tag := b.index(pc), b.tag(pc)
	for w := 0; w < b.ways; w++ {
		t := b.tags[w].Read(idx)
		if t&1 == 1 && t>>1 == tag {
			return w
		}
	}
	return -1
}

// Predict implements pred.Subcomponent.
func (b *BTB) Predict(q *pred.Query) pred.Response {
	way := b.lookup(q.PC)
	idx := b.index(q.PC)
	meta := uint64(0)
	overlay := b.scratch
	for i := range overlay {
		overlay[i] = pred.Pred{}
	}
	readWay := way
	if readWay < 0 {
		readWay = 0 // the RTL reads data in parallel with tags; model the port
	}
	for i := 0; i < b.cfg.FetchWidth; i++ {
		field := b.bank(readWay, i).Read(idx)
		if way < 0 {
			continue
		}
		kind, target := b.unpack(q.PC, field)
		if kind == btbKindNone {
			continue
		}
		p := pred.Pred{
			TgtValid:    true,
			Target:      target,
			TgtProvider: b.name,
			IsCFI:       true,
			Kind:        btbKindToPred(kind),
		}
		// Unconditional control flow is always taken; the BTB can assert
		// that.  Conditional branches keep the incoming direction.
		if kind != btbKindBranch {
			p.DirValid = true
			p.Taken = true
			p.DirProvider = b.name
		}
		overlay[i] = p
	}
	if way >= 0 {
		meta = 1 | uint64(way)<<1
	}
	b.metaBuf[0] = meta
	return pred.Response{Overlay: overlay, Meta: b.metaBuf[:]}
}

// Update implements pred.Subcomponent: learn targets of committed taken
// CFIs.  The metadata recovers the predict-time hit way; a miss allocates a
// way round-robin.
func (b *BTB) Update(e *pred.Event) {
	idx, tag := b.index(e.PC), b.tag(e.PC)
	anyTaken := false
	for _, s := range e.Slots {
		if s.Valid && s.Taken && (s.IsBranch || s.IsJump || s.IsCall || s.IsRet || s.IsIndir) {
			anyTaken = true
		}
	}
	hit := e.Meta[0]&1 == 1
	way := int(e.Meta[0] >> 1)
	if hit && way < b.ways {
		// The way may have been re-allocated between predict and commit.
		t := b.tags[way].Read(idx)
		if t&1 != 1 || t>>1 != tag {
			hit = false
		}
	} else {
		hit = false
	}
	if !hit {
		// Allocate only for packets with taken control flow: a never-taken
		// branch has nothing useful to store and would pollute the set.
		if !anyTaken {
			return
		}
		way = int(b.repl[idx]) % b.ways
		b.repl[idx]++
		b.tags[way].Write(idx, tag<<1|1)
		for s := 0; s < b.cfg.FetchWidth; s++ {
			b.bank(way, s).Poke(idx, 0)
		}
	}
	for i, s := range e.Slots {
		if !s.Valid || i >= b.cfg.FetchWidth {
			continue
		}
		kind := btbKindNone
		switch {
		case s.IsRet:
			kind = btbKindRet
		case s.IsCall:
			kind = btbKindCall
		case s.IsIndir:
			kind = btbKindIndirect
		case s.IsJump:
			kind = btbKindJump
		case s.IsBranch:
			kind = btbKindBranch
		}
		if kind == btbKindNone {
			continue
		}
		bank := b.bank(way, i)
		if s.Taken {
			bank.Write(idx, b.pack(e.PC, kind, s.Target))
		} else {
			// Record the kind but keep any previously learned target.
			_, old := b.unpack(e.PC, bank.Peek(idx))
			bank.Write(idx, b.pack(e.PC, kind, old))
		}
	}
}

// Mispredict gives the BTB a fast path to learn a corrected target.
func (b *BTB) Mispredict(e *pred.Event) { b.Update(e) }

// Reset implements pred.Subcomponent.
func (b *BTB) Reset() {
	for _, m := range b.tags {
		m.Reset()
	}
	for _, m := range b.banks {
		m.Reset()
	}
	for i := range b.repl {
		b.repl[i] = 0
	}
}

// Tick implements pred.Subcomponent.
func (b *BTB) Tick(cycle uint64) {
	for _, m := range b.tags {
		m.Tick(cycle)
	}
	for _, m := range b.banks {
		m.Tick(cycle)
	}
}

// Mems exposes the backing memories for the energy model.
func (b *BTB) Mems() []*sram.Mem {
	out := append([]*sram.Mem{}, b.tags...)
	return append(out, b.banks...)
}

// Budget implements pred.Subcomponent.
func (b *BTB) Budget() sram.Budget {
	var bg sram.Budget
	for _, m := range b.tags {
		bg.Mems = append(bg.Mems, m.Spec())
	}
	for _, m := range b.banks {
		bg.Mems = append(bg.Mems, m.Spec())
	}
	bg.FlopBits = len(b.repl) * 8
	return bg
}

var _ pred.Subcomponent = (*BTB)(nil)
