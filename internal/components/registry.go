package components

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"cobra/internal/history"
	"cobra/internal/pred"
)

// Env is the construction environment a factory receives: the fetch geometry
// plus the history providers the composer generated, so components can
// register folded histories (§IV-B.3).
type Env struct {
	Cfg    pred.Config
	Global *history.Global
}

// Factory builds a component instance.  name is the node's instance name
// (e.g. "TAGE3"), latency the digit suffix parsed from it, and size an
// optional "(n)" argument from the topology string (0 when absent).
type Factory func(env Env, name string, latency, size int) (pred.Subcomponent, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register adds a factory under an upper-case base name (e.g. "TAGE").
// Registering a duplicate name panics: the registry is global configuration
// assembled at init time.
func Register(base string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	base = strings.ToUpper(base)
	if _, dup := registry[base]; dup {
		panic(fmt.Sprintf("components: duplicate registration of %q", base))
	}
	registry[base] = f
}

// Registered returns the sorted base names available to topologies.
func Registered() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for k := range registry {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Build constructs a component from a topology node name of the form
// BASE[latency][(size)], e.g. "UBTB1", "BIM2", "TAGE3", "LOOP3(256)".
// Constructor panics (parameter validation deep inside a component, e.g. a
// non-power-of-two geometry) are recovered and surfaced as errors naming the
// offending component, with the panic message as the error text — a bad
// config makes compose.New fail, never crashes the process.
func Build(env Env, nodeName string) (c pred.Subcomponent, err error) {
	base, latency, size, err := ParseNodeName(nodeName)
	if err != nil {
		return nil, err
	}
	regMu.RLock()
	f, ok := registry[base]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("components: unknown component %q (registered: %s)",
			base, strings.Join(Registered(), ", "))
	}
	defer func() {
		if r := recover(); r != nil {
			c, err = nil, fmt.Errorf("components: constructing %s (latency=%d size=%d): %v",
				nodeName, latency, size, r)
		}
	}()
	return f(env, nodeName, latency, size)
}

// ParseNodeName splits "LOOP3(256)" into base "LOOP", latency 3, size 256.
// A missing latency digit yields 0 (factory default); a missing size yields
// 0.
func ParseNodeName(s string) (base string, latency, size int, err error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", 0, 0, fmt.Errorf("components: empty node name")
	}
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return "", 0, 0, fmt.Errorf("components: malformed size in %q", s)
		}
		sz, perr := strconv.Atoi(s[i+1 : len(s)-1])
		if perr != nil || sz <= 0 {
			return "", 0, 0, fmt.Errorf("components: bad size in %q", s)
		}
		size = sz
		s = s[:i]
	}
	// Trailing digits are the latency.
	j := len(s)
	for j > 0 && s[j-1] >= '0' && s[j-1] <= '9' {
		j--
	}
	if j < len(s) {
		latency, _ = strconv.Atoi(s[j:])
	}
	base = strings.ToUpper(s[:j])
	if base == "" {
		return "", 0, 0, fmt.Errorf("components: node name %q has no base", s)
	}
	return base, latency, size, nil
}

func init() {
	Register("BIM", func(env Env, name string, latency, size int) (pred.Subcomponent, error) {
		if size == 0 {
			size = 4096 // 16K counters / FetchWidth rows at the default width
		}
		return NewHBIM(env.Cfg, HBIMParams{
			Name: name, Latency: latency, Entries: size, Source: IndexPC,
		}), nil
	})
	Register("GBIM", func(env Env, name string, latency, size int) (pred.Subcomponent, error) {
		if size == 0 {
			size = 4096
		}
		return NewHBIM(env.Cfg, HBIMParams{
			Name: name, Latency: latency, Entries: size, Source: IndexGlobal,
			HistLen: 16,
		}), nil
	})
	Register("LBIM", func(env Env, name string, latency, size int) (pred.Subcomponent, error) {
		if size == 0 {
			size = 4096
		}
		return NewHBIM(env.Cfg, HBIMParams{
			Name: name, Latency: latency, Entries: size, Source: IndexLocal,
			HistLen: 16,
		}), nil
	})
	Register("GSEL", func(env Env, name string, latency, size int) (pred.Subcomponent, error) {
		if size == 0 {
			size = 4096
		}
		return NewHBIM(env.Cfg, HBIMParams{
			Name: name, Latency: latency, Entries: size, Source: IndexGSelect,
			HistLen: 8,
		}), nil
	})
	Register("PBIM", func(env Env, name string, latency, size int) (pred.Subcomponent, error) {
		if size == 0 {
			size = 4096
		}
		return NewHBIM(env.Cfg, HBIMParams{
			Name: name, Latency: latency, Entries: size, Source: IndexPath,
			HistLen: 12,
		}), nil
	})
	// PHT is an alias the §IV-A worked example uses for a tagged
	// pattern-history table; GTAG provides the behaviour.
	for _, alias := range []string{"GTAG", "PHT"} {
		Register(alias, func(env Env, name string, latency, size int) (pred.Subcomponent, error) {
			if size == 0 {
				size = 512 // 2K counters at FetchWidth=4
			}
			if env.Global.Len() < 16 {
				return nil, fmt.Errorf("components: %s needs 16 history bits but the global history register has %d",
					name, env.Global.Len())
			}
			return NewGTAG(env.Cfg, env.Global, GTAGParams{
				Name: name, Latency: latency, Entries: size,
			}), nil
		})
	}
	Register("BTB", func(env Env, name string, latency, size int) (pred.Subcomponent, error) {
		if size == 0 {
			size = 512 // packet entries: 2K instruction slots at width 4
		}
		return NewBTB(env.Cfg, BTBParams{
			Name: name, Latency: latency, Entries: size, Ways: 4,
		}), nil
	})
	Register("UBTB", func(env Env, name string, latency, size int) (pred.Subcomponent, error) {
		if size == 0 {
			size = 32
		}
		if latency > 1 {
			return nil, fmt.Errorf("components: uBTB is single-cycle; latency %d unsupported", latency)
		}
		return NewUBTB(env.Cfg, UBTBParams{Name: name, Entries: size}), nil
	})
	Register("TAGE", func(env Env, name string, latency, size int) (pred.Subcomponent, error) {
		p := DefaultTAGEParams(name)
		if latency > 0 {
			p.Latency = latency
		}
		for _, hl := range p.HistLens {
			if hl > env.Global.Len() {
				return nil, fmt.Errorf("components: %s needs %d history bits but the global history register has %d (set Options.GHistBits >= %d)",
					name, hl, env.Global.Len(), hl)
			}
		}
		if size > 0 {
			// Scale table sizes uniformly toward the requested total rows.
			total := 0
			for _, e := range p.TableEntries {
				total += e
			}
			for i := range p.TableEntries {
				scaled := p.TableEntries[i] * size / total
				if scaled < 64 {
					scaled = 64
				}
				// Round down to a power of two.
				v := 64
				for v*2 <= scaled {
					v *= 2
				}
				p.TableEntries[i] = v
			}
		}
		return NewTAGE(env.Cfg, env.Global, p), nil
	})
	Register("TOURNEY", func(env Env, name string, latency, size int) (pred.Subcomponent, error) {
		if size == 0 {
			size = 1024 // "1K tournament counters" (Table I)
		}
		return NewTourney(env.Cfg, TourneyParams{
			Name: name, Latency: latency, Entries: size,
		}), nil
	})
	Register("LOOP", func(env Env, name string, latency, size int) (pred.Subcomponent, error) {
		if size == 0 {
			size = 256 // "256-entry loop predictor" (Table I)
		}
		return NewLoop(env.Cfg, LoopParams{
			Name: name, Latency: latency, Entries: size,
		}), nil
	})
	Register("PERC", func(env Env, name string, latency, size int) (pred.Subcomponent, error) {
		if size == 0 {
			size = 256
		}
		return NewPerceptron(env.Cfg, PerceptronParams{
			Name: name, Latency: latency, Entries: size, HistLen: 24,
		}), nil
	})
	Register("SCOR", func(env Env, name string, latency, size int) (pred.Subcomponent, error) {
		if size == 0 {
			size = 1024
		}
		return NewStatCorrector(env.Cfg, StatCorrectorParams{
			Name: name, Latency: latency, Entries: size,
		}), nil
	})
}
