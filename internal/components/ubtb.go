package components

import (
	"cobra/internal/bitutil"
	"cobra/internal/pred"
	"cobra/internal/sram"
)

// UBTB is the small, fully associative, single-cycle micro-BTB (§III-G.2).
// Because it answers at Fetch-1 — before histories are available (§III-B) —
// it predicts from the fetch PC alone.  Each entry remembers one fetch
// packet's dominant taken control-flow instruction: its slot, kind, and
// target, plus a 2-bit hysteresis counter so a packet whose branch stops
// being taken releases its entry.
//
// The uBTB asserts both direction and target for its hit slot; the paper's
// TAGE-L topology places it lowest in the ordering so any 2- or 3-cycle
// component can override it.
type UBTB struct {
	name    string
	latency int
	cfg     pred.Config
	tagBits uint

	entries []ubtbEntry
	lru     []uint32 // last-touch stamps for replacement
	clock   uint32

	scratch pred.Packet
	metaBuf [1]uint64
}

type ubtbEntry struct {
	valid  bool
	tag    uint64
	slot   uint8
	kind   uint8 // btbKind*
	target uint64
	hyst   uint8 // 2-bit confidence
}

// UBTBParams configures a micro-BTB.
type UBTBParams struct {
	Name    string
	Entries int
	TagBits uint
}

// NewUBTB builds a 1-cycle micro BTB.
func NewUBTB(cfg pred.Config, p UBTBParams) *UBTB {
	if p.Entries <= 0 {
		panic("components: uBTB needs at least one entry")
	}
	if p.TagBits == 0 {
		p.TagBits = 28
	}
	return &UBTB{
		name:    p.Name,
		latency: 1,
		cfg:     cfg,
		tagBits: p.TagBits,
		entries: make([]ubtbEntry, p.Entries),
		lru:     make([]uint32, p.Entries),
		scratch: make(pred.Packet, cfg.FetchWidth),
	}
}

// Name implements pred.Subcomponent.
func (u *UBTB) Name() string { return u.name }

// Latency implements pred.Subcomponent: always 1 (that is its point).
func (u *UBTB) Latency() int { return u.latency }

// MetaWords implements pred.Subcomponent: hit flag + entry index.
func (u *UBTB) MetaWords() int { return 1 }

// NumInputs implements pred.Subcomponent.
func (u *UBTB) NumInputs() int { return 1 }

func (u *UBTB) tagOf(pc uint64) uint64 {
	return (pc >> u.cfg.PktOff()) & bitutil.Mask(u.tagBits)
}

func (u *UBTB) find(pc uint64) int {
	tag := u.tagOf(pc)
	for i := range u.entries {
		if u.entries[i].valid && u.entries[i].tag == tag {
			return i
		}
	}
	return -1
}

// Predict implements pred.Subcomponent.  Per §III-B a latency-1 component
// never sees history inputs; the composer hands it zeroed history and this
// implementation reads only q.PC.
func (u *UBTB) Predict(q *pred.Query) pred.Response {
	overlay := u.scratch
	for s := range overlay {
		overlay[s] = pred.Pred{}
	}
	i := u.find(q.PC)
	meta := uint64(0)
	if i >= 0 {
		u.clock++
		u.lru[i] = u.clock
		e := u.entries[i]
		meta = 1 | uint64(i)<<1
		if int(e.slot) < u.cfg.FetchWidth && bitutil.CtrTaken(e.hyst, 2) {
			overlay[e.slot] = pred.Pred{
				DirValid:    true,
				Taken:       true,
				TgtValid:    true,
				Target:      e.target,
				IsCFI:       true,
				Kind:        btbKindToPred(int(e.kind)),
				DirProvider: u.name,
				TgtProvider: u.name,
			}
		}
	}
	u.metaBuf[0] = meta
	return pred.Response{Overlay: overlay, Meta: u.metaBuf[:]}
}

// Fire implements pred.Subcomponent (unused: the uBTB keeps no speculative
// state).
func (u *UBTB) Fire(*pred.Event) {}

// Repair implements pred.Subcomponent (nothing to repair).
func (u *UBTB) Repair(*pred.Event) {}

// Mispredict gives the uBTB an immediate correction, keeping the
// single-cycle path fresh after redirects.
func (u *UBTB) Mispredict(e *pred.Event) { u.train(e) }

// Update implements pred.Subcomponent (commit-time training).
func (u *UBTB) Update(e *pred.Event) { u.train(e) }

func (u *UBTB) train(e *pred.Event) {
	// Find the first taken CFI in the packet — the packet's exit point.
	slot := -1
	var s pred.SlotInfo
	for i := range e.Slots {
		if e.Slots[i].Valid && e.Slots[i].Taken {
			slot, s = i, e.Slots[i]
			break
		}
	}
	i := u.find(e.PC)
	if slot < 0 {
		// Packet fell through: weaken any entry so stale taken predictions
		// die out.
		if i >= 0 {
			u.entries[i].hyst = bitutil.SatDec(u.entries[i].hyst, 2)
		}
		return
	}
	if i < 0 {
		// Allocate the least recently used entry.
		victim, best := 0, u.lru[0]
		for j := 1; j < len(u.entries); j++ {
			if !u.entries[j].valid {
				victim = j
				break
			}
			if u.lru[j] < best {
				victim, best = j, u.lru[j]
			}
		}
		kind := uint8(btbKindBranch)
		switch {
		case s.IsRet:
			kind = btbKindRet
		case s.IsCall:
			kind = btbKindCall
		case s.IsIndir:
			kind = btbKindIndirect
		case s.IsJump:
			kind = btbKindJump
		}
		u.clock++
		u.entries[victim] = ubtbEntry{
			valid: true, tag: u.tagOf(e.PC), slot: uint8(slot),
			kind: kind, target: s.Target, hyst: 2,
		}
		u.lru[victim] = u.clock
		return
	}
	ent := &u.entries[i]
	if int(ent.slot) == slot && ent.target == s.Target {
		ent.hyst = bitutil.SatInc(ent.hyst, 2)
		return
	}
	// The packet's exit moved (different slot or target): retrain with
	// hysteresis so a briefly bimodal packet does not thrash.
	ent.hyst = bitutil.SatDec(ent.hyst, 2)
	if ent.hyst == 0 {
		ent.slot = uint8(slot)
		ent.target = s.Target
		ent.hyst = 2
	}
}

// Reset implements pred.Subcomponent.
func (u *UBTB) Reset() {
	for i := range u.entries {
		u.entries[i] = ubtbEntry{}
		u.lru[i] = 0
	}
	u.clock = 0
}

// Tick implements pred.Subcomponent (flop-based structure: nothing to do).
func (u *UBTB) Tick(uint64) {}

// Budget implements pred.Subcomponent: fully associative structures are
// flop/CAM based.
func (u *UBTB) Budget() sram.Budget {
	per := 1 + int(u.tagBits) + 8 + 3 + btbTargetBits + 2 // valid+tag+slot+kind+target+hyst
	return sram.Budget{FlopBits: len(u.entries) * per}
}

var _ pred.Subcomponent = (*UBTB)(nil)
