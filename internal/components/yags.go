package components

import (
	"cobra/internal/bitutil"
	"cobra/internal/pred"
	"cobra/internal/sram"
)

// YAGS is "Yet Another Global Scheme" (Eden & Mudge, [16] in the paper):
// a choice bimodal gives the bias, and two small *tagged* direction caches
// store only the exceptions — branches that deviate from their bias under
// particular histories.  Taken-biased branches consult the "not-taken"
// cache and vice versa, halving exception storage versus gshare.
//
// As a composition citizen, YAGS provides a direction for every slot when
// the choice table speaks; exception-cache hits override the bias per slot.
// Metadata carries the choice row and both exception lookups (§III-D).
type YAGS struct {
	pred.NopEvents
	name    string
	latency int
	cfg     pred.Config
	idxBits uint
	excBits uint
	tagBits uint
	histLen uint

	choice  *sram.Mem // FetchWidth 2-bit counters per row
	tCache  *sram.Mem // exceptions for not-taken-biased branches (predict taken)
	ntCache *sram.Mem // exceptions for taken-biased branches (predict not-taken)

	scratch pred.Packet
	metaBuf [3]uint64
}

// YAGSParams configures a YAGS instance.
type YAGSParams struct {
	Name       string
	Latency    int
	ChoiceRows int
	ExcEntries int
	TagBits    uint
	HistLen    uint
}

// NewYAGS builds the predictor.
func NewYAGS(cfg pred.Config, p YAGSParams) *YAGS {
	if p.ChoiceRows == 0 {
		p.ChoiceRows = 2048
	}
	if p.ExcEntries == 0 {
		p.ExcEntries = 512
	}
	if !bitutil.IsPow2(p.ChoiceRows) || !bitutil.IsPow2(p.ExcEntries) {
		panic("components: YAGS table sizes must be powers of two")
	}
	if p.TagBits == 0 {
		p.TagBits = 8
	}
	if p.HistLen == 0 {
		p.HistLen = 12
	}
	if p.Latency < 1 {
		p.Latency = 3
	}
	mk := func(n string) *sram.Mem {
		return sram.New(sram.Spec{
			Name:       n,
			Entries:    p.ExcEntries,
			Width:      int(p.TagBits) + 1 + 2, // tag + valid + 2-bit ctr
			ReadPorts:  1,
			WritePorts: 1,
		})
	}
	return &YAGS{
		name:    p.Name,
		latency: p.Latency,
		cfg:     cfg,
		idxBits: bitutil.Clog2(p.ChoiceRows),
		excBits: bitutil.Clog2(p.ExcEntries),
		tagBits: p.TagBits,
		histLen: p.HistLen,
		choice: sram.New(sram.Spec{
			Name:       p.Name + "_choice",
			Entries:    p.ChoiceRows,
			Width:      cfg.FetchWidth * 2,
			ReadPorts:  1,
			WritePorts: 1,
		}),
		tCache:  mk(p.Name + "_t"),
		ntCache: mk(p.Name + "_nt"),
		scratch: make(pred.Packet, cfg.FetchWidth),
	}
}

// Name implements pred.Subcomponent.
func (y *YAGS) Name() string { return y.name }

// Latency implements pred.Subcomponent.
func (y *YAGS) Latency() int { return y.latency }

// MetaWords implements pred.Subcomponent: choice row, exception rows.
func (y *YAGS) MetaWords() int { return 3 }

// NumInputs implements pred.Subcomponent.
func (y *YAGS) NumInputs() int { return 1 }

func (y *YAGS) choiceIdx(pc uint64) int {
	return int(bitutil.MixPC(pc, y.cfg.PktOff(), y.idxBits))
}

// exception caches are indexed by pc^hist at *slot* granularity (exceptions
// are per branch), tagged with low PC bits.
func (y *YAGS) excIdx(slotPC, ghist uint64) int {
	pcPart := bitutil.MixPC(slotPC, y.cfg.InstOff(), y.excBits)
	h := bitutil.XorFold(ghist&bitutil.Mask(y.histLen), y.excBits)
	return int((pcPart ^ h) & bitutil.Mask(y.excBits))
}

func (y *YAGS) excTag(slotPC uint64) uint64 {
	return (slotPC >> y.cfg.InstOff()) & bitutil.Mask(y.tagBits)
}

func (y *YAGS) excHit(row, tag uint64) (bool, uint8) {
	if row&1 == 1 && (row>>3)&bitutil.Mask(y.tagBits) == tag {
		return true, uint8(row >> 1 & 3)
	}
	return false, 0
}

func (y *YAGS) excPack(tag uint64, ctr uint8) uint64 {
	return 1 | uint64(ctr&3)<<1 | tag<<3
}

// Predict implements pred.Subcomponent.  The exception caches read at the
// packet's *first* choice-biased slot per side (one port each, like the
// hardware); remaining slots use the bias.
func (y *YAGS) Predict(q *pred.Query) pred.Response {
	cIdx := y.choiceIdx(q.PC)
	cRow := y.choice.Read(cIdx)
	overlay := y.scratch
	for i := range overlay {
		overlay[i] = pred.Pred{}
	}
	// One exception lookup per cache per cycle, keyed on the packet base
	// slot; the lookup serves the slot whose bias matches the cache side.
	tIdx := y.excIdx(q.PC, q.GHist)
	ntIdx := tIdx
	tRow := y.tCache.Read(tIdx)
	ntRow := y.ntCache.Read(ntIdx)
	for i := 0; i < y.cfg.FetchWidth; i++ {
		bias := bitutil.CtrTaken(uint8(bitutil.Bits(cRow, uint(i)*2, 2)), 2)
		taken := bias
		slotPC := y.cfg.SlotPC(q.PC, i)
		tag := y.excTag(slotPC)
		if bias {
			if hit, ctr := y.excHit(ntRow, tag); hit {
				taken = bitutil.CtrTaken(ctr, 2)
			}
		} else {
			if hit, ctr := y.excHit(tRow, tag); hit {
				taken = bitutil.CtrTaken(ctr, 2)
			}
		}
		overlay[i] = pred.Pred{DirValid: true, Taken: taken, DirProvider: y.name}
	}
	y.metaBuf[0] = cRow | uint64(cIdx)<<32
	y.metaBuf[1] = tRow | uint64(tIdx)<<32
	y.metaBuf[2] = ntRow | uint64(ntIdx)<<32
	return pred.Response{Overlay: overlay, Meta: y.metaBuf[:]}
}

// Update implements pred.Subcomponent: train the choice bias; on a bias
// miss, allocate/train the appropriate exception cache.
func (y *YAGS) Update(e *pred.Event) {
	cRow := e.Meta[0] & bitutil.Mask(32)
	cIdx := int(e.Meta[0] >> 32)
	tRow := e.Meta[1] & bitutil.Mask(32)
	tIdx := int(e.Meta[1] >> 32)
	ntRow := e.Meta[2] & bitutil.Mask(32)
	ntIdx := int(e.Meta[2] >> 32)
	dirty := false
	for i, s := range e.Slots {
		if !s.Valid || !s.IsBranch || i >= y.cfg.FetchWidth {
			continue
		}
		sh := uint(i) * 2
		c := uint8(bitutil.Bits(cRow, sh, 2))
		bias := bitutil.CtrTaken(c, 2)
		tag := y.excTag(s.PC)
		if s.Taken != bias {
			// Exception: train/allocate the cache for this bias side.
			if bias {
				hit, ctr := y.excHit(ntRow, tag)
				if hit {
					ntRow = y.excPack(tag, bitutil.CtrUpdate(ctr, s.Taken, 2))
				} else {
					ntRow = y.excPack(tag, 1) // weakly not-taken exception
				}
				y.ntCache.Write(ntIdx, ntRow)
			} else {
				hit, ctr := y.excHit(tRow, tag)
				if hit {
					tRow = y.excPack(tag, bitutil.CtrUpdate(ctr, s.Taken, 2))
				} else {
					tRow = y.excPack(tag, 2) // weakly taken exception
				}
				y.tCache.Write(tIdx, tRow)
			}
		} else {
			// Agreement: strengthen any matching exception entry toward the
			// outcome too (it may be covering this branch).
			if bias {
				if hit, ctr := y.excHit(ntRow, tag); hit {
					ntRow = y.excPack(tag, bitutil.CtrUpdate(ctr, s.Taken, 2))
					y.ntCache.Write(ntIdx, ntRow)
				}
			} else if hit, ctr := y.excHit(tRow, tag); hit {
				tRow = y.excPack(tag, bitutil.CtrUpdate(ctr, s.Taken, 2))
				y.tCache.Write(tIdx, tRow)
			}
		}
		// The choice table trains except when the exception covered a
		// deviation correctly (the YAGS partial-update rule).
		nc := bitutil.CtrUpdate(c, s.Taken, 2)
		cRow = cRow&^(uint64(3)<<sh) | uint64(nc)<<sh
		dirty = true
	}
	if dirty {
		y.choice.Write(cIdx, cRow)
	}
}

// Mispredict trains immediately (§III-E fast path).
func (y *YAGS) Mispredict(e *pred.Event) { y.Update(e) }

// Reset implements pred.Subcomponent.
func (y *YAGS) Reset() {
	y.choice.Reset()
	y.tCache.Reset()
	y.ntCache.Reset()
}

// Tick implements pred.Subcomponent.
func (y *YAGS) Tick(cycle uint64) {
	y.choice.Tick(cycle)
	y.tCache.Tick(cycle)
	y.ntCache.Tick(cycle)
}

// Mems exposes the backing memories for the energy model.
func (y *YAGS) Mems() []*sram.Mem { return []*sram.Mem{y.choice, y.tCache, y.ntCache} }

// Budget implements pred.Subcomponent.
func (y *YAGS) Budget() sram.Budget {
	return sram.Budget{Mems: []sram.Spec{y.choice.Spec(), y.tCache.Spec(), y.ntCache.Spec()}}
}

var _ pred.Subcomponent = (*YAGS)(nil)
