package components

import (
	"fmt"

	"cobra/internal/bitutil"
	"cobra/internal/pred"
	"cobra/internal/sram"
)

// GSkew is the 2bc-gskew-style predictor of the Alpha EV8 lineage ([42] in
// the paper): three counter banks indexed by *different* hashes of (PC,
// history) vote by majority, so a conflict alias in one bank is outvoted by
// the other two — the enhanced skewed-associativity answer to gshare's
// aliasing (the pathology the paper's Fig. 10 pins on the Tournament).
//
// Each bank row holds FetchWidth 2-bit counters (§III-C superscalar
// organization).  Metadata carries all three rows so update is write-only
// (§III-D), with the EV8 partial-update rule: only agreeing banks train on
// a correct prediction; all banks train on a mispredict.
type GSkew struct {
	pred.NopEvents
	name    string
	latency int
	cfg     pred.Config
	idxBits uint
	histLen uint
	banks   [3]*sram.Mem

	scratch pred.Packet
	metaBuf [3]uint64
}

// GSkewParams configures a GSkew instance.
type GSkewParams struct {
	Name    string
	Latency int
	Rows    int // rows per bank
	HistLen uint
}

// NewGSkew builds the three-bank majority predictor.
func NewGSkew(cfg pred.Config, p GSkewParams) *GSkew {
	if p.Rows == 0 {
		p.Rows = 1024
	}
	if !bitutil.IsPow2(p.Rows) {
		panic("components: GSkew rows must be a power of two")
	}
	if p.HistLen == 0 {
		p.HistLen = 16
	}
	if p.Latency < 1 {
		p.Latency = 3
	}
	g := &GSkew{
		name:    p.Name,
		latency: p.Latency,
		cfg:     cfg,
		idxBits: bitutil.Clog2(p.Rows),
		histLen: p.HistLen,
		scratch: make(pred.Packet, cfg.FetchWidth),
	}
	for b := range g.banks {
		g.banks[b] = sram.New(sram.Spec{
			Name:       p.Name + "_bank",
			Entries:    p.Rows,
			Width:      cfg.FetchWidth * 2,
			ReadPorts:  1,
			WritePorts: 1,
		})
	}
	return g
}

// Name implements pred.Subcomponent.
func (g *GSkew) Name() string { return g.name }

// Latency implements pred.Subcomponent.
func (g *GSkew) Latency() int { return g.latency }

// MetaWords implements pred.Subcomponent: one row+index word per bank.
func (g *GSkew) MetaWords() int { return 3 }

// NumInputs implements pred.Subcomponent.
func (g *GSkew) NumInputs() int { return 1 }

// skewed indexing: three distinct mixes of (pc, hist) — the skewing
// functions decorrelate conflict aliases across banks.
func (g *GSkew) index(bank int, pc, ghist uint64) int {
	pcPart := bitutil.MixPC(pc, g.cfg.PktOff(), g.idxBits)
	h := ghist & bitutil.Mask(g.histLen)
	var v uint64
	switch bank {
	case 0:
		v = pcPart ^ bitutil.XorFold(h, g.idxBits)
	case 1:
		v = pcPart ^ bitutil.XorFold(h*0x9E37, g.idxBits) ^ pcPart>>3
	default:
		v = bitutil.XorFold(h^pcPart<<2, g.idxBits) ^ pcPart>>1
	}
	return int(v & bitutil.Mask(g.idxBits))
}

// Predict implements pred.Subcomponent: per-slot majority of the banks.
func (g *GSkew) Predict(q *pred.Query) pred.Response {
	var rows [3]uint64
	for b := range g.banks {
		idx := g.index(b, q.PC, q.GHist)
		rows[b] = g.banks[b].Read(idx)
		g.metaBuf[b] = rows[b] | uint64(idx)<<32
	}
	overlay := g.scratch
	for i := 0; i < g.cfg.FetchWidth; i++ {
		votes := 0
		for b := range rows {
			if bitutil.CtrTaken(uint8(bitutil.Bits(rows[b], uint(i)*2, 2)), 2) {
				votes++
			}
		}
		overlay[i] = pred.Pred{DirValid: true, Taken: votes >= 2, DirProvider: g.name}
	}
	return pred.Response{Overlay: overlay, Meta: g.metaBuf[:]}
}

// Update implements pred.Subcomponent with the EV8 partial-update rule.
func (g *GSkew) Update(e *pred.Event) {
	var rows [3]uint64
	var idxs [3]int
	var dirty [3]bool
	for b := range rows {
		rows[b] = e.Meta[b] & bitutil.Mask(32)
		idxs[b] = int(e.Meta[b] >> 32)
	}
	for i, s := range e.Slots {
		if !s.Valid || !s.IsBranch || i >= g.cfg.FetchWidth {
			continue
		}
		sh := uint(i) * 2
		var ctr [3]uint8
		votes := 0
		for b := range rows {
			ctr[b] = uint8(bitutil.Bits(rows[b], sh, 2))
			if bitutil.CtrTaken(ctr[b], 2) {
				votes++
			}
		}
		majority := votes >= 2
		for b := range rows {
			bankVote := bitutil.CtrTaken(ctr[b], 2)
			// Partial update: on a correct majority, only banks that agreed
			// strengthen; on a wrong majority, every bank trains.
			if majority == s.Taken && bankVote != majority {
				continue
			}
			nc := bitutil.CtrUpdate(ctr[b], s.Taken, 2)
			if nc != ctr[b] {
				rows[b] = rows[b]&^(uint64(3)<<sh) | uint64(nc)<<sh
				dirty[b] = true
			}
		}
	}
	for b := range rows {
		if dirty[b] {
			g.banks[b].Write(idxs[b], rows[b])
		}
	}
}

// Mispredict trains immediately (§III-E fast path).
func (g *GSkew) Mispredict(e *pred.Event) { g.Update(e) }

// Reset implements pred.Subcomponent.
func (g *GSkew) Reset() {
	for _, b := range g.banks {
		b.Reset()
	}
}

// Tick implements pred.Subcomponent.
func (g *GSkew) Tick(cycle uint64) {
	for _, b := range g.banks {
		b.Tick(cycle)
	}
}

// Mems exposes the backing memories for the energy model.
func (g *GSkew) Mems() []*sram.Mem { return g.banks[:] }

// Budget implements pred.Subcomponent.
func (g *GSkew) Budget() sram.Budget {
	var bg sram.Budget
	for _, b := range g.banks {
		bg.Mems = append(bg.Mems, b.Spec())
	}
	return bg
}

var _ pred.Subcomponent = (*GSkew)(nil)

func init() {
	Register("GEHL", func(env Env, name string, latency, size int) (pred.Subcomponent, error) {
		p := DefaultGEHLParams(name)
		if latency > 0 {
			p.Latency = latency
		}
		for _, hl := range p.HistLens {
			if hl > env.Global.Len() {
				return nil, fmt.Errorf("components: %s needs %d history bits but the global history register has %d",
					name, hl, env.Global.Len())
			}
		}
		return NewGEHL(env.Cfg, env.Global, p), nil
	})
	Register("YAGS", func(env Env, name string, latency, size int) (pred.Subcomponent, error) {
		prm := YAGSParams{Name: name, Latency: latency}
		if size > 0 {
			prm.ChoiceRows = size
			prm.ExcEntries = size / 4
		}
		return NewYAGS(env.Cfg, prm), nil
	})
	Register("GSKEW", func(env Env, name string, latency, size int) (pred.Subcomponent, error) {
		prm := GSkewParams{Name: name, Latency: latency}
		if size > 0 {
			prm.Rows = size
		}
		return NewGSkew(env.Cfg, prm), nil
	})
}
