package components

import (
	"math/rand"
	"testing"

	"cobra/internal/history"
	"cobra/internal/pred"
)

// tageHarness drives a TAGE component the way the composer would: predict
// with live folds, speculatively shift the GHR, update at commit with the
// predict-time metadata.
type tageHarness struct {
	g    *history.Global
	t    *TAGE
	cfg  pred.Config
	hist uint64
}

func newTageHarness(params TAGEParams) *tageHarness {
	g := history.NewGlobal(64)
	cfg := pred.DefaultConfig()
	return &tageHarness{g: g, t: NewTAGE(cfg, g, params), cfg: cfg}
}

// step predicts for the branch at (pc, slot), commits outcome, trains, and
// returns whether TAGE (or pass-through) predicted correctly and whether
// TAGE asserted an opinion.
func (h *tageHarness) step(pc uint64, slot int, outcome bool) (correct, asserted bool) {
	q := &pred.Query{PC: pc, GHist: h.g.Bits(64), GRaw: h.g.Raw()}
	r := h.t.Predict(q)
	p := r.Overlay[slot]
	asserted = p.DirValid
	predTaken := false // pipeline default: not-taken
	if p.DirValid {
		predTaken = p.Taken
	}
	correct = predTaken == outcome
	slots := make([]pred.SlotInfo, h.cfg.FetchWidth)
	slots[slot] = pred.SlotInfo{
		Valid: true, IsBranch: true, Taken: outcome,
		PredTaken: predTaken, Mispredicted: predTaken != outcome,
	}
	h.t.Update(&pred.Event{PC: pc, Meta: r.Meta, Slots: slots})
	h.g.Shift(outcome)
	return correct, asserted
}

func TestTAGELearnsHistoryPattern(t *testing.T) {
	// A period-3 pattern (T,T,N) is invisible to a bimodal but trivial for a
	// short-history tagged table.
	h := newTageHarness(DefaultTAGEParams("tage"))
	pattern := []bool{true, true, false}
	correct, total := 0, 0
	for i := 0; i < 3000; i++ {
		ok, _ := h.step(0x1000, 0, pattern[i%3])
		if i >= 1500 {
			total++
			if ok {
				correct++
			}
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.98 {
		t.Errorf("TAGE accuracy on period-3 pattern = %.3f, want >= 0.98", acc)
	}
}

func TestTAGELearnsLongHistoryCorrelation(t *testing.T) {
	// Outcome equals the outcome 20 branches ago — needs >=20 bits of
	// history, beyond the first few tables.
	h := newTageHarness(DefaultTAGEParams("tage"))
	rng := rand.New(rand.NewSource(5))
	var past []bool
	correct, total := 0, 0
	for i := 0; i < 20000; i++ {
		var outcome bool
		if len(past) >= 20 {
			outcome = past[len(past)-20]
		} else {
			outcome = rng.Intn(2) == 1
		}
		ok, _ := h.step(0x2000, 1, outcome)
		past = append(past, outcome)
		if i >= 10000 {
			total++
			if ok {
				correct++
			}
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.95 {
		t.Errorf("TAGE accuracy on 20-deep correlation = %.3f, want >= 0.95", acc)
	}
}

func TestTAGESilentWithoutAllocation(t *testing.T) {
	h := newTageHarness(DefaultTAGEParams("tage"))
	q := &pred.Query{PC: 0x3000, GHist: 0}
	r := h.t.Predict(q)
	for i, p := range r.Overlay {
		if p.DirValid {
			t.Errorf("slot %d: fresh TAGE must pass through", i)
		}
	}
	if r.Meta[0]&1 != 0 {
		t.Error("fresh TAGE reported a provider hit")
	}
}

func TestTAGEMetaRoundTripNoExtraReads(t *testing.T) {
	h := newTageHarness(DefaultTAGEParams("tage"))
	// Warm up with some mispredicts to trigger allocations.
	for i := 0; i < 50; i++ {
		h.step(0x4000, 0, i%2 == 0)
	}
	var reads uint64
	for _, tb := range h.t.tables {
		reads += tb.mem.TotalReads
	}
	q := &pred.Query{PC: 0x4000, GHist: h.g.Bits(64)}
	r := h.t.Predict(q)
	var reads2 uint64
	for _, tb := range h.t.tables {
		reads2 += tb.mem.TotalReads
	}
	predReads := reads2 - reads
	if predReads != uint64(len(h.t.tables)) {
		t.Errorf("predict read %d rows, want %d (one per table)", predReads, len(h.t.tables))
	}
	slots := make([]pred.SlotInfo, 4)
	slots[0] = pred.SlotInfo{Valid: true, IsBranch: true, Taken: true}
	h.t.Update(&pred.Event{PC: 0x4000, Meta: r.Meta, Slots: slots})
	var reads3 uint64
	for _, tb := range h.t.tables {
		reads3 += tb.mem.TotalReads
	}
	if reads3 != reads2 {
		t.Errorf("commit-time update issued %d reads; metadata should carry rows", reads3-reads2)
	}
}

func TestTAGEAllocationOnMispredict(t *testing.T) {
	h := newTageHarness(DefaultTAGEParams("tage"))
	// One mispredicted branch (pipeline said not-taken, outcome taken).
	q := &pred.Query{PC: 0x5000, GHist: 0}
	r := h.t.Predict(q)
	slots := make([]pred.SlotInfo, 4)
	slots[2] = pred.SlotInfo{Valid: true, IsBranch: true, Taken: true, Mispredicted: true}
	h.t.Update(&pred.Event{PC: 0x5000, Meta: r.Meta, Slots: slots})
	// Same history: some table must now hit and predict taken.
	r = h.t.Predict(q)
	if r.Meta[0]&1 != 1 {
		t.Fatal("no table allocated after mispredict")
	}
}

func TestTAGENoAllocationWhenCorrect(t *testing.T) {
	h := newTageHarness(DefaultTAGEParams("tage"))
	q := &pred.Query{PC: 0x6000, GHist: 0}
	r := h.t.Predict(q)
	slots := make([]pred.SlotInfo, 4)
	// Base predictor was right: not mispredicted.
	slots[0] = pred.SlotInfo{Valid: true, IsBranch: true, Taken: false, PredTaken: false}
	h.t.Update(&pred.Event{PC: 0x6000, Meta: r.Meta, Slots: slots})
	r = h.t.Predict(q)
	if r.Meta[0]&1 == 1 {
		t.Error("TAGE allocated although the pipeline was correct")
	}
}

func TestTAGEDeterministic(t *testing.T) {
	run := func() uint64 {
		h := newTageHarness(DefaultTAGEParams("tage"))
		var sig uint64
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 2000; i++ {
			pc := uint64(0x1000 + (rng.Intn(16) << 4))
			outcome := rng.Intn(3) != 0
			ok, asserted := h.step(pc, rng.Intn(4), outcome)
			sig = sig*31 + b2u(ok)*2 + b2u(asserted)
		}
		return sig
	}
	if run() != run() {
		t.Error("TAGE is not deterministic across identical runs")
	}
}

func TestTAGEParamsValidation(t *testing.T) {
	g := history.NewGlobal(64)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mismatched parameter slices")
		}
	}()
	NewTAGE(pred.DefaultConfig(), g, TAGEParams{
		Name: "bad", TableEntries: []int{64}, HistLens: []uint{4, 8}, TagBits: []uint{7, 7},
	})
}

func TestTAGEScaledRegistrySize(t *testing.T) {
	e := env()
	small, err := Build(e, "TAGE3(1024)")
	if err != nil {
		t.Fatal(err)
	}
	big, err := Build(Env{Cfg: cfg(), Global: history.NewGlobal(64)}, "TAGE3")
	if err != nil {
		t.Fatal(err)
	}
	if small.Budget().TotalBits() >= big.Budget().TotalBits() {
		t.Errorf("scaled TAGE (%d bits) should be smaller than default (%d bits)",
			small.Budget().TotalBits(), big.Budget().TotalBits())
	}
}
