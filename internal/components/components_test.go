package components

import (
	"testing"

	"cobra/internal/history"
	"cobra/internal/pred"
)

func cfg() pred.Config { return pred.DefaultConfig() }

func env() Env {
	return Env{Cfg: cfg(), Global: history.NewGlobal(64)}
}

func TestHBIMLearnsPerSlot(t *testing.T) {
	h := NewHBIM(cfg(), HBIMParams{Name: "bim", Entries: 64})
	pc := uint64(0x1000)
	// Train slot 1 taken, slot 2 not-taken, in the same packet.
	for i := 0; i < 8; i++ {
		q := &pred.Query{PC: pc}
		r := h.Predict(q)
		slots := make([]pred.SlotInfo, 4)
		slots[1] = pred.SlotInfo{Valid: true, IsBranch: true, Taken: true}
		slots[2] = pred.SlotInfo{Valid: true, IsBranch: true, Taken: false}
		h.Update(&pred.Event{PC: pc, Meta: r.Meta, Slots: slots})
	}
	r := h.Predict(&pred.Query{PC: pc})
	if !r.Overlay[1].Taken {
		t.Error("slot 1 should predict taken")
	}
	if r.Overlay[2].Taken {
		t.Error("slot 2 should predict not-taken")
	}
	// The superscalar organization avoids intra-packet aliasing (§III-C):
	// the two slots trained independently.
}

func TestHBIMBasePredictionCoversAllSlots(t *testing.T) {
	h := NewHBIM(cfg(), HBIMParams{Name: "bim", Entries: 64})
	r := h.Predict(&pred.Query{PC: 0x2000})
	if len(r.Overlay) != 4 {
		t.Fatalf("overlay len = %d", len(r.Overlay))
	}
	for i, p := range r.Overlay {
		if !p.DirValid {
			t.Errorf("slot %d: untagged table must always provide a direction", i)
		}
		if p.TgtValid {
			t.Errorf("slot %d: counter table must not assert targets", i)
		}
	}
}

func TestHBIMIndexSources(t *testing.T) {
	// Global-indexed table learns a history-dependent pattern the PC-indexed
	// table cannot: alternate taken/not-taken at one PC.
	gb := NewHBIM(cfg(), HBIMParams{Name: "gbim", Entries: 256, Source: IndexGlobal, HistLen: 8})
	pb := NewHBIM(cfg(), HBIMParams{Name: "bim", Entries: 256, Source: IndexPC})
	pc := uint64(0x3000)
	ghist := uint64(0)
	correctG, correctP := 0, 0
	total := 0
	taken := false
	for i := 0; i < 400; i++ {
		taken = !taken // strict alternation, fully determined by ghist bit 0
		qg := &pred.Query{PC: pc, GHist: ghist}
		qp := &pred.Query{PC: pc, GHist: ghist}
		rg, rp := gb.Predict(qg), pb.Predict(qp)
		if i > 100 { // after warmup
			total++
			if rg.Overlay[0].Taken == taken {
				correctG++
			}
			if rp.Overlay[0].Taken == taken {
				correctP++
			}
		}
		slots := make([]pred.SlotInfo, 4)
		slots[0] = pred.SlotInfo{Valid: true, IsBranch: true, Taken: taken}
		gb.Update(&pred.Event{PC: pc, GHist: ghist, Meta: rg.Meta, Slots: slots})
		pb.Update(&pred.Event{PC: pc, GHist: ghist, Meta: rp.Meta, Slots: slots})
		ghist = ghist<<1 | b2u(taken)
	}
	if correctG != total {
		t.Errorf("gshare should learn alternation perfectly after warmup: %d/%d", correctG, total)
	}
	if correctP > total*3/4 {
		t.Errorf("PC-indexed bimodal cannot learn alternation: got %d/%d correct", correctP, total)
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func TestHBIMMetaAvoidsReread(t *testing.T) {
	// The update path must not issue an SRAM read: predict-time row contents
	// round-trip through metadata (§III-D).
	h := NewHBIM(cfg(), HBIMParams{Name: "bim", Entries: 64})
	pc := uint64(0x1000)
	r := h.Predict(&pred.Query{PC: pc})
	reads := h.mem.TotalReads
	slots := make([]pred.SlotInfo, 4)
	slots[0] = pred.SlotInfo{Valid: true, IsBranch: true, Taken: true}
	h.Update(&pred.Event{PC: pc, Meta: r.Meta, Slots: slots})
	if h.mem.TotalReads != reads {
		t.Errorf("update issued %d extra reads; metadata should carry the row", h.mem.TotalReads-reads)
	}
	if h.mem.TotalWrites != 1 {
		t.Errorf("update should issue exactly one write, got %d", h.mem.TotalWrites)
	}
}

func TestBTBLearnsTargetsAndAugments(t *testing.T) {
	b := NewBTB(cfg(), BTBParams{Name: "btb", Entries: 64, Ways: 4})
	pc := uint64(0x4000)
	target := uint64(0x5550)
	// Commit a taken branch in slot 2 with the target.
	r := b.Predict(&pred.Query{PC: pc})
	slots := make([]pred.SlotInfo, 4)
	slots[2] = pred.SlotInfo{Valid: true, IsBranch: true, Taken: true, Target: target}
	b.Update(&pred.Event{PC: pc, Meta: r.Meta, Slots: slots})

	r = b.Predict(&pred.Query{PC: pc})
	p := r.Overlay[2]
	if !p.TgtValid || p.Target != target {
		t.Fatalf("BTB should provide target %#x, got %+v", target, p)
	}
	if p.DirValid {
		t.Error("BTB must not assert a direction for a conditional branch (Fig. 3)")
	}
	if !p.IsCFI {
		t.Error("BTB hit should mark the slot as a CFI")
	}
}

func TestBTBJumpAssertsTaken(t *testing.T) {
	b := NewBTB(cfg(), BTBParams{Name: "btb", Entries: 64, Ways: 4})
	pc := uint64(0x4000)
	r := b.Predict(&pred.Query{PC: pc})
	slots := make([]pred.SlotInfo, 4)
	slots[1] = pred.SlotInfo{Valid: true, IsJump: true, Taken: true, Target: 0x9990}
	b.Update(&pred.Event{PC: pc, Meta: r.Meta, Slots: slots})
	r = b.Predict(&pred.Query{PC: pc})
	if !r.Overlay[1].DirValid || !r.Overlay[1].Taken {
		t.Errorf("unconditional jump must be predicted taken: %+v", r.Overlay[1])
	}
}

func TestBTBSetAssociativity(t *testing.T) {
	// Two PCs mapping to the same set must coexist in different ways.
	b := NewBTB(cfg(), BTBParams{Name: "btb", Entries: 8, Ways: 4}) // 2 sets
	pcs := []uint64{0x1000, 0x1020 + 0x40}                          // craft same set via wraparound
	// Find two PCs with the same index but different tags.
	base := uint64(0x1000)
	var other uint64
	for pc := base + 0x40; pc < base+0x100000; pc += 0x40 {
		if b.index(pc) == b.index(base) && b.tag(pc) != b.tag(base) {
			other = pc
			break
		}
	}
	if other == 0 {
		t.Fatal("no same-set pair found")
	}
	pcs = []uint64{base, other}
	for _, pc := range pcs {
		r := b.Predict(&pred.Query{PC: pc})
		slots := make([]pred.SlotInfo, 4)
		slots[0] = pred.SlotInfo{Valid: true, IsBranch: true, Taken: true, Target: pc + 0x100}
		b.Update(&pred.Event{PC: pc, Meta: r.Meta, Slots: slots})
	}
	for _, pc := range pcs {
		r := b.Predict(&pred.Query{PC: pc})
		if !r.Overlay[0].TgtValid || r.Overlay[0].Target != pc+0x100 {
			t.Errorf("pc %#x evicted despite free ways: %+v", pc, r.Overlay[0])
		}
	}
}

func TestBTBNotTakenBranchDoesNotAllocate(t *testing.T) {
	b := NewBTB(cfg(), BTBParams{Name: "btb", Entries: 64, Ways: 4})
	pc := uint64(0x4000)
	r := b.Predict(&pred.Query{PC: pc})
	slots := make([]pred.SlotInfo, 4)
	slots[0] = pred.SlotInfo{Valid: true, IsBranch: true, Taken: false}
	b.Update(&pred.Event{PC: pc, Meta: r.Meta, Slots: slots})
	r = b.Predict(&pred.Query{PC: pc})
	if r.Meta[0]&1 == 1 {
		t.Error("never-taken packet should not allocate a BTB entry")
	}
}

func TestUBTBSingleCycleContract(t *testing.T) {
	u := NewUBTB(cfg(), UBTBParams{Name: "ubtb", Entries: 8})
	if u.Latency() != 1 {
		t.Fatalf("uBTB latency = %d, want 1", u.Latency())
	}
	pc := uint64(0x6000)
	// Train: taken branch in slot 3.
	r := u.Predict(&pred.Query{PC: pc})
	slots := make([]pred.SlotInfo, 4)
	slots[3] = pred.SlotInfo{Valid: true, IsBranch: true, Taken: true, Target: 0x7000}
	u.Update(&pred.Event{PC: pc, Meta: r.Meta, Slots: slots})
	r = u.Predict(&pred.Query{PC: pc})
	p := r.Overlay[3]
	if !p.DirValid || !p.Taken || !p.TgtValid || p.Target != 0x7000 {
		t.Errorf("uBTB should predict taken->%#x at slot 3: %+v", uint64(0x7000), p)
	}
}

func TestUBTBHysteresisReleasesEntry(t *testing.T) {
	u := NewUBTB(cfg(), UBTBParams{Name: "ubtb", Entries: 8})
	pc := uint64(0x6000)
	slots := make([]pred.SlotInfo, 4)
	slots[0] = pred.SlotInfo{Valid: true, IsBranch: true, Taken: true, Target: 0x7000}
	r := u.Predict(&pred.Query{PC: pc})
	u.Update(&pred.Event{PC: pc, Meta: r.Meta, Slots: slots})
	// Branch stops being taken: fall-through packets weaken then release.
	fall := make([]pred.SlotInfo, 4)
	fall[0] = pred.SlotInfo{Valid: true, IsBranch: true, Taken: false}
	for i := 0; i < 4; i++ {
		r = u.Predict(&pred.Query{PC: pc})
		u.Update(&pred.Event{PC: pc, Meta: r.Meta, Slots: fall})
	}
	r = u.Predict(&pred.Query{PC: pc})
	if r.Overlay[0].DirValid {
		t.Errorf("stale taken prediction survived hysteresis: %+v", r.Overlay[0])
	}
}

func TestUBTBLRUReplacement(t *testing.T) {
	u := NewUBTB(cfg(), UBTBParams{Name: "ubtb", Entries: 2})
	mk := func(pc uint64) {
		r := u.Predict(&pred.Query{PC: pc})
		slots := make([]pred.SlotInfo, 4)
		slots[0] = pred.SlotInfo{Valid: true, IsBranch: true, Taken: true, Target: pc + 0x40}
		u.Update(&pred.Event{PC: pc, Meta: r.Meta, Slots: slots})
	}
	mk(0x1000)
	mk(0x2000)
	u.Predict(&pred.Query{PC: 0x1000}) // touch 0x1000: 0x2000 becomes LRU
	mk(0x3000)                         // evicts 0x2000
	if r := u.Predict(&pred.Query{PC: 0x1000}); !r.Overlay[0].DirValid {
		t.Error("recently used entry was evicted")
	}
	if r := u.Predict(&pred.Query{PC: 0x2000}); r.Overlay[0].DirValid {
		t.Error("LRU entry should have been evicted")
	}
}

func TestGTAGTagMissPassesThrough(t *testing.T) {
	g := history.NewGlobal(64)
	gt := NewGTAG(cfg(), g, GTAGParams{Name: "gtag", Entries: 64})
	r := gt.Predict(&pred.Query{PC: 0x8000})
	for i, p := range r.Overlay {
		if p.DirValid {
			t.Errorf("slot %d: tagged component must stay silent on a miss", i)
		}
	}
}

func TestGTAGAllocatesOnMispredictOnly(t *testing.T) {
	g := history.NewGlobal(64)
	gt := NewGTAG(cfg(), g, GTAGParams{Name: "gtag", Entries: 64})
	pc := uint64(0x8000)
	slots := make([]pred.SlotInfo, 4)
	slots[0] = pred.SlotInfo{Valid: true, IsBranch: true, Taken: true}

	// Correctly predicted elsewhere: no allocation.
	r := gt.Predict(&pred.Query{PC: pc})
	gt.Update(&pred.Event{PC: pc, Meta: r.Meta, Slots: slots})
	r = gt.Predict(&pred.Query{PC: pc})
	if r.Meta[0]>>63 == 1 {
		t.Fatal("GTAG allocated without a mispredict")
	}

	slots[0].Mispredicted = true
	r = gt.Predict(&pred.Query{PC: pc})
	gt.Update(&pred.Event{PC: pc, Meta: r.Meta, Slots: slots})
	r = gt.Predict(&pred.Query{PC: pc})
	if r.Meta[0]>>63 != 1 {
		t.Fatal("GTAG should have allocated after a mispredict")
	}
	if !r.Overlay[0].DirValid || !r.Overlay[0].Taken {
		t.Errorf("allocated entry should predict weakly taken: %+v", r.Overlay[0])
	}
}

func TestGTAGHistorySensitivity(t *testing.T) {
	// The same PC with different global histories must map to different
	// entries (the point of history indexing).
	g := history.NewGlobal(64)
	gt := NewGTAG(cfg(), g, GTAGParams{Name: "gtag", Entries: 256})
	pc := uint64(0x8000)
	idx0 := gt.index(pc)
	g.Shift(true)
	g.Shift(false)
	g.Shift(true)
	if gt.index(pc) == idx0 && gt.tag(pc) == gt.tag(pc) {
		// Index may collide; tag fold must differ for this history.
		idx1 := gt.index(pc)
		if idx0 == idx1 {
			t.Skip("hash collision; acceptable")
		}
	}
}

func TestTourneySelectsCorrectSide(t *testing.T) {
	tn := NewTourney(cfg(), TourneyParams{Name: "tourney", Entries: 64})
	pc := uint64(0xA000)
	// Input 0 is always wrong, input 1 always right (taken).
	in0 := make(pred.Packet, 4)
	in1 := make(pred.Packet, 4)
	in0[0] = pred.Pred{DirValid: true, Taken: false, DirProvider: "g"}
	in1[0] = pred.Pred{DirValid: true, Taken: true, DirProvider: "l"}
	slots := make([]pred.SlotInfo, 4)
	slots[0] = pred.SlotInfo{Valid: true, IsBranch: true, Taken: true}
	for i := 0; i < 8; i++ {
		r := tn.Predict(&pred.Query{PC: pc, In: []pred.Packet{in0, in1}})
		tn.Update(&pred.Event{PC: pc, Meta: r.Meta, Slots: slots})
	}
	r := tn.Predict(&pred.Query{PC: pc, In: []pred.Packet{in0, in1}})
	if !r.Overlay[0].Taken {
		t.Error("selector should have learned to trust input 1")
	}
	if r.Overlay[0].DirProvider != "tourney" {
		t.Errorf("direction provider = %q, want tourney", r.Overlay[0].DirProvider)
	}
}

func TestTourneyNoTrainingOnAgreement(t *testing.T) {
	tn := NewTourney(cfg(), TourneyParams{Name: "tourney", Entries: 64})
	pc := uint64(0xA000)
	in := make(pred.Packet, 4)
	in[0] = pred.Pred{DirValid: true, Taken: true}
	slots := make([]pred.SlotInfo, 4)
	slots[0] = pred.SlotInfo{Valid: true, IsBranch: true, Taken: true}
	r := tn.Predict(&pred.Query{PC: pc, In: []pred.Packet{in, in}})
	w := tn.mem.TotalWrites
	tn.Update(&pred.Event{PC: pc, Meta: r.Meta, Slots: slots})
	if tn.mem.TotalWrites != w {
		t.Error("selector trained although both inputs agreed (McFarling's rule)")
	}
}

func TestTourneyPassesThroughTargets(t *testing.T) {
	tn := NewTourney(cfg(), TourneyParams{Name: "tourney", Entries: 64})
	in0 := make(pred.Packet, 4)
	in0[2] = pred.Pred{DirValid: true, Taken: true, TgtValid: true, Target: 0xBEE0, TgtProvider: "btb"}
	in1 := make(pred.Packet, 4)
	r := tn.Predict(&pred.Query{PC: 0xA000, In: []pred.Packet{in0, in1}})
	if !r.Overlay[2].TgtValid || r.Overlay[2].Target != 0xBEE0 {
		t.Errorf("target must pass through from input 0: %+v", r.Overlay[2])
	}
}

func TestTourneySingleOpinionWins(t *testing.T) {
	tn := NewTourney(cfg(), TourneyParams{Name: "tourney", Entries: 64})
	in0 := make(pred.Packet, 4) // silent
	in1 := make(pred.Packet, 4)
	in1[1] = pred.Pred{DirValid: true, Taken: true}
	r := tn.Predict(&pred.Query{PC: 0xA000, In: []pred.Packet{in0, in1}})
	if !r.Overlay[1].DirValid || !r.Overlay[1].Taken {
		t.Errorf("sole opinion should win regardless of selector: %+v", r.Overlay[1])
	}
}

func TestRegistryBuildsAll(t *testing.T) {
	for _, name := range []string{
		"UBTB1", "BIM2", "GBIM2", "LBIM2", "GSEL2", "PBIM2",
		"BTB2", "GTAG3", "PHT2", "TAGE3", "TOURNEY3", "LOOP3",
		"PERC3", "SCOR3", "ITGT3", "GEHL3", "YAGS3", "GSKEW3", "LOOP2(16)",
	} {
		c, err := Build(env(), name)
		if err != nil {
			t.Errorf("Build(%q): %v", name, err)
			continue
		}
		if err := pred.Validate(c); err != nil {
			t.Errorf("%q fails validation: %v", name, err)
		}
		if c.Name() != name {
			t.Errorf("component name %q != node name %q", c.Name(), name)
		}
	}
}

func TestRegistryLatencySuffix(t *testing.T) {
	c, err := Build(env(), "BIM2")
	if err != nil {
		t.Fatal(err)
	}
	if c.Latency() != 2 {
		t.Errorf("BIM2 latency = %d", c.Latency())
	}
	c, err = Build(env(), "TAGE4")
	if err != nil {
		t.Fatal(err)
	}
	if c.Latency() != 4 {
		t.Errorf("TAGE4 latency = %d", c.Latency())
	}
}

func TestRegistryErrors(t *testing.T) {
	if _, err := Build(env(), "NOSUCH3"); err == nil {
		t.Error("unknown component must error")
	}
	if _, err := Build(env(), "UBTB2"); err == nil {
		t.Error("uBTB with latency 2 must error")
	}
	if _, err := Build(env(), ""); err == nil {
		t.Error("empty name must error")
	}
	if _, err := Build(env(), "LOOP3(x)"); err == nil {
		t.Error("bad size must error")
	}
	if _, err := Build(env(), "LOOP3(16"); err == nil {
		t.Error("unterminated size must error")
	}
	if _, err := Build(env(), "123"); err == nil {
		t.Error("all-digit name must error")
	}
}

func TestParseNodeName(t *testing.T) {
	base, lat, size, err := ParseNodeName("loop3(256)")
	if err != nil || base != "LOOP" || lat != 3 || size != 256 {
		t.Errorf("ParseNodeName = %q %d %d %v", base, lat, size, err)
	}
	base, lat, size, err = ParseNodeName("TAGE")
	if err != nil || base != "TAGE" || lat != 0 || size != 0 {
		t.Errorf("ParseNodeName = %q %d %d %v", base, lat, size, err)
	}
}

func TestRASPushPopRepair(t *testing.T) {
	r := NewRAS(4)
	r.Push(0x100)
	r.Push(0x200)
	cp := r.Checkpoint()
	r.Push(0x300) // wrong-path call
	if v, ok := r.Pop(); !ok || v != 0x300 {
		t.Fatalf("pop = %#x, %v", v, ok)
	}
	r.Pop() // wrong-path pops corrupt further
	r.Restore(cp)
	if v, ok := r.Peek(); !ok || v != 0x200 {
		t.Errorf("after repair Peek = %#x %v, want 0x200", v, ok)
	}
	if v, ok := r.Pop(); !ok || v != 0x200 {
		t.Errorf("after repair Pop = %#x %v", v, ok)
	}
	if v, ok := r.Pop(); !ok || v != 0x100 {
		t.Errorf("second Pop = %#x %v", v, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Error("empty RAS must not pop")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites oldest
	if v, _ := r.Pop(); v != 3 {
		t.Errorf("pop = %d, want 3", v)
	}
	if v, _ := r.Pop(); v != 2 {
		t.Errorf("pop = %d, want 2", v)
	}
	if _, ok := r.Pop(); ok {
		t.Error("count must cap at capacity")
	}
}

func TestBudgetsNonZero(t *testing.T) {
	comps := []pred.Subcomponent{
		NewHBIM(cfg(), HBIMParams{Name: "b", Entries: 64}),
		NewBTB(cfg(), BTBParams{Name: "t", Entries: 64, Ways: 4}),
		NewUBTB(cfg(), UBTBParams{Name: "u", Entries: 8}),
		NewGTAG(cfg(), history.NewGlobal(64), GTAGParams{Name: "g", Entries: 64}),
		NewTAGE(cfg(), history.NewGlobal(64), DefaultTAGEParams("tage")),
		NewTourney(cfg(), TourneyParams{Name: "s", Entries: 64}),
		NewLoop(cfg(), LoopParams{Name: "l", Entries: 16}),
		NewPerceptron(cfg(), PerceptronParams{Name: "p", Entries: 64, HistLen: 16}),
		NewStatCorrector(cfg(), StatCorrectorParams{Name: "c", Entries: 64}),
	}
	for _, c := range comps {
		if c.Budget().TotalBits() <= 0 {
			t.Errorf("%s: zero storage budget", c.Name())
		}
	}
}

func TestTableIStorageBudgets(t *testing.T) {
	// Sanity-check the Table I storage figures are in the right regime:
	// TAGE-L biggest, B2 smallest-ish, Tourney mid (exact KB recorded in
	// EXPERIMENTS.md by the harness).
	e := env()
	mk := func(names ...string) int {
		total := 0
		for _, n := range names {
			c, err := Build(e, n)
			if err != nil {
				t.Fatal(err)
			}
			total += c.Budget().TotalBytes()
		}
		return total
	}
	tageL := mk("LOOP3", "TAGE3", "BTB2", "BIM2", "UBTB1")
	b2 := mk("GTAG3", "BTB2(256)", "BIM2")
	tourney := mk("TOURNEY3", "GBIM2", "BTB2(256)", "LBIM2")
	if !(tageL > b2 && tageL > tourney) {
		t.Errorf("TAGE-L (%dB) should dwarf B2 (%dB) and Tourney (%dB)", tageL, b2, tourney)
	}
}

func TestStatCorrectorFreshTableIsNeutral(t *testing.T) {
	// Regression: a zeroed counter row must decode to "no opinion", not to
	// strong disagreement (which would invert every incoming prediction).
	c := NewStatCorrector(cfg(), StatCorrectorParams{Name: "sc", Entries: 64})
	in := make(pred.Packet, 4)
	in[0] = pred.Pred{DirValid: true, Taken: true}
	r := c.Predict(&pred.Query{PC: 0x1000, In: []pred.Packet{in}})
	if r.Overlay[0].DirValid {
		t.Fatal("fresh corrector must pass through, not override")
	}
}

func TestStatCorrectorLearnsToInvert(t *testing.T) {
	c := NewStatCorrector(cfg(), StatCorrectorParams{Name: "sc", Entries: 64})
	in := make(pred.Packet, 4)
	in[0] = pred.Pred{DirValid: true, Taken: true} // upstream always says taken
	slots := make([]pred.SlotInfo, 4)
	slots[0] = pred.SlotInfo{Valid: true, IsBranch: true, Taken: false} // reality: never
	for i := 0; i < 30; i++ {
		r := c.Predict(&pred.Query{PC: 0x1000, In: []pred.Packet{in}})
		c.Update(&pred.Event{PC: 0x1000, Meta: append([]uint64(nil), r.Meta...), Slots: slots})
	}
	r := c.Predict(&pred.Query{PC: 0x1000, In: []pred.Packet{in}})
	if !r.Overlay[0].DirValid || r.Overlay[0].Taken {
		t.Fatalf("corrector should invert a consistently wrong input: %+v", r.Overlay[0])
	}
}

func TestStatCorrectorCounterRoundTrip(t *testing.T) {
	for v := int8(-32); v <= 31; v++ {
		row := scSet(0, 2, v)
		if got := scGet(row, 2); got != v {
			t.Fatalf("scSet/scGet(%d) = %d", v, got)
		}
	}
}
