package components

import "cobra/internal/sram"

// RAS is the return-address stack.  The paper keeps BOOM's existing RAS
// outside the COBRA-generated pipeline ("the only prediction sub-component
// from the original BOOM core which was preserved was the return-address-
// stack"), so this type is used directly by the frontend model rather than
// implementing pred.Subcomponent.
//
// Misspeculation repair uses the checkpointed top-of-stack pointer scheme
// (Skadron et al., cited as [44]): every prediction records (top, topValue)
// in the history file, and a redirect restores both, which recovers from
// pointer corruption and — for the common single-overwrite case — entry
// corruption.
type RAS struct {
	entries []uint64
	top     int // index of the current top (points at last pushed slot)
	count   int
	Pushes  uint64
	Pops    uint64
}

// NewRAS builds a return-address stack with n entries (n > 0).
func NewRAS(n int) *RAS {
	if n <= 0 {
		panic("components: RAS needs at least one entry")
	}
	return &RAS{entries: make([]uint64, n), top: n - 1}
}

// Push records a return address (call instruction fetched).
func (r *RAS) Push(retAddr uint64) {
	r.top = (r.top + 1) % len(r.entries)
	r.entries[r.top] = retAddr
	if r.count < len(r.entries) {
		r.count++
	}
	r.Pushes++
}

// Pop predicts a return target and unwinds the stack.
func (r *RAS) Pop() (uint64, bool) {
	if r.count == 0 {
		return 0, false
	}
	v := r.entries[r.top]
	r.top = (r.top - 1 + len(r.entries)) % len(r.entries)
	r.count--
	r.Pops++
	return v, true
}

// Peek returns the predicted return target without unwinding.
func (r *RAS) Peek() (uint64, bool) {
	if r.count == 0 {
		return 0, false
	}
	return r.entries[r.top], true
}

// Checkpoint captures the repair state stored per history-file entry.
type RASCheckpoint struct {
	Top      int
	Count    int
	TopValue uint64
}

// Checkpoint returns the current repair state.
func (r *RAS) Checkpoint() RASCheckpoint {
	return RASCheckpoint{Top: r.top, Count: r.count, TopValue: r.entries[r.top]}
}

// Restore rewinds to a checkpoint (redirect/mispredict repair).
func (r *RAS) Restore(c RASCheckpoint) {
	r.top = c.Top
	r.count = c.Count
	r.entries[r.top] = c.TopValue
}

// Reset clears the stack.
func (r *RAS) Reset() {
	r.top = len(r.entries) - 1
	r.count = 0
	r.Pushes, r.Pops = 0, 0
	for i := range r.entries {
		r.entries[i] = 0
	}
}

// Budget reports storage (flop-based).
func (r *RAS) Budget() sram.Budget {
	return sram.Budget{FlopBits: len(r.entries)*40 + 16}
}
