package area

import (
	"strings"
	"testing"

	"cobra/internal/compose"
	"cobra/internal/pred"
	"cobra/internal/sram"
	"cobra/internal/uarch"
)

func pipe(t *testing.T, topo string) *compose.Pipeline {
	t.Helper()
	p, err := compose.New(pred.DefaultConfig(), compose.MustParse(topo), compose.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestOfBudgetMonotone(t *testing.T) {
	small := sram.Budget{Mems: []sram.Spec{{Name: "a", Entries: 64, Width: 2, ReadPorts: 1, WritePorts: 1}}}
	big := sram.Budget{Mems: []sram.Spec{{Name: "a", Entries: 4096, Width: 2, ReadPorts: 1, WritePorts: 1}}}
	if OfBudget(big) <= OfBudget(small) {
		t.Error("bigger memory must cost more")
	}
	// Extra ports multiply the cell.
	multi := small
	multi.Mems = []sram.Spec{{Name: "a", Entries: 64, Width: 2, ReadPorts: 2, WritePorts: 2}}
	if OfBudget(multi) <= OfBudget(small) {
		t.Error("extra ports must cost area (the §III-D argument for metadata)")
	}
	// Flops are pricier than SRAM bits.
	fl := sram.Budget{FlopBits: 128}
	sr := sram.Budget{Mems: []sram.Spec{{Name: "a", Entries: 2, Width: 64, ReadPorts: 1, WritePorts: 1}}}
	if OfBudget(fl) <= OfBudget(sr)-macroOverhead {
		t.Error("flop bits should cost more than SRAM bits")
	}
}

func TestFig8Shape(t *testing.T) {
	tageL := Predictor(pipe(t, "LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1"))
	b2 := Predictor(pipe(t, "GTAG3 > BTB2(256) > BIM2"))
	tourney := Predictor(pipe(t, "TOURNEY3 > [GBIM2 > BTB2(256), LBIM2]"))

	if !(tageL.Total() > b2.Total() && tageL.Total() > tourney.Total()) {
		t.Errorf("TAGE-L (%.0f) must be the largest (B2 %.0f, Tourney %.0f)",
			tageL.Total(), b2.Total(), tourney.Total())
	}
	// Management structures ("meta") are a non-trivial fraction (the paper
	// calls this out explicitly).
	for _, bd := range []Breakdown{tageL, b2, tourney} {
		var meta float64
		for _, it := range bd.Items {
			if it.Name == "meta" {
				meta = it.Units
			}
		}
		if meta <= 0 || meta/bd.Total() < 0.02 {
			t.Errorf("%s: meta fraction %.3f implausibly small", bd.Title, meta/bd.Total())
		}
	}
	// The tournament's local history provider makes its meta bigger than
	// B2's (Fig. 8 discussion).
	metaOf := func(bd Breakdown) float64 {
		for _, it := range bd.Items {
			if it.Name == "meta" {
				return it.Units
			}
		}
		return 0
	}
	if metaOf(tourney) <= metaOf(b2) {
		t.Error("tournament meta (local history provider) should exceed B2 meta")
	}
}

func TestFig9PredictorIsSmallFraction(t *testing.T) {
	p := pipe(t, "LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1")
	core := Core(p, uarch.DefaultConfig())
	var bp float64
	for _, it := range core.Items {
		if it.Name == "branch-pred" {
			bp = it.Units
		}
	}
	frac := bp / core.Total()
	// "The total area of even a large predictor design is only a small
	// portion of the area of a large superscalar out-of-order core."
	if frac <= 0 || frac > 0.35 {
		t.Errorf("predictor fraction = %.2f; should be a modest slice of the core", frac)
	}
}

func TestRender(t *testing.T) {
	bd := Predictor(pipe(t, "GTAG3 > BTB2 > BIM2"))
	out := bd.Render()
	for _, want := range []string{"GTAG3", "BTB2", "BIM2", "meta", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	s := bd.Sorted()
	for i := 1; i < len(s); i++ {
		if s[i].Units > s[i-1].Units {
			t.Error("Sorted not descending")
		}
	}
}

func TestEnergyAccounting(t *testing.T) {
	p := pipe(t, "GTAG3 > BTB2 > BIM2")
	// Drive a few queries/commits so memories accumulate accesses.
	for i := uint64(0); i < 50; i++ {
		p.Tick(i)
		e, _ := p.Predict(i, 0x1000+i*16)
		if e == nil {
			t.Fatal("stall")
		}
		p.Commit(i, e)
	}
	rep := Energy(p)
	if rep.Total() <= 0 {
		t.Fatal("no energy recorded")
	}
	if rep.PerKiloInst(200) <= 0 {
		t.Error("per-kinst normalization broken")
	}
	var names []string
	for _, it := range rep.Items {
		names = append(names, it.Name)
		if it.Reads == 0 {
			t.Errorf("%s recorded no reads", it.Name)
		}
	}
	if len(names) != 3 {
		t.Errorf("expected 3 SRAM-backed components, got %v", names)
	}
	if !strings.Contains(rep.Render(), "GTAG3") {
		t.Error("render missing component")
	}
	// Bigger arrays must cost more per access.
	small := accessEnergy(sram.Spec{Entries: 64, Width: 2})
	big := accessEnergy(sram.Spec{Entries: 65536, Width: 2})
	if big <= small {
		t.Error("access energy must grow with array size")
	}
}
