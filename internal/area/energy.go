package area

import (
	"fmt"
	"math"

	"cobra/internal/compose"
	"cobra/internal/sram"
)

// Energy modelling — the concern §VI-A flags as next ("the energy cost of
// continuously reading predictor SRAMs is significant").  Per-access energy
// follows the standard CACTI-style scaling: roughly proportional to the
// square root of the array size (bitline/wordline lengths), with writes
// costing ~1.3x reads and flop-array accesses a small constant.  Units are
// arbitrary ("eU"), comparable across designs.

const (
	energyPerRootBit = 0.9 // eU per sqrt(array bits) per access
	writeFactor      = 1.3
	energyBase       = 2.0 // decoder/sense fixed cost per access
)

// accessEnergy is the per-access cost of one memory.
func accessEnergy(spec sram.Spec) float64 {
	return energyBase + energyPerRootBit*math.Sqrt(float64(spec.Bits()))
}

// EnergyItem is one component's accumulated access energy.
type EnergyItem struct {
	Name   string
	Reads  uint64
	Writes uint64
	Units  float64
}

// EnergyReport summarizes a pipeline's SRAM access energy after a run.
type EnergyReport struct {
	Items []EnergyItem
}

// Total sums the access energy.
func (r EnergyReport) Total() float64 {
	var t float64
	for _, it := range r.Items {
		t += it.Units
	}
	return t
}

// PerKiloInst normalizes by committed instructions.
func (r EnergyReport) PerKiloInst(insts uint64) float64 {
	if insts == 0 {
		return 0
	}
	return r.Total() / float64(insts) * 1000
}

// Energy collects the access counters from every SRAM-backed sub-component
// of a composed pipeline.  Call after a simulation run; counters accumulate
// from construction (use Pipeline.Reset to clear).
func Energy(p *compose.Pipeline) EnergyReport {
	var rep EnergyReport
	for _, comp := range p.Components() {
		mp, ok := comp.(interface{ Mems() []*sram.Mem })
		if !ok {
			continue
		}
		it := EnergyItem{Name: comp.Name()}
		for _, m := range mp.Mems() {
			e := accessEnergy(m.Spec())
			it.Reads += m.TotalReads
			it.Writes += m.TotalWrites
			it.Units += float64(m.TotalReads)*e + float64(m.TotalWrites)*e*writeFactor
		}
		rep.Items = append(rep.Items, it)
	}
	return rep
}

// Render prints the per-component energy with shares.
func (r EnergyReport) Render() string {
	out := ""
	total := r.Total()
	for _, it := range r.Items {
		frac := 0.0
		if total > 0 {
			frac = it.Units / total
		}
		out += fmt.Sprintf("  %-14s reads=%-10d writes=%-9d %10.0f eU %5.1f%%\n",
			it.Name, it.Reads, it.Writes, it.Units, frac*100)
	}
	return out
}
