// Package area is the physical-design substitute for the paper's Cadence
// Genus synthesis flow (Fig. 8 and Fig. 9 report post-synthesis area on a
// commercial FinFET process, which is unavailable here).
//
// The model is analytic but driven by the same storage parameters the RTL
// would synthesize from: every sub-component and management structure
// reports an sram.Budget (memories with entries/width/ports, plus flop
// bits), and the model converts those to area units using standard
// cost ratios — an SRAM bit costs 1 unit, extra ports multiply the bit
// cell, each macro pays a fixed periphery overhead, and a flop bit costs
// ~4x an SRAM bit.  Absolute units are arbitrary ("kU" = thousands of
// units ~ bit-equivalents); Fig. 8/9 convey *relative* breakdowns, which
// survive this normalization.
package area

import (
	"fmt"
	"sort"
	"strings"

	"cobra/internal/compose"
	"cobra/internal/sram"
	"cobra/internal/uarch"
)

// Cost ratios (bit-equivalents).
const (
	sramBitCost    = 1.0
	flopBitCost    = 4.0
	portMultiplier = 0.45  // each port beyond 1R1W multiplies the array
	macroOverhead  = 600.0 // decoder/sense periphery per SRAM macro
	logicPerMeta   = 0.12  // comparator/mux logic per metadata/datapath bit
)

// Item is one named area contribution.
type Item struct {
	Name  string
	Units float64
}

// Breakdown is an ordered area report.
type Breakdown struct {
	Title string
	Items []Item
}

// Total sums the contributions.
func (b Breakdown) Total() float64 {
	var t float64
	for _, it := range b.Items {
		t += it.Units
	}
	return t
}

// Sorted returns items largest first.
func (b Breakdown) Sorted() []Item {
	out := append([]Item(nil), b.Items...)
	sort.Slice(out, func(i, j int) bool { return out[i].Units > out[j].Units })
	return out
}

// Render prints the breakdown with percentage bars (the textual Fig. 8/9).
func (b Breakdown) Render() string {
	var sb strings.Builder
	total := b.Total()
	if b.Title != "" {
		fmt.Fprintf(&sb, "%s (total %.1f kU)\n", b.Title, total/1000)
	}
	for _, it := range b.Items {
		frac := 0.0
		if total > 0 {
			frac = it.Units / total
		}
		bar := strings.Repeat("#", int(frac*50+0.5))
		fmt.Fprintf(&sb, "  %-14s %8.1f kU %5.1f%% %s\n", it.Name, it.Units/1000, frac*100, bar)
	}
	return sb.String()
}

// OfBudget converts one storage budget to area units.
func OfBudget(b sram.Budget) float64 {
	var u float64
	for _, m := range b.Mems {
		ports := m.ReadPorts + m.WritePorts
		mult := 1.0
		if ports > 2 {
			mult += portMultiplier * float64(ports-2)
		}
		u += float64(m.Bits())*sramBitCost*mult + macroOverhead
	}
	u += float64(b.FlopBits) * flopBitCost
	return u
}

// Predictor produces the Fig. 8 breakdown for a composed pipeline: one bar
// segment per sub-component plus "meta" for the generated management
// structures (history file + history providers).
func Predictor(p *compose.Pipeline) Breakdown {
	bd := Breakdown{Title: fmt.Sprintf("Predictor area: %s", p.Topo)}
	budgets := p.ComponentBudgets()
	names := make([]string, 0, len(budgets))
	for n := range budgets {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		b := budgets[n]
		u := OfBudget(b)
		// Tagged components pay comparator/metadata logic proportional to
		// their datapath.
		u += float64(b.TotalBits()) * logicPerMeta
		bd.Items = append(bd.Items, Item{Name: n, Units: u})
	}
	bd.Items = append(bd.Items, Item{Name: "meta", Units: OfBudget(p.ManagementBudget())})
	return bd
}

// Core produces the Fig. 9 breakdown: the predictor inside a complete
// 4-wide out-of-order core.  Non-predictor component areas are analytic
// constants derived from the same bit-accounting style (structure sizes per
// the uarch config), with logic-dominated units (issue queues, rename,
// FUs) weighted by published BOOM relative areas.
func Core(p *compose.Pipeline, cfg uarch.Config) Breakdown {
	bd := Breakdown{Title: fmt.Sprintf("Core area with %s", p.Topo)}
	pu := Predictor(p).Total()
	bd.Items = append(bd.Items, Item{Name: "branch-pred", Units: pu})

	cacheBits := func(sets, ways, line int) float64 {
		dataBits := float64(sets * ways * line * 8)
		tagBits := float64(sets * ways * 28)
		return dataBits + tagBits + macroOverhead*float64(ways)
	}
	// Frontend: I-cache + fetch buffer + decode.
	icache := cacheBits(64, 8, 64) // 32 KB
	bd.Items = append(bd.Items, Item{Name: "icache", Units: icache})
	bd.Items = append(bd.Items, Item{Name: "decode", Units: 30000 * float64(cfg.DecodeWidth)})
	// Execute: ROB, rename/issue (logic heavy), register files, FUs.
	bd.Items = append(bd.Items, Item{
		Name:  "rob",
		Units: float64(cfg.ROBEntries) * 160 * flopBitCost,
	})
	// Issue queues are CAM/logic dominated (the paper notes the critical
	// paths live here); weight well above plain flop cost.
	bd.Items = append(bd.Items, Item{
		Name:  "issue-units",
		Units: float64(cfg.IQEntries*3) * 110 * flopBitCost * 5,
	})
	// Physical register files pay heavily for their many ports.
	bd.Items = append(bd.Items, Item{
		Name:  "regfiles",
		Units: float64((cfg.ROBEntries+64)*(64+64)) * 6,
	})
	bd.Items = append(bd.Items, Item{
		Name:  "int-fus",
		Units: float64(cfg.NumALU)*26000 + 30000, // ALUs + mul/div
	})
	bd.Items = append(bd.Items, Item{
		Name:  "fp-units",
		Units: float64(cfg.NumFP) * 110000, // FMA pipelines dominate logic
	})
	// LSU + L1 D-cache (the L2 lives outside the core tile, as in BOOM).
	bd.Items = append(bd.Items, Item{
		Name:  "lsu",
		Units: float64(cfg.LDQEntries+cfg.STQEntries) * 120 * flopBitCost * 3,
	})
	bd.Items = append(bd.Items, Item{Name: "dcache", Units: cacheBits(cfg.L1Sets, cfg.L1Ways, cfg.LineBytes)})
	return bd
}
