// Package commercial provides the proxy configurations standing in for the
// Intel Skylake and AWS Graviton datapoints of Fig. 10 / Table III.
//
// Substitution rationale (DESIGN.md): the paper measures real silicon with
// perf counters; here each commercial core is modelled as a bigger/wider
// configuration of the same simulator with a state-of-the-art-class
// predictor, serving the same role the real cores served in the paper — an
// accuracy/IPC yardstick above the BOOM design points.  As the paper itself
// notes, the comparison is approximate ("due to different ISAs" there, due
// to modelling here).
package commercial

import (
	"cobra/internal/compose"
	"cobra/internal/uarch"
)

// System is one evaluated machine of Table III.
type System struct {
	Name     string
	Topology string
	Opt      compose.Options
	Core     uarch.Config
}

// Skylake returns the Skylake-class proxy: a large TAGE + loop + statistical
// corrector predictor (TAGE-SC-L class, matching what is publicly surmised
// of Intel's predictors) on a wide, deep core with big caches.
func Skylake() System {
	cfg := uarch.DefaultConfig()
	cfg.DecodeWidth = 6
	cfg.CommitWidth = 6
	cfg.ROBEntries = 224
	cfg.IQEntries = 64
	cfg.NumALU = 6
	cfg.NumMem = 3
	cfg.NumFP = 3
	cfg.LDQEntries = 72
	cfg.STQEntries = 56
	cfg.FetchBufferCap = 32
	cfg.L1Sets = 128  // 64 KB
	cfg.L2Sets = 2048 // 1 MB
	cfg.MemLat = 60   // 24 MB L3 behind it
	return System{
		Name:     "skylake",
		Topology: "SCOR3(4096) > LOOP3(512) > TAGE3(16384) > BTB2(2048) > BIM2(8192) > UBTB1(64)",
		Opt: compose.Options{
			GHistBits: 128,
			HFEntries: 64,
			GHRPolicy: compose.GHRRepairReplay,
		},
		Core: cfg,
	}
}

// Graviton returns the Graviton-class proxy (Cortex-A72-like): a 3-wide
// core with a solid but smaller hybrid predictor.
func Graviton() System {
	cfg := uarch.DefaultConfig()
	cfg.DecodeWidth = 3
	cfg.CommitWidth = 3
	cfg.ROBEntries = 128
	cfg.IQEntries = 48
	cfg.NumALU = 3
	cfg.NumMem = 2
	cfg.NumFP = 2
	cfg.FetchBufferCap = 24
	cfg.L1Sets = 64   // 32 KB D-cache (Table III: Graviton 48K I / 32K D)
	cfg.L2Sets = 4096 // 2 MB
	cfg.MemLat = 110  // no L3
	return System{
		Name:     "graviton",
		Topology: "TAGE3 > BTB2(1024) > BIM2(4096) > UBTB1(48)",
		Opt: compose.Options{
			GHistBits: 64,
			HFEntries: 48,
			GHRPolicy: compose.GHRRepairReplay,
		},
		Core: cfg,
	}
}

// Systems returns the commercial proxies in Table III order.
func Systems() []System { return []System{Skylake(), Graviton()} }
