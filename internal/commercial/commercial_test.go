package commercial

import (
	"testing"

	"cobra/internal/compose"
	"cobra/internal/pred"
	"cobra/internal/uarch"
	"cobra/internal/workloads"
)

func TestSystemsBuildAndRun(t *testing.T) {
	for _, sys := range Systems() {
		p, err := compose.New(pred.DefaultConfig(), compose.MustParse(sys.Topology), sys.Opt)
		if err != nil {
			t.Fatalf("%s: %v", sys.Name, err)
		}
		prog, err := workloads.Get("dhrystone")
		if err != nil {
			t.Fatal(err)
		}
		res := uarch.NewCore(sys.Core, p, prog, 7).Run(30000)
		if res.IPC() <= 0 {
			t.Errorf("%s: zero IPC", sys.Name)
		}
	}
}

func TestSkylakeOutclassesGraviton(t *testing.T) {
	// The Skylake proxy is the wider, deeper machine: given the same
	// workload it must deliver higher IPC (its Fig. 10 role).
	run := func(sys System) float64 {
		p, err := compose.New(pred.DefaultConfig(), compose.MustParse(sys.Topology), sys.Opt)
		if err != nil {
			t.Fatal(err)
		}
		prog, _ := workloads.Get("exchange2")
		return uarch.NewCore(sys.Core, p, prog, 7).Run(60000).IPC()
	}
	if sk, gr := run(Skylake()), run(Graviton()); sk <= gr {
		t.Errorf("skylake IPC (%.3f) should exceed graviton (%.3f)", sk, gr)
	}
}

func TestSystemConfigsAreDistinct(t *testing.T) {
	sk, gr := Skylake(), Graviton()
	if sk.Core.DecodeWidth <= gr.Core.DecodeWidth {
		t.Error("skylake should be wider")
	}
	if sk.Core.ROBEntries <= gr.Core.ROBEntries {
		t.Error("skylake should be deeper")
	}
	if sk.Opt.GHistBits <= gr.Opt.GHistBits {
		t.Error("skylake should carry longer history")
	}
}
