package serve

// Race test for the service's shared state: the result cache, the
// singleflight table, and the workload fingerprint memoization all sit on the
// request path of every POST.  This test hammers them from many goroutines at
// once and relies on the CI -race job to catch unsynchronized access; the
// functional assertions (every digest eventually done, one set of result
// bytes per digest) double as a consistency check.

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"cobra/internal/workloads"
)

func TestConcurrentCacheAndFingerprint(t *testing.T) {
	s, err := New(Config{Workers: 4, QueueLen: 256, CacheEntries: 8, CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A handful of distinct specs, each submitted by many goroutines, so the
	// cache sees concurrent hits, misses, and inserts for the same keys while
	// the tiny CacheEntries bound forces eviction churn.
	const distinct = 6
	const clients = 8
	const rounds = 10

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				sp := smallSpec(uint64(1000 + (c+r)%distinct))
				sp.Insts = 5_000
				// Odd clients submit with a traceparent so the span recorder
				// and trace store see concurrent ingestion too.
				var code int
				var rs runStatus
				if c%2 == 1 {
					code, rs = postSpecTraced(t, ts, sp,
						"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
				} else {
					code, rs = postSpec(t, ts, sp)
				}
				switch code {
				case http.StatusOK, http.StatusAccepted:
				default:
					t.Errorf("client %d round %d: HTTP %d", c, r, code)
					continue
				}
				// Interleave the read paths the daemon serves concurrently.
				for _, path := range []string{"/v1/runs/" + rs.Digest,
					"/v1/runs/" + rs.Digest + "/trace", "/healthz", "/healthz/ready", "/metrics"} {
					resp, err := http.Get(ts.URL + path)
					if err != nil {
						t.Error(err)
						continue
					}
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
				}
			}
		}(c)
	}
	// Meanwhile hammer the workload layer directly: Fingerprint's memo map
	// and Get's program construction are hit by every spec canonicalization.
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			want, err := workloads.Fingerprint("fib")
			if err != nil {
				t.Error(err)
				return
			}
			for r := 0; r < rounds; r++ {
				for _, name := range []string{"fib", "dhrystone", "sort"} {
					if _, err := workloads.Get(name); err != nil {
						t.Errorf("Get(%q): %v", name, err)
					}
					if _, err := workloads.Fingerprint(name); err != nil {
						t.Errorf("Fingerprint(%q): %v", name, err)
					}
				}
				if got, _ := workloads.Fingerprint("fib"); got != want {
					t.Errorf("fingerprint moved under concurrency: %s vs %s", got, want)
				}
			}
		}()
	}
	wg.Wait()

	// Every distinct spec converges to exactly one stored result; concurrent
	// duplicate submissions must not have produced divergent bytes.
	for i := 0; i < distinct; i++ {
		sp := smallSpec(uint64(1000 + i))
		sp.Insts = 5_000
		_, rs := postSpec(t, ts, sp)
		first := waitDone(t, ts, rs.Digest)
		if first.Status != "done" {
			t.Fatalf("spec %d: %+v", i, first)
		}
		again := waitDone(t, ts, rs.Digest)
		if !bytes.Equal(first.Result, again.Result) {
			t.Errorf("spec %d: result bytes changed between reads", i)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
