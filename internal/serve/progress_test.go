package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cobra/internal/obs"
)

// TestProgressSnapshotFallback: clients that don't ask for an event stream
// get a single JSON snapshot, and unknown digests 404.
func TestProgressSnapshotFallback(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	_, rs := postSpec(t, ts, smallSpec(60))
	waitDone(t, ts, rs.Digest)

	resp, err := http.Get(ts.URL + "/v1/runs/" + rs.Digest + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("progress snapshot: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); strings.Contains(ct, "event-stream") {
		t.Fatalf("plain GET answered with an event stream (%q)", ct)
	}
	var ev progressEvent
	if err := json.NewDecoder(resp.Body).Decode(&ev); err != nil {
		t.Fatal(err)
	}
	if ev.Digest != rs.Digest || ev.Status != "done" || !ev.Done || ev.Phase != "done" {
		t.Fatalf("terminal snapshot = %+v", ev)
	}

	bad, err := http.Get(ts.URL + "/v1/runs/sha256:" + strings.Repeat("0", 64) + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, bad.Body) //nolint:errcheck
	bad.Body.Close()
	if bad.StatusCode != http.StatusNotFound {
		t.Errorf("unknown digest progress: HTTP %d, want 404", bad.StatusCode)
	}
}

// TestProgressStream: an SSE client watching a live run sees advancing
// frames and a final done frame, and the simulate-phase frames carry cycle
// counts fed by the core's flush path.
func TestProgressStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	_, rs := postSpec(t, ts, slowSpec(61))

	req, err := http.NewRequest("GET", ts.URL+"/v1/runs/"+rs.Digest+"/progress", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/event-stream") {
		t.Fatalf("content-type = %q, want event stream", ct)
	}

	var (
		frames []progressEvent
		sc     = bufio.NewScanner(resp.Body)
	)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev progressEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad frame %q: %v", line, err)
		}
		frames = append(frames, ev)
		if ev.Done {
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(frames) == 0 {
		t.Fatal("stream produced no frames")
	}
	last := frames[len(frames)-1]
	if !last.Done || last.Status != "done" {
		t.Fatalf("stream did not end on a terminal frame: %+v", last)
	}
	// Cycle counts within a phase must be monotone non-decreasing.
	var prev uint64
	sawCycles := false
	for _, ev := range frames {
		if ev.Cycles > 0 {
			sawCycles = true
		}
		if ev.Cycles < prev && !ev.Done {
			t.Fatalf("cycle count went backwards: %d after %d", ev.Cycles, prev)
		}
		if !ev.Done {
			prev = ev.Cycles
		}
	}
	if !sawCycles {
		t.Error("no frame carried a cycle count; core flush not feeding the sink")
	}
	waitDone(t, ts, rs.Digest)
}

// TestResultCarriesResources: result_version is 5 and the stored result
// includes the per-run resource-attribution record.
func TestResultCarriesResources(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	_, rs := postSpec(t, ts, smallSpec(62))
	done := waitDone(t, ts, rs.Digest)
	var res Result
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.ResultVersion != 5 {
		t.Fatalf("result_version = %d, want 5", res.ResultVersion)
	}
	if res.Resources == nil {
		t.Fatal("result carries no resource attribution")
	}
	r := res.Resources
	if r.AllocBytes == 0 || r.AllocObjects == 0 || r.WallMS <= 0 || r.Attempts != 1 {
		t.Errorf("implausible attribution: %+v", r)
	}
	if r.QueueWaitMS < 0 || r.GCPauseShare < 0 || r.GCPauseShare > 1 {
		t.Errorf("implausible attribution: %+v", r)
	}
}

// TestFailedRunCarriesPostMortem: a failed run's status reports the resource
// attribution of the last attempt and the flight-recorder tail.
func TestFailedRunCarriesPostMortem(t *testing.T) {
	obs.EnableFlight(0) // the daemon arms this via its logger; tests do it here
	_, ts := newTestServer(t, Config{Workers: 1, JobTimeout: time.Millisecond})
	_, rs := postSpec(t, ts, slowSpec(63))
	done := waitDone(t, ts, rs.Digest)
	if done.Status != "failed" {
		t.Fatalf("run did not fail: %+v", done)
	}
	if done.Resources == nil || done.Resources.WallMS <= 0 {
		t.Errorf("failed run carries no resource attribution: %+v", done.Resources)
	}
	if len(done.Flight) == 0 {
		t.Error("failed run carries no flight-recorder tail")
	}
}

// TestStatusz: the human page renders and ?json=1 exposes the same numbers
// machine-readably.
func TestStatusz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	_, rs := postSpec(t, ts, smallSpec(64))
	waitDone(t, ts, rs.Digest)
	postSpec(t, ts, smallSpec(64)) // mint a cache hit

	resp, err := http.Get(ts.URL + "/statusz?json=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc statuszDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Status != "ok" || doc.Workers != 2 || doc.UptimeSeconds <= 0 {
		t.Errorf("statusz doc = %+v", doc)
	}
	if doc.CacheHits != 1 || doc.CacheMisses != 1 || doc.CacheHitRate != 0.5 {
		t.Errorf("cache accounting: hits=%d misses=%d rate=%v",
			doc.CacheHits, doc.CacheMisses, doc.CacheHitRate)
	}
	if doc.CacheEntries != 1 {
		t.Errorf("cache entries = %d, want 1", doc.CacheEntries)
	}

	html, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer html.Body.Close()
	body, _ := io.ReadAll(html.Body)
	if ct := html.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Errorf("statusz content-type = %q", ct)
	}
	for _, want := range []string{"cobra-serve", "flight recorder", "hit rate"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("statusz page missing %q", want)
		}
	}
}

// TestStatuszShowsInflight: a queued/running job appears in the runs table.
func TestStatuszShowsInflight(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	_, rs := postSpec(t, ts, slowSpec(65))
	deadline := time.Now().Add(30 * time.Second)
	for {
		doc := s.statusz()
		if len(doc.Runs) > 0 {
			if doc.Runs[0].Digest != rs.Digest {
				t.Fatalf("statusz run digest = %s, want %s", doc.Runs[0].Digest, rs.Digest)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("in-flight run never appeared on statusz")
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitDone(t, ts, rs.Digest)
}

// TestDiskCacheV3AgesOut: entries written under result_version 3 filenames
// are invisible to a v4 server — the run misses, recomputes, and the fresh
// result lands beside (not on top of) the stale file.  Mirrors the v2→v3
// migration guarantee: a version bump never resurrects old bytes.
func TestDiskCacheV3AgesOut(t *testing.T) {
	dir := t.TempDir()
	sp := smallSpec(66)

	// Run once to learn the digest, then fake a stale v3 entry for it.
	s1, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	ts1 := httptest.NewServer(s1.Handler())
	_, rs := postSpec(t, ts1, sp)
	waitDone(t, ts1, rs.Digest)
	ts1.Close()
	shutdownServer(t, s1)

	key := strings.TrimPrefix(rs.Digest, "sha256:")
	stale := filepath.Join(dir, key+".r3.json")
	if err := os.WriteFile(stale, []byte(`{"result_version":3,"digest":"`+rs.Digest+`"}`), 0o644); err != nil {
		t.Fatal(err)
	}

	_, ts2 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	code, rs2 := postSpec(t, ts2, sp)
	if code != http.StatusAccepted || rs2.Cached {
		t.Fatalf("v3 entry served under v5: HTTP %d %+v", code, rs2)
	}
	done := waitDone(t, ts2, rs2.Digest)
	var res Result
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.ResultVersion != 5 {
		t.Fatalf("recomputed result_version = %d, want 5", res.ResultVersion)
	}
	if _, err := os.Stat(filepath.Join(dir, key+".r5.json")); err != nil {
		t.Errorf("fresh v5 entry not written: %v", err)
	}
	if _, err := os.Stat(stale); err != nil {
		t.Errorf("stale v3 entry was clobbered: %v", err)
	}
}

// TestProgressStreamQueuedKeepalive: a run parked behind a busy worker emits
// named `event: queued` keepalive frames until it is scheduled, then
// `event: progress` frames, and finally `event: done` — and once sampling is
// on, at least one running frame carries the latest closed interval window.
func TestProgressStreamQueuedKeepalive(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	// Occupy the single worker so the watched run sits in the queue long
	// enough for a keepalive tick (queued frames are emitted on the same
	// ~200ms cadence as progress frames).
	postSpec(t, ts, slowSpec(71))
	watched := slowSpec(72)
	watched.Observe.IntervalInsts = 50_000
	_, rs := postSpec(t, ts, watched)

	req, err := http.NewRequest("GET", ts.URL+"/v1/runs/"+rs.Digest+"/progress", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	type frame struct {
		name string
		ev   progressEvent
	}
	var (
		frames []frame
		name   string
		sc     = bufio.NewScanner(resp.Body)
	)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var ev progressEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad frame %q: %v", line, err)
			}
			frames = append(frames, frame{name, ev})
		}
		if len(frames) > 0 && frames[len(frames)-1].ev.Done {
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(frames) == 0 {
		t.Fatal("stream produced no frames")
	}

	// Every frame must carry a name consistent with its payload, the first
	// must be a queued keepalive (the worker is busy), and no queued frame
	// may follow a progress frame.
	if frames[0].name != "queued" || frames[0].ev.Status != "queued" {
		t.Fatalf("first frame = %q %+v, want a queued keepalive", frames[0].name, frames[0].ev)
	}
	sawProgress, sawWindow := false, false
	for i, f := range frames {
		switch {
		case f.ev.Done:
			if f.name != "done" {
				t.Fatalf("terminal frame named %q", f.name)
			}
		case f.ev.Status == "queued":
			if f.name != "queued" {
				t.Fatalf("frame %d: queued status named %q", i, f.name)
			}
			if sawProgress {
				t.Fatalf("frame %d: queued keepalive after the run started", i)
			}
		default:
			if f.name != "progress" {
				t.Fatalf("frame %d: running status named %q", i, f.name)
			}
			sawProgress = true
			if f.ev.Window != nil {
				sawWindow = true
				if f.ev.Window.EndInst == 0 {
					t.Fatalf("frame %d: live window is empty: %+v", i, f.ev.Window)
				}
			}
		}
	}
	last := frames[len(frames)-1]
	if !last.ev.Done || last.name != "done" {
		t.Fatalf("stream did not end on event: done (%q %+v)", last.name, last.ev)
	}
	if !sawProgress {
		t.Error("no progress frames after the queued keepalives")
	}
	if !sawWindow {
		t.Error("no running frame carried a live interval window despite sampling being on")
	}
	waitDone(t, ts, rs.Digest)
}
