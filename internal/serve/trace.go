package serve

import (
	"net/http"
	"sync"
	"time"

	"cobra/internal/obs"
	"cobra/internal/spec"
)

// Timings is the cached wall-clock breakdown of one serviced run: the
// service-side hops (queue wait, worker execution) plus the spec.Exec phase
// breakdown, all in milliseconds.  It is stored inside the Result, so a
// cache hit replays the timings of the original computation — "how long did
// this digest cost to compute" survives the cache.
type Timings struct {
	QueueWaitMS float64 `json:"queue_wait_ms"`
	ExecMS      float64 `json:"exec_ms"`
	spec.Timings
}

// traceContextFrom extracts the W3C trace context of an incoming request:
// the traceparent header when present and well-formed, a freshly minted
// root otherwise.  supplied reports which case it was.
func traceContextFrom(r *http.Request) (tc obs.TraceContext, supplied bool) {
	if h := r.Header.Get("traceparent"); h != "" {
		if parsed, err := obs.ParseTraceparent(h); err == nil {
			return parsed, true
		}
	}
	return obs.NewTraceContext(), false
}

// traceStore keeps one bounded SpanRecorder per run digest — the per-run
// request traces /v1/runs/{id}/trace serves.  Bounded FIFO: beyond max
// digests, the oldest trace is evicted (the Result's Timings survive in the
// cache; the span-level trace is a live-debugging artifact, not a ledger).
type traceStore struct {
	mu    sync.Mutex
	max   int
	order []string
	recs  map[string]*obs.SpanRecorder
}

func newTraceStore(max int) *traceStore {
	return &traceStore{max: max, recs: make(map[string]*obs.SpanRecorder)}
}

// intern returns the digest's recorder, creating it rooted at tc on first
// sight.  Later requests for the same digest share the recorder (their
// spans carry their own trace IDs), so a trace shows the original
// computation and subsequent cache hits side by side.
func (t *traceStore) intern(digest string, tc obs.TraceContext, spanCap int) *obs.SpanRecorder {
	t.mu.Lock()
	defer t.mu.Unlock()
	if rec, ok := t.recs[digest]; ok {
		return rec
	}
	rec := obs.NewSpanRecorder(tc, spanCap)
	t.recs[digest] = rec
	t.order = append(t.order, digest)
	for len(t.order) > t.max {
		delete(t.recs, t.order[0])
		t.order = t.order[1:]
	}
	return rec
}

// lookup returns the digest's recorder, or nil when it was never created or
// already evicted.  A nil recorder is a valid no-op span sink.
func (t *traceStore) lookup(digest string) *obs.SpanRecorder {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.recs[digest]
}

// droppedTotal sums the spans every live recorder discarded to its bound.
func (t *traceStore) droppedTotal() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n uint64
	for _, rec := range t.recs {
		n += rec.Dropped()
	}
	return n
}

// len reports how many run traces are live.
func (t *traceStore) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.recs)
}

func ms(d time.Duration) float64 { return d.Seconds() * 1e3 }
