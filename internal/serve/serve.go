// Package serve is the simulation-as-a-service layer: a long-lived HTTP
// daemon that accepts canonical RunSpecs, executes them on a bounded worker
// pool via the parallel runner, and memoizes results in a content-addressed
// cache keyed by the spec digest.  Because the digest covers everything that
// determines a run's outcome (topology, workload hash, seed, budgets, host,
// fault plan), a cache hit is byte-identical to recomputing — the service
// returns the stored bytes of the first execution verbatim.
//
// The API surface:
//
//	POST /v1/runs             submit a RunSpec (JSON body) → 200 done (cache
//	                          hit), 202 accepted (queued/running; identical
//	                          in-flight specs coalesce), 429 queue full,
//	                          503 draining
//	GET  /v1/runs/{id}        status/result by digest
//	GET  /v1/runs/{id}/events captured event trace of a finished run
//	GET  /healthz             liveness + queue depth
//	GET  /metrics             Prometheus text exposition (obs.Metrics)
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cobra/internal/obs"
	"cobra/internal/runner"
	"cobra/internal/spec"
	"cobra/internal/stats"
)

// Config shapes a Server.  Zero values select the documented defaults.
type Config struct {
	// Workers is the number of concurrent simulations (default GOMAXPROCS).
	Workers int
	// QueueLen bounds the pending-job queue; a full queue answers 429 with
	// Retry-After (default 64).
	QueueLen int
	// CacheEntries bounds the in-memory result LRU (default 256).
	CacheEntries int
	// CacheDir, when non-empty, persists results on disk so the cache
	// survives restarts.  The directory must exist.
	CacheDir string
	// JobTimeout caps each job's wall-clock time on top of whatever the
	// spec's own timeout_ms asks for (0 = none).
	JobTimeout time.Duration
	// Metrics receives job and cycle accounting; nil creates a fresh sink.
	Metrics *obs.Metrics
	// Log receives one line per job transition; nil discards.
	Log *log.Logger
}

// Result is the stored outcome of one run — the unit the cache holds and
// POST/GET hand back under "result".
type Result struct {
	Spec        *spec.RunSpec `json:"spec"`
	Digest      string        `json:"digest"`
	Stats       *stats.Sim    `json:"stats"`
	Events      []obs.Event   `json:"events,omitempty"`
	EventsTotal uint64        `json:"events_total,omitempty"`
	// WallMS is the wall-clock time of the original computation; replays
	// from cache return it unchanged (responses are byte-identical).
	WallMS int64 `json:"wall_ms"`
}

// job is one submitted spec moving through the queue.
type job struct {
	spec    *spec.RunSpec // canonical
	digest  string
	started atomic.Bool
	done    chan struct{}
}

// Server is the daemon state: worker pool, bounded queue, in-flight dedup
// table, and the result cache.
type Server struct {
	cfg Config
	met *obs.Metrics
	log *log.Logger

	queue   chan *job
	wg      sync.WaitGroup
	results *cache

	mu        sync.Mutex
	draining  bool
	jobs      map[string]*job   // digest → in-flight job (the singleflight table)
	failures  map[string]string // digest → error of the most recent failed run
	failOrder []string          // FIFO bound on failures
}

// New builds a Server; call Start to launch the workers and Handler to mount
// the API.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 64
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 256
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewMetrics()
	}
	if cfg.Log == nil {
		cfg.Log = log.New(io.Discard, "", 0)
	}
	return &Server{
		cfg:      cfg,
		met:      cfg.Metrics,
		log:      cfg.Log,
		queue:    make(chan *job, cfg.QueueLen),
		results:  newCache(cfg.CacheEntries, cfg.CacheDir),
		jobs:     make(map[string]*job),
		failures: make(map[string]string),
	}
}

// Metrics returns the server's telemetry sink.
func (s *Server) Metrics() *obs.Metrics { return s.met }

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Shutdown drains the server: no new submissions are accepted, queued jobs
// run to completion, and Shutdown returns when the last worker is idle — or
// when ctx expires, in which case queued-but-unstarted work is abandoned and
// ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one spec through the parallel runner (panic containment,
// per-job timeout, metrics accounting) and publishes the outcome.
func (s *Server) runJob(j *job) {
	j.started.Store(true)
	begin := time.Now()
	res, err := runner.RunSpecs([]*spec.RunSpec{j.spec}, runner.Options{
		Workers: 1, Policy: runner.FailFast, Timeout: s.cfg.JobTimeout, Metrics: s.met,
	})
	if err == nil {
		out := res[0].Outcome
		data, merr := json.Marshal(Result{
			Spec:        res[0].Spec,
			Digest:      j.digest,
			Stats:       out.Stats,
			Events:      out.Events,
			EventsTotal: out.EventsTotal,
			WallMS:      time.Since(begin).Milliseconds(),
		})
		if merr != nil {
			err = merr
		} else {
			s.results.put(j.digest, data)
		}
	}
	s.mu.Lock()
	if err != nil {
		s.recordFailureLocked(j.digest, err.Error())
	}
	delete(s.jobs, j.digest)
	s.mu.Unlock()
	close(j.done)
	if err != nil {
		s.log.Printf("run %s failed after %v: %v", j.digest, time.Since(begin).Truncate(time.Millisecond), err)
	} else {
		s.log.Printf("run %s done in %v", j.digest, time.Since(begin).Truncate(time.Millisecond))
	}
}

// recordFailureLocked remembers a failed digest (bounded FIFO) so GET can
// report what went wrong; failures are never served from cache.
func (s *Server) recordFailureLocked(digest, msg string) {
	if _, ok := s.failures[digest]; !ok {
		s.failOrder = append(s.failOrder, digest)
		for len(s.failOrder) > 128 {
			delete(s.failures, s.failOrder[0])
			s.failOrder = s.failOrder[1:]
		}
	}
	s.failures[digest] = msg
}

// Handler mounts the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// runStatus is the envelope every /v1/runs response uses.
type runStatus struct {
	Digest string          `json:"digest"`
	Status string          `json:"status"` // queued, running, done, failed
	Cached bool            `json:"cached,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	sp, err := spec.Parse(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	if err := sp.Canonicalize(); err != nil {
		writeError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	digest, err := sp.Digest()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	if raw, ok := s.results.get(digest); ok {
		writeJSON(w, http.StatusOK, runStatus{Digest: digest, Status: "done", Cached: true, Result: raw})
		return
	}
	s.mu.Lock()
	if j, ok := s.jobs[digest]; ok {
		// Identical spec already in flight: coalesce instead of re-running.
		status := statusOf(j)
		s.mu.Unlock()
		w.Header().Set("Location", "/v1/runs/"+digest)
		writeJSON(w, http.StatusAccepted, runStatus{Digest: digest, Status: status})
		return
	}
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	j := &job{spec: sp, digest: digest, done: make(chan struct{})}
	select {
	case s.queue <- j:
		s.jobs[digest] = j
		delete(s.failures, digest) // a resubmission supersedes an old failure
		s.mu.Unlock()
		s.log.Printf("run %s queued (%s on %s, %d insts)", digest, sp.Topology, sp.Workload, sp.Insts)
		w.Header().Set("Location", "/v1/runs/"+digest)
		writeJSON(w, http.StatusAccepted, runStatus{Digest: digest, Status: "queued"})
	default:
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "queue full (%d pending)", s.cfg.QueueLen)
	}
}

func statusOf(j *job) string {
	if j.started.Load() {
		return "running"
	}
	return "queued"
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !validDigest(id) {
		writeError(w, http.StatusBadRequest, "malformed digest %q", id)
		return
	}
	s.mu.Lock()
	j, inflight := s.jobs[id]
	failMsg, failed := s.failures[id]
	s.mu.Unlock()
	if inflight {
		writeJSON(w, http.StatusOK, runStatus{Digest: id, Status: statusOf(j)})
		return
	}
	if raw, ok := s.results.get(id); ok {
		writeJSON(w, http.StatusOK, runStatus{Digest: id, Status: "done", Cached: true, Result: raw})
		return
	}
	if failed {
		writeJSON(w, http.StatusOK, runStatus{Digest: id, Status: "failed", Error: failMsg})
		return
	}
	writeError(w, http.StatusNotFound, "unknown run %s", id)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !validDigest(id) {
		writeError(w, http.StatusBadRequest, "malformed digest %q", id)
		return
	}
	raw, ok := s.results.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no finished run %s", id)
		return
	}
	var res Result
	if err := json.Unmarshal(raw, &res); err != nil {
		writeError(w, http.StatusInternalServerError, "corrupt result: %v", err)
		return
	}
	if !res.Spec.Observe.Events {
		writeError(w, http.StatusNotFound, "run %s did not capture events (set observe.events)", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"digest": id, "events_total": res.EventsTotal, "events": res.Events,
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	inflight := len(s.jobs)
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"queued":   len(s.queue),
		"inflight": inflight,
		"workers":  s.cfg.Workers,
		"cached":   s.results.len(),
		"draining": draining,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, s.met.Expo())
}
