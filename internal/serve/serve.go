// Package serve is the simulation-as-a-service layer: a long-lived HTTP
// daemon that accepts canonical RunSpecs, executes them on a bounded worker
// pool via the parallel runner, and memoizes results in a content-addressed
// cache keyed by the spec digest.  Because the digest covers everything that
// determines a run's outcome (topology, workload hash, seed, budgets, host,
// fault plan), a cache hit is byte-identical to recomputing — the service
// returns the stored bytes of the first execution verbatim.
//
// Every request is traced: the W3C traceparent header (when present) seeds a
// per-run span tree covering admission, cache lookup, queue wait, worker
// execution, the spec.Exec phases, render, and cache write; the trace is
// served back as Chrome trace_event JSON.  Latency histograms (queue wait,
// exec, end-to-end split by cache hit/miss) ride the /metrics exposition,
// and every job transition logs one structured line via log/slog.
//
// The API surface:
//
//	POST /v1/runs             submit a RunSpec (JSON body) → 200 done (cache
//	                          hit), 202 accepted (queued/running; identical
//	                          in-flight specs coalesce), 429 queue full,
//	                          503 draining
//	GET  /v1/runs/{id}        status/result by digest
//	GET  /v1/runs/{id}/events captured event trace of a finished run
//	GET  /v1/runs/{id}/intervals
//	                          windowed interval telemetry of a finished run
//	                          (JSON, or CBRAIVL1 binary with ?format=binary)
//	GET  /v1/runs/{id}/trace  request trace (Chrome trace_event JSON)
//	GET  /healthz             liveness (always 200 while the process serves)
//	GET  /healthz/ready       readiness (503 while draining)
//	GET  /metrics             Prometheus text exposition (obs.Metrics)
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cobra/internal/interval"
	"cobra/internal/obs"
	"cobra/internal/runner"
	"cobra/internal/spec"
	"cobra/internal/stats"
)

// resultVersion stamps every stored Result.  Bump it when the Result schema
// changes shape (it does NOT track the RunSpec schema — spec.Version covers
// that): the disk-cache filename carries the version, so entries written by
// an older server become deliberate misses instead of deserialization
// surprises.  v2 added result_version, trace_id, and the timings breakdown;
// v3 added the retries count and the integrity footer on disk entries; v4
// added the per-run resource-attribution record; v5 added the windowed
// interval-telemetry summary.
const resultVersion = 5

// Config shapes a Server.  Zero values select the documented defaults.
type Config struct {
	// Workers is the number of concurrent simulations (default GOMAXPROCS).
	Workers int
	// QueueLen bounds the pending-job queue; a full queue answers 429 with
	// Retry-After (default 64).
	QueueLen int
	// CacheEntries bounds the in-memory result LRU (default 256).
	CacheEntries int
	// CacheDir, when non-empty, persists results on disk so the cache
	// survives restarts.  The directory must exist.
	CacheDir string
	// JournalPath overrides where the durable run journal (the WAL of
	// accepted digests) lives.  Default: <CacheDir>/journal.wal when
	// CacheDir is set; empty with no CacheDir runs unjournaled, and a
	// restart then loses accepted-but-unfinished runs.
	JournalPath string
	// JobRetries is how many times a failed job is automatically re-executed
	// (with backoff) before it lands in the failure FIFO.  0 selects the
	// default (2); negative disables retries.
	JobRetries int
	// RetryBackoff is the base of the capped exponential backoff between
	// retry attempts: attempt n waits min(RetryBackoff << n, 8*RetryBackoff).
	// Default 250ms.
	RetryBackoff time.Duration
	// TraceEntries bounds how many per-run request traces are kept live for
	// GET /v1/runs/{id}/trace (default 256, FIFO-evicted).
	TraceEntries int
	// JobTimeout caps each job's wall-clock time on top of whatever the
	// spec's own timeout_ms asks for (0 = none).
	JobTimeout time.Duration
	// Metrics receives job and cycle accounting; nil creates a fresh sink.
	Metrics *obs.Metrics
	// Log receives one structured record per job transition; nil discards.
	Log *slog.Logger
}

// Result is the stored outcome of one run — the unit the cache holds and
// POST/GET hand back under "result".
type Result struct {
	ResultVersion int           `json:"result_version"`
	Spec          *spec.RunSpec `json:"spec"`
	Digest        string        `json:"digest"`
	// TraceID is the trace the original computation ran under; replays from
	// cache return it unchanged, tying the bytes back to the first request.
	TraceID     string      `json:"trace_id,omitempty"`
	Stats       *stats.Sim  `json:"stats"`
	Events      []obs.Event `json:"events,omitempty"`
	EventsTotal uint64      `json:"events_total,omitempty"`
	// Intervals is the windowed-telemetry summary when the spec asked for it
	// (observe.interval_insts > 0), served by GET /v1/runs/{id}/intervals.
	Intervals *interval.Set `json:"intervals,omitempty"`
	// Timings breaks the original computation down by hop and phase; like
	// WallMS it replays from cache unchanged.
	Timings *Timings `json:"timings,omitempty"`
	// Retries is how many failed attempts preceded this result — non-zero
	// only when the automatic retry policy rescued the run.
	Retries int `json:"retries,omitempty"`
	// Resources is the per-run resource attribution (CPU, allocs, GC, wait
	// breakdown) measured around the original computation; replays from
	// cache return the original record unchanged.
	Resources *obs.Resources `json:"resources,omitempty"`
	// WallMS is the wall-clock time of the original computation; replays
	// from cache return it unchanged (responses are byte-identical).
	WallMS int64 `json:"wall_ms"`
}

// job is one submitted spec moving through the queue.
type job struct {
	spec     *spec.RunSpec // canonical
	digest   string
	tc       obs.TraceContext // trace context of the enqueuing request
	submit   time.Time        // when the HTTP request arrived
	enqueue  time.Time        // when the job entered the queue
	admitSeq uint64           // admission order, for approximate queue position
	started  atomic.Bool
	prog     *obs.RunProgress   // live-progress sink behind /v1/runs/{id}/progress
	ivl      *interval.Recorder // live window recorder (nil unless the spec asks)
	done     chan struct{}
}

// recorderFor allocates the job's live interval recorder when the spec asks
// for windowed telemetry, so the SSE progress stream can watch windows close
// while the run is still in flight.
func recorderFor(sp *spec.RunSpec) *interval.Recorder {
	if sp.Observe.IntervalInsts == 0 {
		return nil
	}
	return interval.NewRecorder(sp.Observe.IntervalInsts)
}

// Server is the daemon state: worker pool, bounded queue, in-flight dedup
// table, the result cache, the durable run journal, and the per-run trace
// store.
type Server struct {
	cfg    Config
	met    *obs.Metrics
	log    *slog.Logger
	build  obs.Build
	traces *traceStore

	queue   chan *job
	wg      sync.WaitGroup
	results *cache
	jnl     *journal     // nil = unjournaled
	pending []pendingRun // accepted-but-incomplete runs recovered at startup

	start     time.Time     // process-facing uptime clock for /statusz
	admitted  atomic.Uint64 // jobs ever enqueued (admission sequence)
	startedCt atomic.Uint64 // jobs ever picked up by a worker

	mu        sync.Mutex
	draining  bool
	jobs      map[string]*job        // digest → in-flight job (the singleflight table)
	failures  map[string]*runFailure // digest → record of the most recent failed run
	failOrder []string               // FIFO bound on failures
}

// runFailure is what the failure FIFO remembers about a failed run: the
// error, the resource attribution of the last attempt, and the flight
// recorder's tail at failure time — enough to debug without reproducing.
type runFailure struct {
	msg       string
	retries   int
	resources *obs.Resources
	flight    []obs.FlightRecord
}

// New builds a Server, replaying the run journal when one is configured;
// call Start to launch the workers (and re-enqueue the replayed runs) and
// Handler to mount the API.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 64
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 256
	}
	if cfg.TraceEntries <= 0 {
		cfg.TraceEntries = 256
	}
	switch {
	case cfg.JobRetries == 0:
		cfg.JobRetries = 2
	case cfg.JobRetries < 0:
		cfg.JobRetries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 250 * time.Millisecond
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewMetrics()
	}
	if cfg.Log == nil {
		cfg.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.JournalPath == "" && cfg.CacheDir != "" {
		cfg.JournalPath = filepath.Join(cfg.CacheDir, "journal.wal")
	}
	s := &Server{
		cfg:      cfg,
		met:      cfg.Metrics,
		log:      cfg.Log,
		build:    obs.BuildInfo(),
		traces:   newTraceStore(cfg.TraceEntries),
		start:    time.Now(),
		queue:    make(chan *job, cfg.QueueLen),
		results:  newCache(cfg.CacheEntries, cfg.CacheDir, fmt.Sprintf(".r%d.json", resultVersion)),
		jobs:     make(map[string]*job),
		failures: make(map[string]*runFailure),
	}
	s.results.onCorrupt = func(path, reason string) {
		s.met.AddCacheCorrupt(1)
		s.log.Warn("cache: quarantined corrupt entry",
			"path", path+".corrupt", "reason", reason)
	}
	if cfg.JournalPath != "" {
		jnl, pending, skipped, err := openJournal(cfg.JournalPath, s.log)
		if err != nil {
			return nil, err
		}
		s.jnl, s.pending = jnl, pending
		s.met.AddJournalSkipped(uint64(skipped))
		if len(pending) > 0 || skipped > 0 {
			s.log.Info("journal: recovered state",
				"path", cfg.JournalPath, "pending", len(pending), "skipped_records", skipped)
		}
	}
	return s, nil
}

// Metrics returns the server's telemetry sink.
func (s *Server) Metrics() *obs.Metrics { return s.met }

// Start launches the worker pool and, when journal replay found runs that
// were accepted before a crash but never completed, re-enqueues them in the
// background through the normal admission bookkeeping.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if len(s.pending) > 0 {
		go s.replayPending()
	}
}

// replayPending re-enqueues journal-recovered runs.  A digest whose result
// already sits in the cache only lost its done record — it is settled, not
// re-run.  Enqueueing respects the same bounds as live submissions: it never
// overtakes the queue capacity (it waits instead) and stops when draining
// begins (the journal keeps the accepted records for the next start).
func (s *Server) replayPending() {
	for _, p := range s.pending {
		if _, hit := s.results.get(p.digest); hit {
			s.jnl.append(jrec{Type: recDone, Digest: p.digest})
			s.log.Info("journal: pending run already cached",
				"run_digest", p.digest, "phase", "replay")
			continue
		}
		j := &job{spec: p.spec, digest: p.digest, tc: obs.NewTraceContext(),
			submit: time.Now(), prog: obs.NewRunProgress(),
			ivl: recorderFor(p.spec), done: make(chan struct{})}
		for {
			s.mu.Lock()
			if s.draining {
				s.mu.Unlock()
				return
			}
			if _, ok := s.jobs[p.digest]; ok {
				s.mu.Unlock() // a client beat the replay to resubmitting it
				break
			}
			j.enqueue = time.Now()
			enqueued := false
			select {
			case s.queue <- j:
				j.admitSeq = s.admitted.Add(1)
				s.jobs[p.digest] = j
				delete(s.failures, p.digest)
				enqueued = true
			default: // queue full of live traffic; yield and retry
			}
			s.mu.Unlock()
			if enqueued {
				s.met.AddJournalReplayed(1)
				s.log.Info("run requeued from journal",
					"run_digest", p.digest, "phase", "replay",
					"topology", p.spec.Topology, "workload", p.spec.Workload)
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// Shutdown drains the server: no new submissions are accepted, queued jobs
// run to completion, and Shutdown returns when the last worker is idle — or
// when ctx expires, in which case queued-but-unstarted work is abandoned and
// ctx.Err() is returned (the journal still holds their accepted records, so
// the next start re-enqueues them).  After a clean drain the journal is
// fsynced and closed with every accepted digest marked complete, so an
// immediate restart replays exactly zero runs.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.jnl.close()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one spec through the parallel runner (panic containment,
// per-job timeout, metrics accounting) and publishes the outcome, retrying
// a failed execution up to Config.JobRetries times with capped exponential
// backoff before it lands in the failure FIFO.  The hops — queue wait,
// worker, render, cache write — each get a span on the job's trace; the
// runner parents the exec span (and spec.Exec's phase spans) under the
// worker span it is handed.  Journal choreography: a started record opens
// every attempt, and the terminal done/failed record is appended only after
// the cache holds the result — so a crash at any instant leaves the digest
// pending and replay re-executes it.
func (s *Server) runJob(j *job) {
	j.started.Store(true)
	s.startedCt.Add(1)
	pickup := time.Now()
	rec := s.traces.lookup(j.digest) // nil after eviction: spans become no-ops
	rec.Record(j.tc, "queue", "queue.wait", j.enqueue, pickup, nil)
	queueWait := pickup.Sub(j.enqueue)
	s.met.ObserveQueueWait(queueWait)

	var (
		tmg       Timings
		res       *obs.Resources
		err       error
		attempt   int
		retryWait time.Duration
	)
	for {
		s.jnl.append(jrec{Type: recStarted, Digest: j.digest, Attempt: attempt})
		tmg, res, err = s.execAttempt(j, rec, pickup, queueWait, retryWait, attempt)
		if err == nil {
			s.jnl.append(jrec{Type: recDone, Digest: j.digest})
			break
		}
		if attempt >= s.cfg.JobRetries {
			s.jnl.append(jrec{Type: recFailed, Digest: j.digest, Retries: attempt, Error: err.Error()})
			break
		}
		backoff := retryBackoff(s.cfg.RetryBackoff, attempt)
		s.met.AddJobRetries(1)
		s.log.Warn("run retrying",
			"run_digest", j.digest, "trace_id", j.tc.TraceIDString(), "phase", "retry",
			"attempt", attempt+1, "of", s.cfg.JobRetries, "backoff_ms", ms(backoff),
			"error", err.Error())
		time.Sleep(backoff)
		retryWait += backoff
		attempt++
	}
	s.mu.Lock()
	if err != nil {
		s.recordFailureLocked(j.digest, &runFailure{
			msg: err.Error(), retries: attempt, resources: res,
			flight: obs.Flight().Tail(32),
		})
	}
	delete(s.jobs, j.digest)
	s.mu.Unlock()
	if err != nil {
		j.prog.SetPhase(obs.PhaseFailed)
	} else {
		j.prog.SetPhase(obs.PhaseDone)
	}
	close(j.done)
	s.met.ObserveRequestEx(time.Since(j.submit), false, j.tc.TraceIDString())
	if err != nil {
		s.log.Error("run failed",
			"run_digest", j.digest, "trace_id", j.tc.TraceIDString(), "phase", "failed",
			"queue_wait_ms", ms(queueWait), "total_ms", ms(time.Since(j.submit)),
			"retries", attempt, "error", err.Error())
	} else {
		s.log.Info("run done",
			"run_digest", j.digest, "trace_id", j.tc.TraceIDString(), "phase", "done",
			"queue_wait_ms", ms(queueWait), "exec_ms", tmg.ExecMS,
			"simulate_ms", tmg.SimulateMS, "total_ms", ms(time.Since(j.submit)),
			"retries", attempt)
	}
}

// retryBackoff is the wait before re-executing a failed job: capped
// exponential, base << attempt bounded at 8× base.
func retryBackoff(base time.Duration, attempt int) time.Duration {
	d := base << min(attempt, 3)
	if max := 8 * base; d > max {
		d = max
	}
	return d
}

// execAttempt runs one execution attempt — with the resource meter wrapped
// around the runner call, so the attribution record covers failures too —
// and, on success, renders the Result (carrying the attempt count as its
// retries field and the attribution record) and publishes it to the cache.
func (s *Server) execAttempt(j *job, rec *obs.SpanRecorder, pickup time.Time, queueWait, retryWait time.Duration, attempt int) (Timings, *obs.Resources, error) {
	wspan := rec.Start(j.tc, "worker", "worker")
	if attempt > 0 {
		wspan.SetAttr("attempt", fmt.Sprint(attempt))
	}
	meter := obs.StartResourceMeter(0)
	res, err := runner.RunSpecs([]*spec.RunSpec{j.spec}, runner.Options{
		Workers: 1, Policy: runner.FailFast, Timeout: s.cfg.JobTimeout, Metrics: s.met,
		SpanFor:      func(int) *obs.ActiveSpan { return wspan },
		ProgressFor:  func(int) *obs.RunProgress { return j.prog },
		IntervalsFor: func(int) *interval.Recorder { return j.ivl },
	})
	resources := meter.Stop()
	resources.QueueWaitMS = float64(queueWait.Microseconds()) / 1000
	resources.RetryWaitMS = float64(retryWait.Microseconds()) / 1000
	resources.Attempts = attempt + 1
	s.met.ObserveRunResources(resources)
	wspan.End()
	if err != nil {
		return Timings{}, &resources, err
	}
	out := res[0].Outcome
	tmg := Timings{QueueWaitMS: ms(queueWait), ExecMS: ms(res[0].Wall), Timings: out.Timings}
	renderStart := time.Now()
	data, merr := json.Marshal(Result{
		ResultVersion: resultVersion,
		Spec:          res[0].Spec,
		Digest:        j.digest,
		TraceID:       j.tc.TraceIDString(),
		Stats:         out.Stats,
		Events:        out.Events,
		EventsTotal:   out.EventsTotal,
		Intervals:     out.Intervals,
		Timings:       &tmg,
		Retries:       attempt,
		Resources:     &resources,
		WallMS:        time.Since(pickup).Milliseconds(),
	})
	rec.Record(j.tc, "render", "render", renderStart, time.Now(), nil)
	if merr != nil {
		return tmg, &resources, merr
	}
	writeStart := time.Now()
	s.results.put(j.digest, data)
	rec.Record(j.tc, "cache", "cache.write", writeStart, time.Now(),
		map[string]string{"bytes": fmt.Sprint(len(data))})
	return tmg, &resources, nil
}

// recordFailureLocked remembers a failed digest (bounded FIFO) so GET can
// report what went wrong — with the last attempt's resource attribution and
// the flight-recorder tail; failures are never served from cache.
func (s *Server) recordFailureLocked(digest string, f *runFailure) {
	if _, ok := s.failures[digest]; !ok {
		s.failOrder = append(s.failOrder, digest)
		for len(s.failOrder) > 128 {
			delete(s.failures, s.failOrder[0])
			s.failOrder = s.failOrder[1:]
		}
	}
	s.failures[digest] = f
}

// Handler mounts the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/runs/{id}/intervals", s.handleIntervals)
	mux.HandleFunc("GET /v1/runs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/runs/{id}/progress", s.handleProgress)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /healthz/ready", s.handleReady)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	obs.RegisterDebug(mux) // /debug/pprof/*, /debug/flight
	return mux
}

// runStatus is the envelope every /v1/runs response uses.
type runStatus struct {
	Digest  string          `json:"digest"`
	Status  string          `json:"status"` // queued, running, done, failed
	Cached  bool            `json:"cached,omitempty"`
	TraceID string          `json:"trace_id,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
	Error   string          `json:"error,omitempty"`
	// Resources and Flight accompany failed runs: the last attempt's resource
	// attribution and the flight-recorder tail captured at failure time.
	Resources *obs.Resources     `json:"resources,omitempty"`
	Flight    []obs.FlightRecord `json:"flight,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	reqStart := time.Now()
	tc, _ := traceContextFrom(r)
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	sp, err := spec.Parse(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	if err := sp.Canonicalize(); err != nil {
		writeError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	digest, err := sp.Digest()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	// Traces are keyed by digest; the recorder is rooted at the first
	// submitter's context, and every request (original, coalesced, cache
	// hit) appends spans carrying its own trace ID.
	rec := s.traces.intern(digest, tc, 0)
	rec.Record(tc, "admission", "admission", reqStart, time.Now(),
		map[string]string{"digest": digest})

	lookupStart := time.Now()
	raw, hit := s.results.get(digest)
	if hit {
		rec.Record(tc, "cache", "cache.lookup", lookupStart, time.Now(),
			map[string]string{"result": "hit"})
		// The replay's "execution" is the cache serve itself — a near-zero
		// span on the exec track, so hit and miss traces compare directly.
		rec.Record(tc, "exec", "exec", lookupStart, time.Now(),
			map[string]string{"cached": "true"})
		rec.Record(tc, "http", "POST /v1/runs", reqStart, time.Now(),
			map[string]string{"status": "200"})
		s.met.ObserveRequestEx(time.Since(reqStart), true, tc.TraceIDString())
		s.log.Info("run served from cache",
			"run_digest", digest, "trace_id", tc.TraceIDString(), "phase", "cache_hit",
			"total_ms", ms(time.Since(reqStart)))
		writeJSON(w, http.StatusOK, runStatus{
			Digest: digest, Status: "done", Cached: true,
			TraceID: tc.TraceIDString(), Result: raw,
		})
		return
	}
	rec.Record(tc, "cache", "cache.lookup", lookupStart, time.Now(),
		map[string]string{"result": "miss"})
	s.mu.Lock()
	if j, ok := s.jobs[digest]; ok {
		// Identical spec already in flight: coalesce instead of re-running.
		status := statusOf(j)
		s.mu.Unlock()
		rec.Record(tc, "singleflight", "coalesce", reqStart, time.Now(),
			map[string]string{"status": status})
		rec.Record(tc, "http", "POST /v1/runs", reqStart, time.Now(),
			map[string]string{"status": "202"})
		w.Header().Set("Location", "/v1/runs/"+digest)
		writeJSON(w, http.StatusAccepted, runStatus{
			Digest: digest, Status: status, TraceID: tc.TraceIDString(),
		})
		return
	}
	if s.draining {
		s.mu.Unlock()
		rec.Record(tc, "http", "POST /v1/runs", reqStart, time.Now(),
			map[string]string{"status": "503"})
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	j := &job{spec: sp, digest: digest, tc: tc, submit: reqStart,
		prog: obs.NewRunProgress(), ivl: recorderFor(sp), done: make(chan struct{})}
	j.enqueue = time.Now()
	select {
	case s.queue <- j:
		j.admitSeq = s.admitted.Add(1)
		s.jobs[digest] = j
		delete(s.failures, digest) // a resubmission supersedes an old failure
		s.mu.Unlock()
		// Journal the admission durably (fsynced) before the 202 goes out:
		// once a client has seen its run accepted, no crash may lose it.
		if raw, merr := json.Marshal(sp); merr == nil {
			s.jnl.append(jrec{Type: recAccepted, Digest: digest, Spec: raw})
		} else {
			s.log.Error("journal: marshaling accepted spec",
				"run_digest", digest, "error", merr.Error())
		}
		rec.Record(tc, "http", "POST /v1/runs", reqStart, time.Now(),
			map[string]string{"status": "202"})
		s.log.Info("run queued",
			"run_digest", digest, "trace_id", tc.TraceIDString(), "phase", "queued",
			"topology", sp.Topology, "workload", sp.Workload, "insts", sp.Insts)
		w.Header().Set("Location", "/v1/runs/"+digest)
		writeJSON(w, http.StatusAccepted, runStatus{
			Digest: digest, Status: "queued", TraceID: tc.TraceIDString(),
		})
	default:
		s.mu.Unlock()
		rec.Record(tc, "http", "POST /v1/runs", reqStart, time.Now(),
			map[string]string{"status": "429"})
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "queue full (%d pending)", s.cfg.QueueLen)
	}
}

func statusOf(j *job) string {
	if j.started.Load() {
		return "running"
	}
	return "queued"
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !validDigest(id) {
		writeError(w, http.StatusBadRequest, "malformed digest %q", id)
		return
	}
	s.mu.Lock()
	j, inflight := s.jobs[id]
	fail, failed := s.failures[id]
	s.mu.Unlock()
	if inflight {
		writeJSON(w, http.StatusOK, runStatus{Digest: id, Status: statusOf(j)})
		return
	}
	if raw, ok := s.results.get(id); ok {
		writeJSON(w, http.StatusOK, runStatus{Digest: id, Status: "done", Cached: true, Result: raw})
		return
	}
	if failed {
		writeJSON(w, http.StatusOK, runStatus{
			Digest: id, Status: "failed", Error: fail.msg,
			Resources: fail.resources, Flight: fail.flight,
		})
		return
	}
	writeError(w, http.StatusNotFound, "unknown run %s", id)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !validDigest(id) {
		writeError(w, http.StatusBadRequest, "malformed digest %q", id)
		return
	}
	raw, ok := s.results.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no finished run %s", id)
		return
	}
	var res Result
	if err := json.Unmarshal(raw, &res); err != nil {
		writeError(w, http.StatusInternalServerError, "corrupt result: %v", err)
		return
	}
	if !res.Spec.Observe.Events {
		writeError(w, http.StatusNotFound, "run %s did not capture events (set observe.events)", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"digest": id, "events_total": res.EventsTotal, "events": res.Events,
	})
}

// handleIntervals serves a finished run's windowed interval telemetry: JSON
// by default, or the CBRAIVL1 binary encoding with ?format=binary (or an
// application/octet-stream Accept header) — the same bytes the set's
// content hash covers, so a client can verify the hash end to end.
func (s *Server) handleIntervals(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !validDigest(id) {
		writeError(w, http.StatusBadRequest, "malformed digest %q", id)
		return
	}
	raw, ok := s.results.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no finished run %s", id)
		return
	}
	var res Result
	if err := json.Unmarshal(raw, &res); err != nil {
		writeError(w, http.StatusInternalServerError, "corrupt result: %v", err)
		return
	}
	if res.Intervals == nil {
		writeError(w, http.StatusNotFound, "run %s did not record intervals (set observe.interval_insts)", id)
		return
	}
	if r.URL.Query().Get("format") == "binary" ||
		strings.Contains(r.Header.Get("Accept"), "application/octet-stream") {
		data, err := res.Intervals.Encode()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "encoding intervals: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(data) //nolint:errcheck
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"digest": id, "intervals": res.Intervals,
	})
}

// handleTrace serves the request trace of a run as Chrome trace_event JSON
// (load it in Perfetto or chrome://tracing).  Traces live in a bounded
// in-memory store: a run submitted before the last restart, or evicted by
// newer traffic, answers 404 even though its result may still be cached.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !validDigest(id) {
		writeError(w, http.StatusBadRequest, "malformed digest %q", id)
		return
	}
	rec := s.traces.lookup(id)
	if rec == nil {
		writeError(w, http.StatusNotFound, "no trace for run %s (not submitted here, or evicted)", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	obs.WriteChromeSpans(w, rec.Spans()) //nolint:errcheck
}

// health assembles the status document /healthz and /healthz/ready share.
func (s *Server) health() map[string]any {
	s.mu.Lock()
	inflight := len(s.jobs)
	draining := s.draining
	s.mu.Unlock()
	status := "ok"
	if draining {
		status = "draining"
	}
	return map[string]any{
		"status":   status,
		"queued":   len(s.queue),
		"inflight": inflight,
		"workers":  s.cfg.Workers,
		"cached":   s.results.len(),
		"traces":   s.traces.len(),
		"draining": draining,
		"build":    s.build,
	}
}

// handleHealth is liveness: 200 whenever the process can answer at all,
// draining included — restarting a draining server would lose queued work.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.health())
}

// handleReady is readiness: 503 while draining so load balancers stop
// routing new submissions, 200 otherwise.  Same document as /healthz.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	h := s.health()
	code := http.StatusOK
	if h["draining"] == true {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	om := obs.WantsOpenMetrics(r.Header.Get("Accept"))
	if om {
		w.Header().Set("Content-Type", obs.OpenMetricsContentType)
		fmt.Fprint(w, s.met.ExpoOpenMetrics())
	} else {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprint(w, s.met.Expo())
	}
	s.mu.Lock()
	inflight := len(s.jobs)
	failures := len(s.failures)
	draining := 0
	if s.draining {
		draining = 1
	}
	s.mu.Unlock()
	gauge := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	gauge("cobra_serve_queue_depth", "Jobs waiting in the bounded queue.", len(s.queue))
	gauge("cobra_serve_inflight", "Jobs admitted and not yet finished.", inflight)
	gauge("cobra_serve_cache_entries", "In-memory result cache entries.", s.results.len())
	gauge("cobra_serve_failures", "Entries in the bounded failure FIFO.", failures)
	gauge("cobra_serve_draining", "1 while the server is draining, 0 otherwise.", draining)
	gauge("cobra_serve_trace_entries", "Per-run request traces held live.", s.traces.len())
	gauge("cobra_serve_span_drops_total", "Request spans discarded to per-run buffer bounds.", s.traces.droppedTotal())
	fmt.Fprintf(w, "# HELP go_build_info Build information about the main Go module.\n"+
		"# TYPE go_build_info gauge\ngo_build_info{path=%q,version=%q,checksum=\"\"} 1\n",
		s.build.Path, s.build.Version)
	fmt.Fprintf(w, "# HELP cobra_build_info Build identity of this binary.\n"+
		"# TYPE cobra_build_info gauge\ncobra_build_info{goversion=%q,revision=%q,dirty=\"%t\"} 1\n",
		s.build.GoVersion, s.build.Revision, s.build.Dirty)
	if om {
		fmt.Fprint(w, obs.RuntimeExpoOpenMetrics())
		fmt.Fprint(w, "# EOF\n")
	} else {
		fmt.Fprint(w, obs.RuntimeExpo())
	}
}
