package serve

// Tests for the durable run journal: the line format, replay semantics
// (torn records, duplicates, unknown types), compaction, and the server-level
// recovery path — an accepted-but-incomplete digest is re-executed on startup
// with bytes identical to a direct spec.Exec.

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"cobra/internal/spec"
)

// syncBuffer is a goroutine-safe bytes.Buffer for capturing slog output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// testLogger returns a logger whose output the test can inspect.
func testLogger() (*slog.Logger, *syncBuffer) {
	buf := &syncBuffer{}
	return slog.New(slog.NewTextHandler(buf, nil)), buf
}

// canonSpec returns a canonical spec, its digest, and its JSON.
func canonSpec(t *testing.T, seed uint64) (*spec.RunSpec, string, []byte) {
	t.Helper()
	s := smallSpec(seed)
	if err := s.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	digest, err := s.Digest()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return s, digest, raw
}

// writeWAL writes records (already-encoded lines or raw fragments) to a fresh
// journal file and returns its path.
func writeWAL(t *testing.T, lines ...[]byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "journal.wal")
	var all []byte
	for _, l := range lines {
		all = append(all, l...)
	}
	if err := os.WriteFile(path, all, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func mustEncode(t *testing.T, r jrec) []byte {
	t.Helper()
	line, err := encodeRecord(r)
	if err != nil {
		t.Fatal(err)
	}
	return line
}

func TestJournalRecordRoundTrip(t *testing.T) {
	_, digest, raw := canonSpec(t, 1)
	in := jrec{Type: recAccepted, Digest: digest, Spec: raw}
	line := mustEncode(t, in)
	if !bytes.HasPrefix(line, []byte(journalMagic+" ")) || line[len(line)-1] != '\n' {
		t.Fatalf("bad framing: %q", line)
	}
	out, err := decodeRecord(strings.TrimSuffix(string(line), "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.Digest != in.Digest || !bytes.Equal(out.Spec, in.Spec) {
		t.Errorf("round trip changed the record: %+v vs %+v", out, in)
	}
}

func TestJournalDecodeErrors(t *testing.T) {
	_, digest, raw := canonSpec(t, 2)
	good := string(mustEncode(t, jrec{Type: recAccepted, Digest: digest, Spec: raw}))
	good = strings.TrimSuffix(good, "\n")
	for name, line := range map[string]string{
		"bad magic":         "nope " + good[len(journalMagic)+1:],
		"truncated frame":   journalMagic + " 0abc",
		"checksum mismatch": good[:len(journalMagic)+1] + "00000000" + good[len(journalMagic)+9:],
		"bad json":          journalMagic + " 00000000 {",
	} {
		if _, err := decodeRecord(line); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestJournalReplaySemantics: completed digests (done or failed) are not
// pending; accepted-but-incomplete ones are, in acceptance order, with their
// specs revalidated.
func TestJournalReplaySemantics(t *testing.T) {
	_, dA, rawA := canonSpec(t, 3)
	_, dB, rawB := canonSpec(t, 4)
	_, dC, rawC := canonSpec(t, 5)
	path := writeWAL(t,
		mustEncode(t, jrec{Type: recAccepted, Digest: dA, Spec: rawA}),
		mustEncode(t, jrec{Type: recStarted, Digest: dA}),
		mustEncode(t, jrec{Type: recDone, Digest: dA}),
		mustEncode(t, jrec{Type: recAccepted, Digest: dB, Spec: rawB}),
		mustEncode(t, jrec{Type: recStarted, Digest: dB}),
		mustEncode(t, jrec{Type: recAccepted, Digest: dC, Spec: rawC}),
		mustEncode(t, jrec{Type: recFailed, Digest: dC, Error: "boom"}),
	)
	log, _ := testLogger()
	pending, skipped, err := readJournal(path, log)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("skipped %d records in a clean journal", skipped)
	}
	if len(pending) != 1 || pending[0].digest != dB {
		t.Fatalf("pending = %+v, want exactly %s (started-but-unfinished)", pending, dB)
	}
	if got, _ := pending[0].spec.Digest(); got != dB {
		t.Errorf("revalidated spec digest %s != %s", got, dB)
	}
}

// TestJournalTornFinalRecord: a crash mid-append leaves a torn last line;
// replay skips it with a structured warning and keeps everything before it.
func TestJournalTornFinalRecord(t *testing.T) {
	_, dA, rawA := canonSpec(t, 6)
	full := mustEncode(t, jrec{Type: recAccepted, Digest: dA, Spec: rawA})
	torn := full[:len(full)/2] // no trailing newline, checksum can't match
	path := writeWAL(t, full, torn)
	log, buf := testLogger()
	pending, skipped, err := readJournal(path, log)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].digest != dA {
		t.Fatalf("pending = %+v, want the intact record %s", pending, dA)
	}
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
	if out := buf.String(); !strings.Contains(out, "torn final record") {
		t.Errorf("no torn-record warning logged:\n%s", out)
	}
}

// TestJournalDuplicateDone: done-after-done (replay marking an already-cached
// pending run complete again) is harmless.
func TestJournalDuplicateDone(t *testing.T) {
	_, dA, rawA := canonSpec(t, 7)
	path := writeWAL(t,
		mustEncode(t, jrec{Type: recAccepted, Digest: dA, Spec: rawA}),
		mustEncode(t, jrec{Type: recDone, Digest: dA}),
		mustEncode(t, jrec{Type: recDone, Digest: dA}),
		mustEncode(t, jrec{Type: recDone, Digest: "sha256:" + strings.Repeat("9", 64)}),
	)
	log, _ := testLogger()
	pending, skipped, err := readJournal(path, log)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 || skipped != 0 {
		t.Errorf("pending=%d skipped=%d, want 0/0", len(pending), skipped)
	}
}

// TestJournalUnknownRecordType: records from a newer server version are
// skipped with a warning, never fatal.
func TestJournalUnknownRecordType(t *testing.T) {
	_, dA, rawA := canonSpec(t, 8)
	path := writeWAL(t,
		mustEncode(t, jrec{Type: "compacted", Digest: dA}),
		mustEncode(t, jrec{Type: recAccepted, Digest: dA, Spec: rawA}),
	)
	log, buf := testLogger()
	pending, skipped, err := readJournal(path, log)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || skipped != 1 {
		t.Fatalf("pending=%d skipped=%d, want 1/1", len(pending), skipped)
	}
	if out := buf.String(); !strings.Contains(out, "unknown record type") {
		t.Errorf("no unknown-type warning logged:\n%s", out)
	}
}

// TestJournalDigestMismatch: an accepted record whose spec no longer hashes
// to its recorded digest (corruption that survived the CRC, or a schema
// change) is dropped rather than executed under the wrong key.
func TestJournalDigestMismatch(t *testing.T) {
	_, dA, _ := canonSpec(t, 9)
	_, _, rawB := canonSpec(t, 10)
	path := writeWAL(t, mustEncode(t, jrec{Type: recAccepted, Digest: dA, Spec: rawB}))
	log, buf := testLogger()
	pending, skipped, err := readJournal(path, log)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 || skipped != 1 {
		t.Fatalf("pending=%d skipped=%d, want 0/1", len(pending), skipped)
	}
	if out := buf.String(); !strings.Contains(out, "digest moved") {
		t.Errorf("no digest-mismatch warning logged:\n%s", out)
	}
}

// TestJournalCompaction: openJournal rewrites the log to pending-only, and
// the returned handle appends to the compacted file.
func TestJournalCompaction(t *testing.T) {
	_, dA, rawA := canonSpec(t, 11)
	_, dB, rawB := canonSpec(t, 12)
	path := writeWAL(t,
		mustEncode(t, jrec{Type: recAccepted, Digest: dA, Spec: rawA}),
		mustEncode(t, jrec{Type: recDone, Digest: dA}),
		mustEncode(t, jrec{Type: recAccepted, Digest: dB, Spec: rawB}),
	)
	log, _ := testLogger()
	jnl, pending, skipped, err := openJournal(path, log)
	if err != nil {
		t.Fatal(err)
	}
	defer jnl.close()
	if len(pending) != 1 || pending[0].digest != dB || skipped != 0 {
		t.Fatalf("pending=%+v skipped=%d", pending, skipped)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("compacted journal has %d lines, want 1:\n%s", len(lines), data)
	}
	rec, err := decodeRecord(lines[0])
	if err != nil || rec.Type != recAccepted || rec.Digest != dB {
		t.Fatalf("compacted record: %+v, %v", rec, err)
	}
	// The handle appends to the compacted file.
	jnl.append(jrec{Type: recDone, Digest: dB})
	pending2, _, err := readJournal(path, log)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending2) != 0 {
		t.Errorf("after done append, pending = %+v, want none", pending2)
	}
}

// TestServerReplaysJournal is the in-process recovery acceptance test: a
// journal holding an accepted-but-incomplete digest (as a crash leaves it)
// makes the next server re-execute the run to completion, byte-identical in
// its counters to a direct spec.Exec of the same spec.
func TestServerReplaysJournal(t *testing.T) {
	dir := t.TempDir()
	sp, digest, raw := canonSpec(t, 60)
	line := mustEncode(t, jrec{Type: recAccepted, Digest: digest, Spec: raw})
	if err := os.WriteFile(filepath.Join(dir, "journal.wal"), line, 0o644); err != nil {
		t.Fatal(err)
	}

	s, ts := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	done := waitDone(t, ts, digest)
	if done.Status != "done" {
		t.Fatalf("replayed run: %+v", done)
	}
	if got := s.Metrics().Snap().JournalReplayed; got != 1 {
		t.Errorf("journal_replayed = %d, want 1", got)
	}
	var res Result
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatal(err)
	}
	out, err := spec.Exec(sp, spec.Attach{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(out.Stats)
	got, _ := json.Marshal(res.Stats)
	if !bytes.Equal(got, want) {
		t.Errorf("replayed stats diverge from direct execution:\nreplay: %s\ndirect: %s", got, want)
	}
	if res.Digest != digest {
		t.Errorf("replayed result keyed %s, want %s", res.Digest, digest)
	}
}

// TestJournalReplayAlreadyCached: a crash between the cache write and the
// done record leaves a pending digest whose result is already on disk —
// replay settles it from the cache without re-running anything.
func TestJournalReplayAlreadyCached(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	_, digest, raw := canonSpec(t, 61)
	_, rs := postSpec(t, ts1, smallSpec(61))
	if rs.Digest != digest {
		t.Fatalf("digest mismatch: %s vs %s", rs.Digest, digest)
	}
	first := waitDone(t, ts1, digest)
	ts1.Close()
	shutdownServer(t, s1)

	// Simulate the lost done record: hand-append a fresh accepted record.
	line := mustEncode(t, jrec{Type: recAccepted, Digest: digest, Spec: raw})
	f, err := os.OpenFile(filepath.Join(dir, "journal.wal"), os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(line); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, ts2 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	rs2 := waitDone(t, ts2, digest)
	if rs2.Status != "done" || !bytes.Equal(first.Result, rs2.Result) {
		t.Fatalf("settled run changed: %+v", rs2)
	}
	// Settled from cache: no job ran, nothing was re-enqueued.
	deadline := time.Now().Add(10 * time.Second)
	for s2.Metrics().Snap().JobsTotal == 0 && time.Now().Before(deadline) {
		if p, _, err := readJournal(filepath.Join(dir, "journal.wal"), slog.Default()); err == nil && len(p) == 0 {
			break // replay appended the settling done record
		}
		time.Sleep(10 * time.Millisecond)
	}
	snap := s2.Metrics().Snap()
	if snap.JobsTotal != 0 || snap.JournalReplayed != 0 {
		t.Errorf("cached pending run re-ran: jobs=%d replayed=%d", snap.JobsTotal, snap.JournalReplayed)
	}
}

func shutdownServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestCacheQuarantine: a bit-flipped disk entry fails footer verification,
// is renamed aside as *.corrupt, counted, and recomputed — never served.
func TestCacheQuarantine(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	_, rs := postSpec(t, ts1, smallSpec(80))
	first := waitDone(t, ts1, rs.Digest)
	ts1.Close()
	shutdownServer(t, s1)

	entry := filepath.Join(dir, strings.TrimPrefix(rs.Digest, "sha256:")+".r5.json")
	data, err := os.ReadFile(entry)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x40 // flip one bit mid-payload
	if err := os.WriteFile(entry, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	code, rs2 := postSpec(t, ts2, smallSpec(80))
	if code != 202 {
		t.Fatalf("corrupt entry served as a hit: HTTP %d %+v", code, rs2)
	}
	if got := s2.Metrics().Snap().CacheCorrupt; got != 1 {
		t.Errorf("cache_corrupt = %d, want 1", got)
	}
	if _, err := os.Stat(entry + ".corrupt"); err != nil {
		t.Errorf("no quarantine file: %v", err)
	}
	redone := waitDone(t, ts2, rs.Digest)
	if redone.Status != "done" {
		t.Fatalf("recompute failed: %+v", redone)
	}
	var a, b Result
	if err := json.Unmarshal(first.Result, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(redone.Result, &b); err != nil {
		t.Fatal(err)
	}
	wantStats, _ := json.Marshal(a.Stats)
	gotStats, _ := json.Marshal(b.Stats)
	if !bytes.Equal(wantStats, gotStats) {
		t.Errorf("recomputed stats diverge:\nwas: %s\nnow: %s", wantStats, gotStats)
	}
}

// TestCacheTruncatedEntry: a truncated entry (shorter than its footer) is
// quarantined too, not parsed.
func TestCacheTruncatedEntry(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	_, rs := postSpec(t, ts1, smallSpec(81))
	waitDone(t, ts1, rs.Digest)
	ts1.Close()
	shutdownServer(t, s1)

	entry := filepath.Join(dir, strings.TrimPrefix(rs.Digest, "sha256:")+".r5.json")
	if err := os.Truncate(entry, 10); err != nil {
		t.Fatal(err)
	}
	s2, ts2 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	code, _ := postSpec(t, ts2, smallSpec(81))
	if code != 202 {
		t.Fatalf("truncated entry served as a hit: HTTP %d", code)
	}
	if got := s2.Metrics().Snap().CacheCorrupt; got != 1 {
		t.Errorf("cache_corrupt = %d, want 1", got)
	}
	waitDone(t, ts2, rs.Digest)
}

// TestJobRetriesSurfaced: a deterministically failing run burns its retry
// budget (visible on the retry counter) before landing in the failure FIFO.
func TestJobRetriesSurfaced(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1, JobTimeout: time.Millisecond,
		JobRetries: 1, RetryBackoff: time.Millisecond,
	})
	_, rs := postSpec(t, ts, slowSpec(90))
	done := waitDone(t, ts, rs.Digest)
	if done.Status != "failed" {
		t.Fatalf("run did not fail: %+v", done)
	}
	if got := s.Metrics().Snap().JobRetries; got != 1 {
		t.Errorf("job_retries = %d, want 1", got)
	}
}

func TestRetryBackoff(t *testing.T) {
	base := 100 * time.Millisecond
	for _, tc := range []struct {
		attempt int
		want    time.Duration
	}{{0, 100 * time.Millisecond}, {1, 200 * time.Millisecond},
		{2, 400 * time.Millisecond}, {3, 800 * time.Millisecond},
		{4, 800 * time.Millisecond}, {10, 800 * time.Millisecond}} {
		if got := retryBackoff(base, tc.attempt); got != tc.want {
			t.Errorf("retryBackoff(%v, %d) = %v, want %v", base, tc.attempt, got, tc.want)
		}
	}
}
