package serve

// Chaos harness: drives a real cobra-serve subprocess through the failures
// the crash-safety machinery exists for — SIGKILL mid-run, cache corruption
// on disk, graceful drains — and asserts the recovery invariants:
//
//   - every digest the daemon accepted before a SIGKILL completes after a
//     restart, with counters byte-identical to a direct spec.Exec
//   - corrupted cache entries are quarantined (*.corrupt + counter) and
//     recomputed, never served
//   - a retrying client bridging the restart gets the right answer
//   - a clean drain leaves nothing to replay
//
// The harness needs the go toolchain to build the binary; skip under -short.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"cobra/internal/client"
	"cobra/internal/spec"
)

// buildServeBinary compiles cmd/cobra-serve once per test binary.
var buildOnce sync.Once
var servePath string
var buildErr error

func serveBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "cobra-chaos-bin-")
		if err != nil {
			buildErr = err
			return
		}
		servePath = filepath.Join(dir, "cobra-serve")
		cmd := exec.Command("go", "build", "-o", servePath, "cobra/cmd/cobra-serve")
		cmd.Dir = repoRoot(t)
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("building cobra-serve: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return servePath
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // internal/serve → repo root
}

// daemon is one running cobra-serve subprocess.
type daemon struct {
	cmd    *exec.Cmd
	url    string
	stderr *syncBuffer
	exited chan error
}

var listenRE = regexp.MustCompile(`url=(http://\S+)`)

// startDaemon launches the binary over dir and waits for its listen line.
func startDaemon(t *testing.T, bin, dir string, extra ...string) *daemon {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-cache-dir", dir, "-workers", "2"}, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, stderr: &syncBuffer{}, exited: make(chan error, 1)}
	urlc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			d.stderr.Write([]byte(line + "\n")) //nolint:errcheck
			if m := listenRE.FindStringSubmatch(line); m != nil {
				select {
				case urlc <- m[1]:
				default:
				}
			}
		}
	}()
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	go func() { d.exited <- cmd.Wait() }()
	select {
	case d.url = <-urlc:
	case err := <-d.exited:
		t.Fatalf("daemon exited before listening: %v\n%s", err, d.stderr.String())
	case <-time.After(30 * time.Second):
		cmd.Process.Kill() //nolint:errcheck
		t.Fatalf("daemon never announced its listen address\n%s", d.stderr.String())
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill() //nolint:errcheck
			<-d.exited
		}
	})
	return d
}

// kill SIGKILLs the daemon and waits for the process to be gone.
func (d *daemon) kill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-d.exited
}

// drain SIGTERMs the daemon and requires a clean exit.
func (d *daemon) drain(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-d.exited:
		if err != nil {
			t.Fatalf("drain exited dirty: %v\n%s", err, d.stderr.String())
		}
	case <-time.After(120 * time.Second):
		t.Fatal("drain never finished")
	}
}

// get fetches a run status from the daemon.
func (d *daemon) get(t *testing.T, digest string) (int, runStatus) {
	t.Helper()
	resp, err := http.Get(d.url + "/v1/runs/" + digest)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rs runStatus
	if err := json.NewDecoder(resp.Body).Decode(&rs); err != nil {
		t.Fatalf("decoding GET %s (HTTP %d): %v", digest, resp.StatusCode, err)
	}
	return resp.StatusCode, rs
}

// metric scrapes one counter/gauge value from /metrics.
func (d *daemon) metric(t *testing.T, name string) float64 {
	t.Helper()
	resp, err := http.Get(d.url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parsing %s value %q: %v", name, rest, err)
			}
			return v
		}
	}
	t.Fatalf("/metrics has no %s:\n%s", name, body)
	return 0
}

// chaosSpec is slow enough (~seconds) that a SIGKILL reliably lands mid-run.
func chaosSpec(seed uint64) *spec.RunSpec {
	return &spec.RunSpec{
		Design: "tage-l", Topology: "LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1",
		Pipeline: spec.Pipeline{GHistBits: 64},
		Workload: "dhrystone", Seed: seed, Insts: 1_500_000,
	}
}

// directStats executes sp in-process and returns its marshaled counters —
// the reference every recovered result must match byte for byte.
func directStats(t *testing.T, sp *spec.RunSpec) []byte {
	t.Helper()
	out, err := spec.Exec(sp, spec.Attach{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(out.Stats)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestChaosKillRecovery is the headline crash-safety test: SIGKILL the
// daemon with accepted runs in flight, restart it over the same directory,
// and require every accepted digest to complete byte-identically — with a
// retrying client bridging the outage without observing a wrong answer.
func TestChaosKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness builds and kills subprocesses; skipped in -short")
	}
	bin := serveBinary(t)
	dir := t.TempDir()
	d := startDaemon(t, bin, dir)

	// Submit three slow runs; workers=2 keeps one queued.
	cl, err := client.New(client.Config{BaseURL: d.url,
		MaxAttempts: 40, BaseBackoff: 25 * time.Millisecond, Poll: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	specs := []*spec.RunSpec{chaosSpec(1), chaosSpec(2), chaosSpec(3)}
	digests := make([]string, len(specs))
	for i, sp := range specs {
		st, err := cl.Submit(context.Background(), sp)
		if err != nil {
			t.Fatal(err)
		}
		digests[i] = st.Digest
	}

	// A client conversation that must survive the kill/restart below.
	type answer struct {
		res *client.Result
		err error
	}
	bridgec := make(chan answer, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
		defer cancel()
		// A fresh copy of spec 0 (same digest) so the goroutine never shares
		// a mutable RunSpec with the main test goroutine.
		res, err := cl.Run(ctx, chaosSpec(1))
		bridgec <- answer{res, err}
	}()

	// Wait until at least one run is observably executing, then SIGKILL.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, rs := d.get(t, digests[0]); rs.Status == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no run ever started")
		}
		time.Sleep(20 * time.Millisecond)
	}
	d.kill(t)

	// Restart over the same directory AND the same address (the SIGKILL
	// freed the port), so the bridging client's retries reconnect: journal
	// replay must finish every accepted digest with no client involvement.
	d2 := startDaemon(t, bin, dir, "-addr", strings.TrimPrefix(d.url, "http://"))
	waitDeadline := time.Now().Add(180 * time.Second)
	replayGrace := time.Now().Add(15 * time.Second)
	for _, digest := range digests {
		for {
			code, rs := d2.get(t, digest)
			if rs.Status == "done" {
				var res Result
				if err := json.Unmarshal(rs.Result, &res); err != nil {
					t.Fatal(err)
				}
				got, _ := json.Marshal(res.Stats)
				idx := indexOf(digests, digest)
				if want := directStats(t, specs[idx]); !bytes.Equal(got, want) {
					t.Errorf("recovered run %s diverges from direct execution:\nserve: %s\ndirect: %s",
						digest, got, want)
				}
				break
			}
			if rs.Status == "failed" {
				t.Fatalf("recovered run %s failed: %s", digest, rs.Error)
			}
			// Replay re-enqueues in a background goroutine right after start;
			// a 404 is only a lost run once that window has clearly passed.
			if code == http.StatusNotFound && time.Now().After(replayGrace) {
				t.Fatalf("accepted run %s lost by the crash (journal failed)", digest)
			}
			if time.Now().After(waitDeadline) {
				t.Fatalf("recovered run %s never finished\n%s", digest, d2.stderr.String())
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	if got := d2.metric(t, "cobra_journal_replayed_total"); got < 1 {
		t.Errorf("journal_replayed_total = %v after SIGKILL recovery, want >= 1", got)
	}

	// The bridging client rode out the kill and restart on the same address:
	// it must settle successfully, with the exact bytes of a direct run.
	select {
	case a := <-bridgec:
		if a.err != nil {
			t.Fatalf("bridging client failed across the restart: %v", a.err)
		}
		got, _ := json.Marshal(a.res.Stats)
		if want := directStats(t, specs[0]); !bytes.Equal(got, want) {
			t.Errorf("bridging client observed wrong bytes:\nclient: %s\ndirect: %s", got, want)
		}
	case <-time.After(180 * time.Second):
		t.Fatal("bridging client never settled")
	}
	d2.drain(t)
}

func indexOf(ss []string, s string) int {
	for i, v := range ss {
		if v == s {
			return i
		}
	}
	return -1
}

// TestChaosCacheCorruption: flip bits in one stored entry and truncate
// another; the daemon quarantines both (counter + *.corrupt files), treats
// them as misses, and recomputes identical counters.
func TestChaosCacheCorruption(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness builds and kills subprocesses; skipped in -short")
	}
	bin := serveBinary(t)
	dir := t.TempDir()
	d := startDaemon(t, bin, dir)
	cl, err := client.New(client.Config{BaseURL: d.url, Poll: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	specs := []*spec.RunSpec{
		{Topology: "BIM2", Workload: "fib", Seed: 11, Insts: 20_000},
		{Topology: "BIM2", Workload: "fib", Seed: 12, Insts: 20_000},
	}
	firsts := make([]*client.Result, len(specs))
	for i, sp := range specs {
		firsts[i], err = cl.Run(context.Background(), sp)
		if err != nil {
			t.Fatal(err)
		}
	}
	d.drain(t)

	// Corrupt both entries on disk: one bit-flip, one truncation.
	for i, res := range firsts {
		entry := filepath.Join(dir, strings.TrimPrefix(res.Digest, "sha256:")+".r5.json")
		data, err := os.ReadFile(entry)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			data[len(data)/2] ^= 0x01
		} else {
			data = data[:len(data)/2]
		}
		if err := os.WriteFile(entry, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	d2 := startDaemon(t, bin, dir)
	cl2, err := client.New(client.Config{BaseURL: d2.url, Poll: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i, sp := range specs {
		res, err := cl2.Run(context.Background(), sp)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := json.Marshal(firsts[i].Stats)
		got, _ := json.Marshal(res.Stats)
		if !bytes.Equal(got, want) {
			t.Errorf("recomputed run %d diverges:\nwas: %s\nnow: %s", i, want, got)
		}
		entry := filepath.Join(dir, strings.TrimPrefix(res.Digest, "sha256:")+".r5.json")
		if _, err := os.Stat(entry + ".corrupt"); err != nil {
			t.Errorf("run %d: no quarantine file: %v", i, err)
		}
	}
	if got := d2.metric(t, "cobra_cache_corrupt_total"); got != 2 {
		t.Errorf("cache_corrupt_total = %v, want 2", got)
	}
	d2.drain(t)
}

// TestChaosDrainThenRestart: a SIGTERM drain completes queued work, closes
// the journal clean, and the next start replays exactly zero runs.
func TestChaosDrainThenRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness builds and kills subprocesses; skipped in -short")
	}
	bin := serveBinary(t)
	dir := t.TempDir()
	d := startDaemon(t, bin, dir)
	cl, err := client.New(client.Config{BaseURL: d.url, Poll: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sp := &spec.RunSpec{Topology: "BIM2", Workload: "fib", Seed: 21, Insts: 20_000}
	if _, err := cl.Run(context.Background(), sp); err != nil {
		t.Fatal(err)
	}
	d.drain(t)

	d2 := startDaemon(t, bin, dir)
	if got := d2.metric(t, "cobra_journal_replayed_total"); got != 0 {
		t.Errorf("journal_replayed_total = %v after clean drain, want 0", got)
	}
	// The drained run is still served from the disk cache, bytes intact.
	cl2, err := client.New(client.Config{BaseURL: d2.url, Poll: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl2.Run(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(res.Stats)
	if want := directStats(t, sp); !bytes.Equal(got, want) {
		t.Errorf("post-drain cache hit diverges:\nserve: %s\ndirect: %s", got, want)
	}
	d2.drain(t)
}

// TestChaosSIGQUITFlightDump: SIGQUIT is the on-demand post-mortem lever —
// the daemon dumps the flight ring to stderr and to <cache-dir>/flight.json
// (plus all goroutine stacks) and exits 2.  The dump's tail must contain the
// records /debug/flight was serving moments before the signal.
func TestChaosSIGQUITFlightDump(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness builds and kills subprocesses; skipped in -short")
	}
	bin := serveBinary(t)
	dir := t.TempDir()
	d := startDaemon(t, bin, dir)

	// Run one job so the ring holds real serving records (log lines + spans).
	cl, err := client.New(client.Config{BaseURL: d.url, Poll: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sp := &spec.RunSpec{Topology: "BIM2", Workload: "fib", Seed: 22, Insts: 20_000}
	if _, err := cl.Run(context.Background(), sp); err != nil {
		t.Fatal(err)
	}

	// What the live endpoint serves now is what the dump must preserve.
	resp, err := http.Get(d.url + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	var live struct {
		Total   uint64 `json:"total"`
		Records []struct {
			Seq uint64 `json:"seq"`
			Msg string `json:"msg"`
		} `json:"records"`
	}
	err = json.NewDecoder(resp.Body).Decode(&live)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if live.Total == 0 || len(live.Records) == 0 {
		t.Fatalf("/debug/flight empty before SIGQUIT: %+v", live)
	}

	if err := d.cmd.Process.Signal(syscall.SIGQUIT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-d.exited:
	case <-time.After(60 * time.Second):
		t.Fatal("daemon never exited after SIGQUIT")
	}
	if code := d.cmd.ProcessState.ExitCode(); code != 2 {
		t.Errorf("SIGQUIT exit code = %d, want 2\n%s", code, d.stderr.String())
	}
	stderr := d.stderr.String()
	if !strings.Contains(stderr, "[flight] SIGQUIT") {
		t.Errorf("stderr missing the flight dump header:\n%s", stderr)
	}
	if !strings.Contains(stderr, "goroutine ") {
		t.Errorf("stderr missing the goroutine stacks:\n%s", stderr)
	}

	raw, err := os.ReadFile(filepath.Join(dir, "flight.json"))
	if err != nil {
		t.Fatalf("JSON dump not written: %v\n%s", err, stderr)
	}
	var dump struct {
		Records []struct {
			Seq uint64 `json:"seq"`
			Msg string `json:"msg"`
		} `json:"records"`
	}
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("flight.json does not parse: %v", err)
	}
	bySeq := map[uint64]string{}
	for _, r := range dump.Records {
		bySeq[r.Seq] = r.Msg
	}
	// Every record the endpoint served must appear in the dump unchanged
	// (the ring only appends; SIGQUIT handling itself logs nothing).
	for _, r := range live.Records {
		if msg, ok := bySeq[r.Seq]; !ok || msg != r.Msg {
			t.Errorf("dump lost or rewrote record seq=%d (%q vs %q)", r.Seq, r.Msg, msg)
		}
	}
}
