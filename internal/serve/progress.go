package serve

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"strings"
	"time"

	"cobra/internal/interval"
	"cobra/internal/obs"
)

// This file is the live-introspection surface of the daemon: the per-run
// progress stream (SSE with a plain-JSON long-poll fallback) and the human
// /statusz page.  Both read the same lock-free RunProgress sinks the cores
// publish into on their 8192-cycle flush, so watching a run costs the
// simulation nothing measurable.

// progressEvent is one frame of the progress stream: the run's identity and
// coarse status around the sink snapshot, plus — when the run records
// interval telemetry — the most recently closed window, so a live watcher
// sees time-resolved IPC/MPKI while the simulation is still in flight.
type progressEvent struct {
	Digest string `json:"digest"`
	Status string `json:"status"` // queued, running, done, failed
	obs.ProgressSnapshot
	Window *interval.Window `json:"window,omitempty"`
}

// attachWindow adds the job's latest closed interval window to a frame.
func attachWindow(ev *progressEvent, j *job) {
	if j.ivl == nil {
		return
	}
	if w, ok := j.ivl.Latest(); ok {
		ev.Window = &w
	}
}

// queuePos approximates a queued job's position: its admission sequence
// number minus how many jobs workers have picked up.  Approximate by design —
// coalesced resubmissions and multi-worker pickup reorder the tail — but
// monotone enough to watch a queue drain.
func (s *Server) queuePos(j *job) int {
	if j.started.Load() {
		return 0
	}
	pos := int64(j.admitSeq) - int64(s.startedCt.Load())
	if pos < 1 {
		pos = 1
	}
	return int(pos)
}

// snapshotRun assembles the current progress frame for a digest, reporting
// whether the digest is known at all.
func (s *Server) snapshotRun(id string) (progressEvent, bool) {
	s.mu.Lock()
	j, inflight := s.jobs[id]
	_, failed := s.failures[id]
	s.mu.Unlock()
	if inflight {
		ev := progressEvent{Digest: id, Status: statusOf(j), ProgressSnapshot: j.prog.Snap()}
		ev.QueuePos = s.queuePos(j)
		attachWindow(&ev, j)
		return ev, true
	}
	if _, ok := s.results.get(id); ok {
		return progressEvent{Digest: id, Status: "done",
			ProgressSnapshot: obs.ProgressSnapshot{Phase: obs.PhaseDone.String(), Done: true}}, true
	}
	if failed {
		return progressEvent{Digest: id, Status: "failed",
			ProgressSnapshot: obs.ProgressSnapshot{Phase: obs.PhaseFailed.String(), Done: true}}, true
	}
	return progressEvent{}, false
}

// handleProgress serves GET /v1/runs/{id}/progress.  Clients that accept
// text/event-stream get Server-Sent Events roughly every 200ms (and
// immediately on terminal state), ending after the final frame.  Frames are
// named: `event: queued` keepalives while the job waits behind the queue
// (so long-poll clients behind a deep queue never time out idle), `event:
// progress` while it runs, and a terminal `event: done` (which also carries
// failed status).  Clients that only parse `data:` lines see the exact
// pre-naming stream.  Everyone else gets one JSON snapshot — the long-poll
// fallback; poll it at whatever cadence suits.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !validDigest(id) {
		writeError(w, http.StatusBadRequest, "malformed digest %q", id)
		return
	}
	ev, known := s.snapshotRun(id)
	if !known {
		writeError(w, http.StatusNotFound, "unknown run %s", id)
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush || !strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		writeJSON(w, http.StatusOK, ev)
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	w.WriteHeader(http.StatusOK)

	// eventName maps a frame to its SSE event type: terminal frames are
	// "done", frames for a job still waiting in the queue are "queued"
	// keepalives, everything else is "progress".
	eventName := func(ev *progressEvent) string {
		if ev.Done {
			return "done"
		}
		if ev.Status == "queued" {
			return "queued"
		}
		return "progress"
	}
	emit := func(ev progressEvent) {
		data, err := json.Marshal(ev)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", eventName(&ev), data)
		flusher.Flush()
	}
	emit(ev)
	if ev.Done {
		return
	}

	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil { // finished between the snapshot and here
		if ev, known := s.snapshotRun(id); known {
			emit(ev)
		}
		return
	}
	tick := time.NewTicker(200 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-j.done:
			if ev, known := s.snapshotRun(id); known {
				emit(ev)
			}
			return
		case <-tick.C:
			ev := progressEvent{Digest: id, Status: statusOf(j), ProgressSnapshot: j.prog.Snap()}
			ev.QueuePos = s.queuePos(j)
			attachWindow(&ev, j)
			emit(ev)
		}
	}
}

// statuszDoc is the machine form of /statusz (?json=1), so scripts and CI can
// assert on the same numbers the human page shows.
type statuszDoc struct {
	Status        string          `json:"status"`
	UptimeSeconds float64         `json:"uptime_seconds"`
	Build         obs.Build       `json:"build"`
	Workers       int             `json:"workers"`
	QueueDepth    int             `json:"queue_depth"`
	QueueCap      int             `json:"queue_cap"`
	Draining      bool            `json:"draining"`
	Runs          []progressEvent `json:"runs"`
	CacheEntries  int             `json:"cache_entries"`
	CacheHits     uint64          `json:"cache_hits"`
	CacheMisses   uint64          `json:"cache_misses"`
	CacheHitRate  float64         `json:"cache_hit_rate"`
	Failures      int             `json:"failures"`
	JournalPath   string          `json:"journal_path,omitempty"`
	JournalReplay uint64          `json:"journal_replayed"`
	JournalSkips  uint64          `json:"journal_records_skipped"`
	FlightTotal   uint64          `json:"flight_total"`
	FlightCap     int             `json:"flight_cap"`
}

func (s *Server) statusz() statuszDoc {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	failures := len(s.failures)
	draining := s.draining
	s.mu.Unlock()

	doc := statuszDoc{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Build:         s.build,
		Workers:       s.cfg.Workers,
		QueueDepth:    len(s.queue),
		QueueCap:      s.cfg.QueueLen,
		Draining:      draining,
		Runs:          make([]progressEvent, 0, len(jobs)),
		CacheEntries:  s.results.len(),
		CacheHits:     s.met.RequestCount(true),
		CacheMisses:   s.met.RequestCount(false),
		Failures:      failures,
		JournalPath:   s.cfg.JournalPath,
	}
	if draining {
		doc.Status = "draining"
	}
	if total := doc.CacheHits + doc.CacheMisses; total > 0 {
		doc.CacheHitRate = float64(doc.CacheHits) / float64(total)
	}
	snap := s.met.Snap()
	doc.JournalReplay = snap.JournalReplayed
	doc.JournalSkips = snap.JournalSkipped
	if f := obs.Flight(); f != nil {
		doc.FlightTotal = f.Total()
		doc.FlightCap = f.Cap()
	}
	for _, j := range jobs {
		ev := progressEvent{Digest: j.digest, Status: statusOf(j), ProgressSnapshot: j.prog.Snap()}
		ev.QueuePos = s.queuePos(j)
		doc.Runs = append(doc.Runs, ev)
	}
	// Deterministic ordering for the page and for tests: running first (by
	// ascending queue position), then queued.
	for i := 1; i < len(doc.Runs); i++ {
		for k := i; k > 0 && doc.Runs[k].QueuePos < doc.Runs[k-1].QueuePos; k-- {
			doc.Runs[k], doc.Runs[k-1] = doc.Runs[k-1], doc.Runs[k]
		}
	}
	return doc
}

// handleStatusz serves the human status page: an HTML summary of in-flight
// runs, queue depth, cache hit rate, and journal state.  ?json=1 returns the
// same document as JSON.
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	doc := s.statusz()
	if r.URL.Query().Get("json") == "1" {
		writeJSON(w, http.StatusOK, doc)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var b strings.Builder
	b.WriteString("<!DOCTYPE html><html><head><title>cobra-serve statusz</title>" +
		"<style>body{font-family:monospace;margin:2em}table{border-collapse:collapse}" +
		"td,th{border:1px solid #999;padding:4px 8px;text-align:left}" +
		"h1{font-size:1.3em}</style></head><body>")
	fmt.Fprintf(&b, "<h1>cobra-serve — %s</h1>", html.EscapeString(doc.Status))
	fmt.Fprintf(&b, "<p>uptime %.0fs · go %s · rev %s</p>",
		doc.UptimeSeconds, html.EscapeString(doc.Build.GoVersion), html.EscapeString(doc.Build.Revision))
	fmt.Fprintf(&b, "<p>workers %d · queue %d/%d · cache %d entries "+
		"(%d hits / %d misses, %.0f%% hit rate) · %d failures</p>",
		doc.Workers, doc.QueueDepth, doc.QueueCap, doc.CacheEntries,
		doc.CacheHits, doc.CacheMisses, doc.CacheHitRate*100, doc.Failures)
	if doc.JournalPath != "" {
		fmt.Fprintf(&b, "<p>journal %s · %d replayed · %d records skipped</p>",
			html.EscapeString(doc.JournalPath), doc.JournalReplay, doc.JournalSkips)
	}
	fmt.Fprintf(&b, "<p>flight recorder: %d records total (ring cap %d) — <a href=\"/debug/flight\">/debug/flight</a></p>",
		doc.FlightTotal, doc.FlightCap)
	fmt.Fprintf(&b, "<h1>in-flight runs (%d)</h1>", len(doc.Runs))
	if len(doc.Runs) > 0 {
		b.WriteString("<table><tr><th>digest</th><th>status</th><th>phase</th>" +
			"<th>cycles</th><th>insts</th><th>insts/s</th><th>elapsed</th><th>queue pos</th></tr>")
		for _, ev := range doc.Runs {
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%d</td>"+
				"<td>%.0f</td><td>%dms</td><td>%d</td></tr>",
				html.EscapeString(ev.Digest), html.EscapeString(ev.Status),
				html.EscapeString(ev.Phase), ev.Cycles, ev.Insts,
				ev.InstsPerSec, ev.ElapsedMS, ev.QueuePos)
		}
		b.WriteString("</table>")
	}
	b.WriteString("</body></html>")
	fmt.Fprint(w, b.String()) //nolint:errcheck
}
