package serve

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"regexp"
	"sync"
)

// digestRE is the only key shape the cache accepts.  Keys come back in from
// URLs, so anything else must be rejected before it reaches a file path.
var digestRE = regexp.MustCompile(`^sha256:[0-9a-f]{64}$`)

// validDigest reports whether id is a well-formed spec digest.
func validDigest(id string) bool { return digestRE.MatchString(id) }

// cache is the content-addressed result store: an in-memory LRU over the
// marshaled result bytes, optionally backed by an on-disk directory that
// survives restarts.  Values are stored and returned as the exact bytes of
// the first computation, so a cache hit is byte-identical to the original
// response.  Safe for concurrent use.
//
// Disk entries are corruption-proof: every file carries a sha256 footer over
// its payload, writes go through a fsynced temp file + atomic rename, and an
// entry that fails verification on read is quarantined (renamed *.corrupt,
// reported via onCorrupt) and treated as a miss — a flipped bit on disk is
// recomputed, never replayed as truth.
type cache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	dir   string // "" = memory only
	// suffix versions the on-disk filenames (e.g. ".r3.json"): bumping the
	// result schema orphans old files into deliberate misses rather than
	// handing callers bytes in a shape they no longer expect.
	suffix string
	// onCorrupt, when non-nil, observes every quarantined entry (metrics +
	// structured logging live in the server, not here).
	onCorrupt func(path string, reason string)
}

// Disk-entry footer: "\n" + footerMagic + 64 hex digits + "\n", appended
// after the payload.  The newline prefix keeps the payload visually separable
// when a human cats the file; verification never relies on it being JSON.
const footerMagic = "#cobra-entry-v1 sha256="

// footerLen is the exact on-disk footer size.
const footerLen = 1 + len(footerMagic) + sha256.Size*2 + 1

// sealEntry appends the integrity footer to a payload.
func sealEntry(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	out := make([]byte, 0, len(payload)+footerLen)
	out = append(out, payload...)
	out = append(out, '\n')
	out = append(out, footerMagic...)
	out = append(out, hex.EncodeToString(sum[:])...)
	out = append(out, '\n')
	return out
}

// openEntry verifies a sealed entry and returns its payload, or the reason
// it is untrustworthy.
func openEntry(data []byte) ([]byte, string) {
	if len(data) < footerLen {
		return nil, "entry shorter than integrity footer"
	}
	payload, footer := data[:len(data)-footerLen], data[len(data)-footerLen:]
	if footer[0] != '\n' || footer[len(footer)-1] != '\n' ||
		!bytes.HasPrefix(footer[1:], []byte(footerMagic)) {
		return nil, "missing integrity footer"
	}
	want := string(footer[1+len(footerMagic) : len(footer)-1])
	sum := sha256.Sum256(payload)
	if got := hex.EncodeToString(sum[:]); got != want {
		return nil, "payload sha256 " + got + " != footer " + want
	}
	return payload, ""
}

type centry struct {
	key string
	val []byte
}

func newCache(max int, dir, suffix string) *cache {
	if suffix == "" {
		suffix = ".json"
	}
	return &cache{max: max, ll: list.New(), items: make(map[string]*list.Element), dir: dir, suffix: suffix}
}

// get returns the stored bytes for key, consulting memory first and then the
// disk store (promoting a verified disk hit back into memory).  A disk entry
// that fails footer verification is quarantined and reported as a miss.
func (c *cache) get(key string) ([]byte, bool) {
	if !validDigest(key) {
		return nil, false
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		val := el.Value.(*centry).val
		c.mu.Unlock()
		return val, true
	}
	c.mu.Unlock()
	if c.dir == "" {
		return nil, false
	}
	path := c.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	val, reason := openEntry(data)
	if reason != "" {
		c.quarantine(path, reason)
		return nil, false
	}
	c.putMem(key, val)
	return val, true
}

// quarantine moves a failed entry aside as <path>.corrupt so it is never
// served again but stays on disk for a post-mortem, then reports it.
func (c *cache) quarantine(path, reason string) {
	if err := os.Rename(path, path+".corrupt"); err != nil {
		// Rename failing (another reader already quarantined it, or the file
		// vanished) still must not let the entry be served: remove our view.
		os.Remove(path) //nolint:errcheck
	}
	if c.onCorrupt != nil {
		c.onCorrupt(path, reason)
	}
}

// put stores the bytes in memory and, when configured, on disk.  Disk write
// failures are ignored: the store is an optimization, not a ledger.
func (c *cache) put(key string, val []byte) {
	if !validDigest(key) {
		return
	}
	c.putMem(key, val)
	if c.dir == "" {
		return
	}
	// Atomic publish (temp file, fsync, rename) so a concurrent reader or a
	// mid-write crash never sees a torn file under the entry's real name.
	tmp, err := os.CreateTemp(c.dir, ".result-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(sealEntry(val)); err == nil && tmp.Sync() == nil && tmp.Close() == nil {
		os.Rename(tmp.Name(), c.path(key)) //nolint:errcheck
		return
	}
	tmp.Close()           //nolint:errcheck
	os.Remove(tmp.Name()) //nolint:errcheck
}

func (c *cache) putMem(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*centry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&centry{key, val})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*centry).key)
	}
}

// len reports the number of in-memory entries.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *cache) path(key string) string {
	return filepath.Join(c.dir, key[len("sha256:"):]+c.suffix)
}
