package serve

import (
	"container/list"
	"os"
	"path/filepath"
	"regexp"
	"sync"
)

// digestRE is the only key shape the cache accepts.  Keys come back in from
// URLs, so anything else must be rejected before it reaches a file path.
var digestRE = regexp.MustCompile(`^sha256:[0-9a-f]{64}$`)

// validDigest reports whether id is a well-formed spec digest.
func validDigest(id string) bool { return digestRE.MatchString(id) }

// cache is the content-addressed result store: an in-memory LRU over the
// marshaled result bytes, optionally backed by an on-disk directory that
// survives restarts.  Values are stored and returned as the exact bytes of
// the first computation, so a cache hit is byte-identical to the original
// response.  Safe for concurrent use.
type cache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	dir   string // "" = memory only
	// suffix versions the on-disk filenames (e.g. ".r2.json"): bumping the
	// result schema orphans old files into deliberate misses rather than
	// handing callers bytes in a shape they no longer expect.
	suffix string
}

type centry struct {
	key string
	val []byte
}

func newCache(max int, dir, suffix string) *cache {
	if suffix == "" {
		suffix = ".json"
	}
	return &cache{max: max, ll: list.New(), items: make(map[string]*list.Element), dir: dir, suffix: suffix}
}

// get returns the stored bytes for key, consulting memory first and then the
// disk store (promoting a disk hit back into memory).
func (c *cache) get(key string) ([]byte, bool) {
	if !validDigest(key) {
		return nil, false
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		val := el.Value.(*centry).val
		c.mu.Unlock()
		return val, true
	}
	c.mu.Unlock()
	if c.dir == "" {
		return nil, false
	}
	val, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	c.putMem(key, val)
	return val, true
}

// put stores the bytes in memory and, when configured, on disk.  Disk write
// failures are ignored: the store is an optimization, not a ledger.
func (c *cache) put(key string, val []byte) {
	if !validDigest(key) {
		return
	}
	c.putMem(key, val)
	if c.dir == "" {
		return
	}
	// Atomic publish so a concurrent reader never sees a torn file.
	tmp, err := os.CreateTemp(c.dir, ".result-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(val); err == nil && tmp.Close() == nil {
		os.Rename(tmp.Name(), c.path(key)) //nolint:errcheck
		return
	}
	tmp.Close()           //nolint:errcheck
	os.Remove(tmp.Name()) //nolint:errcheck
}

func (c *cache) putMem(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*centry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&centry{key, val})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*centry).key)
	}
}

// len reports the number of in-memory entries.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *cache) path(key string) string {
	return filepath.Join(c.dir, key[len("sha256:"):]+c.suffix)
}
