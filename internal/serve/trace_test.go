package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cobra/internal/spec"
)

// postSpecTraced is postSpec with a traceparent header attached.
func postSpecTraced(t *testing.T, ts *httptest.Server, s *spec.RunSpec, traceparent string) (int, runStatus) {
	t.Helper()
	body, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/runs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", traceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rs runStatus
	if err := json.NewDecoder(resp.Body).Decode(&rs); err != nil {
		t.Fatalf("decoding response (HTTP %d): %v", resp.StatusCode, err)
	}
	return resp.StatusCode, rs
}

// chromeDoc mirrors the trace_event JSON /v1/runs/{id}/trace serves.
type chromeDoc struct {
	TraceEvents []struct {
		Ph   string            `json:"ph"`
		Tid  int               `json:"tid"`
		Name string            `json:"name"`
		Dur  int64             `json:"dur"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
}

func getTrace(t *testing.T, ts *httptest.Server, digest string) (int, chromeDoc) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/runs/" + digest + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("trace is not valid JSON: %v\n%s", err, raw)
		}
	}
	return resp.StatusCode, doc
}

// TestTraceEndToEnd is the acceptance path: a POST carrying a synthetic
// traceparent yields a Chrome trace whose hops all share the supplied trace
// ID, the cached Result carries a phase-timing breakdown, and a repeat POST
// (cache hit) records a near-zero exec span plus a hit-histogram increment.
func TestTraceEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	const tid = "4bf92f3577b34da6a3ce929d0e0e4736"
	const tp = "00-" + tid + "-00f067aa0ba902b7-01"

	code, rs := postSpecTraced(t, ts, smallSpec(7), tp)
	if code != http.StatusAccepted {
		t.Fatalf("POST: HTTP %d %+v", code, rs)
	}
	if rs.TraceID != tid {
		t.Fatalf("response trace_id %q, want the supplied %q", rs.TraceID, tid)
	}
	done := waitDone(t, ts, rs.Digest)
	if done.Status != "done" {
		t.Fatalf("run failed: %+v", done)
	}

	var res Result
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.ResultVersion != resultVersion {
		t.Errorf("result_version = %d, want %d", res.ResultVersion, resultVersion)
	}
	if res.TraceID != tid {
		t.Errorf("result trace_id %q, want %q", res.TraceID, tid)
	}
	if res.Timings == nil {
		t.Fatal("result has no timings breakdown")
	}
	if res.Timings.ExecMS <= 0 || res.Timings.SimulateMS <= 0 || res.Timings.TotalMS <= 0 {
		t.Errorf("timings not populated: %+v", res.Timings)
	}
	if res.Timings.SimulateMS > res.Timings.TotalMS {
		t.Errorf("simulate %.3fms exceeds exec total %.3fms", res.Timings.SimulateMS, res.Timings.TotalMS)
	}

	code, doc := getTrace(t, ts, rs.Digest)
	if code != http.StatusOK {
		t.Fatalf("GET trace: HTTP %d", code)
	}
	tracks := map[string]bool{}
	spanNames := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			tracks[ev.Args["name"]] = true
		case "X":
			spanNames[ev.Name] = true
			if got := ev.Args["trace_id"]; got != tid {
				t.Errorf("span %q trace_id %q, want %q", ev.Name, got, tid)
			}
		}
	}
	// The acceptance bar: at least six distinct hops on one trace.
	for _, hop := range []string{"admission", "cache", "queue", "worker", "exec", "http"} {
		if !tracks[hop] {
			t.Errorf("trace missing hop track %q (have %v)", hop, tracks)
		}
	}
	for _, name := range []string{"queue.wait", "simulate", "canonicalize", "compose", "cache.write", "render"} {
		if !spanNames[name] {
			t.Errorf("trace missing span %q (have %v)", name, spanNames)
		}
	}

	// Repeat POST: a cache hit under a new trace ID.
	const tid2 = "00000000000000000000000000000abc"
	code, rs2 := postSpecTraced(t, ts, smallSpec(7), "00-"+tid2+"-00f067aa0ba902b7-01")
	if code != http.StatusOK || !rs2.Cached {
		t.Fatalf("repeat POST not a cache hit: HTTP %d %+v", code, rs2)
	}
	if rs2.TraceID != tid2 {
		t.Errorf("hit trace_id %q, want %q", rs2.TraceID, tid2)
	}
	if got := s.Metrics().RequestCount(true); got != 1 {
		t.Errorf("hit histogram count = %d, want 1", got)
	}
	if got := s.Metrics().RequestCount(false); got != 1 {
		t.Errorf("miss histogram count = %d, want 1", got)
	}
	_, doc = getTrace(t, ts, rs.Digest)
	foundCachedExec := false
	var missExecUS, hitExecUS int64
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Name != "exec" && ev.Name != "run" {
			continue
		}
		if ev.Args["cached"] == "true" {
			foundCachedExec = true
			hitExecUS = ev.Dur
		} else if ev.Name == "run" {
			missExecUS = ev.Dur
		}
	}
	if !foundCachedExec {
		t.Fatal("cache hit did not record an exec span with cached=true")
	}
	if hitExecUS >= missExecUS {
		t.Errorf("cached exec span (%dµs) not shorter than the real one (%dµs)", hitExecUS, missExecUS)
	}

	// The histogram reaches /metrics in exposition form.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`cobra_request_seconds_count{result="hit"} 1`,
		`cobra_request_seconds_count{result="miss"} 1`,
		"cobra_serve_queue_wait_seconds_count 1",
		"# TYPE cobra_job_exec_seconds histogram",
		"cobra_serve_span_drops_total",
		"cobra_serve_failures",
		"go_build_info{",
		"cobra_build_info{",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestTraceBogusTraceparent: a malformed header falls back to a fresh trace
// instead of an error or a zero ID.
func TestTraceBogusTraceparent(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, rs := postSpecTraced(t, ts, smallSpec(8), "00-zznotahexid-xx-01")
	if code != http.StatusAccepted {
		t.Fatalf("POST: HTTP %d", code)
	}
	if len(rs.TraceID) != 32 || rs.TraceID == strings.Repeat("0", 32) {
		t.Errorf("fallback trace_id %q is not a fresh 32-hex id", rs.TraceID)
	}
	waitDone(t, ts, rs.Digest)
}

// TestTraceNotFound: an unknown (but well-formed) digest has no trace.
func TestTraceNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, _ := getTrace(t, ts, "sha256:"+strings.Repeat("ab", 32))
	if code != http.StatusNotFound {
		t.Errorf("GET trace for unknown digest: HTTP %d, want 404", code)
	}
}

// TestReadiness: /healthz stays 200 through a drain (liveness), while
// /healthz/ready flips to 503 so balancers stop routing new submissions.
func TestReadiness(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (int, map[string]any) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, doc
	}
	code, doc := get("/healthz/ready")
	if code != http.StatusOK || doc["status"] != "ok" {
		t.Fatalf("ready before drain: HTTP %d %v", code, doc)
	}
	if _, ok := doc["build"]; !ok {
		t.Error("health document has no build info")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if code, doc = get("/healthz/ready"); code != http.StatusServiceUnavailable || doc["status"] != "draining" {
		t.Errorf("ready while draining: HTTP %d %v, want 503 draining", code, doc)
	}
	if code, _ = get("/healthz"); code != http.StatusOK {
		t.Errorf("liveness while draining: HTTP %d, want 200", code)
	}
}
