package serve

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"cobra/internal/spec"
)

// The run journal is the server's write-ahead log: every admitted digest is
// appended (with its canonical spec) before the 202 goes out, and every
// terminal outcome is appended after the cache holds the result.  On startup
// the journal is replayed and digests that were accepted but never completed
// are re-enqueued — determinism plus content addressing mean recovery is just
// re-execution, byte-identical to the run the crash destroyed.
//
// Record format, one record per line:
//
//	cbraj1 <crc32c-8hex> <json>\n
//
// The CRC (Castagnoli) covers exactly the JSON bytes.  Appends are a single
// write(2) on an O_APPEND descriptor followed by fsync, so a crash leaves at
// worst one torn final line — which replay detects by checksum and skips with
// a structured warning.  Unknown record types from a future version are
// skipped the same way: the journal is forward-tolerant, never a crash loop.
//
// On open the journal is compacted: completed digests' records are dropped
// and only still-pending accepted records are rewritten (atomically, via
// temp file + rename), so the log stays proportional to in-flight work.

// journalMagic versions the line format; bump it if the framing changes.
const journalMagic = "cbraj1"

// Journal record types.  Replay treats anything else as from-the-future and
// skips it.
const (
	recAccepted = "accepted"
	recStarted  = "started"
	recDone     = "done"
	recFailed   = "failed"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// jrec is one journal record.
type jrec struct {
	Type   string `json:"type"`
	Digest string `json:"digest"`
	// Spec is the canonical spec JSON — present on accepted records so
	// replay can re-enqueue without any other source of truth.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Attempt counts prior executions of this digest (started records).
	Attempt int `json:"attempt,omitempty"`
	// Retries is how many automatic retries a terminally failed run burned.
	Retries int    `json:"retries,omitempty"`
	Error   string `json:"error,omitempty"`
}

// journal is the append handle.  A nil *journal is a valid no-op (servers
// without a cache dir run unjournaled, exactly as before).
type journal struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	closed bool
	log    *slog.Logger
}

// encodeRecord renders one framed, checksummed journal line.
func encodeRecord(r jrec) ([]byte, error) {
	body, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, len(journalMagic)+1+8+1+len(body)+1)
	line = append(line, journalMagic...)
	line = append(line, ' ')
	line = append(line, fmt.Sprintf("%08x", crc32.Checksum(body, crcTable))...)
	line = append(line, ' ')
	line = append(line, body...)
	line = append(line, '\n')
	return line, nil
}

// decodeRecord parses one journal line, reporting why it is unusable.
func decodeRecord(line string) (jrec, error) {
	var r jrec
	rest, ok := strings.CutPrefix(line, journalMagic+" ")
	if !ok {
		return r, fmt.Errorf("bad magic")
	}
	if len(rest) < 10 || rest[8] != ' ' {
		return r, fmt.Errorf("truncated frame")
	}
	var want uint32
	if _, err := fmt.Sscanf(rest[:8], "%08x", &want); err != nil {
		return r, fmt.Errorf("bad checksum field: %v", err)
	}
	body := rest[9:]
	if got := crc32.Checksum([]byte(body), crcTable); got != want {
		return r, fmt.Errorf("checksum mismatch (want %08x, got %08x)", want, got)
	}
	if err := json.Unmarshal([]byte(body), &r); err != nil {
		return r, fmt.Errorf("bad record JSON: %v", err)
	}
	return r, nil
}

// pendingRun is one accepted-but-incomplete digest recovered from the
// journal, ready to re-enqueue.
type pendingRun struct {
	digest string
	spec   *spec.RunSpec
}

// readJournal scans the journal at path and returns the accepted-but-not-
// completed runs in acceptance order, plus how many records were skipped as
// unreadable.  Torn final records, checksum mismatches, duplicate done
// records, and unknown record types are all tolerated: skipped with one
// structured warning each, never fatal.
func readJournal(path string, log *slog.Logger) (pending []pendingRun, skipped int, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	type state struct {
		spec json.RawMessage
		done bool
	}
	states := make(map[string]*state)
	var order []string
	warn := func(lineno int, reason string) {
		skipped++
		log.Warn("journal: skipping record",
			"path", path, "line", lineno, "reason", reason)
	}
	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		if line == "" {
			continue // blank line or the terminator after the final record
		}
		rec, derr := decodeRecord(line)
		if derr != nil {
			reason := derr.Error()
			if i == len(lines)-1 {
				reason = "torn final record: " + reason
			}
			warn(i+1, reason)
			continue
		}
		switch rec.Type {
		case recAccepted:
			if !validDigest(rec.Digest) || len(rec.Spec) == 0 {
				warn(i+1, "accepted record without digest/spec")
				continue
			}
			if st, ok := states[rec.Digest]; ok {
				// A digest accepted again after completing (e.g. its cache
				// entry was quarantined and a client resubmitted) is pending
				// again: the newest acceptance wins.
				st.spec, st.done = rec.Spec, false
			} else {
				order = append(order, rec.Digest)
				states[rec.Digest] = &state{spec: rec.Spec}
			}
		case recStarted:
			// Progress marker only: an accepted run that started but never
			// finished is still pending.
		case recDone, recFailed:
			if st, ok := states[rec.Digest]; ok {
				st.done = true // duplicates are harmless: done is done
			}
		default:
			warn(i+1, fmt.Sprintf("unknown record type %q (newer server version?)", rec.Type))
		}
	}
	for _, digest := range order {
		st := states[digest]
		if st.done {
			continue
		}
		sp, perr := spec.Parse(st.spec)
		if perr != nil {
			log.Warn("journal: dropping unparseable pending spec",
				"path", path, "run_digest", digest, "error", perr.Error())
			skipped++
			continue
		}
		if cerr := sp.Canonicalize(); cerr != nil {
			log.Warn("journal: dropping uncanonicalizable pending spec",
				"path", path, "run_digest", digest, "error", cerr.Error())
			skipped++
			continue
		}
		if got, derr := sp.Digest(); derr != nil || got != digest {
			log.Warn("journal: dropping pending spec whose digest moved",
				"path", path, "run_digest", digest, "recomputed", got)
			skipped++
			continue
		}
		pending = append(pending, pendingRun{digest: digest, spec: sp})
	}
	return pending, skipped, nil
}

// openJournal replays, compacts, and opens the journal at path for
// appending.  Compaction rewrites the log to hold only the still-pending
// accepted records (atomically: temp file, fsync, rename), so completed
// history never accumulates.
func openJournal(path string, log *slog.Logger) (*journal, []pendingRun, int, error) {
	pending, skipped, err := readJournal(path, log)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("journal: reading %s: %w", path, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".journal-*")
	if err != nil {
		return nil, nil, 0, fmt.Errorf("journal: %w", err)
	}
	for _, p := range pending {
		raw, merr := json.Marshal(p.spec)
		if merr != nil {
			tmp.Close()           //nolint:errcheck
			os.Remove(tmp.Name()) //nolint:errcheck
			return nil, nil, 0, fmt.Errorf("journal: %w", merr)
		}
		line, eerr := encodeRecord(jrec{Type: recAccepted, Digest: p.digest, Spec: raw})
		if eerr != nil {
			tmp.Close()           //nolint:errcheck
			os.Remove(tmp.Name()) //nolint:errcheck
			return nil, nil, 0, fmt.Errorf("journal: %w", eerr)
		}
		if _, werr := tmp.Write(line); werr != nil {
			tmp.Close()           //nolint:errcheck
			os.Remove(tmp.Name()) //nolint:errcheck
			return nil, nil, 0, fmt.Errorf("journal: %w", werr)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()           //nolint:errcheck
		os.Remove(tmp.Name()) //nolint:errcheck
		return nil, nil, 0, fmt.Errorf("journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name()) //nolint:errcheck
		return nil, nil, 0, fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name()) //nolint:errcheck
		return nil, nil, 0, fmt.Errorf("journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("journal: %w", err)
	}
	return &journal{f: f, path: path, log: log}, pending, skipped, nil
}

// append durably writes one record: a single O_APPEND write (atomic for
// line-sized records) followed by fsync, so the record survives a SIGKILL
// the instant append returns.  Errors are logged, not returned: a failing
// journal must degrade the durability guarantee, never availability.
func (j *journal) append(r jrec) {
	if j == nil {
		return
	}
	line, err := encodeRecord(r)
	if err != nil {
		j.log.Error("journal: encoding record", "error", err.Error())
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	if _, err := j.f.Write(line); err != nil {
		j.log.Error("journal: appending record",
			"path", j.path, "type", r.Type, "run_digest", r.Digest, "error", err.Error())
		return
	}
	if err := j.f.Sync(); err != nil {
		j.log.Error("journal: fsync", "path", j.path, "error", err.Error())
	}
}

// close fsyncs and closes the journal — the final step of a graceful drain,
// after the last worker has appended its terminal record, so an immediate
// restart replays exactly zero digests.
func (j *journal) close() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.closed = true
	if err := j.f.Sync(); err != nil {
		j.log.Error("journal: fsync on close", "path", j.path, "error", err.Error())
	}
	if err := j.f.Close(); err != nil {
		j.log.Error("journal: close", "path", j.path, "error", err.Error())
	}
}
