package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cobra/internal/spec"
)

// smallSpec is a fast-to-simulate run; vary seed to mint distinct digests.
func smallSpec(seed uint64) *spec.RunSpec {
	return &spec.RunSpec{Topology: "BIM2", Workload: "fib", Seed: seed, Insts: 20_000}
}

// slowSpec takes long enough that the test can observe it in flight.
func slowSpec(seed uint64) *spec.RunSpec {
	return &spec.RunSpec{
		Design: "tage-l", Topology: "LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1",
		Pipeline: spec.Pipeline{GHistBits: 64},
		Workload: "dhrystone", Seed: seed, Insts: 300_000,
	}
}

func postSpec(t *testing.T, ts *httptest.Server, s *spec.RunSpec) (int, runStatus) {
	t.Helper()
	body, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rs runStatus
	if err := json.NewDecoder(resp.Body).Decode(&rs); err != nil {
		t.Fatalf("decoding response (HTTP %d): %v", resp.StatusCode, err)
	}
	return resp.StatusCode, rs
}

// waitDone polls GET until the run leaves the queue, failing on deadline.
func waitDone(t *testing.T, ts *httptest.Server, digest string) runStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/runs/" + digest)
		if err != nil {
			t.Fatal(err)
		}
		var rs runStatus
		err = json.NewDecoder(resp.Body).Decode(&rs)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if rs.Status == "done" || rs.Status == "failed" {
			return rs
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("run %s still not done", digest)
	return runStatus{}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

// TestSubmitCacheHit: the second POST of an identical spec is served from
// cache with the exact bytes of the first computation.
func TestSubmitCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	code, rs := postSpec(t, ts, smallSpec(1))
	if code != http.StatusAccepted || rs.Status != "queued" {
		t.Fatalf("first POST: HTTP %d %+v", code, rs)
	}
	done := waitDone(t, ts, rs.Digest)
	if done.Status != "done" || done.Result == nil {
		t.Fatalf("run did not succeed: %+v", done)
	}
	code2, rs2 := postSpec(t, ts, smallSpec(1))
	if code2 != http.StatusOK || !rs2.Cached {
		t.Fatalf("second POST not a cache hit: HTTP %d %+v", code2, rs2)
	}
	if !bytes.Equal(done.Result, rs2.Result) {
		t.Error("cached result bytes differ from the original")
	}
	if got := s.Metrics().Snap().JobsTotal; got != 1 {
		t.Errorf("cache hit re-ran the job: %d jobs", got)
	}
	var res Result
	if err := json.Unmarshal(rs2.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil || res.Stats.Instructions < 20_000 {
		t.Errorf("result stats wrong: %+v", res.Stats)
	}
	if res.Digest != rs.Digest {
		t.Errorf("result digest %s != run digest %s", res.Digest, rs.Digest)
	}
}

// TestSingleflight: concurrent identical submissions coalesce onto one job.
func TestSingleflight(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	code, first := postSpec(t, ts, slowSpec(2))
	if code != http.StatusAccepted {
		t.Fatalf("first POST: HTTP %d", code)
	}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, rs := postSpec(t, ts, slowSpec(2))
			if rs.Digest != first.Digest {
				t.Errorf("digest mismatch: %s vs %s", rs.Digest, first.Digest)
			}
			if code != http.StatusAccepted && code != http.StatusOK {
				t.Errorf("unexpected HTTP %d", code)
			}
		}()
	}
	wg.Wait()
	waitDone(t, ts, first.Digest)
	if got := s.Metrics().Snap().JobsTotal; got != 1 {
		t.Errorf("%d jobs ran for one spec", got)
	}
}

// TestConcurrentDistinctRuns: ≥32 concurrent POSTed jobs all complete, each
// bit-identical to executing the same canonical spec directly.
func TestConcurrentDistinctRuns(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueLen: 64})
	const n = 32
	digests := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, rs := postSpec(t, ts, smallSpec(uint64(100+i)))
			if code != http.StatusAccepted && code != http.StatusOK {
				t.Errorf("job %d: HTTP %d", i, code)
				return
			}
			digests[i] = rs.Digest
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if digests[i] == "" {
			continue
		}
		rs := waitDone(t, ts, digests[i])
		if rs.Status != "done" {
			t.Errorf("job %d: %+v", i, rs)
			continue
		}
		var res Result
		if err := json.Unmarshal(rs.Result, &res); err != nil {
			t.Fatal(err)
		}
		// Reference: the same spec executed directly, no service involved.
		out, err := spec.Exec(smallSpec(uint64(100+i)), spec.Attach{})
		if err != nil {
			t.Fatalf("direct exec %d: %v", i, err)
		}
		want, _ := json.Marshal(out.Stats)
		got, _ := json.Marshal(res.Stats)
		if !bytes.Equal(got, want) {
			t.Errorf("job %d stats diverge from direct execution:\nserve: %s\ndirect: %s", i, got, want)
		}
	}
}

// TestBackpressureAndDrain: a full queue answers 429 + Retry-After; shutdown
// drains queued work and rejects new submissions with 503.
func TestBackpressureAndDrain(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Workers: 1, QueueLen: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, a := postSpec(t, ts, slowSpec(10))
	if code != http.StatusAccepted {
		t.Fatalf("job A: HTTP %d", code)
	}
	// Wait until A is running so B occupies the queue slot deterministically.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/runs/" + a.Digest)
		if err != nil {
			t.Fatal(err)
		}
		var rs runStatus
		json.NewDecoder(resp.Body).Decode(&rs) //nolint:errcheck
		resp.Body.Close()
		if rs.Status != "queued" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job A never started")
		}
		time.Sleep(10 * time.Millisecond)
	}
	code, b := postSpec(t, ts, slowSpec(11))
	if code != http.StatusAccepted {
		t.Fatalf("job B: HTTP %d", code)
	}
	body, _ := json.Marshal(slowSpec(12))
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue answered HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Both accepted jobs survived the drain.
	for _, d := range []string{a.Digest, b.Digest} {
		rs := waitDone(t, ts, d)
		if rs.Status != "done" {
			t.Errorf("drained job %s: %+v", d, rs)
		}
	}
	// New submissions are refused while (and after) draining.
	code, _ = postSpec(t, ts, smallSpec(13))
	if code != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit: HTTP %d, want 503", code)
	}

	// Drain-then-restart: the clean drain closed the journal with every
	// accepted digest marked complete, so a server reopened over the same
	// directory recovers nothing and replays exactly zero runs.
	s2, err := New(Config{Workers: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.pending) != 0 {
		t.Errorf("restart after clean drain found %d pending runs, want 0", len(s2.pending))
	}
	s2.Start()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel2()
	if err := s2.Shutdown(ctx2); err != nil {
		t.Fatal(err)
	}
	if got := s2.Metrics().Snap().JournalReplayed; got != 0 {
		t.Errorf("journal_replayed = %d after clean drain, want 0", got)
	}
}

// TestDiskCachePersists: a second server over the same cache directory
// serves the first server's results without re-running.
func TestDiskCachePersists(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{Workers: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	ts1 := httptest.NewServer(s1.Handler())
	_, rs := postSpec(t, ts1, smallSpec(20))
	first := waitDone(t, ts1, rs.Digest)
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	code, rs2 := postSpec(t, ts2, smallSpec(20))
	if code != http.StatusOK || !rs2.Cached {
		t.Fatalf("restart lost the cache: HTTP %d %+v", code, rs2)
	}
	if !bytes.Equal(first.Result, rs2.Result) {
		t.Error("disk-cached result bytes differ from the original")
	}
	if got := s2.Metrics().Snap().JobsTotal; got != 0 {
		t.Errorf("disk hit re-ran the job: %d jobs", got)
	}
}

// TestEventsEndpoint: a run that asked for event capture can stream it back;
// runs that didn't get a 404.
func TestEventsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	withEvents := smallSpec(30)
	withEvents.Observe.Events = true
	_, rs := postSpec(t, ts, withEvents)
	waitDone(t, ts, rs.Digest)
	resp, err := http.Get(ts.URL + "/v1/runs/" + rs.Digest + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events endpoint: HTTP %d", resp.StatusCode)
	}
	var payload struct {
		EventsTotal uint64            `json:"events_total"`
		Events      []json.RawMessage `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Events) == 0 || payload.EventsTotal == 0 {
		t.Errorf("no events captured: total=%d len=%d", payload.EventsTotal, len(payload.Events))
	}

	_, rs2 := postSpec(t, ts, smallSpec(31))
	waitDone(t, ts, rs2.Digest)
	resp2, err := http.Get(ts.URL + "/v1/runs/" + rs2.Digest + "/events")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body) //nolint:errcheck
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("eventless run's events endpoint: HTTP %d, want 404", resp2.StatusCode)
	}
}

// TestBadRequests: malformed specs and digests are rejected cleanly.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for name, body := range map[string]string{
		"not json":         "{",
		"unknown field":    `{"topology":"BIM2","workload":"fib","bogus":1}`,
		"unknown workload": `{"topology":"BIM2","workload":"nope"}`,
		"bad topology":     `{"topology":"NOT > A ( TOPOLOGY","workload":"fib"}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, resp.StatusCode)
		}
	}
	for _, id := range []string{"sha256:zzz", "../../etc/passwd", "sha256:" + strings.Repeat("0", 63)} {
		resp, err := http.Get(ts.URL + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %q: HTTP %d, want 400/404", id, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/runs/sha256:" + strings.Repeat("0", 64))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown digest: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestFailedRunReported: a spec that fails at execution shows up as failed,
// is not cached, and a resubmission retries it.
func TestFailedRunReported(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, JobTimeout: time.Millisecond})
	code, rs := postSpec(t, ts, slowSpec(40))
	if code != http.StatusAccepted {
		t.Fatalf("POST: HTTP %d", code)
	}
	done := waitDone(t, ts, rs.Digest)
	if done.Status != "failed" || done.Error == "" {
		t.Fatalf("timed-out run reported as %+v", done)
	}
	if _, ok := s.results.get(rs.Digest); ok {
		t.Error("failed run was cached")
	}
	code, _ = postSpec(t, ts, slowSpec(40))
	if code != http.StatusAccepted {
		t.Errorf("resubmission of failed spec: HTTP %d, want 202", code)
	}
	waitDone(t, ts, rs.Digest)
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" || h["workers"] != float64(3) {
		t.Errorf("healthz: %+v", h)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	_, rs := postSpec(t, ts, smallSpec(50))
	waitDone(t, ts, rs.Digest)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{"cobra_jobs_total 1", "cobra_jobs_done 1", "cobra_sim_instructions_total"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, body)
		}
	}
}
