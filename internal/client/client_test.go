package client

// Tests for the retrying client: real end-to-end conversations against an
// in-process serve.Server, plus scripted fault handlers for each failure the
// client must ride out — 429 backpressure, 503 drains, connection refusal
// while the daemon restarts, and runs that vanish from an unjournaled server.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cobra/internal/serve"
	"cobra/internal/spec"
)

func smallSpec(seed uint64) *spec.RunSpec {
	return &spec.RunSpec{Topology: "BIM2", Workload: "fib", Seed: seed, Insts: 20_000}
}

func newClient(t *testing.T, url string, opts ...func(*Config)) *Client {
	t.Helper()
	cfg := Config{BaseURL: url, BaseBackoff: time.Millisecond,
		MaxBackoff: 20 * time.Millisecond, Poll: 5 * time.Millisecond}
	for _, o := range opts {
		o(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRunEndToEnd: a Run against a real server returns the stats a direct
// spec.Exec computes, and a repeat Run replays the identical bytes.
func TestRunEndToEnd(t *testing.T) {
	s, err := serve.New(serve.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	}()

	c := newClient(t, ts.URL)
	res, err := c.Run(context.Background(), smallSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	out, err := spec.Exec(smallSpec(1), spec.Attach{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(out.Stats)
	got, _ := json.Marshal(res.Stats)
	if !bytes.Equal(got, want) {
		t.Errorf("remote stats diverge from direct execution:\nremote: %s\ndirect: %s", got, want)
	}
	res2, err := c.Run(context.Background(), smallSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Raw, res2.Raw) {
		t.Error("repeat run returned different bytes")
	}
}

// doneBody is a minimal done envelope carrying a parseable result.
func doneBody(digest string) string {
	return fmt.Sprintf(`{"digest":%q,"status":"done","result":{"result_version":4,"digest":%q,"stats":{},"wall_ms":1}}`,
		digest, digest)
}

const fakeDigest = "sha256:" + "ab" + "cdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcd"

// TestBackpressure429: the client honors Retry-After on 429 and succeeds
// once the queue has room.
func TestBackpressure429(t *testing.T) {
	var posts atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			if posts.Add(1) <= 2 {
				w.Header().Set("Retry-After", "0")
				w.WriteHeader(http.StatusTooManyRequests)
				fmt.Fprint(w, `{"error":"queue full"}`)
				return
			}
			w.WriteHeader(http.StatusOK)
			fmt.Fprint(w, doneBody(fakeDigest))
			return
		}
		t.Errorf("unexpected %s %s", r.Method, r.URL.Path)
	}))
	defer ts.Close()
	res, err := newClient(t, ts.URL).Run(context.Background(), smallSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest != fakeDigest || posts.Load() != 3 {
		t.Errorf("digest=%s posts=%d", res.Digest, posts.Load())
	}
}

// TestDraining503: a submission hitting a draining server retries until the
// (restarted) server accepts.
func TestDraining503(t *testing.T) {
	var posts atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if posts.Add(1) == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"server is draining"}`)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, doneBody(fakeDigest))
	}))
	defer ts.Close()
	if _, err := newClient(t, ts.URL).Run(context.Background(), smallSpec(3)); err != nil {
		t.Fatal(err)
	}
}

// TestConnectionRefusedThenUp: the daemon is down when the client first
// calls (connection refused) and comes up mid-retry — the client connects
// on a later attempt without surfacing the outage.
func TestConnectionRefusedThenUp(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // the port is now refusing connections

	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, doneBody(fakeDigest))
	})}
	up := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			t.Errorf("rebinding %s: %v", addr, err)
			close(up)
			return
		}
		close(up)
		srv.Serve(ln2) //nolint:errcheck
	}()
	defer srv.Close()

	c := newClient(t, "http://"+addr, func(cfg *Config) {
		cfg.MaxAttempts = 20
		cfg.BaseBackoff = 10 * time.Millisecond
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := c.Run(ctx, smallSpec(4)); err != nil {
		t.Fatal(err)
	}
	<-up
}

// TestVanishedRunResubmitted: the daemon accepts a run, then "restarts"
// unjournaled and answers 404 — the client resubmits the same digest and
// completes.
func TestVanishedRunResubmitted(t *testing.T) {
	var posts atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost:
			if posts.Add(1) == 1 {
				w.WriteHeader(http.StatusAccepted)
				fmt.Fprintf(w, `{"digest":%q,"status":"queued"}`, fakeDigest)
				return
			}
			w.WriteHeader(http.StatusOK)
			fmt.Fprint(w, doneBody(fakeDigest))
		case strings.HasPrefix(r.URL.Path, "/v1/runs/"):
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, `{"error":"unknown run"}`)
		}
	}))
	defer ts.Close()
	res, err := newClient(t, ts.URL).Run(context.Background(), smallSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	if posts.Load() != 2 {
		t.Errorf("posts = %d, want 2 (initial + resubmission)", posts.Load())
	}
	if res.Digest != fakeDigest {
		t.Errorf("digest = %s", res.Digest)
	}
}

// TestFailedRunIsPermanent: a server-side execution failure is reported as a
// RunError, not retried forever.
func TestFailedRunIsPermanent(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprintf(w, `{"digest":%q,"status":"queued"}`, fakeDigest)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintf(w, `{"digest":%q,"status":"failed","error":"timeout"}`, fakeDigest)
	}))
	defer ts.Close()
	_, err := newClient(t, ts.URL).Run(context.Background(), smallSpec(6))
	var re *RunError
	if !errors.As(err, &re) || re.Message != "timeout" {
		t.Fatalf("err = %v, want RunError(timeout)", err)
	}
}

// TestBadSpecIsPermanent: a 400 is not retried.
func TestBadSpecIsPermanent(t *testing.T) {
	var posts atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		posts.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"bad spec"}`)
	}))
	defer ts.Close()
	_, err := newClient(t, ts.URL).Run(context.Background(), smallSpec(7))
	if err == nil || !strings.Contains(err.Error(), "bad spec") {
		t.Fatalf("err = %v, want the server's bad-spec message", err)
	}
	if posts.Load() != 1 {
		t.Errorf("400 was retried: %d posts", posts.Load())
	}
}

// TestGiveUp: a persistently down endpoint exhausts MaxAttempts and reports
// the last transport error.
func TestGiveUp(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	c := newClient(t, "http://"+addr, func(cfg *Config) { cfg.MaxAttempts = 3 })
	_, err = c.Submit(context.Background(), smallSpec(8))
	if err == nil || !strings.Contains(err.Error(), "gave up after 3 attempts") {
		t.Fatalf("err = %v, want give-up after 3 attempts", err)
	}
}

func TestParseRetryAfter(t *testing.T) {
	for h, want := range map[string]time.Duration{
		"": 0, "2": 2 * time.Second, "0": 0, "-1": 0, "soon": 0,
	} {
		if got := parseRetryAfter(h); got != want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", h, got, want)
		}
	}
}

func TestBackoffBounds(t *testing.T) {
	c := newClient(t, "http://localhost:1", func(cfg *Config) {
		cfg.BaseBackoff = 100 * time.Millisecond
		cfg.MaxBackoff = time.Second
	})
	for n := 0; n < 40; n++ {
		d := c.backoff(n)
		if d <= 0 || d > time.Second {
			t.Fatalf("backoff(%d) = %v out of (0, 1s]", n, d)
		}
	}
}

// TestOnProgressEndToEnd: a Run with OnProgress set against a real server
// receives live frames from the SSE stream, ending terminally, while the
// result itself stays byte-identical to a run without a watcher.
func TestOnProgressEndToEnd(t *testing.T) {
	s, err := serve.New(serve.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	}()

	var (
		mu     sync.Mutex
		frames []Progress
	)
	slow := &spec.RunSpec{
		Design: "tage-l", Topology: "LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1",
		Pipeline: spec.Pipeline{GHistBits: 64},
		Workload: "dhrystone", Seed: 7, Insts: 300_000,
	}
	c := newClient(t, ts.URL, func(cfg *Config) {
		cfg.OnProgress = func(p Progress) {
			mu.Lock()
			frames = append(frames, p)
			mu.Unlock()
		}
	})
	res, err := c.Run(context.Background(), slow)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resources == nil || res.Resources.WallMS <= 0 {
		t.Errorf("remote result carries no resource attribution: %+v", res.Resources)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(frames) == 0 {
		t.Fatal("OnProgress never fired")
	}
	sawCycles := false
	for _, p := range frames {
		if p.Digest != res.Digest {
			t.Errorf("frame for wrong digest: %s != %s", p.Digest, res.Digest)
		}
		if p.Cycles > 0 {
			sawCycles = true
		}
	}
	if !sawCycles {
		t.Error("no frame carried cycle counts from the core flush path")
	}
	if last := frames[len(frames)-1]; !last.Done {
		t.Errorf("stream did not end on a terminal frame: %+v", last)
	}
}

// TestWatchFallback: a server that answers /progress with plain JSON (no
// SSE) still delivers exactly one snapshot to the callback.
func TestWatchFallback(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/progress") {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"digest":%q,"status":"running","phase":"simulate","cycles":42,"done":false}`, fakeDigest)
			return
		}
		t.Errorf("unexpected %s %s", r.Method, r.URL.Path)
	}))
	defer ts.Close()
	var got []Progress
	err := newClient(t, ts.URL).Watch(context.Background(), fakeDigest,
		func(p Progress) { got = append(got, p) })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Phase != "simulate" || got[0].Cycles != 42 {
		t.Fatalf("fallback snapshot = %+v", got)
	}
}
