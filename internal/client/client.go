// Package client is the tool-side counterpart of internal/serve: a small
// HTTP client that submits canonical RunSpecs to a cobra-serve daemon and
// waits for their results, riding out the failures a long-lived service
// exposes — connection refusals during a restart, 429 backpressure from a
// full queue, 503s while the daemon drains, and runs that vanish from the
// in-memory tables when an unjournaled server bounces.
//
// The safety argument is the spec digest.  Submission is idempotent: the
// digest covers everything that determines a run's outcome, so resubmitting
// the same spec after any failure either coalesces onto the in-flight run,
// hits the cache, or recomputes byte-identical bytes.  The client therefore
// retries freely — with capped exponential backoff plus full jitter, and
// honoring Retry-After when the server names a delay — without ever risking
// a duplicated side effect or a divergent answer.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"cobra/internal/interval"
	"cobra/internal/obs"
	"cobra/internal/spec"
	"cobra/internal/stats"
)

// Config shapes a Client.  Zero values select the documented defaults.
type Config struct {
	// BaseURL locates the daemon, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP overrides the transport (default: a fresh http.Client with no
	// global timeout — deadlines come from the caller's context).
	HTTP *http.Client
	// MaxAttempts bounds how many times one logical request is tried before
	// the client gives up (default 8; 1 disables retries).
	MaxAttempts int
	// BaseBackoff is the first retry delay; attempt n waits a full-jitter
	// draw from [0, min(BaseBackoff<<n, MaxBackoff)].  Default 200ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff growth (default 5s).
	MaxBackoff time.Duration
	// Poll is the status-poll period while a run is queued or executing
	// (default 150ms).
	Poll time.Duration
	// Traceparent, when non-empty, is attached to every submission so the
	// daemon's request traces join the caller's distributed trace.
	Traceparent string
	// OnProgress, when non-nil, receives live progress frames for each run
	// while Run waits on it: Run opens the daemon's SSE progress stream in
	// the background and forwards every frame.  Purely cosmetic — a broken
	// stream never fails the run, and frames may stop arriving before the
	// result does.
	OnProgress func(Progress)
	// Log receives one structured line per retry and resubmission; nil
	// discards.
	Log *slog.Logger
}

// Client talks to one cobra-serve daemon.  Safe for concurrent use.
type Client struct {
	cfg Config
}

// New validates cfg and builds a Client.
func New(cfg Config) (*Client, error) {
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	if cfg.BaseURL == "" {
		return nil, errors.New("client: empty BaseURL")
	}
	if !strings.HasPrefix(cfg.BaseURL, "http://") && !strings.HasPrefix(cfg.BaseURL, "https://") {
		return nil, fmt.Errorf("client: BaseURL %q is not an http(s) URL", cfg.BaseURL)
	}
	if cfg.HTTP == nil {
		cfg.HTTP = &http.Client{}
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 8
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 200 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 150 * time.Millisecond
	}
	if cfg.Log == nil {
		cfg.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Client{cfg: cfg}, nil
}

// Status mirrors the serve envelope every /v1/runs response uses.
type Status struct {
	Digest  string          `json:"digest"`
	Status  string          `json:"status"` // queued, running, done, failed
	Cached  bool            `json:"cached,omitempty"`
	TraceID string          `json:"trace_id,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
	Error   string          `json:"error,omitempty"`
	// Resources and Flight accompany failed runs: the daemon's resource
	// attribution for the last attempt and its flight-recorder tail.
	Resources *obs.Resources     `json:"resources,omitempty"`
	Flight    []obs.FlightRecord `json:"flight,omitempty"`
}

// Progress is one frame of a run's live progress stream, mirroring the
// daemon's GET /v1/runs/{id}/progress events.
type Progress struct {
	Digest      string  `json:"digest"`
	Status      string  `json:"status"` // queued, running, done, failed
	Phase       string  `json:"phase"`
	Cycles      uint64  `json:"cycles"`
	Insts       uint64  `json:"insts"`
	TargetInsts uint64  `json:"target_insts,omitempty"`
	InstsPerSec float64 `json:"insts_per_sec"`
	ElapsedMS   int64   `json:"elapsed_ms"`
	QueuePos    int     `json:"queue_pos,omitempty"`
	Done        bool    `json:"done"`
	// Window is the most recently closed interval window, present while the
	// watched run records interval telemetry (observe.interval_insts).
	Window *interval.Window `json:"window,omitempty"`
}

// Result mirrors the daemon's stored run outcome.  Raw preserves the exact
// bytes the server returned, so callers can assert byte-identity against a
// local execution.
type Result struct {
	ResultVersion int             `json:"result_version"`
	Spec          *spec.RunSpec   `json:"spec"`
	Digest        string          `json:"digest"`
	TraceID       string          `json:"trace_id,omitempty"`
	Stats         *stats.Sim      `json:"stats"`
	Events        []obs.Event     `json:"events,omitempty"`
	EventsTotal   uint64          `json:"events_total,omitempty"`
	// Intervals is the windowed interval-telemetry summary (result_version
	// >= 5) when the spec asked for it.
	Intervals *interval.Set `json:"intervals,omitempty"`
	Timings       json.RawMessage `json:"timings,omitempty"`
	Retries       int             `json:"retries,omitempty"`
	// Resources is the daemon's per-run resource attribution (result_version
	// >= 4): CPU, allocation, and GC cost plus the wait breakdown.
	Resources *obs.Resources `json:"resources,omitempty"`
	WallMS    int64          `json:"wall_ms"`

	Raw json.RawMessage `json:"-"`
}

// ErrNotFound reports a digest the daemon does not know — not in flight,
// not cached, not failed.  After a restart of an unjournaled server this is
// the signal to resubmit.
var ErrNotFound = errors.New("client: run not found")

// RunError is a run the daemon executed and declared failed; retrying it
// would recompute the same failure, so the client reports it as permanent.
// Resources and Flight carry the daemon's post-mortem context when it sent
// any: the failed attempt's resource attribution and the flight-recorder
// tail around the failure.
type RunError struct {
	Digest    string
	Message   string
	Resources *obs.Resources
	Flight    []obs.FlightRecord
}

func (e *RunError) Error() string {
	return fmt.Sprintf("client: run %s failed on server: %s", e.Digest, e.Message)
}

// httpError is a non-2xx response the retry loop classifies.
type httpError struct {
	code       int
	msg        string
	retryAfter time.Duration // > 0 when the server named a delay
}

func (e *httpError) Error() string { return fmt.Sprintf("HTTP %d: %s", e.code, e.msg) }

// retryable reports whether err is worth another attempt: transport errors
// (connection refused mid-restart), 429 backpressure, 503 draining, and
// transient 5xx all are; other HTTP errors are permanent.
func retryable(err error) bool {
	var he *httpError
	if errors.As(err, &he) {
		return he.code == http.StatusTooManyRequests || he.code >= 500
	}
	var re *RunError
	if errors.As(err, &re) || errors.Is(err, ErrNotFound) {
		return false
	}
	// Everything else at this layer is a transport-level failure.
	return true
}

// Submit posts sp and returns the daemon's admission answer: a done Status
// carrying the result (cache hit) or a queued/running one.  The spec is
// canonicalized in place first, so sp's digest afterwards matches the
// daemon's.  Transport failures, 429, and 503 are retried with backoff.
func (c *Client) Submit(ctx context.Context, sp *spec.RunSpec) (Status, error) {
	if err := sp.Canonicalize(); err != nil {
		return Status{}, err
	}
	body, err := json.Marshal(sp)
	if err != nil {
		return Status{}, err
	}
	return c.withRetry(ctx, "submit", func() (Status, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			c.cfg.BaseURL+"/v1/runs", bytes.NewReader(body))
		if err != nil {
			return Status{}, err
		}
		req.Header.Set("Content-Type", "application/json")
		if c.cfg.Traceparent != "" {
			req.Header.Set("traceparent", c.cfg.Traceparent)
		}
		return c.do(req, http.StatusOK, http.StatusAccepted)
	})
}

// Get fetches the status of a digest.  An unknown digest is ErrNotFound
// (permanent — the caller decides whether to resubmit).
func (c *Client) Get(ctx context.Context, digest string) (Status, error) {
	return c.withRetry(ctx, "get", func() (Status, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			c.cfg.BaseURL+"/v1/runs/"+digest, nil)
		if err != nil {
			return Status{}, err
		}
		return c.do(req, http.StatusOK)
	})
}

// Watch streams a run's live progress, invoking fn for every frame until the
// run reaches a terminal state, the stream breaks, or ctx is done.  It speaks
// SSE when the daemon does and falls back to the single-snapshot form
// otherwise.  Errors after the stream is open are reported as a nil return —
// progress is cosmetic and the poll loop still settles the run.
func (c *Client) Watch(ctx context.Context, digest string, fn func(Progress)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.cfg.BaseURL+"/v1/runs/"+digest+"/progress", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.cfg.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &httpError{code: resp.StatusCode, msg: "progress stream refused"}
	}
	if !strings.Contains(resp.Header.Get("Content-Type"), "text/event-stream") {
		// Long-poll fallback: one snapshot.
		var p Progress
		if jerr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&p); jerr != nil {
			return jerr
		}
		fn(p)
		return nil
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var p Progress
		if jerr := json.Unmarshal([]byte(line[len("data: "):]), &p); jerr != nil {
			continue
		}
		fn(p)
		if p.Done {
			return nil
		}
	}
	return nil // broken stream: the caller's poll loop still settles the run
}

// Intervals fetches a finished run's windowed interval telemetry from
// GET /v1/runs/{id}/intervals.  An unknown digest — or a run that did not
// record intervals — is ErrNotFound.
func (c *Client) Intervals(ctx context.Context, digest string) (*interval.Set, error) {
	var set *interval.Set
	_, err := c.withRetry(ctx, "intervals", func() (Status, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			c.cfg.BaseURL+"/v1/runs/"+digest+"/intervals", nil)
		if err != nil {
			return Status{}, err
		}
		resp, err := c.cfg.HTTP.Do(req)
		if err != nil {
			return Status{}, err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		if err != nil {
			return Status{}, err
		}
		if resp.StatusCode == http.StatusNotFound {
			return Status{}, ErrNotFound
		}
		if resp.StatusCode != http.StatusOK {
			return Status{}, &httpError{code: resp.StatusCode, msg: strings.TrimSpace(string(raw)),
				retryAfter: parseRetryAfter(resp.Header.Get("Retry-After"))}
		}
		var doc struct {
			Intervals *interval.Set `json:"intervals"`
		}
		if jerr := json.Unmarshal(raw, &doc); jerr != nil || doc.Intervals == nil {
			return Status{}, fmt.Errorf("client: run %s: corrupt intervals payload", digest)
		}
		set = doc.Intervals
		return Status{}, nil
	})
	if err != nil {
		return nil, err
	}
	return set, nil
}

// Run is the whole conversation: submit sp, poll until it settles, and
// return the parsed Result.  It survives daemon restarts mid-run — a 404
// for a digest the daemon accepted means an unjournaled server lost it, and
// the client resubmits (safe: execution is deterministic and keyed by
// digest).  A run the daemon declares failed returns a *RunError.  When
// Config.OnProgress is set, the daemon's live progress stream runs alongside
// the poll loop and every frame is forwarded to it.
func (c *Client) Run(ctx context.Context, sp *spec.RunSpec) (*Result, error) {
	st, err := c.Submit(ctx, sp)
	if err != nil {
		return nil, err
	}
	if c.cfg.OnProgress != nil && st.Status != "done" && st.Status != "failed" {
		wctx, cancel := context.WithCancel(ctx)
		defer cancel()
		watchDone := make(chan struct{})
		go func() {
			defer close(watchDone)
			if werr := c.Watch(wctx, st.Digest, c.cfg.OnProgress); werr != nil && wctx.Err() == nil {
				c.cfg.Log.Debug("client: progress stream unavailable",
					"run_digest", st.Digest, "error", werr.Error())
			}
		}()
		defer func() { cancel(); <-watchDone }() // no frames delivered after Run returns
	}
	for st.Status != "done" {
		if st.Status == "failed" {
			return nil, &RunError{Digest: st.Digest, Message: st.Error,
				Resources: st.Resources, Flight: st.Flight}
		}
		if err := sleep(ctx, c.cfg.Poll); err != nil {
			return nil, err
		}
		next, err := c.Get(ctx, st.Digest)
		switch {
		case errors.Is(err, ErrNotFound):
			// The daemon restarted without a journal (or abandoned the queue
			// on a timed-out drain) and forgot the run.  Resubmission is
			// idempotent by digest, so just start the conversation over.
			c.cfg.Log.Warn("client: run vanished from server; resubmitting",
				"run_digest", st.Digest)
			next, err = c.Submit(ctx, sp)
			if err != nil {
				return nil, err
			}
		case err != nil:
			return nil, err
		}
		st = next
	}
	var res Result
	if err := json.Unmarshal(st.Result, &res); err != nil {
		return nil, fmt.Errorf("client: run %s: corrupt result payload: %w", st.Digest, err)
	}
	res.Raw = st.Result
	return &res, nil
}

// do executes one HTTP exchange and decodes the envelope; any status other
// than the accepted ok codes becomes a classified error.
func (c *Client) do(req *http.Request, ok ...int) (Status, error) {
	resp, err := c.cfg.HTTP.Do(req)
	if err != nil {
		return Status{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return Status{}, err
	}
	for _, code := range ok {
		if resp.StatusCode == code {
			var st Status
			if err := json.Unmarshal(raw, &st); err != nil {
				return Status{}, fmt.Errorf("client: decoding HTTP %d response: %w", resp.StatusCode, err)
			}
			return st, nil
		}
	}
	if resp.StatusCode == http.StatusNotFound {
		return Status{}, ErrNotFound
	}
	msg := strings.TrimSpace(string(raw))
	var doc struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &doc) == nil && doc.Error != "" {
		msg = doc.Error
	}
	return Status{}, &httpError{code: resp.StatusCode, msg: msg,
		retryAfter: parseRetryAfter(resp.Header.Get("Retry-After"))}
}

// withRetry drives one logical request through the retry policy: up to
// MaxAttempts tries, capped exponential backoff with full jitter between
// them, the server's Retry-After respected as a floor when present.
func (c *Client) withRetry(ctx context.Context, op string, try func() (Status, error)) (Status, error) {
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			d := c.backoff(attempt - 1)
			var he *httpError
			if errors.As(lastErr, &he) && he.retryAfter > d {
				d = he.retryAfter
			}
			c.cfg.Log.Warn("client: retrying",
				"op", op, "attempt", attempt, "of", c.cfg.MaxAttempts-1,
				"backoff_ms", d.Milliseconds(), "error", lastErr.Error())
			if err := sleep(ctx, d); err != nil {
				return Status{}, err
			}
		}
		st, err := try()
		if err == nil {
			return st, nil
		}
		if ctx.Err() != nil {
			return Status{}, ctx.Err()
		}
		if !retryable(err) {
			return Status{}, err
		}
		lastErr = err
	}
	return Status{}, fmt.Errorf("client: %s gave up after %d attempts: %w",
		op, c.cfg.MaxAttempts, lastErr)
}

// backoff draws the wait before retry attempt n: full jitter over a capped
// exponential window, so a thundering herd of clients retrying against a
// restarting daemon spreads out instead of synchronizing.
func (c *Client) backoff(n int) time.Duration {
	window := c.cfg.BaseBackoff << min(n, 20)
	if window > c.cfg.MaxBackoff || window <= 0 {
		window = c.cfg.MaxBackoff
	}
	return time.Duration(rand.Int63n(int64(window)) + 1) //nolint:gosec // jitter, not crypto
}

// parseRetryAfter understands the delta-seconds form of Retry-After (the
// form serve emits); anything else is "no hint".
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	return 0
}

// sleep waits d or until ctx is done, whichever comes first.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
