// Package compose implements the COBRA predictor composer (§IV): it parses
// the paper's topological notation for predictor pipelines, instantiates
// sub-components from the library registry, generates the staged
// final-prediction logic with natural overriding (§IV-B), and generates the
// predictor management structures — the history file, the forwards-walk
// repair state machine, and the history providers (§IV-B.1 through §IV-B.3).
package compose

import (
	"fmt"
	"strings"
)

// Node is one vertex of a predictor topology: a named sub-component plus the
// nodes feeding its predict_in edges.  Inputs[0] is the primary input — the
// chain whose prediction passes through when this node is transparent.
type Node struct {
	Name   string
	Inputs []*Node
}

// Topology is a parsed predictor topology; Root provides the final
// prediction (§IV-B: "the node providing the final prediction").
type Topology struct {
	Root *Node
	src  string
}

// String returns the canonical textual form of the topology.
func (t *Topology) String() string { return formatNode(t.Root) }

func formatNode(n *Node) string {
	if n == nil {
		return ""
	}
	switch len(n.Inputs) {
	case 0:
		return n.Name
	case 1:
		return n.Name + " > " + formatNode(n.Inputs[0])
	default:
		parts := make([]string, len(n.Inputs))
		for i, in := range n.Inputs {
			parts[i] = formatNode(in)
		}
		return n.Name + " > [" + strings.Join(parts, ", ") + "]"
	}
}

// Nodes returns the topology's nodes in dependency (inputs-first) order.
func (t *Topology) Nodes() []*Node {
	var out []*Node
	seen := map[*Node]bool{}
	var walk func(*Node)
	walk = func(n *Node) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		for _, in := range n.Inputs {
			walk(in)
		}
		out = append(out, n)
	}
	walk(t.Root)
	return out
}

// ParseTopology parses the paper's notation, e.g.
//
//	LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1
//	TOURNEY3 > [GBIM2 > BTB2, LBIM2]
//	TOURNEY3 > [(LOOP2 > GHT2), LHT2]
//
// Grammar: chain := term ('>' (chain | bracket))?; bracket := '[' chain
// (',' chain)* ']'; term := NAME | '(' chain ')'.  The leftmost node is the
// root (most powerful prediction).
func ParseTopology(src string) (*Topology, error) {
	p := &topoParser{src: src}
	root, err := p.chain()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("compose: trailing input at %q", p.src[p.pos:])
	}
	t := &Topology{Root: root, src: src}
	if err := t.check(); err != nil {
		return nil, err
	}
	return t, nil
}

// MustParse is ParseTopology for known-good literals (panics on error).
func MustParse(src string) *Topology {
	t, err := ParseTopology(src)
	if err != nil {
		panic(err)
	}
	return t
}

// check rejects duplicate node names (each node is one hardware instance).
func (t *Topology) check() error {
	seen := map[string]bool{}
	for _, n := range t.Nodes() {
		if seen[n.Name] {
			return fmt.Errorf("compose: duplicate node %q in topology %q", n.Name, t.src)
		}
		seen[n.Name] = true
	}
	return nil
}

type topoParser struct {
	src string
	pos int
}

func (p *topoParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *topoParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *topoParser) chain() (*Node, error) {
	n, err := p.term()
	if err != nil {
		return nil, err
	}
	if p.peek() == '>' {
		p.pos++
		if p.peek() == '[' {
			ins, err := p.bracket()
			if err != nil {
				return nil, err
			}
			n.Inputs = ins
			return n, nil
		}
		in, err := p.chain()
		if err != nil {
			return nil, err
		}
		n.Inputs = []*Node{in}
	}
	return n, nil
}

func (p *topoParser) bracket() ([]*Node, error) {
	if p.peek() != '[' {
		return nil, fmt.Errorf("compose: expected '[' at %d", p.pos)
	}
	p.pos++
	var ins []*Node
	for {
		n, err := p.chain()
		if err != nil {
			return nil, err
		}
		ins = append(ins, n)
		switch p.peek() {
		case ',':
			p.pos++
		case ']':
			p.pos++
			if len(ins) < 2 {
				return nil, fmt.Errorf("compose: bracket needs >= 2 inputs (arbitration, §IV-A.1)")
			}
			return ins, nil
		default:
			return nil, fmt.Errorf("compose: expected ',' or ']' at offset %d of %q", p.pos, p.src)
		}
	}
}

func (p *topoParser) term() (*Node, error) {
	if p.peek() == '(' {
		p.pos++
		n, err := p.chain()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("compose: unbalanced '(' in %q", p.src)
		}
		p.pos++
		return n, nil
	}
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' {
			p.pos++
			continue
		}
		if c == '(' { // size argument, e.g. LOOP3(256)
			depth := 0
			for p.pos < len(p.src) {
				if p.src[p.pos] == '(' {
					depth++
				} else if p.src[p.pos] == ')' {
					depth--
					p.pos++
					if depth == 0 {
						break
					}
					continue
				}
				p.pos++
			}
			if depth != 0 {
				return nil, fmt.Errorf("compose: unbalanced size parens in %q", p.src)
			}
			continue
		}
		break
	}
	if p.pos == start {
		return nil, fmt.Errorf("compose: expected node name at offset %d of %q", start, p.src)
	}
	return &Node{Name: p.src[start:p.pos]}, nil
}
