package compose

import (
	"fmt"

	"cobra/internal/bitutil"
)

// InvariantError is a structured paranoid-mode violation report naming the
// pipeline operation, the offending component (when attributable), the cycle,
// and the history-file entry involved.
type InvariantError struct {
	// Op is the pipeline operation after which the check fired: "Predict",
	// "Accept", "ReAccept", "Resolve", "Commit", or "SquashAll".
	Op string
	// Component is the sub-component instance the violation is attributed
	// to, or "" for a pipeline-level (history file / history provider)
	// violation.
	Component string
	// Cycle is the pipeline cycle of the operation.
	Cycle uint64
	// EntrySeq is the allocation sequence number of the history-file entry
	// involved, or 0 when the violation is not entry-specific.
	EntrySeq uint64
	// Detail describes the violated invariant.
	Detail string
}

func (e *InvariantError) Error() string {
	comp := ""
	if e.Component != "" {
		comp = " component " + e.Component
	}
	seq := ""
	if e.EntrySeq != 0 {
		seq = fmt.Sprintf(" entry#%d", e.EntrySeq)
	}
	return fmt.Sprintf("compose: invariant violation after %s at cycle %d:%s%s %s",
		e.Op, e.Cycle, comp, seq, e.Detail)
}

// maxViolations bounds the retained violation list; the total count keeps
// incrementing past it.
const maxViolations = 100

// Violations returns the invariant violations recorded so far (paranoid mode
// only; at most maxViolations are retained).
func (p *Pipeline) Violations() []*InvariantError {
	return append([]*InvariantError(nil), p.violations...)
}

// ViolationCount returns the total number of violations detected, including
// any beyond the retained list.
func (p *Pipeline) ViolationCount() uint64 { return p.vioTotal }

func (p *Pipeline) reportViolation(op, comp string, cycle, seq uint64, format string, args ...any) {
	p.vioTotal++
	if len(p.violations) < maxViolations {
		p.violations = append(p.violations, &InvariantError{
			Op: op, Component: comp, Cycle: cycle, EntrySeq: seq,
			Detail: fmt.Sprintf(format, args...),
		})
	}
}

// metaSum is the checksum pinned over each component's metadata blob at
// predict time; every later check verifies the round-trip (§III-D: events
// hand the blob back verbatim).
func metaSum(words []uint64) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, w := range words {
		h ^= w
		h *= 0x100000001b3
	}
	return h
}

// applyShifts replays an entry's recorded speculative history bits onto a
// snapshot's raw words (the same shift the live register performed), masked
// to the architected length — the reference for the snapshot/shift chain
// invariant.
func applyShifts(hist []uint64, length uint, shifts []bool) []uint64 {
	out := append([]uint64(nil), hist...)
	for _, taken := range shifts {
		carry := uint64(0)
		if taken {
			carry = 1
		}
		for i := range out {
			next := out[i] >> 63
			out[i] = out[i]<<1 | carry
			carry = next
		}
		if rem := length % 64; rem != 0 && len(out) > 0 {
			out[len(out)-1] &= bitutil.Mask(rem)
		}
	}
	return out
}

func wordsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkInvariants is the paranoid-mode validator, run after every public
// pipeline operation.  It is strictly observation-only: nothing it reads is
// mutated, so enabling paranoid mode cannot change simulation results.
//
// Checked invariants:
//
//  1. In-flight count bounds: 0 <= count <= capacity, and the ring holds
//     exactly count valid entries, contiguous from the oldest.
//  2. Monotone entry order: allocation sequence numbers strictly increase
//     from oldest to youngest (the forwards-walk direction).
//  3. Snapshot/shift chain (repairing policies only): each entry's pre-shift
//     global-history snapshot equals its elder's snapshot with the elder's
//     recorded speculative bits applied, and the live register equals the
//     youngest entry's snapshot plus its bits — i.e. snapshot restore plus
//     re-fire round-trips exactly after every repair.
//  4. Folded-history sync: every attached folded register matches the
//     reference fold of the live history words.
//  5. Metadata round-trip: every live entry's per-component metadata blob
//     still matches the checksum pinned at predict time (§III-D).
func (p *Pipeline) checkInvariants(op string, cycle uint64) {
	if !p.paranoid {
		return
	}
	hf := p.hf

	// 1. Count bounds and ring validity.
	if hf.count < 0 || hf.count > len(hf.ring) {
		p.reportViolation(op, "", cycle, 0,
			"in-flight count %d out of bounds [0,%d]", hf.count, len(hf.ring))
		return // the ring walk below would be meaningless
	}
	live := map[int]bool{}
	for i := 0; i < hf.count; i++ {
		live[(hf.head+i)%len(hf.ring)] = true
	}
	for i := range hf.ring {
		if hf.ring[i].valid != live[i] {
			p.reportViolation(op, "", cycle, hf.ring[i].seq,
				"ring slot %d validity %v disagrees with occupancy [head=%d count=%d]",
				i, hf.ring[i].valid, hf.head, hf.count)
		}
	}

	// 2. Monotone entry order, oldest to youngest.
	var prev *Entry
	for i := 0; i < hf.count; i++ {
		e := &hf.ring[(hf.head+i)%len(hf.ring)]
		if prev != nil && e.seq <= prev.seq {
			p.reportViolation(op, "", cycle, e.seq,
				"entry order not monotone: seq %d follows seq %d", e.seq, prev.seq)
		}
		prev = e
	}

	// 3. Snapshot/shift chain.  GHRNoRepair deliberately leaves stale bits
	// in the live register, so the chain only holds for repairing policies.
	if p.Opt.GHRPolicy != GHRNoRepair {
		for i := 0; i < hf.count; i++ {
			e := &hf.ring[(hf.head+i)%len(hf.ring)]
			got := applyShifts(e.preSnap.Hist(), p.Global.Len(), e.shifts)
			var want []uint64
			which := ""
			if i+1 < hf.count {
				y := &hf.ring[(hf.head+i+1)%len(hf.ring)]
				want, which = y.preSnap.Hist(), fmt.Sprintf("entry#%d snapshot", y.seq)
			} else {
				want, which = p.Global.Raw(), "live global history"
			}
			if !wordsEqual(got, want) {
				p.reportViolation(op, "", cycle, e.seq,
					"snapshot/shift chain broken: snapshot + %d recorded bits != %s (restore round-trip violated)",
					len(e.shifts), which)
			}
		}
	}

	// 4. Folded-history sync.
	if idx, ok := p.Global.CheckFolds(); !ok {
		p.reportViolation(op, "", cycle, 0,
			"folded history register %d desynced from global history", idx)
	}

	// 5. Metadata round-trip checksums.
	for i := 0; i < hf.count; i++ {
		e := &hf.ring[(hf.head+i)%len(hf.ring)]
		if len(e.metaSums) != len(p.nodes) {
			continue
		}
		for ni, n := range p.nodes {
			if n.comp.MetaWords() == 0 {
				continue
			}
			if got := metaSum(e.metas[ni]); got != e.metaSums[ni] {
				p.reportViolation(op, n.name, cycle, e.seq,
					"metadata blob corrupted since predict (checksum %#x, want %#x)",
					got, e.metaSums[ni])
			}
		}
	}
}
