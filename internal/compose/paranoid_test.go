package compose

import (
	"math/rand"
	"strings"
	"testing"

	"cobra/internal/pred"
)

func TestInvariantErrorFormat(t *testing.T) {
	e := &InvariantError{Op: "Resolve", Component: "TAGE3", Cycle: 42, EntrySeq: 7,
		Detail: "metadata blob corrupted since predict"}
	s := e.Error()
	for _, want := range []string{"Resolve", "TAGE3", "cycle 42", "entry#7", "metadata"} {
		if !strings.Contains(s, want) {
			t.Errorf("InvariantError %q missing %q", s, want)
		}
	}
	// Pipeline-level violations omit the component and entry qualifiers.
	s = (&InvariantError{Op: "Commit", Cycle: 9, Detail: "d"}).Error()
	if strings.Contains(s, "component") || strings.Contains(s, "entry#") {
		t.Errorf("pipeline-level violation carries stale qualifiers: %q", s)
	}
}

// acceptBranch accepts e with a single taken/not-taken branch in slot 0.
func acceptBranch(p *Pipeline, cycle uint64, e *Entry, final pred.Packet, taken bool) {
	slots := make([]pred.SlotInfo, p.Cfg.FetchWidth)
	slots[0] = pred.SlotInfo{Valid: true, IsBranch: true, Taken: taken, PC: e.PC,
		PredTaken: taken}
	next := p.Cfg.PacketBase(e.PC) + uint64(p.Cfg.PktBytes())
	cfi := -1
	if taken {
		cfi, next = 0, 0x8000
	}
	p.Accept(cycle, e, final, slots, cfi, next)
}

// TestParanoidDetectsTamperedMetadata corrupts a live entry's metadata blob
// behind the pipeline's back; the next operation's check must attribute the
// round-trip violation to the owning component.
func TestParanoidDetectsTamperedMetadata(t *testing.T) {
	p, err := New(pred.DefaultConfig(), MustParse("GTAG3 > BTB2 > BIM2"),
		Options{GHistBits: 16, Paranoid: true})
	if err != nil {
		t.Fatal(err)
	}
	p.Tick(0)
	e, stages := p.Predict(0, 0x1000)
	if e == nil {
		t.Fatal("unexpected stall")
	}
	acceptBranch(p, 0, e, stages[len(stages)-1], true)
	if p.ViolationCount() != 0 {
		t.Fatalf("healthy pipeline already has violations: %v", p.Violations()[0])
	}
	tampered := ""
	for ni, n := range p.nodes {
		if n.comp.MetaWords() > 0 {
			e.metas[ni][0] ^= 1
			tampered = n.name
			break
		}
	}
	if tampered == "" {
		t.Fatal("no component with metadata in topology")
	}
	p.Tick(1)
	if e2, st2 := p.Predict(1, 0x1040); e2 != nil {
		acceptBranch(p, 1, e2, st2[len(st2)-1], false)
	}
	if p.ViolationCount() == 0 {
		t.Fatal("tampered metadata not detected")
	}
	v := p.Violations()[0]
	if v.Component != tampered {
		t.Errorf("violation attributed to %q, want %q", v.Component, tampered)
	}
	if v.EntrySeq == 0 || !strings.Contains(v.Detail, "metadata") {
		t.Errorf("unexpected violation shape: %v", v)
	}
}

// TestParanoidDetectsTamperedHistoryChain flips a recorded speculative
// history bit; the snapshot/shift chain check must fire.
func TestParanoidDetectsTamperedHistoryChain(t *testing.T) {
	p, err := New(pred.DefaultConfig(), MustParse("GTAG3 > BTB2 > BIM2"),
		Options{GHistBits: 16, Paranoid: true})
	if err != nil {
		t.Fatal(err)
	}
	p.Tick(0)
	e, stages := p.Predict(0, 0x1000)
	if e == nil {
		t.Fatal("unexpected stall")
	}
	acceptBranch(p, 0, e, stages[len(stages)-1], true)
	if len(e.shifts) == 0 {
		t.Fatal("accepted branch recorded no speculative history bits")
	}
	e.shifts[0] = !e.shifts[0]
	p.Tick(1)
	if e2, st2 := p.Predict(1, 0x1040); e2 != nil {
		acceptBranch(p, 1, e2, st2[len(st2)-1], false)
	}
	if p.ViolationCount() == 0 {
		t.Fatal("tampered speculative history bits not detected")
	}
	if v := p.Violations()[0]; !strings.Contains(v.Detail, "snapshot/shift chain") {
		t.Errorf("unexpected violation: %v", v)
	}
}

// TestParanoidCleanOnRandomStreams drives random topologies with random
// traffic under every GHR policy with the checker armed: a healthy pipeline
// must never violate, and the checker must be observation-only (identical
// InFlight trajectory with and without it).
func TestParanoidCleanOnRandomStreams(t *testing.T) {
	for _, pol := range []GHRPolicy{GHRRepair, GHRRepairReplay, GHRNoRepair} {
		rng := rand.New(rand.NewSource(77))
		for trial := 0; trial < 6; trial++ {
			src := randomTopology(rng)
			p, err := New(pred.DefaultConfig(), MustParse(src),
				Options{GHistBits: 64, HFEntries: 8, GHRPolicy: pol, Paranoid: true})
			if err != nil {
				t.Fatal(err)
			}
			var live []*Entry
			for q := 0; q < 400; q++ {
				p.Tick(uint64(q))
				if e, stages := p.Predict(uint64(q), uint64(0x1000+rng.Intn(32)*16)); e != nil {
					acceptBranch(p, uint64(q), e, stages[len(stages)-1], rng.Intn(2) == 0)
					live = append(live, e)
				}
				switch rng.Intn(4) {
				case 0:
					if len(live) > 0 {
						if e := live[rng.Intn(len(live))]; e.Valid() {
							p.Resolve(uint64(q), e, 0, rng.Intn(2) == 0, 0x9000)
						}
					}
				case 1:
					if old := p.Oldest(); old != nil {
						p.Commit(uint64(q), old)
					}
				case 2:
					if rng.Intn(8) == 0 {
						p.SquashAll(uint64(q))
					}
				}
				nl := live[:0]
				for _, e := range live {
					if e.Valid() {
						nl = append(nl, e)
					}
				}
				live = nl
			}
			if n := p.ViolationCount(); n != 0 {
				t.Fatalf("%s %q: %d violations on healthy traffic; first: %v",
					pol, src, n, p.Violations()[0])
			}
		}
	}
}

// TestParanoidResetClearsViolations: Reset returns the pipeline to power-on,
// including the violation log.
func TestParanoidResetClearsViolations(t *testing.T) {
	p, err := New(pred.DefaultConfig(), MustParse("BIM2"),
		Options{GHistBits: 16, Paranoid: true})
	if err != nil {
		t.Fatal(err)
	}
	p.reportViolation("Test", "BIM2", 1, 1, "synthetic")
	if p.ViolationCount() != 1 || len(p.Violations()) != 1 {
		t.Fatal("synthetic violation not recorded")
	}
	p.Reset()
	if p.ViolationCount() != 0 || len(p.Violations()) != 0 {
		t.Fatal("Reset did not clear the violation log")
	}
}

// TestViolationRetentionCap: the retained list is bounded while the total
// count keeps incrementing.
func TestViolationRetentionCap(t *testing.T) {
	p, err := New(pred.DefaultConfig(), MustParse("BIM2"),
		Options{GHistBits: 16, Paranoid: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < maxViolations+50; i++ {
		p.reportViolation("Test", "", uint64(i), 0, "synthetic %d", i)
	}
	if len(p.Violations()) != maxViolations {
		t.Fatalf("retained %d violations, want cap %d", len(p.Violations()), maxViolations)
	}
	if p.ViolationCount() != maxViolations+50 {
		t.Fatalf("total count %d, want %d", p.ViolationCount(), maxViolations+50)
	}
}
