package compose

import (
	"strings"
	"testing"
)

func TestParseChain(t *testing.T) {
	topo, err := ParseTopology("LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1")
	if err != nil {
		t.Fatal(err)
	}
	if topo.Root.Name != "LOOP3" {
		t.Errorf("root = %s", topo.Root.Name)
	}
	nodes := topo.Nodes()
	if len(nodes) != 5 {
		t.Fatalf("node count = %d", len(nodes))
	}
	// Inputs-first order: leaf (UBTB1) first, root last.
	if nodes[0].Name != "UBTB1" || nodes[4].Name != "LOOP3" {
		t.Errorf("order = %v", nodeNames(nodes))
	}
	// Each node in the chain has one input.
	if len(topo.Root.Inputs) != 1 || topo.Root.Inputs[0].Name != "TAGE3" {
		t.Errorf("LOOP3 input wrong: %+v", topo.Root.Inputs)
	}
}

func nodeNames(ns []*Node) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = n.Name
	}
	return out
}

func TestParseBracket(t *testing.T) {
	topo, err := ParseTopology("TOURNEY3 > [GBIM2 > BTB2, LBIM2]")
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Root.Inputs) != 2 {
		t.Fatalf("tournament inputs = %d", len(topo.Root.Inputs))
	}
	if topo.Root.Inputs[0].Name != "GBIM2" || topo.Root.Inputs[1].Name != "LBIM2" {
		t.Errorf("inputs = %v", nodeNames(topo.Root.Inputs))
	}
	if topo.Root.Inputs[0].Inputs[0].Name != "BTB2" {
		t.Error("nested chain inside bracket not parsed")
	}
}

func TestParseParens(t *testing.T) {
	// The paper's §IV-A.1 example with a parenthesized chain inside the
	// bracket.
	topo, err := ParseTopology("TOURNEY3 > [(LOOP2 > GBIM2), LBIM2]")
	if err != nil {
		t.Fatal(err)
	}
	first := topo.Root.Inputs[0]
	if first.Name != "LOOP2" || first.Inputs[0].Name != "GBIM2" {
		t.Errorf("paren chain mis-parsed: %s", topo)
	}
}

func TestParseSizes(t *testing.T) {
	topo, err := ParseTopology("LOOP3(256) > BIM2(1024)")
	if err != nil {
		t.Fatal(err)
	}
	if topo.Root.Name != "LOOP3(256)" {
		t.Errorf("size argument lost: %q", topo.Root.Name)
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	for _, src := range []string{
		"LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1",
		"TOURNEY3 > [GBIM2 > BTB2, LBIM2]",
		"GTAG3 > BTB2 > BIM2",
	} {
		topo := MustParse(src)
		again := MustParse(topo.String())
		if topo.String() != again.String() {
			t.Errorf("round trip changed %q -> %q", topo, again)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		">",
		"A >",
		"A > [B]",     // arbitration needs >= 2 inputs
		"A > [B, C",   // unterminated
		"A > (B",      // unbalanced paren
		"A B",         // trailing garbage
		"A > [B,, C]", // empty element
		"DUP > DUP",   // duplicate instance names
		"A > [B, B]",  // duplicate in bracket
	} {
		if _, err := ParseTopology(src); err == nil {
			t.Errorf("ParseTopology(%q) should fail", src)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse(">")
}

func TestDiagramSmoke(t *testing.T) {
	p := mustPipeline(t, "LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1", Options{})
	d := Diagram(p)
	for _, want := range []string{"LOOP3", "UBTB1", "Fetch-3", "respond", "final prediction"} {
		if !strings.Contains(d, want) {
			t.Errorf("diagram missing %q:\n%s", want, d)
		}
	}
	id := InterfaceDiagram(3)
	if !strings.Contains(id, "Fetch-0") || !strings.Contains(id, "predict signal") {
		t.Errorf("interface diagram malformed:\n%s", id)
	}
}
