package compose

import (
	"fmt"
	"os"

	"cobra/internal/components"
	"cobra/internal/history"
	"cobra/internal/obs"
	"cobra/internal/pred"
	"cobra/internal/sram"
)

// GHRPolicy selects how the pipeline treats refinements of a packet's global
// history contribution that arrive from deeper pipeline stages without a
// next-PC change — the design axis §VI-B explores.
type GHRPolicy int

const (
	// GHRRepair rewrites the speculative global history when a deeper stage
	// refines a packet's branch set/directions, but lets younger in-flight
	// fetches (made with the stale history) continue — the paper's original
	// design.
	GHRRepair GHRPolicy = iota
	// GHRRepairReplay additionally squashes and replays younger fetches so
	// their predictions use the corrected history; costs bubbles, improves
	// accuracy (the paper's alternate design: +15% IPC, -25% mispredicts on
	// SPEC, but -3% IPC on Dhrystone).
	GHRRepairReplay
	// GHRNoRepair leaves stale bits in place entirely (ablation; strictly
	// worse, quantifying why history providers need repair at all).
	GHRNoRepair
)

func (p GHRPolicy) String() string {
	switch p {
	case GHRRepair:
		return "repair"
	case GHRRepairReplay:
		return "repair+replay"
	case GHRNoRepair:
		return "no-repair"
	}
	return "unknown"
}

// Options configure the generated management structures.
type Options struct {
	GHistBits     uint // global history register length (default 64)
	LocalEntries  int  // local history table rows (default 256)
	LocalHistBits uint // bits per local history (default 32)
	PathBits      uint // path history length (default 16)
	HFEntries     int  // history file capacity (default 32)
	GHRPolicy     GHRPolicy

	// Paranoid enables the invariant checker: after every pipeline operation
	// the history file, history providers, and metadata round-trips are
	// validated, and violations are recorded as structured errors (see
	// Violations).  Observation-only — predictions are unaffected.  Also
	// forced on by the COBRA_PARANOID environment variable (any value except
	// "" and "0"), so CI can sweep the whole test suite under checking.
	Paranoid bool

	// Wrap, when non-nil, decorates every instantiated sub-component before
	// it is wired into the pipeline (after validation).  The hook is how the
	// fault-injection layer (internal/faults) interposes on component signal
	// traffic without the composer importing it.
	Wrap func(pred.Subcomponent) pred.Subcomponent

	// Observer, when non-nil, receives a typed obs.Event for every pipeline
	// event: one record per sub-component for each predict, fire,
	// mispredict, repair, and update signal, plus one per squashed
	// history-file entry.  Mirrors Wrap: the sink is pluggable without the
	// composer knowing what consumes the stream.  Nil costs a single
	// pointer check per pipeline operation — the disabled path is the
	// exact pre-observability instruction sequence.
	Observer obs.Observer
}

func (o Options) withDefaults() Options {
	if o.GHistBits == 0 {
		o.GHistBits = 64
	}
	if o.LocalEntries == 0 {
		o.LocalEntries = 256
	}
	if o.LocalHistBits == 0 {
		o.LocalHistBits = 32
	}
	if o.PathBits == 0 {
		o.PathBits = 16
	}
	if o.HFEntries == 0 {
		o.HFEntries = 32
	}
	if v := os.Getenv("COBRA_PARANOID"); v != "" && v != "0" {
		o.Paranoid = true
	}
	return o
}

// Counters exposes the pipeline's event statistics.
type Counters struct {
	Queries     uint64
	Accepts     uint64
	ReAccepts   uint64
	HistRepairs uint64 // younger-preserving GHR reshifts (GHRRepair)
	Mispredicts uint64
	Commits     uint64
	Squashed    uint64 // entries squashed by mispredicts/redirects
	StaleEvents uint64 // resolve/commit calls on dead entries (model audit)
}

// pnode is an instantiated topology node.
type pnode struct {
	comp    pred.Subcomponent
	name    string
	lat     int
	inputs  []int // indices into Pipeline.nodes
	primary int   // inputs[0] or -1
}

// Pipeline is a complete COBRA-generated predictor pipeline: instantiated
// sub-components wired per the topology, plus generated history providers,
// history file, and repair state machine.  It is the drop-in unit a host
// core's fetch unit drives (§IV-C).
type Pipeline struct {
	Cfg  pred.Config
	Opt  Options
	Topo *Topology

	nodes   []*pnode
	rootIdx int
	depth   int

	Global *history.Global
	Local  *history.Local // nil when no component consumes local history
	PathH  *history.Path

	hf *historyFile
	C  Counters

	// paranoid-mode state (see paranoid.go).
	paranoid   bool
	violations []*InvariantError
	vioTotal   uint64

	// observability (see internal/obs): obsv mirrors Opt.Observer for the
	// hot-path nil checks; trackOps records each node's raw direction
	// opinion per slot into entries for per-provider H2P attribution.
	obsv     obs.Observer
	trackOps bool

	// scratch buffers reused across Predict calls.
	outs    [][]pred.Packet // per node, per stage: combined output packets
	ovl     []pred.Packet   // per node: the raw overlay it returned this query
	zeroPkt pred.Packet     // read-only all-empty packet
	metaOff []int           // per node: offset into the per-entry meta arena
	metaTot int

	// q and ev are the reusable signal payloads handed to sub-components
	// (passing a pointer into an interface method would otherwise heap-
	// allocate a fresh Query/Event per node per operation).  Components
	// receive them for the duration of one call only; none retain them,
	// which the conformance suite's alloc pins police indirectly.
	q  pred.Query
	ev pred.Event
}

// Resolution is the outcome of resolving one branch slot.
type Resolution struct {
	Mispredict bool
	DirMisp    bool // wrong direction (conditional branch)
	TgtMisp    bool // right direction, wrong/unknown target
	Redirect   uint64
}

// New builds a pipeline for the topology using the component registry.
func New(cfg pred.Config, topo *Topology, opt Options) (*Pipeline, error) {
	if !cfg.Valid() {
		return nil, fmt.Errorf("compose: invalid fetch geometry %+v", cfg)
	}
	opt = opt.withDefaults()
	p := &Pipeline{
		Cfg:    cfg,
		Opt:    opt,
		Topo:   topo,
		Global: history.NewGlobal(opt.GHistBits),
		PathH:  history.NewPath(opt.PathBits),
	}
	env := components.Env{Cfg: cfg, Global: p.Global}
	order := topo.Nodes() // inputs-first
	index := map[*Node]int{}
	usesLocal := false
	for _, n := range order {
		comp, err := components.Build(env, n.Name)
		if err != nil {
			return nil, err
		}
		if err := pred.Validate(comp); err != nil {
			return nil, err
		}
		if opt.Wrap != nil {
			comp = opt.Wrap(comp)
			if comp == nil {
				return nil, fmt.Errorf("compose: Options.Wrap returned nil for %s", n.Name)
			}
			if err := pred.Validate(comp); err != nil {
				return nil, fmt.Errorf("compose: wrapped %s: %w", n.Name, err)
			}
		}
		if comp.NumInputs() >= 2 && len(n.Inputs) != comp.NumInputs() {
			return nil, fmt.Errorf("compose: %s is an arbitration scheme needing %d inputs, topology provides %d",
				n.Name, comp.NumInputs(), len(n.Inputs))
		}
		if len(n.Inputs) > comp.NumInputs() {
			return nil, fmt.Errorf("compose: %s accepts %d predict_in edges, topology provides %d",
				n.Name, comp.NumInputs(), len(n.Inputs))
		}
		pn := &pnode{comp: comp, name: n.Name, lat: comp.Latency(), primary: -1}
		for _, in := range n.Inputs {
			pn.inputs = append(pn.inputs, index[in])
		}
		if len(pn.inputs) > 0 {
			pn.primary = pn.inputs[0]
		}
		index[n] = len(p.nodes)
		p.nodes = append(p.nodes, pn)
		if pn.lat > p.depth {
			p.depth = pn.lat
		}
		if lu, ok := comp.(interface{ UsesLocalHistory() bool }); ok && lu.UsesLocalHistory() {
			usesLocal = true
		}
	}
	p.rootIdx = index[topo.Root]
	if usesLocal {
		p.Local = history.NewLocal(opt.LocalEntries, opt.LocalHistBits, cfg.PktOff())
	}
	p.hf = newHistoryFile(opt.HFEntries, cfg.FetchWidth)
	p.outs = make([][]pred.Packet, len(p.nodes))
	for i := range p.outs {
		p.outs[i] = make([]pred.Packet, p.depth)
		for d := range p.outs[i] {
			p.outs[i][d] = make(pred.Packet, cfg.FetchWidth)
		}
	}
	p.ovl = make([]pred.Packet, len(p.nodes))
	p.zeroPkt = make(pred.Packet, cfg.FetchWidth)
	p.metaOff = make([]int, len(p.nodes))
	for i, n := range p.nodes {
		p.metaOff[i] = p.metaTot
		p.metaTot += n.comp.MetaWords()
	}
	p.paranoid = opt.Paranoid
	p.obsv = opt.Observer
	return p, nil
}

// Observer returns the attached event observer (nil when tracing is off);
// the host core uses it to emit frontend redirect records onto the same
// stream.
func (p *Pipeline) Observer() obs.Observer { return p.obsv }

// EnableOpinionTracking makes Predict record every node's own direction
// opinion per slot into the history-file entry, enabling SlotOpinions.
// Costs one byte copy per node per slot per prediction; off by default.
func (p *Pipeline) EnableOpinionTracking() { p.trackOps = true }

// SlotOpinions appends each sub-component's predict-time direction opinion
// for one slot of e's packet to dst (reusing its backing array) and returns
// it.  Empty unless EnableOpinionTracking was called before the prediction.
func (p *Pipeline) SlotOpinions(e *Entry, slot int, dst []obs.Opinion) []obs.Opinion {
	dst = dst[:0]
	if len(e.ops) == 0 || slot < 0 || slot >= p.Cfg.FetchWidth {
		return dst
	}
	for ni, n := range p.nodes {
		b := e.ops[ni*p.Cfg.FetchWidth+slot]
		dst = append(dst, obs.Opinion{Comp: n.name, DirValid: b&1 != 0, Taken: b&2 != 0})
	}
	return dst
}

// emit sends one typed record to the attached observer (caller checks
// p.obsv != nil so the disabled path never builds the event).
func (p *Pipeline) emit(kind obs.Kind, cycle uint64, e *Entry, comp string, slot, dur int, sum uint64) {
	ev := obs.Event{
		Cycle: cycle, PC: e.PC, Seq: e.seq, MetaSum: sum,
		Kind: kind, Slot: int16(slot), Dur: uint16(dur), Comp: comp,
	}
	p.obsv.Event(&ev)
}

// Depth is the pipeline depth (slowest component's latency).
func (p *Pipeline) Depth() int { return p.depth }

// Components returns the instantiated sub-components in topological order.
func (p *Pipeline) Components() []pred.Subcomponent {
	out := make([]pred.Subcomponent, len(p.nodes))
	for i, n := range p.nodes {
		out[i] = n.comp
	}
	return out
}

// Tick advances all component SRAM port accounting to cycle.
func (p *Pipeline) Tick(cycle uint64) {
	for _, n := range p.nodes {
		n.comp.Tick(cycle)
	}
	if p.Local != nil {
		p.Local.Tick(cycle)
	}
}

// Full reports whether the history file has no free entry (fetch must
// stall — FTQ backpressure).
func (p *Pipeline) Full() bool { return p.hf.full() }

// InFlight returns the number of live history file entries.
func (p *Pipeline) InFlight() int { return p.hf.count }

// Oldest returns the oldest in-flight entry (commit candidate), or nil.
func (p *Pipeline) Oldest() *Entry { return p.hf.oldest() }

// overlayInto writes over[i] applied on base[i] into dst (no allocation).
func overlayInto(dst, over, base pred.Packet) {
	for i := range dst {
		dst[i] = over[i].OverlayOn(base[i])
	}
}

// Predict issues the predict event for the fetch packet at pc (§III-E) and
// returns the allocated history-file entry plus the final prediction at
// every stage 1..Depth (stages[d-1] is what the pipeline redirects on d
// cycles after the query — the staged overriding of §IV-B).  Returns nil
// when the history file is full.
//
// The returned stage vector is owned by the entry: it stays valid until the
// entry dies (commit or squash) and its history-file slot is reallocated to
// a later prediction.  The frontend's fetch-packet window always drops its
// reference no later than that, so steady-state prediction allocates
// nothing once the ring's per-entry buffers are warm.
func (p *Pipeline) Predict(cycle uint64, pc uint64) (*Entry, []pred.Packet) {
	if p.hf.full() {
		return nil, nil
	}
	p.C.Queries++
	e := p.hf.alloc()
	e.PC = p.Cfg.PacketBase(pc)
	p.Global.SnapshotInto(&e.preSnap)
	e.prePath = p.PathH.Snapshot()
	e.ghistLow = p.Global.Bits(64)
	e.path = p.PathH.Bits()
	if p.Local != nil {
		e.lhist = p.Local.Read(e.PC)
	}
	if e.metas == nil {
		e.metas = make([][]uint64, len(p.nodes))
	}
	if e.metaBuf == nil {
		e.metaBuf = make([]uint64, p.metaTot)
	}

	graw := e.preSnap.Hist()
	for d := 1; d <= p.depth; d++ {
		for ni, n := range p.nodes {
			prim := p.zeroPkt
			if n.primary >= 0 {
				prim = p.outs[n.primary][d-1]
			}
			switch {
			case d < n.lat:
				copy(p.outs[ni][d-1], prim)
			case d == n.lat:
				q := &p.q
				q.Cycle, q.PC = cycle, e.PC
				q.GHist, q.GRaw, q.LHist, q.Path = 0, nil, 0, 0
				if n.lat >= 2 {
					// Histories arrive at the end of Fetch-1 (§III-B):
					// latency-1 components never see them.
					q.GHist = e.ghistLow
					q.GRaw = graw
					q.LHist = e.lhist
					q.Path = e.path
				}
				q.In = q.In[:0]
				for _, ii := range n.inputs {
					q.In = append(q.In, p.outs[ii][d-1])
				}
				resp := n.comp.Predict(q)
				// Persist the metadata in the entry's arena (components may
				// reuse their returned buffers on the next predict).
				dst := e.metaBuf[p.metaOff[ni] : p.metaOff[ni]+len(resp.Meta)]
				copy(dst, resp.Meta)
				e.metas[ni] = dst
				p.ovl[ni] = resp.Overlay
				overlayInto(p.outs[ni][d-1], resp.Overlay, prim)
				if p.obsv != nil {
					p.emit(obs.KPredict, cycle, e, n.name, -1, n.lat, obs.MetaSum(dst))
				}
			default:
				// d > lat: the component's own overlay stays pinned over the
				// refined input (monotone refinement, §III-A).
				overlayInto(p.outs[ni][d-1], p.ovl[ni], prim)
			}
		}
	}
	if len(e.stages) != p.depth {
		e.stages = make([]pred.Packet, p.depth)
		for d := range e.stages {
			e.stages[d] = make(pred.Packet, p.Cfg.FetchWidth)
		}
	}
	for d := 1; d <= p.depth; d++ {
		copy(e.stages[d-1], p.outs[p.rootIdx][d-1])
	}
	if p.trackOps {
		// Snapshot every node's raw overlay opinion per slot (the ovl
		// buffers are reused next query) for per-provider H2P attribution.
		need := len(p.nodes) * p.Cfg.FetchWidth
		if cap(e.ops) < need {
			e.ops = make([]uint8, need)
		}
		e.ops = e.ops[:need]
		for ni := range p.nodes {
			ovl := p.ovl[ni]
			for s := 0; s < p.Cfg.FetchWidth; s++ {
				var b uint8
				if s < len(ovl) && ovl[s].DirValid {
					b = 1
					if ovl[s].Taken {
						b |= 2
					}
				}
				e.ops[ni*p.Cfg.FetchWidth+s] = b
			}
		}
	}
	if p.paranoid {
		// Pin the §III-D round-trip contract: each component's blob must come
		// back verbatim with every later event for this prediction.
		e.metaSums = e.metaSums[:0]
		for ni := range p.nodes {
			e.metaSums = append(e.metaSums, metaSum(e.metas[ni]))
		}
		p.checkInvariants("Predict", cycle)
	}
	return e, e.stages
}

// event fills the pipeline's reusable §III-E event payload for entry e and
// node ni and returns it.  The payload is valid only for the duration of
// the one component call it is handed to.
func (p *Pipeline) event(cycle uint64, e *Entry, ni int) *pred.Event {
	p.ev = pred.Event{
		Cycle: cycle,
		PC:    e.PC,
		GHist: e.ghistLow,
		GRaw:  e.preSnap.Hist(),
		LHist: e.lhist,
		Path:  e.path,
		Meta:  e.metas[ni],
		Slots: e.Slots,
	}
	return &p.ev
}

// Accept installs the frontend's accepted view of the packet (initially the
// stage-1 prediction) and performs the speculative state updates: local and
// global history shifts for each predicted branch, path history, and the
// fire event to every sub-component (§III-E).
func (p *Pipeline) Accept(cycle uint64, e *Entry, used pred.Packet, slots []pred.SlotInfo, cfiIdx int, nextPC uint64) {
	p.C.Accepts++
	e.Used = used
	copy(e.Slots, slots)
	for i := range e.Slots {
		e.Slots[i].PredTaken = e.Slots[i].Taken
	}
	e.CfiIdx = cfiIdx
	e.NextPC = nextPC
	p.fire(cycle, e, true)
	p.checkInvariants("Accept", cycle)
}

// fire performs the speculative updates for e's current view.  shiftGlobal
// is false only for the GHRNoRepair re-accept path, which deliberately
// leaves stale bits in the global history.
func (p *Pipeline) fire(cycle uint64, e *Entry, shiftGlobal bool) {
	end := p.Cfg.FetchWidth - 1
	if e.CfiIdx >= 0 && e.CfiIdx < end {
		end = e.CfiIdx
	}
	e.shifts = e.shifts[:0]
	for i := 0; i <= end; i++ {
		s := e.Slots[i]
		if !s.Valid || !s.IsBranch {
			continue
		}
		if p.Local != nil {
			old := p.Local.SpecUpdate(s.PC, s.Taken)
			e.lhistSaves = append(e.lhistSaves, lhistSave{pc: s.PC, old: old})
		}
		if shiftGlobal {
			p.Global.Shift(s.Taken)
			e.shifts = append(e.shifts, s.Taken)
		}
	}
	if shiftGlobal && e.CfiIdx >= 0 && e.Slots[e.CfiIdx].Valid && e.Slots[e.CfiIdx].Taken {
		p.PathH.Shift(e.NextPC, p.Cfg.InstOff())
	}
	for ni, n := range p.nodes {
		n.comp.Fire(p.event(cycle, e, ni))
		if p.obsv != nil {
			p.emit(obs.KFire, cycle, e, n.name, e.CfiIdx, 0, obs.MetaSum(e.metas[ni]))
		}
	}
	e.fired = true
}

// unfire reverses e's speculative updates: repair events to every component
// (restoring loop/local component state from metadata) and local-history
// restore, in reverse order.  The global history register is restored by the
// caller via snapshots.
func (p *Pipeline) unfire(cycle uint64, e *Entry) {
	if !e.fired {
		return
	}
	for ni, n := range p.nodes {
		n.comp.Repair(p.event(cycle, e, ni))
		if p.obsv != nil {
			p.emit(obs.KRepair, cycle, e, n.name, e.CfiIdx, 0, obs.MetaSum(e.metas[ni]))
		}
	}
	for i := len(e.lhistSaves) - 1; i >= 0; i-- {
		sv := e.lhistSaves[i]
		p.Local.Restore(sv.pc, sv.old)
	}
	e.lhistSaves = e.lhistSaves[:0]
	e.fired = false
}

// squashYounger removes every entry younger than e, running the repair walk
// (youngest first, so local history restores compose to the oldest saved
// values — equivalent to the paper's forwards-walk restore).
func (p *Pipeline) squashYounger(cycle uint64, e *Entry) {
	for {
		y := p.hf.youngest()
		if y == nil || y.seq <= e.seq {
			return
		}
		p.unfire(cycle, y)
		p.hf.popYoungest()
		p.C.Squashed++
		if p.obsv != nil {
			p.emit(obs.KSquash, cycle, y, "", -1, 0, 0)
		}
	}
}

// ReAccept refines the accepted view of in-flight entry e when a deeper
// stage (or pre-decode) responds.  squashYounger=true is the redirect path
// (next-PC changed, or GHRRepairReplay forcing a fetch replay): younger
// entries are squashed and must be refetched.  With squashYounger=false the
// behaviour follows the pipeline's GHRPolicy: GHRRepair rewrites the
// speculative history beneath the surviving younger entries; GHRNoRepair
// leaves the stale bits.
func (p *Pipeline) ReAccept(cycle uint64, e *Entry, used pred.Packet, slots []pred.SlotInfo, cfiIdx int, nextPC uint64, squashYounger bool) {
	p.C.ReAccepts++
	if squashYounger {
		p.squashYounger(cycle, e)
	}
	p.unfire(cycle, e)
	repairGlobal := squashYounger || p.Opt.GHRPolicy != GHRNoRepair
	if repairGlobal {
		p.Global.Restore(e.preSnap)
		p.PathH.Restore(e.prePath)
	}
	e.Used = used
	copy(e.Slots, slots)
	for i := range e.Slots {
		e.Slots[i].PredTaken = e.Slots[i].Taken
	}
	e.CfiIdx = cfiIdx
	e.NextPC = nextPC
	p.fire(cycle, e, repairGlobal)
	if repairGlobal && !squashYounger {
		// Younger entries' speculative bits were wiped by the restore;
		// re-shift them on top of the corrected contribution (the repair-
		// without-replay design: their *predictions* stay stale, their
		// history bits are preserved).
		p.C.HistRepairs++
		p.hf.forwardFrom(e, func(y *Entry) {
			p.Global.SnapshotInto(&y.preSnap)
			y.prePath = p.PathH.Snapshot()
			for _, b := range y.shifts {
				p.Global.Shift(b)
			}
			if y.CfiIdx >= 0 && y.Slots[y.CfiIdx].Valid && y.Slots[y.CfiIdx].Taken {
				p.PathH.Shift(y.NextPC, p.Cfg.InstOff())
			}
		})
	}
	p.checkInvariants("ReAccept", cycle)
}

// Resolve records the execution outcome of the branch in e's slot and, on a
// misprediction, runs the full repair sequence: squash younger entries
// (forwards-walk repair), restore histories, re-fire this packet's corrected
// contribution, and deliver the fast mispredict event to every component.
func (p *Pipeline) Resolve(cycle uint64, e *Entry, slot int, taken bool, target uint64) Resolution {
	if !e.valid {
		p.C.StaleEvents++
		return Resolution{}
	}
	s := &e.Slots[slot]
	predTaken := s.PredTaken
	dirMisp := s.IsBranch && predTaken != taken
	tgtMisp := false
	if taken && !dirMisp {
		// Predicted taken: the accepted next PC must match the real target.
		tgtMisp = e.CfiIdx != slot || e.NextPC != target
	}
	s.Taken = taken
	s.Target = target
	misp := dirMisp || tgtMisp
	s.Mispredicted = misp
	if !misp {
		p.checkInvariants("Resolve", cycle)
		return Resolution{}
	}
	p.C.Mispredicts++
	p.squashYounger(cycle, e)
	p.unfire(cycle, e)
	p.Global.Restore(e.preSnap)
	p.PathH.Restore(e.prePath)
	// Truncate the packet at the resolved branch: younger slots were either
	// never fetched (predicted taken) or are now wrong-path (predicted
	// not-taken, actually taken).
	for i := slot + 1; i < len(e.Slots); i++ {
		e.Slots[i] = pred.SlotInfo{}
	}
	e.CfiIdx = slot
	if taken {
		e.NextPC = target
	} else {
		e.NextPC = s.PC + uint64(p.Cfg.InstBytes)
	}
	p.fire(cycle, e, true)
	for ni, n := range p.nodes {
		n.comp.Mispredict(p.event(cycle, e, ni))
		if p.obsv != nil {
			p.emit(obs.KMispredict, cycle, e, n.name, slot, 0, obs.MetaSum(e.metas[ni]))
		}
	}
	p.checkInvariants("Resolve", cycle)
	return Resolution{
		Mispredict: true,
		DirMisp:    dirMisp,
		TgtMisp:    tgtMisp,
		Redirect:   e.NextPC,
	}
}

// Commit retires the oldest entry: commit-time update events to every
// component (§III-E), then dequeue (§IV-B.1).
func (p *Pipeline) Commit(cycle uint64, e *Entry) {
	if !e.valid {
		p.C.StaleEvents++
		return
	}
	if p.hf.oldest() != e {
		panic("compose: Commit on non-oldest history file entry")
	}
	for ni, n := range p.nodes {
		n.comp.Update(p.event(cycle, e, ni))
		if p.obsv != nil {
			p.emit(obs.KUpdate, cycle, e, n.name, e.CfiIdx, 0, obs.MetaSum(e.metas[ni]))
		}
	}
	p.hf.dequeue()
	p.C.Commits++
	p.checkInvariants("Commit", cycle)
}

// SquashAll drops every in-flight entry (pipeline flush, e.g. exception).
func (p *Pipeline) SquashAll(cycle uint64) {
	if p.hf.empty() {
		return
	}
	oldest := p.hf.oldest()
	p.squashYounger(cycle, oldest)
	p.unfire(cycle, oldest)
	p.Global.Restore(oldest.preSnap)
	p.PathH.Restore(oldest.prePath)
	p.hf.popYoungest()
	p.C.Squashed++
	if p.obsv != nil {
		p.emit(obs.KSquash, cycle, oldest, "", -1, 0, 0)
	}
	p.checkInvariants("SquashAll", cycle)
}

// Reset returns the pipeline and all components to power-on state.
func (p *Pipeline) Reset() {
	for _, n := range p.nodes {
		n.comp.Reset()
	}
	p.Global.Reset()
	p.PathH.Reset()
	if p.Local != nil {
		p.Local.Reset()
	}
	p.hf = newHistoryFile(p.Opt.HFEntries, p.Cfg.FetchWidth)
	p.C = Counters{}
	p.violations = nil
	p.vioTotal = 0
}

// ComponentBudgets returns each sub-component's storage, keyed by node name.
func (p *Pipeline) ComponentBudgets() map[string]sram.Budget {
	out := make(map[string]sram.Budget, len(p.nodes))
	for _, n := range p.nodes {
		out[n.name] = n.comp.Budget()
	}
	return out
}

// ManagementBudget returns the storage of the generated management
// structures (§IV-B.1): history providers plus the history file, the "Meta"
// bars of Fig. 8.
func (p *Pipeline) ManagementBudget() sram.Budget {
	b := p.Global.Budget()
	b = b.Add(p.PathH.Budget())
	if p.Local != nil {
		b = b.Add(p.Local.Budget())
	}
	// History file: per entry, the global snapshot (register + folds), path
	// and local histories, metadata words, per-slot prediction state, and
	// the PC/seq bookkeeping.
	snapBits := p.Global.Budget().FlopBits
	metaBits := 0
	for _, n := range p.nodes {
		metaBits += n.comp.MetaWords() * 64
	}
	perSlot := p.Cfg.FetchWidth * (2 + 40 + 8)
	entryBits := snapBits + int(p.Opt.PathBits) + int(p.Opt.LocalHistBits) + metaBits + perSlot + 64
	b.Mems = append(b.Mems, sram.Spec{
		Name:       "history_file",
		Entries:    p.Opt.HFEntries,
		Width:      entryBits,
		ReadPorts:  1,
		WritePorts: 1,
	})
	return b
}
