package compose

import "testing"

func newHF(n int) *historyFile { return newHistoryFile(n, 4) }

func TestHistoryFileRing(t *testing.T) {
	hf := newHF(4)
	if !hf.empty() || hf.full() {
		t.Fatal("fresh ring state wrong")
	}
	var es []*Entry
	for i := 0; i < 4; i++ {
		es = append(es, hf.alloc())
	}
	if !hf.full() {
		t.Fatal("ring should be full")
	}
	if hf.oldest() != es[0] || hf.youngest() != es[3] {
		t.Fatal("oldest/youngest wrong")
	}
	hf.dequeue()
	if es[0].Valid() {
		t.Error("dequeued entry still valid")
	}
	if hf.oldest() != es[1] {
		t.Error("head did not advance")
	}
	// Reuse the freed slot; sequence numbers stay monotonic.
	e5 := hf.alloc()
	if e5.Seq() <= es[3].Seq() {
		t.Error("sequence numbers must be monotonic")
	}
	if e5.idx != es[0].idx {
		t.Error("freed ring slot not reused")
	}
}

func TestHistoryFilePopYoungest(t *testing.T) {
	hf := newHF(4)
	a := hf.alloc()
	b := hf.alloc()
	hf.popYoungest()
	if b.Valid() {
		t.Error("popped entry still valid")
	}
	if hf.youngest() != a {
		t.Error("youngest after pop wrong")
	}
}

func TestHistoryFileWalks(t *testing.T) {
	hf := newHF(8)
	var es []*Entry
	for i := 0; i < 5; i++ {
		es = append(es, hf.alloc())
	}
	pivot := es[1]

	// youngerThan: youngest first, strictly younger.
	var seen []uint64
	hf.youngerThan(pivot, func(e *Entry) { seen = append(seen, e.Seq()) })
	if len(seen) != 3 || seen[0] != es[4].Seq() || seen[2] != es[2].Seq() {
		t.Errorf("youngerThan order = %v", seen)
	}

	// forwardFrom: oldest first, strictly younger.
	seen = seen[:0]
	hf.forwardFrom(pivot, func(e *Entry) { seen = append(seen, e.Seq()) })
	if len(seen) != 3 || seen[0] != es[2].Seq() || seen[2] != es[4].Seq() {
		t.Errorf("forwardFrom order = %v", seen)
	}

	if got := hf.countYoungerThan(pivot); got != 3 {
		t.Errorf("countYoungerThan = %d", got)
	}
	if got := hf.countYoungerThan(es[4]); got != 0 {
		t.Errorf("countYoungerThan(youngest) = %d", got)
	}
}

func TestHistoryFileWrapAroundWalks(t *testing.T) {
	hf := newHF(4)
	for i := 0; i < 4; i++ {
		hf.alloc()
	}
	hf.dequeue()
	hf.dequeue()
	a := hf.alloc() // wraps physically
	b := hf.alloc()
	var seen []uint64
	hf.forwardFrom(hf.oldest(), func(e *Entry) { seen = append(seen, e.Seq()) })
	if len(seen) != 3 || seen[1] != a.Seq() || seen[2] != b.Seq() {
		t.Errorf("wrap-around walk order = %v", seen)
	}
}

func TestHistoryFilePanics(t *testing.T) {
	hf := newHF(2)
	for _, fn := range []func(){hf.dequeue, hf.popYoungest} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("empty-ring operation must panic")
				}
			}()
			fn()
		}()
	}
}

func TestEntryRecycleClearsState(t *testing.T) {
	hf := newHF(2)
	e := hf.alloc()
	e.Slots[1].Valid = true
	e.shifts = append(e.shifts, true, false)
	e.lhistSaves = append(e.lhistSaves, lhistSave{pc: 1, old: 2})
	hf.alloc()
	hf.dequeue()
	hf.dequeue()
	e2 := hf.alloc() // head wrapped back onto e's physical slot
	if e2.idx != e.idx {
		t.Fatal("expected slot reuse")
	}
	if e2.Slots[1].Valid || len(e2.shifts) != 0 || len(e2.lhistSaves) != 0 {
		t.Error("recycled entry leaked prior state")
	}
	if e2.CfiIdx != -1 {
		t.Error("CfiIdx not reset")
	}
}
