package compose

import (
	"math/rand"
	"reflect"
	"testing"

	"cobra/internal/pred"
)

// TestSquashedWrongPathIsInvisible is the repair property test: pipeline A
// and pipeline B receive identical correct-path traffic, but A additionally
// fetches wrong-path packets after mispredicted branches — exactly what a
// speculative frontend does — which the misprediction resolution then
// squashes.  Under the repairing GHR policies, every post-repair prediction
// of A must be byte-identical to B's: squash + repair leaves no trace of the
// wrong path in any component, history register, or management structure.
// The paranoid checker rides along on both pipelines.
func TestSquashedWrongPathIsInvisible(t *testing.T) {
	designs := []struct {
		name string
		topo string
		opt  Options
	}{
		{"b2", "GTAG3 > BTB2 > BIM2", Options{GHistBits: 16}},
		{"tourney", "TOURNEY3 > [GBIM2 > BTB2, LBIM2]",
			Options{GHistBits: 32, LocalEntries: 256, LocalHistBits: 32}},
		{"tage-l", "LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1", Options{GHistBits: 64}},
	}
	for _, d := range designs {
		for _, pol := range []GHRPolicy{GHRRepair, GHRRepairReplay} {
			t.Run(d.name+"/"+pol.String(), func(t *testing.T) {
				optA := d.opt
				optA.GHRPolicy = pol
				optA.Paranoid = true
				optB := optA
				a, err := New(pred.DefaultConfig(), MustParse(d.topo), optA)
				if err != nil {
					t.Fatal(err)
				}
				b, err := New(pred.DefaultConfig(), MustParse(d.topo), optB)
				if err != nil {
					t.Fatal(err)
				}

				rng := rand.New(rand.NewSource(31))
				var cycle uint64
				tick := func() {
					cycle++
					a.Tick(cycle)
					b.Tick(cycle)
				}
				// predictBoth fetches the same packet on both pipelines and
				// asserts the full per-stage prediction output is identical.
				predictBoth := func(pc uint64) (*Entry, *Entry, pred.Packet) {
					ea, sa := a.Predict(cycle, pc)
					eb, sb := b.Predict(cycle, pc)
					if (ea == nil) != (eb == nil) {
						t.Fatalf("cycle %d: stall divergence (A=%v B=%v)", cycle, ea != nil, eb != nil)
					}
					if ea == nil {
						return nil, nil, nil
					}
					if !reflect.DeepEqual(sa, sb) {
						t.Fatalf("cycle %d pc %#x: predictions diverged after squash\nA: %+v\nB: %+v",
							cycle, pc, sa, sb)
					}
					return ea, eb, sa[len(sa)-1]
				}
				accept := func(p *Pipeline, e *Entry, final pred.Packet, predTaken bool) {
					slots := make([]pred.SlotInfo, p.Cfg.FetchWidth)
					slots[0] = pred.SlotInfo{Valid: true, IsBranch: true,
						Taken: predTaken, PredTaken: predTaken, PC: e.PC}
					next := p.Cfg.PacketBase(e.PC) + uint64(p.Cfg.PktBytes())
					cfi := -1
					if predTaken {
						cfi, next = 0, 0x8000
					}
					p.Accept(cycle, e, final, slots, cfi, next)
				}
				drain := func() {
					for a.InFlight() > 0 {
						a.Commit(cycle, a.Oldest())
					}
					for b.InFlight() > 0 {
						b.Commit(cycle, b.Oldest())
					}
				}

				for step := 0; step < 250; step++ {
					tick()
					pc := uint64(0x1000 + rng.Intn(48)*16)
					ea, eb, final := predictBoth(pc)
					if ea == nil {
						continue
					}
					predTaken := final[0].DirValid && final[0].Taken
					accept(a, ea, final, predTaken)
					accept(b, eb, final, predTaken)

					mispredict := rng.Intn(3) == 0
					if mispredict {
						// A alone fetches 1-2 wrong-path packets down the
						// predicted (wrong) path; they shift history and fire
						// speculative component state that the squash must undo.
						for w, n := 0, 1+rng.Intn(2); w < n; w++ {
							tick()
							wpc := uint64(0x8000 + rng.Intn(16)*16)
							if ew, sw := a.Predict(cycle, wpc); ew != nil {
								wt := rng.Intn(2) == 0
								slots := make([]pred.SlotInfo, a.Cfg.FetchWidth)
								slots[0] = pred.SlotInfo{Valid: true, IsBranch: true,
									Taken: wt, PredTaken: wt, PC: ew.PC}
								next := a.Cfg.PacketBase(wpc) + uint64(a.Cfg.PktBytes())
								cfi := -1
								if wt {
									cfi, next = 0, 0x9000
								}
								a.Accept(cycle, ew, sw[len(sw)-1], slots, cfi, next)
							}
						}
					}
					// Resolve the branch with the same actual outcome on both:
					// a mispredict squashes A's wrong-path entries and repairs.
					tick()
					actual := predTaken != mispredict // flip direction to force the mispredict
					target := uint64(0x8000)
					a.Resolve(cycle, ea, 0, actual, target)
					b.Resolve(cycle, eb, 0, actual, target)
					tick()
					drain()
					if af, bf := a.InFlight(), b.InFlight(); af != 0 || bf != 0 {
						t.Fatalf("cycle %d: pipelines not drained (A=%d B=%d)", cycle, af, bf)
					}
				}
				for name, p := range map[string]*Pipeline{"A": a, "B": b} {
					if n := p.ViolationCount(); n != 0 {
						t.Fatalf("pipeline %s: %d invariant violations; first: %v",
							name, n, p.Violations()[0])
					}
				}
			})
		}
	}
}
