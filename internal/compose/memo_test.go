package compose

import (
	"fmt"
	"sync"
	"testing"
)

// TestParseTopologyCached pins the memo contract: same string → same parse
// tree pointer, different strings → different trees, errors not cached.
func TestParseTopologyCached(t *testing.T) {
	const topo = "LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1"
	a, err := ParseTopologyCached(topo)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseTopologyCached(topo)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same topology string parsed to distinct memoized trees")
	}
	c, err := ParseTopologyCached("BIM2 > UBTB1")
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("distinct topology strings share a memo entry")
	}
	if _, err := ParseTopologyCached("NOSUCH9 >"); err == nil {
		t.Error("invalid topology parsed without error")
	}
}

// TestGeometryForConcurrent hammers one key from many goroutines: every
// caller must observe the same retained Geometry even when builders race.
func TestGeometryForConcurrent(t *testing.T) {
	key := fmt.Sprintf("test\x00%s", t.Name())
	const n = 16
	got := make([]*Geometry, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g, err := GeometryFor(key, func() (*Geometry, error) {
				topo, err := ParseTopology("BIM2 > UBTB1")
				if err != nil {
					return nil, err
				}
				return &Geometry{Topo: topo}, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = g
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if got[i] != got[0] {
			t.Fatalf("caller %d observed a different Geometry than caller 0", i)
		}
	}
}
