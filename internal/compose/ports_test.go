package compose

import (
	"testing"

	"cobra/internal/sram"
)

// TestPortDiscipline audits the §III-D claim: with the metadata round-trip,
// every counter-table-class memory sustains full throughput — one predict
// and one update per cycle — within a 1R1W port budget.  The memories
// panic on port overuse when CheckPorts is set, so simply running the
// pipeline in strict mode is the assertion.
//
// The BTB is excluded: its update path legitimately re-checks the tag (a
// real second read hardware pays for, or pipelines around); the components
// whose §III-D story is "metadata avoids the second read" are the counter
// tables, GTAG, TAGE, the tournament selector, and the corrector.
func TestPortDiscipline(t *testing.T) {
	for _, topo := range []string{
		"TAGE3 > GTAG3 > BIM2",
		"SCOR3 > GBIM2 > BIM2",
		"TOURNEY3 > [GBIM2, LBIM2]",
	} {
		p := mustPipeline(t, topo, Options{GHistBits: 64})
		for _, comp := range p.Components() {
			mp, ok := comp.(interface{ Mems() []*sram.Mem })
			if !ok {
				continue
			}
			for _, m := range mp.Mems() {
				m.CheckPorts = true
			}
		}
		cycle := uint64(0)
		tick := func() {
			cycle++
			p.Tick(cycle)
		}
		for i := 0; i < 2000; i++ {
			pc := uint64(0x1000 + (i%128)*16)
			tick()
			e, stages := p.Predict(cycle, pc)
			if e == nil {
				t.Fatal("stall")
			}
			taken := i%3 == 0
			slots := brSlots(p, pc, map[int]bool{i % 4: taken})
			cfi := -1
			next := p.Cfg.PacketBase(pc) + uint64(p.Cfg.PktBytes())
			if taken {
				cfi = i % 4
				next = 0x9000
			}
			p.Accept(cycle, e, stages[p.Depth()-1], slots, cfi, next)
			tick()
			p.Resolve(cycle, e, i%4, i%5 == 0, 0x9000)
			tick()
			p.Commit(cycle, e)
		}
		// Confirm the audit had teeth: the memories saw real traffic.
		for _, comp := range p.Components() {
			mp, ok := comp.(interface{ Mems() []*sram.Mem })
			if !ok {
				continue
			}
			for _, m := range mp.Mems() {
				if m.TotalReads == 0 {
					t.Errorf("%s: %s never read; audit vacuous", topo, m.Spec().Name)
				}
			}
		}
	}
}

// TestPortPressureReported confirms the non-strict mode records worst-case
// port pressure for the area report instead of panicking.
func TestPortPressureReported(t *testing.T) {
	p := mustPipeline(t, "BIM2", Options{})
	var mem *sram.Mem
	for _, comp := range p.Components() {
		if mp, ok := comp.(interface{ Mems() []*sram.Mem }); ok {
			mem = mp.Mems()[0]
		}
	}
	// Two predicts in the same tick: 2 reads on a 1R memory — tolerated,
	// recorded.
	p.Tick(1)
	e1, s1 := p.Predict(1, 0x1000)
	p.Accept(1, e1, s1[0], brSlots(p, 0x1000, nil), -1, 0x1010)
	e2, s2 := p.Predict(1, 0x2000)
	p.Accept(1, e2, s2[0], brSlots(p, 0x2000, nil), -1, 0x2010)
	if mem.MaxReadsPerCycle < 2 {
		t.Errorf("MaxReadsPerCycle = %d, want >= 2", mem.MaxReadsPerCycle)
	}
}
