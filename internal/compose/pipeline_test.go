package compose

import (
	"fmt"
	"testing"

	"cobra/internal/components"
	"cobra/internal/pred"
	"cobra/internal/sram"
)

// ---- controllable fake components for composition-semantics tests ----

// fakeCtl configures fake component behaviour, keyed by node name.
var fakeCtl = struct {
	hit   map[string]pred.Pred // overlay asserted at slot 0 when present
	ghist map[string]uint64    // GHist seen at last predict
	log   []string             // event trace "name:event:meta0"
}{hit: map[string]pred.Pred{}, ghist: map[string]uint64{}}

func resetFakes() {
	fakeCtl.hit = map[string]pred.Pred{}
	fakeCtl.ghist = map[string]uint64{}
	fakeCtl.log = nil
}

type fakeComp struct {
	name string
	lat  int
	cfg  pred.Config
}

func (f *fakeComp) Name() string   { return f.name }
func (f *fakeComp) Latency() int   { return f.lat }
func (f *fakeComp) MetaWords() int { return 1 }
func (f *fakeComp) NumInputs() int { return 1 }

func (f *fakeComp) Predict(q *pred.Query) pred.Response {
	fakeCtl.ghist[f.name] = q.GHist
	overlay := make(pred.Packet, f.cfg.FetchWidth)
	if p, ok := fakeCtl.hit[f.name]; ok {
		p.DirProvider, p.TgtProvider = "", ""
		if p.DirValid {
			p.DirProvider = f.name
		}
		if p.TgtValid {
			p.TgtProvider = f.name
		}
		overlay[0] = p
	}
	return pred.Response{Overlay: overlay, Meta: []uint64{uint64(len(f.name))*1000 + uint64(f.lat)}}
}

func (f *fakeComp) logEvent(kind string, e *pred.Event) {
	fakeCtl.log = append(fakeCtl.log, fmt.Sprintf("%s:%s:%d", f.name, kind, e.Meta[0]))
}

func (f *fakeComp) Fire(e *pred.Event)       { f.logEvent("fire", e) }
func (f *fakeComp) Mispredict(e *pred.Event) { f.logEvent("mispredict", e) }
func (f *fakeComp) Repair(e *pred.Event)     { f.logEvent("repair", e) }
func (f *fakeComp) Update(e *pred.Event)     { f.logEvent("update", e) }
func (f *fakeComp) Reset()                   {}
func (f *fakeComp) Tick(uint64)              {}
func (f *fakeComp) Budget() sram.Budget      { return sram.Budget{FlopBits: 1} }

func init() {
	// TSTA1/TSTB2/TSTC3... fake components with the latency suffix.
	for _, base := range []string{"TSTA", "TSTB", "TSTC"} {
		components.Register(base, func(env components.Env, name string, latency, size int) (pred.Subcomponent, error) {
			if latency == 0 {
				latency = 1
			}
			return &fakeComp{name: name, lat: latency, cfg: env.Cfg}, nil
		})
	}
}

// ---- helpers ----

func mustPipeline(t *testing.T, topo string, opt Options) *Pipeline {
	t.Helper()
	p, err := New(pred.DefaultConfig(), MustParse(topo), opt)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// brSlots builds a slot vector with conditional branches at the given slots
// and predicted directions.
func brSlots(p *Pipeline, pc uint64, dirs map[int]bool) []pred.SlotInfo {
	s := make([]pred.SlotInfo, p.Cfg.FetchWidth)
	for slot, taken := range dirs {
		s[slot] = pred.SlotInfo{
			Valid: true, IsBranch: true, Taken: taken,
			PC: p.Cfg.SlotPC(pc, slot),
		}
	}
	return s
}

// ---- §IV-A worked example: ordering changes the stage-2 prediction ----

func TestOrderingSemantics_PaperExample(t *testing.T) {
	// LOOP2 > PHT2 > uBTB1 (topology 1) vs uBTB1 > PHT2 > LOOP2
	// (topology 2) from §IV-A, built from controllable fakes:
	// TSTA1 = uBTB (latency 1), TSTB2 = PHT, TSTC2 = LOOP.
	const (
		ubtb = "TSTA1"
		pht  = "TSTB2"
		loop = "TSTC2"
	)
	takenTo := func(tgt uint64) pred.Pred {
		return pred.Pred{DirValid: true, Taken: true, TgtValid: true, Target: tgt, IsCFI: true}
	}
	notTaken := pred.Pred{DirValid: true, Taken: false}

	run := func(topo string) []pred.Packet {
		resetFakes()
		fakeCtl.hit[ubtb] = takenTo(0x100)
		fakeCtl.hit[pht] = notTaken
		// loop predictor misses (no entry in fakeCtl.hit).
		p := mustPipeline(t, topo, Options{})
		_, stages := p.Predict(0, 0x1000)
		return stages
	}

	// Topology 1: PHT overrides the uBTB; loop would override both.
	s1 := run("TSTC2 > TSTB2 > TSTA1")
	if !s1[0][0].Taken || s1[0][0].Target != 0x100 {
		t.Errorf("topology 1 stage 1 should be the uBTB hit: %+v", s1[0][0])
	}
	if s1[1][0].Taken {
		t.Errorf("topology 1 stage 2: PHT must override uBTB with not-taken: %+v", s1[1][0])
	}

	// Topology 2: the uBTB hit is final; PHT cannot override.
	s2 := run("TSTA1 > TSTB2 > TSTC2")
	if !s2[0][0].Taken {
		t.Errorf("topology 2 stage 1 should be taken: %+v", s2[0][0])
	}
	if !s2[1][0].Taken || s2[1][0].Target != 0x100 {
		t.Errorf("topology 2 stage 2: uBTB hit must pin the prediction: %+v", s2[1][0])
	}
}

func TestOrderingSemantics_LoopWins(t *testing.T) {
	resetFakes()
	fakeCtl.hit["TSTA1"] = pred.Pred{DirValid: true, Taken: true}
	fakeCtl.hit["TSTB2"] = pred.Pred{DirValid: true, Taken: false}
	fakeCtl.hit["TSTC2"] = pred.Pred{DirValid: true, Taken: true}
	p := mustPipeline(t, "TSTC2 > TSTB2 > TSTA1", Options{})
	_, stages := p.Predict(0, 0x1000)
	if !stages[1][0].Taken || stages[1][0].DirProvider != "TSTC2" {
		t.Errorf("loop predictor should win at stage 2: %+v", stages[1][0])
	}
}

func TestPassThroughCarriesEarlierPrediction(t *testing.T) {
	// Neither 2-cycle component hits: the stage-1 prediction is
	// "automatically carried over to cycle 2" (§IV-A).
	resetFakes()
	fakeCtl.hit["TSTA1"] = pred.Pred{DirValid: true, Taken: true, TgtValid: true, Target: 0x40, IsCFI: true}
	p := mustPipeline(t, "TSTC2 > TSTB2 > TSTA1", Options{})
	_, stages := p.Predict(0, 0x1000)
	if stages[1][0] != stages[0][0] {
		t.Errorf("stage 2 must carry the stage-1 prediction:\n s1=%+v\n s2=%+v",
			stages[0][0], stages[1][0])
	}
}

func TestMonotoneRefinement(t *testing.T) {
	// Once a component responds at stage p, its contribution persists at all
	// d > p (§III-A): build a 3-deep pipeline and check stage 2 and 3.
	resetFakes()
	fakeCtl.hit["TSTB2"] = pred.Pred{DirValid: true, Taken: false}
	p := mustPipeline(t, "TSTC3 > TSTB2 > TSTA1", Options{})
	_, stages := p.Predict(0, 0x1000)
	if len(stages) != 3 {
		t.Fatalf("depth = %d", len(stages))
	}
	if !stages[1][0].DirValid || stages[1][0].Taken {
		t.Errorf("stage 2 should be PHT not-taken: %+v", stages[1][0])
	}
	if !stages[2][0].DirValid || stages[2][0].Taken {
		t.Errorf("stage 3 must keep PHT's prediction (TSTC3 missed): %+v", stages[2][0])
	}
}

// ---- interface contract enforcement ----

func TestLatency1GetsNoHistory(t *testing.T) {
	resetFakes()
	p := mustPipeline(t, "TSTB2 > TSTA1", Options{})
	// Put bits in the global history.
	for i := 0; i < 10; i++ {
		p.Global.Shift(true)
	}
	p.Predict(0, 0x1000)
	if fakeCtl.ghist["TSTA1"] != 0 {
		t.Errorf("latency-1 component saw history %#x; §III-B forbids it", fakeCtl.ghist["TSTA1"])
	}
	if fakeCtl.ghist["TSTB2"] == 0 {
		t.Error("latency-2 component should have seen history")
	}
}

func TestMetadataRoundTrip(t *testing.T) {
	resetFakes()
	p := mustPipeline(t, "TSTB2 > TSTA1", Options{})
	e, stages := p.Predict(0, 0x1000)
	p.Accept(0, e, stages[0], brSlots(p, 0x1000, map[int]bool{0: true}), 0, 0x2000)
	res := p.Resolve(1, e, 0, false, 0) // mispredict: predicted taken, was not
	if !res.Mispredict {
		t.Fatal("expected mispredict")
	}
	p.Commit(2, e)
	// Every event must carry the exact metadata from predict time:
	// TSTA1 meta = 5*1000+1 = 5001, TSTB2 meta = 5*1000+2 = 5002.
	wantEvents := map[string]bool{
		"TSTA1:fire:5001": true, "TSTB2:fire:5002": true,
		"TSTA1:repair:5001": true, "TSTB2:repair:5002": true,
		"TSTA1:mispredict:5001": true, "TSTB2:mispredict:5002": true,
		"TSTA1:update:5001": true, "TSTB2:update:5002": true,
	}
	seen := map[string]bool{}
	for _, l := range fakeCtl.log {
		seen[l] = true
	}
	for ev := range wantEvents {
		if !seen[ev] {
			t.Errorf("missing event with round-tripped metadata: %s (log: %v)", ev, fakeCtl.log)
		}
	}
}

func TestArbitrationArityEnforced(t *testing.T) {
	// TOURNEY requires exactly two inputs.
	if _, err := New(pred.DefaultConfig(), MustParse("TOURNEY3 > BIM2"), Options{}); err == nil {
		t.Error("tournament with one input must be rejected")
	}
	if _, err := New(pred.DefaultConfig(), MustParse("BIM2 > [GBIM2, LBIM2]"), Options{}); err == nil {
		t.Error("single-input component with two edges must be rejected")
	}
}

func TestUnknownComponentRejected(t *testing.T) {
	if _, err := New(pred.DefaultConfig(), MustParse("NOPE3 > BIM2"), Options{}); err == nil {
		t.Error("unknown component must be rejected")
	}
}

// ---- speculative history management ----

func TestFireShiftsGlobalHistory(t *testing.T) {
	resetFakes()
	p := mustPipeline(t, "TSTB2 > TSTA1", Options{})
	e, stages := p.Predict(0, 0x1000)
	slots := brSlots(p, 0x1000, map[int]bool{0: true, 2: false})
	p.Accept(0, e, stages[0], slots, -1, 0x1010)
	// Two branches shifted in slot order; the most recent (slot 2,
	// not-taken) lands in bit 0, slot 0's taken bit in bit 1.
	if got := p.Global.Bits(2); got != 0b10 {
		t.Errorf("global history = %#b, want 0b10", got)
	}
}

func TestFireStopsAtTakenCFI(t *testing.T) {
	resetFakes()
	p := mustPipeline(t, "TSTB2 > TSTA1", Options{})
	e, stages := p.Predict(0, 0x1000)
	// Taken branch at slot 1; the branch at slot 3 is not fetched.
	slots := brSlots(p, 0x1000, map[int]bool{1: true, 3: true})
	p.Accept(0, e, stages[0], slots, 1, 0x2000)
	if got := p.Global.Bits(2); got != 0b1 {
		t.Errorf("history should contain only the slot-1 branch: %#b", got)
	}
}

func TestResolveCorrectPredictionNoRepair(t *testing.T) {
	resetFakes()
	p := mustPipeline(t, "TSTB2 > TSTA1", Options{})
	e, stages := p.Predict(0, 0x1000)
	p.Accept(0, e, stages[0], brSlots(p, 0x1000, map[int]bool{0: false}), -1, 0x1010)
	res := p.Resolve(1, e, 0, false, 0)
	if res.Mispredict {
		t.Error("correct prediction flagged as mispredict")
	}
	if p.Global.Restores != 0 {
		t.Error("correct prediction must not restore history")
	}
}

func TestMispredictRepairsGlobalHistory(t *testing.T) {
	resetFakes()
	p := mustPipeline(t, "TSTB2 > TSTA1", Options{})
	// Packet A: branch predicted not-taken (will be wrong).
	eA, sA := p.Predict(0, 0x1000)
	p.Accept(0, eA, sA[0], brSlots(p, 0x1000, map[int]bool{0: false}), -1, 0x1010)
	// Packets B, C: wrong-path fetches polluting the history.
	eB, sB := p.Predict(1, 0x1010)
	p.Accept(1, eB, sB[0], brSlots(p, 0x1010, map[int]bool{1: true}), 1, 0x3000)
	eC, sC := p.Predict(2, 0x3000)
	p.Accept(2, eC, sC[0], brSlots(p, 0x3000, map[int]bool{0: true}), 0, 0x4000)
	// Most recent first: C(1) in bit 0, B(1) in bit 1, A(0) in bit 2.
	if got := p.Global.Bits(3); got != 0b011 {
		t.Fatalf("pre-repair history = %#b, want 0b011", got)
	}
	// A's branch resolves taken: mispredict.
	res := p.Resolve(3, eA, 0, true, 0x5000)
	if !res.Mispredict || !res.DirMisp {
		t.Fatalf("expected direction mispredict: %+v", res)
	}
	if res.Redirect != 0x5000 {
		t.Errorf("redirect = %#x, want 0x5000", res.Redirect)
	}
	// History = A's corrected bit only; B/C squashed.
	if got := p.Global.Bits(1); got != 0b1 {
		t.Errorf("post-repair history = %#b, want 0b1", got)
	}
	if p.InFlight() != 1 {
		t.Errorf("in flight = %d, want 1 (B and C squashed)", p.InFlight())
	}
	if !eA.Valid() || eB.Valid() || eC.Valid() {
		t.Error("squash validity wrong")
	}
	if eA.NextPC != 0x5000 || eA.CfiIdx != 0 {
		t.Errorf("entry A not truncated: nextPC=%#x cfi=%d", eA.NextPC, eA.CfiIdx)
	}
}

func TestTargetMispredict(t *testing.T) {
	resetFakes()
	p := mustPipeline(t, "TSTB2 > TSTA1", Options{})
	e, s := p.Predict(0, 0x1000)
	p.Accept(0, e, s[0], brSlots(p, 0x1000, map[int]bool{0: true}), 0, 0x2000)
	res := p.Resolve(1, e, 0, true, 0x9999000)
	if !res.Mispredict || !res.TgtMisp || res.DirMisp {
		t.Errorf("expected target-only mispredict: %+v", res)
	}
	if res.Redirect != 0x9999000 {
		t.Errorf("redirect = %#x", res.Redirect)
	}
}

func TestLocalHistoryRepairOnSquash(t *testing.T) {
	resetFakes()
	// LBIM forces generation of the local history provider.
	p := mustPipeline(t, "TOURNEY3 > [GBIM2, LBIM2]", Options{})
	if p.Local == nil {
		t.Fatal("local history provider not generated for LBIM")
	}
	brPC := p.Cfg.SlotPC(0x1000, 0)

	// Packet A: branch taken (correct path).
	eA, sA := p.Predict(0, 0x1000)
	p.Accept(0, eA, sA[0], brSlots(p, 0x1000, map[int]bool{0: true}), -1, 0x1010)
	want := p.Local.Read(brPC)

	// Packet B: same branch again, wrong-path speculation pollutes lhist.
	eB, sB := p.Predict(1, 0x1000)
	p.Accept(1, eB, sB[0], brSlots(p, 0x1000, map[int]bool{0: true}), -1, 0x1010)
	eC, sC := p.Predict(2, 0x1000)
	p.Accept(2, eC, sC[0], brSlots(p, 0x1000, map[int]bool{0: true}), -1, 0x1010)
	if p.Local.Read(brPC) == want {
		t.Fatal("speculative updates did not change local history")
	}
	// A mispredicts elsewhere in the packet: B, C squashed; lhist restored.
	p.Resolve(3, eA, 0, false, 0)
	if got := p.Local.Read(brPC); got != want>>1 {
		// A's own slot-0 update was also redone with the corrected
		// direction: old value had pred taken=1, corrected is taken=false.
		t.Errorf("local history after repair = %#b (pre-pollution %#b)", got, want)
	}
}

func TestGHRPolicyRepairReshiftsYounger(t *testing.T) {
	resetFakes()
	p := mustPipeline(t, "TSTB2 > TSTA1", Options{GHRPolicy: GHRRepair})
	// A fetched with no known branches (stage-1 view).
	eA, sA := p.Predict(0, 0x1000)
	p.Accept(0, eA, sA[0], brSlots(p, 0x1000, nil), -1, 0x1010)
	// B fetched next, with one taken branch.
	eB, sB := p.Predict(1, 0x1010)
	p.Accept(1, eB, sB[0], brSlots(p, 0x1010, map[int]bool{0: true}), 0, 0x2000)
	if got := p.Global.Bits(1); got != 0b1 {
		t.Fatalf("history = %#b", got)
	}
	// Stage-2 reveals A had a (not-taken-predicted... here taken) branch:
	// re-accept without squash. Corrected history has A's taken bit (1)
	// inserted beneath B's bit (bit 0 = B = 1, bit 1 = A = 1).
	p.ReAccept(2, eA, sA[1], brSlots(p, 0x1000, map[int]bool{2: true}), -1, 0x1010, false)
	if got := p.Global.Bits(2); got != 0b11 {
		t.Errorf("repaired history = %#b, want 0b11", got)
	}
	if p.InFlight() != 2 {
		t.Error("repair-without-replay must keep younger entries")
	}
	if p.C.HistRepairs != 1 {
		t.Errorf("HistRepairs = %d", p.C.HistRepairs)
	}
}

func TestGHRPolicyNoRepairLeavesStaleBits(t *testing.T) {
	resetFakes()
	p := mustPipeline(t, "TSTB2 > TSTA1", Options{GHRPolicy: GHRNoRepair})
	eA, sA := p.Predict(0, 0x1000)
	p.Accept(0, eA, sA[0], brSlots(p, 0x1000, nil), -1, 0x1010)
	eB, sB := p.Predict(1, 0x1010)
	p.Accept(1, eB, sB[0], brSlots(p, 0x1010, map[int]bool{0: true}), 0, 0x2000)
	p.ReAccept(2, eA, sA[1], brSlots(p, 0x1000, map[int]bool{2: false}), -1, 0x1010, false)
	// Stale: A's discovered branch bit is NOT in the history.
	if got := p.Global.Bits(2); got != 0b01 {
		t.Errorf("no-repair history = %#b, want stale 0b01", got)
	}
}

func TestReAcceptWithSquashReplaysYounger(t *testing.T) {
	resetFakes()
	p := mustPipeline(t, "TSTB2 > TSTA1", Options{GHRPolicy: GHRRepairReplay})
	eA, sA := p.Predict(0, 0x1000)
	p.Accept(0, eA, sA[0], brSlots(p, 0x1000, nil), -1, 0x1010)
	eB, sB := p.Predict(1, 0x1010)
	p.Accept(1, eB, sB[0], brSlots(p, 0x1010, map[int]bool{0: true}), 0, 0x2000)
	p.ReAccept(2, eA, sA[1], brSlots(p, 0x1000, map[int]bool{2: false}), -1, 0x1010, true)
	if p.InFlight() != 1 {
		t.Errorf("replay must squash younger fetches: in flight = %d", p.InFlight())
	}
	if got := p.Global.Bits(1); got != 0b0 {
		t.Errorf("history = %#b, want just A's not-taken bit", got)
	}
	if eB.Valid() {
		t.Error("B must be squashed")
	}
}

// ---- commit & lifecycle ----

func TestCommitOrderEnforced(t *testing.T) {
	resetFakes()
	p := mustPipeline(t, "TSTB2 > TSTA1", Options{})
	eA, sA := p.Predict(0, 0x1000)
	p.Accept(0, eA, sA[0], brSlots(p, 0x1000, nil), -1, 0x1010)
	eB, sB := p.Predict(1, 0x1010)
	p.Accept(1, eB, sB[0], brSlots(p, 0x1010, nil), -1, 0x1020)
	defer func() {
		if recover() == nil {
			t.Error("committing non-oldest entry must panic")
		}
	}()
	p.Commit(2, eB)
}

func TestCommitDequeues(t *testing.T) {
	resetFakes()
	p := mustPipeline(t, "TSTB2 > TSTA1", Options{})
	e, s := p.Predict(0, 0x1000)
	p.Accept(0, e, s[0], brSlots(p, 0x1000, map[int]bool{0: true}), 0, 0x2000)
	p.Resolve(1, e, 0, true, 0x2000)
	p.Commit(2, e)
	if p.InFlight() != 0 {
		t.Error("commit did not dequeue")
	}
	if e.Valid() {
		t.Error("committed entry still valid")
	}
	if p.C.Commits != 1 {
		t.Errorf("Commits = %d", p.C.Commits)
	}
}

func TestHistoryFileBackpressure(t *testing.T) {
	resetFakes()
	p := mustPipeline(t, "TSTB2 > TSTA1", Options{HFEntries: 4})
	for i := 0; i < 4; i++ {
		e, s := p.Predict(uint64(i), uint64(0x1000+i*0x10))
		if e == nil {
			t.Fatalf("premature stall at %d", i)
		}
		p.Accept(uint64(i), e, s[0], brSlots(p, uint64(0x1000+i*0x10), nil), -1, 0)
	}
	if !p.Full() {
		t.Error("history file should be full")
	}
	if e, _ := p.Predict(9, 0x9000); e != nil {
		t.Error("Predict must stall when the history file is full")
	}
	// Commit frees an entry.
	p.Commit(10, p.Oldest())
	if e, _ := p.Predict(11, 0x9000); e == nil {
		t.Error("Predict should succeed after commit")
	}
}

func TestSquashAll(t *testing.T) {
	resetFakes()
	p := mustPipeline(t, "TSTB2 > TSTA1", Options{})
	for i := 0; i < 3; i++ {
		e, s := p.Predict(uint64(i), uint64(0x1000+i*0x10))
		p.Accept(uint64(i), e, s[0], brSlots(p, uint64(0x1000+i*0x10), map[int]bool{0: true}), 0, 0x2000)
	}
	p.SquashAll(5)
	if p.InFlight() != 0 {
		t.Errorf("in flight after SquashAll = %d", p.InFlight())
	}
	if got := p.Global.Bits(3); got != 0 {
		t.Errorf("history after SquashAll = %#b, want 0", got)
	}
}

func TestStaleEntryOperationsIgnored(t *testing.T) {
	resetFakes()
	p := mustPipeline(t, "TSTB2 > TSTA1", Options{})
	eA, sA := p.Predict(0, 0x1000)
	p.Accept(0, eA, sA[0], brSlots(p, 0x1000, map[int]bool{0: false}), -1, 0x1010)
	eB, sB := p.Predict(1, 0x1010)
	p.Accept(1, eB, sB[0], brSlots(p, 0x1010, map[int]bool{0: true}), 0, 0x2000)
	p.Resolve(2, eA, 0, true, 0x3000) // squashes B
	res := p.Resolve(3, eB, 0, true, 0x2000)
	if res.Mispredict {
		t.Error("stale resolve must be a no-op")
	}
	if p.C.StaleEvents == 0 {
		t.Error("stale event not counted")
	}
}

func TestReset(t *testing.T) {
	resetFakes()
	p := mustPipeline(t, "TSTB2 > TSTA1", Options{})
	e, s := p.Predict(0, 0x1000)
	p.Accept(0, e, s[0], brSlots(p, 0x1000, map[int]bool{0: true}), 0, 0x2000)
	p.Reset()
	if p.InFlight() != 0 || p.Global.Bits(8) != 0 || p.C.Accepts != 0 {
		t.Error("Reset incomplete")
	}
}

// ---- real-topology integration ----

func TestPaperTopologiesBuild(t *testing.T) {
	for _, tc := range []struct {
		topo      string
		depth     int
		wantLocal bool
	}{
		{"LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1", 3, false},
		{"GTAG3 > BTB2 > BIM2", 3, false},
		{"TOURNEY3 > [GBIM2 > BTB2, LBIM2]", 3, true},
	} {
		p := mustPipeline(t, tc.topo, Options{})
		if p.Depth() != tc.depth {
			t.Errorf("%s: depth = %d, want %d", tc.topo, p.Depth(), tc.depth)
		}
		if (p.Local != nil) != tc.wantLocal {
			t.Errorf("%s: local provider generated = %v, want %v", tc.topo, p.Local != nil, tc.wantLocal)
		}
		if p.ManagementBudget().TotalBits() <= 0 {
			t.Errorf("%s: empty management budget", tc.topo)
		}
		if len(p.ComponentBudgets()) != len(p.Topo.Nodes()) {
			t.Errorf("%s: budget map size wrong", tc.topo)
		}
		// Smoke: run a few packets through predict/accept/resolve/commit.
		for i := 0; i < 20; i++ {
			pc := uint64(0x1000 + (i%4)*0x10)
			p.Tick(uint64(i))
			e, stages := p.Predict(uint64(i), pc)
			if e == nil {
				t.Fatalf("%s: stall with empty backend", tc.topo)
			}
			taken := i%3 == 0
			p.Accept(uint64(i), e, stages[p.Depth()-1], brSlots(p, pc, map[int]bool{1: taken}), -1, pc+16)
			p.Resolve(uint64(i), e, 1, i%2 == 0, pc+16)
			p.Commit(uint64(i), e)
		}
	}
}

func TestTourneyLocalManagementInFig8(t *testing.T) {
	// The tournament design's management budget must include the large
	// PC-indexed local history table the paper calls out in Fig. 8.
	tourney := mustPipeline(t, "TOURNEY3 > [GBIM2 > BTB2, LBIM2]", Options{})
	b2 := mustPipeline(t, "GTAG3 > BTB2 > BIM2", Options{})
	if tourney.ManagementBudget().TotalBits() <= b2.ManagementBudget().TotalBits() {
		t.Error("tournament management (with local provider) should cost more than B2's")
	}
}
