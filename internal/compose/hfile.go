package compose

import (
	"cobra/internal/history"
	"cobra/internal/pred"
)

// Entry is one record of the generated history file (§IV-B.1): a circular
// buffer tracking the state of predictions in the pipeline.  Each fetch
// packet in flight owns one entry holding the fetch PC, the pre-shift global
// history snapshot, the local/path histories read at predict time, every
// sub-component's metadata, the accepted prediction view, and the per-slot
// speculation/resolution records.  Entries are dequeued in program order as
// the core commits branches, triggering commit-time update events.
type Entry struct {
	valid bool
	seq   uint64
	idx   int // position in the ring

	PC uint64

	preSnap  history.Snapshot // global history before this packet's shifts
	prePath  uint64
	ghistLow uint64 // low 64 bits of global history at predict time
	lhist    uint64
	path     uint64

	metas [][]uint64 // per pipeline node, topo order

	// Used is the prediction view the frontend most recently accepted for
	// this packet (it is refined as deeper stages respond).
	Used pred.Packet
	// Slots carries the per-slot speculation records (predicted directions
	// at fire time) and, once the backend resolves, the outcomes.
	Slots []pred.SlotInfo
	// CfiIdx is the slot of the packet-ending control-flow instruction
	// (-1 if the packet runs to its end).
	CfiIdx int
	// NextPC is the accepted prediction of the next fetch address.
	NextPC uint64

	fired      bool
	shifts     []bool // speculative global-history bits this entry inserted
	lhistSaves []lhistSave
	metaBuf    []uint64 // backing arena for metas (reused across allocations)
	metaSums   []uint64 // paranoid mode: per-node metadata checksums at predict
	ops        []uint8  // opinion tracking: per node x slot direction opinions

	// stages is the per-stage final-prediction vector Predict returns,
	// owned by the entry so steady-state prediction allocates nothing.  The
	// slice stays valid until this history-file slot is reallocated (the
	// frontend drops its reference no later than the entry's own death).
	stages []pred.Packet
}

type lhistSave struct {
	pc  uint64
	old uint64
}

// Seq returns the entry's allocation sequence number (age ordering).
func (e *Entry) Seq() uint64 { return e.seq }

// Valid reports whether the entry is still live (not squashed/committed).
func (e *Entry) Valid() bool { return e.valid }

// historyFile is the ring of entries plus the repair state machine
// bookkeeping (§IV-B.2).
type historyFile struct {
	ring  []Entry
	head  int // oldest
	count int
	seq   uint64
}

func newHistoryFile(entries, fetchWidth int) *historyFile {
	hf := &historyFile{ring: make([]Entry, entries)}
	for i := range hf.ring {
		hf.ring[i].idx = i
		hf.ring[i].Slots = make([]pred.SlotInfo, fetchWidth)
	}
	return hf
}

func (hf *historyFile) full() bool  { return hf.count == len(hf.ring) }
func (hf *historyFile) empty() bool { return hf.count == 0 }

// alloc claims the next entry (caller must have checked full()).
func (hf *historyFile) alloc() *Entry {
	idx := (hf.head + hf.count) % len(hf.ring)
	hf.count++
	hf.seq++
	e := &hf.ring[idx]
	slots := e.Slots
	for i := range slots {
		slots[i] = pred.SlotInfo{}
	}
	metaBuf, metas, shifts, saves, sums, ops := e.metaBuf, e.metas, e.shifts, e.lhistSaves, e.metaSums, e.ops
	snap, stages := e.preSnap, e.stages
	*e = Entry{idx: idx, seq: hf.seq, valid: true, Slots: slots, CfiIdx: -1,
		metaBuf: metaBuf, metas: metas, shifts: shifts[:0], lhistSaves: saves[:0],
		metaSums: sums[:0], ops: ops[:0], preSnap: snap, stages: stages}
	return e
}

// oldest returns the oldest live entry, or nil.
func (hf *historyFile) oldest() *Entry {
	if hf.empty() {
		return nil
	}
	return &hf.ring[hf.head]
}

// youngest returns the youngest live entry, or nil.
func (hf *historyFile) youngest() *Entry {
	if hf.empty() {
		return nil
	}
	return &hf.ring[(hf.head+hf.count-1)%len(hf.ring)]
}

// dequeue retires the oldest entry.
func (hf *historyFile) dequeue() {
	if hf.empty() {
		panic("compose: dequeue from empty history file")
	}
	hf.ring[hf.head].valid = false
	hf.head = (hf.head + 1) % len(hf.ring)
	hf.count--
}

// popYoungest squashes the youngest entry.
func (hf *historyFile) popYoungest() {
	if hf.empty() {
		panic("compose: pop from empty history file")
	}
	idx := (hf.head + hf.count - 1) % len(hf.ring)
	hf.ring[idx].valid = false
	hf.count--
}

// youngerThan iterates entries strictly younger than e, youngest first,
// calling f on each.
func (hf *historyFile) youngerThan(e *Entry, f func(*Entry)) {
	for i := hf.count - 1; i >= 0; i-- {
		idx := (hf.head + i) % len(hf.ring)
		y := &hf.ring[idx]
		if y.seq <= e.seq {
			return
		}
		f(y)
	}
}

// forwardFrom iterates entries strictly younger than e, oldest first (the
// direction of the paper's forwards-walk).
func (hf *historyFile) forwardFrom(e *Entry, f func(*Entry)) {
	for i := 0; i < hf.count; i++ {
		idx := (hf.head + i) % len(hf.ring)
		y := &hf.ring[idx]
		if y.seq <= e.seq {
			continue
		}
		f(y)
	}
}

// countYoungerThan returns how many live entries are younger than e.
func (hf *historyFile) countYoungerThan(e *Entry) int {
	n := 0
	for i := 0; i < hf.count; i++ {
		idx := (hf.head + i) % len(hf.ring)
		if hf.ring[idx].seq > e.seq {
			n++
		}
	}
	return n
}
