package compose

import (
	"fmt"
	"math/rand"
	"testing"

	"cobra/internal/pred"
)

// randomTopology builds a random chain/bracket topology out of the real
// component library.
func randomTopology(rng *rand.Rand) string {
	// LBIM2 is reserved for the tournament's local side so generated
	// topologies never duplicate an instance name.
	leaves := []string{"BIM2", "GBIM2", "GSEL2", "PBIM2"}
	mids := []string{"BTB2", "GTAG3", "TAGE3", "LOOP3", "PERC3", "SCOR3",
		"GEHL3", "YAGS3", "GSKEW3", "ITGT3"}
	chain := func(n int) string {
		s := leaves[rng.Intn(len(leaves))]
		used := map[string]bool{}
		for i := 0; i < n; i++ {
			m := mids[rng.Intn(len(mids))]
			if used[m] {
				continue
			}
			used[m] = true
			s = m + " > " + s
		}
		return s
	}
	if rng.Intn(3) == 0 {
		return fmt.Sprintf("TOURNEY3 > [%s, LBIM2]", chain(rng.Intn(2)))
	}
	top := chain(1 + rng.Intn(3))
	if rng.Intn(2) == 0 {
		top += " > UBTB1"
	}
	return top
}

// TestRandomTopologiesMonotoneRefinement drives random pipelines with
// random query/accept/resolve/commit traffic and checks the §III-A
// refinement law on every prediction: once a stage asserts a direction or
// target for a slot, every deeper stage still asserts one (values may
// change only when a deeper component overrides — validity never retracts).
func TestRandomTopologiesMonotoneRefinement(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		src := randomTopology(rng)
		topo, err := ParseTopology(src)
		if err != nil {
			t.Fatalf("generated invalid topology %q: %v", src, err)
		}
		p, err := New(pred.DefaultConfig(), topo, Options{GHistBits: 64})
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		for q := 0; q < 300; q++ {
			pc := uint64(0x1000 + rng.Intn(64)*16)
			p.Tick(uint64(q))
			e, stages := p.Predict(uint64(q), pc)
			if e == nil {
				t.Fatalf("%q: unexpected stall", src)
			}
			for d := 1; d < len(stages); d++ {
				for i := range stages[d] {
					prev, cur := stages[d-1][i], stages[d][i]
					if prev.DirValid && !cur.DirValid {
						t.Fatalf("%q: stage %d retracted direction at slot %d", src, d+1, i)
					}
					if prev.TgtValid && !cur.TgtValid {
						t.Fatalf("%q: stage %d retracted target at slot %d", src, d+1, i)
					}
				}
			}
			// Random accept/resolve/commit traffic to churn internal state.
			slots := make([]pred.SlotInfo, p.Cfg.FetchWidth)
			slot := rng.Intn(p.Cfg.FetchWidth)
			taken := rng.Intn(2) == 0
			slots[slot] = pred.SlotInfo{Valid: true, IsBranch: true, Taken: taken,
				PC: p.Cfg.SlotPC(pc, slot)}
			cfi := -1
			next := p.Cfg.PacketBase(pc) + uint64(p.Cfg.PktBytes())
			if taken {
				cfi = slot
				next = 0x8000
			}
			p.Accept(uint64(q), e, stages[len(stages)-1], slots, cfi, next)
			if rng.Intn(3) == 0 {
				p.Resolve(uint64(q), e, slot, rng.Intn(2) == 0, 0x8000)
			}
			if rng.Intn(2) == 0 {
				for p.InFlight() > 0 {
					p.Commit(uint64(q), p.Oldest())
				}
			}
		}
	}
}

// TestRandomTopologiesSurviveMispredictStorms stresses the repair machinery
// with dense mispredict/squash sequences and checks the history file never
// leaks entries and the global history stays masked.
func TestRandomTopologiesSurviveMispredictStorms(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 10; trial++ {
		src := randomTopology(rng)
		p, err := New(pred.DefaultConfig(), MustParse(src), Options{GHistBits: 64, HFEntries: 8})
		if err != nil {
			t.Fatal(err)
		}
		var live []*Entry
		for q := 0; q < 500; q++ {
			p.Tick(uint64(q))
			if e, stages := p.Predict(uint64(q), uint64(0x1000+rng.Intn(32)*16)); e != nil {
				slots := make([]pred.SlotInfo, p.Cfg.FetchWidth)
				slots[0] = pred.SlotInfo{Valid: true, IsBranch: true,
					Taken: rng.Intn(2) == 0, PC: e.PC}
				p.Accept(uint64(q), e, stages[0], slots, -1, e.PC+16)
				live = append(live, e)
			}
			switch rng.Intn(4) {
			case 0: // resolve a random live entry (often mispredicting)
				if len(live) > 0 {
					e := live[rng.Intn(len(live))]
					if e.Valid() {
						p.Resolve(uint64(q), e, 0, rng.Intn(2) == 0, 0x9000)
					}
				}
			case 1: // commit the oldest
				if old := p.Oldest(); old != nil {
					p.Commit(uint64(q), old)
				}
			}
			// Prune dead references.
			nl := live[:0]
			for _, e := range live {
				if e.Valid() {
					nl = append(nl, e)
				}
			}
			live = nl
			if p.InFlight() != len(live) {
				t.Fatalf("%q: history file count %d != live entries %d", src, p.InFlight(), len(live))
			}
		}
	}
}
