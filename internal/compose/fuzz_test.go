package compose

import "testing"

// FuzzParseTopology asserts the parser never panics and that anything it
// accepts round-trips through its canonical form.
func FuzzParseTopology(f *testing.F) {
	for _, seed := range []string{
		"LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1",
		"TOURNEY3 > [GBIM2 > BTB2, LBIM2]",
		"TOURNEY3 > [(LOOP2 > GBIM2), LBIM2]",
		"A",
		"A > B",
		"A > [B, C]",
		"LOOP3(256) > BIM2(1024)",
		"A > [B, C, D, E]",
		"((((A))))",
		"A > [B > (C > D), E]",
		"", ">", "][", "A > [B]", "A > (", "A(((", "A))",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		topo, err := ParseTopology(src)
		if err != nil {
			return
		}
		canon := topo.String()
		again, err := ParseTopology(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, src, err)
		}
		if again.String() != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q", canon, again.String())
		}
	})
}
