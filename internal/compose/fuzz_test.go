package compose

import "testing"

// FuzzParse seeds the corpus with the three Table I designs — the exact
// strings every experiment parses — plus malformed bracket/fan-in variants,
// and asserts MustParse → String() → MustParse is a round-trip: the
// canonical form re-parses to the same canonical form.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		// Table I, verbatim.
		"TOURNEY3 > [GBIM2 > BTB2, LBIM2]",    // tourney
		"GTAG3 > BTB2 > BIM2",                 // b2
		"LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1", // tage-l
		// Malformed brackets and fan-in shapes the parser must reject
		// (or accept canonically) without panicking.
		"TOURNEY3 > [GBIM2 > BTB2, LBIM2",   // unclosed fan-in
		"TOURNEY3 > GBIM2 > BTB2, LBIM2]",   // stray close
		"TOURNEY3 > [, LBIM2]",              // empty fan-in arm
		"TOURNEY3 > [GBIM2 > [BTB2, LBIM2]", // nested unbalanced
		"[A, B] > C",                        // fan-in with no selector
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		topo, err := ParseTopology(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		canon := topo.String()
		if again := MustParse(canon).String(); again != canon {
			t.Fatalf("MustParse round-trip broken: %q -> %q -> %q", src, canon, again)
		}
	})
}

// FuzzParseTopology asserts the parser never panics and that anything it
// accepts round-trips through its canonical form.
func FuzzParseTopology(f *testing.F) {
	for _, seed := range []string{
		"LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1",
		"TOURNEY3 > [GBIM2 > BTB2, LBIM2]",
		"TOURNEY3 > [(LOOP2 > GBIM2), LBIM2]",
		"A",
		"A > B",
		"A > [B, C]",
		"LOOP3(256) > BIM2(1024)",
		"A > [B, C, D, E]",
		"((((A))))",
		"A > [B > (C > D), E]",
		"", ">", "][", "A > [B]", "A > (", "A(((", "A))",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		topo, err := ParseTopology(src)
		if err != nil {
			return
		}
		canon := topo.String()
		again, err := ParseTopology(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, src, err)
		}
		if again.String() != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q", canon, again.String())
		}
	})
}
