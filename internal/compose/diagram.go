package compose

import (
	"fmt"
	"sort"
	"strings"
)

// Diagram renders an ASCII pipeline diagram of a topology in the style of
// the paper's Fig. 4 and Fig. 7: one row per sub-component, one column per
// fetch stage, showing at which stage each component responds and which
// component provides the final prediction at each stage (the overriding
// hierarchy of §IV-A).
func Diagram(p *Pipeline) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Topology: %s\n", p.Topo)
	fmt.Fprintf(&b, "Depth: %d cycle(s); policy: %s\n\n", p.depth, p.Opt.GHRPolicy)

	// Header row.
	nameW := len("component")
	for _, n := range p.nodes {
		if len(n.name) > nameW {
			nameW = len(n.name)
		}
	}
	colW := 9
	fmt.Fprintf(&b, "%-*s |", nameW, "component")
	for d := 0; d <= p.depth; d++ {
		fmt.Fprintf(&b, " %-*s|", colW, fmt.Sprintf("Fetch-%d", d))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%s-+", strings.Repeat("-", nameW))
	for d := 0; d <= p.depth; d++ {
		fmt.Fprintf(&b, "%s+", strings.Repeat("-", colW+1))
	}
	b.WriteByte('\n')

	// One row per component, slowest (most powerful) first: reverse topo
	// order puts the root (final prediction provider) at the top, matching
	// the paper's figures.
	rows := make([]*pnode, len(p.nodes))
	copy(rows, p.nodes)
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].lat > rows[j].lat })
	for _, n := range rows {
		fmt.Fprintf(&b, "%-*s |", nameW, n.name)
		for d := 0; d <= p.depth; d++ {
			cell := ""
			switch {
			case d == 0:
				cell = "query"
			case d == 1 && n.lat >= 2:
				cell = "hist-in"
			}
			if d == n.lat {
				cell = "respond"
			} else if d > n.lat && d >= 1 {
				cell = "pinned"
			}
			fmt.Fprintf(&b, " %-*s|", colW, cell)
		}
		b.WriteByte('\n')
	}

	// Final-prediction hierarchy per stage: which components can have
	// spoken by stage d, in override order (root chain first).
	b.WriteByte('\n')
	for d := 1; d <= p.depth; d++ {
		var spoke []string
		for i := len(p.nodes) - 1; i >= 0; i-- {
			if p.nodes[i].lat <= d {
				spoke = append(spoke, p.nodes[i].name)
			}
		}
		fmt.Fprintf(&b, "Fetch-%d final prediction: %s\n", d, strings.Join(spoke, " > "))
	}
	b.WriteString("\nRedirect rule: the Fetch-d prediction overrides the packet fetched d\n")
	b.WriteString("cycles later when they disagree, squashing the younger fetches\n")
	b.WriteString("(Alpha 21264-style overriding, §IV-B).\n")
	return b.String()
}

// InterfaceDiagram renders the §III timing contract (the paper's Fig. 2):
// when a pipelined sub-component may read its inputs and respond.
func InterfaceDiagram(maxLat int) string {
	var b strings.Builder
	b.WriteString("COBRA sub-component interface timing (Fig. 2)\n\n")
	b.WriteString("stage    | available inputs            | may respond?\n")
	b.WriteString("---------+------------------------------+-------------\n")
	for d := 0; d <= maxLat; d++ {
		in, resp := "", "no"
		switch {
		case d == 0:
			in = "fetch PC (predict signal)"
		case d == 1:
			in = "histories (ghist, lhist)"
			resp = "yes (p=1: PC-only components)"
		default:
			in = "predict_in(d') for d' <= d"
			resp = fmt.Sprintf("yes (p=%d)", d)
		}
		fmt.Fprintf(&b, "Fetch-%-2d | %-28s | %s\n", d, in, resp)
	}
	b.WriteString("\nContract: a prediction made at cycle p must be repeated or refined\n")
	b.WriteString("(never retracted) at every cycle d > p (§III-A).\n")
	return b.String()
}
