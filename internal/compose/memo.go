package compose

import "sync"

// Geometry is an immutable, shareable description of a pipeline's canonical
// build inputs: the parsed topology, the base generation options, and an
// opaque caller-owned auxiliary value (spec.Exec stores the resolved host
// core configuration there).  A Topology is never mutated after parse and
// Options is copied by value, so one Geometry may back any number of
// concurrent compose.New calls — which is what makes memoizing it safe for
// the parallel runner.
//
// The process-local hooks (Options.Wrap, Options.Observer, Paranoid) are
// per-run, never part of a memoized geometry: callers copy Geometry.Opt and
// attach them to the copy.
type Geometry struct {
	Topo *Topology
	Opt  Options
	Aux  any
}

// geoCacheMax bounds the memo table; a sweep over a design grid touches a
// handful of geometries, so the bound only matters for adversarial callers
// (e.g. a serving front-end fed unbounded distinct topologies).  On
// overflow the whole table is dropped — entries are cheap to rebuild.
const geoCacheMax = 4096

var (
	geoMu    sync.RWMutex
	geoCache = make(map[string]*Geometry)
)

// GeometryFor returns the memoized geometry for key, invoking build to
// construct it on first use.  build must be a pure function of key: two
// callers racing on the same key may both run build, but exactly one result
// is retained and every caller observes that one.  Errors are returned
// without being cached.
func GeometryFor(key string, build func() (*Geometry, error)) (*Geometry, error) {
	geoMu.RLock()
	g := geoCache[key]
	geoMu.RUnlock()
	if g != nil {
		return g, nil
	}
	g, err := build()
	if err != nil {
		return nil, err
	}
	geoMu.Lock()
	if prev, ok := geoCache[key]; ok {
		g = prev // a racing builder won; converge on its result
	} else {
		if len(geoCache) >= geoCacheMax {
			geoCache = make(map[string]*Geometry)
		}
		geoCache[key] = g
	}
	geoMu.Unlock()
	return g, nil
}

// ParseTopologyCached is ParseTopology behind the geometry memo: repeated
// parses of the same topology string (the runner re-parses one per job)
// share a single immutable parse tree.
func ParseTopologyCached(s string) (*Topology, error) {
	g, err := GeometryFor("topo\x00"+s, func() (*Geometry, error) {
		t, err := ParseTopology(s)
		if err != nil {
			return nil, err
		}
		return &Geometry{Topo: t}, nil
	})
	if err != nil {
		return nil, err
	}
	return g.Topo, nil
}
