// Package interval is the time-resolved half of the observability stack: a
// windowed simulation-telemetry subsystem that samples per-window counter
// deltas — IPC, MPKI, per-provider accuracy, override rate, squashes,
// BTB/RAS events, H2P-set mispredicts — every N committed instructions.
//
// Every whole-run counter the evaluation reports (Tables I–III) averages
// away exactly the phenomena compositions exploit: warmup transients, phase
// behavior, hard-to-predict branches flipping providers in bursts.  A
// Recorder attached to the uarch core closes one Window per N instructions
// (quantized to the core's existing 8192-cycle telemetry-flush cadence, so
// sampling adds no new branches to the hot loop) into a preallocated ring
// with zero steady-state allocations.  The windows serialize to the compact
// CBRAIVL1 binary codec (codec.go), whose encoded bytes also define the
// set's content hash — the determinism pin that makes interval files
// comparable across parallelism levels and execution backends.
//
// Compare (diff.go) aligns two runs' windows and names the first divergent
// one — the substrate cmd/cobra-diff builds its cycle-level bisection on.
package interval

import "math"

// DefaultInsts is the default window size in committed instructions.
const DefaultInsts = 100_000

// H2PThreshold is the cumulative per-PC mispredict count at which a branch
// joins the hard-to-predict set: from then on its mispredicts are counted in
// Window.H2PMispredicts.  The on-line definition follows the observation
// that H2P impact concentrates in a small, persistent set of static
// branches; 32 mispredicts is far past noise for any real workload slice.
const H2PThreshold = 32

// ProviderStat is one sub-component's share of a window: how many committed
// conditional branches it provided the final direction for, and how many of
// those were mispredicted.  Accuracy is 1 - Mispredicts/Branches.
type ProviderStat struct {
	Name        string `json:"name"`
	Branches    uint64 `json:"branches"`
	Mispredicts uint64 `json:"mispredicts,omitempty"`
}

// Window is one sampling interval's counter deltas.  Cycle and instruction
// bounds are relative to the measurement start (the last stats reset), so a
// warmed-up run's first window starts at zero.  Windows are contiguous:
// window i+1 starts where window i ended.
type Window struct {
	Index      int    `json:"index"`
	StartCycle uint64 `json:"start_cycle"`
	EndCycle   uint64 `json:"end_cycle"`
	StartInst  uint64 `json:"start_inst"`
	EndInst    uint64 `json:"end_inst"`

	Branches       uint64 `json:"branches"`        // committed conditional branches
	Mispredicts    uint64 `json:"mispredicts"`     // all mispredicted CFIs
	DirMispredicts uint64 `json:"dir_mispredicts"` // wrong-direction subset
	TgtMispredicts uint64 `json:"tgt_mispredicts"` // wrong-target subset
	BTBMisses      uint64 `json:"btb_misses"`
	RASEvents      uint64 `json:"ras_events"` // return-address-stack pushes and pops
	FetchBubbles   uint64 `json:"fetch_bubbles"`
	Redirects      uint64 `json:"redirects"`       // frontend redirect flushes
	HistoryRepairs uint64 `json:"history_repairs"` // GHR repair events
	FetchReplays   uint64 `json:"fetch_replays"`
	Overrides      uint64 `json:"overrides"` // deeper-stage re-accepts (override rate numerator)
	Squashes       uint64 `json:"squashes"`  // history-file entries squashed
	H2PMispredicts uint64 `json:"h2p_mispredicts"`

	// Providers attributes the window's committed conditional branches to
	// the sub-component that provided the final direction, sorted by name.
	Providers []ProviderStat `json:"providers,omitempty"`
}

// Insts returns the committed instructions in the window.
func (w *Window) Insts() uint64 { return w.EndInst - w.StartInst }

// Cycles returns the cycles the window spans.
func (w *Window) Cycles() uint64 { return w.EndCycle - w.StartCycle }

// IPC returns the window's instructions per cycle.
func (w *Window) IPC() float64 {
	if w.Cycles() == 0 {
		return 0
	}
	return float64(w.Insts()) / float64(w.Cycles())
}

// MPKI returns the window's mispredicts per thousand instructions.
func (w *Window) MPKI() float64 {
	if w.Insts() == 0 {
		return 0
	}
	return float64(w.Mispredicts) / float64(w.Insts()) * 1000
}

// Set is one run's complete interval telemetry: the ordered windows, the
// sampling configuration, and the content hash of the CBRAIVL1 encoding.
type Set struct {
	// IntervalInsts is the window size the run sampled at.
	IntervalInsts uint64 `json:"interval_insts"`
	// Dropped counts windows overwritten when the ring filled; the kept
	// windows are the newest len(Windows) (indices still name their true
	// position in the run).
	Dropped uint64 `json:"dropped,omitempty"`
	// Windows are the closed sampling intervals, oldest first.
	Windows []Window `json:"windows"`
	// Hash is "sha256:<hex>" over the set's CBRAIVL1 encoding — byte-stable
	// across runner parallelism and local/remote backends, because window
	// boundaries are pure functions of the deterministic simulation.
	Hash string `json:"hash,omitempty"`
}

// Spark renders vs as a unicode sparkline of at most width characters,
// downsampling by averaging equal buckets when len(vs) > width.  An empty
// input renders empty; a flat series renders at the lowest glyph.
func Spark(vs []float64, width int) string {
	if len(vs) == 0 || width <= 0 {
		return ""
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	if len(vs) > width {
		buckets := make([]float64, width)
		for i := range buckets {
			lo, hi := i*len(vs)/width, (i+1)*len(vs)/width
			if hi == lo {
				hi = lo + 1
			}
			var sum float64
			for _, v := range vs[lo:hi] {
				sum += v
			}
			buckets[i] = sum / float64(hi-lo)
		}
		vs = buckets
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range vs {
		min, max = math.Min(min, v), math.Max(max, v)
	}
	out := make([]rune, len(vs))
	for i, v := range vs {
		g := 0
		if max > min {
			g = int((v - min) / (max - min) * float64(len(glyphs)-1))
		}
		out[i] = glyphs[g]
	}
	return string(out)
}
