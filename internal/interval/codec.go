package interval

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
)

// CBRAIVL1 interval-file layout (all integers unsigned varints unless
// noted), the sibling of the CBRAEVT1 event format:
//
//	magic    [8]byte  "CBRAIVL1"
//	interval uvarint  window size in instructions
//	dropped  uvarint  windows lost to ring overflow
//	names    uvarint count, per name: uvarint length + raw bytes
//	         (sorted union of provider names across all windows)
//	windows  uvarint count
//	         if count > 0: uvarint first index, first start cycle, first
//	         start inst — every later window starts where its predecessor
//	         ended, so per-window storage is two spans plus the counters:
//	         per window: uvarint cycle span, inst span, the 13 counters in
//	         Window field order, provider count, then per provider:
//	         uvarint name index, branches, mispredicts
//	crc      uint32 LE, IEEE CRC32 of everything above
//
// Delta-encoding the monotone series keeps a thousand-window file in the
// low kilobytes, and the trailing CRC makes truncation or bit corruption a
// loud decode error rather than silently plausible telemetry.  The encoded
// bytes double as the set's content identity: ContentHash is their sha256.

var ivlMagic = [8]byte{'C', 'B', 'R', 'A', 'I', 'V', 'L', '1'}

// Encode serializes the set in CBRAIVL1 form.  It fails if the windows are
// not contiguous with sequential indices — the shape every Recorder and
// FromEvents set has, and the shape the span encoding requires.
func (s *Set) Encode() ([]byte, error) {
	names := map[string]int{}
	for _, w := range s.Windows {
		for _, p := range w.Providers {
			names[p.Name] = 0
		}
	}
	table := make([]string, 0, len(names))
	for name := range names {
		table = append(table, name)
	}
	sort.Strings(table)
	for i, name := range table {
		names[name] = i
	}

	buf := make([]byte, 0, 64+64*len(s.Windows))
	buf = append(buf, ivlMagic[:]...)
	buf = binary.AppendUvarint(buf, s.IntervalInsts)
	buf = binary.AppendUvarint(buf, s.Dropped)
	buf = binary.AppendUvarint(buf, uint64(len(table)))
	for _, name := range table {
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.Windows)))
	if len(s.Windows) > 0 {
		first := &s.Windows[0]
		buf = binary.AppendUvarint(buf, uint64(first.Index))
		buf = binary.AppendUvarint(buf, first.StartCycle)
		buf = binary.AppendUvarint(buf, first.StartInst)
	}
	for i := range s.Windows {
		w := &s.Windows[i]
		if i > 0 {
			p := &s.Windows[i-1]
			if w.Index != p.Index+1 || w.StartCycle != p.EndCycle || w.StartInst != p.EndInst {
				return nil, fmt.Errorf("interval: window %d not contiguous with its predecessor", w.Index)
			}
		}
		if w.EndCycle < w.StartCycle || w.EndInst < w.StartInst {
			return nil, fmt.Errorf("interval: window %d spans backwards", w.Index)
		}
		buf = binary.AppendUvarint(buf, w.EndCycle-w.StartCycle)
		buf = binary.AppendUvarint(buf, w.EndInst-w.StartInst)
		buf = binary.AppendUvarint(buf, w.Branches)
		buf = binary.AppendUvarint(buf, w.Mispredicts)
		buf = binary.AppendUvarint(buf, w.DirMispredicts)
		buf = binary.AppendUvarint(buf, w.TgtMispredicts)
		buf = binary.AppendUvarint(buf, w.BTBMisses)
		buf = binary.AppendUvarint(buf, w.RASEvents)
		buf = binary.AppendUvarint(buf, w.FetchBubbles)
		buf = binary.AppendUvarint(buf, w.Redirects)
		buf = binary.AppendUvarint(buf, w.HistoryRepairs)
		buf = binary.AppendUvarint(buf, w.FetchReplays)
		buf = binary.AppendUvarint(buf, w.Overrides)
		buf = binary.AppendUvarint(buf, w.Squashes)
		buf = binary.AppendUvarint(buf, w.H2PMispredicts)
		buf = binary.AppendUvarint(buf, uint64(len(w.Providers)))
		for _, p := range w.Providers {
			buf = binary.AppendUvarint(buf, uint64(names[p.Name]))
			buf = binary.AppendUvarint(buf, p.Branches)
			buf = binary.AppendUvarint(buf, p.Mispredicts)
		}
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf))
	return append(buf, crc[:]...), nil
}

// ContentHash returns "sha256:<hex>" over the set's CBRAIVL1 encoding — the
// determinism pin interval files are compared by.  A set the codec cannot
// represent hashes to "".
func (s *Set) ContentHash() string {
	data, err := s.Encode()
	if err != nil {
		return ""
	}
	return fmt.Sprintf("sha256:%x", sha256.Sum256(data))
}

// ivlReader walks an encoded buffer with positioned error reporting.
type ivlReader struct {
	data []byte
	off  int
}

func (r *ivlReader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("interval: truncated %s at offset %d", what, r.off)
	}
	r.off += n
	return v, nil
}

// Decode parses a CBRAIVL1 buffer, rejecting bad magic, checksum
// mismatches, truncation, and implausible structure loudly.
func Decode(data []byte) (*Set, error) {
	if len(data) < len(ivlMagic)+4 {
		return nil, fmt.Errorf("interval: file too short (%d bytes)", len(data))
	}
	if [8]byte(data[:8]) != ivlMagic {
		return nil, fmt.Errorf("interval: bad magic %q (not a cobra interval file)", data[:8])
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("interval: checksum mismatch (file %08x, computed %08x): corrupt or truncated", want, got)
	}
	r := &ivlReader{data: body, off: 8}
	s := &Set{}
	var err error
	if s.IntervalInsts, err = r.uvarint("interval size"); err != nil {
		return nil, err
	}
	if s.Dropped, err = r.uvarint("dropped count"); err != nil {
		return nil, err
	}
	nNames, err := r.uvarint("name count")
	if err != nil {
		return nil, err
	}
	if nNames > 1<<16 {
		return nil, fmt.Errorf("interval: implausible provider count %d", nNames)
	}
	table := make([]string, nNames)
	for i := range table {
		n, err := r.uvarint("name length")
		if err != nil {
			return nil, err
		}
		if n > 1<<12 || r.off+int(n) > len(r.data) {
			return nil, fmt.Errorf("interval: name %d overruns file", i)
		}
		table[i] = string(r.data[r.off : r.off+int(n)])
		r.off += int(n)
	}
	nWin, err := r.uvarint("window count")
	if err != nil {
		return nil, err
	}
	if nWin > 1<<24 {
		return nil, fmt.Errorf("interval: implausible window count %d", nWin)
	}
	var index, startCyc, startInst uint64
	if nWin > 0 {
		if index, err = r.uvarint("first index"); err != nil {
			return nil, err
		}
		if startCyc, err = r.uvarint("first start cycle"); err != nil {
			return nil, err
		}
		if startInst, err = r.uvarint("first start inst"); err != nil {
			return nil, err
		}
	}
	s.Windows = make([]Window, 0, nWin)
	for i := uint64(0); i < nWin; i++ {
		w := Window{Index: int(index), StartCycle: startCyc, StartInst: startInst}
		var spans [15]uint64
		for j, what := range [...]string{
			"cycle span", "inst span", "branches", "mispredicts",
			"dir mispredicts", "tgt mispredicts", "btb misses", "ras events",
			"fetch bubbles", "redirects", "history repairs", "fetch replays",
			"overrides", "squashes", "h2p mispredicts",
		} {
			if spans[j], err = r.uvarint(what); err != nil {
				return nil, err
			}
		}
		w.EndCycle, w.EndInst = startCyc+spans[0], startInst+spans[1]
		w.Branches, w.Mispredicts = spans[2], spans[3]
		w.DirMispredicts, w.TgtMispredicts = spans[4], spans[5]
		w.BTBMisses, w.RASEvents = spans[6], spans[7]
		w.FetchBubbles, w.Redirects = spans[8], spans[9]
		w.HistoryRepairs, w.FetchReplays = spans[10], spans[11]
		w.Overrides, w.Squashes, w.H2PMispredicts = spans[12], spans[13], spans[14]
		nProv, err := r.uvarint("provider count")
		if err != nil {
			return nil, err
		}
		if nProv > nNames {
			return nil, fmt.Errorf("interval: window %d has %d providers but table holds %d", i, nProv, nNames)
		}
		for j := uint64(0); j < nProv; j++ {
			idx, err := r.uvarint("provider name index")
			if err != nil {
				return nil, err
			}
			if idx >= nNames {
				return nil, fmt.Errorf("interval: window %d provider index %d out of range", i, idx)
			}
			br, err := r.uvarint("provider branches")
			if err != nil {
				return nil, err
			}
			mp, err := r.uvarint("provider mispredicts")
			if err != nil {
				return nil, err
			}
			w.Providers = append(w.Providers, ProviderStat{Name: table[idx], Branches: br, Mispredicts: mp})
		}
		s.Windows = append(s.Windows, w)
		index++
		startCyc, startInst = w.EndCycle, w.EndInst
	}
	if r.off != len(r.data) {
		return nil, fmt.Errorf("interval: %d trailing bytes after last window", len(r.data)-r.off)
	}
	s.Hash = fmt.Sprintf("sha256:%x", sha256.Sum256(data))
	return s, nil
}

// WriteFile encodes the set to path.
func WriteFile(path string, s *Set) error {
	data, err := s.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadFile decodes the CBRAIVL1 file at path.
func ReadFile(path string) (*Set, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
