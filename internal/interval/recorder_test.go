package interval

import (
	"testing"

	"cobra/internal/stats"
)

// advance moves a synthetic counter state forward by n instructions with a
// fixed per-instruction counter mix, then ticks the recorder as the core's
// flush path would.
type driver struct {
	r   *Recorder
	s   stats.Sim
	cyc uint64
}

func newDriver(every uint64) *driver {
	return &driver{r: NewRecorder(every), s: stats.NewSim()}
}

func (d *driver) advance(insts uint64) {
	d.cyc += insts * 2
	d.s.Instructions += insts
	d.s.Branches += insts / 5
	d.s.Mispredicts += insts / 100
	d.s.AddProviderHit("TAGE3")
	d.s.AddProviderMiss("BIM2")
	d.r.Tick(d.cyc, &d.s, d.s.Instructions/10, d.s.Instructions/20, 0)
}

func TestRecorderWindowsTile(t *testing.T) {
	d := newDriver(1000)
	// Flush cadence coarser than the window: every close lands past the
	// boundary, and the next window must start exactly where this one ended.
	for i := 0; i < 20; i++ {
		d.advance(333)
	}
	d.r.Finish(d.cyc, &d.s, d.s.Instructions/10, d.s.Instructions/20, 0)
	set := d.r.Set()
	if len(set.Windows) == 0 {
		t.Fatal("no windows recorded")
	}
	if set.IntervalInsts != 1000 {
		t.Fatalf("IntervalInsts = %d", set.IntervalInsts)
	}
	for i, w := range set.Windows {
		if w.Index != i {
			t.Fatalf("window %d has index %d", i, w.Index)
		}
		if i > 0 {
			p := set.Windows[i-1]
			if w.StartCycle != p.EndCycle || w.StartInst != p.EndInst {
				t.Fatalf("window %d does not tile: starts (%d,%d), predecessor ends (%d,%d)",
					i, w.StartCycle, w.StartInst, p.EndCycle, p.EndInst)
			}
		}
		if w.EndInst <= w.StartInst {
			t.Fatalf("window %d spans no instructions: %+v", i, w)
		}
	}
	last := set.Windows[len(set.Windows)-1]
	if last.EndInst != d.s.Instructions {
		t.Fatalf("Finish did not close the trailing partial window: last end %d, committed %d",
			last.EndInst, d.s.Instructions)
	}
	// Window counters are deltas: they must sum back to the cumulative totals.
	var branches uint64
	for _, w := range set.Windows {
		branches += w.Branches
	}
	if branches != d.s.Branches {
		t.Fatalf("window branch deltas sum to %d, cumulative is %d", branches, d.s.Branches)
	}
	if set.Hash == "" || set.Hash != set.ContentHash() {
		t.Fatalf("Set hash %q not the content hash", set.Hash)
	}
}

func TestRecorderProvidersSortedAndDeltaed(t *testing.T) {
	d := newDriver(100)
	d.advance(100)
	d.advance(100)
	set := d.r.Set()
	if len(set.Windows) < 2 {
		t.Fatalf("want 2 windows, got %d", len(set.Windows))
	}
	for _, w := range set.Windows {
		for i := 1; i < len(w.Providers); i++ {
			if w.Providers[i-1].Name >= w.Providers[i].Name {
				t.Fatalf("providers not strictly sorted: %+v", w.Providers)
			}
		}
	}
	// Each advance adds one TAGE3 hit and one BIM2 miss; the second window's
	// deltas must not re-count the first's.
	w := set.Windows[1]
	for _, p := range w.Providers {
		switch p.Name {
		case "TAGE3":
			if p.Branches != 1 {
				t.Fatalf("TAGE3 delta branches = %d, want 1", p.Branches)
			}
		case "BIM2":
			if p.Mispredicts != 1 {
				t.Fatalf("BIM2 delta mispredicts = %d, want 1", p.Mispredicts)
			}
		}
	}
}

func TestRecorderH2PThreshold(t *testing.T) {
	r := NewRecorder(100)
	s := stats.NewSim()
	for i := uint32(0); i < H2PThreshold-1; i++ {
		r.Mispredict(0x40)
	}
	if r.windowH2P != 0 {
		t.Fatalf("pc below threshold counted: %d", r.windowH2P)
	}
	r.Mispredict(0x40) // crosses the threshold
	r.Mispredict(0x40) // and stays in the set
	if r.windowH2P != 2 {
		t.Fatalf("windowH2P = %d, want 2", r.windowH2P)
	}
	s.Instructions = 100
	r.Tick(200, &s, 0, 0, 0)
	set := r.Set()
	if got := set.Windows[0].H2PMispredicts; got != 2 {
		t.Fatalf("window H2PMispredicts = %d, want 2", got)
	}
	// The per-window counter resets; the per-PC set persists.
	r.Mispredict(0x40)
	if r.windowH2P != 1 {
		t.Fatalf("after close, windowH2P = %d, want 1 (set membership persists)", r.windowH2P)
	}
}

func TestRecorderRebaseAndReset(t *testing.T) {
	d := newDriver(100)
	for i := uint32(0); i < H2PThreshold; i++ {
		d.r.Mispredict(0x99)
	}
	d.advance(250)
	if _, ok := d.r.Latest(); !ok {
		t.Fatal("no window before rebase")
	}
	// Rebase (the warmup boundary): windows restart at zero, H2P set survives.
	d.r.Rebase(d.cyc, d.s.Instructions/10, d.s.Instructions/20, 0)
	if _, ok := d.r.Latest(); ok {
		t.Fatal("window survived rebase")
	}
	d.r.Mispredict(0x99)
	if d.r.windowH2P != 1 {
		t.Fatal("H2P set did not survive rebase")
	}
	// Reset (a retried attempt): the H2P set is cleared too.
	d.r.Reset()
	d.r.Mispredict(0x99)
	if d.r.windowH2P != 0 {
		t.Fatal("H2P set survived reset")
	}
}

func TestRecorderRingOverflow(t *testing.T) {
	r := NewRecorder(10)
	s := stats.NewSim()
	const total = ringCap + 50
	for i := 1; i <= total; i++ {
		s.Instructions = uint64(i * 10)
		r.Tick(uint64(i*20), &s, 0, 0, 0)
	}
	set := r.Set()
	if len(set.Windows) != ringCap {
		t.Fatalf("kept %d windows, ring holds %d", len(set.Windows), ringCap)
	}
	if set.Dropped != 50 {
		t.Fatalf("dropped = %d, want 50", set.Dropped)
	}
	if first := set.Windows[0].Index; first != 50 {
		t.Fatalf("oldest kept window index = %d, want 50 (oldest dropped first)", first)
	}
	// The survivors must still encode: contiguity holds across the drop.
	if _, err := set.Encode(); err != nil {
		t.Fatalf("overflowed set does not encode: %v", err)
	}
}

func TestRecorderLatestIsACopy(t *testing.T) {
	d := newDriver(100)
	d.advance(100)
	w, ok := d.r.Latest()
	if !ok {
		t.Fatal("no window")
	}
	if len(w.Providers) == 0 {
		t.Fatal("expected provider stats")
	}
	w.Providers[0].Branches = 0xDEAD
	again, _ := d.r.Latest()
	if again.Providers[0].Branches == 0xDEAD {
		t.Fatal("Latest aliases ring storage")
	}
}
