package interval

import (
	"fmt"
	"sort"

	"cobra/internal/obs"
)

// FromEvents buckets an already-captured event trace into fixed cycle
// windows, so existing .evt files gain windowed statistics without
// re-running the simulation.  Windows are cycle-buckets (IntervalInsts is 0:
// an event trace carries no commit counts), indexed by bucket number from
// the first populated bucket; instruction bounds stay zero-width.
//
// Kind mapping: per-component predict events count toward that provider's
// Branches and mispredict events toward both the window's and the
// provider's Mispredicts; squash, redirect, and repair events land in their
// namesake counters.
func FromEvents(events []obs.Event, everyCycles uint64) (*Set, error) {
	if everyCycles == 0 {
		return nil, fmt.Errorf("interval: window size must be positive")
	}
	s := &Set{}
	if len(events) == 0 {
		s.Hash = s.ContentHash()
		return s, nil
	}
	lo, hi := events[0].Cycle, events[0].Cycle
	for _, ev := range events {
		if ev.Cycle < lo {
			lo = ev.Cycle
		}
		if ev.Cycle > hi {
			hi = ev.Cycle
		}
	}
	first, last := lo/everyCycles, hi/everyCycles
	n := last - first + 1
	if n > 1<<20 {
		return nil, fmt.Errorf("interval: %d cycles at window %d would make %d windows; use a larger -by-window",
			hi-lo, everyCycles, n)
	}
	s.Windows = make([]Window, n)
	provs := make([]map[string]*ProviderStat, n)
	for i := range s.Windows {
		b := first + uint64(i)
		s.Windows[i] = Window{
			Index:      int(b),
			StartCycle: b * everyCycles, EndCycle: (b + 1) * everyCycles,
			StartInst: 0, EndInst: 0,
		}
		provs[i] = map[string]*ProviderStat{}
	}
	for _, ev := range events {
		i := ev.Cycle/everyCycles - first
		w := &s.Windows[i]
		prov := func() *ProviderStat {
			p := provs[i][ev.Comp]
			if p == nil {
				p = &ProviderStat{Name: ev.Comp}
				provs[i][ev.Comp] = p
			}
			return p
		}
		switch ev.Kind {
		case obs.KPredict:
			if ev.Comp != "" {
				prov().Branches++
			}
		case obs.KMispredict:
			w.Mispredicts++
			if ev.Comp != "" {
				prov().Mispredicts++
			}
		case obs.KSquash:
			w.Squashes++
		case obs.KRedirect:
			w.Redirects++
		case obs.KRepair:
			w.HistoryRepairs++
		}
	}
	for i := range s.Windows {
		w := &s.Windows[i]
		for _, p := range provs[i] {
			w.Providers = append(w.Providers, *p)
		}
		sort.Slice(w.Providers, func(a, b int) bool { return w.Providers[a].Name < w.Providers[b].Name })
	}
	s.Hash = s.ContentHash()
	return s, nil
}
