package interval

import (
	"math/rand"
	"strings"
	"testing"
)

func TestCompareSame(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomSet(rng, 8)
	rng = rand.New(rand.NewSource(3))
	b := randomSet(rng, 8)
	d, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Same() || d.FirstWindow != -1 || d.Diverged != 0 {
		t.Fatalf("identical sets diverged: %+v", d)
	}
}

func TestCompareFindsFirstDivergence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomSet(rng, 10)
	rng = rand.New(rand.NewSource(5))
	b := randomSet(rng, 10)
	b.Windows[4].Mispredicts += 7
	b.Windows[6].Squashes += 1
	d, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Same() {
		t.Fatal("divergence missed")
	}
	if d.FirstWindow != a.Windows[4].Index {
		t.Fatalf("FirstWindow = %d, want %d", d.FirstWindow, a.Windows[4].Index)
	}
	if d.FirstCycle != a.Windows[4].StartCycle || d.FirstInst != a.Windows[4].StartInst {
		t.Fatalf("divergence bounds (%d,%d) not the window start (%d,%d)",
			d.FirstCycle, d.FirstInst, a.Windows[4].StartCycle, a.Windows[4].StartInst)
	}
	if d.Diverged != 2 {
		t.Fatalf("Diverged = %d, want 2", d.Diverged)
	}
	if len(d.Deltas) != 1 || d.Deltas[0].Name != "mispredicts" || d.Deltas[0].Delta() != 7 {
		t.Fatalf("Deltas = %+v, want one mispredicts delta of +7", d.Deltas)
	}
}

func TestCompareProviderDeltas(t *testing.T) {
	mk := func() *Set {
		return &Set{IntervalInsts: 100, Windows: []Window{{
			Index: 0, EndCycle: 10, EndInst: 100,
			Providers: []ProviderStat{{Name: "BIM2", Branches: 5}, {Name: "TAGE3", Branches: 9}},
		}}}
	}
	a, b := mk(), mk()
	b.Windows[0].Providers = []ProviderStat{{Name: "TAGE3", Branches: 11}}
	d, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{
		"provider:BIM2:branches":  -5, // only in a
		"provider:TAGE3:branches": 2,
	}
	if len(d.Deltas) != len(want) {
		t.Fatalf("Deltas = %+v", d.Deltas)
	}
	for _, m := range d.Deltas {
		if want[m.Name] != m.Delta() {
			t.Fatalf("delta %s = %d, want %d", m.Name, m.Delta(), want[m.Name])
		}
	}
}

func TestCompareLengthMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomSet(rng, 6)
	b := &Set{IntervalInsts: a.IntervalInsts, Dropped: a.Dropped,
		Windows: append([]Window(nil), a.Windows[:4]...)}
	d, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Same() {
		t.Fatal("length mismatch not a divergence")
	}
	if d.FirstWindow != -1 || d.Diverged != 0 {
		t.Fatalf("common prefix flagged: %+v", d)
	}
	if d.LenA != 6 || d.LenB != 4 {
		t.Fatalf("lengths %d/%d", d.LenA, d.LenB)
	}
}

func TestCompareIncomparable(t *testing.T) {
	a := &Set{IntervalInsts: 100}
	b := &Set{IntervalInsts: 200}
	if _, err := Compare(a, b); err == nil || !strings.Contains(err.Error(), "incomparable") {
		t.Fatalf("err = %v, want incomparable-sets error", err)
	}
	a = &Set{IntervalInsts: 100, Windows: []Window{{Index: 0}}}
	b = &Set{IntervalInsts: 100, Windows: []Window{{Index: 3}}}
	if _, err := Compare(a, b); err == nil || !strings.Contains(err.Error(), "drop horizons") {
		t.Fatalf("err = %v, want drop-horizon error", err)
	}
}
