package interval

import (
	"strings"
	"testing"

	"cobra/internal/obs"
)

func TestFromEventsBucketsAndKinds(t *testing.T) {
	evs := []obs.Event{
		// First populated bucket is 2 (cycles 200..299): indexing must start
		// there, not at zero.
		{Cycle: 210, Kind: obs.KPredict, Comp: "TAGE3"},
		{Cycle: 220, Kind: obs.KPredict, Comp: "BIM2"},
		{Cycle: 230, Kind: obs.KMispredict, Comp: "TAGE3"},
		{Cycle: 240, Kind: obs.KSquash},
		{Cycle: 250, Kind: obs.KRedirect},
		// Bucket 3 exercises a different mix and the frontend ("" Comp) case.
		{Cycle: 310, Kind: obs.KRepair, Comp: "LOOP3"},
		{Cycle: 320, Kind: obs.KMispredict}, // frontend: window counter only
	}
	set, err := FromEvents(evs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Windows) != 2 {
		t.Fatalf("want 2 windows, got %d", len(set.Windows))
	}
	if set.IntervalInsts != 0 {
		t.Fatalf("cycle-bucketed set claims commit-based windows: %d", set.IntervalInsts)
	}
	w0, w1 := set.Windows[0], set.Windows[1]
	if w0.Index != 2 || w0.StartCycle != 200 || w0.EndCycle != 300 {
		t.Fatalf("first bucket = %+v, want index 2 spanning 200..300", w0)
	}
	if w0.Mispredicts != 1 || w0.Squashes != 1 || w0.Redirects != 1 || w0.HistoryRepairs != 0 {
		t.Fatalf("bucket 2 counters wrong: %+v", w0)
	}
	if len(w0.Providers) != 2 || w0.Providers[0].Name != "BIM2" || w0.Providers[1].Name != "TAGE3" {
		t.Fatalf("bucket 2 providers not sorted: %+v", w0.Providers)
	}
	if w0.Providers[1].Branches != 1 || w0.Providers[1].Mispredicts != 1 {
		t.Fatalf("TAGE3 stats = %+v", w0.Providers[1])
	}
	if w1.HistoryRepairs != 1 || w1.Mispredicts != 1 {
		t.Fatalf("bucket 3 counters wrong: %+v", w1)
	}
	// The frontend mispredict must not fabricate a provider.
	for _, p := range w1.Providers {
		if p.Name == "" {
			t.Fatalf("empty provider name recorded: %+v", w1.Providers)
		}
	}
	if set.Hash == "" || set.Hash != set.ContentHash() {
		t.Fatalf("hash %q not the content hash", set.Hash)
	}
}

func TestFromEventsRejectsBadWindowing(t *testing.T) {
	if _, err := FromEvents(nil, 0); err == nil {
		t.Fatal("zero window size accepted")
	}
	evs := []obs.Event{{Cycle: 0}, {Cycle: 1 << 40}}
	if _, err := FromEvents(evs, 1); err == nil || !strings.Contains(err.Error(), "windows") {
		t.Fatalf("err = %v, want too-many-windows error", err)
	}
}

func TestFromEventsEmpty(t *testing.T) {
	set, err := FromEvents(nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Windows) != 0 || set.Hash == "" {
		t.Fatalf("empty trace set = %+v", set)
	}
}
