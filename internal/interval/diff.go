package interval

import "fmt"

// MetricDelta is one metric's disagreement inside a divergent window.
type MetricDelta struct {
	Name string `json:"name"`
	A    uint64 `json:"a"`
	B    uint64 `json:"b"`
}

// Delta returns the signed difference B-A.
func (d MetricDelta) Delta() int64 { return int64(d.B) - int64(d.A) }

// Diff is the result of aligning two interval sets window by window.
type Diff struct {
	// FirstWindow is the index of the first divergent window, -1 when the
	// overlapping windows all agree.
	FirstWindow int `json:"first_window"`
	// FirstCycle and FirstInst are the divergent window's start bounds in
	// run A — the replay range a cycle-level bisection starts from.
	FirstCycle uint64 `json:"first_cycle,omitempty"`
	FirstInst  uint64 `json:"first_inst,omitempty"`
	// Deltas are the disagreeing metrics of the first divergent window.
	Deltas []MetricDelta `json:"deltas,omitempty"`
	// Diverged counts divergent windows across the overlap.
	Diverged int `json:"diverged"`
	// LenA and LenB are the two sets' window counts; a length mismatch is
	// itself a divergence even when the overlap agrees.
	LenA int `json:"len_a"`
	LenB int `json:"len_b"`
}

// Same reports that the two sets agreed everywhere, including length.
func (d *Diff) Same() bool { return d.FirstWindow < 0 && d.LenA == d.LenB }

// Compare aligns two interval sets by window index and reports where they
// first diverge.  The sets must have been sampled at the same interval.
func Compare(a, b *Set) (*Diff, error) {
	if a.IntervalInsts != b.IntervalInsts {
		return nil, fmt.Errorf("interval: incomparable sets: sampled every %d vs %d instructions",
			a.IntervalInsts, b.IntervalInsts)
	}
	if len(a.Windows) > 0 && len(b.Windows) > 0 && a.Windows[0].Index != b.Windows[0].Index {
		return nil, fmt.Errorf("interval: incomparable sets: first windows are %d vs %d (different drop horizons)",
			a.Windows[0].Index, b.Windows[0].Index)
	}
	d := &Diff{FirstWindow: -1, LenA: len(a.Windows), LenB: len(b.Windows)}
	n := len(a.Windows)
	if len(b.Windows) < n {
		n = len(b.Windows)
	}
	for i := 0; i < n; i++ {
		deltas := windowDeltas(&a.Windows[i], &b.Windows[i])
		if len(deltas) == 0 {
			continue
		}
		d.Diverged++
		if d.FirstWindow < 0 {
			d.FirstWindow = a.Windows[i].Index
			d.FirstCycle = a.Windows[i].StartCycle
			d.FirstInst = a.Windows[i].StartInst
			d.Deltas = deltas
		}
	}
	return d, nil
}

// windowDeltas lists every metric on which two same-index windows disagree,
// in a fixed order.
func windowDeltas(a, b *Window) []MetricDelta {
	var out []MetricDelta
	add := func(name string, va, vb uint64) {
		if va != vb {
			out = append(out, MetricDelta{Name: name, A: va, B: vb})
		}
	}
	add("end_cycle", a.EndCycle, b.EndCycle)
	add("end_inst", a.EndInst, b.EndInst)
	add("branches", a.Branches, b.Branches)
	add("mispredicts", a.Mispredicts, b.Mispredicts)
	add("dir_mispredicts", a.DirMispredicts, b.DirMispredicts)
	add("tgt_mispredicts", a.TgtMispredicts, b.TgtMispredicts)
	add("btb_misses", a.BTBMisses, b.BTBMisses)
	add("ras_events", a.RASEvents, b.RASEvents)
	add("fetch_bubbles", a.FetchBubbles, b.FetchBubbles)
	add("redirects", a.Redirects, b.Redirects)
	add("history_repairs", a.HistoryRepairs, b.HistoryRepairs)
	add("fetch_replays", a.FetchReplays, b.FetchReplays)
	add("overrides", a.Overrides, b.Overrides)
	add("squashes", a.Squashes, b.Squashes)
	add("h2p_mispredicts", a.H2PMispredicts, b.H2PMispredicts)
	// Providers are sorted by name in both windows; merge-walk them.
	i, j := 0, 0
	for i < len(a.Providers) || j < len(b.Providers) {
		switch {
		case j == len(b.Providers) || (i < len(a.Providers) && a.Providers[i].Name < b.Providers[j].Name):
			p := a.Providers[i]
			add("provider:"+p.Name+":branches", p.Branches, 0)
			add("provider:"+p.Name+":mispredicts", p.Mispredicts, 0)
			i++
		case i == len(a.Providers) || a.Providers[i].Name > b.Providers[j].Name:
			p := b.Providers[j]
			add("provider:"+p.Name+":branches", 0, p.Branches)
			add("provider:"+p.Name+":mispredicts", 0, p.Mispredicts)
			j++
		default:
			add("provider:"+a.Providers[i].Name+":branches", a.Providers[i].Branches, b.Providers[j].Branches)
			add("provider:"+a.Providers[i].Name+":mispredicts", a.Providers[i].Mispredicts, b.Providers[j].Mispredicts)
			i, j = i+1, j+1
		}
	}
	return out
}
