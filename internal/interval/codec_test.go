package interval

import (
	"bytes"
	"encoding/binary"
	"flag"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/golden files")

// randomSet builds a seeded pseudo-random contiguous window sequence
// exercising empty and populated provider lists, zero-span and wide windows,
// and full-range counter values.
func randomSet(rng *rand.Rand, n int) *Set {
	names := []string{"TAGE3", "BIM2", "BTB2", "UBTB1", "LOOP3", "a-very-long-component-instance-name"}
	s := &Set{IntervalInsts: 1 + uint64(rng.Intn(200_000)), Dropped: uint64(rng.Intn(3))}
	index := rng.Intn(5)
	cyc := uint64(rng.Intn(10_000))
	inst := uint64(rng.Intn(10_000))
	for i := 0; i < n; i++ {
		w := Window{
			Index:      index,
			StartCycle: cyc, EndCycle: cyc + uint64(rng.Intn(1_000_000)),
			StartInst: inst, EndInst: inst + uint64(rng.Intn(1_000_000)),

			Branches:       rng.Uint64() >> uint(rng.Intn(64)),
			Mispredicts:    uint64(rng.Intn(10_000)),
			DirMispredicts: uint64(rng.Intn(10_000)),
			TgtMispredicts: uint64(rng.Intn(10_000)),
			BTBMisses:      uint64(rng.Intn(10_000)),
			RASEvents:      uint64(rng.Intn(10_000)),
			FetchBubbles:   uint64(rng.Intn(10_000)),
			Redirects:      uint64(rng.Intn(10_000)),
			HistoryRepairs: uint64(rng.Intn(10_000)),
			FetchReplays:   uint64(rng.Intn(10_000)),
			Overrides:      uint64(rng.Intn(10_000)),
			Squashes:       uint64(rng.Intn(10_000)),
			H2PMispredicts: uint64(rng.Intn(10_000)),
		}
		for _, name := range names {
			if rng.Intn(2) == 0 {
				w.Providers = append(w.Providers, ProviderStat{
					Name: name, Branches: uint64(rng.Intn(100_000)), Mispredicts: uint64(rng.Intn(1_000)),
				})
			}
		}
		s.Windows = append(s.Windows, w)
		index++
		cyc, inst = w.EndCycle, w.EndInst
	}
	return s
}

func TestCodecRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 500} {
		rng := rand.New(rand.NewSource(int64(n) + 42))
		want := randomSet(rng, n)
		data, err := want.Encode()
		if err != nil {
			t.Fatalf("n=%d: encode: %v", n, err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		want.Hash = want.ContentHash()
		if got.Hash != want.Hash {
			t.Fatalf("n=%d: decoded hash %s, want %s", n, got.Hash, want.Hash)
		}
		if len(got.Windows) != len(want.Windows) {
			t.Fatalf("n=%d: got %d windows back", n, len(got.Windows))
		}
		if got.IntervalInsts != want.IntervalInsts || got.Dropped != want.Dropped {
			t.Fatalf("n=%d: header fields mangled: %+v", n, got)
		}
		for i := range want.Windows {
			if !reflect.DeepEqual(got.Windows[i], want.Windows[i]) {
				t.Fatalf("n=%d: window %d: got %+v, want %+v", n, i, got.Windows[i], want.Windows[i])
			}
		}
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	// Many small seeded sets: any encode/decode asymmetry that depends on
	// field values shows up across the sweep.
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		want := randomSet(rng, 1+rng.Intn(24))
		data, err := want.Encode()
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if !reflect.DeepEqual(got.Windows, want.Windows) {
			t.Fatalf("seed %d: round trip mismatch", seed)
		}
		// Re-encoding the decoded set must reproduce the bytes exactly —
		// the content hash is only a determinism pin if encoding is a
		// function of the logical content alone.
		again, err := got.Encode()
		if err != nil {
			t.Fatalf("seed %d: re-encode: %v", seed, err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("seed %d: re-encode produced different bytes", seed)
		}
	}
}

// TestCodecGolden pins the CBRAIVL1 byte layout: the format is an interchange
// surface (files on disk, the /intervals binary endpoint), so accidental
// layout drift must fail loudly.  Regenerate with -update after a deliberate
// format change.
func TestCodecGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	set := randomSet(rng, 9)
	data, err := set.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden.ivl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update to create): %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("CBRAIVL1 encoding drifted from the golden file (%d vs %d bytes).\n"+
			"If the format changed deliberately, bump the magic and regenerate with -update.",
			len(data), len(want))
	}
}

// seal replaces the CRC32 footer so structural corruption tests reach the
// parser instead of stopping at the checksum gate.
func seal(data []byte) []byte {
	body := data[:len(data)-4]
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body))
	return append(append([]byte(nil), body...), crc[:]...)
}

func encodeT(t *testing.T, s *Set) []byte {
	t.Helper()
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	_, err := Decode([]byte("NOTMAGIC and then some junk bytes"))
	if err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("err = %v, want bad-magic error", err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	full := encodeT(t, randomSet(rng, 12))
	for _, cut := range []int{len(full) - 1, len(full) / 2, 13, 9} {
		if _, err := Decode(full[:cut]); err == nil {
			t.Errorf("truncation at %d of %d bytes decoded without error", cut, len(full))
		}
	}
}

func TestDecodeRejectsBitFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	full := encodeT(t, randomSet(rng, 6))
	for _, pos := range []int{9, len(full) / 3, len(full) - 6, len(full) - 1} {
		bad := append([]byte(nil), full...)
		bad[pos] ^= 0x40
		if _, err := Decode(bad); err == nil {
			t.Errorf("bit flip at byte %d decoded without error", pos)
		} else if !strings.Contains(err.Error(), "checksum") && pos < len(full)-4 {
			t.Errorf("bit flip at byte %d: err = %v, want checksum mismatch", pos, err)
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	full := encodeT(t, randomSet(rng, 3))
	bad := seal(append(full, 0xAA, 0xBB))
	if _, err := Decode(bad); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("err = %v, want trailing-bytes error", err)
	}
}

func TestDecodeRejectsImplausibleCounts(t *testing.T) {
	// Hand-build a header claiming 2^40 windows; the CRC is valid, so only
	// the structural bound rejects it.
	buf := append([]byte(nil), ivlMagic[:]...)
	buf = binary.AppendUvarint(buf, 100) // interval
	buf = binary.AppendUvarint(buf, 0)   // dropped
	buf = binary.AppendUvarint(buf, 0)   // names
	buf = binary.AppendUvarint(buf, 1<<40)
	bad := seal(append(buf, 0, 0, 0, 0))
	if _, err := Decode(bad); err == nil || !strings.Contains(err.Error(), "implausible window count") {
		t.Fatalf("err = %v, want implausible-window-count error", err)
	}
}

func TestEncodeRejectsNonContiguous(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := randomSet(rng, 4)
	s.Windows[2].StartCycle++ // tear the tiling
	if _, err := s.Encode(); err == nil || !strings.Contains(err.Error(), "not contiguous") {
		t.Fatalf("err = %v, want contiguity error", err)
	}
	if s.ContentHash() != "" {
		t.Fatal("ContentHash of an unencodable set should be empty")
	}
}

func TestWriteReadFile(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	want := randomSet(rng, 5)
	path := filepath.Join(t.TempDir(), "run.ivl")
	if err := WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Windows, want.Windows) {
		t.Fatal("file round trip mismatch")
	}
	// Corrupt on disk: the read must fail loudly, naming the file.
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 1
	os.WriteFile(path, data, 0o644)
	if _, err := ReadFile(path); err == nil || !strings.Contains(err.Error(), path) {
		t.Fatalf("err = %v, want loud failure naming %s", err, path)
	}
}
