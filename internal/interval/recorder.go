package interval

import (
	"sort"
	"sync"

	"cobra/internal/stats"
)

// ringCap bounds the preallocated window ring.  At the default 100k-inst
// window it covers a 409.6M-instruction measured region before the oldest
// windows start dropping — far past every paper budget — while keeping the
// recorder's footprint fixed.
const ringCap = 4096

// snap is the counter snapshot a window's deltas are taken against: the
// cumulative stats fields at the previous window boundary, plus the three
// pipeline counters the core passes alongside (they live outside stats.Sim
// and never reset at warmup).
type snap struct {
	branches, mispredicts, dirMisp, tgtMisp uint64
	btbMisses, rasEvents, fetchBubbles      uint64
	redirects, fetchReplays                 uint64
	overrides, squashes, repairs            uint64
}

// Recorder samples windowed counter deltas from a running core.  It is a
// single-writer structure: the simulation goroutine calls Tick, Mispredict,
// Rebase, and Finish; concurrent readers (the SSE progress feed) use Latest
// and Set, which lock only against window closes — never against the
// fast path, which is a single comparison.
//
// Steady state allocates nothing: windows close into a preallocated ring
// whose per-slot Providers slices are reused, the provider name table stops
// growing once every sub-component has predicted, and the H2P map stops
// growing once the program's branch PCs have all mispredicted at least once.
type Recorder struct {
	every uint64 // window size in committed instructions

	mu      sync.Mutex // guards ring/start/count/dropped (close vs. Latest/Set)
	ring    []Window
	start   int // ring index of the oldest window
	count   int
	dropped uint64

	nextIndex    int    // global index of the next window to close
	nextBoundary uint64 // instruction count that closes the current window
	cycleBase    uint64 // absolute cycle at measurement start
	curStartCyc  uint64 // relative cycle the open window started at
	curStartInst uint64
	prev         snap

	// Provider attribution: names insertion-sorted on first appearance with
	// parallel previous-cumulative arrays, so window emission order is the
	// sorted order and map-iteration nondeterminism never reaches the output.
	provNames []string
	prevHits  []uint64
	prevMiss  []uint64

	// H2P tracking: cumulative per-PC mispredict counts (persists across
	// Rebase so the set warms during the warmup slice), and the open
	// window's in-set mispredict count.
	h2p       map[uint64]uint32
	windowH2P uint64
}

// NewRecorder returns a recorder closing one window every `every` committed
// instructions (0 means DefaultInsts).
func NewRecorder(every uint64) *Recorder {
	if every == 0 {
		every = DefaultInsts
	}
	return &Recorder{
		every:        every,
		ring:         make([]Window, ringCap),
		nextBoundary: every,
		h2p:          make(map[uint64]uint32, 1024),
	}
}

// IntervalInsts returns the configured window size.
func (r *Recorder) IntervalInsts() uint64 { return r.every }

// Mispredict records one committed-branch mispredict at pc for H2P-set
// tracking.  Called from the core's commit stage; lock-free because only the
// simulation goroutine touches the map and the open-window counter.
func (r *Recorder) Mispredict(pc uint64) {
	n := r.h2p[pc] + 1
	r.h2p[pc] = n
	if n >= H2PThreshold {
		r.windowH2P++
	}
}

// Tick is the sampling hook, called from the core's periodic telemetry
// flush.  The fast path — current window still open — is one comparison.
func (r *Recorder) Tick(cycle uint64, s *stats.Sim, overrides, squashes, repairs uint64) {
	if s.Instructions < r.nextBoundary {
		return
	}
	r.close(cycle, s, overrides, squashes, repairs)
	r.nextBoundary = (s.Instructions/r.every + 1) * r.every
}

// close seals the open window at the current counter values.  Window ends
// are quantized to the caller's flush cadence: the window closes at the
// first tick at-or-past the instruction boundary, and the next one opens
// exactly where it ended, so windows tile the measured region.
func (r *Recorder) close(cycle uint64, s *stats.Sim, overrides, squashes, repairs uint64) {
	r.syncProviders(s)
	now := snap{
		branches: s.Branches, mispredicts: s.Mispredicts,
		dirMisp: s.DirMispredicts, tgtMisp: s.TgtMispredicts,
		btbMisses: s.BTBMisses, rasEvents: s.RASEvents,
		fetchBubbles: s.FetchBubbles, redirects: s.RedirectFlushes,
		fetchReplays: s.FetchReplays,
		overrides:    overrides, squashes: squashes, repairs: repairs,
	}

	r.mu.Lock()
	var w *Window
	if r.count == len(r.ring) {
		w = &r.ring[r.start]
		r.start = (r.start + 1) % len(r.ring)
		r.dropped++
	} else {
		w = &r.ring[(r.start+r.count)%len(r.ring)]
		r.count++
	}
	prov := w.Providers[:0] // reuse the slot's backing array
	*w = Window{
		Index:      r.nextIndex,
		StartCycle: r.curStartCyc, EndCycle: cycle - r.cycleBase,
		StartInst: r.curStartInst, EndInst: s.Instructions,

		Branches:       now.branches - r.prev.branches,
		Mispredicts:    now.mispredicts - r.prev.mispredicts,
		DirMispredicts: now.dirMisp - r.prev.dirMisp,
		TgtMispredicts: now.tgtMisp - r.prev.tgtMisp,
		BTBMisses:      now.btbMisses - r.prev.btbMisses,
		RASEvents:      now.rasEvents - r.prev.rasEvents,
		FetchBubbles:   now.fetchBubbles - r.prev.fetchBubbles,
		Redirects:      now.redirects - r.prev.redirects,
		HistoryRepairs: now.repairs - r.prev.repairs,
		FetchReplays:   now.fetchReplays - r.prev.fetchReplays,
		Overrides:      now.overrides - r.prev.overrides,
		Squashes:       now.squashes - r.prev.squashes,
		H2PMispredicts: r.windowH2P,
	}
	for i, name := range r.provNames {
		hits, miss := s.ProviderHits[name], s.ProviderMisses[name]
		if dh, dm := hits-r.prevHits[i], miss-r.prevMiss[i]; dh|dm != 0 {
			prov = append(prov, ProviderStat{Name: name, Branches: dh, Mispredicts: dm})
		}
		r.prevHits[i], r.prevMiss[i] = hits, miss
	}
	w.Providers = prov
	r.mu.Unlock()

	r.nextIndex++
	r.curStartCyc = w.EndCycle
	r.curStartInst = s.Instructions
	r.prev = now
	r.windowH2P = 0
}

// syncProviders inserts any provider names seen since the last close into
// the sorted name table (with zeroed previous-cumulative slots).  The table
// stabilizes after every sub-component has predicted once, so steady state
// does not allocate here.
func (r *Recorder) syncProviders(s *stats.Sim) {
	if len(s.ProviderHits) == len(r.provNames) {
		return
	}
	for name := range s.ProviderHits {
		i := sort.SearchStrings(r.provNames, name)
		if i < len(r.provNames) && r.provNames[i] == name {
			continue
		}
		r.provNames = append(r.provNames, "")
		copy(r.provNames[i+1:], r.provNames[i:])
		r.provNames[i] = name
		r.prevHits = append(r.prevHits, 0)
		copy(r.prevHits[i+1:], r.prevHits[i:])
		r.prevHits[i] = 0
		r.prevMiss = append(r.prevMiss, 0)
		copy(r.prevMiss[i+1:], r.prevMiss[i:])
		r.prevMiss[i] = 0
	}
}

// Rebase discards everything recorded so far and restarts window numbering
// at the current cycle — the interval-level analogue of Core.ResetStats, so
// the warmup slice produces no windows and measured windows start at
// cycle/instruction zero.  The H2P map deliberately survives: the
// hard-to-predict set warms alongside the predictors.  The three pipeline
// counters are snapshotted at their current absolute values because, unlike
// stats.Sim, they do not reset at warmup.
func (r *Recorder) Rebase(cycle uint64, overrides, squashes, repairs uint64) {
	r.mu.Lock()
	r.start, r.count, r.dropped = 0, 0, 0
	r.mu.Unlock()
	r.nextIndex = 0
	r.nextBoundary = r.every
	r.cycleBase = cycle
	r.curStartCyc, r.curStartInst = 0, 0
	r.prev = snap{overrides: overrides, squashes: squashes, repairs: repairs}
	for i := range r.prevHits {
		r.prevHits[i], r.prevMiss[i] = 0, 0
	}
	r.windowH2P = 0
}

// Reset returns the recorder to its just-constructed state: unlike Rebase,
// the H2P map is cleared too.  Exec resets an attached recorder before
// wiring it to a fresh core, so a retried attempt records exactly what a
// first attempt would.
func (r *Recorder) Reset() {
	r.Rebase(0, 0, 0, 0)
	clear(r.h2p)
}

// Finish closes the trailing partial window, if any instructions committed
// into it.  Called once, after the run loop exits.
func (r *Recorder) Finish(cycle uint64, s *stats.Sim, overrides, squashes, repairs uint64) {
	if s.Instructions > r.curStartInst {
		r.close(cycle, s, overrides, squashes, repairs)
	}
}

// Latest returns a copy of the most recently closed window (ok=false before
// the first close).  Safe to call concurrently with the simulation; the
// Providers slice is deep-copied so the caller never aliases ring storage.
func (r *Recorder) Latest() (Window, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count == 0 {
		return Window{}, false
	}
	w := r.ring[(r.start+r.count-1)%len(r.ring)]
	w.Providers = append([]ProviderStat(nil), w.Providers...)
	return w, true
}

// Set snapshots the recorded windows as a self-contained Set with its
// content hash computed.
func (r *Recorder) Set() *Set {
	r.mu.Lock()
	s := &Set{IntervalInsts: r.every, Dropped: r.dropped, Windows: make([]Window, r.count)}
	for i := 0; i < r.count; i++ {
		w := r.ring[(r.start+i)%len(r.ring)]
		w.Providers = append([]ProviderStat(nil), w.Providers...)
		s.Windows[i] = w
	}
	r.mu.Unlock()
	s.Hash = s.ContentHash()
	return s
}
