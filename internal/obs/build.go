package obs

import (
	"fmt"
	"runtime/debug"
)

// Build is the embedded build identity of the running binary, read once from
// runtime/debug.ReadBuildInfo.  It labels the /metrics exposition and the
// healthz payload, and backs every tool's -version flag, so "which build is
// serving" is answerable from any of the three surfaces.
type Build struct {
	Path      string `json:"path"`       // main module path ("cobra")
	Version   string `json:"version"`    // module version ("(devel)" for source builds)
	GoVersion string `json:"go_version"` // toolchain that built the binary
	Revision  string `json:"revision,omitempty"`
	Time      string `json:"time,omitempty"` // commit timestamp (RFC 3339)
	Dirty     bool   `json:"dirty,omitempty"`
}

// BuildInfo returns the binary's build identity.  Fields the build did not
// stamp (e.g. VCS data in a plain `go test` binary) stay empty.
func BuildInfo() Build {
	b := Build{Path: "unknown", Version: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.Path = bi.Main.Path
	b.Version = bi.Main.Version
	b.GoVersion = bi.GoVersion
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.time":
			b.Time = s.Value
		case "vcs.modified":
			b.Dirty = s.Value == "true"
		}
	}
	return b
}

// String renders the one-line form -version prints.
func (b Build) String() string {
	s := fmt.Sprintf("%s %s %s", b.Path, b.Version, b.GoVersion)
	if b.Revision != "" {
		rev := b.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " rev " + rev
		if b.Dirty {
			s += " (dirty)"
		}
	}
	return s
}
