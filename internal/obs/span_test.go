package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tc := NewTraceContext()
	if !tc.Valid() {
		t.Fatal("NewTraceContext produced an invalid context")
	}
	h := tc.Traceparent()
	if len(h) != 55 {
		t.Fatalf("traceparent %q has length %d, want 55", h, len(h))
	}
	got, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", h, err)
	}
	if got != tc {
		t.Fatalf("round trip changed the context: %+v vs %+v", got, tc)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	if _, err := ParseTraceparent(valid); err != nil {
		t.Fatalf("reference header rejected: %v", err)
	}
	bad := []string{
		"",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b716920333",      // short
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",  // bad version
		"00_0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",  // bad separator
		"00-0af7651916cd43dd8448eb211c80319c_b7ad6b7169203331-01",  // bad separator
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",  // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",  // zero span id
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01x", // trailing bytes
		"00-ZZf7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",  // not hex
	}
	for _, h := range bad {
		if _, err := ParseTraceparent(h); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted a malformed header", h)
		}
	}
}

func TestSpanRecorderParenting(t *testing.T) {
	root := NewTraceContext()
	rec := NewSpanRecorder(root, 0)
	parent := rec.Start(rec.Root(), "worker", "worker")
	child := parent.Child("exec", "run")
	child.SetAttr("workload", "fib")
	child.End()
	parent.End()
	spans := rec.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Children End before parents, so the child lands first in the buffer.
	ch, par := spans[0], spans[1]
	if ch.Name != "run" || par.Name != "worker" {
		t.Fatalf("span order: %q then %q", ch.Name, par.Name)
	}
	if ch.TraceID != root.TraceIDString() || par.TraceID != root.TraceIDString() {
		t.Error("spans did not inherit the root trace id")
	}
	if ch.Parent != par.SpanID {
		t.Errorf("child parent_id %s != parent span_id %s", ch.Parent, par.SpanID)
	}
	if ch.Attrs["workload"] != "fib" {
		t.Errorf("child attrs: %v", ch.Attrs)
	}
}

func TestSpanRecorderBound(t *testing.T) {
	rec := NewSpanRecorder(NewTraceContext(), 4)
	now := time.Now()
	for i := 0; i < 10; i++ {
		rec.Record(rec.Root(), "t", "s", now, now.Add(time.Millisecond), nil)
	}
	if got := len(rec.Spans()); got != 4 {
		t.Errorf("buffer holds %d spans, want 4", got)
	}
	if got := rec.Dropped(); got != 6 {
		t.Errorf("Dropped() = %d, want 6", got)
	}
}

func TestNilSpanSafe(t *testing.T) {
	var rec *SpanRecorder
	var sp *ActiveSpan
	rec.Record(TraceContext{}, "t", "s", time.Now(), time.Now(), nil)
	sp = rec.Start(TraceContext{}, "t", "s")
	sp.SetAttr("k", "v")
	sp.Child("t", "s").End()
	sp.End()
	if rec.Spans() != nil || rec.Dropped() != 0 {
		t.Error("nil recorder is not a clean no-op")
	}
}

func TestWriteChromeSpansValid(t *testing.T) {
	root := NewTraceContext()
	rec := NewSpanRecorder(root, 0)
	now := time.Now()
	rec.Record(root, "admission", "admission", now, now.Add(time.Millisecond), map[string]string{"digest": "sha256:ab"})
	rec.Record(root, "queue", "queue.wait", now, now.Add(2*time.Millisecond), nil)
	var buf bytes.Buffer
	if err := WriteChromeSpans(&buf, rec.Spans()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string            `json:"ph"`
			Tid  int               `json:"tid"`
			Name string            `json:"name"`
			Dur  int64             `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	tracks := map[string]bool{}
	slices := 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			tracks[ev.Args["name"]] = true
		case "X":
			slices++
			if ev.Args["trace_id"] != root.TraceIDString() {
				t.Errorf("slice %q trace_id %q != %q", ev.Name, ev.Args["trace_id"], root.TraceIDString())
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if !tracks["admission"] || !tracks["queue"] {
		t.Errorf("thread_name metadata missing tracks: %v", tracks)
	}
	if slices != 2 {
		t.Errorf("got %d X slices, want 2", slices)
	}
	if !strings.Contains(buf.String(), `"digest":"sha256:ab"`) {
		t.Error("span attrs not exported to args")
	}
}
