package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/golden files")

// goldenEvents is a tiny deterministic run's worth of records: one fetch
// packet predicted by two components, fired, mispredicted, repaired, and the
// next packet squashed — every record shape the exporter emits.
func goldenEvents() []Event {
	return []Event{
		{Cycle: 10, PC: 0x1000, Seq: 1, Kind: KPredict, Comp: "UBTB1", Slot: -1, Dur: 1, MetaSum: 0x1111},
		{Cycle: 10, PC: 0x1000, Seq: 1, Kind: KPredict, Comp: "TAGE3", Slot: -1, Dur: 3, MetaSum: 0x2222},
		{Cycle: 11, PC: 0x1000, Seq: 1, Kind: KFire, Comp: "UBTB1", Slot: 2, MetaSum: 0x1111},
		{Cycle: 11, PC: 0x1000, Seq: 1, Kind: KFire, Comp: "TAGE3", Slot: 2, MetaSum: 0x2222},
		{Cycle: 15, PC: 0x1010, Seq: 2, Kind: KSquash, Slot: -1},
		{Cycle: 15, PC: 0x1000, Seq: 1, Kind: KMispredict, Comp: "UBTB1", Slot: 2, MetaSum: 0x1111},
		{Cycle: 15, PC: 0x1000, Seq: 1, Kind: KMispredict, Comp: "TAGE3", Slot: 2, MetaSum: 0x2222},
		{Cycle: 15, PC: 0x1040, Seq: 1, Kind: KRedirect, Slot: -1},
		{Cycle: 16, PC: 0x1000, Seq: 1, Kind: KRepair, Comp: "TAGE3", Slot: -1, MetaSum: 0x2222},
		{Cycle: 20, PC: 0x1000, Seq: 1, Kind: KUpdate, Comp: "UBTB1", Slot: 2, MetaSum: 0x1111},
		{Cycle: 20, PC: 0x1000, Seq: 1, Kind: KUpdate, Comp: "TAGE3", Slot: 2, MetaSum: 0x2222},
	}
}

func TestWriteChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, goldenEvents()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden", "chrome_trace.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -run Golden -update` to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace drifted from golden file %s:\ngot:\n%s\nwant:\n%s", path, buf.Bytes(), want)
	}
}

// chromeTrace mirrors the trace_event container for validation.
type chromeTrace struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Ph   string          `json:"ph"`
		Pid  int             `json:"pid"`
		Tid  int             `json:"tid"`
		Ts   *uint64         `json:"ts"`
		Dur  uint64          `json:"dur"`
		Name string          `json:"name"`
		Args json.RawMessage `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChromeValidJSON(t *testing.T) {
	evs := goldenEvents()
	var buf bytes.Buffer
	if err := WriteChrome(&buf, evs); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	// 3 thread_name metadata records (frontend, UBTB1, TAGE3) + one per event.
	if want := 3 + len(evs); len(tr.TraceEvents) != want {
		t.Fatalf("got %d traceEvents, want %d", len(tr.TraceEvents), want)
	}
	meta, complete, instant := 0, 0, 0
	for _, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if ev.Dur == 0 {
				t.Error("complete event without duration")
			}
		case "i":
			instant++
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
		if ev.Ph != "M" && ev.Ts == nil {
			t.Errorf("%s event missing ts", ev.Ph)
		}
	}
	if meta != 3 || complete != 2 || instant != len(evs)-2 {
		t.Fatalf("phase counts meta=%d complete=%d instant=%d", meta, complete, instant)
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) != 1 { // frontend thread_name only
		t.Fatalf("got %d traceEvents, want 1", len(tr.TraceEvents))
	}
}
