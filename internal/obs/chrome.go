package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// WriteChrome exports events in the Chrome trace_event JSON format, loadable
// in chrome://tracing and Perfetto.  Each sub-component becomes its own named
// thread; frontend-level records (redirect, squash) land on thread 0.  One
// simulated cycle maps to one trace microsecond.  Predict events render as
// complete ("X") slices spanning the component's response latency; all other
// events render as instants.  The output is deterministic: field order is
// fixed and events appear in input order.
func WriteChrome(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	// Thread directory: tid 0 is the frontend, components get tids in first-
	// appearance order.
	tids := map[string]int{"": 0}
	order := []string{""}
	for _, ev := range events {
		if _, ok := tids[ev.Comp]; !ok {
			tids[ev.Comp] = len(order)
			order = append(order, ev.Comp)
		}
	}
	first := true
	emit := func(format string, args ...interface{}) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}
	for tid, name := range order {
		if name == "" {
			name = "frontend"
		}
		emit(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%q}}`, tid, name)
	}
	for i := range events {
		ev := &events[i]
		tid := tids[ev.Comp]
		switch {
		case ev.Kind == KPredict && ev.Dur > 0:
			emit(`{"ph":"X","pid":1,"tid":%d,"ts":%d,"dur":%d,"name":%q,"args":{"pc":"0x%x","seq":%d,"slot":%d,"metasum":"0x%x"}}`,
				tid, ev.Cycle, ev.Dur, ev.Kind.String(), ev.PC, ev.Seq, ev.Slot, ev.MetaSum)
		default:
			scope := "t"
			if ev.Comp == "" {
				scope = "g" // frontend records span the whole process lane
			}
			emit(`{"ph":"i","pid":1,"tid":%d,"ts":%d,"s":%q,"name":%q,"args":{"pc":"0x%x","seq":%d,"slot":%d,"metasum":"0x%x"}}`,
				tid, ev.Cycle, scope, ev.Kind.String(), ev.PC, ev.Seq, ev.Slot, ev.MetaSum)
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteChromeSpans exports wall-clock request spans in the same Chrome
// trace_event JSON format WriteChrome uses for cycle-level events, so a
// request timeline opens in Perfetto next to a cycle timeline.  Each span
// track ("admission", "queue", "cache", "exec", …) becomes its own named
// thread, every span renders as a complete ("X") slice at its wall-clock
// microsecond timestamps, and the W3C identifiers plus any attributes land
// in args for filtering.  Output is deterministic for a given span slice:
// field order is fixed and spans appear in input order.
func WriteChromeSpans(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	tids := map[string]int{}
	var order []string
	for _, sp := range spans {
		if _, ok := tids[sp.Track]; !ok {
			tids[sp.Track] = len(order)
			order = append(order, sp.Track)
		}
	}
	first := true
	emit := func(format string, args ...interface{}) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}
	for tid, name := range order {
		emit(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%q}}`, tid, name)
	}
	for i := range spans {
		sp := &spans[i]
		var attrs string
		for _, k := range sortedAttrKeys(sp.Attrs) {
			attrs += fmt.Sprintf(",%q:%q", k, sp.Attrs[k])
		}
		emit(`{"ph":"X","pid":1,"tid":%d,"ts":%d,"dur":%d,"name":%q,"args":{"trace_id":%q,"span_id":%q,"parent_id":%q%s}}`,
			tids[sp.Track], sp.StartUS, sp.DurUS, sp.Name, sp.TraceID, sp.SpanID, sp.Parent, attrs)
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func sortedAttrKeys(m map[string]string) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
