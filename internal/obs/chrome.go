package obs

import (
	"bufio"
	"fmt"
	"io"
)

// WriteChrome exports events in the Chrome trace_event JSON format, loadable
// in chrome://tracing and Perfetto.  Each sub-component becomes its own named
// thread; frontend-level records (redirect, squash) land on thread 0.  One
// simulated cycle maps to one trace microsecond.  Predict events render as
// complete ("X") slices spanning the component's response latency; all other
// events render as instants.  The output is deterministic: field order is
// fixed and events appear in input order.
func WriteChrome(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	// Thread directory: tid 0 is the frontend, components get tids in first-
	// appearance order.
	tids := map[string]int{"": 0}
	order := []string{""}
	for _, ev := range events {
		if _, ok := tids[ev.Comp]; !ok {
			tids[ev.Comp] = len(order)
			order = append(order, ev.Comp)
		}
	}
	first := true
	emit := func(format string, args ...interface{}) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}
	for tid, name := range order {
		if name == "" {
			name = "frontend"
		}
		emit(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%q}}`, tid, name)
	}
	for i := range events {
		ev := &events[i]
		tid := tids[ev.Comp]
		switch {
		case ev.Kind == KPredict && ev.Dur > 0:
			emit(`{"ph":"X","pid":1,"tid":%d,"ts":%d,"dur":%d,"name":%q,"args":{"pc":"0x%x","seq":%d,"slot":%d,"metasum":"0x%x"}}`,
				tid, ev.Cycle, ev.Dur, ev.Kind.String(), ev.PC, ev.Seq, ev.Slot, ev.MetaSum)
		default:
			scope := "t"
			if ev.Comp == "" {
				scope = "g" // frontend records span the whole process lane
			}
			emit(`{"ph":"i","pid":1,"tid":%d,"ts":%d,"s":%q,"name":%q,"args":{"pc":"0x%x","seq":%d,"slot":%d,"metasum":"0x%x"}}`,
				tid, ev.Cycle, scope, ev.Kind.String(), ev.PC, ev.Seq, ev.Slot, ev.MetaSum)
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
