package obs

import (
	"sync/atomic"
	"time"
)

// RunProgress is a lock-free live-progress sink for one simulation run: the
// core and the exec pipeline publish phase transitions and cycle/instruction
// totals into plain atomics, and any number of readers (the SSE endpoint,
// /statusz, a progress bar) snapshot them without coordinating with the
// writer.  Publishing is two atomic stores on the existing 8192-cycle metrics
// flush cadence, so arming progress costs the hot loop nothing measurable and
// a nil *RunProgress is, as everywhere in obs, a valid no-op receiver.

// Run phases, in execution order.  Queued is the zero value so a freshly
// allocated RunProgress reports it without a store.
type RunPhase uint32

const (
	PhaseQueued RunPhase = iota
	PhaseCanonicalize
	PhaseCompose
	PhaseWorkload
	PhaseWarmup
	PhaseSimulate
	PhaseDone
	PhaseFailed
)

// String returns the lower-case phase name used in progress events and on
// /statusz.
func (p RunPhase) String() string {
	switch p {
	case PhaseQueued:
		return "queued"
	case PhaseCanonicalize:
		return "canonicalize"
	case PhaseCompose:
		return "compose"
	case PhaseWorkload:
		return "workload"
	case PhaseWarmup:
		return "warmup"
	case PhaseSimulate:
		return "simulate"
	case PhaseDone:
		return "done"
	case PhaseFailed:
		return "failed"
	}
	return "unknown"
}

// Terminal reports whether the phase is an end state.
func (p RunPhase) Terminal() bool { return p == PhaseDone || p == PhaseFailed }

// RunProgress is the shared sink.  All methods are safe for concurrent use
// and valid on a nil receiver.
type RunProgress struct {
	phase  atomic.Uint32
	cycles atomic.Uint64
	insts  atomic.Uint64
	target atomic.Uint64 // instruction budget of the current phase (0 = unknown)
	// startNS is the wall clock at the first non-queued phase transition,
	// for the insts/sec rate; 0 while still queued.
	startNS atomic.Int64
}

// NewRunProgress returns a sink in PhaseQueued.
func NewRunProgress() *RunProgress { return &RunProgress{} }

// SetPhase publishes a phase transition (and starts the rate clock on the
// first transition out of queued).
func (p *RunProgress) SetPhase(ph RunPhase) {
	if p == nil {
		return
	}
	if ph != PhaseQueued && p.startNS.Load() == 0 {
		p.startNS.CompareAndSwap(0, time.Now().UnixNano())
	}
	p.phase.Store(uint32(ph))
}

// SetTarget publishes the committed-instruction budget of the current phase
// (warmup steps or simulate max), so readers can render completion percent.
func (p *RunProgress) SetTarget(insts uint64) {
	if p != nil {
		p.target.Store(insts)
	}
}

// Set publishes the cycle and instruction totals — the call the core makes on
// its periodic flush.
func (p *RunProgress) Set(cycles, insts uint64) {
	if p == nil {
		return
	}
	p.cycles.Store(cycles)
	p.insts.Store(insts)
}

// ProgressSnapshot is one point-in-time read of a run's progress.
type ProgressSnapshot struct {
	Phase       string  `json:"phase"`
	Cycles      uint64  `json:"cycles"`
	Insts       uint64  `json:"insts"`
	TargetInsts uint64  `json:"target_insts,omitempty"`
	InstsPerSec float64 `json:"insts_per_sec"`
	ElapsedMS   int64   `json:"elapsed_ms"`
	QueuePos    int     `json:"queue_pos,omitempty"`
	Done        bool    `json:"done"`
}

// Snap reads the sink.  QueuePos is the caller's to fill (the sink does not
// know about its neighbours in a queue).
func (p *RunProgress) Snap() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{Phase: PhaseQueued.String()}
	}
	ph := RunPhase(p.phase.Load())
	s := ProgressSnapshot{
		Phase:       ph.String(),
		Cycles:      p.cycles.Load(),
		Insts:       p.insts.Load(),
		TargetInsts: p.target.Load(),
		Done:        ph.Terminal(),
	}
	if start := p.startNS.Load(); start != 0 {
		elapsed := time.Since(time.Unix(0, start))
		s.ElapsedMS = elapsed.Milliseconds()
		if sec := elapsed.Seconds(); sec > 0 {
			s.InstsPerSec = float64(s.Insts) / sec
		}
	}
	return s
}

// Phase reads the current phase.
func (p *RunProgress) Phase() RunPhase {
	if p == nil {
		return PhaseQueued
	}
	return RunPhase(p.phase.Load())
}
