package obs

import (
	"fmt"
	"math"
	"runtime/metrics"
	"strconv"
	"strings"
)

// RuntimeExpo renders a small runtime/metrics-backed scrape — scheduler,
// goroutine, heap, and GC health — appended to the process exposition by
// ServeMetrics and the serve daemon.  Families:
//
//	go_goroutines                   gauge
//	go_gc_cycles_total              counter
//	go_heap_objects_bytes           gauge (live heap)
//	go_heap_allocs_bytes_total      counter
//	go_gc_pause_seconds             histogram (cumulative since process start)
//	go_sched_latency_seconds        histogram (cumulative since process start)
//
// The two histograms come from runtime Float64Histograms, which use hundreds
// of irregular buckets; they are downsampled to a coarse ladder so the scrape
// stays scrape-sized, with _sum approximated by bucket midpoints.
func RuntimeExpo() string { return runtimeExpo(false) }

// RuntimeExpoOpenMetrics is RuntimeExpo with OpenMetrics counter-family
// naming (family declared without the `_total` suffix).
func RuntimeExpoOpenMetrics() string { return runtimeExpo(true) }

func runtimeExpo(om bool) string {
	samples := []metrics.Sample{
		{Name: rmGoroutines},
		{Name: rmGCCycles},
		{Name: rmHeapLive},
		{Name: rmAllocBytes},
		{Name: rmGCPauses},
		{Name: rmSchedLat},
	}
	metrics.Read(samples)

	var b strings.Builder
	gauge := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fam := name
		if om {
			fam = strings.TrimSuffix(name, "_total")
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", fam, help, fam, name, v)
	}
	gauge("go_goroutines", "goroutines currently live", kindUint64(samples[0]))
	counter("go_gc_cycles_total", "completed GC cycles since process start", kindUint64(samples[1]))
	gauge("go_heap_objects_bytes", "bytes of live heap objects", kindUint64(samples[2]))
	counter("go_heap_allocs_bytes_total", "cumulative bytes allocated on the heap", kindUint64(samples[3]))
	runtimeHist(&b, "go_gc_pause_seconds",
		"stop-the-world GC pause distribution since process start", samples[4])
	runtimeHist(&b, "go_sched_latency_seconds",
		"time goroutines spent runnable before running, since process start", samples[5])
	return b.String()
}

// runtimeHistBounds is the coarse ladder the runtime histograms are
// downsampled onto: 1µs to ~1s.
var runtimeHistBounds = ExpBuckets(1e-6, 4, 11)

// runtimeHist renders one runtime Float64Histogram as a Prometheus histogram
// on the coarse ladder.  Counts are cumulative since process start (Prometheus
// histograms are cumulative anyway, so rate() works as usual).
func runtimeHist(b *strings.Builder, name, help string, s metrics.Sample) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	counts := make([]uint64, len(runtimeHistBounds)+1)
	var sum float64
	var total uint64
	if s.Value.Kind() == metrics.KindFloat64Histogram {
		h := s.Value.Float64Histogram()
		for i, n := range h.Counts {
			if n == 0 {
				continue
			}
			mid := bucketMid(h.Buckets, i)
			counts[searchBounds(runtimeHistBounds, mid)] += n
			sum += float64(n) * mid
			total += n
		}
	}
	var cum uint64
	for i, bound := range runtimeHistBounds {
		cum += counts[i]
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, formatBound(bound), cum)
	}
	cum += counts[len(runtimeHistBounds)]
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(b, "%s_sum %s\n", name, strconv.FormatFloat(sum, 'g', -1, 64))
	fmt.Fprintf(b, "%s_count %d\n", name, total)
}

// searchBounds returns the index of the first bound >= v (len(bounds) when v
// exceeds them all) — the same bucket rule Histogram.Observe uses.
func searchBounds(bounds []float64, v float64) int {
	for i, bound := range bounds {
		if v <= bound || math.IsInf(bound, +1) {
			return i
		}
	}
	return len(bounds)
}
