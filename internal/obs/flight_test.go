package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlightRecorderOrdering(t *testing.T) {
	f := NewFlightRecorder(4)
	if got := f.Snapshot(); len(got) != 0 {
		t.Fatalf("fresh recorder has %d records", len(got))
	}
	for i := 0; i < 3; i++ {
		f.Record("INFO", "test", fmt.Sprintf("msg-%d", i), "")
	}
	snap := f.Snapshot()
	if len(snap) != 3 || f.Total() != 3 {
		t.Fatalf("partial ring: len=%d total=%d", len(snap), f.Total())
	}
	for i, r := range snap {
		if r.Seq != uint64(i) || r.Msg != fmt.Sprintf("msg-%d", i) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
}

func TestFlightRecorderWraparound(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 11; i++ {
		f.Record("INFO", "test", fmt.Sprintf("msg-%d", i), "")
	}
	if f.Total() != 11 {
		t.Fatalf("total = %d, want 11", f.Total())
	}
	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d, want cap 4", len(snap))
	}
	// Oldest-first: sequences 7,8,9,10 in order, strictly ascending across
	// the wrap point.
	for i, r := range snap {
		want := uint64(7 + i)
		if r.Seq != want || r.Msg != fmt.Sprintf("msg-%d", want) {
			t.Fatalf("snap[%d] = %+v, want seq %d", i, r, want)
		}
	}
	tail := f.Tail(2)
	if len(tail) != 2 || tail[0].Seq != 9 || tail[1].Seq != 10 {
		t.Fatalf("tail = %+v", tail)
	}
}

// TestFlightRecorderConcurrent hammers the ring from many goroutines; run
// under -race this is the bounds/data-race proof.  Sequence numbers in any
// snapshot must stay unique and ascending.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(64)
	const writers, each = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				f.Record("INFO", "w", "concurrent", "")
			}
		}(w)
	}
	go func() { // concurrent reader, stopped after the writers finish
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := f.Snapshot()
			for i := 1; i < len(snap); i++ {
				if snap[i].Seq <= snap[i-1].Seq {
					t.Errorf("non-ascending seq: %d after %d", snap[i].Seq, snap[i-1].Seq)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-readerDone
	if f.Total() != writers*each {
		t.Fatalf("total = %d, want %d", f.Total(), writers*each)
	}
	if len(f.Snapshot()) != 64 {
		t.Fatalf("snapshot len = %d, want 64", len(f.Snapshot()))
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record("INFO", "x", "y", "")
	if f.Snapshot() != nil || f.Tail(3) != nil || f.Total() != 0 || f.Cap() != 0 {
		t.Fatal("nil recorder should be inert")
	}
}

func TestFlightHandlerTee(t *testing.T) {
	f := NewFlightRecorder(16)
	var visible bytes.Buffer
	inner := slog.NewTextHandler(&visible, &slog.HandlerOptions{Level: slog.LevelInfo})
	log := slog.New(NewFlightHandler(inner, f))

	log.Debug("below the visible level", "k", "v")
	log.With("digest", "sha256:ab").Info("visible line", "n", 7)

	snap := f.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("ring has %d records, want 2 (debug must be captured)", len(snap))
	}
	if snap[0].Level != "DEBUG" || snap[0].Msg != "below the visible level" || snap[0].Attrs != "k=v" {
		t.Fatalf("debug record = %+v", snap[0])
	}
	if snap[1].Attrs != "digest=sha256:ab n=7" {
		t.Fatalf("WithAttrs context not pre-rendered: %q", snap[1].Attrs)
	}
	out := visible.String()
	if strings.Contains(out, "below the visible level") {
		t.Fatal("debug line leaked to the visible log")
	}
	if !strings.Contains(out, "visible line") {
		t.Fatalf("info line missing from visible log: %q", out)
	}
}

func TestFlightJSONAndHandler(t *testing.T) {
	f := EnableFlight(32)
	f.Record("ERROR", "test", "handler check", "a=1")

	rr := httptest.NewRecorder()
	HandleFlight(rr, httptest.NewRequest("GET", "/debug/flight", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	var doc struct {
		Total   uint64         `json:"total"`
		Cap     int            `json:"cap"`
		Records []FlightRecord `json:"records"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("flight doc does not parse: %v\n%s", err, rr.Body.String())
	}
	if doc.Total == 0 || len(doc.Records) == 0 {
		t.Fatalf("flight doc empty: %+v", doc)
	}
	found := false
	for _, r := range doc.Records {
		if r.Msg == "handler check" && r.Level == "ERROR" {
			found = true
		}
	}
	if !found {
		t.Fatal("recorded line missing from /debug/flight document")
	}
}

// TestSpanCompletionTee verifies finished spans land in the armed process
// recorder.
func TestSpanCompletionTee(t *testing.T) {
	f := EnableFlight(32)
	before := f.Total()
	rec := NewSpanRecorder(TraceContext{}, 8)
	sp := rec.Start(TraceContext{}, "exec", "tee-span")
	sp.End()
	if f.Total() == before {
		t.Fatal("span completion was not teed into the flight recorder")
	}
	tail := f.Tail(1)
	if len(tail) != 1 || tail[0].Level != "SPAN" || tail[0].Msg != "tee-span" || tail[0].Source != "exec" {
		t.Fatalf("teed span record = %+v", tail)
	}
}

func TestRegisterDebugRoutes(t *testing.T) {
	addr, closer, err := ServePprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer closer() //nolint:errcheck
	for _, path := range []string{"/debug/pprof/", "/debug/flight"} {
		resp, err := httpGet(t, "http://"+addr+path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp != 200 {
			t.Fatalf("GET %s = %d", path, resp)
		}
	}
}

func httpGet(t *testing.T, url string) (int, error) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close() //nolint:errcheck
	return resp.StatusCode, nil
}

// TestFlightDumpOnPanic re-executes the test binary as a crashing child and
// checks both halves of the dump: the text tail on stderr and the JSON file.
func TestFlightDumpOnPanic(t *testing.T) {
	if os.Getenv("COBRA_FLIGHT_PANIC_CHILD") == "1" {
		EnableFlight(16)
		SetFlightDumpPath(os.Getenv("COBRA_FLIGHT_DUMP"))
		Flight().Record("INFO", "child", "last words before the fall", "k=v")
		defer DumpFlightOnPanic()
		panic("intentional crash for TestFlightDumpOnPanic")
	}

	dump := filepath.Join(t.TempDir(), "flight.json")
	cmd := exec.Command(os.Args[0], "-test.run", "^TestFlightDumpOnPanic$", "-test.v")
	cmd.Env = append(os.Environ(),
		"COBRA_FLIGHT_PANIC_CHILD=1", "COBRA_FLIGHT_DUMP="+dump)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("child exited cleanly; want panic\n%s", out)
	}
	if !strings.Contains(string(out), "last words before the fall") {
		t.Fatalf("stderr dump missing recorded line:\n%s", out)
	}
	if !strings.Contains(string(out), "intentional crash") {
		t.Fatalf("original panic value lost:\n%s", out)
	}
	raw, rerr := os.ReadFile(dump)
	if rerr != nil {
		t.Fatalf("JSON dump not written: %v\n%s", rerr, out)
	}
	var doc struct {
		Records []FlightRecord `json:"records"`
	}
	if jerr := json.Unmarshal(raw, &doc); jerr != nil {
		t.Fatalf("JSON dump does not parse: %v", jerr)
	}
	found := false
	for _, r := range doc.Records {
		if r.Msg == "last words before the fall" {
			found = true
		}
	}
	if !found {
		t.Fatalf("JSON dump missing recorded line: %s", raw)
	}
}

func TestRunProgressSnapshot(t *testing.T) {
	var nilP *RunProgress
	nilP.SetPhase(PhaseSimulate)
	nilP.Set(1, 2)
	if s := nilP.Snap(); s.Phase != "queued" {
		t.Fatalf("nil sink phase = %q", s.Phase)
	}

	p := NewRunProgress()
	if s := p.Snap(); s.Phase != "queued" || s.Done {
		t.Fatalf("fresh sink = %+v", s)
	}
	p.SetPhase(PhaseSimulate)
	p.SetTarget(20000)
	p.Set(5000, 2500)
	time.Sleep(5 * time.Millisecond)
	s := p.Snap()
	if s.Phase != "simulate" || s.Cycles != 5000 || s.Insts != 2500 || s.TargetInsts != 20000 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.ElapsedMS <= 0 || s.InstsPerSec <= 0 {
		t.Fatalf("rate not derived: %+v", s)
	}
	p.SetPhase(PhaseDone)
	if s := p.Snap(); !s.Done || s.Phase != "done" {
		t.Fatalf("terminal snapshot = %+v", s)
	}
	if PhaseFailed.String() != "failed" || !PhaseFailed.Terminal() {
		t.Fatal("failed phase misclassified")
	}
}

func TestResourceMeter(t *testing.T) {
	m := StartResourceMeter(time.Millisecond)
	// Do some attributable work: allocate and burn a little CPU.
	sink := make([][]byte, 0, 256)
	for i := 0; i < 256; i++ {
		sink = append(sink, make([]byte, 4096))
	}
	deadline := time.Now().Add(10 * time.Millisecond)
	x := 0
	for time.Now().Before(deadline) {
		x++
	}
	_ = sink
	res := m.Stop()
	if res.AllocBytes < 256*4096 {
		t.Fatalf("alloc bytes = %d, want >= %d", res.AllocBytes, 256*4096)
	}
	if res.AllocObjects == 0 {
		t.Fatalf("alloc objects = 0")
	}
	if res.WallMS <= 0 {
		t.Fatalf("wall = %v", res.WallMS)
	}
	if res.CPUUserMS < 0 || res.GCCPUMS < 0 || res.GCPauseShare < 0 || res.GCPauseShare > 1 {
		t.Fatalf("implausible attribution: %+v", res)
	}
	var nilM *ResourceMeter
	if r := nilM.Stop(); r.WallMS != 0 {
		t.Fatal("nil meter should return zero record")
	}
}
