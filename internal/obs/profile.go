package obs

import (
	"fmt"
	"sort"

	"cobra/internal/stats"
)

// BranchStat accumulates per-PC prediction outcomes for one static
// control-flow instruction.
type BranchStat struct {
	PC    uint64
	Kind  string // "branch", "jump", or "indirect" (incl. returns)
	Execs uint64 // committed executions
	Taken uint64 // committed taken outcomes
	Misp  uint64 // committed mispredictions

	// WrongBy counts, per sub-component, how often that component supplied
	// the final (wrong) prediction on this PC's mispredicts; RightBy counts
	// how often an overridden component's own opinion was actually correct
	// on those same mispredicts — the composition-debugging signal: a large
	// RightBy entry means the topology is overriding the wrong way.
	WrongBy map[string]uint64
	RightBy map[string]uint64
}

// MispRate returns the per-execution misprediction rate.
func (b *BranchStat) MispRate() float64 {
	if b.Execs == 0 {
		return 0
	}
	return float64(b.Misp) / float64(b.Execs)
}

func topOf(m map[string]uint64) string {
	best, name := uint64(0), "-"
	for _, k := range stats.SortedKeys(m) {
		if m[k] > best {
			best, name = m[k], k
		}
	}
	if best == 0 {
		return "-"
	}
	return fmt.Sprintf("%s (%d)", name, best)
}

// BranchProfile aggregates per-PC misprediction attribution across one
// simulation — the hard-to-predict (H2P) branch finder.  It is fed from the
// core's commit stage, so every count refers to architecturally committed
// control flow, and the per-PC mispredict counts sum exactly to the run's
// stats.Sim.Mispredicts counter.
//
// A profile is not safe for concurrent use; give each parallel runner job
// its own (runner.Sim.Attribution does).
type BranchProfile struct {
	byPC map[uint64]*BranchStat

	execs uint64
	misp  uint64
}

// NewBranchProfile returns an empty profile.
func NewBranchProfile() *BranchProfile {
	return &BranchProfile{byPC: make(map[uint64]*BranchStat)}
}

// Record accumulates one committed control-flow instruction: its PC, kind
// label, resolved direction, whether the final pipeline prediction was wrong,
// the sub-component that provided the final prediction, and (on mispredicts,
// when opinion tracking is enabled) every sub-component's own direction
// opinion at predict time.
func (bp *BranchProfile) Record(pc uint64, kind string, taken, misp bool, provider string, ops []Opinion) {
	st := bp.byPC[pc]
	if st == nil {
		st = &BranchStat{PC: pc, Kind: kind}
		bp.byPC[pc] = st
	}
	st.Execs++
	bp.execs++
	if taken {
		st.Taken++
	}
	if !misp {
		return
	}
	st.Misp++
	bp.misp++
	if st.WrongBy == nil {
		st.WrongBy = make(map[string]uint64)
	}
	st.WrongBy[provider]++
	for _, op := range ops {
		if op.Comp == provider || !op.DirValid || op.Taken != taken {
			continue
		}
		if st.RightBy == nil {
			st.RightBy = make(map[string]uint64)
		}
		st.RightBy[op.Comp]++
	}
}

// TotalExecs returns the committed control-flow instructions recorded.
func (bp *BranchProfile) TotalExecs() uint64 { return bp.execs }

// TotalMispredicts returns the sum of per-PC mispredict counts; by
// construction it equals the run's stats.Sim.Mispredicts.
func (bp *BranchProfile) TotalMispredicts() uint64 { return bp.misp }

// PCs returns how many distinct control-flow PCs committed.
func (bp *BranchProfile) PCs() int { return len(bp.byPC) }

// Top returns the n hardest branches, descending by mispredict count (ties
// broken by PC for determinism).  n <= 0 returns all.
func (bp *BranchProfile) Top(n int) []*BranchStat {
	out := make([]*BranchStat, 0, len(bp.byPC))
	for _, st := range bp.byPC {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Misp != out[j].Misp {
			return out[i].Misp > out[j].Misp
		}
		return out[i].PC < out[j].PC
	})
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// ShareTop returns the fraction of all mispredicts contributed by the n
// hardest branches.
func (bp *BranchProfile) ShareTop(n int) float64 {
	if bp.misp == 0 {
		return 0
	}
	var sum uint64
	for _, st := range bp.Top(n) {
		sum += st.Misp
	}
	return float64(sum) / float64(bp.misp)
}

// Table renders the H2P report: the top n branches by misprediction count
// with provider attribution, a cumulative-share column, and a closing
// all-PCs row whose mispredict total equals stats.Sim.Mispredicts.
func (bp *BranchProfile) Table(n int) *stats.Table {
	t := &stats.Table{
		Title: fmt.Sprintf("H2P — top %d hard-to-predict branches (of %d PCs, %d mispredicts)",
			n, bp.PCs(), bp.misp),
		Headers: []string{"rank", "pc", "kind", "execs", "misp", "rate", "share", "cum", "wrong provider", "overridden right"},
	}
	var cum uint64
	for i, st := range bp.Top(n) {
		cum += st.Misp
		share, cumShare := 0.0, 0.0
		if bp.misp > 0 {
			share = float64(st.Misp) / float64(bp.misp) * 100
			cumShare = float64(cum) / float64(bp.misp) * 100
		}
		t.AddRow(
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("0x%x", st.PC),
			st.Kind,
			fmt.Sprintf("%d", st.Execs),
			fmt.Sprintf("%d", st.Misp),
			fmt.Sprintf("%.1f%%", st.MispRate()*100),
			fmt.Sprintf("%.1f%%", share),
			fmt.Sprintf("%.1f%%", cumShare),
			topOf(st.WrongBy),
			topOf(st.RightBy),
		)
	}
	t.AddRow("all", fmt.Sprintf("%d PCs", bp.PCs()), "",
		fmt.Sprintf("%d", bp.execs), fmt.Sprintf("%d", bp.misp), "", "100.0%", "", "", "")
	return t
}
