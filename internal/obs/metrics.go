package obs

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// Metrics is the shared telemetry sink for a batch of simulations: atomic
// counters the cores and the runner update live, snapshotted into a
// Prometheus-style text exposition and a one-line progress report.  All
// methods are safe for concurrent use; a nil *Metrics is a valid no-op
// receiver for the Add/Job methods, so producers need no guards beyond the
// pointer they already hold.
type Metrics struct {
	start time.Time

	jobsTotal   atomic.Uint64
	jobsStarted atomic.Uint64
	jobsDone    atomic.Uint64
	jobsFailed  atomic.Uint64

	cycles     atomic.Uint64
	insts      atomic.Uint64
	eventDrops atomic.Uint64 // events lost to tracer ring overflow

	// Crash-safety accounting (internal/serve): corrupt cache entries
	// quarantined instead of served, digests re-enqueued by journal replay,
	// journal records skipped as unreadable, and failed jobs retried before
	// landing in the failure FIFO.
	cacheCorrupt    atomic.Uint64
	journalReplayed atomic.Uint64
	journalSkipped  atomic.Uint64
	jobRetries      atomic.Uint64

	// Latency/rate distributions (Prometheus histograms).  The serve-side
	// families stay at zero count in batch tools; the job families fill from
	// any runner batch.
	queueWait *Histogram // cobra_serve_queue_wait_seconds
	jobSecs   *Histogram // cobra_job_exec_seconds
	jobRate   *Histogram // cobra_job_insts_per_second
	reqHit    *Histogram // cobra_request_seconds{result="hit"}
	reqMiss   *Histogram // cobra_request_seconds{result="miss"}

	// Per-run resource attribution (PR 8): CPU cost split by class and heap
	// allocation volume per executed job, fed from ResourceMeter records.
	runCPUUser *Histogram // cobra_run_cpu_seconds{class="user"}
	runCPUGC   *Histogram // cobra_run_cpu_seconds{class="gc"}
	runAlloc   *Histogram // cobra_run_alloc_bytes
}

// Histogram bucket ladders: wall-clock seconds from 1 ms to ~33 s, and
// simulation throughput from 10k to ~2.6G committed instructions/second.
var (
	secondsBuckets = ExpBuckets(0.001, 2, 16)
	rateBuckets    = ExpBuckets(10_000, 4, 10)
	// Heap allocation volume per run: 4 KiB to ~4 GiB.
	allocBuckets = ExpBuckets(4096, 4, 11)
)

// NewMetrics returns a zeroed metrics sink with the uptime clock started.
func NewMetrics() *Metrics {
	return &Metrics{
		start: time.Now(),
		queueWait: NewHistogram("cobra_serve_queue_wait_seconds",
			"time a job spent queued before a worker picked it up", "", secondsBuckets),
		jobSecs: NewHistogram("cobra_job_exec_seconds",
			"wall-clock execution time per simulation job", "", secondsBuckets),
		jobRate: NewHistogram("cobra_job_insts_per_second",
			"committed instructions per wall-clock second per job", "", rateBuckets),
		reqHit: NewHistogram("cobra_request_seconds",
			"end-to-end run-request latency, split by cache outcome", `result="hit"`, secondsBuckets),
		reqMiss: NewHistogram("cobra_request_seconds",
			"end-to-end run-request latency, split by cache outcome", `result="miss"`, secondsBuckets),
		runCPUUser: NewHistogram("cobra_run_cpu_seconds",
			"CPU seconds attributed to one executed run, split by class", `class="user"`, secondsBuckets),
		runCPUGC: NewHistogram("cobra_run_cpu_seconds",
			"CPU seconds attributed to one executed run, split by class", `class="gc"`, secondsBuckets),
		runAlloc: NewHistogram("cobra_run_alloc_bytes",
			"heap bytes allocated while one run executed", "", allocBuckets),
	}
}

// ObserveQueueWait records one job's queue-wait time.
func (m *Metrics) ObserveQueueWait(d time.Duration) {
	if m != nil {
		m.queueWait.Observe(d.Seconds())
	}
}

// ObserveJob records one job's wall-clock execution time and, when the job
// committed instructions, its simulation throughput.
func (m *Metrics) ObserveJob(wall time.Duration, insts uint64) {
	if m == nil {
		return
	}
	m.jobSecs.Observe(wall.Seconds())
	if sec := wall.Seconds(); sec > 0 && insts > 0 {
		m.jobRate.Observe(float64(insts) / sec)
	}
}

// ObserveRequest records one end-to-end run request (submission to result),
// split by whether the result cache satisfied it.
func (m *Metrics) ObserveRequest(d time.Duration, hit bool) {
	if m == nil {
		return
	}
	if hit {
		m.reqHit.Observe(d.Seconds())
	} else {
		m.reqMiss.Observe(d.Seconds())
	}
}

// ObserveRequestEx is ObserveRequest with an exemplar: the request's trace ID
// is attached to the destination latency bucket so a slow bucket on /metrics
// (OpenMetrics scrape) links straight to the trace to pull up.
func (m *Metrics) ObserveRequestEx(d time.Duration, hit bool, traceID string) {
	if m == nil {
		return
	}
	if hit {
		m.reqHit.ObserveEx(d.Seconds(), traceID)
	} else {
		m.reqMiss.ObserveEx(d.Seconds(), traceID)
	}
}

// ObserveRunResources records one run's resource-attribution record into the
// labeled cost families.
func (m *Metrics) ObserveRunResources(r Resources) {
	if m == nil {
		return
	}
	m.runCPUUser.Observe(r.CPUUserMS / 1000)
	m.runCPUGC.Observe(r.GCCPUMS / 1000)
	m.runAlloc.Observe(float64(r.AllocBytes))
}

// RequestCount returns how many requests were recorded for one cache
// outcome — the test- and dashboard-facing accessor for the split family.
func (m *Metrics) RequestCount(hit bool) uint64 {
	if m == nil {
		return 0
	}
	if hit {
		return m.reqHit.Count()
	}
	return m.reqMiss.Count()
}

// AddEventDrops accumulates events lost to tracer ring overflow, so silent
// truncation of captured traces is visible on /metrics.
func (m *Metrics) AddEventDrops(n uint64) {
	if m != nil && n > 0 {
		m.eventDrops.Add(n)
	}
}

// AddCacheCorrupt counts disk-cache entries that failed checksum
// verification and were quarantined instead of served.
func (m *Metrics) AddCacheCorrupt(n uint64) {
	if m != nil {
		m.cacheCorrupt.Add(n)
	}
}

// AddJournalReplayed counts digests the run journal re-enqueued on startup
// because they were accepted before a crash but never completed.
func (m *Metrics) AddJournalReplayed(n uint64) {
	if m != nil {
		m.journalReplayed.Add(n)
	}
}

// AddJournalSkipped counts journal records replay could not use (torn final
// write, checksum mismatch, unknown record type from a future version).
func (m *Metrics) AddJournalSkipped(n uint64) {
	if m != nil {
		m.journalSkipped.Add(n)
	}
}

// AddJobRetries counts automatic re-executions of failed jobs before they
// land in the failure FIFO.
func (m *Metrics) AddJobRetries(n uint64) {
	if m != nil {
		m.jobRetries.Add(n)
	}
}

// AddJobs records n submitted jobs.
func (m *Metrics) AddJobs(n int) {
	if m != nil {
		m.jobsTotal.Add(uint64(n))
	}
}

// JobStarted records one job beginning execution.
func (m *Metrics) JobStarted() {
	if m != nil {
		m.jobsStarted.Add(1)
	}
}

// JobDone records one job finishing; failed marks it as errored.
func (m *Metrics) JobDone(failed bool) {
	if m == nil {
		return
	}
	m.jobsDone.Add(1)
	if failed {
		m.jobsFailed.Add(1)
	}
}

// AddCycles accumulates simulated cycles (cores flush deltas periodically).
func (m *Metrics) AddCycles(n uint64) {
	if m != nil {
		m.cycles.Add(n)
	}
}

// AddInsts accumulates committed instructions.
func (m *Metrics) AddInsts(n uint64) {
	if m != nil {
		m.insts.Add(n)
	}
}

// Snapshot is a consistent-enough point-in-time read of the counters with
// the derived rates the reports print.
type Snapshot struct {
	JobsTotal, JobsStarted, JobsDone, JobsFailed uint64
	Cycles, Instructions                         uint64
	EventDrops                                   uint64
	CacheCorrupt                                 uint64
	JournalReplayed                              uint64
	JournalSkipped                               uint64
	JobRetries                                   uint64
	Uptime                                       time.Duration
	KCyclesPerSec                                float64 // simulation rate
}

// Snap reads the counters.
func (m *Metrics) Snap() Snapshot {
	s := Snapshot{
		JobsTotal:       m.jobsTotal.Load(),
		JobsStarted:     m.jobsStarted.Load(),
		JobsDone:        m.jobsDone.Load(),
		JobsFailed:      m.jobsFailed.Load(),
		Cycles:          m.cycles.Load(),
		Instructions:    m.insts.Load(),
		EventDrops:      m.eventDrops.Load(),
		CacheCorrupt:    m.cacheCorrupt.Load(),
		JournalReplayed: m.journalReplayed.Load(),
		JournalSkipped:  m.journalSkipped.Load(),
		JobRetries:      m.jobRetries.Load(),
		Uptime:          time.Since(m.start),
	}
	if sec := s.Uptime.Seconds(); sec > 0 {
		s.KCyclesPerSec = float64(s.Cycles) / 1000 / sec
	}
	return s
}

// Expo renders the classic Prometheus 0.0.4 text exposition the
// -metrics-addr endpoint serves (and expvar-style consumers can scrape).
func (m *Metrics) Expo() string { return m.expo(false) }

// ExpoOpenMetrics renders the OpenMetrics flavour: counter families are
// declared without the `_total` suffix (samples keep it) and request-latency
// buckets carry trace-ID exemplars.  Served when a scrape Accepts
// application/openmetrics-text; the HTTP handler appends the mandatory
// `# EOF` terminator after any extra families it adds.
func (m *Metrics) ExpoOpenMetrics() string { return m.expo(true) }

func (m *Metrics) expo(om bool) string {
	s := m.Snap()
	var b strings.Builder
	line := func(name, help string, v interface{}) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v interface{}) {
		fam := name
		if om {
			// OpenMetrics declares the counter family without _total; the
			// sample line keeps the suffix.
			fam = strings.TrimSuffix(name, "_total")
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", fam, help, fam, name, v)
	}
	line("cobra_jobs_total", "simulation jobs submitted to the runner", s.JobsTotal)
	line("cobra_jobs_running", "jobs currently executing", s.JobsStarted-s.JobsDone)
	line("cobra_jobs_done", "jobs finished (including failures)", s.JobsDone)
	line("cobra_jobs_failed", "jobs that returned an error", s.JobsFailed)
	line("cobra_sim_cycles_total", "simulated cycles across all jobs", s.Cycles)
	line("cobra_sim_instructions_total", "committed instructions across all jobs", s.Instructions)
	line("cobra_sim_kcycles_per_second", "aggregate simulation rate", fmt.Sprintf("%.1f", s.KCyclesPerSec))
	line("cobra_uptime_seconds", "seconds since the metrics sink was created", fmt.Sprintf("%.1f", s.Uptime.Seconds()))
	line("cobra_trace_events_dropped_total", "cycle-level events lost to tracer ring overflow", s.EventDrops)
	counter("cobra_cache_corrupt_total", "disk-cache entries that failed verification and were quarantined", s.CacheCorrupt)
	counter("cobra_journal_replayed_total", "accepted-but-incomplete digests re-enqueued by journal replay", s.JournalReplayed)
	counter("cobra_journal_records_skipped_total", "journal records replay skipped as unreadable or unknown", s.JournalSkipped)
	counter("cobra_job_retries_total", "automatic re-executions of failed jobs before the failure FIFO", s.JobRetries)
	for _, h := range []*Histogram{m.queueWait, m.jobSecs, m.jobRate, m.runAlloc} {
		if h != nil {
			h.header(&b)
			h.series(&b)
		}
	}
	// The labeled splits are one family each: one HELP/TYPE header, two
	// labeled series.
	if m.reqHit != nil && m.reqMiss != nil {
		m.reqHit.header(&b)
		m.reqHit.seriesEx(&b, om)
		m.reqMiss.seriesEx(&b, om)
	}
	if m.runCPUUser != nil && m.runCPUGC != nil {
		m.runCPUUser.header(&b)
		m.runCPUUser.series(&b)
		m.runCPUGC.series(&b)
	}
	return b.String()
}

// OpenMetricsContentType is the Content-Type an OpenMetrics response carries;
// WantsOpenMetrics sniffs a scrape's Accept header for it.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// WantsOpenMetrics reports whether an Accept header asks for the OpenMetrics
// exposition format.
func WantsOpenMetrics(accept string) bool {
	return strings.Contains(accept, "application/openmetrics-text")
}

// ProgressLine renders the one-line periodic report long sweeps print.
func (m *Metrics) ProgressLine() string {
	s := m.Snap()
	return fmt.Sprintf("[runner] %d/%d jobs done (%d running, %d failed)  %.1f Mcycles  %.1f Minsts  %.1f kcycles/s  %s elapsed",
		s.JobsDone, s.JobsTotal, s.JobsStarted-s.JobsDone, s.JobsFailed,
		float64(s.Cycles)/1e6, float64(s.Instructions)/1e6, s.KCyclesPerSec,
		s.Uptime.Truncate(time.Second))
}

// ServeMetrics starts an HTTP listener on addr serving the text exposition
// at / and /metrics.  It returns the bound address (useful with ":0") and a
// closer.  Pass the returned close func to defer so tests and tools release
// the port.
func ServeMetrics(addr string, m *Metrics) (string, func() error, error) {
	mux := http.NewServeMux()
	h := func(w http.ResponseWriter, r *http.Request) {
		if WantsOpenMetrics(r.Header.Get("Accept")) {
			w.Header().Set("Content-Type", OpenMetricsContentType)
			fmt.Fprint(w, m.ExpoOpenMetrics())
			fmt.Fprint(w, RuntimeExpoOpenMetrics())
			fmt.Fprint(w, "# EOF\n")
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprint(w, m.Expo())
		fmt.Fprint(w, RuntimeExpo())
	}
	mux.HandleFunc("/", h)
	mux.HandleFunc("/metrics", h)
	return serve(addr, mux)
}

// ServePprof starts an HTTP listener on addr exposing the shared debug
// surface (net/http/pprof — CPU and heap profiles, goroutine dumps, the
// /debug/pprof/trace runtime execution tracer — plus /debug/flight).  It
// returns the bound address and a closer.
func ServePprof(addr string) (string, func() error, error) {
	mux := http.NewServeMux()
	RegisterDebug(mux)
	return serve(addr, mux)
}

func serve(addr string, mux *http.ServeMux) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close is expected
	return ln.Addr().String(), func() error { return srv.Close() }, nil
}
