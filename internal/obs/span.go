package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"
)

// This file is the request-level half of the observability layer: wall-clock
// spans for the serving stack (admission, queue wait, cache lookup, worker
// execution, spec.Exec phases), correlated across process boundaries by W3C
// Trace Context identifiers.  Where Event records *simulated cycles*, Span
// records *service time* — the two export to the same Chrome trace_event
// format so Perfetto can show a request timeline next to a cycle timeline.

// TraceContext is a W3C Trace Context identity: the 16-byte trace ID shared
// by every span of one distributed request, the 8-byte ID of the current
// span, and the sampled flag.  The zero value is invalid.
type TraceContext struct {
	TraceID [16]byte
	SpanID  [8]byte
	Flags   byte
}

// Valid reports whether both identifiers are non-zero, as the W3C spec
// requires.
func (tc TraceContext) Valid() bool {
	return tc.TraceID != [16]byte{} && tc.SpanID != [8]byte{}
}

// TraceIDString returns the 32-hex-digit trace ID.
func (tc TraceContext) TraceIDString() string { return hex.EncodeToString(tc.TraceID[:]) }

// SpanIDString returns the 16-hex-digit span ID.
func (tc TraceContext) SpanIDString() string { return hex.EncodeToString(tc.SpanID[:]) }

// Traceparent renders the context as a version-00 traceparent header value:
// "00-<trace-id>-<parent-id>-<trace-flags>".
func (tc TraceContext) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-%02x", tc.TraceIDString(), tc.SpanIDString(), tc.Flags)
}

// ParseTraceparent parses a version-00 traceparent header value.  Unknown
// versions are rejected; all-zero identifiers are invalid per the spec.
func ParseTraceparent(s string) (TraceContext, error) {
	var tc TraceContext
	if len(s) < 55 {
		return tc, fmt.Errorf("obs: traceparent %q too short", s)
	}
	if s[:3] != "00-" || s[35] != '-' || s[52] != '-' {
		return tc, fmt.Errorf("obs: malformed traceparent %q (want 00-<32hex>-<16hex>-<2hex>)", s)
	}
	if len(s) > 55 {
		return tc, fmt.Errorf("obs: traceparent %q has trailing bytes", s)
	}
	if _, err := hex.Decode(tc.TraceID[:], []byte(s[3:35])); err != nil {
		return tc, fmt.Errorf("obs: traceparent trace-id: %w", err)
	}
	if _, err := hex.Decode(tc.SpanID[:], []byte(s[36:52])); err != nil {
		return tc, fmt.Errorf("obs: traceparent parent-id: %w", err)
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(s[53:55])); err != nil {
		return tc, fmt.Errorf("obs: traceparent flags: %w", err)
	}
	tc.Flags = flags[0]
	if !tc.Valid() {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q has all-zero identifiers", s)
	}
	return tc, nil
}

// NewTraceContext mints a fresh sampled context with random identifiers —
// the root of a request that arrived without a traceparent header.
func NewTraceContext() TraceContext {
	var tc TraceContext
	randBytes(tc.TraceID[:])
	randBytes(tc.SpanID[:])
	tc.Flags = 1 // sampled
	return tc
}

// Child returns a context for a new span of the same trace: same trace ID
// and flags, fresh span ID.
func (tc TraceContext) Child() TraceContext {
	c := tc
	randBytes(c.SpanID[:])
	return c
}

func randBytes(b []byte) {
	if _, err := rand.Read(b); err != nil {
		// crypto/rand never fails on supported platforms; if it somehow does,
		// identifiers only need uniqueness, not secrecy.
		for i := range b {
			b[i] = byte(time.Now().UnixNano() >> (8 * (i % 8)))
		}
	}
	// Guard the all-zero identifier the W3C spec reserves as invalid.
	allZero := true
	for _, x := range b {
		if x != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		b[len(b)-1] = 1
	}
}

// Span is one finished wall-clock span: a named interval on a track (the hop
// it belongs to — "admission", "queue", "exec", …), tied into a trace by
// W3C identifiers.  Times are microseconds since the Unix epoch, matching
// the Chrome trace_event clock domain.
type Span struct {
	Name    string            `json:"name"`
	Track   string            `json:"track"`
	TraceID string            `json:"trace_id"`
	SpanID  string            `json:"span_id"`
	Parent  string            `json:"parent_id,omitempty"`
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// DefaultSpanCap is the per-run span buffer bound NewSpanRecorder(_, 0)
// allocates: far above what one request produces, low enough that a
// pathological caller cannot balloon a cached trace.
const DefaultSpanCap = 512

// SpanRecorder is a bounded, concurrency-safe buffer of the spans one run
// accumulates: the per-run unit the serving layer keeps per digest and
// exports at /v1/runs/{id}/trace.  Spans beyond the capacity are counted as
// dropped rather than grown without bound.  A nil *SpanRecorder is a valid
// no-op receiver, so instrumentation sites need no guards.
type SpanRecorder struct {
	mu      sync.Mutex
	root    TraceContext
	cap     int
	spans   []Span
	dropped uint64
}

// NewSpanRecorder returns a recorder rooted at tc (a zero context mints a
// fresh one) holding at most capacity spans (0 = DefaultSpanCap).
func NewSpanRecorder(tc TraceContext, capacity int) *SpanRecorder {
	if !tc.Valid() {
		tc = NewTraceContext()
	}
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	return &SpanRecorder{root: tc, cap: capacity}
}

// Root returns the recorder's root context — the parent for spans with no
// explicit parent.
func (r *SpanRecorder) Root() TraceContext {
	if r == nil {
		return TraceContext{}
	}
	return r.root
}

// Record appends one already-measured span as a child of parent (the
// recorder root when parent is invalid) and returns the new span's context,
// for parenting further children.  Safe on a nil recorder.
func (r *SpanRecorder) Record(parent TraceContext, track, name string, start, end time.Time, attrs map[string]string) TraceContext {
	if r == nil {
		return TraceContext{}
	}
	if !parent.Valid() {
		parent = r.root
	}
	ctx := parent.Child()
	r.add(Span{
		Name:    name,
		Track:   track,
		TraceID: ctx.TraceIDString(),
		SpanID:  ctx.SpanIDString(),
		Parent:  parent.SpanIDString(),
		StartUS: start.UnixMicro(),
		DurUS:   end.Sub(start).Microseconds(),
		Attrs:   attrs,
	})
	return ctx
}

// Start opens a live span as a child of parent (recorder root when parent is
// invalid); End records it.  Safe on a nil recorder (returns a nil span,
// itself a valid no-op receiver).
func (r *SpanRecorder) Start(parent TraceContext, track, name string) *ActiveSpan {
	if r == nil {
		return nil
	}
	if !parent.Valid() {
		parent = r.root
	}
	return &ActiveSpan{
		rec:    r,
		ctx:    parent.Child(),
		parent: parent,
		track:  track,
		name:   name,
		start:  time.Now(),
	}
}

func (r *SpanRecorder) add(sp Span) {
	r.mu.Lock()
	if len(r.spans) < r.cap {
		r.spans = append(r.spans, sp)
	} else {
		r.dropped++
	}
	r.mu.Unlock()
	// Tee every span completion into the flight recorder (when armed), so a
	// crash dump shows what the process was timing right before it died.
	if f := Flight(); f != nil {
		f.Record("SPAN", sp.Track, sp.Name,
			fmt.Sprintf("dur_us=%d trace=%s span=%s", sp.DurUS, sp.TraceID, sp.SpanID))
	}
}

// Spans returns a snapshot of the recorded spans in completion order.
func (r *SpanRecorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// Dropped returns how many spans the bound discarded.
func (r *SpanRecorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// ActiveSpan is a span in progress.  All methods are safe on a nil receiver,
// so a caller without a recorder attached pays only the nil checks.
type ActiveSpan struct {
	rec    *SpanRecorder
	ctx    TraceContext
	parent TraceContext
	track  string
	name   string
	start  time.Time
	mu     sync.Mutex
	attrs  map[string]string
}

// Context returns the span's own trace context (usable as a parent before
// the span has ended).
func (a *ActiveSpan) Context() TraceContext {
	if a == nil {
		return TraceContext{}
	}
	return a.ctx
}

// SetAttr attaches one key/value attribute.
func (a *ActiveSpan) SetAttr(k, v string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	if a.attrs == nil {
		a.attrs = make(map[string]string)
	}
	a.attrs[k] = v
	a.mu.Unlock()
}

// Child opens a sub-span on its own track.
func (a *ActiveSpan) Child(track, name string) *ActiveSpan {
	if a == nil {
		return nil
	}
	return a.rec.Start(a.ctx, track, name)
}

// End records the span into its recorder.
func (a *ActiveSpan) End() {
	if a == nil {
		return
	}
	a.mu.Lock()
	attrs := a.attrs
	a.mu.Unlock()
	a.rec.add(Span{
		Name:    a.name,
		Track:   a.track,
		TraceID: a.ctx.TraceIDString(),
		SpanID:  a.ctx.SpanIDString(),
		Parent:  a.parent.SpanIDString(),
		StartUS: a.start.UnixMicro(),
		DurUS:   time.Since(a.start).Microseconds(),
		Attrs:   attrs,
	})
}
