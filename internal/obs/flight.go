package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// The flight recorder is the always-on half of the introspection layer: a
// bounded in-memory ring of the most recent structured records the process
// produced — log lines at every level, span completions, journal replay and
// skip events, retries, errors.  It costs one short mutex hold per record and
// a fixed allocation at construction, so it stays armed in production; when a
// process is slow, stuck, or dying, the last few hundred records are the
// post-mortem.  The ring is dumped to disk and to stderr on panic and on
// SIGQUIT, and served live at GET /debug/flight.
//
// Like every other obs facility, the recorder is observation-only: nothing in
// the simulation path writes to it (the hot loop's zero-allocation budget is
// unaffected), and a nil *FlightRecorder is a valid no-op receiver.

// FlightRecord is one entry in the ring.
type FlightRecord struct {
	// Seq is the record's global sequence number, monotone from process
	// start; gaps never occur, so Total()-len(Snapshot()) records were
	// overwritten by newer traffic.
	Seq uint64 `json:"seq"`
	// TimeUS is the wall-clock timestamp in microseconds since the Unix
	// epoch (the Chrome trace clock domain).
	TimeUS int64 `json:"time_us"`
	// Level classifies the record: DEBUG/INFO/WARN/ERROR for teed log
	// lines, SPAN for span completions.
	Level string `json:"level"`
	// Source names the subsystem that produced the record (the span's track
	// for SPAN records, "log" for teed slog lines).
	Source string `json:"source,omitempty"`
	// Msg is the human-readable line.
	Msg string `json:"msg"`
	// Attrs carries the record's structured attributes pre-rendered as
	// "k=v k=v" (kept flat so appending a record never allocates a map).
	Attrs string `json:"attrs,omitempty"`
}

// DefaultFlightCap is the ring capacity EnableFlight(0) selects: enough to
// hold several requests' worth of context around a crash without letting the
// dump dominate a post-mortem artifact.
const DefaultFlightCap = 1024

// FlightRecorder is the bounded ring.  All methods are safe for concurrent
// use and valid on a nil receiver.
type FlightRecorder struct {
	mu   sync.Mutex
	ring []FlightRecord
	next uint64 // total records ever appended == seq of the next record
}

// NewFlightRecorder returns a recorder holding the most recent capacity
// records (0 or negative selects DefaultFlightCap).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCap
	}
	return &FlightRecorder{ring: make([]FlightRecord, 0, capacity)}
}

// Record appends one record, overwriting the oldest when the ring is full.
func (f *FlightRecorder) Record(level, source, msg, attrs string) {
	if f == nil {
		return
	}
	now := time.Now().UnixMicro()
	f.mu.Lock()
	rec := FlightRecord{Seq: f.next, TimeUS: now, Level: level, Source: source, Msg: msg, Attrs: attrs}
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, rec)
	} else {
		f.ring[int(f.next)%cap(f.ring)] = rec
	}
	f.next++
	f.mu.Unlock()
}

// Total returns how many records were ever appended (the next sequence
// number); Total() minus the snapshot length is how many were overwritten.
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.next
}

// Cap returns the ring capacity.
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return cap(f.ring)
}

// Snapshot returns the retained records oldest-first, sequence numbers
// strictly ascending across the wraparound point.
func (f *FlightRecorder) Snapshot() []FlightRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightRecord, 0, len(f.ring))
	if len(f.ring) < cap(f.ring) || f.next == uint64(len(f.ring)) {
		return append(out, f.ring...)
	}
	head := int(f.next) % cap(f.ring) // oldest retained record's slot
	out = append(out, f.ring[head:]...)
	out = append(out, f.ring[:head]...)
	return out
}

// Tail returns the newest n retained records, oldest-first.
func (f *FlightRecorder) Tail(n int) []FlightRecord {
	all := f.Snapshot()
	if len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}

// WriteText renders the retained records one per line, oldest first — the
// shape the crash dumps use.
func (f *FlightRecorder) WriteText(w io.Writer) {
	for _, r := range f.Snapshot() {
		ts := time.UnixMicro(r.TimeUS).UTC().Format("15:04:05.000000")
		fmt.Fprintf(w, "%8d %s %-5s %-10s %s", r.Seq, ts, r.Level, r.Source, r.Msg)
		if r.Attrs != "" {
			fmt.Fprintf(w, "  %s", r.Attrs)
		}
		fmt.Fprintln(w)
	}
}

// flightDoc is the JSON document /debug/flight and the disk dumps serve.
type flightDoc struct {
	Total   uint64         `json:"total"`
	Cap     int            `json:"cap"`
	Records []FlightRecord `json:"records"`
}

// WriteJSON renders the retained records as the /debug/flight document.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	doc := flightDoc{Total: f.Total(), Cap: f.Cap(), Records: f.Snapshot()}
	if doc.Records == nil {
		doc.Records = []FlightRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// processFlight is the process-wide recorder the teed loggers, the span
// recorders, and the crash dumps share.
var processFlight atomic.Pointer[FlightRecorder]

// EnableFlight arms the process-wide flight recorder (idempotent: an already
// armed recorder is returned unchanged, so libraries and main wiring can both
// call it) and returns it.
func EnableFlight(capacity int) *FlightRecorder {
	if f := processFlight.Load(); f != nil {
		return f
	}
	f := NewFlightRecorder(capacity)
	if processFlight.CompareAndSwap(nil, f) {
		return f
	}
	return processFlight.Load()
}

// Flight returns the process-wide recorder, or nil before EnableFlight.
func Flight() *FlightRecorder { return processFlight.Load() }

// FlightHandler tees every slog record into the flight recorder before (and
// regardless of whether) the wrapped handler emits it: the ring sees DEBUG
// lines even when the visible log level is INFO, which is exactly what a
// post-mortem wants.  Wrap the handler a tool already built:
//
//	slog.New(obs.NewFlightHandler(inner, obs.EnableFlight(0)))
type FlightHandler struct {
	inner slog.Handler
	f     *FlightRecorder
	attrs string // pre-rendered WithAttrs context
}

// NewFlightHandler wraps inner so every record is also appended to f.
func NewFlightHandler(inner slog.Handler, f *FlightRecorder) *FlightHandler {
	return &FlightHandler{inner: inner, f: f}
}

// Enabled always claims interest: the ring captures all levels; the wrapped
// handler's own Enabled gates what reaches the visible log in Handle.
func (h *FlightHandler) Enabled(context.Context, slog.Level) bool { return true }

// Handle appends the record to the ring, then delegates when the wrapped
// handler wants the level.
func (h *FlightHandler) Handle(ctx context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(h.attrs)
	r.Attrs(func(a slog.Attr) bool {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(a.Value.String())
		return true
	})
	h.f.Record(r.Level.String(), "log", r.Message, b.String())
	if h.inner.Enabled(ctx, r.Level) {
		return h.inner.Handle(ctx, r)
	}
	return nil
}

// WithAttrs pre-renders the attributes for the ring and forwards them to the
// wrapped handler.
func (h *FlightHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	var b strings.Builder
	b.WriteString(h.attrs)
	for _, a := range attrs {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(a.Value.String())
	}
	return &FlightHandler{inner: h.inner.WithAttrs(attrs), f: h.f, attrs: b.String()}
}

// WithGroup forwards the group to the wrapped handler (the flat ring line
// ignores grouping).
func (h *FlightHandler) WithGroup(name string) slog.Handler {
	return &FlightHandler{inner: h.inner.WithGroup(name), f: h.f, attrs: h.attrs}
}

// DumpFlight writes the process recorder to stderr (text) and, when path is
// non-empty, to path as JSON.  It is the shared tail of the panic and SIGQUIT
// paths and safe to call with the recorder unarmed (it reports that instead).
func DumpFlight(path, reason string) {
	f := Flight()
	if f == nil {
		fmt.Fprintf(os.Stderr, "[flight] %s: recorder not armed\n", reason)
		return
	}
	fmt.Fprintf(os.Stderr, "[flight] %s: last %d of %d records\n", reason, len(f.Snapshot()), f.Total())
	f.WriteText(os.Stderr)
	if path == "" {
		return
	}
	out, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "[flight] writing %s: %v\n", path, err)
		return
	}
	werr := f.WriteJSON(out)
	if cerr := out.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fmt.Fprintf(os.Stderr, "[flight] writing %s: %v\n", path, werr)
		return
	}
	fmt.Fprintf(os.Stderr, "[flight] dump written to %s\n", path)
}

// flightDumpPath is where the crash paths dump the ring as JSON ("" = stderr
// only).  Set once at startup via SetFlightDumpPath.
var flightDumpPath atomic.Pointer[string]

// SetFlightDumpPath names the file the panic and SIGQUIT dumps write.
func SetFlightDumpPath(path string) { flightDumpPath.Store(&path) }

// FlightDumpPath returns the configured crash-dump path ("" when unset).
func FlightDumpPath() string {
	if p := flightDumpPath.Load(); p != nil {
		return *p
	}
	return ""
}

// DumpFlightOnPanic recovers a panic on the calling goroutine, dumps the
// flight recorder (to stderr and to the configured dump path), and re-panics
// with the original value so the process still dies loudly.  Defer it at the
// top of main-goroutine entry points:
//
//	defer obs.DumpFlightOnPanic()
func DumpFlightOnPanic() {
	r := recover()
	if r == nil {
		return
	}
	DumpFlight(FlightDumpPath(), fmt.Sprintf("panic: %v", r))
	panic(r)
}

// InstallFlightSIGQUIT replaces the runtime's default SIGQUIT behaviour with
// an instrumented one: dump the flight recorder (stderr + configured path),
// then print all goroutine stacks and exit 2 — the same observable outcome as
// the default handler, with the ring in front of it.  Returns an uninstall
// func for tests.
func InstallFlightSIGQUIT() (uninstall func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	done := make(chan struct{})
	go func() {
		select {
		case <-done:
			return
		case <-ch:
		}
		DumpFlight(FlightDumpPath(), "SIGQUIT")
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		os.Stderr.Write(buf[:n]) //nolint:errcheck
		os.Exit(2)
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}

// HandleFlight serves the process flight recorder as JSON — the body behind
// GET /debug/flight on both the serve daemon and the -pprof-addr listener.
func HandleFlight(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	f := Flight()
	if f == nil {
		fmt.Fprint(w, `{"total":0,"cap":0,"records":[]}`+"\n")
		return
	}
	f.WriteJSON(w) //nolint:errcheck
}

// RegisterDebug mounts the shared debug surface on mux: the five
// net/http/pprof handlers plus GET /debug/flight.  Both the tools'
// -pprof-addr listener (ServePprof) and the serve daemon's main mux use this
// one registration, so the debug surface cannot drift between them.
func RegisterDebug(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/flight", HandleFlight)
}
