package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestTracerRing(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Event(&Event{Cycle: uint64(i), Kind: KPredict, Comp: "X"})
	}
	if got := tr.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("len(Events) = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Cycle != want {
			t.Errorf("Events[%d].Cycle = %d, want %d (oldest-first order)", i, ev.Cycle, want)
		}
	}
}

func TestTracerPartialFill(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 3; i++ {
		tr.Event(&Event{Cycle: uint64(i)})
	}
	if got := tr.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d, want 0", got)
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("len(Events) = %d, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Cycle != uint64(i) {
			t.Errorf("Events[%d].Cycle = %d, want %d", i, ev.Cycle, i)
		}
	}
}

func TestTracerDefaultCap(t *testing.T) {
	tr := NewTracer(0)
	if got := cap(tr.buf); got != DefaultTracerCap {
		t.Fatalf("default capacity = %d, want %d", got, DefaultTracerCap)
	}
}

func TestKindRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if name == "invalid" {
			t.Fatalf("kind %d has no name", k)
		}
		got, ok := ParseKind(name)
		if !ok || got != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v, true", name, got, ok, k)
		}
	}
	if _, ok := ParseKind("nonsense"); ok {
		t.Error("ParseKind accepted an unknown name")
	}
	if Kind(200).String() != "invalid" {
		t.Error("out-of-range kind did not print invalid")
	}
}

func TestMetaSum(t *testing.T) {
	a := MetaSum([]uint64{1, 2, 3})
	if a != MetaSum([]uint64{1, 2, 3}) {
		t.Fatal("MetaSum not deterministic")
	}
	if a == MetaSum([]uint64{1, 2, 4}) {
		t.Fatal("MetaSum collision on adjacent inputs")
	}
	if MetaSum(nil) != MetaSum([]uint64{}) {
		t.Fatal("MetaSum(nil) != MetaSum(empty)")
	}
}

func TestNilMetricsSafe(t *testing.T) {
	var m *Metrics
	m.AddJobs(3)
	m.JobStarted()
	m.JobDone(true)
	m.AddCycles(7)
	m.AddInsts(9)
}

func TestMetricsSnapshot(t *testing.T) {
	m := NewMetrics()
	m.AddJobs(4)
	m.JobStarted()
	m.JobStarted()
	m.JobDone(false)
	m.AddCycles(2000)
	m.AddInsts(1000)
	s := m.Snap()
	if s.JobsTotal != 4 || s.JobsStarted != 2 || s.JobsDone != 1 || s.JobsFailed != 0 {
		t.Fatalf("bad snapshot: %+v", s)
	}
	if s.Cycles != 2000 || s.Instructions != 1000 {
		t.Fatalf("bad counters: %+v", s)
	}
	if !strings.Contains(m.ProgressLine(), "1/4 jobs done") {
		t.Fatalf("progress line: %q", m.ProgressLine())
	}
	expo := m.Expo()
	for _, want := range []string{
		"cobra_jobs_total 4", "cobra_jobs_running 1", "cobra_jobs_done 1",
		"cobra_sim_cycles_total 2000", "cobra_sim_instructions_total 1000",
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %q:\n%s", want, expo)
		}
	}
}

func TestServeMetrics(t *testing.T) {
	m := NewMetrics()
	m.AddJobs(2)
	addr, closer, err := ServeMetrics("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	defer closer() //nolint:errcheck
	for _, path := range []string{"/", "/metrics"} {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(body), "cobra_jobs_total 2") {
			t.Errorf("GET %s: missing counter in body:\n%s", path, body)
		}
	}
}

func TestServePprof(t *testing.T) {
	addr, closer, err := ServePprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer closer() //nolint:errcheck
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: status %d", resp.StatusCode)
	}
}

func TestBranchProfile(t *testing.T) {
	p := NewBranchProfile()
	ops := []Opinion{
		{Comp: "TAGE3", DirValid: true, Taken: false},
		{Comp: "BIM2", DirValid: true, Taken: true},
		{Comp: "UBTB1", DirValid: false, Taken: true},
	}
	// PC 0x100: 3 execs, 2 mispredicts provided by TAGE3; BIM2 was right.
	p.Record(0x100, "branch", true, true, "TAGE3", ops)
	p.Record(0x100, "branch", true, true, "TAGE3", ops)
	p.Record(0x100, "branch", false, false, "TAGE3", nil)
	// PC 0x200: 1 exec, 1 mispredict.
	p.Record(0x200, "jump", true, true, "BTB2", nil)

	if p.TotalExecs() != 4 || p.TotalMispredicts() != 3 {
		t.Fatalf("totals: execs=%d misp=%d", p.TotalExecs(), p.TotalMispredicts())
	}
	if p.PCs() != 2 {
		t.Fatalf("PCs = %d", p.PCs())
	}
	top := p.Top(0)
	if len(top) != 2 || top[0].PC != 0x100 || top[1].PC != 0x200 {
		t.Fatalf("Top order wrong: %+v", top)
	}
	if top[0].WrongBy["TAGE3"] != 2 {
		t.Errorf("WrongBy[TAGE3] = %d, want 2", top[0].WrongBy["TAGE3"])
	}
	if top[0].RightBy["BIM2"] != 2 {
		t.Errorf("RightBy[BIM2] = %d, want 2 (overridden-but-right)", top[0].RightBy["BIM2"])
	}
	if _, bad := top[0].RightBy["UBTB1"]; bad {
		t.Error("RightBy counted a DirValid=false opinion")
	}
	if got := p.ShareTop(1); got < 0.66 || got > 0.67 {
		t.Errorf("ShareTop(1) = %f, want 2/3", got)
	}
	tbl := p.Table(2).String()
	if !strings.Contains(tbl, "H2P") || !strings.Contains(tbl, "0x100") {
		t.Errorf("table missing content:\n%s", tbl)
	}
}

func TestBranchProfileSumInvariant(t *testing.T) {
	p := NewBranchProfile()
	want := uint64(0)
	for i := 0; i < 100; i++ {
		misp := i%3 == 0
		if misp {
			want++
		}
		p.Record(uint64(0x1000+i%7*4), "branch", i%2 == 0, misp, "BIM2", nil)
	}
	var sum uint64
	for _, st := range p.Top(0) {
		sum += st.Misp
	}
	if sum != want || p.TotalMispredicts() != want {
		t.Fatalf("per-PC sum %d, TotalMispredicts %d, want %d", sum, p.TotalMispredicts(), want)
	}
}
