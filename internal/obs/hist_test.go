package obs

import (
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

var promSample = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (.+)$`)

// promExemplar matches the OpenMetrics exemplar suffix that may follow a
// bucket sample: `# {label="value"} <value> [<unix-seconds>]`.
var promExemplar = regexp.MustCompile(`^\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"\} ([0-9.eE+-]+)( [0-9]+\.[0-9]+)?$`)

// normLabels canonicalizes a label block: sorted pairs, braces always present.
func normLabels(labels string) string {
	trimmed := strings.Trim(labels, "{}")
	if trimmed == "" {
		return "{}"
	}
	pairs := strings.Split(trimmed, ",")
	sort.Strings(pairs)
	return "{" + strings.Join(pairs, ",") + "}"
}

// promHist is one parsed histogram series: the cumulative bucket counts in
// exposition order plus the _sum and _count samples.
type promHist struct {
	les     []float64
	buckets []float64
	sum     float64
	count   float64
	hasSum  bool
	hasCnt  bool
}

// parsePromText validates every line of a Prometheus text exposition (HELP,
// TYPE, or sample) and collects the histogram series keyed by
// "family{labels-without-le}".
func parsePromText(t *testing.T, text string) map[string]*promHist {
	t.Helper()
	hists := map[string]*promHist{}
	histFamilies := map[string]bool{}
	get := func(key string) *promHist {
		if hists[key] == nil {
			hists[key] = &promHist{}
		}
		return hists[key]
	}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || line == "# EOF" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Errorf("malformed TYPE line: %q", line)
				continue
			}
			if parts[3] == "histogram" {
				histFamilies[parts[2]] = true
			}
			continue
		}
		sample, exemplar, hasEx := strings.Cut(line, " # ")
		m := promSample.FindStringSubmatch(sample)
		if m == nil {
			t.Errorf("line is not a valid Prometheus sample: %q", line)
			continue
		}
		name, labels := m[1], m[2]
		val, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Errorf("sample %q has non-numeric value: %v", line, err)
			continue
		}
		exVal := math.NaN()
		if hasEx {
			if !strings.HasSuffix(name, "_bucket") {
				t.Errorf("exemplar on a non-bucket sample: %q", line)
			}
			em := promExemplar.FindStringSubmatch(exemplar)
			if em == nil {
				t.Errorf("malformed exemplar %q in %q", exemplar, line)
			} else if exVal, err = strconv.ParseFloat(em[1], 64); err != nil {
				t.Errorf("exemplar value in %q: %v", line, err)
			}
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			family := strings.TrimSuffix(name, "_bucket")
			if !histFamilies[family] {
				t.Errorf("bucket sample %q without a histogram TYPE for %s", line, family)
				continue
			}
			le := math.NaN()
			var rest []string
			for _, kv := range strings.Split(strings.Trim(labels, "{}"), ",") {
				if v, ok := strings.CutPrefix(kv, `le="`); ok {
					le, err = strconv.ParseFloat(strings.TrimSuffix(v, `"`), 64)
					if err != nil {
						t.Errorf("bad le in %q: %v", line, err)
					}
					continue
				}
				rest = append(rest, kv)
			}
			sort.Strings(rest)
			h := get(family + "{" + strings.Join(rest, ",") + "}")
			h.les = append(h.les, le)
			h.buckets = append(h.buckets, val)
			if hasEx && !math.IsNaN(exVal) && !math.IsInf(le, +1) && exVal > le {
				t.Errorf("exemplar value %g outside its le=%g bucket: %q", exVal, le, line)
			}
		case strings.HasSuffix(name, "_sum") && histFamilies[strings.TrimSuffix(name, "_sum")]:
			h := get(strings.TrimSuffix(name, "_sum") + normLabels(labels))
			h.sum, h.hasSum = val, true
		case strings.HasSuffix(name, "_count") && histFamilies[strings.TrimSuffix(name, "_count")]:
			h := get(strings.TrimSuffix(name, "_count") + normLabels(labels))
			h.count, h.hasCnt = val, true
		}
	}
	// Every histogram family that declared a TYPE must have produced series.
	for fam := range histFamilies {
		found := false
		for key := range hists {
			if strings.HasPrefix(key, fam+"{") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("histogram family %s declared but has no series", fam)
		}
	}
	// Structural invariants: ascending le, non-decreasing cumulative counts,
	// terminal +Inf bucket equal to _count.
	for key, h := range hists {
		if !h.hasSum || !h.hasCnt {
			t.Errorf("%s missing _sum or _count", key)
			continue
		}
		if len(h.les) == 0 || !math.IsInf(h.les[len(h.les)-1], +1) {
			t.Errorf("%s does not end with a +Inf bucket: %v", key, h.les)
			continue
		}
		for i := 1; i < len(h.les); i++ {
			if !(h.les[i] > h.les[i-1]) {
				t.Errorf("%s le bounds not ascending at %d: %v", key, i, h.les)
			}
			if h.buckets[i] < h.buckets[i-1] {
				t.Errorf("%s cumulative counts decrease at le=%g: %v", key, h.les[i], h.buckets)
			}
		}
		if inf := h.buckets[len(h.buckets)-1]; inf != h.count {
			t.Errorf("%s +Inf bucket %g != _count %g", key, inf, h.count)
		}
	}
	return hists
}

func TestExpBucketsAscending(t *testing.T) {
	b := ExpBuckets(0.001, 2, 16)
	if len(b) != 16 {
		t.Fatalf("got %d bounds", len(b))
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending: %v", b)
		}
	}
	if b[0] != 0.001 || math.Abs(b[1]-0.002) > 1e-12 {
		t.Errorf("unexpected ladder start: %v", b[:2])
	}
}

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram("x_seconds", "help", "", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // must be ignored
	if h.Count() != 5 {
		t.Errorf("Count() = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 56.05; math.Abs(got-want) > 1e-9 {
		t.Errorf("Sum() = %g, want %g", got, want)
	}
	var nilH *Histogram
	nilH.Observe(1) // nil receiver is a no-op
}

// TestMetricsExpoHistograms observes known values through the Metrics facade
// and checks the whole exposition is well-formed Prometheus text with
// self-consistent histograms.
func TestMetricsExpoHistograms(t *testing.T) {
	m := NewMetrics()
	m.ObserveQueueWait(3 * time.Millisecond)
	m.ObserveQueueWait(40 * time.Millisecond)
	m.ObserveJob(100*time.Millisecond, 1_000_000)
	m.ObserveRequest(5*time.Millisecond, true)
	m.ObserveRequest(200*time.Millisecond, false)
	m.ObserveRequest(210*time.Millisecond, false)

	hists := parsePromText(t, m.Expo())
	expect := map[string]float64{
		"cobra_serve_queue_wait_seconds{}":     2,
		"cobra_job_exec_seconds{}":             1,
		"cobra_job_insts_per_second{}":         1,
		`cobra_request_seconds{result="hit"}`:  1,
		`cobra_request_seconds{result="miss"}`: 2,
	}
	for key, want := range expect {
		h := hists[key]
		if h == nil {
			t.Errorf("missing histogram series %s (have %v)", key, keys(hists))
			continue
		}
		if h.count != want {
			t.Errorf("%s count = %g, want %g", key, h.count, want)
		}
	}
	if h := hists[`cobra_request_seconds{result="miss"}`]; h != nil {
		if want := 0.200 + 0.210; math.Abs(h.sum-want) > 1e-9 {
			t.Errorf("miss sum = %g, want %g", h.sum, want)
		}
	}
	if got := m.RequestCount(true); got != 1 {
		t.Errorf("RequestCount(hit) = %d, want 1", got)
	}
	if got := m.RequestCount(false); got != 2 {
		t.Errorf("RequestCount(miss) = %d, want 2", got)
	}
}

// TestOpenMetricsExemplars: ObserveRequestEx attaches trace-id exemplars
// that render only in the OpenMetrics exposition, with valid syntax and
// values inside their buckets; the classic exposition stays exemplar-free.
func TestOpenMetricsExemplars(t *testing.T) {
	m := NewMetrics()
	m.ObserveRequestEx(5*time.Millisecond, true, "aaaabbbbccccdddd0000111122223333")
	m.ObserveRequestEx(200*time.Millisecond, false, "ffffeeeeddddcccc0000111122223333")

	om := m.ExpoOpenMetrics()
	parsePromText(t, om) // exemplar syntax + bucket invariants
	if !strings.Contains(om, `# {trace_id="ffffeeeeddddcccc0000111122223333"}`) {
		t.Errorf("miss exemplar missing from OpenMetrics exposition:\n%s", om)
	}
	if !strings.Contains(om, `# {trace_id="aaaabbbbccccdddd0000111122223333"}`) {
		t.Errorf("hit exemplar missing from OpenMetrics exposition:\n%s", om)
	}

	classic := m.Expo()
	parsePromText(t, classic)
	if strings.Contains(classic, " # {") {
		t.Error("classic Prometheus exposition leaked exemplar syntax")
	}

	// OpenMetrics counter families must be declared without the _total
	// suffix while their samples keep it.
	for _, line := range strings.Split(om, "\n") {
		if strings.HasPrefix(line, "# TYPE ") && strings.Contains(line, " counter") &&
			strings.Contains(line, "_total ") {
			t.Errorf("OM counter family declared with _total suffix: %q", line)
		}
	}
	if !strings.Contains(om, "\ncobra_cache_corrupt_total ") {
		t.Errorf("OM counter samples lost their _total suffix:\n%s", om)
	}
	if !strings.Contains(om, "# TYPE cobra_cache_corrupt counter") {
		t.Errorf("OM counter family kept its _total suffix:\n%s", om)
	}
}

// TestRunResourceFamilies: per-run attribution lands in the three new
// histogram families with the right labels.
func TestRunResourceFamilies(t *testing.T) {
	m := NewMetrics()
	m.ObserveRunResources(Resources{CPUUserMS: 120, GCCPUMS: 8, AllocBytes: 1 << 20})
	hists := parsePromText(t, m.Expo())
	for _, key := range []string{
		`cobra_run_cpu_seconds{class="user"}`,
		`cobra_run_cpu_seconds{class="gc"}`,
		"cobra_run_alloc_bytes{}",
	} {
		h := hists[key]
		if h == nil {
			t.Errorf("missing histogram series %s (have %v)", key, keys(hists))
			continue
		}
		if h.count != 1 {
			t.Errorf("%s count = %g, want 1", key, h.count)
		}
	}
}

// TestRuntimeExpoWellFormed: the runtime/metrics-backed families pass the
// same strict validator as the process metrics, in both exposition flavors.
func TestRuntimeExpoWellFormed(t *testing.T) {
	for name, text := range map[string]string{
		"classic": RuntimeExpo(), "openmetrics": RuntimeExpoOpenMetrics(),
	} {
		hists := parsePromText(t, text)
		for _, fam := range []string{"go_goroutines", "go_heap_objects_bytes", "go_heap_allocs_bytes_total"} {
			if !strings.Contains(text, "\n"+fam+" ") {
				t.Errorf("%s: family %s missing:\n%s", name, fam, text)
			}
		}
		for _, fam := range []string{"go_gc_pause_seconds{}", "go_sched_latency_seconds{}"} {
			if hists[fam] == nil {
				t.Errorf("%s: histogram %s missing (have %v)", name, fam, keys(hists))
			}
		}
	}
	if !strings.Contains(RuntimeExpoOpenMetrics(), "# TYPE go_gc_cycles counter") {
		t.Error("OM runtime counter family kept its _total suffix")
	}
	if !strings.Contains(RuntimeExpo(), "# TYPE go_gc_cycles_total counter") {
		t.Error("classic runtime counter family lost its _total suffix")
	}
}

func keys(m map[string]*promHist) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// TestProgressLineStable pins the progress-report format: sweep users parse
// it with cut/awk, so changes must be deliberate.
func TestProgressLineStable(t *testing.T) {
	m := NewMetrics()
	m.AddJobs(4)
	m.JobStarted()
	m.JobStarted()
	m.JobDone(false)
	m.AddCycles(2_000_000)
	m.AddInsts(1_500_000)
	line := m.ProgressLine()
	want := regexp.MustCompile(
		`^\[runner\] 1/4 jobs done \(1 running, 0 failed\)  2\.0 Mcycles  1\.5 Minsts  [0-9.]+ kcycles/s  [0-9a-z.]+ elapsed$`)
	if !want.MatchString(line) {
		t.Errorf("progress line drifted from the documented shape:\n%s", line)
	}
}
