package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Histogram is a fixed-bucket latency/rate distribution rendered in the
// Prometheus text exposition (`_bucket`/`_sum`/`_count` with cumulative
// `le` labels).  Buckets are chosen at construction and never reshaped, so
// Observe is a lock-free binary search plus two atomic adds; all methods
// are safe for concurrent use and valid on a nil receiver.
type Histogram struct {
	name  string
	help  string
	label string // extra label pair rendered into every series, e.g. `result="hit"`

	bounds  []float64 // ascending upper bounds; +Inf is implicit at the end
	buckets []atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	count   atomic.Uint64
}

// NewHistogram builds a histogram named name with the given ascending bucket
// upper bounds (+Inf is added implicitly).  label, when non-empty, is an
// extra `key="value"` pair rendered into every series — the mechanism behind
// families like cobra_request_seconds{result="hit"|"miss"}.
func NewHistogram(name, help, label string, bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must ascend: " + name)
	}
	return &Histogram{
		name: name, help: help, label: label,
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start, each factor times the previous — the standard latency ladder.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one sample.  Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.buckets[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns how many samples were observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// header writes the one-per-family HELP/TYPE preamble.
func (h *Histogram) header(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
}

// series writes the cumulative bucket, sum, and count lines for this
// histogram's label set.
func (h *Histogram) series(b *strings.Builder) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(b, "%s_bucket{%sle=%q} %d\n", h.name, h.labelPrefix(), formatBound(bound), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", h.name, h.labelPrefix(), cum)
	suffix := ""
	if h.label != "" {
		suffix = "{" + h.label + "}"
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", h.name, suffix, strconv.FormatFloat(h.Sum(), 'g', -1, 64))
	fmt.Fprintf(b, "%s_count%s %d\n", h.name, suffix, cum)
}

func (h *Histogram) labelPrefix() string {
	if h.label == "" {
		return ""
	}
	return h.label + ","
}

// Expo renders the full single-series exposition (header + series).
func (h *Histogram) Expo() string {
	var b strings.Builder
	h.header(&b)
	h.series(&b)
	return b.String()
}

func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
