package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket latency/rate distribution rendered in the
// Prometheus text exposition (`_bucket`/`_sum`/`_count` with cumulative
// `le` labels).  Buckets are chosen at construction and never reshaped, so
// Observe is a lock-free binary search plus two atomic adds; all methods
// are safe for concurrent use and valid on a nil receiver.
type Histogram struct {
	name  string
	help  string
	label string // extra label pair rendered into every series, e.g. `result="hit"`

	bounds  []float64 // ascending upper bounds; +Inf is implicit at the end
	buckets []atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	count   atomic.Uint64

	// Per-bucket exemplars (most recent sample with a trace ID per bucket),
	// rendered only in the OpenMetrics exposition.  Guarded by a mutex: only
	// the low-rate request path calls ObserveEx, never the hot loop.
	exMu      sync.Mutex
	exemplars []exemplar // lazily sized to len(buckets)
}

// exemplar links one observed sample to the trace that produced it, so a slow
// histogram bucket points straight at a trace ID to pull up.
type exemplar struct {
	traceID string
	value   float64
	ts      float64 // unix seconds
}

// NewHistogram builds a histogram named name with the given ascending bucket
// upper bounds (+Inf is added implicitly).  label, when non-empty, is an
// extra `key="value"` pair rendered into every series — the mechanism behind
// families like cobra_request_seconds{result="hit"|"miss"}.
func NewHistogram(name, help, label string, bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must ascend: " + name)
	}
	return &Histogram{
		name: name, help: help, label: label,
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start, each factor times the previous — the standard latency ladder.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one sample.  Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.buckets[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveEx records one sample like Observe and, when traceID is non-empty,
// remembers it as the destination bucket's exemplar for the OpenMetrics
// exposition.  Safe on a nil receiver.
func (h *Histogram) ObserveEx(v float64, traceID string) {
	h.Observe(v)
	if h == nil || traceID == "" || math.IsNaN(v) {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v)
	ex := exemplar{traceID: traceID, value: v, ts: float64(time.Now().UnixMicro()) / 1e6}
	h.exMu.Lock()
	if h.exemplars == nil {
		h.exemplars = make([]exemplar, len(h.buckets))
	}
	h.exemplars[idx] = ex
	h.exMu.Unlock()
}

// exemplarSnapshot returns a copy of the per-bucket exemplars (nil when none
// were ever recorded).
func (h *Histogram) exemplarSnapshot() []exemplar {
	h.exMu.Lock()
	defer h.exMu.Unlock()
	if h.exemplars == nil {
		return nil
	}
	return append([]exemplar(nil), h.exemplars...)
}

// Count returns how many samples were observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// header writes the one-per-family HELP/TYPE preamble.
func (h *Histogram) header(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
}

// series writes the cumulative bucket, sum, and count lines for this
// histogram's label set in the classic 0.0.4 text format.
func (h *Histogram) series(b *strings.Builder) { h.seriesEx(b, false) }

// seriesEx writes the series; withExemplars appends OpenMetrics exemplar
// suffixes (`# {trace_id="..."} value timestamp`) to bucket lines whose
// bucket has one.  Classic 0.0.4 output never carries exemplars — the syntax
// is OpenMetrics-only.
func (h *Histogram) seriesEx(b *strings.Builder, withExemplars bool) {
	var exs []exemplar
	if withExemplars {
		exs = h.exemplarSnapshot()
	}
	emit := func(i int, le string, cum uint64) {
		fmt.Fprintf(b, "%s_bucket{%sle=%q} %d", h.name, h.labelPrefix(), le, cum)
		if exs != nil && exs[i].traceID != "" {
			fmt.Fprintf(b, " # {trace_id=%q} %s %s", exs[i].traceID,
				strconv.FormatFloat(exs[i].value, 'g', -1, 64),
				strconv.FormatFloat(exs[i].ts, 'f', 6, 64))
		}
		b.WriteByte('\n')
	}
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		emit(i, formatBound(bound), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	emit(len(h.bounds), "+Inf", cum)
	suffix := ""
	if h.label != "" {
		suffix = "{" + h.label + "}"
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", h.name, suffix, strconv.FormatFloat(h.Sum(), 'g', -1, 64))
	fmt.Fprintf(b, "%s_count%s %d\n", h.name, suffix, cum)
}

func (h *Histogram) labelPrefix() string {
	if h.label == "" {
		return ""
	}
	return h.label + ","
}

// Expo renders the full single-series exposition (header + series).
func (h *Histogram) Expo() string {
	var b strings.Builder
	h.header(&b)
	h.series(&b)
	return b.String()
}

func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
