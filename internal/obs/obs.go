// Package obs is the observability layer: cycle-level event tracing for the
// composed predictor pipeline, per-branch misprediction attribution (H2P
// analysis), and runner telemetry (live metrics, progress reporting, and a
// Prometheus-style text endpoint).
//
// The design contract is zero cost when disabled: every producer guards its
// emit sites with a single nil check, so a pipeline or core built without an
// Observer/BranchProfile/Metrics attached runs the exact instruction sequence
// it ran before this package existed, and golden outputs stay byte-identical.
//
// Event sources:
//
//   - compose.Pipeline emits one record per sub-component for each of the
//     five §III-E interface events (predict, fire, mispredict, repair,
//     update) plus one per squashed history-file entry;
//   - uarch.Core emits frontend redirect records (deeper-stage overrides,
//     pre-decode redirects, backend mispredict flushes, fetch replays).
//
// Records land in a fixed-size ring-buffered Tracer and export to either the
// Chrome trace_event JSON format (load in chrome://tracing or Perfetto) or a
// compact binary format read back by the cobra-events tool.
package obs

import "sync"

// Kind classifies a traced event.
type Kind uint8

// The five sub-component interface events (§III-E) plus the frontend-level
// records the pipeline and core emit around them.
const (
	KPredict    Kind = iota // component issued a prediction (predict signal)
	KFire                   // speculative update for an accepted packet
	KMispredict             // fast update on the mispredicting packet
	KRepair                 // speculative state rollback for a packet
	KUpdate                 // commit-time update for a retiring packet
	KRedirect               // frontend redirect (override, pre-decode, resolve, replay)
	KSquash                 // a history-file entry was squashed
	numKinds
)

var kindNames = [numKinds]string{
	"predict", "fire", "mispredict", "repair", "update", "redirect", "squash",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "invalid"
}

// ParseKind parses a kind name as printed by Kind.String; ok is false for an
// unknown name.
func ParseKind(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return 0, false
}

// Event is one typed trace record.  Comp is empty for frontend-level records
// (redirect, squash); Slot is -1 when the record is not tied to a specific
// fetch-packet slot.  MetaSum is the FNV-1a checksum of the component's
// metadata words at the time of the event, letting a trace reader spot
// metadata corruption between predict and the later events without shipping
// the blobs themselves.
type Event struct {
	Cycle   uint64
	PC      uint64 // fetch packet base PC (redirects: the redirect target)
	Seq     uint64 // history-file entry sequence number
	MetaSum uint64
	Kind    Kind
	Slot    int16
	Dur     uint16 // predict: the component's response latency in cycles
	Comp    string // sub-component instance name; "" for frontend records
}

// Observer receives every traced event.  Implementations attached to a
// parallel runner batch are called from multiple goroutines and must be
// safe for concurrent use (Tracer is).
type Observer interface {
	Event(ev *Event)
}

// Opinion is one sub-component's own direction opinion for a fetch-packet
// slot, recorded at predict time — the raw overlay before composition, so an
// overridden component's correct prediction is still visible for
// attribution.
type Opinion struct {
	Comp     string
	DirValid bool
	Taken    bool
}

// MetaSum is the FNV-1a checksum over metadata words used in event records
// (the same fold paranoid mode uses for its round-trip invariant).
func MetaSum(words []uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, w := range words {
		for s := 0; s < 64; s += 8 {
			h ^= (w >> s) & 0xFF
			h *= prime
		}
	}
	return h
}

// DefaultTracerCap is the ring capacity NewTracer(0) allocates: enough for
// the tail of a long run without unbounded growth.
const DefaultTracerCap = 1 << 16

// Tracer is a fixed-size ring-buffered Observer: it keeps the most recent
// capacity events and counts the rest as dropped.  Safe for concurrent use,
// so one Tracer may observe every pipeline of a parallel runner batch.
type Tracer struct {
	mu    sync.Mutex
	buf   []Event
	next  int    // ring index of the next write
	total uint64 // events ever appended
}

// NewTracer returns a tracer holding the last capacity events (0 means
// DefaultTracerCap).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTracerCap
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// Event implements Observer.
func (t *Tracer) Event(ev *Event) {
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, *ev)
	} else {
		t.buf[t.next] = *ev
	}
	t.next++
	if t.next == cap(t.buf) {
		t.next = 0
	}
	t.total++
	t.mu.Unlock()
}

// Events returns a snapshot of the buffered events, oldest first.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if len(t.buf) == cap(t.buf) {
		out = append(out, t.buf[t.next:]...)
	}
	return append(out, t.buf[:t.next]...)
}

// Total returns how many events were ever observed (buffered + dropped).
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many events fell off the ring.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - uint64(len(t.buf))
}
