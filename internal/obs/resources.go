package obs

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// Resources is the per-run resource-attribution record written into result
// JSON (result_version ≥ 4): what one job cost the process in CPU, memory,
// and garbage collection, plus the serving-side wait breakdown.  Values are
// deltas of process-wide runtime/metrics counters measured around spec.Exec —
// with one worker (the serving default) they attribute cleanly to the job;
// with several workers concurrent jobs share the process counters and the
// numbers are an upper bound, which the DESIGN doc calls out.
type Resources struct {
	// CPUUserMS is user-mode CPU milliseconds consumed while the job ran.
	CPUUserMS float64 `json:"cpu_user_ms"`
	// GCCPUMS is CPU milliseconds the garbage collector consumed.
	GCCPUMS float64 `json:"gc_cpu_ms"`
	// AllocBytes / AllocObjects are heap allocation totals.
	AllocBytes   uint64 `json:"alloc_bytes"`
	AllocObjects uint64 `json:"alloc_objects"`
	// PeakHeapDeltaBytes is the largest observed growth of live heap bytes
	// over the baseline at job start (sampled, so a short spike between
	// samples can be missed).
	PeakHeapDeltaBytes uint64 `json:"peak_heap_delta_bytes"`
	// GCPauseMS approximates total stop-the-world pause time during the job
	// (midpoint sum over the /gc/pauses:seconds histogram delta).
	GCPauseMS float64 `json:"gc_pause_ms"`
	// GCPauseShare is GCPauseMS over the job's wall time, 0..1.
	GCPauseShare float64 `json:"gc_pause_share"`
	// GCCycles counts completed GC cycles during the job.
	GCCycles uint64 `json:"gc_cycles"`
	// WallMS is the metered interval's wall-clock length.
	WallMS float64 `json:"wall_ms"`
	// QueueWaitMS / RetryWaitMS / Attempts are the serving-side breakdown:
	// time queued before the first attempt, backoff slept between attempts,
	// and how many attempts ran.  Filled by the serve layer, not the meter.
	QueueWaitMS float64 `json:"queue_wait_ms"`
	RetryWaitMS float64 `json:"retry_wait_ms"`
	Attempts    int     `json:"attempts"`
}

// The runtime/metrics samples the meter reads.  Reading by name into a
// pre-built sample slice is allocation-free after the first call.
const (
	rmCPUUser    = "/cpu/classes/user:cpu-seconds"
	rmCPUGC      = "/cpu/classes/gc/total:cpu-seconds"
	rmAllocBytes = "/gc/heap/allocs:bytes"
	rmAllocObjs  = "/gc/heap/allocs:objects"
	rmHeapLive   = "/memory/classes/heap/objects:bytes"
	rmGCPauses   = "/gc/pauses:seconds"
	rmGCCycles   = "/gc/cycles/total:gc-cycles"
	rmSchedLat   = "/sched/latencies:seconds"
	rmGoroutines = "/sched/goroutines:goroutines"
)

// ResourceMeter measures one interval.  Start it immediately before the work,
// Stop it after; the background sampler tracks peak live heap in between.
type ResourceMeter struct {
	start    time.Time
	base     []metrics.Sample
	baseHeap uint64

	mu       sync.Mutex
	peakHeap uint64
	stop     chan struct{}
	done     chan struct{}
}

func meterSamples() []metrics.Sample {
	return []metrics.Sample{
		{Name: rmCPUUser},
		{Name: rmCPUGC},
		{Name: rmAllocBytes},
		{Name: rmAllocObjs},
		{Name: rmHeapLive},
		{Name: rmGCPauses},
		{Name: rmGCCycles},
	}
}

// StartResourceMeter snapshots the baseline and starts the peak-heap sampler
// (one goroutine polling live heap every interval; 0 selects 25ms).
func StartResourceMeter(interval time.Duration) *ResourceMeter {
	if interval <= 0 {
		interval = 25 * time.Millisecond
	}
	m := &ResourceMeter{
		start: time.Now(),
		base:  meterSamples(),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	metrics.Read(m.base)
	m.baseHeap = kindUint64(m.base[4])
	m.peakHeap = m.baseHeap
	go m.sample(interval)
	return m
}

func (m *ResourceMeter) sample(interval time.Duration) {
	defer close(m.done)
	probe := []metrics.Sample{{Name: rmHeapLive}}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			metrics.Read(probe)
			if v := kindUint64(probe[0]); v > 0 {
				m.mu.Lock()
				if v > m.peakHeap {
					m.peakHeap = v
				}
				m.mu.Unlock()
			}
		}
	}
}

// Stop ends the interval and returns the attribution record (wait breakdown
// fields zero — the caller owns those).
func (m *ResourceMeter) Stop() Resources {
	if m == nil {
		return Resources{}
	}
	close(m.stop)
	<-m.done
	end := meterSamples()
	metrics.Read(end)
	wall := time.Since(m.start)

	var r Resources
	r.WallMS = float64(wall.Microseconds()) / 1000
	r.CPUUserMS = (kindFloat64(end[0]) - kindFloat64(m.base[0])) * 1000
	r.GCCPUMS = (kindFloat64(end[1]) - kindFloat64(m.base[1])) * 1000
	r.AllocBytes = kindUint64(end[2]) - kindUint64(m.base[2])
	r.AllocObjects = kindUint64(end[3]) - kindUint64(m.base[3])
	m.mu.Lock()
	if m.peakHeap > m.baseHeap {
		r.PeakHeapDeltaBytes = m.peakHeap - m.baseHeap
	}
	m.mu.Unlock()
	// Final heap read can exceed anything the sampler saw.
	if v := kindUint64(end[4]); v > m.baseHeap && v-m.baseHeap > r.PeakHeapDeltaBytes {
		r.PeakHeapDeltaBytes = v - m.baseHeap
	}
	r.GCPauseMS = histDeltaSum(end[5], m.base[5]) * 1000
	if sec := wall.Seconds(); sec > 0 {
		r.GCPauseShare = (r.GCPauseMS / 1000) / sec
	}
	r.GCCycles = kindUint64(end[6]) - kindUint64(m.base[6])
	// Negative CPU deltas can only come from clamping/rounding inside the
	// runtime; floor at zero so the record never claims negative cost.
	if r.CPUUserMS < 0 {
		r.CPUUserMS = 0
	}
	if r.GCCPUMS < 0 {
		r.GCCPUMS = 0
	}
	return r
}

// kindUint64 / kindFloat64 read a sample defensively: runtime/metrics
// reserves the right to report KindBad for names a future runtime drops.
func kindUint64(s metrics.Sample) uint64 {
	if s.Value.Kind() == metrics.KindUint64 {
		return s.Value.Uint64()
	}
	return 0
}

func kindFloat64(s metrics.Sample) float64 {
	switch s.Value.Kind() {
	case metrics.KindFloat64:
		return s.Value.Float64()
	case metrics.KindUint64:
		return float64(s.Value.Uint64())
	}
	return 0
}

// histDeltaSum approximates the value-sum delta between two cumulative
// Float64Histogram reads via bucket-midpoint weighting — the standard way to
// turn the runtime's pause/latency histograms into a single total.
func histDeltaSum(end, base metrics.Sample) float64 {
	if end.Value.Kind() != metrics.KindFloat64Histogram {
		return 0
	}
	eh := end.Value.Float64Histogram()
	var bh *metrics.Float64Histogram
	if base.Value.Kind() == metrics.KindFloat64Histogram {
		bh = base.Value.Float64Histogram()
	}
	var total float64
	for i, n := range eh.Counts {
		if bh != nil && i < len(bh.Counts) {
			n -= bh.Counts[i]
		}
		if n == 0 {
			continue
		}
		total += float64(n) * bucketMid(eh.Buckets, i)
	}
	return total
}

// bucketMid returns a representative value for bucket i of a
// Float64Histogram (Counts[i] covers Buckets[i]..Buckets[i+1]).
func bucketMid(bounds []float64, i int) float64 {
	lo, hi := bounds[i], bounds[i+1]
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, +1):
		return 0
	case math.IsInf(lo, -1):
		return hi
	case math.IsInf(hi, +1):
		return lo
	default:
		return (lo + hi) / 2
	}
}
