package obs

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// randomEvents builds a seeded pseudo-random event stream exercising every
// kind, frontend and component records, boundary slot/dur values, and
// full-range 64-bit fields.
func randomEvents(rng *rand.Rand, n int) []Event {
	comps := []string{"", "TAGE3", "BIM2", "BTB2", "UBTB1", "LOOP3", "a-very-long-component-instance-name"}
	evs := make([]Event, n)
	cycle := uint64(0)
	for i := range evs {
		cycle += uint64(rng.Intn(5))
		kind := Kind(rng.Intn(int(numKinds)))
		comp := comps[rng.Intn(len(comps))]
		evs[i] = Event{
			Cycle:   cycle,
			PC:      rng.Uint64(),
			Seq:     rng.Uint64(),
			MetaSum: rng.Uint64(),
			Kind:    kind,
			Slot:    int16(rng.Intn(6) - 1),
			Dur:     uint16(rng.Intn(4)),
			Comp:    comp,
		}
	}
	return evs
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1000} {
		rng := rand.New(rand.NewSource(int64(n) + 42))
		want := randomEvents(rng, n)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, want); err != nil {
			t.Fatalf("n=%d: write: %v", n, err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("n=%d: read: %v", n, err)
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: got %d events back", n, len(got))
		}
		if n > 0 && !reflect.DeepEqual(got, want) {
			for i := range want {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("n=%d: event %d: got %+v, want %+v", n, i, got[i], want[i])
				}
			}
		}
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	// Many small seeded streams: any write/read asymmetry that depends on
	// field values shows up across the sweep.
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		want := randomEvents(rng, 1+rng.Intn(64))
		var buf bytes.Buffer
		if err := WriteBinary(&buf, want); err != nil {
			t.Fatalf("seed %d: write: %v", seed, err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("seed %d: read: %v", seed, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: round trip mismatch", seed)
		}
	}
}

func TestBinaryRejectsBadMagic(t *testing.T) {
	_, err := ReadBinary(strings.NewReader("NOTMAGIC junk"))
	if err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("err = %v, want bad-magic error", err)
	}
}

func TestBinaryRejectsTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	evs := randomEvents(rng, 20)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, evs); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) - 1, len(full) / 2, 10, 4} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d of %d bytes read back without error", cut, len(full))
		}
	}
}

func TestBinaryRejectsBadKind(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, []Event{{Kind: KPredict, Comp: "X"}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Header: magic(8) + nComp(4) + len(2)+"X"(1) + nEvents(8); kind is the
	// first record byte.
	raw[8+4+3+8] = 0xEE
	if _, err := ReadBinary(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "invalid kind") {
		t.Fatalf("err = %v, want invalid-kind error", err)
	}
}
