package obs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary event-file layout (little endian), read back by cobra-events:
//
//	magic   [8]byte  "CBRAEVT1"
//	nComp   uint32   component string-table size
//	        per component: uint16 length + raw bytes
//	nEvents uint64
//	        per event: kind u8, comp u16 (string-table index; 0xFFFF = ""),
//	                   slot i16, dur u16, pad u8,
//	                   cycle u64, pc u64, seq u64, metasum u64
//
// The fixed 40-byte record keeps a million-event trace at ~40 MB and makes
// filtering by seek trivial for future tooling.

var binaryMagic = [8]byte{'C', 'B', 'R', 'A', 'E', 'V', 'T', '1'}

const noComp = 0xFFFF

// WriteBinary writes events in the compact binary format.
func WriteBinary(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	comps := map[string]uint16{}
	var order []string
	for _, ev := range events {
		if ev.Comp == "" {
			continue
		}
		if _, ok := comps[ev.Comp]; !ok {
			if len(order) >= noComp {
				return fmt.Errorf("obs: more than %d distinct components", noComp)
			}
			comps[ev.Comp] = uint16(len(order))
			order = append(order, ev.Comp)
		}
	}
	var u16 [2]byte
	var u32 [4]byte
	var u64 [8]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(order)))
	bw.Write(u32[:])
	for _, name := range order {
		if len(name) > 0xFFFF {
			return fmt.Errorf("obs: component name too long (%d bytes)", len(name))
		}
		binary.LittleEndian.PutUint16(u16[:], uint16(len(name)))
		bw.Write(u16[:])
		bw.WriteString(name)
	}
	binary.LittleEndian.PutUint64(u64[:], uint64(len(events)))
	bw.Write(u64[:])
	var rec [40]byte
	for i := range events {
		ev := &events[i]
		rec[0] = byte(ev.Kind)
		ci := uint16(noComp)
		if ev.Comp != "" {
			ci = comps[ev.Comp]
		}
		binary.LittleEndian.PutUint16(rec[1:3], ci)
		binary.LittleEndian.PutUint16(rec[3:5], uint16(ev.Slot))
		binary.LittleEndian.PutUint16(rec[5:7], ev.Dur)
		rec[7] = 0
		binary.LittleEndian.PutUint64(rec[8:16], ev.Cycle)
		binary.LittleEndian.PutUint64(rec[16:24], ev.PC)
		binary.LittleEndian.PutUint64(rec[24:32], ev.Seq)
		binary.LittleEndian.PutUint64(rec[32:40], ev.MetaSum)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads an event file written by WriteBinary.
func ReadBinary(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("obs: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("obs: bad magic %q (not a cobra event file)", magic[:])
	}
	var u16 [2]byte
	var u32 [4]byte
	var u64 [8]byte
	if _, err := io.ReadFull(br, u32[:]); err != nil {
		return nil, err
	}
	nComp := binary.LittleEndian.Uint32(u32[:])
	if nComp >= noComp {
		return nil, fmt.Errorf("obs: implausible component count %d", nComp)
	}
	comps := make([]string, nComp)
	for i := range comps {
		if _, err := io.ReadFull(br, u16[:]); err != nil {
			return nil, err
		}
		name := make([]byte, binary.LittleEndian.Uint16(u16[:]))
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, err
		}
		comps[i] = string(name)
	}
	if _, err := io.ReadFull(br, u64[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(u64[:])
	if n > 1<<32 {
		return nil, fmt.Errorf("obs: implausible event count %d", n)
	}
	events := make([]Event, 0, n)
	var rec [40]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("obs: event %d: %w", i, err)
		}
		if rec[0] >= byte(numKinds) {
			return nil, fmt.Errorf("obs: event %d: invalid kind %d", i, rec[0])
		}
		ev := Event{
			Kind:    Kind(rec[0]),
			Slot:    int16(binary.LittleEndian.Uint16(rec[3:5])),
			Dur:     binary.LittleEndian.Uint16(rec[5:7]),
			Cycle:   binary.LittleEndian.Uint64(rec[8:16]),
			PC:      binary.LittleEndian.Uint64(rec[16:24]),
			Seq:     binary.LittleEndian.Uint64(rec[24:32]),
			MetaSum: binary.LittleEndian.Uint64(rec[32:40]),
		}
		if ci := binary.LittleEndian.Uint16(rec[1:3]); ci != noComp {
			if int(ci) >= len(comps) {
				return nil, fmt.Errorf("obs: event %d: component index %d out of range", i, ci)
			}
			ev.Comp = comps[ci]
		}
		events = append(events, ev)
	}
	return events, nil
}
