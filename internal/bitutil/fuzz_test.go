package bitutil

import "testing"

// FuzzFoldedHistory property-fuzzes the word-packed FoldBits against the
// bit-serial reference fold (FoldBitsRef) over arbitrary history contents,
// history lengths, and fold widths, then drives the incremental
// FoldedHistory through the same history and checks three properties:
//
//  1. FoldBits == FoldBitsRef for the same (hist, histLen, width);
//  2. shifting the history bit-by-bit through FoldedHistory.Update lands on
//     exactly the packed fold of the final window;
//  3. snapshot/restore round-trips: SetRaw(Fold()) and Set(hist) both
//     reproduce the live fold.
func FuzzFoldedHistory(f *testing.F) {
	f.Add(uint16(64), uint8(12), []byte{0xde, 0xad, 0xbe, 0xef})
	f.Add(uint16(0), uint8(1), []byte{})
	f.Add(uint16(1), uint8(32), []byte{0x01})
	f.Add(uint16(130), uint8(7), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x03})
	f.Add(uint16(640), uint8(11), []byte{0xa5, 0x5a, 0xc3, 0x3c})
	f.Add(uint16(63), uint8(31), []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80})
	f.Fuzz(func(t *testing.T, histLen16 uint16, width8 uint8, raw []byte) {
		histLen := uint(histLen16) % 1024
		width := uint(width8)%32 + 1 // FoldedHistory requires width in [1,32]

		// Decode the fuzz bytes into history words (bit 0 of word 0 is the
		// most recent outcome), sized to cover histLen.
		words := int(histLen+63) / 64
		if words == 0 {
			words = 1
		}
		hist := make([]uint64, words)
		for i := 0; i < len(raw) && i/8 < len(hist); i++ {
			hist[i/8] |= uint64(raw[i]) << (8 * uint(i%8))
		}
		if rem := histLen % 64; rem != 0 {
			hist[len(hist)-1] &= Mask(rem)
		} else if histLen == 0 {
			hist[0] = 0
		}

		// Property 1: packed fold == bit-serial reference fold.
		packed := FoldBits(hist, histLen, width)
		ref := FoldBitsRef(hist, histLen, width)
		if packed != ref {
			t.Fatalf("FoldBits(histLen=%d, width=%d) = %#x, reference = %#x",
				histLen, width, packed, ref)
		}

		// Property 2: the incremental register shifted through the same
		// history lands on the packed fold.  Shift oldest-first so the final
		// window is exactly hist[0:histLen]; the register starts from zero
		// history, so every outgoing bit during the warm-up is zero history
		// older than the window, exactly as in the live Global register.
		fh := NewFoldedHistory(histLen, width)
		for a := int(histLen) - 1; a >= 0; a-- {
			// When hist bit a shifts in, the bit leaving the histLen-wide
			// window has age a+histLen in the final vector (zero while the
			// register is still filling — HistBit reads past-end as false).
			fh.Update(HistBit(hist, uint(a)), HistBit(hist, uint(a)+histLen))
		}
		if fh.Fold() != packed {
			t.Fatalf("incremental fold = %#x, packed recompute = %#x (histLen=%d width=%d)",
				fh.Fold(), packed, histLen, width)
		}

		// Property 3a: raw snapshot round-trip.
		snap := fh.Fold()
		fh.Update(true, HistBit(hist, histLen-1))
		fh.SetRaw(snap)
		if fh.Fold() != snap {
			t.Fatalf("SetRaw round-trip: got %#x, want %#x", fh.Fold(), snap)
		}

		// Property 3b: recompute-from-vector restore matches the packed fold.
		fh.Update(false, HistBit(hist, histLen-1))
		fh.Set(hist)
		if fh.Fold() != packed {
			t.Fatalf("Set(hist) = %#x, want %#x", fh.Fold(), packed)
		}
	})
}

// FuzzChunkBits pins the word-boundary extraction primitive against a
// bit-serial rebuild: ChunkBits(hist, pos, n) must equal the value whose bit
// i is HistBit(hist, pos+i).
func FuzzChunkBits(f *testing.F) {
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef, 0x12, 0x34, 0x56, 0x78, 0x9a}, uint16(60), uint8(8))
	f.Add([]byte{}, uint16(0), uint8(64))
	f.Add([]byte{0xff}, uint16(7), uint8(2))
	f.Fuzz(func(t *testing.T, raw []byte, pos16 uint16, n8 uint8) {
		pos := uint(pos16) % 512
		n := uint(n8)%64 + 1
		hist := make([]uint64, (len(raw)+7)/8)
		for i, b := range raw {
			hist[i/8] |= uint64(b) << (8 * uint(i%8))
		}
		got := ChunkBits(hist, pos, n)
		var want uint64
		for i := uint(0); i < n; i++ {
			if HistBit(hist, pos+i) {
				want |= 1 << i
			}
		}
		if got != want {
			t.Fatalf("ChunkBits(pos=%d, n=%d) = %#x, want %#x (hist=%x)", pos, n, got, want, hist)
		}
	})
}

// seedWords is a deterministic pseudo-random history for benchmarks.
func seedWords(n int) []uint64 {
	out := make([]uint64, n)
	var x uint64 = 0x9E3779B97F4A7C15
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = x
	}
	return out
}

// BenchmarkFoldBits measures the word-packed recompute on a TAGE-scale
// 640-bit window; BenchmarkFoldBitsRef is the bit-serial baseline it
// replaced (~width× slower).
func BenchmarkFoldBits(b *testing.B) {
	hist := seedWords(10)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= FoldBits(hist, 640, 11)
	}
	_ = sink
}

func BenchmarkFoldBitsRef(b *testing.B) {
	hist := seedWords(10)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= FoldBitsRef(hist, 640, 11)
	}
	_ = sink
}
