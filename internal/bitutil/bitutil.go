// Package bitutil provides the small bit-manipulation primitives shared by
// the predictor sub-components: power-of-two masks, index hashing, and
// folded-history compression.
//
// Branch predictors index SRAM tables with hashes of the program counter and
// (possibly very long) branch histories.  Hardware implementations cannot
// afford to XOR a 64-bit-or-longer history vector down to an index every
// cycle, so they maintain *folded* histories: circular-shift registers that
// incrementally keep history%width up to date as bits are shifted in and out.
// FoldedHistory implements that structure and is the basis of the TAGE and
// GTAG index/tag functions.
package bitutil

// Mask returns a value with the low n bits set. n must be in [0, 64].
func Mask(n uint) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << n) - 1
}

// Bits extracts bits [lo, lo+n) of v.
func Bits(v uint64, lo, n uint) uint64 {
	return (v >> lo) & Mask(n)
}

// Clog2 returns ceil(log2(n)) for n >= 1, and 0 for n <= 1.
func Clog2(n int) uint {
	var b uint
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	return b
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// MixPC folds a fetch PC down to idxBits, discarding the low instOffset bits
// (which are constant within a fetch packet) and XOR-folding the remainder.
// This mirrors the PC hashing used by the RTL counter tables.
func MixPC(pc uint64, instOffset, idxBits uint) uint64 {
	v := pc >> instOffset
	if idxBits == 0 {
		return 0
	}
	var out uint64
	for v != 0 {
		out ^= v & Mask(idxBits)
		v >>= idxBits
	}
	return out
}

// XorFold folds v down to n bits by repeated XOR of n-bit chunks.
func XorFold(v uint64, n uint) uint64 {
	if n == 0 {
		return 0
	}
	var out uint64
	for v != 0 {
		out ^= v & Mask(n)
		v >>= n
	}
	return out
}

// Hash2 combines two values with a cheap invertible-ish mix suitable for
// table indexing. It is deliberately simple: hardware index functions are
// XOR/shift networks, not cryptographic hashes.
func Hash2(a, b uint64) uint64 {
	return a ^ (b << 1) ^ (b >> 3)
}

// SatInc increments a w-bit unsigned saturating counter.
func SatInc(c uint8, w uint) uint8 {
	if uint64(c) < Mask(w) {
		return c + 1
	}
	return c
}

// SatDec decrements a w-bit unsigned saturating counter.
func SatDec(c uint8, w uint) uint8 {
	if c > 0 {
		return c - 1
	}
	return c
}

// CtrUpdate moves a w-bit saturating counter toward taken/not-taken.
func CtrUpdate(c uint8, taken bool, w uint) uint8 {
	if taken {
		return SatInc(c, w)
	}
	return SatDec(c, w)
}

// CtrTaken interprets the MSB of a w-bit counter as the taken prediction.
func CtrTaken(c uint8, w uint) bool {
	return uint64(c) >= (Mask(w)+1)/2
}

// CtrWeak reports whether the counter is in one of its two weak states.
func CtrWeak(c uint8, w uint) bool {
	mid := uint8((Mask(w) + 1) / 2)
	return c == mid || c == mid-1
}

// SatIncS increments a signed saturating counter stored in an int8 with the
// given magnitude bound (counter ranges over [-bound-1, bound]).
func SatIncS(c int8, bound int8) int8 {
	if c < bound {
		return c + 1
	}
	return c
}

// SatDecS decrements a signed saturating counter with the given bound.
func SatDecS(c int8, bound int8) int8 {
	if c > -bound-1 {
		return c - 1
	}
	return c
}
