package bitutil

// FoldedHistory incrementally maintains an n-bit fold of the most recent
// histLen bits of a shift-register history, exactly as the circular-shift
// registers in TAGE hardware do.  Shifting a new bit in and the oldest bit
// out updates the fold in O(1) instead of re-XORing the whole history.
//
// The fold is defined as the XOR of consecutive width-bit chunks of the
// history, where chunk i covers history bits [i*width, (i+1)*width).  The
// invariant Fold() == FoldBits(history, histLen, width) is checked by
// property tests.
type FoldedHistory struct {
	folded   uint64
	histLen  uint // number of history bits covered
	width    uint // output width in bits
	outPoint uint // bit position within the fold where the oldest bit leaves
}

// NewFoldedHistory returns a folded history covering histLen bits of history
// compressed to width bits. width must be in [1, 32]; histLen may be 0 (the
// fold is then constant 0).
func NewFoldedHistory(histLen, width uint) *FoldedHistory {
	if width == 0 || width > 32 {
		panic("bitutil: folded history width must be in [1,32]")
	}
	return &FoldedHistory{
		histLen:  histLen,
		width:    width,
		outPoint: histLen % width,
	}
}

// Width returns the output width in bits.
func (f *FoldedHistory) Width() uint { return f.width }

// HistLen returns the number of history bits covered by the fold.
func (f *FoldedHistory) HistLen() uint { return f.histLen }

// Fold returns the current folded value.
func (f *FoldedHistory) Fold() uint64 { return f.folded }

// Update shifts newBit into the history and oldBit (the bit that is histLen
// positions old, i.e. the one leaving the window) out, maintaining the fold.
func (f *FoldedHistory) Update(newBit, oldBit bool) {
	if f.histLen == 0 {
		return
	}
	h := f.folded
	// Rotate left by one within width.
	h = (h << 1) | (h >> (f.width - 1))
	h &= Mask(f.width)
	// New bit enters at position 0.
	if newBit {
		h ^= 1
	}
	// Old bit leaves at outPoint.
	if oldBit {
		h ^= 1 << f.outPoint
	}
	f.folded = h & Mask(f.width)
}

// Set recomputes the fold from a full history vector (bit 0 = most recent).
// Used when restoring from a snapshot.
func (f *FoldedHistory) Set(hist []uint64) {
	f.folded = FoldBits(hist, f.histLen, f.width)
}

// SetRaw directly restores a previously captured fold value.
func (f *FoldedHistory) SetRaw(v uint64) { f.folded = v & Mask(f.width) }

// FoldBits computes the reference (non-incremental) fold of the low histLen
// bits of hist (bit 0 of hist[0] = most recent outcome) down to width bits:
// the history bit of age a contributes to fold bit a%width, i.e. the XOR of
// consecutive width-bit chunks of the history window.  FoldedHistory.Update
// maintains exactly this value incrementally; the equivalence is verified by
// property tests.
func FoldBits(hist []uint64, histLen, width uint) uint64 {
	if width == 0 || histLen == 0 {
		return 0
	}
	var out uint64
	for a := uint(0); a < histLen; a++ {
		if HistBit(hist, a) {
			out ^= 1 << (a % width)
		}
	}
	return out
}

// HistBit returns bit `age` of a multi-word history vector (bit 0 of word 0
// is the most recent outcome).
func HistBit(hist []uint64, age uint) bool {
	w := age / 64
	if int(w) >= len(hist) {
		return false
	}
	return (hist[w]>>(age%64))&1 == 1
}
