package bitutil

// FoldedHistory incrementally maintains an n-bit fold of the most recent
// histLen bits of a shift-register history, exactly as the circular-shift
// registers in TAGE hardware do.  Shifting a new bit in and the oldest bit
// out updates the fold in O(1) instead of re-XORing the whole history.
//
// The fold is defined as the XOR of consecutive width-bit chunks of the
// history, where chunk i covers history bits [i*width, (i+1)*width).  The
// invariant Fold() == FoldBits(history, histLen, width) is checked by
// property tests.
type FoldedHistory struct {
	folded   uint64
	histLen  uint // number of history bits covered
	width    uint // output width in bits
	outPoint uint // bit position within the fold where the oldest bit leaves
}

// NewFoldedHistory returns a folded history covering histLen bits of history
// compressed to width bits. width must be in [1, 32]; histLen may be 0 (the
// fold is then constant 0).
func NewFoldedHistory(histLen, width uint) *FoldedHistory {
	if width == 0 || width > 32 {
		panic("bitutil: folded history width must be in [1,32]")
	}
	return &FoldedHistory{
		histLen:  histLen,
		width:    width,
		outPoint: histLen % width,
	}
}

// Width returns the output width in bits.
func (f *FoldedHistory) Width() uint { return f.width }

// HistLen returns the number of history bits covered by the fold.
func (f *FoldedHistory) HistLen() uint { return f.histLen }

// Fold returns the current folded value.
func (f *FoldedHistory) Fold() uint64 { return f.folded }

// Update shifts newBit into the history and oldBit (the bit that is histLen
// positions old, i.e. the one leaving the window) out, maintaining the fold.
func (f *FoldedHistory) Update(newBit, oldBit bool) {
	if f.histLen == 0 {
		return
	}
	h := f.folded
	// Rotate left by one within width.
	h = (h << 1) | (h >> (f.width - 1))
	h &= Mask(f.width)
	// New bit enters at position 0.
	if newBit {
		h ^= 1
	}
	// Old bit leaves at outPoint.
	if oldBit {
		h ^= 1 << f.outPoint
	}
	f.folded = h & Mask(f.width)
}

// Set recomputes the fold from a full history vector (bit 0 = most recent).
// Used when restoring from a snapshot.
func (f *FoldedHistory) Set(hist []uint64) {
	f.folded = FoldBits(hist, f.histLen, f.width)
}

// SetRaw directly restores a previously captured fold value.
func (f *FoldedHistory) SetRaw(v uint64) { f.folded = v & Mask(f.width) }

// FoldBits computes the non-incremental fold of the low histLen bits of
// hist (bit 0 of hist[0] = most recent outcome) down to width bits: the
// history bit of age a contributes to fold bit a%width, i.e. the XOR of
// consecutive width-bit chunks of the history window.  FoldedHistory.Update
// maintains exactly this value incrementally.
//
// The fold works word-at-a-time: each 64-bit history word is XOR-folded
// down to width bits, then rotated into the phase its word offset occupies
// in the fold (bit j of word i has age 64i+j, and (64i+j) % width ==
// ((j % width) + (64i % width)) % width — a rotation of the word-local fold
// by 64i mod width).  Recomputing a 640-bit TAGE fold therefore costs ten
// word folds instead of 640 single-bit probes.  FoldBitsRef is the
// bit-serial reference the fuzz and property tests pin this against; width
// must be in [1, 64].
func FoldBits(hist []uint64, histLen, width uint) uint64 {
	if width == 0 || histLen == 0 {
		return 0
	}
	words := int((histLen + 63) / 64)
	if words > len(hist) {
		words = len(hist) // absent words hold zero history: no contribution
	}
	var out uint64
	phase := uint(0)
	step := 64 % width
	for i := 0; i < words; i++ {
		v := hist[i]
		if rem := histLen - uint(i)*64; rem < 64 {
			v &= Mask(rem)
		}
		f := XorFold(v, width)
		// Rotate the word-local fold left by this word's phase (a shift
		// count of `width` reads as zero in Go, so phase == 0 is a no-op).
		f = ((f << phase) | (f >> (width - phase))) & Mask(width)
		out ^= f
		if phase += step; phase >= width {
			phase -= width
		}
	}
	return out
}

// ChunkBits extracts bits [pos, pos+n) of a multi-word history vector as a
// single value (n <= 64), reading across word boundaries.  Bits beyond the
// vector read as zero, matching HistBit.
func ChunkBits(hist []uint64, pos, n uint) uint64 {
	w, off := pos/64, pos%64
	var v uint64
	if int(w) < len(hist) {
		v = hist[w] >> off
	}
	if off+n > 64 && int(w+1) < len(hist) {
		v |= hist[w+1] << (64 - off)
	}
	return v & Mask(n)
}

// FoldBitsRef is the bit-serial reference fold: one HistBit probe per
// history bit.  It exists as the independently-simple specification the
// word-packed FoldBits is fuzzed against (FuzzFoldedHistory); production
// code should call FoldBits.
func FoldBitsRef(hist []uint64, histLen, width uint) uint64 {
	if width == 0 || histLen == 0 {
		return 0
	}
	var out uint64
	for a := uint(0); a < histLen; a++ {
		if HistBit(hist, a) {
			out ^= 1 << (a % width)
		}
	}
	return out
}

// HistBit returns bit `age` of a multi-word history vector (bit 0 of word 0
// is the most recent outcome).
func HistBit(hist []uint64, age uint) bool {
	w := age / 64
	if int(w) >= len(hist) {
		return false
	}
	return (hist[w]>>(age%64))&1 == 1
}
