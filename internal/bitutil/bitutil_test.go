package bitutil

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMask(t *testing.T) {
	cases := []struct {
		n    uint
		want uint64
	}{
		{0, 0},
		{1, 1},
		{2, 3},
		{8, 0xff},
		{32, 0xffffffff},
		{63, 0x7fffffffffffffff},
		{64, ^uint64(0)},
		{80, ^uint64(0)},
	}
	for _, c := range cases {
		if got := Mask(c.n); got != c.want {
			t.Errorf("Mask(%d) = %#x, want %#x", c.n, got, c.want)
		}
	}
}

func TestBits(t *testing.T) {
	if got := Bits(0xabcd, 4, 8); got != 0xbc {
		t.Errorf("Bits(0xabcd,4,8) = %#x, want 0xbc", got)
	}
	if got := Bits(^uint64(0), 60, 8); got != 0xf {
		t.Errorf("Bits(max,60,8) = %#x, want 0xf", got)
	}
}

func TestClog2(t *testing.T) {
	cases := []struct {
		n    int
		want uint
	}{{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11}}
	for _, c := range cases {
		if got := Clog2(c.n); got != c.want {
			t.Errorf("Clog2(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 1 << 20} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false, want true", n)
		}
	}
	for _, n := range []int{0, -1, 3, 6, 12, (1 << 20) + 1} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true, want false", n)
		}
	}
}

func TestMixPCStableWithinPacket(t *testing.T) {
	// PCs that differ only in the instruction-offset bits must map to the
	// same index (they belong to the same fetch packet).
	base := uint64(0x80001230)
	for off := uint64(0); off < 16; off += 2 {
		if MixPC(base+off, 4, 10) != MixPC(base, 4, 10) {
			t.Fatalf("MixPC differs within fetch packet at offset %d", off)
		}
	}
}

func TestXorFoldWidth(t *testing.T) {
	f := func(v uint64) bool {
		return XorFold(v, 10) <= Mask(10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if XorFold(0, 10) != 0 {
		t.Error("XorFold(0) != 0")
	}
}

func TestSatCounters(t *testing.T) {
	c := uint8(0)
	for i := 0; i < 10; i++ {
		c = SatInc(c, 2)
	}
	if c != 3 {
		t.Errorf("saturated 2-bit counter = %d, want 3", c)
	}
	for i := 0; i < 10; i++ {
		c = SatDec(c, 2)
	}
	if c != 0 {
		t.Errorf("decremented counter = %d, want 0", c)
	}
	if !CtrTaken(2, 2) || !CtrTaken(3, 2) || CtrTaken(1, 2) || CtrTaken(0, 2) {
		t.Error("CtrTaken threshold wrong for 2-bit counter")
	}
	if !CtrWeak(1, 2) || !CtrWeak(2, 2) || CtrWeak(0, 2) || CtrWeak(3, 2) {
		t.Error("CtrWeak wrong for 2-bit counter")
	}
}

func TestSignedSatCounters(t *testing.T) {
	c := int8(0)
	for i := 0; i < 100; i++ {
		c = SatIncS(c, 31)
	}
	if c != 31 {
		t.Errorf("signed counter saturated at %d, want 31", c)
	}
	for i := 0; i < 100; i++ {
		c = SatDecS(c, 31)
	}
	if c != -32 {
		t.Errorf("signed counter floor %d, want -32", c)
	}
}

// shiftIn prepends a bit to a multi-word history vector (bit 0 most recent).
func shiftIn(hist []uint64, bit bool) {
	carry := uint64(0)
	if bit {
		carry = 1
	}
	for i := range hist {
		next := hist[i] >> 63
		hist[i] = hist[i]<<1 | carry
		carry = next
	}
}

func TestFoldedHistoryMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, cfg := range []struct{ histLen, width uint }{
		{5, 5}, {8, 4}, {13, 7}, {64, 12}, {130, 11}, {640, 13}, {1, 1}, {3, 8},
	} {
		f := NewFoldedHistory(cfg.histLen, cfg.width)
		hist := make([]uint64, 11) // 704 bits
		for step := 0; step < 2000; step++ {
			newBit := rng.Intn(2) == 1
			oldBit := HistBit(hist, cfg.histLen-1)
			f.Update(newBit, oldBit)
			shiftIn(hist, newBit)
			want := FoldBits(hist, cfg.histLen, cfg.width)
			if f.Fold() != want {
				t.Fatalf("cfg %+v step %d: fold %#x, want %#x", cfg, step, f.Fold(), want)
			}
		}
	}
}

func TestFoldedHistorySetRestores(t *testing.T) {
	f := NewFoldedHistory(37, 9)
	hist := make([]uint64, 2)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		nb := rng.Intn(2) == 1
		f.Update(nb, HistBit(hist, 36))
		shiftIn(hist, nb)
	}
	saved := f.Fold()
	f.SetRaw(0)
	f.Set(hist)
	if f.Fold() != saved {
		t.Fatalf("Set did not restore fold: got %#x want %#x", f.Fold(), saved)
	}
}

func TestFoldedHistoryZeroLen(t *testing.T) {
	f := NewFoldedHistory(0, 4)
	f.Update(true, true)
	if f.Fold() != 0 {
		t.Error("zero-length folded history must stay 0")
	}
}

func TestFoldedHistoryPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for width 0")
		}
	}()
	NewFoldedHistory(8, 0)
}

func TestHistBitBeyondVector(t *testing.T) {
	if HistBit([]uint64{^uint64(0)}, 64) {
		t.Error("HistBit beyond vector must be false")
	}
}
