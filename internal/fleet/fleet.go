package fleet

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"cobra/internal/experiments"
	"cobra/internal/spec"
)

// Version is the fleet file schema version.
const Version = 1

// Defaults are fleet-wide budget defaults, inherited by every service field
// left at zero.
type Defaults struct {
	Insts  uint64 `json:"insts,omitempty"`
	Warmup uint64 `json:"warmup,omitempty"`
	Seed   uint64 `json:"seed,omitempty"`
}

// Experiment names one registered paper artifact (a cobra-experiments id)
// with optional budget overrides.
type Experiment struct {
	ID     string `json:"id"`
	Insts  uint64 `json:"insts,omitempty"`
	Warmup uint64 `json:"warmup,omitempty"`
	Seed   uint64 `json:"seed,omitempty"`
}

// Service is one node of the fleet DAG.  Exactly one of Run, Sweep,
// Experiment, or Bundle is set:
//
//   - run: a single canonical spec.RunSpec
//   - sweep: a spec.Set grid, rendered as CSV
//   - experiment: a paper table/figure by registry id
//   - bundle: the named services' outputs concatenated in order (each name
//     becomes a dependency)
type Service struct {
	Name       string        `json:"-"`
	DependsOn  []string      `json:"depends_on,omitempty"`
	Run        *spec.RunSpec `json:"run,omitempty"`
	Sweep      *spec.Set     `json:"sweep,omitempty"`
	Experiment *Experiment   `json:"experiment,omitempty"`
	Bundle     []string      `json:"bundle,omitempty"`
}

// File is a parsed, validated fleet.
type File struct {
	Version  int                 `json:"version"`
	Name     string              `json:"name,omitempty"`
	Defaults Defaults            `json:"defaults,omitempty"`
	Services map[string]*Service `json:"services"`
}

// Parse decodes a fleet file.  YAML (the subset in yaml.go) and JSON both
// work — JSON is a YAML subset in spirit here too: the YAML layer only runs
// when the document isn't already valid JSON.
func Parse(data []byte) (*File, error) {
	raw := json.RawMessage(data)
	if !json.Valid(data) {
		doc, err := yamlParse(data)
		if err != nil {
			return nil, err
		}
		raw, err = json.Marshal(doc)
		if err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	if err := f.validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// Load reads and parses the fleet file at path.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// validate normalizes the fleet in place and rejects anything the executor
// could not run: bad versions, kindless or multi-kind services, unknown
// experiment ids, dangling depends_on edges, non-canonicalizable specs.
// Cycles are detected by Stages.
func (f *File) validate() error {
	if f.Version == 0 {
		f.Version = Version
	}
	if f.Version != Version {
		return fmt.Errorf("fleet: unsupported version %d (this build speaks %d)", f.Version, Version)
	}
	if len(f.Services) == 0 {
		return fmt.Errorf("fleet: no services")
	}
	for name, svc := range f.Services {
		if svc == nil {
			return fmt.Errorf("fleet: service %q is empty", name)
		}
		svc.Name = name
		if strings.TrimSpace(name) == "" || name != strings.TrimSpace(name) {
			return fmt.Errorf("fleet: bad service name %q", name)
		}
		kinds := 0
		for _, set := range []bool{svc.Run != nil, svc.Sweep != nil, svc.Experiment != nil, svc.Bundle != nil} {
			if set {
				kinds++
			}
		}
		if kinds != 1 {
			return fmt.Errorf("fleet: service %q must have exactly one of run, sweep, experiment, bundle (has %d)", name, kinds)
		}
		switch {
		case svc.Run != nil:
			// A topology-less run naming a Table I design expands the preset,
			// exactly like a spec.Set "design" axis value.
			if svc.Run.Topology == "" && svc.Run.Design != "" {
				p, err := spec.Preset(svc.Run.Design)
				if err != nil {
					return fmt.Errorf("fleet: service %q: %w", name, err)
				}
				svc.Run.Design, svc.Run.Topology, svc.Run.Pipeline = p.Design, p.Topology, p.Pipeline
			}
			applyDefaults(svc.Run, f.Defaults)
			if err := svc.Run.Canonicalize(); err != nil {
				return fmt.Errorf("fleet: service %q: %w", name, err)
			}
		case svc.Sweep != nil:
			applyDefaults(&svc.Sweep.Base, f.Defaults)
			if err := svc.Sweep.Canonicalize(); err != nil {
				return fmt.Errorf("fleet: service %q: %w", name, err)
			}
		case svc.Experiment != nil:
			e := svc.Experiment
			if !experiments.Known(e.ID) {
				return fmt.Errorf("fleet: service %q: unknown experiment %q (have %s)",
					name, e.ID, strings.Join(experiments.Ids(), " "))
			}
			if e.Insts == 0 {
				e.Insts = f.Defaults.Insts
			}
			if e.Warmup == 0 {
				e.Warmup = f.Defaults.Warmup
			}
			if e.Seed == 0 {
				e.Seed = f.Defaults.Seed
			}
		case svc.Bundle != nil:
			if len(svc.Bundle) == 0 {
				return fmt.Errorf("fleet: service %q: empty bundle", name)
			}
			// Bundled services are dependencies by construction.
			for _, b := range svc.Bundle {
				if !contains(svc.DependsOn, b) {
					svc.DependsOn = append(svc.DependsOn, b)
				}
			}
		}
		for _, dep := range svc.DependsOn {
			if dep == name {
				return fmt.Errorf("fleet: service %q depends on itself", name)
			}
			if _, ok := f.Services[dep]; !ok {
				return fmt.Errorf("fleet: service %q depends on unknown service %q", name, dep)
			}
		}
	}
	return nil
}

// applyDefaults fills zero budget fields from the fleet defaults.  RunSpec
// canonicalization fills the remaining zeros with the spec-level defaults, so
// precedence is service > fleet > spec.
func applyDefaults(s *spec.RunSpec, d Defaults) {
	if s.Insts == 0 {
		s.Insts = d.Insts
	}
	if s.Warmup == 0 {
		s.Warmup = d.Warmup
	}
	if s.Seed == 0 {
		s.Seed = d.Seed
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// Names lists the services sorted by name.
func (f *File) Names() []string {
	out := make([]string, 0, len(f.Services))
	for name := range f.Services {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Sinks lists the services nothing depends on, sorted — the fleet's final
// artifacts, what cobra-compose prints by default.
func (f *File) Sinks() []string {
	depended := map[string]bool{}
	for _, svc := range f.Services {
		for _, dep := range svc.DependsOn {
			depended[dep] = true
		}
	}
	var out []string
	for _, name := range f.Names() {
		if !depended[name] {
			out = append(out, name)
		}
	}
	return out
}

// Restrict trims the fleet to the named services and their transitive
// dependency cones, returning a new File sharing the service objects.
func (f *File) Restrict(names []string) (*File, error) {
	keep := map[string]bool{}
	var visit func(string) error
	visit = func(name string) error {
		if keep[name] {
			return nil
		}
		svc, ok := f.Services[name]
		if !ok {
			return fmt.Errorf("fleet: unknown service %q (have %s)", name, strings.Join(f.Names(), " "))
		}
		keep[name] = true
		for _, dep := range svc.DependsOn {
			if err := visit(dep); err != nil {
				return err
			}
		}
		return nil
	}
	for _, name := range names {
		if err := visit(strings.TrimSpace(name)); err != nil {
			return nil, err
		}
	}
	sub := &File{Version: f.Version, Name: f.Name, Defaults: f.Defaults, Services: map[string]*Service{}}
	for name := range keep {
		sub.Services[name] = f.Services[name]
	}
	return sub, nil
}

// digestDoc is the canonical content a service digest covers: its kind and
// payload plus the digests of everything it depends on.  Including dep
// digests makes the scheme Merkle-shaped — editing one service re-keys
// exactly its downstream cone, which is what makes cache skips safe.
type digestDoc struct {
	Kind    string          `json:"kind"`
	Content json.RawMessage `json:"content"`
	Deps    []depDigest     `json:"deps,omitempty"`
}

type depDigest struct {
	Name   string `json:"name"`
	Digest string `json:"digest"`
}

// Digest computes svc's content address given its dependencies' digests.
// Execution knobs (parallelism, backend, cache location) are deliberately
// excluded: they change where and how fast a service runs, never its bytes.
func (f *File) Digest(svc *Service, deps map[string]string) (string, error) {
	doc := digestDoc{}
	var err error
	switch {
	case svc.Run != nil:
		doc.Kind = "run"
		var c *spec.RunSpec
		if c, err = svc.Run.Canonical(); err == nil {
			doc.Content, err = json.Marshal(c)
		}
	case svc.Sweep != nil:
		doc.Kind = "sweep"
		var c *spec.Set
		if c, err = svc.Sweep.Canonical(); err == nil {
			doc.Content, err = json.Marshal(c)
		}
	case svc.Experiment != nil:
		doc.Kind = "experiment"
		doc.Content, err = json.Marshal(svc.Experiment)
	case svc.Bundle != nil:
		doc.Kind = "bundle"
		doc.Content, err = json.Marshal(svc.Bundle)
	default:
		err = fmt.Errorf("fleet: service %q has no kind", svc.Name)
	}
	if err != nil {
		return "", err
	}
	names := append([]string(nil), svc.DependsOn...)
	sort.Strings(names)
	for _, name := range names {
		d, ok := deps[name]
		if !ok {
			return "", fmt.Errorf("fleet: service %q: missing dependency digest for %q", svc.Name, name)
		}
		doc.Deps = append(doc.Deps, depDigest{name, d})
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("sha256:%x", sha256.Sum256(raw)), nil
}
