package fleet

import (
	"context"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"

	"cobra/internal/backend"
	"cobra/internal/experiments"
	"cobra/internal/spec"
)

// Options shape one fleet execution.  None of them enter service digests:
// they decide where and how fast services run, never what bytes they
// produce.
type Options struct {
	// Backend executes every run and sweep cell (and remotable experiment
	// grids).  nil means in-process.
	Backend backend.Backend
	// CacheDir holds the local result cache; "" disables caching (every
	// service executes).
	CacheDir string
	// Parallelism caps concurrent services within a stage and simulation
	// cells within a service (0 = GOMAXPROCS).  Outputs are bit-identical
	// for every value.
	Parallelism int
	// Force executes every service even when its digest has a cached
	// result, rewriting the cache.
	Force bool
	// Log, when non-nil, receives one service=... line per scheduled
	// service as it settles.
	Log io.Writer
	// Digests, when non-nil, receives one digest=<sha256> line per
	// executed RunSpec — the shared -print-digest surface.
	Digests io.Writer
}

// ServiceResult is one service's settled outcome.
type ServiceResult struct {
	Name   string `json:"name"`
	Digest string `json:"digest"`
	// Cached reports that the output came from the result cache — the
	// service's cone was unchanged, so nothing was executed for it.
	Cached bool   `json:"cached"`
	Output string `json:"-"`
	// IntervalDigests are the content hashes of the interval-telemetry sets
	// the service's runs produced (one per cell, in expansion order), for
	// services whose specs sample intervals.  Cached entries replay the
	// digests of the original execution.
	IntervalDigests []string `json:"interval_digests,omitempty"`
}

// Result is a fleet execution's summary.
type Result struct {
	Name     string                    `json:"fleet,omitempty"`
	Stages   [][]string                `json:"stages"`
	Services map[string]*ServiceResult `json:"-"`
	Ordered  []*ServiceResult          `json:"services"`
	Executed int                       `json:"executed"`
	Skipped  int                       `json:"skipped"`
}

// Run executes the fleet: stages in dependency order, services within a
// stage fanned out across workers, each service either replayed from the
// result cache (digest hit) or executed on the backend and cached.  The
// first failing service aborts after its stage settles.
func (f *File) Run(ctx context.Context, opt Options) (*Result, error) {
	stages, err := f.Stages()
	if err != nil {
		return nil, err
	}
	be := opt.Backend
	if be == nil {
		be = &backend.Local{}
	}
	workers := opt.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := &Result{Name: f.Name, Stages: stages, Services: map[string]*ServiceResult{}}
	digests := map[string]string{}
	var mu sync.Mutex // guards res, digests, and the Log/Digests writers

	// getOutput reads a settled dependency's output under the lock: bundles
	// resolve in a later stage than everything they name, but their stage
	// peers are concurrently writing other keys of the same map.
	getOutput := func(name string) (string, bool) {
		mu.Lock()
		defer mu.Unlock()
		sr, ok := res.Services[name]
		if !ok {
			return "", false
		}
		return sr.Output, true
	}

	emitDigests := func(specs ...*spec.RunSpec) error {
		if opt.Digests == nil {
			return nil
		}
		mu.Lock()
		defer mu.Unlock()
		for _, s := range specs {
			d, err := s.Digest()
			if err != nil {
				return err
			}
			fmt.Fprintf(opt.Digests, "digest=%s\n", d)
		}
		return nil
	}

	for _, stage := range stages {
		// Digests are sequential (cheap, need dep digests); execution fans out.
		for _, name := range stage {
			d, err := f.Digest(f.Services[name], digests)
			if err != nil {
				return nil, err
			}
			digests[name] = d
		}
		sem := make(chan struct{}, workers)
		var (
			wg   sync.WaitGroup
			errs []error
		)
		for _, name := range stage {
			svc, digest := f.Services[name], digests[name]
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				sr := &ServiceResult{Name: svc.Name, Digest: digest}
				var err error
				if e, ok := cacheLoad(opt.CacheDir, digest); ok && !opt.Force {
					sr.Cached, sr.Output, sr.IntervalDigests = true, e.Output, e.IntervalDigests
				} else {
					sr.Output, sr.IntervalDigests, err = f.exec(ctx, svc, be, workers, getOutput, emitDigests)
					if err == nil {
						err = cacheStore(opt.CacheDir, digest, cacheEntry{
							Service: svc.Name, Digest: digest, Output: sr.Output,
							IntervalDigests: sr.IntervalDigests,
						})
					}
				}
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					errs = append(errs, fmt.Errorf("fleet: service %q: %w", svc.Name, err))
					return
				}
				res.Services[svc.Name] = sr
				if sr.Cached {
					res.Skipped++
				} else {
					res.Executed++
				}
				if opt.Log != nil {
					action := "executed"
					if sr.Cached {
						action = "skipped"
					}
					line := fmt.Sprintf("service=%s action=%s digest=%s", svc.Name, action, digest)
					if n := len(sr.IntervalDigests); n > 0 {
						line += fmt.Sprintf(" intervals=%d", n)
					}
					fmt.Fprintln(opt.Log, line)
				}
			}()
		}
		wg.Wait()
		if len(errs) > 0 {
			sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
			return nil, errors.Join(errs...)
		}
	}
	for _, stage := range stages {
		for _, name := range stage {
			res.Ordered = append(res.Ordered, res.Services[name])
		}
	}
	return res, nil
}

// exec produces one service's output bytes, plus the interval-set content
// hashes of its runs (in expansion order) when its specs sample intervals.
func (f *File) exec(ctx context.Context, svc *Service, be backend.Backend, workers int, getOutput func(string) (string, bool), emitDigests func(...*spec.RunSpec) error) (string, []string, error) {
	switch {
	case svc.Run != nil:
		if err := emitDigests(svc.Run); err != nil {
			return "", nil, err
		}
		out, err := be.Run(ctx, svc.Run)
		if err != nil {
			return "", nil, err
		}
		var ivls []string
		if out.Intervals != nil {
			ivls = []string{out.Intervals.Hash}
		}
		return fmt.Sprintf("design=%s topology=%q workload=%s\n%s",
			svc.Run.Design, svc.Run.Topology, svc.Run.Workload, out.Stats), ivls, nil

	case svc.Sweep != nil:
		specs, err := svc.Sweep.Expand()
		if err != nil {
			return "", nil, err
		}
		if err := emitDigests(specs...); err != nil {
			return "", nil, err
		}
		outs, err := backend.All(ctx, be, specs, workers)
		if err != nil {
			return "", nil, err
		}
		var ivls []string
		for _, out := range outs {
			if out.Intervals != nil {
				ivls = append(ivls, out.Intervals.Hash)
			}
		}
		csv, err := sweepCSV(specs, outs)
		return csv, ivls, err

	case svc.Experiment != nil:
		e := svc.Experiment
		out, err := experiments.Render(e.ID, experiments.Config{
			Insts: e.Insts, Warmup: e.Warmup, Seed: e.Seed,
			Parallelism: workers, Backend: be,
		})
		return out, nil, err

	case svc.Bundle != nil:
		// Bundles run in a later stage than everything they name, so the
		// outputs are settled; res map access is safe between stages.
		parts := make([]string, 0, len(svc.Bundle))
		for _, name := range svc.Bundle {
			out, ok := getOutput(name)
			if !ok {
				return "", nil, fmt.Errorf("bundled service %q has no result", name)
			}
			parts = append(parts, "## "+name+"\n\n"+strings.TrimRight(out, "\n")+"\n")
		}
		return strings.Join(parts, "\n"), nil, nil
	}
	return "", nil, fmt.Errorf("service has no kind")
}

// sweepCSV renders a sweep grid as CSV, one row per cell in expansion order.
// Columns are the dynamic counters every backend can report; the static
// storage/area/energy columns of cobra-sweep need in-process pipeline
// handles a remote outcome cannot carry, and a fleet must render the same
// bytes on every backend.
func sweepCSV(specs []*spec.RunSpec, outs []*spec.Outcome) (string, error) {
	var b strings.Builder
	w := csv.NewWriter(&b)
	w.Write([]string{"design", "topology", "workload", "host",
		"instructions", "cycles", "ipc", "mpki", "accuracy", "bubble_frac"})
	for i, s := range specs {
		r := outs[i].Stats
		w.Write([]string{
			s.Design, s.Topology, s.Workload, s.Host,
			fmt.Sprint(r.Instructions), fmt.Sprint(r.Cycles),
			fmt.Sprintf("%.4f", r.IPC()),
			fmt.Sprintf("%.3f", r.MPKI()),
			fmt.Sprintf("%.5f", r.Accuracy()),
			fmt.Sprintf("%.4f", r.BubbleFrac()),
		})
	}
	w.Flush()
	return b.String(), w.Error()
}
