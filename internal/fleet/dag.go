package fleet

import (
	"fmt"
	"sort"
	"strings"
)

// Stages partitions the fleet into execution waves: stage k holds every
// service whose dependencies all live in stages < k (Kahn's algorithm by
// level).  Services within a stage are sorted by name, so the schedule is a
// pure function of the file — the golden tests pin it.  A dependency cycle
// is reported with its members.
func (f *File) Stages() ([][]string, error) {
	indeg := map[string]int{}
	down := map[string][]string{} // dep -> dependents
	for name, svc := range f.Services {
		indeg[name] += 0
		for _, dep := range svc.DependsOn {
			indeg[name]++
			down[dep] = append(down[dep], name)
		}
	}
	var (
		stages [][]string
		placed int
	)
	frontier := make([]string, 0, len(indeg))
	for name, d := range indeg {
		if d == 0 {
			frontier = append(frontier, name)
		}
	}
	for len(frontier) > 0 {
		sort.Strings(frontier)
		stages = append(stages, frontier)
		placed += len(frontier)
		var next []string
		for _, name := range frontier {
			for _, dependent := range down[name] {
				if indeg[dependent]--; indeg[dependent] == 0 {
					next = append(next, dependent)
				}
			}
		}
		frontier = next
	}
	if placed != len(f.Services) {
		var cyc []string
		for name, d := range indeg {
			if d > 0 {
				cyc = append(cyc, name)
			}
		}
		sort.Strings(cyc)
		return nil, fmt.Errorf("fleet: dependency cycle involving %s", strings.Join(cyc, ", "))
	}
	return stages, nil
}

// Digests computes every service's content digest in dependency order.
func (f *File) Digests() (map[string]string, error) {
	stages, err := f.Stages()
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(f.Services))
	for _, stage := range stages {
		for _, name := range stage {
			d, err := f.Digest(f.Services[name], out)
			if err != nil {
				return nil, err
			}
			out[name] = d
		}
	}
	return out, nil
}
