// Package fleet runs compose-style fleets of simulations: a YAML (or JSON)
// file names services — single runs, sweep grids, paper experiments, bundles
// — wires them with depends_on edges, and the executor runs the DAG in
// stages over any execution backend, skipping every service whose content
// digest already has a cached result.  One file reproduces the paper; one
// edit re-runs only its downstream cone.
package fleet

import (
	"fmt"
	"strings"
)

// The repo deliberately has zero dependencies, so fleet files are parsed by
// this minimal YAML-subset reader instead of a third-party library.  The
// subset is the part of YAML a compose file actually uses:
//
//   - mappings (`key: value`, or `key:` introducing an indented block)
//   - sequences (`- item`, `-` introducing a block, `- key: v` inline maps)
//   - flow sequences of scalars (`[512, 1024, "x"]`)
//   - scalars: null/~, booleans, integers (with optional _ separators),
//     floats, single- or double-quoted strings, bare strings
//   - `#` comments (start of line or preceded by whitespace) and blank lines
//
// Anchors, aliases, multi-line strings, flow mappings, and tabs are not
// supported and are rejected loudly.  Numbers are preserved verbatim (as
// json.Number via the scalar string) so budgets like 2_000_000 survive the
// trip into uint64 fields without float rounding.

// yamlLine is one significant source line.
type yamlLine struct {
	indent int
	text   string // content after indentation, comments stripped
	n      int    // 1-based source line number
}

// yamlParse decodes the YAML subset into map[string]any / []any / scalar
// values (strings, yamlNumber, bool, nil).
func yamlParse(data []byte) (any, error) {
	lines, err := yamlSplit(data)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("fleet: empty document")
	}
	v, pos, err := yamlNode(lines, 0, lines[0].indent)
	if err != nil {
		return nil, err
	}
	if pos != len(lines) {
		return nil, fmt.Errorf("fleet: line %d: unexpected content after document (indentation?)", lines[pos].n)
	}
	return v, nil
}

// yamlNumber marks a scalar that parsed as a number; it serializes without
// quotes on the JSON round-trip, like json.Number.
type yamlNumber string

// MarshalJSON emits the digits verbatim — no float round trip.
func (n yamlNumber) MarshalJSON() ([]byte, error) { return []byte(n), nil }

// yamlSplit strips comments and blank lines and measures indentation.
func yamlSplit(data []byte) ([]yamlLine, error) {
	var out []yamlLine
	for i, raw := range strings.Split(string(data), "\n") {
		if strings.Contains(raw, "\t") {
			return nil, fmt.Errorf("fleet: line %d: tabs are not allowed in fleet files (use spaces)", i+1)
		}
		indent := len(raw) - len(strings.TrimLeft(raw, " "))
		text := strings.TrimRight(yamlStripComment(raw[indent:]), " ")
		if text == "" {
			continue
		}
		if text == "---" && len(out) == 0 {
			continue // document start marker
		}
		out = append(out, yamlLine{indent, text, i + 1})
	}
	return out, nil
}

// yamlStripComment removes a trailing comment: a # at the start or preceded
// by a space, outside quotes.
func yamlStripComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '#' && (i == 0 || s[i-1] == ' '):
			return s[:i]
		}
	}
	return s
}

// yamlNode parses the block starting at lines[pos], whose first line sits at
// exactly indent.  It returns the value and the position one past the block.
func yamlNode(lines []yamlLine, pos, indent int) (any, int, error) {
	l := lines[pos]
	if l.indent != indent {
		return nil, pos, fmt.Errorf("fleet: line %d: bad indentation", l.n)
	}
	if l.text == "-" || strings.HasPrefix(l.text, "- ") {
		return yamlSeq(lines, pos, indent)
	}
	if yamlColon(l.text) >= 0 {
		return yamlMap(lines, pos, indent)
	}
	// A lone scalar document ("just a string").
	v, err := yamlScalar(l.text, l.n)
	return v, pos + 1, err
}

// yamlColon finds the key/value separator: the first ": " or a trailing ":"
// outside quotes.  Returns -1 when the line is not a mapping entry.
func yamlColon(s string) int {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == ':' && (i == len(s)-1 || s[i+1] == ' '):
			return i
		}
	}
	return -1
}

func yamlMap(lines []yamlLine, pos, indent int) (any, int, error) {
	m := map[string]any{}
	for pos < len(lines) && lines[pos].indent >= indent {
		l := lines[pos]
		if l.indent > indent {
			return nil, pos, fmt.Errorf("fleet: line %d: bad indentation", l.n)
		}
		ci := yamlColon(l.text)
		if ci < 0 {
			if l.text == "-" || strings.HasPrefix(l.text, "- ") {
				return nil, pos, fmt.Errorf("fleet: line %d: sequences must be indented under their key", l.n)
			}
			return nil, pos, fmt.Errorf("fleet: line %d: expected \"key: value\"", l.n)
		}
		key := strings.TrimSpace(l.text[:ci])
		if strings.HasPrefix(key, "- ") {
			return nil, pos, fmt.Errorf("fleet: line %d: sequences must be indented under their key", l.n)
		}
		if k, err := yamlScalar(key, l.n); err == nil {
			if s, ok := k.(string); ok {
				key = s // unquote quoted keys
			}
		}
		if key == "" {
			return nil, pos, fmt.Errorf("fleet: line %d: empty mapping key", l.n)
		}
		if _, dup := m[key]; dup {
			return nil, pos, fmt.Errorf("fleet: line %d: duplicate key %q", l.n, key)
		}
		rest := strings.TrimSpace(l.text[ci+1:])
		if rest != "" {
			v, err := yamlScalar(rest, l.n)
			if err != nil {
				return nil, pos, err
			}
			m[key] = v
			pos++
			continue
		}
		pos++
		if pos >= len(lines) || lines[pos].indent <= indent {
			m[key] = nil // empty value
			continue
		}
		v, next, err := yamlNode(lines, pos, lines[pos].indent)
		if err != nil {
			return nil, pos, err
		}
		m[key] = v
		pos = next
	}
	return m, pos, nil
}

func yamlSeq(lines []yamlLine, pos, indent int) (any, int, error) {
	var seq []any
	for pos < len(lines) && lines[pos].indent == indent {
		l := lines[pos]
		if l.text != "-" && !strings.HasPrefix(l.text, "- ") {
			break
		}
		if l.text == "-" { // block item
			pos++
			if pos >= len(lines) || lines[pos].indent <= indent {
				seq = append(seq, nil)
				continue
			}
			v, next, err := yamlNode(lines, pos, lines[pos].indent)
			if err != nil {
				return nil, pos, err
			}
			seq = append(seq, v)
			pos = next
			continue
		}
		rest := l.text[2:]
		if yamlColon(rest) >= 0 {
			// Inline mapping item: `- field: design` starts a map whose keys
			// continue at the column after "- ".  Rewriting the line in place
			// is safe — parsing only moves forward.
			lines[pos] = yamlLine{indent + 2, rest, l.n}
			v, next, err := yamlMap(lines, pos, indent+2)
			if err != nil {
				return nil, pos, err
			}
			seq = append(seq, v)
			pos = next
			continue
		}
		v, err := yamlScalar(strings.TrimSpace(rest), l.n)
		if err != nil {
			return nil, pos, err
		}
		seq = append(seq, v)
		pos++
	}
	if pos < len(lines) && lines[pos].indent > indent {
		return nil, pos, fmt.Errorf("fleet: line %d: bad indentation", lines[pos].n)
	}
	return seq, pos, nil
}

// yamlScalar parses one scalar token, or a flow sequence of scalars.
func yamlScalar(s string, n int) (any, error) {
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("fleet: line %d: unterminated flow sequence %q", n, s)
		}
		var seq []any
		for _, part := range yamlSplitFlow(s[1 : len(s)-1]) {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			v, err := yamlScalar(part, n)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
		}
		return seq, nil
	}
	if strings.HasPrefix(s, "{") {
		return nil, fmt.Errorf("fleet: line %d: flow mappings are not supported (use an indented block)", n)
	}
	if strings.HasPrefix(s, "&") || strings.HasPrefix(s, "*") {
		return nil, fmt.Errorf("fleet: line %d: anchors/aliases are not supported", n)
	}
	if len(s) >= 2 && (s[0] == '"' || s[0] == '\'') {
		if s[len(s)-1] != s[0] {
			return nil, fmt.Errorf("fleet: line %d: unterminated string %s", n, s)
		}
		body := s[1 : len(s)-1]
		if s[0] == '\'' {
			return strings.ReplaceAll(body, "''", "'"), nil
		}
		return strings.ReplaceAll(body, `\"`, `"`), nil
	}
	switch s {
	case "null", "~":
		return nil, nil
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	if yamlIsNumber(s) {
		return yamlNumber(strings.ReplaceAll(s, "_", "")), nil
	}
	return s, nil
}

// yamlSplitFlow splits a flow-sequence body on commas outside quotes.
func yamlSplitFlow(s string) []string {
	var (
		parts []string
		start int
		quote byte
	)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == ',':
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	return append(parts, s[start:])
}

// yamlIsNumber recognizes integers and simple floats, with optional sign and
// _ digit separators (2_000_000).
func yamlIsNumber(s string) bool {
	i, digits, dot := 0, false, false
	if i < len(s) && (s[i] == '-' || s[i] == '+') {
		i++
	}
	for ; i < len(s); i++ {
		switch {
		case s[i] >= '0' && s[i] <= '9':
			digits = true
		case s[i] == '_' && digits:
		case s[i] == '.' && !dot:
			dot = true
		default:
			return false
		}
	}
	return digits
}
