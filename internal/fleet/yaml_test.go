package fleet

import (
	"reflect"
	"strings"
	"testing"
)

func TestYamlScalarsAndNesting(t *testing.T) {
	doc := `
# a comment
version: 1
name: demo  # trailing comment
count: 2_000_000
ratio: 0.5
neg: -3
on: true
off: false
nothing: null
tilde: ~
quoted: "a: b # not a comment"
single: 'it''s'
topology: GTAG3 > BTB2 > BIM2
url: http://localhost:8080
flow: [512, 1024, "x, y", tage-l]
nested:
  inner:
    deep: yes-a-string
list:
  - one
  - 2
  - field: design
    values: [a, b]
`
	v, err := yamlParse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	m, ok := v.(map[string]any)
	if !ok {
		t.Fatalf("got %T, want map", v)
	}
	want := map[string]any{
		"version": yamlNumber("1"), "name": "demo",
		"count": yamlNumber("2000000"), "ratio": yamlNumber("0.5"),
		"neg": yamlNumber("-3"), "on": true, "off": false,
		"nothing": nil, "tilde": nil,
		"quoted": "a: b # not a comment", "single": "it's",
		"topology": "GTAG3 > BTB2 > BIM2", "url": "http://localhost:8080",
		"flow":   []any{yamlNumber("512"), yamlNumber("1024"), "x, y", "tage-l"},
		"nested": map[string]any{"inner": map[string]any{"deep": "yes-a-string"}},
		"list": []any{"one", yamlNumber("2"),
			map[string]any{"field": "design", "values": []any{"a", "b"}}},
	}
	if !reflect.DeepEqual(m, want) {
		t.Errorf("parse mismatch:\ngot  %#v\nwant %#v", m, want)
	}
}

func TestYamlErrors(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"tab", "a:\n\tb: 1", "tabs"},
		{"dup", "a: 1\na: 2", "duplicate key"},
		{"unterminated", `a: "open`, "unterminated string"},
		{"flowmap", "a: {b: 1}", "flow mappings"},
		{"anchor", "a: &x 1", "anchors"},
		{"seq-at-key-indent", "items:\n- a\n- b", "indented under"},
		{"bad-indent", "a:\n    b: 1\n  c: 2", "indentation"},
		{"empty", "   \n# only comments\n", "empty document"},
		{"trailing-flow", "a: [1, 2", "unterminated flow"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := yamlParse([]byte(tc.doc))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("yamlParse(%q) error = %v, want substring %q", tc.doc, err, tc.wantErr)
			}
		})
	}
}

func TestYamlNumberJSON(t *testing.T) {
	got, err := yamlNumber("2000000").MarshalJSON()
	if err != nil || string(got) != "2000000" {
		t.Errorf("MarshalJSON = %s, %v; want raw digits", got, err)
	}
}
