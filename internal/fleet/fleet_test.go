package fleet

import (
	"context"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"cobra/internal/backend"
	"cobra/internal/client"
	"cobra/internal/serve"
)

var update = flag.Bool("update", false, "rewrite testdata/golden files")

func loadFixture(t *testing.T) *File {
	t.Helper()
	f, err := Load(filepath.Join("testdata", "fleet_paper_small.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestParseCommittedFleets(t *testing.T) {
	for _, path := range []string{"../../fleets/paper.yaml", "../../fleets/paper-small.yaml"} {
		f, err := Load(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if _, err := f.Stages(); err != nil {
			t.Errorf("%s: %v", path, err)
		}
		if _, err := f.Digests(); err != nil {
			t.Errorf("%s: %v", path, err)
		}
		if sinks := f.Sinks(); len(sinks) == 0 {
			t.Errorf("%s: no sink services", path)
		}
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"no-services", "version: 1", "no services"},
		{"two-kinds", `
services:
  both:
    experiment:
      id: table1
    bundle: [x]
`, "exactly one of"},
		{"no-kind", `
services:
  hollow:
    depends_on: [hollow2]
`, "exactly one of"},
		{"unknown-exp", `
services:
  bad:
    experiment:
      id: table99
`, "unknown experiment"},
		{"unknown-dep", `
services:
  a:
    experiment:
      id: table1
    depends_on: [ghost]
`, "unknown service"},
		{"self-dep", `
services:
  a:
    experiment:
      id: table1
    depends_on: [a]
`, "depends on itself"},
		{"bad-version", `
version: 9
services:
  a:
    experiment:
      id: table1
`, "unsupported version"},
		{"unknown-key", `
servicez:
  a: 1
`, "unknown field"},
		{"bad-spec", `
services:
  a:
    run:
      topology: BIM2
      workload: no-such-workload
`, "no-such-workload"},
		{"empty-bundle", `
services:
  a:
    bundle: []
`, "exactly one of"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("Parse error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestCycleDetected(t *testing.T) {
	f, err := Parse([]byte(`
services:
  a:
    experiment:
      id: table1
    depends_on: [b]
  b:
    experiment:
      id: table2
    depends_on: [a]
`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stages(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("Stages error = %v, want cycle", err)
	}
}

// TestStagesDeterministic pins the fixture's exact schedule: the stage
// partition is a pure function of the file, sorted within each stage.
func TestStagesDeterministic(t *testing.T) {
	want := [][]string{
		{"baseline", "fig10", "sweep", "table1", "table2", "table3"},
		{"tables"},
		{"paper"},
	}
	for i := 0; i < 3; i++ {
		stages, err := loadFixture(t).Stages()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(stages, want) {
			t.Fatalf("stages = %v, want %v", stages, want)
		}
	}
}

func TestJSONFleetParses(t *testing.T) {
	f, err := Parse([]byte(`{"services": {"t1": {"experiment": {"id": "table1"}}}}`))
	if err != nil {
		t.Fatal(err)
	}
	if f.Services["t1"].Experiment.ID != "table1" {
		t.Errorf("JSON fleet did not decode")
	}
}

// TestDigestsMerkle: editing one service re-keys exactly that service and
// its downstream cone; digests are stable across loads otherwise.
func TestDigestsMerkle(t *testing.T) {
	base, err := loadFixture(t).Digests()
	if err != nil {
		t.Fatal(err)
	}
	again, err := loadFixture(t).Digests()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, again) {
		t.Fatalf("digests not stable across loads:\n%v\n%v", base, again)
	}

	edited := loadFixture(t)
	edited.Services["baseline"].Run.Insts = 12_345
	ed, err := edited.Digests()
	if err != nil {
		t.Fatal(err)
	}
	wantChanged := map[string]bool{"baseline": true, "paper": true}
	for name, d := range base {
		if changed := ed[name] != d; changed != wantChanged[name] {
			t.Errorf("service %s: digest changed=%v, want %v", name, changed, wantChanged[name])
		}
	}
}

func TestRestrictCone(t *testing.T) {
	sub, err := loadFixture(t).Restrict([]string{"tables"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"table1", "table2", "table3", "tables"}
	if got := sub.Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Restrict(tables) = %v, want %v", got, want)
	}
	if _, err := sub.Restrict([]string{"ghost"}); err == nil {
		t.Error("Restrict(ghost) did not fail")
	}
}

func TestSinks(t *testing.T) {
	if got := loadFixture(t).Sinks(); !reflect.DeepEqual(got, []string{"paper"}) {
		t.Errorf("Sinks = %v, want [paper]", got)
	}
}

// run executes the fixture fleet against cache.
func runFixture(t *testing.T, f *File, cache string, be backend.Backend) *Result {
	t.Helper()
	res, err := f.Run(context.Background(), Options{
		Backend: be, CacheDir: cache, Parallelism: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRunFleet is the tentpole end-to-end: execute the fixture, prove the
// experiment services render the exact golden bytes the direct experiments
// tests pin, prove a re-run skips everything, and prove an edit re-runs
// exactly its cone.
func TestRunFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the small fleet's simulations")
	}
	cache := t.TempDir()
	f := loadFixture(t)
	res := runFixture(t, f, cache, nil)
	if res.Executed != 8 || res.Skipped != 0 {
		t.Fatalf("first run executed=%d skipped=%d, want 8/0", res.Executed, res.Skipped)
	}

	// Byte-identity against the experiments package's own goldens: the fleet
	// path must render the same artifact bytes as a direct render.
	for svc, g := range map[string]string{
		"table1": "table1.txt", "table2": "table2.txt",
		"table3": "table3.txt", "fig10": "fig10_small.txt",
	} {
		want, err := os.ReadFile(filepath.Join("..", "experiments", "testdata", "golden", g))
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Services[svc].Output; got != string(want) {
			t.Errorf("service %s drifted from experiments golden %s\n--- got ---\n%s", svc, g, got)
		}
	}

	// The paper bundle is the fleet's rendered report; pin it.
	report := res.Services["paper"].Output
	goldenPath := filepath.Join("testdata", "golden", "paper_small_report.txt")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(report), 0o644); err != nil {
			t.Fatal(err)
		}
	} else {
		want, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("%v (regenerate with: go test ./internal/fleet -run TestRunFleet -update)", err)
		}
		if report != string(want) {
			t.Errorf("paper report drifted from golden\n--- got ---\n%s--- want ---\n%s", report, want)
		}
	}

	// Unchanged fleet: everything replays from cache, bytes identical.
	res2 := runFixture(t, loadFixture(t), cache, nil)
	if res2.Executed != 0 || res2.Skipped != 8 {
		t.Fatalf("re-run executed=%d skipped=%d, want 0/8", res2.Executed, res2.Skipped)
	}
	for name, sr := range res.Services {
		if got := res2.Services[name].Output; got != sr.Output {
			t.Errorf("service %s: cached output differs from executed output", name)
		}
	}

	// One edit re-runs exactly its downstream cone: baseline and the paper
	// bundle, nothing else.
	edited := loadFixture(t)
	edited.Services["baseline"].Run.Insts = 12_345
	res3 := runFixture(t, edited, cache, nil)
	if res3.Executed != 2 || res3.Skipped != 6 {
		t.Fatalf("cone re-run executed=%d skipped=%d, want 2/6", res3.Executed, res3.Skipped)
	}
	for _, name := range []string{"baseline", "paper"} {
		if res3.Services[name].Cached {
			t.Errorf("service %s should have re-executed", name)
		}
	}
	for _, name := range []string{"fig10", "sweep", "table1", "table2", "table3", "tables"} {
		if !res3.Services[name].Cached {
			t.Errorf("service %s should have been skipped", name)
		}
	}

	// Bundle format: one headed section per bundled service.
	for _, h := range []string{"## tables", "## fig10", "## baseline", "## sweep"} {
		if !strings.Contains(report, h+"\n") {
			t.Errorf("paper report missing section %q", h)
		}
	}
}

// TestRunFleetRemote: the same fleet through a live cobra-serve daemon
// produces byte-identical service outputs — the compose analogue of the
// experiments remote-equivalence test.
func TestRunFleetRemote(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations twice")
	}
	srv, err := serve.New(serve.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	}()
	be, err := backend.NewRemote(client.Config{BaseURL: ts.URL, Poll: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	// The run/sweep cone exercises every spec-shaped service kind without
	// paying for the fig10 grid twice.
	sub, err := loadFixture(t).Restrict([]string{"baseline", "sweep"})
	if err != nil {
		t.Fatal(err)
	}
	local := runFixture(t, sub, "", nil)
	remote := runFixture(t, sub, "", be)
	for name, sr := range local.Services {
		if got := remote.Services[name].Output; got != sr.Output {
			t.Errorf("service %s: remote output differs from local\n--- local ---\n%s--- remote ---\n%s",
				name, sr.Output, got)
		}
	}
}

// TestCacheCorruptionHeals: a torn cache entry is a miss, not an error.
func TestCacheCorruptionHeals(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	cache := t.TempDir()
	sub, err := loadFixture(t).Restrict([]string{"baseline"})
	if err != nil {
		t.Fatal(err)
	}
	res := runFixture(t, sub, cache, nil)
	digest := res.Services["baseline"].Digest
	if err := os.WriteFile(cachePath(cache, digest), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	res2 := runFixture(t, sub, cache, nil)
	if res2.Executed != 1 {
		t.Fatalf("corrupted entry was not re-executed (executed=%d)", res2.Executed)
	}
	if res2.Services["baseline"].Output != res.Services["baseline"].Output {
		t.Error("healed output differs")
	}
}
