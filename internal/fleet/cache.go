package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// The result cache is a directory of sealed JSON entries keyed by service
// digest.  Because the digest covers the service's canonical content AND its
// dependencies' digests (see File.Digest), a hit proves the cached output
// was produced by byte-identical inputs — skipping is substitution, not
// guessing.  Entries are written to a temp file and renamed into place, so a
// crash mid-write leaves garbage the loader ignores, never a torn entry
// presented as truth (the same sealing discipline cobra-serve's disk cache
// uses).

// cacheEntry is one cached service result.  Entries written before interval
// digests existed decode with a nil IntervalDigests — a hit still replays
// the output, it just reports no interval provenance.
type cacheEntry struct {
	Service         string   `json:"service"`
	Digest          string   `json:"digest"`
	Output          string   `json:"output"`
	IntervalDigests []string `json:"interval_digests,omitempty"`
}

// cachePath maps a digest to its entry file.
func cachePath(dir, digest string) string {
	return filepath.Join(dir, strings.TrimPrefix(digest, "sha256:")+".json")
}

// cacheLoad returns the cached entry for digest, if a well-formed one
// exists.  Any read or decode failure is a miss: the executor re-runs and
// rewrites, so corruption heals itself.
func cacheLoad(dir, digest string) (cacheEntry, bool) {
	var e cacheEntry
	if dir == "" {
		return e, false
	}
	data, err := os.ReadFile(cachePath(dir, digest))
	if err != nil {
		return e, false
	}
	if err := json.Unmarshal(data, &e); err != nil || e.Digest != digest {
		return cacheEntry{}, false
	}
	return e, true
}

// cacheStore seals an entry: temp file, fsync-free write, atomic rename.
func cacheStore(dir, digest string, e cacheEntry) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("fleet: cache: %w", err)
	}
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("fleet: cache: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".entry-*")
	if err != nil {
		return fmt.Errorf("fleet: cache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("fleet: cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fleet: cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), cachePath(dir, digest)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fleet: cache: %w", err)
	}
	return nil
}
